//===- bench/bench_bitset.cpp - Word-span union kernel throughput ---------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// Pins the bits:: union kernels (support/BitSet.h) that every dense
// inner loop funnels through: the grew-checked orInto driving the rd
// worklists and the Table 8 R0 closure, the unchecked orWords inside
// the Warshall closure, and the closure itself end-to-end. The kernels
// are unrolled four words wide and BitMatrix pads/aligns its rows so
// these loops autovectorize; a regression here taxes every analysis.
//
//===----------------------------------------------------------------------===//

#include "support/BitSet.h"
#include "support/Graph.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace vif;

namespace {

/// Deterministic fill so the unions do real mixing work.
void scatter(BitMatrix &M, uint64_t Salt) {
  for (size_t R = 0; R < M.numRows(); ++R)
    for (size_t B = Salt % 7; B < M.numBits(); B += 5 + ((R + Salt) % 11))
      M.set(R, B);
}

/// Grew-checked row union (the rd-solver / R0-closure inner step),
/// cycled over many row pairs so the working set exceeds one row.
void BM_BitMatrix_OrInto(benchmark::State &State) {
  size_t Bits = static_cast<size_t>(State.range(0));
  const size_t Rows = 64;
  BitMatrix Src(Rows, Bits), Dst(Rows, Bits);
  scatter(Src, 1);
  scatter(Dst, 2);
  size_t I = 0;
  for (auto _ : State) {
    bool Grew = BitMatrix::orInto(Dst.row(I % Rows),
                                  Src.row((I + 1) % Rows),
                                  Dst.wordsPerRow());
    benchmark::DoNotOptimize(Grew);
    ++I;
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Dst.wordsPerRow() * 8));
}
BENCHMARK(BM_BitMatrix_OrInto)->RangeMultiplier(4)->Range(256, 16384);

/// Unchecked row union (the Warshall inner loop body).
void BM_BitMatrix_OrWords(benchmark::State &State) {
  size_t Bits = static_cast<size_t>(State.range(0));
  const size_t Rows = 64;
  BitMatrix Src(Rows, Bits), Dst(Rows, Bits);
  scatter(Src, 3);
  scatter(Dst, 4);
  size_t I = 0;
  for (auto _ : State) {
    bits::orWords(Dst.row(I % Rows), Src.row((I + 1) % Rows),
                  Dst.wordsPerRow());
    benchmark::DoNotOptimize(Dst.row(I % Rows)[0]);
    ++I;
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Dst.wordsPerRow() * 8));
}
BENCHMARK(BM_BitMatrix_OrWords)->RangeMultiplier(4)->Range(256, 16384);

/// BitSet::unionWith with the grew bit consumed — the Table 8 R0
/// closure's per-edge step.
void BM_BitSet_UnionWith(benchmark::State &State) {
  size_t Bits = static_cast<size_t>(State.range(0));
  BitSet A(Bits), B(Bits);
  for (size_t I = 0; I < Bits; I += 3)
    A.set(I);
  for (size_t I = 1; I < Bits; I += 7)
    B.set(I);
  for (auto _ : State) {
    benchmark::DoNotOptimize(A.unionWith(B));
    benchmark::DoNotOptimize(B.unionWith(A));
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) * 2 *
                          static_cast<int64_t>((Bits + 63) / 64 * 8));
}
BENCHMARK(BM_BitSet_UnionWith)->RangeMultiplier(4)->Range(256, 16384);

/// The Warshall closure end-to-end on a linear chain — worst-case fill
/// (every node reaches every later node), dominated by orWords.
void BM_Warshall_Chain(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  Digraph G;
  for (unsigned I = 0; I + 1 < N; ++I)
    G.addEdge("n" + std::to_string(I), "n" + std::to_string(I + 1));
  for (auto _ : State) {
    Digraph C = G.transitiveClosure();
    benchmark::DoNotOptimize(C.numEdges());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Warshall_Chain)->RangeMultiplier(2)->Range(64, 512)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
