//===- bench/bench_alfp.cpp - ABL-SOLVER: native vs ALFP closure ----------===//
//
// Part of the vif project; see DESIGN.md (experiment ABL-SOLVER).
//
// The paper implemented its constraint systems in the Succinct Solver
// (ALFP). This bench runs our ALFP engine on the Table 7-9 encoding and
// compares it against the specialized native closure, reporting derived
// tuple counts and the (identical) results.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "alfp/Alfp.h"
#include "cfg/CFG.h"
#include "ifa/AlfpClosure.h"
#include "ifa/InformationFlow.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace vif;
using vif::bench::mustElaborateDesign;
using vif::bench::mustElaborateStatements;

namespace {

void regenerateTable(std::FILE *Out) {
  std::fprintf(Out, "== ABL-SOLVER: native closure vs ALFP encoding\n");
  struct Row {
    const char *Name;
    ElaboratedProgram P;
  };
  std::vector<Row> Rows;
  Rows.push_back({"shiftrows",
                  mustElaborateStatements(workloads::shiftRowsStatements())});
  Rows.push_back({"pipeline(4)",
                  mustElaborateDesign(workloads::pipelineDesign(4))});
  Rows.push_back({"leaky-core",
                  mustElaborateDesign(workloads::leakyCoreDesign())});
  for (Row &R : Rows) {
    ProgramCFG CFG = ProgramCFG::build(R.P);
    IFAOptions Opts;
    IFAResult Native = analyzeInformationFlow(R.P, CFG, Opts);
    AlfpClosureResult Alfp = closeWithAlfp(R.P, CFG, Native, Opts);
    std::fprintf(Out, "  %-12s RMgl=%5zu entries  alfp-derived=%6zu tuples  "
                "agree=%s\n",
                R.Name, Native.RMgl.size(), Alfp.DerivedTuples,
                Alfp.Solved && Alfp.RMgl == Native.RMgl ? "yes" : "NO");
  }
  std::fprintf(Out, "\n");
}

void BM_Closure_Native(benchmark::State &State) {
  ElaboratedProgram P =
      mustElaborateStatements(workloads::shiftRowsStatements());
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.RMgl.size());
  }
}
BENCHMARK(BM_Closure_Native);

void BM_Closure_Alfp(benchmark::State &State) {
  ElaboratedProgram P =
      mustElaborateStatements(workloads::shiftRowsStatements());
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions Opts;
  IFAResult Native = analyzeInformationFlow(P, CFG, Opts);
  for (auto _ : State) {
    AlfpClosureResult R = closeWithAlfp(P, CFG, Native, Opts);
    benchmark::DoNotOptimize(R.RMgl.size());
  }
}
BENCHMARK(BM_Closure_Alfp)->Unit(benchmark::kMillisecond);

void BM_Alfp_TransitiveClosure(benchmark::State &State) {
  // Raw engine speed on the classic path query over a cycle of N nodes.
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    alfp::Program P;
    alfp::RelId Edge = P.relation("edge", 2);
    alfp::RelId Path = P.relation("path", 2);
    std::vector<alfp::Atom> Nodes;
    for (unsigned I = 0; I < N; ++I)
      Nodes.push_back(P.atoms().intern("n" + std::to_string(I)));
    for (unsigned I = 0; I < N; ++I)
      P.fact(Edge, {Nodes[I], Nodes[(I + 1) % N]});
    alfp::Term X = alfp::Term::var(0), Y = alfp::Term::var(1),
               Z = alfp::Term::var(2);
    P.clause({alfp::Literal{Path, false, {X, Y}},
              {alfp::Literal{Edge, false, {X, Y}}}});
    P.clause({alfp::Literal{Path, false, {X, Z}},
              {alfp::Literal{Path, false, {X, Y}},
               alfp::Literal{Edge, false, {Y, Z}}}});
    bool Ok = P.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(P.tuples(Path).size());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Alfp_TransitiveClosure)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity();

} // namespace

int main(int argc, char **argv) {
  regenerateTable(vif::bench::figureStream(argc, argv));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
