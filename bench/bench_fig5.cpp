//===- bench/bench_fig5.cpp - Figure 5 regeneration -----------------------===//
//
// Part of the vif project; see DESIGN.md (experiment FIG5).
//
// Paper claim (Section 6, Figure 5): on the unrolled AES ShiftRows function
// with shared temporaries, Kemmerer's method "is unable to separate the
// shifts on each row" while "our analysis computes the precise result" —
// per row r, exactly the rotation a_r_((c+r) mod 4) -> a_r_c.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cfg/CFG.h"
#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "workloads/AesVhdl.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace vif;
using vif::bench::mustElaborateStatements;

namespace {

std::string stripMarks(std::string_view Name) {
  return std::string(stripInterfaceMark(Name));
}

bool isStateNode(std::string_view Name) {
  return Name.rfind("a_", 0) == 0;
}

void regenerateFigure(std::FILE *Out) {
  std::fprintf(Out, "== FIG5: AES ShiftRows, Kemmerer vs RD-guided analysis\n");
  ElaboratedProgram P =
      mustElaborateStatements(workloads::shiftRowsStatements());
  ProgramCFG CFG = ProgramCFG::build(P);

  KemmererResult Base = analyzeKemmerer(P, CFG);
  Digraph BaseState = Base.Graph.inducedSubgraph(isStateNode);

  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  IFAResult Ours = analyzeInformationFlow(P, CFG, Opts);
  Digraph OursState =
      Ours.Graph.mergeNodes(stripMarks).inducedSubgraph(isStateNode);

  std::fprintf(Out, "state nodes: %zu (paper: 12)\n", OursState.numNodes());
  std::fprintf(Out, "Figure 5(a) Kemmerer:   %zu edges\n",
               BaseState.numEdges());
  std::fprintf(Out,
               "Figure 5(b) RD-guided:  %zu edges (paper: 12, one rotation "
               "per row)\n",
               OursState.numEdges());
  std::fprintf(Out, "false positives eliminated: %zu\n",
               BaseState.edgesNotIn(OursState).size());
  std::fprintf(Out, "RD-guided edges:");
  for (const auto &[From, To] : OursState.sortedEdges())
    std::fprintf(Out, "  %s->%s", From.c_str(), To.c_str());
  std::fprintf(Out, "\n\n");
}

void BM_Fig5_Ours(benchmark::State &State) {
  ElaboratedProgram P =
      mustElaborateStatements(workloads::shiftRowsStatements());
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG, Opts);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
}
BENCHMARK(BM_Fig5_Ours);

void BM_Fig5_Kemmerer(benchmark::State &State) {
  ElaboratedProgram P =
      mustElaborateStatements(workloads::shiftRowsStatements());
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    KemmererResult R = analyzeKemmerer(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
}
BENCHMARK(BM_Fig5_Kemmerer);

void BM_Fig5_DesignVariant(benchmark::State &State) {
  // The looped process version with inout ports (flows compose across
  // delta cycles).
  ElaboratedProgram P =
      vif::bench::mustElaborateDesign(workloads::shiftRowsDesign());
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
}
BENCHMARK(BM_Fig5_DesignVariant);

} // namespace

int main(int argc, char **argv) {
  regenerateFigure(vif::bench::figureStream(argc, argv));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
