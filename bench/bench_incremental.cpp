//===- bench/bench_incremental.cpp - Process-grained artifact reuse -------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// What the incremental layer buys, measured at the solver tier (the
// front end — parse/elaborate/CFG — is identical on every path and runs
// outside the timed region): a cold ifa() re-solves Table 4 and Table 5
// for every process and closes Table 7/8 from scratch; a one-expression
// edit against a warm ProcessArtifactTable re-solves exactly one process
// and recomposes (the ROADMAP acceptance number is >= 10x over cold at
// 256 pipeline stages); an unchanged re-analysis re-solves nothing; and
// a warm on-disk store serves the whole-design blob, skipping the
// solvers and the closure entirely — the restart-survival path, whose
// cost is one bounds-checked decode. Every OneEdit iteration analyzes a
// *distinct* edit (the varied operands keep each slice hash fresh), so
// the table can never have seen the edited process before.
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisSession.h"
#include "driver/ArtifactStore.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>

using namespace vif;

namespace {

/// The pipeline source with the last stage's assignment rewritten to a
/// variant expression chosen by \p Tick: same written signal, same wait
/// set, extra read operands. Confined to one process, so exactly one
/// slice hash changes; distinct Ticks give distinct hashes, so a warm
/// table never reuses a previous iteration's edit.
std::string editedPipeline(unsigned N, uint64_t Tick) {
  std::string Src = workloads::pipelineDesign(N);
  std::string Prev = "s_" + std::to_string(N - 1);
  std::string Last = "s_" + std::to_string(N) + " <= " + Prev + ";";
  size_t At = Src.find(Last);
  uint64_t M = N - 1;
  std::string Repl = "s_" + std::to_string(N) + " <= " + Prev + " and s_" +
                     std::to_string(Tick % M) + " and s_" +
                     std::to_string((Tick / M) % M) + " and s_" +
                     std::to_string((Tick / (M * M)) % M) + ";";
  Src.replace(At, Last.size(), Repl);
  return Src;
}

/// A session over \p Source with the front end already run, so the timed
/// region below is exactly the solver tier.
driver::AnalysisSession frontEndSession(const std::string &Source,
                                        bool Statements = false) {
  driver::SessionOptions Opts;
  Opts.Statements = Statements;
  driver::AnalysisSession S = driver::AnalysisSession::fromSource(
      Statements ? "chain" : "pipe", Source, Opts);
  S.cfg();
  return S;
}

/// An RAII temp directory for the disk-backed cases.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/vif-bench-store-XXXXXX";
    Path = mkdtemp(Buf) ? Buf : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code EC;
      std::filesystem::remove_all(Path, EC);
    }
  }
};

/// Cold baseline: every process solved, the closure run, nothing reused.
void BM_Incremental_Cold(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::string Source = workloads::pipelineDesign(N);
  for (auto _ : State) {
    State.PauseTiming();
    driver::AnalysisSession S = frontEndSession(Source);
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.ifa());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Incremental_Cold)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

/// One edited process against a warm table: one Table 4 + Table 5 solve,
/// N-1 reuses, then the recompose.
void BM_Incremental_OneEdit(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  ProcessArtifactTable Table;
  {
    // Warm the table with the unedited design's N artifacts.
    driver::AnalysisSession S = frontEndSession(workloads::pipelineDesign(N));
    S.setArtifacts(&Table, nullptr);
    S.ifa();
  }
  uint64_t Tick = 0;
  for (auto _ : State) {
    State.PauseTiming();
    driver::AnalysisSession S = frontEndSession(editedPipeline(N, Tick++));
    S.setArtifacts(&Table, nullptr);
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.ifa());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Incremental_OneEdit)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

/// Unchanged re-analysis against a warm table: zero solves, pure
/// recompose — the floor any edit converges to.
void BM_Incremental_FullReuse(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::string Source = workloads::pipelineDesign(N);
  ProcessArtifactTable Table;
  {
    driver::AnalysisSession S = frontEndSession(Source);
    S.setArtifacts(&Table, nullptr);
    S.ifa();
  }
  for (auto _ : State) {
    State.PauseTiming();
    driver::AnalysisSession S = frontEndSession(Source);
    S.setArtifacts(&Table, nullptr);
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.ifa());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Incremental_FullReuse)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

/// Restart survival: a fresh session against a warm on-disk store hits
/// the whole-design blob — no solver, no closure, one decode.
void BM_Incremental_WarmDisk(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::string Source = workloads::pipelineDesign(N);
  TempDir Dir;
  driver::ArtifactStore Store(Dir.Path);
  {
    // Populate the store: one cold run writes the design blob back.
    driver::AnalysisSession S = frontEndSession(Source);
    S.setArtifacts(nullptr, &Store);
    S.ifa();
  }
  for (auto _ : State) {
    State.PauseTiming();
    driver::AnalysisSession S = frontEndSession(Source);
    S.setArtifacts(nullptr, &Store);
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.ifa());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Incremental_WarmDisk)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

/// The chain (statement-program) family, cold: the single process is the
/// whole program, so this is the store's design-blob unit at its largest.
void BM_IncrementalChain_Cold(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::string Source = workloads::chainStatements(N);
  for (auto _ : State) {
    State.PauseTiming();
    driver::AnalysisSession S = frontEndSession(Source, /*Statements=*/true);
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.ifa());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_IncrementalChain_Cold)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

/// Chain family against a warm on-disk store: one design-blob decode
/// replaces the whole solve.
void BM_IncrementalChain_WarmDisk(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::string Source = workloads::chainStatements(N);
  TempDir Dir;
  driver::ArtifactStore Store(Dir.Path);
  {
    driver::AnalysisSession S = frontEndSession(Source, /*Statements=*/true);
    S.setArtifacts(nullptr, &Store);
    S.ifa();
  }
  for (auto _ : State) {
    State.PauseTiming();
    driver::AnalysisSession S = frontEndSession(Source, /*Statements=*/true);
    S.setArtifacts(nullptr, &Store);
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.ifa());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_IncrementalChain_WarmDisk)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
