//===- bench/bench_ablation.cpp - ABL-RD: dropping RD∩ϕ -------------------===//
//
// Part of the vif project; see DESIGN.md (experiment ABL-RD).
//
// Paper claim (Section 7): "One unusual ingredient is the under-
// approximation analysis for active signals in order to be able to specify
// non-trivial kill-components for present values."  This ablation disables
// the RD∩ϕ-based kill at synchronization points and reports how many
// spurious present-value flows appear.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cfg/CFG.h"
#include "ifa/InformationFlow.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace vif;
using vif::bench::mustElaborateDesign;

namespace {

// A phased process: s carries c1 in the first phase and c2 in the second.
// With RD∩ϕ, the definitions of s are killed at each wait, so q2 sees only
// the phase-2 source c2; without the under-approximation the stale
// phase-1 definition survives the synchronization and q2 spuriously
// depends on c1 as well. Generalized to N phases.
std::string phasedDesign(unsigned Phases) {
  std::string S = "entity phased is\n  port(\n";
  for (unsigned I = 0; I < Phases; ++I)
    S += "    c_" + std::to_string(I) + " : in std_logic;\n";
  for (unsigned I = 0; I < Phases; ++I)
    S += "    q_" + std::to_string(I) + " : out std_logic;\n";
  S += "    clk : in std_logic\n  );\nend phased;\n\n";
  S += "architecture rtl of phased is\n  signal s : std_logic;\nbegin\n";
  S += "  phase : process\n    variable x : std_logic;\n  begin\n";
  for (unsigned I = 0; I < Phases; ++I) {
    S += "    s <= c_" + std::to_string(I) + ";\n";
    S += "    wait on clk;\n";
    S += "    x := s;\n";
    S += "    q_" + std::to_string(I) + " <= x;\n";
  }
  S += "  end process phase;\nend rtl;\n";
  return S;
}

// Producer/consumer pair: the producer drives s from a different source
// before each of its N waits; the consumer forwards s to a fresh output
// after each of its waits. Every c_j may reach every q_i (the processes'
// phases are not statically aligned), but the Hsieh-Levitan emulation only
// sees the producer's final-wait state, losing the mid-process flows.
std::string producerConsumer(unsigned Phases) {
  std::string S = "entity pc is\n  port(\n    clk : in std_logic;\n";
  for (unsigned I = 0; I < Phases; ++I)
    S += "    c_" + std::to_string(I) + " : in std_logic;\n";
  for (unsigned I = 0; I < Phases; ++I)
    S += "    q_" + std::to_string(I) + " : out std_logic" +
         (I + 1 < Phases ? ";" : "") + "\n";
  S += "  );\nend pc;\n\narchitecture rtl of pc is\n"
       "  signal s : std_logic;\nbegin\n  producer : process\n  begin\n";
  for (unsigned I = 0; I < Phases; ++I) {
    S += "    s <= c_" + std::to_string(I) + ";\n";
    S += "    wait on clk;\n";
  }
  S += "  end process producer;\n  consumer : process\n"
       "    variable x : std_logic;\n  begin\n";
  for (unsigned I = 0; I < Phases; ++I) {
    S += "    x := s;\n";
    S += "    q_" + std::to_string(I) + " <= x;\n";
    S += "    wait on clk;\n";
  }
  S += "  end process consumer;\nend rtl;\n";
  return S;
}

void regenerateTable(std::FILE *Out) {
  std::fprintf(Out, "== ABL-RD: effect of the under-approximation kill\n");
  for (unsigned Phases : {2u, 4u, 8u}) {
    ElaboratedProgram P = mustElaborateDesign(phasedDesign(Phases));
    ProgramCFG CFG = ProgramCFG::build(P);
    IFAOptions With;
    IFAOptions Without;
    Without.RD.UseMustActiveKill = false;
    IFAResult RWith = analyzeInformationFlow(P, CFG, With);
    IFAResult RWithout = analyzeInformationFlow(P, CFG, Without);
    size_t Spurious = RWithout.Graph.edgesNotIn(RWith.Graph).size();
    std::fprintf(Out, "  phased(%2u): RMgl with kill=%5zu  without=%5zu  graph "
                "edges %3zu -> %3zu  spurious=%zu\n",
                Phases, RWith.RMgl.size(), RWithout.RMgl.size(),
                RWith.Graph.numEdges(), RWithout.Graph.numEdges(),
                Spurious);
    // Each phase re-drives s before its wait, so phase i only ever
    // observes c_i: every cross-phase edge c_j -> q_i (j != i) is a false
    // positive that only the under-approximation kill removes.
    if (RWith.Graph.hasEdge("c_1", "q_0") ||
        !RWithout.Graph.hasEdge("c_1", "q_0"))
      std::fprintf(Out, "  UNEXPECTED precision result!\n");
  }
  std::fprintf(Out, "\n== ABL-HL: Hsieh-Levitan-style cross-flow (Section 1 "
              "related work)\n");
  for (unsigned Phases : {2u, 4u, 8u}) {
    ElaboratedProgram P = mustElaborateDesign(producerConsumer(Phases));
    ProgramCFG CFG = ProgramCFG::build(P);
    IFAOptions Ours;
    IFAOptions HL;
    HL.RD.HsiehLevitanCrossFlow = true;
    IFAResult ROurs = analyzeInformationFlow(P, CFG, Ours);
    IFAResult RHL = analyzeInformationFlow(P, CFG, HL);
    std::fprintf(Out, "  prodcons(%2u): ours=%3zu edges  hsieh-levitan=%3zu "
                "edges  missed flows=%zu (real mid-process flows lost)\n",
                Phases, ROurs.Graph.numEdges(), RHL.Graph.numEdges(),
                ROurs.Graph.edgesNotIn(RHL.Graph).size());
  }
  std::fprintf(Out, "\n");
}

void BM_Ablation_WithMustKill(benchmark::State &State) {
  ElaboratedProgram P = mustElaborateDesign(phasedDesign(8));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.RMgl.size());
  }
}
BENCHMARK(BM_Ablation_WithMustKill);

void BM_Ablation_WithoutMustKill(benchmark::State &State) {
  ElaboratedProgram P = mustElaborateDesign(phasedDesign(8));
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions Opts;
  Opts.RD.UseMustActiveKill = false;
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG, Opts);
    benchmark::DoNotOptimize(R.RMgl.size());
  }
}
BENCHMARK(BM_Ablation_WithoutMustKill);

void BM_Ablation_FactoredCrossFlow(benchmark::State &State) {
  ElaboratedProgram P =
      mustElaborateDesign(workloads::syncMeshDesign(3, 3, 4));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    ActiveSignalsResult Active = analyzeActiveSignals(P, CFG);
    ReachingDefsResult RD = analyzeReachingDefs(P, CFG, Active);
    benchmark::DoNotOptimize(RD.Iterations);
  }
}
BENCHMARK(BM_Ablation_FactoredCrossFlow);

void BM_Ablation_EnumeratedCrossFlow(benchmark::State &State) {
  // The literal Cartesian-product definition of cf (exponential in the
  // number of processes) versus the factored implementation above.
  ElaboratedProgram P =
      mustElaborateDesign(workloads::syncMeshDesign(3, 3, 4));
  ProgramCFG CFG = ProgramCFG::build(P);
  ReachingDefsOptions Opts;
  Opts.EnumerateCrossFlowTuples = true;
  for (auto _ : State) {
    ActiveSignalsResult Active = analyzeActiveSignals(P, CFG);
    ReachingDefsResult RD = analyzeReachingDefs(P, CFG, Active, Opts);
    benchmark::DoNotOptimize(RD.Iterations);
  }
}
BENCHMARK(BM_Ablation_EnumeratedCrossFlow);

} // namespace

int main(int argc, char **argv) {
  regenerateTable(vif::bench::figureStream(argc, argv));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
