//===- bench/bench_sim.cpp - SIM: simulator throughput --------------------===//
//
// Part of the vif project; see DESIGN.md (experiment SIM).
//
// Substrate validation: the VHDL1 AES-128 core under the SOS simulator
// reproduces FIPS-197 (checked in tests/integration_test.cpp); this bench
// measures the simulator itself — full AES blocks per second, delta-cycle
// rate on a ping-pong design, and statement interpretation rate.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "aesref/Aes128.h"
#include "sim/Simulator.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace vif;
using vif::bench::mustElaborateDesign;

namespace {

unsigned sigId(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabSignal &S : P.Signals)
    if (S.Name == Name)
      return S.Id;
  std::abort();
}

void regenerateTable(std::FILE *Out) {
  std::fprintf(Out, "== SIM: one AES-128 block under the SOS simulator\n");
  ElaboratedProgram P = mustElaborateDesign(workloads::aesCoreDesign(10));
  aes::Block Plain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                      0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  aes::Key Key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                  0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  Simulator Sim(P);
  for (int I = 0; I < 16; ++I) {
    Sim.driveSignal(sigId(P, "pt_" + std::to_string(I)),
                    Value::vector(LogicVector::fromUInt(Plain[I], 8)));
    Sim.driveSignal(sigId(P, "key_" + std::to_string(I)),
                    Value::vector(LogicVector::fromUInt(Key[I], 8)));
  }
  Sim.driveSignal(sigId(P, "go"), Value::scalar(StdLogic::One));
  SimStatus St = Sim.run();
  aes::Block Expected = aes::encrypt(Plain, Key);
  bool Match = true;
  for (int I = 0; I < 16; ++I) {
    auto B = Sim.presentValue(sigId(P, "ct_" + std::to_string(I)))
                 .asVector()
                 .toUInt();
    Match &= B && *B == Expected[I];
  }
  std::fprintf(Out, "  status=%s deltas=%u fips197-match=%s\n\n",
              simStatusName(St), Sim.deltasExecuted(),
              Match ? "yes" : "NO");
}

void BM_Sim_AesBlock(benchmark::State &State) {
  ElaboratedProgram P = mustElaborateDesign(workloads::aesCoreDesign(10));
  aes::Block Plain{};
  aes::Key Key{};
  unsigned Counter = 0;
  for (auto _ : State) {
    // Fresh simulator per block (new plaintext each time).
    Simulator Sim(P);
    Plain[0] = static_cast<uint8_t>(++Counter);
    for (int I = 0; I < 16; ++I) {
      Sim.driveSignal(sigId(P, "pt_" + std::to_string(I)),
                      Value::vector(LogicVector::fromUInt(Plain[I], 8)));
      Sim.driveSignal(sigId(P, "key_" + std::to_string(I)),
                      Value::vector(LogicVector::fromUInt(Key[I], 8)));
    }
    Sim.driveSignal(sigId(P, "go"), Value::scalar(StdLogic::One));
    Sim.run();
    benchmark::DoNotOptimize(Sim.deltasExecuted());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Sim_AesBlock)->Unit(benchmark::kMillisecond);

void BM_Sim_DeltaCycleRate(benchmark::State &State) {
  // Two processes ping-ponging: every run(N) executes N delta cycles.
  // Both signals start at '0' so the cross-coupled inverters oscillate
  // forever; run(1000) then really executes 1000 delta cycles.
  ElaboratedProgram P = mustElaborateDesign(R"(
    entity ping is port(go : in std_logic); end ping;
    architecture rtl of ping is
      signal a : std_logic := '0';
      signal b : std_logic := '0';
    begin
      p1 : process begin a <= not b; wait on b; end process p1;
      p2 : process begin b <= not a; wait on a; end process p2;
    end rtl;)");
  for (auto _ : State) {
    Simulator Sim(P);
    Sim.run(1000);
    benchmark::DoNotOptimize(Sim.deltasExecuted());
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_Sim_DeltaCycleRate);

void BM_Sim_PipelinePropagation(benchmark::State &State) {
  unsigned Stages = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateDesign(workloads::pipelineDesign(Stages));
  for (auto _ : State) {
    Simulator Sim(P);
    Sim.run();
    Sim.driveSignal(sigId(P, "s_0"), Value::scalar(StdLogic::One));
    Sim.run();
    benchmark::DoNotOptimize(Sim.deltasExecuted());
  }
  State.SetComplexityN(Stages);
}
BENCHMARK(BM_Sim_PipelinePropagation)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_Sim_WhileLoopInterpretation(benchmark::State &State) {
  // Pure statement interpretation rate: an 8-bit counter loop, 256
  // iterations of while + add per run.
  ElaboratedProgram P = vif::bench::mustElaborateStatements(
      "variable c : std_logic_vector(7 downto 0) := \"00000000\";\n"
      "variable n : std_logic_vector(7 downto 0) := \"11111111\";\n"
      "while c < n loop c := c + \"00000001\"; end loop;");
  for (auto _ : State) {
    Simulator Sim(P);
    SimStatus St = Sim.run();
    benchmark::DoNotOptimize(St);
  }
  State.SetItemsProcessed(State.iterations() * 255);
}
BENCHMARK(BM_Sim_WhileLoopInterpretation);

} // namespace

int main(int argc, char **argv) {
  regenerateTable(vif::bench::figureStream(argc, argv));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
