//===- bench/BenchUtil.h - Shared bench helpers -----------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#ifndef VIF_BENCH_BENCHUTIL_H
#define VIF_BENCH_BENCHUTIL_H

#include "parse/Parser.h"
#include "sema/Elaborator.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace vif {
namespace bench {

/// Parses + elaborates a statement program; aborts on any diagnostic.
inline ElaboratedProgram mustElaborateStatements(const std::string &Source) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(Source, Diags);
  std::optional<ElaboratedProgram> P =
      Diags.hasErrors() ? std::nullopt
                        : elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  if (!P) {
    std::fprintf(stderr, "bench workload failed to elaborate:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return std::move(*P);
}

/// Where a bench binary's figure/table regeneration dump should go: stdout
/// normally, stderr whenever a machine-readable --benchmark_format is
/// requested, so `bench_x --benchmark_format=json > BENCH_x.json` stays one
/// parseable JSON document. Call before benchmark::Initialize (which
/// consumes the flags it recognizes).
inline std::FILE *figureStream(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--benchmark_format=", 0) == 0 &&
        Arg != "--benchmark_format=console")
      return stderr;
  }
  return stdout;
}

/// Parses + elaborates a design; aborts on any diagnostic.
inline ElaboratedProgram mustElaborateDesign(const std::string &Source) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  std::optional<ElaboratedProgram> P =
      Diags.hasErrors() ? std::nullopt : elaborateDesign(F, Diags);
  if (!P) {
    std::fprintf(stderr, "bench workload failed to elaborate:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return std::move(*P);
}

} // namespace bench
} // namespace vif

#endif // VIF_BENCH_BENCHUTIL_H
