//===- bench/BenchUtil.h - Shared bench helpers -----------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#ifndef VIF_BENCH_BENCHUTIL_H
#define VIF_BENCH_BENCHUTIL_H

#include "parse/Parser.h"
#include "sema/Elaborator.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace vif {
namespace bench {

/// Parses + elaborates a statement program; aborts on any diagnostic.
inline ElaboratedProgram mustElaborateStatements(const std::string &Source) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(Source, Diags);
  std::optional<ElaboratedProgram> P =
      Diags.hasErrors() ? std::nullopt
                        : elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  if (!P) {
    std::fprintf(stderr, "bench workload failed to elaborate:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return std::move(*P);
}

/// Parses + elaborates a design; aborts on any diagnostic.
inline ElaboratedProgram mustElaborateDesign(const std::string &Source) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  std::optional<ElaboratedProgram> P =
      Diags.hasErrors() ? std::nullopt : elaborateDesign(F, Diags);
  if (!P) {
    std::fprintf(stderr, "bench workload failed to elaborate:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return std::move(*P);
}

} // namespace bench
} // namespace vif

#endif // VIF_BENCH_BENCHUTIL_H
