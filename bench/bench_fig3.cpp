//===- bench/bench_fig3.cpp - Figure 3 regeneration -----------------------===//
//
// Part of the vif project; see DESIGN.md (experiment FIG3).
//
// Paper claim (Figure 3 + Section 5.2): for program (a) `c:=b; b:=a` the
// information-flow graph has edges {b->c, a->b} and is non-transitive; for
// program (b) `b:=a; c:=b` it additionally has a->c. Kemmerer's method
// produces the (b) graph for BOTH programs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cfg/CFG.h"
#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace vif;
using vif::bench::mustElaborateStatements;

namespace {

const char *ProgramA = "c := b; b := a;";
const char *ProgramB = "b := a; c := b;";

void printGraph(std::FILE *Out, const char *Title, const Digraph &G) {
  std::fprintf(Out, "  %s: %zu nodes, %zu edges:", Title, G.numNodes(),
              G.numEdges());
  for (const auto &[From, To] : G.sortedEdges())
    std::fprintf(Out, "  %s->%s", From.c_str(), To.c_str());
  std::fprintf(Out, "\n");
}

void regenerateFigure(std::FILE *Out) {
  std::fprintf(Out, "== FIG3: information-flow graphs of the running examples\n");
  for (const auto &[Name, Source] :
       {std::pair{"(a) c:=b; b:=a", ProgramA},
        std::pair{"(b) b:=a; c:=b", ProgramB}}) {
    ElaboratedProgram P = mustElaborateStatements(Source);
    ProgramCFG CFG = ProgramCFG::build(P);
    IFAResult Ours = analyzeInformationFlow(P, CFG);
    KemmererResult Base = analyzeKemmerer(P, CFG);
    std::fprintf(Out, "program %s\n", Name);
    printGraph(Out, "RD-guided", Ours.Graph);
    printGraph(Out, "Kemmerer ", Base.Graph);
    std::fprintf(Out, "  RD-guided graph transitive: %s\n",
                Ours.Graph.isTransitive() ? "yes" : "no");
  }
  std::fprintf(Out, "\n");
}

void BM_Fig3_Ours(benchmark::State &State) {
  ElaboratedProgram P = mustElaborateStatements(ProgramA);
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
}
BENCHMARK(BM_Fig3_Ours);

void BM_Fig3_Kemmerer(benchmark::State &State) {
  ElaboratedProgram P = mustElaborateStatements(ProgramA);
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    KemmererResult R = analyzeKemmerer(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
}
BENCHMARK(BM_Fig3_Kemmerer);

void BM_Fig3_FrontEnd(benchmark::State &State) {
  for (auto _ : State) {
    ElaboratedProgram P = mustElaborateStatements(ProgramB);
    benchmark::DoNotOptimize(P.Variables.size());
  }
}
BENCHMARK(BM_Fig3_FrontEnd);

} // namespace

int main(int argc, char **argv) {
  regenerateFigure(vif::bench::figureStream(argc, argv));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
