//===- bench/bench_serve.cpp - Serve-mode cache hit vs miss ---------------===//
//
// Part of the vif project; see DESIGN.md (Service architecture).
//
// What a warm session buys: the same `flows` request answered by a cold
// server (full parse → elaborate → CFG → RD → IFA per request) vs a warm
// one (content-hash lookup + serialization only), across design sizes.
// The gap is the recompute cost the SessionCache elides, which is the
// whole point of `vifc serve`; Serve_Hit also bounds the per-request
// protocol overhead (JSON parse + response serialization).
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"
#include "driver/SessionCache.h"
#include "gen/Generator.h"
#include "support/Json.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace vif;

namespace {

std::string flowsRequest(const std::string &Source,
                         const std::string &ExtraMembers = "") {
  return std::string("{\"schema\":\"vifc.v1\",\"command\":\"flows\","
                     "\"source\":\"") +
         jsonEscape(Source) + "\"" + ExtraMembers + "}";
}

/// Every request misses: a fresh server per iteration, so each request
/// pays the full pipeline.
void BM_Serve_Miss(benchmark::State &State) {
  std::string Req =
      flowsRequest(workloads::pipelineDesign(
          static_cast<unsigned>(State.range(0))));
  for (auto _ : State) {
    driver::Server S;
    benchmark::DoNotOptimize(S.handleLine(Req));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Serve_Miss)->RangeMultiplier(4)->Range(4, 64)->Complexity();

/// Every request after the first hits the warm session.
void BM_Serve_Hit(benchmark::State &State) {
  std::string Req =
      flowsRequest(workloads::pipelineDesign(
          static_cast<unsigned>(State.range(0))));
  driver::Server S;
  benchmark::DoNotOptimize(S.handleLine(Req)); // warm the cache
  for (auto _ : State)
    benchmark::DoNotOptimize(S.handleLine(Req));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Serve_Hit)->RangeMultiplier(4)->Range(4, 64)->Complexity();

/// Warm `flows` with the v1b binary response instead of the JSON line —
/// the remaining per-request cost is request parse + frame emission.
/// Compare against BM_Serve_Hit at the same size for the JSON-vs-v1b
/// serialization ratio (recorded in bench/baselines/README.md).
void BM_Serve_Hit_V1b(benchmark::State &State) {
  std::string Req = flowsRequest(
      workloads::pipelineDesign(static_cast<unsigned>(State.range(0))),
      ",\"format\":\"v1b\"");
  driver::Server S;
  benchmark::DoNotOptimize(S.handleLine(Req)); // warm the cache
  for (auto _ : State)
    benchmark::DoNotOptimize(S.handleLine(Req));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Serve_Hit_V1b)->RangeMultiplier(4)->Range(4, 64)->Complexity();

/// Flows-heavy warm traffic over a family of generated designs (one
/// request per design, round-robin, all warm after the first lap): the
/// serve steady state a fuzz or sweep driver produces, with varied node
/// names and edge shapes rather than one synthetic pipeline.
void serveGenFlows(benchmark::State &State, const std::string &Extra) {
  const uint64_t Seeds = 16;
  std::vector<std::string> Reqs;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed)
    Reqs.push_back(flowsRequest(gen::generateDesign(Seed), Extra));
  driver::Server S;
  for (const std::string &Req : Reqs)
    benchmark::DoNotOptimize(S.handleLine(Req)); // warm lap
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.handleLine(Reqs[I]));
    I = (I + 1) % Reqs.size();
  }
}
void BM_Serve_GenFlows_Json(benchmark::State &State) {
  serveGenFlows(State, "");
}
BENCHMARK(BM_Serve_GenFlows_Json);
void BM_Serve_GenFlows_V1b(benchmark::State &State) {
  serveGenFlows(State, ",\"format\":\"v1b\"");
}
BENCHMARK(BM_Serve_GenFlows_V1b);

/// The cache layer alone, without the JSON protocol around it: acquire on
/// a warm entry (hash + LRU bump + per-entry lock).
void BM_SessionCache_AcquireHit(benchmark::State &State) {
  std::string Source =
      workloads::pipelineDesign(static_cast<unsigned>(State.range(0)));
  driver::SessionCache Cache;
  driver::SessionOptions Opts;
  { Cache.acquire("warm", Source, Opts).session().ifa(); }
  for (auto _ : State) {
    driver::SessionCache::Ref R = Cache.acquire("warm", Source, Opts);
    benchmark::DoNotOptimize(R.session().ifa());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SessionCache_AcquireHit)
    ->RangeMultiplier(4)
    ->Range(4, 64)
    ->Complexity();

//===----------------------------------------------------------------------===//
// Concurrent load generator: N clients over loopback TCP against the
// worker-pool front end (Server::listenAndServe), measuring aggregate
// warm-request throughput and the per-request latency distribution.
//===----------------------------------------------------------------------===//

/// HDR-style latency histogram: power-of-two octaves split into 32
/// linear sub-buckets (~3% relative error), covering 1 ns to ~5 min.
/// Fixed footprint, constant-time record — cheap enough to sit on the
/// timed path.
class LatencyHistogram {
public:
  static constexpr unsigned SubBits = 5;
  static constexpr size_t NumBuckets = size_t(60) << SubBits;

  void record(uint64_t Ns) {
    ++Counts[bucketOf(Ns)];
    ++Total;
  }

  void merge(const LatencyHistogram &O) {
    for (size_t I = 0; I < NumBuckets; ++I)
      Counts[I] += O.Counts[I];
    Total += O.Total;
  }

  /// The representative value (bucket midpoint) at quantile \p Q in
  /// [0, 1]; 0 when empty.
  double percentileNs(double Q) const {
    if (!Total)
      return 0;
    uint64_t Rank = static_cast<uint64_t>(Q * double(Total - 1)) + 1;
    uint64_t Seen = 0;
    for (size_t I = 0; I < NumBuckets; ++I) {
      Seen += Counts[I];
      if (Seen >= Rank)
        return midpointOf(I);
    }
    return midpointOf(NumBuckets - 1);
  }

private:
  static size_t bucketOf(uint64_t Ns) {
    constexpr uint64_t Sub = 1ull << SubBits;
    if (Ns < Sub)
      return static_cast<size_t>(Ns); // first octave: exact
    unsigned Exp = 63u - static_cast<unsigned>(__builtin_clzll(Ns));
    unsigned Shift = Exp - SubBits;
    size_t Bucket = ((size_t(Shift) + 1) << SubBits) +
                    ((Ns >> Shift) & (Sub - 1));
    return std::min(Bucket, NumBuckets - 1);
  }

  static double midpointOf(size_t B) {
    constexpr uint64_t Sub = 1ull << SubBits;
    if (B < Sub)
      return double(B);
    unsigned Shift = static_cast<unsigned>((B >> SubBits) - 1);
    uint64_t Lo = (Sub + (B & (Sub - 1))) << Shift;
    return double(Lo) + double(1ull << Shift) / 2.0;
  }

  std::array<uint64_t, NumBuckets> Counts{};
  uint64_t Total = 0;
};

int connectLoopback(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

/// One request/response round trip; returns false on transport failure.
/// \p Buf carries any bytes read beyond the response line (none in this
/// closed-loop harness, but kept correct).
bool roundTrip(int Fd, const std::string &Request, std::string &Buf) {
  size_t Off = 0;
  while (Off < Request.size()) {
    ssize_t W = ::write(Fd, Request.data() + Off, Request.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  while (Buf.find('\n') == std::string::npos) {
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  Buf.erase(0, Buf.find('\n') + 1);
  return true;
}

/// N closed-loop clients, each with its own connection and its own
/// design (distinct cache entries — a fleet, not N hits on one entry),
/// all warm. Every benchmark iteration releases the clients for
/// RequestsPerIter round trips each and waits for the batch, so
/// real_time tracks aggregate throughput (items/s is requests/s) and
/// every round trip lands in the latency histogram: p50/p99 are
/// reported as counters and recorded in the committed baseline.
/// The worker pool is pinned at 8 so the 1-vs-8-client ratio measures
/// client-side scaling against a constant server (the ROADMAP "4x at 8
/// clients on 8 cores" acceptance number).
void BM_Serve_LoadTcp(benchmark::State &State) {
  const unsigned Clients = static_cast<unsigned>(State.range(0));
  const unsigned RequestsPerIter = 16;

  driver::ServeOptions SO;
  SO.Workers = 8;
  driver::Server Srv(SO);
  std::thread ServerThread([&Srv] { Srv.listenAndServe(0, nullptr); });
  while (Srv.boundPort() == 0)
    std::this_thread::yield();
  uint16_t Port = Srv.boundPort();

  struct Client {
    int Fd = -1;
    std::string Request;
    std::string Buf;
    LatencyHistogram Hist;
    std::thread T;
    bool Ok = true;
  };
  std::vector<Client> Cs(Clients);

  std::mutex M;
  std::condition_variable GoCV, DoneCV;
  uint64_t Generation = 0;
  unsigned DoneCount = 0, ReadyCount = 0;
  bool Stop = false;

  for (unsigned I = 0; I < Clients; ++I) {
    Client &C = Cs[I];
    C.Request = flowsRequest(workloads::pipelineDesign(16) + "-- client " +
                             std::to_string(I) + "\n");
    C.Request += '\n';
    C.T = std::thread([&, I] {
      Client &Me = Cs[I];
      Me.Fd = connectLoopback(Port);
      // Warm this client's session before anything is timed.
      if (Me.Fd < 0 || !roundTrip(Me.Fd, Me.Request, Me.Buf))
        Me.Ok = false;
      uint64_t MyGen = 0;
      {
        std::lock_guard<std::mutex> G(M);
        ++ReadyCount;
      }
      DoneCV.notify_all();
      for (;;) {
        {
          std::unique_lock<std::mutex> G(M);
          GoCV.wait(G, [&] { return Stop || Generation > MyGen; });
          if (Stop)
            return;
          MyGen = Generation;
        }
        for (unsigned R = 0; Me.Ok && R < RequestsPerIter; ++R) {
          auto T0 = std::chrono::steady_clock::now();
          if (!roundTrip(Me.Fd, Me.Request, Me.Buf))
            Me.Ok = false;
          auto T1 = std::chrono::steady_clock::now();
          Me.Hist.record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                  .count()));
        }
        {
          std::lock_guard<std::mutex> G(M);
          ++DoneCount;
        }
        DoneCV.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> G(M);
    DoneCV.wait(G, [&] { return ReadyCount == Clients; });
  }

  for (auto _ : State) {
    {
      std::lock_guard<std::mutex> G(M);
      DoneCount = 0;
      ++Generation;
    }
    GoCV.notify_all();
    std::unique_lock<std::mutex> G(M);
    DoneCV.wait(G, [&] { return DoneCount == Clients; });
  }

  {
    std::lock_guard<std::mutex> G(M);
    Stop = true;
  }
  GoCV.notify_all();
  LatencyHistogram All;
  bool AllOk = true;
  for (Client &C : Cs) {
    C.T.join();
    if (C.Fd >= 0)
      ::close(C.Fd);
    All.merge(C.Hist);
    AllOk = AllOk && C.Ok;
  }

  // Stop the server: one more connection carrying a shutdown request.
  {
    int Fd = connectLoopback(Port);
    if (Fd >= 0) {
      std::string Buf;
      roundTrip(Fd, "{\"schema\":\"vifc.v1\",\"command\":\"shutdown\"}\n",
                Buf);
      ::close(Fd);
    }
  }
  ServerThread.join();

  if (!AllOk)
    State.SkipWithError("client transport failure");
  State.SetItemsProcessed(State.iterations() * Clients * RequestsPerIter);
  State.counters["p50_us"] = All.percentileNs(0.50) / 1e3;
  State.counters["p99_us"] = All.percentileNs(0.99) / 1e3;
}
BENCHMARK(BM_Serve_LoadTcp)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
