//===- bench/bench_serve.cpp - Serve-mode cache hit vs miss ---------------===//
//
// Part of the vif project; see DESIGN.md (Service architecture).
//
// What a warm session buys: the same `flows` request answered by a cold
// server (full parse → elaborate → CFG → RD → IFA per request) vs a warm
// one (content-hash lookup + serialization only), across design sizes.
// The gap is the recompute cost the SessionCache elides, which is the
// whole point of `vifc serve`; Serve_Hit also bounds the per-request
// protocol overhead (JSON parse + response serialization).
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"
#include "driver/SessionCache.h"
#include "gen/Generator.h"
#include "support/Json.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace vif;

namespace {

std::string flowsRequest(const std::string &Source,
                         const std::string &ExtraMembers = "") {
  return std::string("{\"schema\":\"vifc.v1\",\"command\":\"flows\","
                     "\"source\":\"") +
         jsonEscape(Source) + "\"" + ExtraMembers + "}";
}

/// Every request misses: a fresh server per iteration, so each request
/// pays the full pipeline.
void BM_Serve_Miss(benchmark::State &State) {
  std::string Req =
      flowsRequest(workloads::pipelineDesign(
          static_cast<unsigned>(State.range(0))));
  for (auto _ : State) {
    driver::Server S;
    benchmark::DoNotOptimize(S.handleLine(Req));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Serve_Miss)->RangeMultiplier(4)->Range(4, 64)->Complexity();

/// Every request after the first hits the warm session.
void BM_Serve_Hit(benchmark::State &State) {
  std::string Req =
      flowsRequest(workloads::pipelineDesign(
          static_cast<unsigned>(State.range(0))));
  driver::Server S;
  benchmark::DoNotOptimize(S.handleLine(Req)); // warm the cache
  for (auto _ : State)
    benchmark::DoNotOptimize(S.handleLine(Req));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Serve_Hit)->RangeMultiplier(4)->Range(4, 64)->Complexity();

/// Warm `flows` with the v1b binary response instead of the JSON line —
/// the remaining per-request cost is request parse + frame emission.
/// Compare against BM_Serve_Hit at the same size for the JSON-vs-v1b
/// serialization ratio (recorded in bench/baselines/README.md).
void BM_Serve_Hit_V1b(benchmark::State &State) {
  std::string Req = flowsRequest(
      workloads::pipelineDesign(static_cast<unsigned>(State.range(0))),
      ",\"format\":\"v1b\"");
  driver::Server S;
  benchmark::DoNotOptimize(S.handleLine(Req)); // warm the cache
  for (auto _ : State)
    benchmark::DoNotOptimize(S.handleLine(Req));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Serve_Hit_V1b)->RangeMultiplier(4)->Range(4, 64)->Complexity();

/// Flows-heavy warm traffic over a family of generated designs (one
/// request per design, round-robin, all warm after the first lap): the
/// serve steady state a fuzz or sweep driver produces, with varied node
/// names and edge shapes rather than one synthetic pipeline.
void serveGenFlows(benchmark::State &State, const std::string &Extra) {
  const uint64_t Seeds = 16;
  std::vector<std::string> Reqs;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed)
    Reqs.push_back(flowsRequest(gen::generateDesign(Seed), Extra));
  driver::Server S;
  for (const std::string &Req : Reqs)
    benchmark::DoNotOptimize(S.handleLine(Req)); // warm lap
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.handleLine(Reqs[I]));
    I = (I + 1) % Reqs.size();
  }
}
void BM_Serve_GenFlows_Json(benchmark::State &State) {
  serveGenFlows(State, "");
}
BENCHMARK(BM_Serve_GenFlows_Json);
void BM_Serve_GenFlows_V1b(benchmark::State &State) {
  serveGenFlows(State, ",\"format\":\"v1b\"");
}
BENCHMARK(BM_Serve_GenFlows_V1b);

/// The cache layer alone, without the JSON protocol around it: acquire on
/// a warm entry (hash + LRU bump + per-entry lock).
void BM_SessionCache_AcquireHit(benchmark::State &State) {
  std::string Source =
      workloads::pipelineDesign(static_cast<unsigned>(State.range(0)));
  driver::SessionCache Cache;
  driver::SessionOptions Opts;
  { Cache.acquire("warm", Source, Opts).session().ifa(); }
  for (auto _ : State) {
    driver::SessionCache::Ref R = Cache.acquire("warm", Source, Opts);
    benchmark::DoNotOptimize(R.session().ifa());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SessionCache_AcquireHit)
    ->RangeMultiplier(4)
    ->Range(4, 64)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
