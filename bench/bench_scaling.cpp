//===- bench/bench_scaling.cpp - Section 7 complexity ---------------------===//
//
// Part of the vif project; see DESIGN.md (experiment SEC7-C).
//
// Paper claim (Section 7): "its worst case complexity is O(n^5). So far
// this has posed no problems, however we conjecture that the implementation
// can be improved to have a cubic worst case complexity. The reason is that
// the analysis basically is a combination of three bit-vector frameworks
// (each being linear time in practice) and a cubic time reachability
// analysis."  This bench sweeps program sizes on three program families so
// the growth exponent can be read off the timings (google-benchmark's
// complexity estimation is enabled where meaningful).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cfg/CFG.h"
#include "gen/Generator.h"
#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "rd/ReachingDefs.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

using namespace vif;
using vif::bench::mustElaborateDesign;
using vif::bench::mustElaborateStatements;

namespace {

void BM_Scaling_Chain_Ours(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateStatements(workloads::chainStatements(N));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Scaling_Chain_Ours)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity();

void BM_Scaling_Chain_Kemmerer(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateStatements(workloads::chainStatements(N));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    KemmererResult R = analyzeKemmerer(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Scaling_Chain_Kemmerer)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity();

void BM_Scaling_Ladder(benchmark::State &State) {
  unsigned Groups = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateStatements(workloads::tempReuseLadder(Groups, 4));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
  State.SetComplexityN(Groups);
}
BENCHMARK(BM_Scaling_Ladder)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity();

void BM_Scaling_Pipeline(benchmark::State &State) {
  unsigned Stages = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateDesign(workloads::pipelineDesign(Stages));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
  State.SetComplexityN(Stages);
}
BENCHMARK(BM_Scaling_Pipeline)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_Scaling_Mesh(benchmark::State &State) {
  unsigned Procs = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateDesign(workloads::syncMeshDesign(Procs, 4, 8));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
  State.SetComplexityN(Procs);
}
BENCHMARK(BM_Scaling_Mesh)->RangeMultiplier(2)->Range(2, 16)->Complexity();

/// One fixed-seed generated design per size point: Procs processes of
/// mixed control flow over a shared pool of signals and ports.
gen::GenOptions generatedOptions(unsigned Procs) {
  gen::GenOptions O;
  O.Seed = 97; // fixed: the sweep varies size, not content
  O.Processes = Procs;
  O.StmtsPerProcess = 12;
  O.MaxDepth = 3;
  O.ScalarSignals = 2 + Procs;
  O.VectorSignals = 2;
  O.ConcAssigns = Procs / 2;
  O.Blocks = 1;
  return O;
}

void BM_Scaling_Generated_Ours(benchmark::State &State) {
  // Unlike the hand-shaped families above, the generated family exercises
  // the full grammar mix (waits with until-conditions, slices, blocks,
  // vector ops) at scale, so the exponent read-off is not an artifact of
  // one workload shape.
  unsigned Procs = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateDesign(gen::generateDesign(generatedOptions(Procs)));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
  State.SetComplexityN(Procs);
}
BENCHMARK(BM_Scaling_Generated_Ours)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_Scaling_Generated_Frontend(benchmark::State &State) {
  // Parse + elaborate of the same generated designs: the cost a fuzz
  // seed or serve request pays before any analysis runs.
  unsigned Procs = static_cast<unsigned>(State.range(0));
  std::string Source = gen::generateDesign(generatedOptions(Procs));
  for (auto _ : State) {
    ElaboratedProgram P = mustElaborateDesign(Source);
    benchmark::DoNotOptimize(P.Processes.size());
  }
  State.SetComplexityN(Procs);
}
BENCHMARK(BM_Scaling_Generated_Frontend)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_Scaling_RDOnly(benchmark::State &State) {
  // Isolates the "three bit-vector frameworks" part of the paper's
  // complexity argument from the closure.
  unsigned N = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateStatements(workloads::chainStatements(N));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    ActiveSignalsResult Active = analyzeActiveSignals(P, CFG);
    ReachingDefsResult RD = analyzeReachingDefs(P, CFG, Active);
    benchmark::DoNotOptimize(RD.Iterations);
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Scaling_RDOnly)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
