//===- bench/bench_fig4.cpp - Figure 4 regeneration -----------------------===//
//
// Part of the vif project; see DESIGN.md (experiment FIG4).
//
// Paper claim (Figure 4, Section 5.3): the improved analysis of program (b)
// `b:=a; c:=b` with incoming (n◦) and outgoing (n•) nodes shows that the
// initial value of a reaches every outgoing value, while the initial value
// of b reaches nothing — "the initial value of the variable b cannot be
// read from the variable c".
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cfg/CFG.h"
#include "ifa/InformationFlow.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace vif;
using vif::bench::mustElaborateStatements;

namespace {

const char *ProgramB = "b := a; c := b;";

void regenerateFigure(std::FILE *Out) {
  std::fprintf(Out, "== FIG4: improved analysis of program (b)\n");
  ElaboratedProgram P = mustElaborateStatements(ProgramB);
  ProgramCFG CFG = ProgramCFG::build(P);

  IFAResult Plain = analyzeInformationFlow(P, CFG);
  std::fprintf(Out, "Figure 4(a) — basic graph:");
  for (const auto &[From, To] : Plain.Graph.sortedEdges())
    std::fprintf(Out, "  %s->%s", From.c_str(), To.c_str());
  std::fprintf(Out, "\n");

  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  IFAResult Improved = analyzeInformationFlow(P, CFG, Opts);
  Digraph Interface = Improved.interfaceGraph();
  std::fprintf(Out, "Figure 4(b) — interface graph (%zu nodes):",
              Interface.numNodes());
  for (const auto &[From, To] : Interface.sortedEdges())
    std::fprintf(Out, "  %s->%s", From.c_str(), To.c_str());
  std::fprintf(Out, "\n");
  std::fprintf(Out, "b-initial leaks to c: %s (paper: must be no)\n\n",
              Interface.hasEdge("b◦", "c•") ? "YES (bug!)" : "no");
}

void BM_Fig4_Improved(benchmark::State &State) {
  ElaboratedProgram P = mustElaborateStatements(ProgramB);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG, Opts);
    benchmark::DoNotOptimize(R.RMgl.size());
  }
}
BENCHMARK(BM_Fig4_Improved);

void BM_Fig4_InterfaceExtraction(benchmark::State &State) {
  ElaboratedProgram P = mustElaborateStatements(ProgramB);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  IFAResult R = analyzeInformationFlow(P, CFG, Opts);
  for (auto _ : State) {
    Digraph G = R.interfaceGraph();
    benchmark::DoNotOptimize(G.numEdges());
  }
}
BENCHMARK(BM_Fig4_InterfaceExtraction);

} // namespace

int main(int argc, char **argv) {
  regenerateFigure(vif::bench::figureStream(argc, argv));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
