//===- bench/bench_aes.cpp - Section 6 on AES components ------------------===//
//
// Part of the vif project; see DESIGN.md (experiment SEC6).
//
// Paper claim (Section 6): on the AES programs, "the graphs computed by
// Kemmerer's method indicate the problem of the method not taking control
// flow information into account; many edges are false positives... Our
// analysis correctly eliminates the edges introduced by the overwritten
// variables." This bench reports, per component, the edge counts of both
// methods and the number of eliminated false positives.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cfg/CFG.h"
#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "workloads/AesVhdl.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace vif;
using vif::bench::mustElaborateDesign;
using vif::bench::mustElaborateStatements;

namespace {

void reportComponent(std::FILE *Out, const char *Name, const std::string &Source) {
  ElaboratedProgram P = mustElaborateStatements(Source);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAResult Ours = analyzeInformationFlow(P, CFG);
  KemmererResult Base = analyzeKemmerer(P, CFG);
  size_t FP = Base.Graph.edgesNotIn(Ours.Graph).size();
  std::fprintf(Out, "  %-14s labels=%4zu  kemmerer=%4zu edges  rd-guided=%4zu "
              "edges  false-positives=%4zu (%.0f%%)\n",
              Name, CFG.numLabels(), Base.Graph.numEdges(),
              Ours.Graph.numEdges(), FP,
              Base.Graph.numEdges()
                  ? 100.0 * static_cast<double>(FP) /
                        static_cast<double>(Base.Graph.numEdges())
                  : 0.0);
}

void regenerateTable(std::FILE *Out) {
  std::fprintf(Out, "== SEC6: precision on the AES reference components\n");
  reportComponent(Out, "shiftrows", workloads::shiftRowsStatements());
  reportComponent(Out, "addroundkey", workloads::addRoundKeyStatements(16));
  reportComponent(Out, "subbytes(4)", workloads::subBytesStatements(4));
  reportComponent(Out, "mixcolumns", workloads::mixColumnsStatements());
  std::fprintf(Out, "\n");
}

void BM_Aes_AddRoundKey(benchmark::State &State) {
  ElaboratedProgram P =
      mustElaborateStatements(workloads::addRoundKeyStatements(16));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
}
BENCHMARK(BM_Aes_AddRoundKey);

void BM_Aes_SubBytes(benchmark::State &State) {
  // One unrolled S-box chain per byte: heavy label counts.
  unsigned Bytes = static_cast<unsigned>(State.range(0));
  ElaboratedProgram P =
      mustElaborateStatements(workloads::subBytesStatements(Bytes));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
  State.counters["labels"] = static_cast<double>(CFG.numLabels());
}
BENCHMARK(BM_Aes_SubBytes)->Arg(1)->Arg(2)->Arg(4);

void BM_Aes_MixColumns(benchmark::State &State) {
  ElaboratedProgram P =
      mustElaborateStatements(workloads::mixColumnsStatements());
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
}
BENCHMARK(BM_Aes_MixColumns);

void BM_Aes_CoreOneRound_Analysis(benchmark::State &State) {
  ElaboratedProgram P = mustElaborateDesign(workloads::aesCoreDesign(1));
  ProgramCFG CFG = ProgramCFG::build(P);
  for (auto _ : State) {
    IFAResult R = analyzeInformationFlow(P, CFG);
    benchmark::DoNotOptimize(R.Graph.numEdges());
  }
  State.counters["labels"] = static_cast<double>(CFG.numLabels());
}
BENCHMARK(BM_Aes_CoreOneRound_Analysis)->Unit(benchmark::kMillisecond);

void BM_Aes_CoreParseElaborate(benchmark::State &State) {
  std::string Source = workloads::aesCoreDesign(1);
  for (auto _ : State) {
    ElaboratedProgram P = mustElaborateDesign(Source);
    benchmark::DoNotOptimize(P.Variables.size());
  }
  State.counters["bytes"] = static_cast<double>(Source.size());
}
BENCHMARK(BM_Aes_CoreParseElaborate)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  regenerateTable(vif::bench::figureStream(argc, argv));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
