//===- bench/bench_query.cpp - Flow-query engine point queries ------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// What the reachability index buys: a warm point query against a cached
// session must be an O(1) bit probe (the ROADMAP acceptance number is
// <= 10 us at 1024 chain nodes, far under it in practice), witness
// extraction a BFS bounded by the path length, and the index build a
// one-time cost amortized across every query the session answers. The
// chain family gives the longest witness per node count — the worst case
// for extraction, the best case for seeing index wins over a DFS per
// query.
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisSession.h"
#include "query/FlowQueryEngine.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace vif;

namespace {

/// A warm session over an N-statement chain x_0 -> x_1 -> ... -> x_N,
/// its query engine already built.
driver::AnalysisSession chainSession(unsigned N) {
  driver::SessionOptions Opts;
  Opts.Statements = true;
  driver::AnalysisSession S = driver::AnalysisSession::fromSource(
      "chain", workloads::chainStatements(N), Opts);
  S.queryEngine();
  return S;
}

/// Warm point probe: reaches() across the whole chain (x_0 to x_N, the
/// longest dependency) on an already-built index.
void BM_Query_Reaches(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  driver::AnalysisSession S = chainSession(N);
  const query::FlowQueryEngine *Q = S.queryEngine();
  std::string From = "x_0", To = "x_" + std::to_string(N);
  for (auto _ : State)
    benchmark::DoNotOptimize(Q->reaches(From, To));
  State.SetComplexityN(N);
}
BENCHMARK(BM_Query_Reaches)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

/// Witness extraction for the full-length chain path: BFS over the CSR
/// restricted to the closure, path length N.
void BM_Query_Witness(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  driver::AnalysisSession S = chainSession(N);
  const query::FlowQueryEngine *Q = S.queryEngine();
  std::string From = "x_0", To = "x_" + std::to_string(N);
  for (auto _ : State)
    benchmark::DoNotOptimize(Q->witnessPath(From, To));
  State.SetComplexityN(N);
}
BENCHMARK(BM_Query_Witness)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

/// The sorted forward set from the chain head — N hits, N string copies.
void BM_Query_ReachableFrom(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  driver::AnalysisSession S = chainSession(N);
  const query::FlowQueryEngine *Q = S.queryEngine();
  for (auto _ : State)
    benchmark::DoNotOptimize(Q->reachableFrom("x_0"));
  State.SetComplexityN(N);
}
BENCHMARK(BM_Query_ReachableFrom)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

/// One-time index build (Warshall closure + CSR) over the session's flow
/// graph — the cost the session cache amortizes across all later probes.
void BM_Query_Build(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  driver::AnalysisSession S = chainSession(N);
  const Digraph &G = S.ifa()->Graph;
  for (auto _ : State) {
    query::FlowQueryEngine Fresh(G);
    benchmark::DoNotOptimize(Fresh.memoryBytes());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_Query_Build)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

/// The per-query DFS the index replaces, at the same probe: what a
/// reaches() would cost without the engine.
void BM_Query_DfsBaseline(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  driver::AnalysisSession S = chainSession(N);
  const Digraph &G = S.ifa()->Graph;
  std::string From = "x_0", To = "x_" + std::to_string(N);
  for (auto _ : State)
    benchmark::DoNotOptimize(G.reachable(From, To));
  State.SetComplexityN(N);
}
BENCHMARK(BM_Query_DfsBaseline)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
