//===- tests/cfg_test.cpp - Labels, flow and cross-flow -------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "parse/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vif;

namespace {

ElaboratedProgram elabStmts(const std::string &Source) {
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements(Source, Diags);
  auto P = elaborateStatements(*S, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

ElaboratedProgram elabDesign(const std::string &Source) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  auto P = elaborateDesign(F, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

TEST(CFG, StraightLine) {
  ElaboratedProgram P = elabStmts("a := b; c := a; null;");
  ProgramCFG CFG = ProgramCFG::build(P);
  ASSERT_EQ(CFG.processes().size(), 1u);
  const ProcessCFG &Proc = CFG.process(0);
  EXPECT_EQ(CFG.numLabels(), 3u);
  EXPECT_EQ(Proc.Init, 1u);
  ASSERT_EQ(Proc.Finals.size(), 1u);
  EXPECT_EQ(Proc.Finals[0], 3u);
  // flow = {(1,2), (2,3)}.
  EXPECT_EQ(Proc.Flow.size(), 2u);
  EXPECT_EQ(Proc.predecessors(2), std::vector<LabelId>{1});
  EXPECT_EQ(Proc.predecessors(3), std::vector<LabelId>{2});
  EXPECT_TRUE(Proc.predecessors(1).empty()) << "isolated entry";
}

TEST(CFG, IfProducesBranchAndJoin) {
  ElaboratedProgram P = elabStmts(
      "if c then a := b; else a := d; end if; e := a;");
  ProgramCFG CFG = ProgramCFG::build(P);
  const ProcessCFG &Proc = CFG.process(0);
  // Blocks: [c]^1, [a:=b]^2, [a:=d]^3, [e:=a]^4.
  EXPECT_EQ(CFG.numLabels(), 4u);
  EXPECT_EQ(CFG.block(1).K, CFGBlock::Kind::Cond);
  auto Preds4 = Proc.predecessors(4);
  std::sort(Preds4.begin(), Preds4.end());
  EXPECT_EQ(Preds4, (std::vector<LabelId>{2, 3}));
}

TEST(CFG, WhileLoopsBack) {
  ElaboratedProgram P = elabStmts("while c loop a := b; end loop; d := a;");
  ProgramCFG CFG = ProgramCFG::build(P);
  const ProcessCFG &Proc = CFG.process(0);
  // Blocks: [c]^1, [a:=b]^2, [d:=a]^3. Flow: (1,2), (2,1), (1,3)? No —
  // (1,3) is the exit edge: while finals = {1}, then (1,3).
  std::vector<std::pair<LabelId, LabelId>> Expect = {{1, 2}, {2, 1}, {1, 3}};
  for (const auto &E : Expect)
    EXPECT_NE(std::find(Proc.Flow.begin(), Proc.Flow.end(), E),
              Proc.Flow.end())
        << E.first << "->" << E.second;
  EXPECT_EQ(Proc.Flow.size(), 3u);
}

TEST(CFG, WaitLabelsCollected) {
  ElaboratedProgram P =
      elabStmts("s <= a; wait on s; b := a; wait on s; null;");
  ProgramCFG CFG = ProgramCFG::build(P);
  const ProcessCFG &Proc = CFG.process(0);
  EXPECT_EQ(Proc.WaitLabels, (std::vector<LabelId>{2, 4}));
  EXPECT_TRUE(CFG.isWaitLabel(2));
  EXPECT_FALSE(CFG.isWaitLabel(3));
}

TEST(CFG, LabelsAreProgramUniqueAcrossProcesses) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(clk : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= clk; wait on clk; end process p1;
      p2 : process begin q <= s; wait on s; end process p2;
    end rtl;)");
  ProgramCFG CFG = ProgramCFG::build(P);
  ASSERT_EQ(CFG.processes().size(), 2u);
  std::vector<LabelId> All;
  for (const ProcessCFG &Proc : CFG.processes())
    All.insert(All.end(), Proc.Labels.begin(), Proc.Labels.end());
  std::vector<LabelId> Sorted = All;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_TRUE(std::adjacent_find(Sorted.begin(), Sorted.end()) ==
              Sorted.end())
      << "no label appears twice";
  EXPECT_EQ(All.size(), CFG.numLabels());
  // Every label maps back to its process.
  for (const ProcessCFG &Proc : CFG.processes())
    for (LabelId L : Proc.Labels)
      EXPECT_EQ(CFG.processOf(L), Proc.ProcessId);
}

TEST(CFG, LoopedProcessHasIsolatedEntry) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(clk : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
    begin
      p : process begin q <= clk; wait on clk; end process p;
    end rtl;)");
  ProgramCFG CFG = ProgramCFG::build(P);
  const ProcessCFG &Proc = CFG.process(0);
  // null; while '1' loop (assign; wait) — entry is the null label with no
  // predecessors.
  EXPECT_TRUE(Proc.predecessors(Proc.Init).empty());
  EXPECT_EQ(CFG.block(Proc.Init).K, CFGBlock::Kind::Null);
  // The while condition is reentered from the wait.
  LabelId CondLabel = 0;
  for (LabelId L : Proc.Labels)
    if (CFG.block(L).K == CFGBlock::Kind::Cond)
      CondLabel = L;
  ASSERT_NE(CondLabel, 0u);
  auto Preds = Proc.predecessors(CondLabel);
  EXPECT_EQ(Preds.size(), 2u) << "null entry + loop back from wait";
}

TEST(CFG, CrossFlowCompatibility) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(clk : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= clk; wait on clk; s <= s; wait on s;
      end process p1;
      p2 : process begin q <= s; wait on s; end process p2;
    end rtl;)");
  ProgramCFG CFG = ProgramCFG::build(P);
  std::vector<LabelId> W1 = CFG.process(0).WaitLabels;
  std::vector<LabelId> W2 = CFG.process(1).WaitLabels;
  ASSERT_EQ(W1.size(), 2u);
  ASSERT_EQ(W2.size(), 1u);
  // Same process, different labels: incompatible.
  EXPECT_FALSE(CFG.cfCompatible(W1[0], W1[1]));
  EXPECT_TRUE(CFG.cfCompatible(W1[0], W1[0]));
  // Different processes: compatible.
  EXPECT_TRUE(CFG.cfCompatible(W1[0], W2[0]));
  EXPECT_TRUE(CFG.cfCompatible(W1[1], W2[0]));
  // Non-wait labels are never compatible.
  EXPECT_FALSE(CFG.cfCompatible(CFG.process(0).Init, W2[0]));
}

TEST(CFG, CrossFlowTuples) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(clk : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= clk; wait on clk; s <= s; wait on s;
      end process p1;
      p2 : process begin q <= s; wait on s; end process p2;
    end rtl;)");
  ProgramCFG CFG = ProgramCFG::build(P);
  auto Tuples = CFG.crossFlowTuples();
  // |cf| = |WS(p1)| * |WS(p2)| = 2 * 1.
  ASSERT_EQ(Tuples.size(), 2u);
  for (const auto &T : Tuples)
    EXPECT_EQ(T.size(), 2u);
  // Every tuple component pair must be cf-compatible.
  for (const auto &T : Tuples)
    for (LabelId A : T)
      for (LabelId B : T)
        EXPECT_TRUE(CFG.cfCompatible(A, B));
}

TEST(CFG, ProcessWithoutWaitsExcludedFromCf) {
  ElaboratedProgram P = elabStmts("a := b; c := a;");
  ProgramCFG CFG = ProgramCFG::build(P);
  EXPECT_TRUE(CFG.crossFlowTuples().empty());
  EXPECT_TRUE(CFG.allWaitLabels().empty());
}

TEST(CFG, FreeVarsAndSignals) {
  ElaboratedProgram P = elabStmts("s <= a; wait on t until b = '1';");
  ProgramCFG CFG = ProgramCFG::build(P);
  const ProcessCFG &Proc = CFG.process(0);
  EXPECT_EQ(Proc.FreeVars.size(), 2u) << "a and b";
  EXPECT_EQ(Proc.FreeSigs.size(), 2u) << "s and t";
}

TEST(CFG, EmptyCompoundGetsLabel) {
  DiagnosticEngine Diags;
  CompoundStmt Empty({}, SourceRange());
  auto P = elaborateStatements(Empty, Diags);
  ASSERT_TRUE(P.has_value());
  ProgramCFG CFG = ProgramCFG::build(*P);
  EXPECT_EQ(CFG.numLabels(), 1u);
  EXPECT_EQ(CFG.block(1).K, CFGBlock::Kind::Null);
}

TEST(CFG, StmtLabelLookup) {
  ElaboratedProgram P = elabStmts("a := b; c := a;");
  ProgramCFG CFG = ProgramCFG::build(P);
  const auto *C = cast<CompoundStmt>(P.Processes[0].Body.get());
  EXPECT_EQ(CFG.labelOf(C->stmts()[0].get()), 1u);
  EXPECT_EQ(CFG.labelOf(C->stmts()[1].get()), 2u);
}

} // namespace
