//===- tests/ifa_test.cpp - Information Flow closure (Tables 7-9) ---------===//
//
// Part of the vif project; see DESIGN.md for the paper reference. The tests
// here reproduce the paper's running examples exactly: Figure 3 (programs
// (a) and (b)), Figure 4 (the improved analysis of (b)) and the precision
// claims of Sections 5.2/5.3.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "ifa/Policy.h"
#include "ifa/Report.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

struct Analyzed {
  ElaboratedProgram Program;
  ProgramCFG CFG;
  IFAResult R;
};

Analyzed analyzeStmts(const std::string &Source, IFAOptions Opts = {}) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(Source, Diags);
  auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  Analyzed A{std::move(*P), {}, {}};
  A.CFG = ProgramCFG::build(A.Program);
  A.R = analyzeInformationFlow(A.Program, A.CFG, Opts);
  return A;
}

Analyzed analyzeDesign(const std::string &Source, IFAOptions Opts = {}) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  auto P = elaborateDesign(F, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  Analyzed A{std::move(*P), {}, {}};
  A.CFG = ProgramCFG::build(A.Program);
  A.R = analyzeInformationFlow(A.Program, A.CFG, Opts);
  return A;
}

//===----------------------------------------------------------------------===//
// Figure 3: the running examples
//===----------------------------------------------------------------------===//

TEST(Fig3, ProgramA_NonTransitive) {
  // (a): [c := b]^1; [b := a]^2. Flow b -> c and a -> b, but NOT a -> c:
  // by the time b holds a's value, c has already been written.
  Analyzed A = analyzeStmts("c := b; b := a;");
  EXPECT_TRUE(A.R.Graph.hasEdge("b", "c"));
  EXPECT_TRUE(A.R.Graph.hasEdge("a", "b"));
  EXPECT_FALSE(A.R.Graph.hasEdge("a", "c"))
      << "the non-transitivity the paper's abstract advertises";
  EXPECT_EQ(A.R.Graph.numEdges(), 2u);
  EXPECT_FALSE(A.R.Graph.isTransitive());
}

TEST(Fig3, ProgramB_TransitiveFlowIsReal) {
  // (b): [b := a]^1; [c := b]^2. Here a -> c genuinely flows.
  Analyzed A = analyzeStmts("b := a; c := b;");
  EXPECT_TRUE(A.R.Graph.hasEdge("a", "b"));
  EXPECT_TRUE(A.R.Graph.hasEdge("b", "c"));
  EXPECT_TRUE(A.R.Graph.hasEdge("a", "c"));
  EXPECT_EQ(A.R.Graph.numEdges(), 3u);
}

TEST(Fig3, KemmererCannotSeparateAandB) {
  // Section 5.2: the transitive-closure method yields Figure 3(b) for BOTH
  // programs — flow-insensitivity.
  DiagnosticEngine Diags;
  for (const char *Source : {"c := b; b := a;", "b := a; c := b;"}) {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
    ASSERT_TRUE(P.has_value());
    ProgramCFG CFG = ProgramCFG::build(*P);
    KemmererResult K = analyzeKemmerer(*P, CFG);
    EXPECT_TRUE(K.Graph.hasEdge("a", "b"));
    EXPECT_TRUE(K.Graph.hasEdge("b", "c"));
    EXPECT_TRUE(K.Graph.hasEdge("a", "c"))
        << "Kemmerer adds the spurious edge for (a) and the real one for "
           "(b) alike";
  }
}

TEST(Fig3, OurAnalysisIsNeverLessPreciseHere) {
  Analyzed A = analyzeStmts("c := b; b := a;");
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram("c := b; b := a;", Diags);
  auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  ProgramCFG CFG = ProgramCFG::build(*P);
  KemmererResult K = analyzeKemmerer(*P, CFG);
  EXPECT_TRUE(A.R.Graph.edgesNotIn(K.Graph).empty())
      << "our edges are a subset of Kemmerer's";
  EXPECT_EQ(K.Graph.edgesNotIn(A.R.Graph).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Figure 4: the improved analysis
//===----------------------------------------------------------------------===//

TEST(Fig4, ImprovedAnalysisOfProgramB) {
  // Figure 4(b): with incoming (n◦) and outgoing (n•) nodes, the initial
  // value of a flows to every final value, but the initial value of b is
  // overwritten before anyone reads it, so b◦ flows nowhere.
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  Analyzed A = analyzeStmts("b := a; c := b;", Opts);
  Digraph Interface = A.R.interfaceGraph();
  EXPECT_TRUE(Interface.hasEdge("a◦", "a•"));
  EXPECT_TRUE(Interface.hasEdge("a◦", "b•"));
  EXPECT_TRUE(Interface.hasEdge("a◦", "c•"));
  EXPECT_FALSE(Interface.hasEdge("b◦", "c•"))
      << "\"the initial value of the variable b cannot be read from the "
         "variable c\" (Section 5.3)";
  EXPECT_FALSE(Interface.hasEdge("b◦", "b•"));
  EXPECT_FALSE(Interface.hasEdge("c◦", "c•"));
  EXPECT_EQ(Interface.numEdges(), 3u);
  EXPECT_EQ(Interface.numNodes(), 6u) << "a◦ a• b◦ b• c◦ c•";
}

TEST(Fig4, BasicGraphStillSaysBFlowsToC) {
  // Figure 4(a): without the improvement, b -> c is reported (correct for
  // the *final* value of b, overly coarse for its initial value).
  Analyzed A = analyzeStmts("b := a; c := b;");
  EXPECT_TRUE(A.R.Graph.hasEdge("b", "c"));
}

TEST(Fig4, SelfOverwriteKeepsIncomingFlow) {
  // x := x and '1' reads the initial x: x◦ -> x•.
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  Analyzed A = analyzeStmts("x := x and y;", Opts);
  Digraph Interface = A.R.interfaceGraph();
  EXPECT_TRUE(Interface.hasEdge("x◦", "x•"));
  EXPECT_TRUE(Interface.hasEdge("y◦", "x•"));
  EXPECT_TRUE(Interface.hasEdge("y◦", "y•")) << "y never written";
}

//===----------------------------------------------------------------------===//
// Section 7 / Open Challenge F: overwritten secrets
//===----------------------------------------------------------------------===//

TEST(Precision, OverwrittenSecretDoesNotLeak) {
  // "the improved information flow analysis correctly analyses programs
  // that would incorrectly be rejected by typical security-type systems"
  // — the secret is loaded into x but overwritten before x escapes.
  Analyzed A = analyzeStmts("x := secret; x := pub; escape := x;");
  EXPECT_FALSE(A.R.Graph.hasEdge("secret", "escape"));
  EXPECT_TRUE(A.R.Graph.hasEdge("pub", "escape"));
  EXPECT_TRUE(A.R.Graph.hasEdge("secret", "x"))
      << "the transient flow into x itself is still reported";
}

TEST(Precision, ImplicitFlowIsReported) {
  Analyzed A = analyzeStmts(
      "if secret then x := '1'; else x := '0'; end if; escape := x;");
  EXPECT_TRUE(A.R.Graph.hasEdge("secret", "x"));
  EXPECT_TRUE(A.R.Graph.hasEdge("secret", "escape"))
      << "branch-condition flows survive the closure";
}

TEST(Precision, BranchLocalTemporariesDoNotCrossTalk) {
  // t is reused in both branches; values never cross between x and y.
  Analyzed A = analyzeStmts(
      "t := a; x := t; t := b; y := t;");
  EXPECT_TRUE(A.R.Graph.hasEdge("a", "x"));
  EXPECT_TRUE(A.R.Graph.hasEdge("b", "y"));
  EXPECT_FALSE(A.R.Graph.hasEdge("a", "y")) << "killed by t := b";
  EXPECT_FALSE(A.R.Graph.hasEdge("b", "x"));
}

//===----------------------------------------------------------------------===//
// Signals, synchronization and the [Synchronized values] rule
//===----------------------------------------------------------------------===//

const char *TwoPortHeader =
    "entity e is port(clk : in std_logic; secret : in std_logic; "
    "q : out std_logic); end e;\n";

TEST(Signals, CrossProcessFlowThroughDelta) {
  // p1 drives s from secret; p2 copies s to q. Information genuinely
  // crosses the synchronization: secret -> s -> q, and the composed
  // secret -> q flow exists because the pipeline really forwards it.
  Analyzed A = analyzeDesign(std::string(TwoPortHeader) + R"(
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= secret; wait on clk; end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := s;
        q <= x;
        wait on clk;
      end process p2;
    end rtl;)");
  EXPECT_TRUE(A.R.Graph.hasEdge("secret", "s"));
  EXPECT_TRUE(A.R.Graph.hasEdge("s", "q")) << "present value read into q";
  EXPECT_TRUE(A.R.Graph.hasEdge("secret", "q"))
      << "[Synchronized values] composes the flow across the delta cycle";
}

TEST(Signals, OverwrittenActiveValueDoesNotLeak) {
  // p1 assigns secret to s but overwrites the *active* value with '0'
  // before the synchronization: the secret never becomes visible.
  Analyzed A = analyzeDesign(std::string(TwoPortHeader) + R"(
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= secret; s <= '0'; wait on clk;
      end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := s;
        q <= x;
        wait on clk;
      end process p2;
    end rtl;)");
  EXPECT_TRUE(A.R.Graph.hasEdge("secret", "s"))
      << "the transient write is a flow into s's driver";
  EXPECT_FALSE(A.R.Graph.hasEdge("secret", "q"))
      << "the active-value kill (Table 4) stops the leak at the sync";
  EXPECT_FALSE(A.R.Graph.hasEdge("secret", "x"));
}

TEST(Signals, WaitConditionLeaksIntoSubsequentReads) {
  // Table 6 [Synchronization]: the waited-on set and until-condition are
  // read at the wait; whoever reads a signal defined by that wait observes
  // them.
  Analyzed A = analyzeDesign(std::string(TwoPortHeader) + R"(
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= clk; wait on clk; end process p1;
      p2 : process
        variable x : std_logic;
      begin
        wait on s until secret = '1';
        x := s;
        q <= x;
        wait on clk;
      end process p2;
    end rtl;)");
  EXPECT_TRUE(A.R.Graph.hasEdge("secret", "q"))
      << "synchronizing on a secret-gated condition reveals the secret";
}

TEST(Signals, PipelineComposesAcrossDeltas) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(R"(
    entity pipe is port(s_0 : in std_logic; s_1 : inout std_logic;
                        s_2 : out std_logic); end pipe;
    architecture rtl of pipe is
    begin
      a : process begin s_1 <= s_0; wait on s_0; end process a;
      b : process begin s_2 <= s_1; wait on s_1; end process b;
    end rtl;)",
                             Diags);
  auto P = elaborateDesign(F, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ProgramCFG CFG = ProgramCFG::build(*P);
  IFAResult R = analyzeInformationFlow(*P, CFG);
  EXPECT_TRUE(R.Graph.hasEdge("s_0", "s_1"));
  EXPECT_TRUE(R.Graph.hasEdge("s_1", "s_2"));
  EXPECT_TRUE(R.Graph.hasEdge("s_0", "s_2"))
      << "two delta cycles really forward s_0 into s_2";
}

//===----------------------------------------------------------------------===//
// Table 9 on designs: ports get interface nodes
//===----------------------------------------------------------------------===//

TEST(Improved, InPortsGetIncomingNodes) {
  IFAOptions Opts;
  Opts.Improved = true;
  Analyzed A = analyzeDesign(std::string(TwoPortHeader) + R"(
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= secret; wait on clk; end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := s;
        q <= x;
        wait on clk;
      end process p2;
    end rtl;)",
                             Opts);
  // q is an out port: q• exists and receives the flows that reach q's
  // driver; secret flows out.
  EXPECT_TRUE(A.R.Graph.hasNode("q•"));
  EXPECT_TRUE(A.R.Graph.hasEdge("s", "q•"));
  EXPECT_TRUE(A.R.Graph.hasEdge("secret", "q•"));
  // secret is an in port: reading its present value after a sync point
  // reads the environment's value secret◦.
  EXPECT_TRUE(A.R.Graph.hasNode("secret◦"));
}

TEST(Improved, IncomingPortValueReachesOutputs) {
  IFAOptions Opts;
  Opts.Improved = true;
  Analyzed A = analyzeDesign(R"(
    entity e is port(din : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
    begin
      p : process
        variable x : std_logic;
      begin
        wait on din;
        x := din;
        q <= x;
        wait on din;
      end process p;
    end rtl;)",
                             Opts);
  EXPECT_TRUE(A.R.Graph.hasEdge("din◦", "q•"))
      << "environment input flows to environment output";
}

//===----------------------------------------------------------------------===//
// The Hsieh-Levitan baseline (paper Section 1 related work)
//===----------------------------------------------------------------------===//

TEST(HsiehLevitan, MissesMidProcessSynchronizedLeak) {
  // p1 drives s from secret before its FIRST wait but overwrites the
  // driver before the process ends. The leak through the first
  // synchronization is real — p2 may read it — and our analysis reports
  // it. The Hsieh-Levitan-style RD samples other processes' definitions
  // only at process ends and loses it: "the presented analysis is only
  // correct for processes with one synchronization point" (Section 1).
  const char *Source = R"(
    entity e is port(clk : in std_logic; secret : in std_logic;
                     q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process
      begin
        s <= secret;
        wait on clk;
        s <= '0';
        wait on clk;
      end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := s;
        q <= x;
        wait on clk;
      end process p2;
    end rtl;)";
  Analyzed Ours = analyzeDesign(Source);
  EXPECT_TRUE(Ours.R.Graph.hasEdge("secret", "q"))
      << "the first-sync leak is real and must be reported";

  IFAOptions HL;
  HL.RD.HsiehLevitanCrossFlow = true;
  Analyzed Baseline = analyzeDesign(Source, HL);
  EXPECT_FALSE(Baseline.R.Graph.hasEdge("secret", "q"))
      << "the end-of-process sampling loses the mid-process definition — "
         "the unsoundness the paper points out";
}

TEST(HsiehLevitan, AgreesOnSingleWaitProcesses) {
  // With exactly one synchronization point per process the two cross-flow
  // rules coincide (the paper: "only correct for processes with one
  // synchronization point").
  const char *Source = R"(
    entity e is port(clk : in std_logic; secret : in std_logic;
                     q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= secret; wait on clk; end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := s;
        q <= x;
        wait on clk;
      end process p2;
    end rtl;)";
  Analyzed Ours = analyzeDesign(Source);
  IFAOptions HL;
  HL.RD.HsiehLevitanCrossFlow = true;
  Analyzed Baseline = analyzeDesign(Source, HL);
  EXPECT_TRUE(Ours.R.Graph.sameFlows(Baseline.R.Graph));
}

//===----------------------------------------------------------------------===//
// RMgl structure
//===----------------------------------------------------------------------===//

TEST(Closure, RMloSubsetOfRMgl) {
  Analyzed A = analyzeStmts(
      "if c then x := a; end if; y := x; s <= y; wait on s; z := s;");
  for (const RMEntry &E : A.R.RMlo)
    EXPECT_TRUE(A.R.RMgl.contains(E.N, E.L, E.A))
        << "[Initialization] rule";
}

TEST(Closure, LabelIndexedViewMatchesMatrix) {
  IFAOptions Opts;
  Opts.Improved = true;
  Opts.ProgramEndOutgoing = true;
  Analyzed A = analyzeStmts(
      "if c then x := a; end if; y := x; s <= y; wait on s; z := s;", Opts);
  LabelIndexedRM View(A.R.RMgl);
  // The view is the same relation, label-indexed: every (l, A) range must
  // reproduce resourcesAt, and extraction through it the same graph.
  size_t Total = 0;
  for (LabelId L = 0; L <= View.maxLabel(); ++L)
    for (Access Acc : {Access::M0, Access::M1, Access::R0, Access::R1}) {
      std::vector<Resource> FromSet = A.R.RMgl.resourcesAt(L, Acc);
      LabelIndexedRM::RawRun FromView = View.at(L, Acc);
      ASSERT_EQ(FromView.size(), FromSet.size());
      for (size_t I = 0; I < FromSet.size(); ++I)
        EXPECT_EQ(FromView[I], FromSet[I].raw());
      Total += FromView.size();
    }
  EXPECT_EQ(Total, A.R.RMgl.size());
  EXPECT_TRUE(extractFlowGraph(View, A.Program)
                  .sameFlows(extractFlowGraph(A.R.RMgl, A.Program)));
}

TEST(Closure, CopiesAreR0Only) {
  Analyzed A = analyzeStmts("b := a; c := b;");
  // RMgl \ RMlo contains only R0 entries.
  for (const RMEntry &E : A.R.RMgl) {
    if (!A.R.RMlo.contains(E.N, E.L, E.A)) {
      EXPECT_EQ(E.A, Access::R0);
    }
  }
}

TEST(Closure, RDDaggerRestrictsToActualReads) {
  Analyzed A = analyzeStmts("x := a; y := b;");
  // RD†(2) only contains b's definition — x's def reaches label 2 but is
  // not read there.
  for (const DefPair &D : A.R.RDDagger[2])
    EXPECT_TRUE(A.R.RMlo.contains(D.N, 2, Access::R0));
}

TEST(Closure, DeepChainStaysLinear) {
  // x5 sees x0 but x_i never sees x_j for j > i; count edges exactly.
  std::string Source;
  for (int I = 0; I <= 5; ++I)
    Source += "variable x_" + std::to_string(I) + " : std_logic;\n";
  for (int I = 1; I <= 5; ++I)
    Source += "x_" + std::to_string(I) + " := x_" + std::to_string(I - 1) +
              ";\n";
  Analyzed A = analyzeStmts(Source);
  // Every x_j -> x_i for j < i exists (the values genuinely flow), and
  // nothing else: n(n+1)/2 = 15 edges for n = 5.
  EXPECT_EQ(A.R.Graph.numEdges(), 15u);
  EXPECT_TRUE(A.R.Graph.hasEdge("x_0", "x_5"));
  EXPECT_FALSE(A.R.Graph.hasEdge("x_5", "x_0"));
}

TEST(Closure, KemmererAgreesWhenNothingIsOverwritten) {
  // With no kills in play, both methods coincide.
  Analyzed A = analyzeStmts("b := a; c := b;");
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram("b := a; c := b;", Diags);
  auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  ProgramCFG CFG = ProgramCFG::build(*P);
  KemmererResult K = analyzeKemmerer(*P, CFG);
  EXPECT_TRUE(A.R.Graph.sameFlows(K.Graph));
}

//===----------------------------------------------------------------------===//
// Policy checking
//===----------------------------------------------------------------------===//

TEST(Policy, EdgeAndReachabilitySemantics) {
  Analyzed A = analyzeStmts("c := b; b := a;");
  FlowPolicy P;
  P.Forbidden.push_back({"a", "c"});
  EXPECT_TRUE(checkFlowPolicy(A.R.Graph, P).empty())
      << "no edge a -> c: the policy holds under flow semantics";
  P.ConservativeReachability = true;
  auto V = checkFlowPolicy(A.R.Graph, P);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_TRUE(V[0].ViaPath)
      << "a conservative auditor still flags the path a -> b -> c";
}

TEST(Policy, DirectViolation) {
  Analyzed A = analyzeStmts("leak := secret;");
  FlowPolicy P;
  P.Forbidden.push_back({"secret", "leak"});
  auto V = checkFlowPolicy(A.R.Graph, P);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_FALSE(V[0].ViaPath);
}

//===----------------------------------------------------------------------===//
// Audit report
//===----------------------------------------------------------------------===//

TEST(Report, ContainsStatsInterfaceAndVerdict) {
  IFAOptions Opts;
  Opts.Improved = true;
  Analyzed A = analyzeDesign(std::string(TwoPortHeader) + R"(
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= secret; wait on clk; end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := s;
        q <= x;
        wait on clk;
      end process p2;
    end rtl;)",
                             Opts);
  ReportOptions RepOpts;
  RepOpts.Policy.Forbidden.push_back({"secret", "q"});
  RepOpts.Policy.Forbidden.push_back({"clk", "secret"});
  std::string Text = auditReport(A.Program, A.R, RepOpts);

  EXPECT_NE(Text.find("transitive"), std::string::npos)
      << "transitivity verdict present (this particular graph happens to "
         "be transitive: every composed flow is real)";
  EXPECT_NE(Text.find("[in port]"), std::string::npos);
  EXPECT_NE(Text.find("[out port]"), std::string::npos);
  // Interface section shows secret reaching q.
  EXPECT_NE(Text.find("secret -> q"), std::string::npos);
  // Policy verdicts: the secret->q rule is violated, clk->secret holds.
  EXPECT_NE(Text.find("VIOLATED secret -> q"), std::string::npos);
  EXPECT_NE(Text.find("ok       clk -> secret"), std::string::npos);
  EXPECT_NE(Text.find("verdict: FAIL"), std::string::npos);
}

TEST(Report, PassVerdictAndIsolatedNodes) {
  Analyzed A = analyzeStmts("x := a; dead := dead;");
  ReportOptions RepOpts;
  RepOpts.Policy.Forbidden.push_back({"a", "dead"});
  std::string Text = auditReport(A.Program, A.R, RepOpts);
  EXPECT_NE(Text.find("verdict: PASS"), std::string::npos);
  EXPECT_NE(Text.find("dead: in=1 out=1"), std::string::npos)
      << "self-flow counts on both sides";
}

TEST(Report, OmitsPolicySectionWhenEmpty) {
  Analyzed A = analyzeStmts("b := a;");
  std::string Text = auditReport(A.Program, A.R);
  EXPECT_EQ(Text.find("-- policy"), std::string::npos);
  EXPECT_NE(Text.find("a -> b"), std::string::npos);
}

} // namespace
