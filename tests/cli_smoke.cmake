# CLI smoke test: exercise the built vifc binary end-to-end on real VHDL
# designs. Invoked by ctest as
#   cmake -DVIFC=<path> -DINPUT=<smoke.vhd> -DINPUT2=<smoke2.vhd>
#         -DBADINPUT=<broken.vhd> -P cli_smoke.cmake
# Fails (FATAL_ERROR) if any subcommand misbehaves: wrong exit code,
# missing implicit-flow edge, broken --json/batch output, or argument
# errors that don't produce the usage exit code.

function(run_vifc out_var)
  execute_process(COMMAND ${VIFC} ${ARGN} ${INPUT}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "vifc ${ARGN} failed (rc=${rc}):\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Expects rc == ${rc_want}; stdout+stderr are returned in ${out_var}.
function(run_vifc_rc out_var rc_want)
  execute_process(COMMAND ${VIFC} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${rc_want})
    message(FATAL_ERROR
            "vifc ${ARGN}: expected rc=${rc_want}, got rc=${rc}:\n${out}\n${err}")
  endif()
  set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

run_vifc(check_out check)
run_vifc(flows_out flows)
run_vifc(rm_out rm)
run_vifc(sim_out sim)

if(NOT flows_out MATCHES "sel[ \t]*->[ \t]*q")
  message(FATAL_ERROR "vifc flows did not report the implicit flow sel -> q:\n${flows_out}")
endif()

# --json on a single file: machine-readable, status ok, same implicit flow.
run_vifc(json_out flows --json)
if(NOT json_out MATCHES [["status": "ok"]] OR NOT json_out MATCHES [["from": "sel"]])
  message(FATAL_ERROR "vifc flows --json output malformed:\n${json_out}")
endif()

# Multi-FILE batch: both designs analyzed, summary says 2 ok.
run_vifc_rc(batch_out 0 check --json ${INPUT} ${INPUT2})
if(NOT batch_out MATCHES [["ok": 2]])
  message(FATAL_ERROR "vifc batch over two designs did not report 2 ok:\n${batch_out}")
endif()

# A broken design must not stop the batch: the good design still reports
# ok, the broken one reports error, and the exit code flags the failure.
run_vifc_rc(mixed_out 1 flows --json ${INPUT} ${BADINPUT})
if(NOT mixed_out MATCHES [["status": "ok"]] OR NOT mixed_out MATCHES [["status": "error"]])
  message(FATAL_ERROR "vifc batch did not keep going past a broken design:\n${mixed_out}")
endif()

# Argument errors: a malformed --deltas value and a trailing value-taking
# option must diagnose and return the usage exit code (2), not abort.
run_vifc_rc(deltas_out 2 sim --deltas abc ${INPUT})
if(NOT deltas_out MATCHES "expects a non-negative integer")
  message(FATAL_ERROR "vifc --deltas abc did not diagnose:\n${deltas_out}")
endif()
run_vifc_rc(trailing_out 2 sim ${INPUT} --deltas)
if(NOT trailing_out MATCHES "requires a value")
  message(FATAL_ERROR "vifc trailing --deltas did not diagnose:\n${trailing_out}")
endif()
run_vifc_rc(stdin_out 2 check - -)
if(NOT stdin_out MATCHES "at most once")
  message(FATAL_ERROR "vifc did not reject duplicate stdin inputs:\n${stdin_out}")
endif()

message(STATUS "vifc CLI smoke test passed")
