# CLI smoke test: exercise the built vifc binary end-to-end on real VHDL
# designs. Invoked by ctest as
#   cmake -DVIFC=<path> -DINPUT=<smoke.vhd> -DINPUT2=<smoke2.vhd>
#         -DBADINPUT=<broken.vhd> -P cli_smoke.cmake
# Fails (FATAL_ERROR) if any subcommand misbehaves: wrong exit code,
# missing implicit-flow edge, broken --json/batch output, or argument
# errors that don't produce the usage exit code.

function(run_vifc out_var)
  execute_process(COMMAND ${VIFC} ${ARGN} ${INPUT}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "vifc ${ARGN} failed (rc=${rc}):\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Expects rc == ${rc_want}; stdout+stderr are returned in ${out_var}.
function(run_vifc_rc out_var rc_want)
  execute_process(COMMAND ${VIFC} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${rc_want})
    message(FATAL_ERROR
            "vifc ${ARGN}: expected rc=${rc_want}, got rc=${rc}:\n${out}\n${err}")
  endif()
  set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

run_vifc(check_out check)
run_vifc(flows_out flows)
run_vifc(rm_out rm)
run_vifc(sim_out sim)

if(NOT flows_out MATCHES "sel[ \t]*->[ \t]*q")
  message(FATAL_ERROR "vifc flows did not report the implicit flow sel -> q:\n${flows_out}")
endif()

# --json on a single file: machine-readable, status ok, same implicit
# flow, and the versioned schema tag leading the document.
run_vifc(json_out flows --json)
if(NOT json_out MATCHES [["status": "ok"]] OR NOT json_out MATCHES [["from": "sel"]])
  message(FATAL_ERROR "vifc flows --json output malformed:\n${json_out}")
endif()
if(NOT json_out MATCHES [["schema": "vifc.v1"]])
  message(FATAL_ERROR "vifc flows --json lacks the vifc.v1 schema tag:\n${json_out}")
endif()

# Point queries: text answer with a witness chain, the same through
# --json, and a negative answer still exits 0 (only analysis failures
# flag the exit code).
run_vifc(query_out query --from sel --to q)
if(NOT query_out MATCHES "reaches\\(sel, q\\): yes" OR
   NOT query_out MATCHES "witness: sel -> q")
  message(FATAL_ERROR "vifc query text output malformed:\n${query_out}")
endif()
run_vifc(queryjson_out query --from sel --to q --json)
if(NOT queryjson_out MATCHES [["reaches": true]] OR
   NOT queryjson_out MATCHES [["command": "query"]] OR
   NOT queryjson_out MATCHES [["node": "sel"]])
  message(FATAL_ERROR "vifc query --json output malformed:\n${queryjson_out}")
endif()
run_vifc(queryneg_out query --from q --to sel)
if(NOT queryneg_out MATCHES "reaches\\(q, sel\\): no")
  message(FATAL_ERROR "vifc negative query misreported:\n${queryneg_out}")
endif()

# sim and datalog also speak vifc.v1 under --json.
run_vifc(simjson_out sim --json)
if(NOT simjson_out MATCHES [["schema": "vifc.v1"]] OR
   NOT simjson_out MATCHES [["command": "sim"]] OR
   NOT simjson_out MATCHES [["status": "quiescent"]])
  message(FATAL_ERROR "vifc sim --json output malformed:\n${simjson_out}")
endif()

# Multi-FILE batch: both designs analyzed, summary says 2 ok.
run_vifc_rc(batch_out 0 check --json ${INPUT} ${INPUT2})
if(NOT batch_out MATCHES [["ok": 2]])
  message(FATAL_ERROR "vifc batch over two designs did not report 2 ok:\n${batch_out}")
endif()

# A broken design must not stop the batch: the good design still reports
# ok, the broken one reports error, and the exit code flags the failure.
run_vifc_rc(mixed_out 1 flows --json ${INPUT} ${BADINPUT})
if(NOT mixed_out MATCHES [["status": "ok"]] OR NOT mixed_out MATCHES [["status": "error"]])
  message(FATAL_ERROR "vifc batch did not keep going past a broken design:\n${mixed_out}")
endif()

# Argument errors: a malformed --deltas value and a trailing value-taking
# option must diagnose and return the usage exit code (2), not abort.
run_vifc_rc(deltas_out 2 sim --deltas abc ${INPUT})
if(NOT deltas_out MATCHES "expects a non-negative integer")
  message(FATAL_ERROR "vifc --deltas abc did not diagnose:\n${deltas_out}")
endif()
run_vifc_rc(trailing_out 2 sim ${INPUT} --deltas)
if(NOT trailing_out MATCHES "requires a value")
  message(FATAL_ERROR "vifc trailing --deltas did not diagnose:\n${trailing_out}")
endif()
run_vifc_rc(stdin_out 2 check - -)
if(NOT stdin_out MATCHES "at most once")
  message(FATAL_ERROR "vifc did not reject duplicate stdin inputs:\n${stdin_out}")
endif()

# --help (anywhere) prints usage on stdout and exits 0; unknown options,
# unknown commands and command/flag mismatches all exit 2.
run_vifc_rc(help_out 0 --help)
if(NOT help_out MATCHES "usage: vifc")
  message(FATAL_ERROR "vifc --help did not print usage:\n${help_out}")
endif()
run_vifc_rc(help2_out 0 help)
run_vifc_rc(help3_out 0 flows --help)
run_vifc_rc(unknown_out 2 flows --no-such-flag ${INPUT})
if(NOT unknown_out MATCHES "unknown option")
  message(FATAL_ERROR "vifc unknown option not diagnosed:\n${unknown_out}")
endif()
run_vifc_rc(unknowncmd_out 2 frobnicate ${INPUT})
if(NOT unknowncmd_out MATCHES "unknown command")
  message(FATAL_ERROR "vifc unknown command not diagnosed:\n${unknowncmd_out}")
endif()
# ... also without a FILE, and before any flag diagnostics.
run_vifc_rc(unknowncmd2_out 2 frobnicate)
if(NOT unknowncmd2_out MATCHES "unknown command")
  message(FATAL_ERROR "bare unknown command not diagnosed:\n${unknowncmd2_out}")
endif()
run_vifc_rc(unknowncmd3_out 2 frobnicate --json ${INPUT})
if(NOT unknowncmd3_out MATCHES "unknown command")
  message(FATAL_ERROR "unknown command with flag misdiagnosed:\n${unknowncmd3_out}")
endif()
run_vifc_rc(mismatch_out 2 check --dot ${INPUT})
if(NOT mismatch_out MATCHES "does not apply")
  message(FATAL_ERROR "vifc command/flag mismatch not diagnosed:\n${mismatch_out}")
endif()
# query requires both endpoints; a trailing --from needs its value; and
# --from belongs to query alone.
run_vifc_rc(queryfrom_out 2 query --from sel ${INPUT})
if(NOT queryfrom_out MATCHES "requires both --from and --to")
  message(FATAL_ERROR "vifc query without --to not diagnosed:\n${queryfrom_out}")
endif()
run_vifc_rc(querytrail_out 2 query ${INPUT} --from)
if(NOT querytrail_out MATCHES "requires a value")
  message(FATAL_ERROR "vifc trailing --from not diagnosed:\n${querytrail_out}")
endif()
run_vifc_rc(queryflag_out 2 flows --from sel --to q ${INPUT})
if(NOT queryflag_out MATCHES "does not apply")
  message(FATAL_ERROR "vifc --from on flows not diagnosed:\n${queryflag_out}")
endif()
run_vifc_rc(servefile_out 2 serve ${INPUT})
if(NOT servefile_out MATCHES "takes no FILE")
  message(FATAL_ERROR "vifc serve with FILE not diagnosed:\n${servefile_out}")
endif()

message(STATUS "vifc CLI smoke test passed")
