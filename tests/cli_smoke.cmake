# CLI smoke test: exercise the built vifc binary end-to-end on a real VHDL
# design. Invoked by ctest as
#   cmake -DVIFC=<path> -DINPUT=<smoke.vhd> -P cli_smoke.cmake
# Fails (FATAL_ERROR) if any subcommand exits non-zero or the flows output
# lacks the expected implicit-flow edge sel -> q.

function(run_vifc out_var)
  execute_process(COMMAND ${VIFC} ${ARGN} ${INPUT}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "vifc ${ARGN} failed (rc=${rc}):\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_vifc(check_out check)
run_vifc(flows_out flows)
run_vifc(rm_out rm)
run_vifc(sim_out sim)

if(NOT flows_out MATCHES "sel[ \t]*->[ \t]*q")
  message(FATAL_ERROR "vifc flows did not report the implicit flow sel -> q:\n${flows_out}")
endif()
message(STATUS "vifc CLI smoke test passed")
