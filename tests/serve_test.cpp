//===- tests/serve_test.cpp - vifc serve protocol end-to-end --------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives driver::Server in-process: multi-request sessions, cache-hit
/// assertions, malformed-request error objects, the fd transport over a
/// socketpair, and a schema-conformance sweep that checks every document
/// the serializers can emit against the field list documented in
/// docs/SCHEMA.md.
///
//===----------------------------------------------------------------------===//

#include "driver/Serialize.h"
#include "driver/Serve.h"
#include "gen/Generator.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace vif;
using namespace vif::driver;

namespace {

const char MuxSource[] =
    "entity mux is port(d0 : in std_logic; d1 : in std_logic;"
    " sel : in std_logic; q : out std_logic); end mux;"
    " architecture rtl of mux is begin p : process begin"
    " if sel = '1' then q <= d1; else q <= d0; end if;"
    " wait on d0, d1, sel; end process p; end rtl;";

/// Builds a {"schema","id","command","source"} request line.
std::string muxRequest(const std::string &Command, int Id,
                       const std::string &ExtraMembers = "") {
  std::ostringstream OS;
  OS << "{\"schema\":\"vifc.v1\",\"id\":" << Id << ",\"command\":\""
     << Command << "\",\"source\":\"" << jsonEscape(MuxSource) << "\"";
  if (!ExtraMembers.empty())
    OS << "," << ExtraMembers;
  OS << "}";
  return OS.str();
}

JsonValue parseResponse(const std::string &Line) {
  std::string Error;
  std::optional<JsonValue> V = parseJson(Line, &Error);
  EXPECT_TRUE(V.has_value()) << Line << " -> " << Error;
  EXPECT_EQ(Line.find('\n'), std::string::npos)
      << "responses must be single lines";
  return V ? *V : JsonValue();
}

std::string str(const JsonValue &Doc, const char *Key) {
  const JsonValue *V = Doc.find(Key);
  return V && V->isString() ? V->asString() : std::string();
}

TEST(Serve, PingStatsShutdown) {
  Server S;
  JsonValue Ping = parseResponse(
      S.handleLine(R"({"schema":"vifc.v1","id":"p1","command":"ping"})"));
  EXPECT_EQ(str(Ping, "status"), "ok");
  EXPECT_EQ(str(Ping, "command"), "ping");
  EXPECT_EQ(str(Ping, "id"), "p1");
  EXPECT_EQ(str(Ping, "schema"), "vifc.v1");

  JsonValue Stats =
      parseResponse(S.handleLine(R"({"command":"stats"})"));
  EXPECT_EQ(str(Stats, "status"), "ok");
  EXPECT_DOUBLE_EQ(Stats.find("requests")->asNumber(), 2.0);
  ASSERT_NE(Stats.find("cache"), nullptr);
  EXPECT_DOUBLE_EQ(Stats.find("cache")->find("misses")->asNumber(), 0.0);

  EXPECT_FALSE(S.shuttingDown());
  JsonValue Bye =
      parseResponse(S.handleLine(R"({"command":"shutdown"})"));
  EXPECT_EQ(str(Bye, "status"), "ok");
  EXPECT_TRUE(S.shuttingDown());
}

TEST(Serve, FlowsThenCacheHit) {
  Server S;
  JsonValue First = parseResponse(S.handleLine(muxRequest("flows", 1)));
  EXPECT_EQ(str(First, "status"), "ok");
  EXPECT_EQ(str(First, "command"), "flows");
  EXPECT_EQ(str(First, "method"), "native");
  EXPECT_FALSE(First.find("cacheHit")->asBool());
  const JsonValue *Graph = First.find("graph");
  ASSERT_NE(Graph, nullptr);
  EXPECT_DOUBLE_EQ(Graph->find("edges")->asNumber(), 3.0);
  bool SawImplicit = false;
  for (const JsonValue &E : Graph->find("edgeList")->elements())
    SawImplicit |= str(E, "from") == "sel" && str(E, "to") == "q";
  EXPECT_TRUE(SawImplicit) << "implicit flow sel -> q missing";

  // Same source again: answered from the warm session.
  JsonValue Second = parseResponse(S.handleLine(muxRequest("flows", 2)));
  EXPECT_EQ(str(Second, "status"), "ok");
  EXPECT_TRUE(Second.find("cacheHit")->asBool());
  EXPECT_EQ(S.cache().stats().Hits, 1u);
  EXPECT_EQ(S.cache().stats().Misses, 1u);

  // A different command over the same source extends the same session:
  // still a hit, no new entry.
  JsonValue Rm = parseResponse(S.handleLine(muxRequest("rm", 3)));
  EXPECT_EQ(str(Rm, "status"), "ok");
  EXPECT_TRUE(Rm.find("cacheHit")->asBool());
  ASSERT_NE(Rm.find("matrices"), nullptr);
  EXPECT_GT(Rm.find("matrices")->find("rmgl")->asNumber(), 0.0);
  EXPECT_EQ(S.cache().size(), 1u);
}

TEST(Serve, QueryAnswersFromWarmSession) {
  Server S;
  JsonValue First = parseResponse(S.handleLine(muxRequest(
      "query", 1, R"("options":{"from":"sel","to":"q"})")));
  EXPECT_EQ(str(First, "status"), "ok") << str(First, "diagnostics");
  EXPECT_EQ(str(First, "command"), "query");
  EXPECT_EQ(First.find("method"), nullptr) << "query has no method member";
  EXPECT_FALSE(First.find("cacheHit")->asBool());
  const JsonValue *Q = First.find("query");
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(str(*Q, "from"), "sel");
  EXPECT_EQ(str(*Q, "to"), "q");
  EXPECT_TRUE(Q->find("reaches")->asBool()) << "implicit flow sel -> q";
  const JsonValue *Witness = Q->find("witness");
  ASSERT_NE(Witness, nullptr);
  ASSERT_GE(Witness->elements().size(), 2u);
  EXPECT_EQ(str(Witness->elements().front(), "node"), "sel");
  EXPECT_EQ(str(Witness->elements().back(), "node"), "q");
  for (const JsonValue &Step : Witness->elements()) {
    EXPECT_FALSE(str(Step, "resource").empty());
    EXPECT_FALSE(str(Step, "kind").empty());
  }
  ASSERT_NE(Q->find("reachableFrom"), nullptr);
  ASSERT_NE(Q->find("whatReaches"), nullptr);
  EXPECT_EQ(Q->find("whatReaches")->elements().size(), 3u)
      << "d0, d1 and sel all reach q";

  // Same source, other direction: the warm session answers (one Hit) and
  // a negative result carries no witness array.
  JsonValue Second = parseResponse(S.handleLine(muxRequest(
      "query", 2, R"("options":{"from":"q","to":"sel"})")));
  EXPECT_EQ(str(Second, "status"), "ok");
  EXPECT_TRUE(Second.find("cacheHit")->asBool());
  EXPECT_EQ(S.cache().stats().Hits, 1u);
  EXPECT_EQ(S.cache().stats().Misses, 1u);
  const JsonValue *Q2 = Second.find("query");
  ASSERT_NE(Q2, nullptr);
  EXPECT_FALSE(Q2->find("reaches")->asBool());
  EXPECT_EQ(Q2->find("witness"), nullptr);
  EXPECT_TRUE(Q2->find("reachableFrom")->elements().empty());

  // Unknown node names are a negative answer, not an error.
  JsonValue Third = parseResponse(S.handleLine(muxRequest(
      "query", 3, R"("options":{"from":"nosuch","to":"q"})")));
  EXPECT_EQ(str(Third, "status"), "ok");
  EXPECT_FALSE(Third.find("query")->find("reaches")->asBool());
}

TEST(Serve, QueryOptionValidation) {
  Server S;
  // from/to are mandatory for query...
  JsonValue NoOpts = parseResponse(S.handleLine(muxRequest("query", 1)));
  EXPECT_EQ(str(*NoOpts.find("error"), "code"), "bad-request");
  JsonValue OnlyFrom = parseResponse(S.handleLine(
      muxRequest("query", 2, R"("options":{"from":"sel"})")));
  EXPECT_EQ(str(*OnlyFrom.find("error"), "code"), "bad-request");
  EXPECT_NE(str(*OnlyFrom.find("error"), "message").find("to"),
            std::string::npos);
  // ...must be strings...
  JsonValue BadType = parseResponse(S.handleLine(
      muxRequest("query", 3, R"("options":{"from":1,"to":"q"})")));
  EXPECT_EQ(str(*BadType.find("error"), "code"), "bad-request");
  // ...and apply to no other command.
  JsonValue OnFlows = parseResponse(S.handleLine(
      muxRequest("flows", 4, R"("options":{"from":"sel","to":"q"})")));
  EXPECT_EQ(str(*OnFlows.find("error"), "code"), "bad-request");
  EXPECT_NE(str(*OnFlows.find("error"), "message").find("query"),
            std::string::npos);

  // Validation failures leave the server serving.
  JsonValue Ok = parseResponse(S.handleLine(muxRequest(
      "query", 5, R"("options":{"from":"sel","to":"q"})")));
  EXPECT_EQ(str(Ok, "status"), "ok");
}

TEST(Serve, IdEchoRoundTrips) {
  Server S;
  // Large integral ids must echo exactly, not through %.6g mangling.
  JsonValue Big = parseResponse(
      S.handleLine(R"({"id":12345678,"command":"ping"})"));
  ASSERT_NE(Big.find("id"), nullptr);
  EXPECT_DOUBLE_EQ(Big.find("id")->asNumber(), 12345678.0);
  EXPECT_NE(S.handleLine(R"({"id":12345678,"command":"ping"})")
                .find("\"id\":12345678"),
            std::string::npos);

  JsonValue Str = parseResponse(
      S.handleLine(R"({"id":"req-0042","command":"ping"})"));
  EXPECT_EQ(str(Str, "id"), "req-0042");

  JsonValue Null = parseResponse(
      S.handleLine(R"({"id":null,"command":"ping"})"));
  ASSERT_NE(Null.find("id"), nullptr);
  EXPECT_TRUE(Null.find("id")->isNull());
}

TEST(Serve, MalformedAndInvalidRequests) {
  Server S;

  JsonValue NotJson = parseResponse(S.handleLine("this is not json"));
  EXPECT_EQ(str(NotJson, "status"), "error");
  EXPECT_EQ(str(*NotJson.find("error"), "code"), "parse-error");

  JsonValue NotObject = parseResponse(S.handleLine("[1,2,3]"));
  EXPECT_EQ(str(*NotObject.find("error"), "code"), "bad-request");

  JsonValue BadSchema = parseResponse(
      S.handleLine(R"({"schema":"vifc.v9","command":"ping"})"));
  EXPECT_EQ(str(*BadSchema.find("error"), "code"), "unsupported-schema");

  JsonValue NoCommand = parseResponse(S.handleLine(R"({"id":1})"));
  EXPECT_EQ(str(*NoCommand.find("error"), "code"), "bad-request");

  JsonValue BadCommand = parseResponse(
      S.handleLine(R"({"command":"explode"})"));
  EXPECT_EQ(str(*BadCommand.find("error"), "code"), "bad-request");
  EXPECT_NE(str(*BadCommand.find("error"), "message").find("explode"),
            std::string::npos);

  JsonValue UnknownMember = parseResponse(
      S.handleLine(R"({"command":"ping","frobnicate":1})"));
  EXPECT_EQ(str(*UnknownMember.find("error"), "code"), "bad-request");

  // Last-one-wins on duplicates would silently analyze the wrong input;
  // the strict contract rejects them instead.
  JsonValue DupMember = parseResponse(S.handleLine(
      R"({"command":"check","path":"a.vhd","path":"b.vhd"})"));
  EXPECT_EQ(str(*DupMember.find("error"), "code"), "bad-request");
  EXPECT_NE(str(*DupMember.find("error"), "message").find("duplicate"),
            std::string::npos);
  JsonValue DupOption = parseResponse(S.handleLine(muxRequest(
      "flows", 6, R"("options":{"improved":true,"improved":false})")));
  EXPECT_EQ(str(*DupOption.find("error"), "code"), "bad-request");

  JsonValue NoInput = parseResponse(S.handleLine(R"({"command":"flows"})"));
  EXPECT_EQ(str(*NoInput.find("error"), "code"), "bad-request");

  JsonValue BothInputs = parseResponse(S.handleLine(
      R"({"command":"flows","path":"a.vhd","source":"entity..."})"));
  EXPECT_EQ(str(*BothInputs.find("error"), "code"), "bad-request");

  JsonValue StdinPath = parseResponse(
      S.handleLine(R"({"command":"check","path":"-"})"));
  EXPECT_EQ(str(*StdinPath.find("error"), "code"), "bad-request");

  JsonValue BadId = parseResponse(
      S.handleLine(R"({"command":"ping","id":[1]})"));
  EXPECT_EQ(str(*BadId.find("error"), "code"), "bad-request");

  JsonValue MethodOnCheck = parseResponse(S.handleLine(
      muxRequest("check", 7, R"("options":{"method":"alfp"})")));
  EXPECT_EQ(str(*MethodOnCheck.find("error"), "code"), "bad-request");

  JsonValue BadOption = parseResponse(S.handleLine(
      muxRequest("flows", 8, R"("options":{"imprved":true})")));
  EXPECT_NE(str(*BadOption.find("error"), "message").find("imprved"),
            std::string::npos);

  // Protocol errors must not poison the server: it still answers.
  JsonValue Ok = parseResponse(S.handleLine(muxRequest("check", 9)));
  EXPECT_EQ(str(Ok, "status"), "ok");
}

TEST(Serve, AnalysisFailureIsAResultNotAProtocolError) {
  Server S;
  JsonValue R = parseResponse(S.handleLine(
      R"({"command":"check","source":"entity broken is port("})"));
  EXPECT_EQ(str(R, "status"), "error");
  EXPECT_EQ(R.find("error"), nullptr) << "not a protocol error";
  EXPECT_FALSE(str(R, "diagnostics").empty());

  JsonValue Missing = parseResponse(S.handleLine(
      R"({"command":"check","path":"/nonexistent/missing.vhd"})"));
  EXPECT_EQ(str(Missing, "status"), "error");
  EXPECT_TRUE(Missing.find("unreadable")->asBool());
}

TEST(Serve, PathRequestsAndOptionSensitivity) {
  std::string Path = testing::TempDir() + "/serve_test_mux.vhd";
  {
    std::ofstream Out(Path);
    Out << MuxSource;
  }
  Server S;
  std::string Req = std::string(R"({"command":"flows","path":")") + Path +
                    "\"}";
  JsonValue First = parseResponse(S.handleLine(Req));
  EXPECT_EQ(str(First, "status"), "ok") << str(First, "diagnostics");
  EXPECT_EQ(str(First, "file"), Path);
  EXPECT_FALSE(First.find("cacheHit")->asBool());
  JsonValue Again = parseResponse(S.handleLine(Req));
  EXPECT_TRUE(Again.find("cacheHit")->asBool());

  // Different options over the same content: a distinct cache entry.
  std::string Improved =
      std::string(R"({"command":"flows","path":")") + Path +
      R"(","options":{"improved":true}})";
  JsonValue Third = parseResponse(S.handleLine(Improved));
  EXPECT_EQ(str(Third, "status"), "ok");
  EXPECT_FALSE(Third.find("cacheHit")->asBool());
  EXPECT_EQ(S.cache().size(), 2u);

  // Kemmerer over-approximates: at least as many edges, same session.
  std::string Kem = std::string(R"({"command":"flows","path":")") + Path +
                    R"(","options":{"method":"kemmerer"}})";
  JsonValue Fourth = parseResponse(S.handleLine(Kem));
  EXPECT_EQ(str(Fourth, "method"), "kemmerer");
  EXPECT_TRUE(Fourth.find("cacheHit")->asBool())
      << "method is not part of the cache key";
  EXPECT_GE(Fourth.find("graph")->find("edges")->asNumber(),
            First.find("graph")->find("edges")->asNumber());
  ::unlink(Path.c_str());
}

TEST(Serve, ReportEvaluatesPolicy) {
  Server S;
  JsonValue R = parseResponse(S.handleLine(muxRequest(
      "report", 1,
      R"("options":{"forbid":[{"from":"d1","to":"q"}]})")));
  EXPECT_EQ(str(R, "status"), "ok");
  const JsonValue *Violations = R.find("violations");
  ASSERT_NE(Violations, nullptr);
  ASSERT_EQ(Violations->elements().size(), 1u);
  EXPECT_EQ(str(Violations->elements()[0], "from"), "d1");
  EXPECT_EQ(str(Violations->elements()[0], "to"), "q");
}

TEST(Serve, ContentKeySourceByReference) {
  Server S;
  // An inline-source analysis echoes the source's content key...
  JsonValue First = parseResponse(S.handleLine(muxRequest("flows", 1)));
  EXPECT_EQ(str(First, "status"), "ok");
  std::string Key = str(First, "contentKey");
  ASSERT_EQ(Key.size(), 16u) << "contentKey is 16 hex digits";
  EXPECT_EQ(Key.find_first_not_of("0123456789abcdef"), std::string::npos);

  // ...which later requests may send instead of the source bytes.
  std::string ByRef =
      R"({"schema":"vifc.v1","id":2,"command":"flows","contentKey":")" +
      Key + "\"}";
  JsonValue Second = parseResponse(S.handleLine(ByRef));
  EXPECT_EQ(str(Second, "status"), "ok");
  EXPECT_TRUE(Second.find("cacheHit")->asBool());
  EXPECT_EQ(str(Second, "contentKey"), Key);
  EXPECT_DOUBLE_EQ(Second.find("graph")->find("edges")->asNumber(),
                   First.find("graph")->find("edges")->asNumber());

  // A "name" may label the by-reference request, like inline sources.
  std::string Named =
      R"({"command":"rm","name":"mux.vhd","contentKey":")" + Key + "\"}";
  JsonValue Third = parseResponse(S.handleLine(Named));
  EXPECT_EQ(str(Third, "status"), "ok");
  EXPECT_EQ(str(Third, "file"), "mux.vhd");

  // The same content sent inline again maps to the same key.
  JsonValue Fourth = parseResponse(S.handleLine(muxRequest("check", 4)));
  EXPECT_EQ(str(Fourth, "contentKey"), Key);
}

TEST(Serve, UnknownContentKeyIsAnError) {
  Server S;
  JsonValue R = parseResponse(S.handleLine(
      R"({"command":"flows","contentKey":"0123456789abcdef"})"));
  EXPECT_EQ(str(R, "status"), "error");
  EXPECT_EQ(str(*R.find("error"), "code"), "unknown-content-key");
  EXPECT_NE(str(*R.find("error"), "message").find("0123456789abcdef"),
            std::string::npos);

  // contentKey is an analysis input: exactly one of the three input
  // members, and meaningless on non-analysis commands.
  JsonValue Both = parseResponse(S.handleLine(
      R"({"command":"flows","source":"entity...","contentKey":"aa"})"));
  EXPECT_EQ(str(*Both.find("error"), "code"), "bad-request");
  JsonValue OnPing = parseResponse(S.handleLine(
      R"({"command":"ping","contentKey":"aa"})"));
  EXPECT_EQ(str(*OnPing.find("error"), "code"), "bad-request");
}

TEST(Serve, StoreBackedServerSurvivesRestart) {
  std::string Dir = testing::TempDir() + "serve_store_test";
  std::filesystem::remove_all(Dir);
  ServeOptions SO;
  SO.StoreDir = Dir;
  {
    Server S1(SO);
    ASSERT_NE(S1.artifactStore(), nullptr);
    JsonValue R = parseResponse(S1.handleLine(muxRequest("flows", 1)));
    EXPECT_EQ(str(R, "status"), "ok");
    EXPECT_GT(R.find("timings")->find("ifaMs")->asNumber(), 0.0);
    EXPECT_GE(S1.artifactStore()->counters().Writes, 1u);

    JsonValue Stats =
        parseResponse(S1.handleLine(R"({"command":"stats"})"));
    const JsonValue *Store = Stats.find("store");
    ASSERT_NE(Store, nullptr);
    EXPECT_GE(Store->find("writes")->asNumber(), 1.0);
    EXPECT_GT(Store->find("bytesWritten")->asNumber(), 0.0);
  }

  // A new server over the same directory answers without re-solving:
  // the ifa stage never runs, only store I/O time is charged.
  Server S2(SO);
  JsonValue Warm = parseResponse(S2.handleLine(muxRequest("flows", 2)));
  EXPECT_EQ(str(Warm, "status"), "ok");
  EXPECT_FALSE(Warm.find("cacheHit")->asBool());
  EXPECT_DOUBLE_EQ(Warm.find("timings")->find("ifaMs")->asNumber(), 0.0);
  EXPECT_GT(Warm.find("timings")->find("storeMs")->asNumber(), 0.0);
  EXPECT_DOUBLE_EQ(Warm.find("graph")->find("edges")->asNumber(), 3.0);
  EXPECT_GE(S2.artifactStore()->counters().Hits, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(Serve, RunLoopSkipsBlanksAndStopsOnShutdown) {
  Server S;
  std::istringstream In(muxRequest("check", 1) + "\n\n\r\n" +
                        R"({"command":"shutdown"})" + "\n" +
                        muxRequest("check", 99) + "\n");
  std::ostringstream Out;
  S.run(In, Out);
  std::string Text = Out.str();
  // Two responses: the check and the shutdown; the post-shutdown line is
  // never read.
  EXPECT_EQ(std::count(Text.begin(), Text.end(), '\n'), 2);
  EXPECT_EQ(Text.find("\"id\":99"), std::string::npos);
  EXPECT_EQ(S.requestsHandled(), 2u);
}

TEST(Serve, FdTransportOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);

  std::string Payload = muxRequest("flows", 1) + "\n" +
                        muxRequest("flows", 2) + "\r\n" +
                        R"({"command":"shutdown"})" + "\n";
  ASSERT_EQ(::write(Fds[1], Payload.data(), Payload.size()),
            static_cast<ssize_t>(Payload.size()));
  ::shutdown(Fds[1], SHUT_WR);

  Server S;
  std::string Error;
  EXPECT_TRUE(S.serveFd(Fds[0], &Error)) << Error;
  EXPECT_TRUE(S.shuttingDown());
  // Close the server side first so the drain below sees EOF.
  ::close(Fds[0]);

  std::string Out;
  char Buf[65536];
  ssize_t N;
  while ((N = ::read(Fds[1], Buf, sizeof(Buf))) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  ::close(Fds[1]);

  std::istringstream Lines(Out);
  std::string Line;
  std::vector<JsonValue> Docs;
  while (std::getline(Lines, Line))
    if (!Line.empty())
      Docs.push_back(parseResponse(Line));
  ASSERT_EQ(Docs.size(), 3u);
  EXPECT_EQ(str(Docs[0], "status"), "ok");
  EXPECT_FALSE(Docs[0].find("cacheHit")->asBool());
  EXPECT_TRUE(Docs[1].find("cacheHit")->asBool()) << "warm across requests";
  EXPECT_EQ(str(Docs[2], "command"), "shutdown");
}

TEST(Serve, ConcurrentGeneratedDesignsMatchSerialReplay) {
  // N generated designs, analyzed once serially for the expected flow
  // edges, then pushed through one shared SessionCache from several
  // threads with every design requested by every thread. The per-entry
  // lock must serialize each lazy pipeline (each design computed exactly
  // once despite the collisions -> Misses == N) and every concurrent
  // answer must equal the serial one.
  constexpr size_t N = 12;
  constexpr size_t Threads = 6;
  std::vector<std::string> Sources;
  std::vector<std::vector<std::pair<std::string, std::string>>> Expected;
  for (size_t I = 0; I < N; ++I) {
    Sources.push_back(gen::generateDesign(9000 + I));
    AnalysisSession S =
        AnalysisSession::fromSource("serial", Sources.back());
    const IFAResult *R = S.ifa();
    ASSERT_NE(R, nullptr) << "seed " << 9000 + I << "\n"
                          << S.diagnostics().str();
    Expected.push_back(R->Graph.sortedEdges());
  }

  SessionCache Cache(N); // capacity == N: no evictions in the mix
  std::atomic<size_t> Disagreements{0};
  std::vector<std::thread> Workers;
  for (size_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      // Walk all designs from a per-thread offset and stride, so
      // threads collide on the same entries in different orders.
      for (size_t Step = 0; Step < N; ++Step) {
        size_t I = (T + Step * (1 + T % 3)) % N;
        SessionCache::Ref R = Cache.acquire("g" + std::to_string(I),
                                            Sources[I], SessionOptions());
        const IFAResult *Ifa = R.session().ifa();
        if (!Ifa || Ifa->Graph.sortedEdges() != Expected[I])
          ++Disagreements;
      }
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Disagreements.load(), 0u);
  EXPECT_EQ(Cache.stats().Misses, N) << "each design computed exactly once";
  EXPECT_EQ(Cache.stats().Hits, Threads * N - N);
  EXPECT_EQ(Cache.stats().Evictions, 0u);
  EXPECT_EQ(Cache.size(), N);
}

//===----------------------------------------------------------------------===//
// Concurrent serving
//===----------------------------------------------------------------------===//

int connectLoopback(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t W = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  return true;
}

std::string readToEof(int Fd) {
  std::string Out;
  char Buf[65536];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return Out;
    Out.append(Buf, static_cast<size_t>(N));
  }
}

std::vector<std::string> splitLines(const std::string &Text) {
  std::istringstream Lines(Text);
  std::string Line;
  std::vector<std::string> Out;
  while (std::getline(Lines, Line))
    if (!Line.empty() && Line != "\r")
      Out.push_back(Line);
  return Out;
}

TEST(ServeConcurrent, SocketpairClientsShareOneServer) {
  // M threads each drive their own descriptor pair against ONE shared
  // server, K requests pipelined up front. handleLine must be safe
  // under the contention, every client must get its K responses back in
  // request order (per-connection ordering), and the cache counters
  // must balance: every analysis request is exactly one hit or miss,
  // and the shared source is computed exactly once.
  constexpr unsigned M = 6, K = 8;
  Server S;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < M; ++C)
    Clients.emplace_back([&S, &Failures, C] {
      int Fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
        ++Failures;
        return;
      }
      std::string Payload;
      for (unsigned R = 0; R < K; ++R)
        Payload += muxRequest("flows", static_cast<int>(C * 1000 + R)) + "\n";
      if (!writeAll(Fds[1], Payload))
        ++Failures;
      ::shutdown(Fds[1], SHUT_WR);
      std::string Error;
      if (!S.serveFd(Fds[0], &Error))
        ++Failures;
      ::close(Fds[0]);
      std::vector<std::string> Lines = splitLines(readToEof(Fds[1]));
      ::close(Fds[1]);
      if (Lines.size() != K) {
        ++Failures;
        return;
      }
      for (unsigned R = 0; R < K; ++R) {
        JsonValue Doc = parseResponse(Lines[R]);
        // Request/response pairing: ids come back in request order.
        if (!Doc.find("id") ||
            Doc.find("id")->asNumber() != double(C * 1000 + R) ||
            str(Doc, "status") != "ok")
          ++Failures;
      }
    });
  for (std::thread &T : Clients)
    T.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(S.requestsHandled(), uint64_t(M) * K);
  EXPECT_EQ(S.inFlight(), 0u);
  SessionCache::Stats St = S.cache().stats();
  EXPECT_EQ(St.Hits + St.Misses, uint64_t(M) * K)
      << "every analysis request is exactly one hit or one miss";
  EXPECT_EQ(St.Misses, 1u) << "one shared source, computed once";
}

TEST(ServeConcurrent, TcpWorkerPoolServesPipelinedClients) {
  // The full TCP front end: listenAndServe on an ephemeral port with a
  // fixed pool, M concurrent connections each pipelining K requests,
  // then a clean shutdown via a final connection.
  constexpr unsigned M = 4, K = 6;
  ServeOptions SO;
  SO.Workers = 4;
  Server S(SO);
  EXPECT_EQ(S.effectiveWorkers(), 4u);
  std::string ServeError;
  std::thread ServerThread(
      [&] { EXPECT_TRUE(S.listenAndServe(0, &ServeError)) << ServeError; });
  while (S.boundPort() == 0)
    std::this_thread::yield();
  uint16_t Port = S.boundPort();
  ASSERT_NE(Port, 0);

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < M; ++C)
    Clients.emplace_back([&Failures, Port, C] {
      int Fd = connectLoopback(Port);
      if (Fd < 0) {
        ++Failures;
        return;
      }
      std::string Payload;
      for (unsigned R = 0; R < K; ++R)
        Payload += muxRequest("check", static_cast<int>(C * 100 + R)) + "\n";
      if (!writeAll(Fd, Payload))
        ++Failures;
      ::shutdown(Fd, SHUT_WR); // EOF ends this connection after K answers
      std::vector<std::string> Lines = splitLines(readToEof(Fd));
      ::close(Fd);
      if (Lines.size() != K) {
        ++Failures;
        return;
      }
      for (unsigned R = 0; R < K; ++R) {
        JsonValue Doc = parseResponse(Lines[R]);
        if (!Doc.find("id") ||
            Doc.find("id")->asNumber() != double(C * 100 + R) ||
            str(Doc, "status") != "ok")
          ++Failures;
      }
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);

  // stats over the wire, then shutdown; the server thread must drain.
  int Fd = connectLoopback(Port);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(writeAll(Fd, "{\"command\":\"stats\"}\n"
                           "{\"command\":\"shutdown\"}\n"));
  ::shutdown(Fd, SHUT_WR);
  std::vector<std::string> Lines = splitLines(readToEof(Fd));
  ::close(Fd);
  ServerThread.join();
  ASSERT_EQ(Lines.size(), 2u);
  JsonValue Stats = parseResponse(Lines[0]);
  EXPECT_EQ(str(Stats, "status"), "ok");
  EXPECT_DOUBLE_EQ(Stats.find("requests")->asNumber(), double(M * K + 1));
  EXPECT_GE(Stats.find("inFlight")->asNumber(), 1.0)
      << "the stats request itself is in flight";
  const JsonValue *Cache = Stats.find("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_DOUBLE_EQ(Cache->find("hits")->asNumber() +
                       Cache->find("misses")->asNumber(),
                   double(M * K));
  EXPECT_EQ(str(parseResponse(Lines[1]), "command"), "shutdown");
  EXPECT_TRUE(S.shuttingDown());
}

TEST(ServeConcurrent, ConnectionsBeyondTheBoundAreShed) {
  // One worker, a one-connection queue: the third concurrent connection
  // must be answered with the documented one-line `overloaded` error
  // and closed, not left hanging.
  ServeOptions SO;
  SO.Workers = 1;
  SO.MaxQueuedConns = 1;
  Server S(SO);
  std::thread ServerThread([&] { S.listenAndServe(0, nullptr); });
  while (S.boundPort() == 0)
    std::this_thread::yield();
  uint16_t Port = S.boundPort();

  // Pin the only worker to connection A — a served ping proves a worker
  // owns it (not merely queued) before we pile on.
  int A = connectLoopback(Port);
  ASSERT_GE(A, 0);
  ASSERT_TRUE(writeAll(A, "{\"command\":\"ping\"}\n"));
  {
    std::string Buf;
    char Ch;
    while (Buf.find('\n') == std::string::npos && ::read(A, &Ch, 1) == 1)
      Buf.push_back(Ch);
    EXPECT_EQ(str(parseResponse(splitLines(Buf).at(0)), "status"), "ok");
  }

  // B fills the queue; C exceeds worker + queue and is shed.
  int B = connectLoopback(Port);
  ASSERT_GE(B, 0);
  int C = connectLoopback(Port);
  ASSERT_GE(C, 0);
  std::vector<std::string> Shed = splitLines(readToEof(C));
  ::close(C);
  ASSERT_EQ(Shed.size(), 1u) << "exactly the error line, then close";
  JsonValue Doc = parseResponse(Shed[0]);
  EXPECT_EQ(str(Doc, "status"), "error");
  EXPECT_EQ(str(*Doc.find("error"), "code"), "overloaded");

  // Release A; the worker then drains B. A fresh connection carrying
  // the shutdown may race that drain and be shed itself, so retry until
  // it lands on the freed worker.
  ::close(A);
  ::close(B);
  bool ShutDown = false;
  for (int Attempt = 0; Attempt < 500 && !ShutDown; ++Attempt) {
    int D = connectLoopback(Port);
    ASSERT_GE(D, 0);
    ASSERT_TRUE(writeAll(D, "{\"command\":\"shutdown\"}\n"));
    std::vector<std::string> Bye = splitLines(readToEof(D));
    ::close(D);
    ShutDown = Bye.size() == 1 &&
               str(parseResponse(Bye[0]), "command") == "shutdown";
    if (!ShutDown)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(ShutDown);
  ServerThread.join();
}

//===----------------------------------------------------------------------===//
// Schema conformance
//===----------------------------------------------------------------------===//

/// Mirror of the field list in docs/SCHEMA.md (§ Field index). A field
/// emitted by the serializers but missing both here and in the doc fails
/// this test and tools/schema_check.py respectively; keep the three in
/// sync.
const std::set<std::string> DocumentedFields = {
    "schema",      "command",  "method",    "designs",   "file",
    "status",      "unreadable", "diagnostics", "cacheHit", "processes",
    "signals",     "variables", "graph",    "nodes",     "edges",
    "edgeList",    "from",     "to",        "matrices",  "rmlo",
    "rmgl",        "violations", "viaPath", "timings",   "readMs",
    "parseMs",     "elaborateMs", "cfgMs",  "ifaMs",     "kemmererMs",
    "alfpMs",      "totalMs",  "summary",   "ok",        "failed",
    "wallMs",      "cache",    "size",      "capacity",  "hits",
    "misses",      "evictions", "id",       "error",     "code",
    "message",     "requests", "deltas",    "reason",    "name",
    "value",       "relations", "arity",    "tuples",    "derived",
    "bytes",       "bytesBudget", "inFlight", "query",   "reaches",
    "witness",     "node",     "resource",  "kind",      "reachableFrom",
    "whatReaches", "queryMs",  "contentKey", "store",    "writes",
    "bytesRead",   "bytesWritten", "storeMs",
};

void checkFields(const JsonValue &V, const std::string &Where) {
  if (V.isArray()) {
    for (const JsonValue &E : V.elements())
      checkFields(E, Where);
    return;
  }
  if (!V.isObject())
    return;
  for (const auto &[Key, Member] : V.members()) {
    EXPECT_TRUE(DocumentedFields.count(Key))
        << "undocumented field \"" << Key << "\" in " << Where;
    checkFields(Member, Where + "." + Key);
  }
}

void checkDocument(const std::string &Text, const std::string &Where) {
  std::string Error;
  std::optional<JsonValue> V = parseJson(Text, &Error);
  ASSERT_TRUE(V.has_value()) << Where << ": " << Error << "\n" << Text;
  ASSERT_TRUE(V->isObject()) << Where;
  ASSERT_FALSE(V->members().empty()) << Where;
  EXPECT_EQ(V->members()[0].first, "schema")
      << Where << ": schema must be the first member";
  EXPECT_EQ(V->members()[0].second.asString(), "vifc.v1") << Where;
  checkFields(*V, Where);
}

TEST(SchemaConformance, EveryDocumentTypeStaysWithinTheSpec) {
  // Batch documents, all four modes, with a cache, a failing design and
  // a policy violation in the mix.
  SessionCache Cache(4);
  std::vector<BatchInput> Inputs = {
      {"mux", std::string(MuxSource)},
      {"broken", std::string("entity broken is port(")},
      {"/nonexistent/missing.vhd", std::nullopt},
  };
  for (BatchMode Mode : {BatchMode::Check, BatchMode::Flows,
                         BatchMode::Matrices, BatchMode::Report,
                         BatchMode::Query}) {
    BatchOptions Opts;
    Opts.Mode = Mode;
    Opts.Cache = &Cache;
    Opts.CaptureRenderedText = false;
    if (Mode == BatchMode::Report)
      Opts.Policy.Forbidden.push_back({"d1", "q"});
    if (Mode == BatchMode::Query) {
      Opts.QueryFrom = "sel";
      Opts.QueryTo = "q";
    }
    BatchResult R = runBatch(Inputs, Opts);
    std::ostringstream OS;
    printBatchJson(OS, R, Opts);
    checkDocument(OS.str(), std::string("batch/") + batchModeName(Mode));
  }

  // Serve responses: ok analysis (all modes), stats, ping, every error.
  Server S;
  checkDocument(S.handleLine(muxRequest("check", 1)), "serve/check");
  checkDocument(S.handleLine(muxRequest("flows", 2)), "serve/flows");
  checkDocument(S.handleLine(muxRequest("rm", 3)), "serve/rm");
  checkDocument(S.handleLine(muxRequest(
                    "report", 4,
                    R"("options":{"forbid":[{"from":"sel","to":"q"}]})")),
                "serve/report");
  checkDocument(S.handleLine(muxRequest(
                    "query", 5, R"("options":{"from":"sel","to":"q"})")),
                "serve/query");
  checkDocument(S.handleLine(R"({"command":"stats","id":null})"),
                "serve/stats");
  checkDocument(S.handleLine(R"({"command":"ping"})"), "serve/ping");
  checkDocument(S.handleLine("malformed"), "serve/parse-error");
  checkDocument(S.handleLine(R"({"command":"nope"})"), "serve/bad-request");
  checkDocument(
      S.handleLine(R"({"command":"check","path":"/nonexistent/x.vhd"})"),
      "serve/unreadable");

  // A store-configured server: the stats "store" object, a contentKey
  // echo, and the unknown-content-key error object.
  std::string StoreDir = testing::TempDir() + "serve_schema_store";
  std::filesystem::remove_all(StoreDir);
  ServeOptions SO;
  SO.StoreDir = StoreDir;
  Server SStore(SO);
  checkDocument(SStore.handleLine(muxRequest("flows", 6)),
                "serve/store-flows");
  checkDocument(SStore.handleLine(R"({"command":"stats"})"),
                "serve/store-stats");
  checkDocument(
      SStore.handleLine(
          R"({"command":"flows","contentKey":"ffffffffffffffff"})"),
      "serve/unknown-content-key");
  std::filesystem::remove_all(StoreDir);

  // Sim document.
  SimDocument Sim;
  Sim.File = "mux.vhd";
  Sim.Status = "stuck";
  Sim.Deltas = 7;
  Sim.StuckReason = "condition not '0'/'1'";
  Sim.Signals.push_back({"q", "'U'"});
  std::ostringstream SimOS;
  writeSimDocument(SimOS, Sim);
  checkDocument(SimOS.str(), "sim");

  // Datalog document.
  DatalogRelation Rel;
  Rel.Name = "path";
  Rel.Arity = 2;
  Rel.Tuples = {{"a", "b"}, {"b", "c"}};
  std::ostringstream DlOS;
  writeDatalogDocument(DlOS, "t.alfp", {Rel}, 5);
  checkDocument(DlOS.str(), "datalog");
}

} // namespace
