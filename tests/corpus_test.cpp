//===- tests/corpus_test.cpp - Checked-in fuzz seed corpus ----------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// Sweeps tests/inputs/corpus/: `gen_<seed>.vhd` are generated designs
// (small and medium, regenerable with `vifc-fuzz --seed N --dump`) that
// must elaborate and keep the dense and reference solver families in
// agreement; `crash_*.vhd` are minimized inputs that used to crash the
// frontend and must now produce diagnostics. The corpus pins the exact
// bytes: even if the generator's output drifts, these inputs keep
// exercising today's shapes.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace vif;

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<fs::path> corpusFiles(const char *Prefix) {
  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(VIFC_CORPUS_DIR))
    if (E.path().filename().string().rfind(Prefix, 0) == 0)
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

TEST(Corpus, HasTheDocumentedShape) {
  EXPECT_GE(corpusFiles("gen_").size(), 10u);
  EXPECT_GE(corpusFiles("crash_").size(), 2u);
}

TEST(Corpus, GeneratedDesignsElaborateAndSolversAgree) {
  for (const fs::path &File : corpusFiles("gen_")) {
    std::string Source = slurp(File);
    ASSERT_FALSE(Source.empty()) << File;

    DiagnosticEngine Diags;
    DesignFile F = parseDesign(Source, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << File << "\n" << Diags.str();
    std::optional<ElaboratedProgram> P = elaborateDesign(F, Diags);
    ASSERT_TRUE(P.has_value()) << File << "\n" << Diags.str();
    ProgramCFG CFG = ProgramCFG::build(*P);

    // Dense vs reference RD, through the whole IFA pipeline.
    IFAOptions RefRD;
    RefRD.RD.ReferenceSolver = true;
    IFAResult Dense = analyzeInformationFlow(*P, CFG);
    IFAResult Ref = analyzeInformationFlow(*P, CFG, RefRD);
    EXPECT_TRUE(Dense.RMgl == Ref.RMgl) << File;
    EXPECT_EQ(Dense.Graph.sortedEdges(), Ref.Graph.sortedEdges()) << File;

    // BitSet closure vs the retained sorted-vector rows.
    IFAOptions RefClos;
    RefClos.ReferenceClosure = true;
    IFAResult Clos = analyzeInformationFlow(*P, CFG, RefClos);
    EXPECT_TRUE(Dense.RMgl == Clos.RMgl) << File;
    EXPECT_TRUE(Dense.Graph.sameFlows(Clos.Graph)) << File;
  }
}

TEST(Corpus, CrashersAreDiagnosedCleanly) {
  for (const fs::path &File : corpusFiles("crash_")) {
    std::string Source = slurp(File);
    ASSERT_FALSE(Source.empty()) << File;
    DiagnosticEngine Diags;
    // Both as a statement program (the shape the crashers minimized to)
    // and as a design file: neither entry point may crash, and at least
    // one must complain.
    parseStatementProgram(Source, Diags);
    parseDesign(Source, Diags);
    EXPECT_TRUE(Diags.hasErrors()) << File;
  }
}

} // namespace
