//===- tests/tsan_rd.cpp - ThreadSanitizer drive of the parallel solvers --===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// A plain main() (no gtest, so every instruction in the binary is
// TSan-instrumented) that runs the parallel per-process rd fan-out under
// contention and checks the results against serial runs. Built with
// -fsanitize=thread when the toolchain supports it and registered as
// ctest vifc_tsan_rd; any data race in the fan-out — FlowIndex first
// builds, LazyPairSets slot writes, iteration accounting — aborts the
// test through TSan's reporting.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "parse/Parser.h"
#include "rd/ReachingDefs.h"
#include "workloads/Synthetic.h"

#include <cstdio>
#include <optional>
#include <string>

using namespace vif;

namespace {

bool checkDesign(const std::string &Source, const char *What) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  std::optional<ElaboratedProgram> P;
  if (!Diags.hasErrors())
    P = elaborateDesign(F, Diags);
  if (!P) {
    std::fprintf(stderr, "tsan_rd: %s does not elaborate:\n%s", What,
                 Diags.str().c_str());
    return false;
  }

  // Serial reference.
  ProgramCFG SerialCFG = ProgramCFG::build(*P);
  ActiveSignalsResult SerialActive = analyzeActiveSignals(*P, SerialCFG);
  ReachingDefsResult SerialRD =
      analyzeReachingDefs(*P, SerialCFG, SerialActive);

  for (unsigned Jobs : {2u, 4u, 8u}) {
    // A fresh CFG per run so the FlowIndex slots are first-built under
    // contention every time.
    ProgramCFG CFG = ProgramCFG::build(*P);
    ActiveSignalsResult Active = analyzeActiveSignals(*P, CFG, Jobs);
    ReachingDefsOptions Opts;
    Opts.Jobs = Jobs;
    ReachingDefsResult RD = analyzeReachingDefs(*P, CFG, Active, Opts);

    if (RD.Iterations != SerialRD.Iterations ||
        Active.Iterations != SerialActive.Iterations) {
      std::fprintf(stderr, "tsan_rd: %s jobs=%u iteration counts diverge\n",
                   What, Jobs);
      return false;
    }
    for (LabelId L = 1; L <= CFG.numLabels(); ++L)
      if (!(RD.Entry[L] == SerialRD.Entry[L]) ||
          !(RD.Exit[L] == SerialRD.Exit[L]) ||
          !(Active.MayEntry[L] == SerialActive.MayEntry[L]) ||
          !(Active.MustExit[L] == SerialActive.MustExit[L])) {
        std::fprintf(stderr, "tsan_rd: %s jobs=%u differs at label %u\n",
                     What, Jobs, L);
        return false;
      }
  }
  return true;
}

} // namespace

int main() {
  bool Ok = true;
  // Several rounds so thread interleavings vary.
  for (int Round = 0; Round < 3 && Ok; ++Round) {
    Ok = Ok && checkDesign(workloads::syncMeshDesign(8, 3, 6), "mesh");
    Ok = Ok && checkDesign(workloads::pipelineDesign(12), "pipeline");
    for (uint64_t Seed = 1; Seed <= 4 && Ok; ++Seed)
      Ok = Ok && checkDesign(workloads::randomDesign(Seed, 6, 8, 4),
                             "random");
  }
  if (Ok)
    std::puts("tsan_rd: all parallel runs matched serial results");
  return Ok ? 0 : 1;
}
