//===- tests/parallel_rd_test.cpp - --jobs invariance ---------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// The per-process rd fixpoints fan out over a thread pool when
// ReachingDefsOptions::Jobs > 1 (each process owns disjoint labels and
// result slots). These tests pin the contract: results are identical for
// every Jobs value — set for set, matrix for matrix, graph for graph —
// across the workload corpus, the AnalysisSession stays pointer-stable,
// and the session-cache key ignores the knob. The TSan build of the same
// fan-out lives in tests/tsan_rd.cpp (ctest vifc_tsan_rd, when the
// toolchain supports -fsanitize=thread).
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisSession.h"
#include "ifa/InformationFlow.h"
#include "parse/Parser.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

ElaboratedProgram elaborate(const std::string &Source, bool IsDesign) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    if (!Diags.hasErrors())
      P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    if (!Diags.hasErrors())
      P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

void expectJobsInvariant(const std::string &Source, bool IsDesign,
                         IFAOptions Opts, const char *What) {
  ElaboratedProgram P = elaborate(Source, IsDesign);
  ProgramCFG CFG = ProgramCFG::build(P);

  IFAOptions Par = Opts;
  Par.RD.Jobs = 4;
  IFAResult Serial = analyzeInformationFlow(P, CFG, Opts);
  // Fresh CFG for the parallel run so the two solves share no FlowIndex
  // cache — first-build happens under contention too.
  ProgramCFG CFG2 = ProgramCFG::build(P);
  IFAResult Parallel = analyzeInformationFlow(P, CFG2, Par);

  EXPECT_TRUE(Serial.RMlo == Parallel.RMlo) << What << ": RMlo";
  EXPECT_TRUE(Serial.RMgl == Parallel.RMgl) << What << ": RMgl";
  EXPECT_TRUE(Serial.Graph.sameFlows(Parallel.Graph)) << What << ": graph";
  EXPECT_EQ(Serial.RD.Iterations, Parallel.RD.Iterations) << What;
  EXPECT_EQ(Serial.Active.Iterations, Parallel.Active.Iterations) << What;
  for (LabelId L = 1; L <= CFG.numLabels(); ++L) {
    EXPECT_TRUE(Serial.RD.Entry[L] == Parallel.RD.Entry[L])
        << What << ": RD Entry at " << L;
    EXPECT_TRUE(Serial.RD.Exit[L] == Parallel.RD.Exit[L])
        << What << ": RD Exit at " << L;
    EXPECT_TRUE(Serial.Active.MayEntry[L] == Parallel.Active.MayEntry[L])
        << What << ": MayEntry at " << L;
    EXPECT_TRUE(Serial.Active.MustEntry[L] == Parallel.Active.MustEntry[L])
        << What << ": MustEntry at " << L;
  }
}

TEST(ParallelRd, CorpusIdenticalAcrossJobs) {
  expectJobsInvariant("c := b; b := a;", false, {}, "fig3(a)");
  expectJobsInvariant(workloads::shiftRowsStatements(), false, {}, "fig5");
  expectJobsInvariant(workloads::shiftRowsDesign(), true, {},
                      "fig5-design");
  expectJobsInvariant(workloads::chainStatements(48), false, {}, "chain");
  expectJobsInvariant(workloads::tempReuseLadder(5, 4), false, {},
                      "ladder");
  expectJobsInvariant(workloads::pipelineDesign(8), true, {}, "pipeline");
  expectJobsInvariant(workloads::syncMeshDesign(4, 3, 4), true, {}, "mesh");
  for (uint64_t Seed = 1; Seed <= 6; ++Seed)
    expectJobsInvariant(workloads::randomDesign(Seed, 4, 6, 3), true, {},
                        "randomDesign");
}

TEST(ParallelRd, OptionVariantsIdenticalAcrossJobs) {
  IFAOptions Improved;
  Improved.Improved = true;
  expectJobsInvariant(workloads::pipelineDesign(6), true, Improved,
                      "pipeline-improved");
  IFAOptions EndOut;
  EndOut.ProgramEndOutgoing = true;
  expectJobsInvariant(workloads::shiftRowsStatements(), false, EndOut,
                      "fig5-endout");
  IFAOptions NoKill;
  NoKill.RD.UseMustActiveKill = false;
  expectJobsInvariant(workloads::syncMeshDesign(3, 3, 4), true, NoKill,
                      "mesh-nokill");
}

TEST(ParallelRd, ManyProcessesManyWorkers) {
  // More processes than workers and more workers than processes both
  // exercise the pool's claim loop.
  ElaboratedProgram P =
      elaborate(workloads::syncMeshDesign(12, 2, 6), true);
  for (unsigned Jobs : {2u, 3u, 16u}) {
    ProgramCFG Serial = ProgramCFG::build(P);
    ProgramCFG Parallel = ProgramCFG::build(P);
    IFAOptions Par;
    Par.RD.Jobs = Jobs;
    IFAResult A = analyzeInformationFlow(P, Serial);
    IFAResult B = analyzeInformationFlow(P, Parallel, Par);
    EXPECT_TRUE(A.RMgl == B.RMgl) << "jobs=" << Jobs;
    EXPECT_TRUE(A.Graph.sameFlows(B.Graph)) << "jobs=" << Jobs;
  }
}

TEST(ParallelRd, SessionPointerStableUnderJobs) {
  driver::SessionOptions Opts;
  Opts.Ifa.RD.Jobs = 4;
  driver::AnalysisSession S = driver::AnalysisSession::fromSource(
      "mesh.vhd", workloads::syncMeshDesign(4, 3, 4), Opts);
  const IFAResult *First = S.ifa();
  ASSERT_NE(First, nullptr);
  // AnalysisSession's contract: repeated accessors return the same
  // artifact, parallel solvers or not.
  EXPECT_EQ(S.ifa(), First);
  EXPECT_EQ(S.reachingDefs(), S.reachingDefs());
  EXPECT_EQ(&S.ifa()->Graph, &First->Graph);

  // And the artifacts equal a serial session's.
  driver::AnalysisSession Serial = driver::AnalysisSession::fromSource(
      "mesh.vhd", workloads::syncMeshDesign(4, 3, 4));
  ASSERT_NE(Serial.ifa(), nullptr);
  EXPECT_TRUE(Serial.ifa()->RMgl == First->RMgl);
  EXPECT_TRUE(Serial.ifa()->Graph.sameFlows(First->Graph));
}

} // namespace
