//===- tests/gen_test.cpp - Generator, mutator and minimizer units --------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// The fuzz harness is only as trustworthy as its parts: the generator
// must be deterministic and valid by construction (the differential
// batteries treat any diagnostic as a bug), the mutator deterministic
// and bounded, the minimizer monotone in its predicate. vifc_fuzz_smoke
// covers the full battery; these tests pin the component contracts.
//
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"
#include "gen/Minimizer.h"
#include "gen/Mutator.h"
#include "parse/Parser.h"
#include "sema/Elaborator.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

TEST(Generator, DeterministicPerSeed) {
  for (uint64_t Seed : {1ull, 7ull, 8ull, 123456789ull}) {
    EXPECT_EQ(gen::generateDesign(Seed), gen::generateDesign(Seed));
    gen::GenOptions O = gen::designOptions(Seed);
    EXPECT_EQ(O.Seed, Seed);
    EXPECT_EQ(gen::generateDesign(O), gen::generateDesign(Seed));
  }
  EXPECT_NE(gen::generateDesign(1), gen::generateDesign(2));
}

TEST(Generator, ValidByConstruction) {
  for (uint64_t Seed = 1; Seed <= 64; ++Seed) {
    std::string Source = gen::generateDesign(Seed);
    DiagnosticEngine Diags;
    DesignFile F = parseDesign(Source, Diags);
    ASSERT_FALSE(Diags.hasErrors())
        << "seed " << Seed << ":\n" << Diags.str() << "\n" << Source;
    ASSERT_TRUE(elaborateDesign(F, Diags).has_value())
        << "seed " << Seed << ":\n" << Diags.str() << "\n" << Source;
  }
}

TEST(Generator, SizeKnobsShapeTheDesign) {
  gen::GenOptions Small;
  Small.Seed = 5;
  Small.Processes = 1;
  Small.StmtsPerProcess = 2;
  Small.Blocks = 0;
  Small.ExtraEntities = 0;
  Small.SecondArchitecture = false;
  gen::GenOptions Large = Small;
  Large.Processes = 8;
  Large.StmtsPerProcess = 24;
  Large.SecondArchitecture = true;
  Large.ExtraEntities = 2;
  std::string S = gen::generateDesign(Small);
  std::string L = gen::generateDesign(Large);
  EXPECT_LT(S.size(), L.size());
  // The extra entities and second architecture show up as design units.
  EXPECT_EQ(L.find("entity gen1 is") != std::string::npos, true);
  EXPECT_EQ(L.find("architecture a1 of gen0") != std::string::npos, true);
  EXPECT_EQ(S.find("entity gen1 is"), std::string::npos);
}

TEST(Mutator, DeterministicAndBounded) {
  std::string Base = gen::generateDesign(3);
  gen::MutateOptions Opts;
  Opts.Seed = 42;
  EXPECT_EQ(gen::mutateSource(Base, Opts), gen::mutateSource(Base, Opts));
  Opts.Seed = 43;
  EXPECT_NE(gen::mutateSource(Base, Opts),
            gen::mutateSource(Base, gen::MutateOptions{42, 4, 64 * 1024}));

  // Duplication-heavy seeds stay within MaxSize.
  gen::MutateOptions Grow;
  Grow.Mutations = 64;
  Grow.MaxSize = 2048;
  for (uint64_t Seed = 1; Seed <= 32; ++Seed) {
    Grow.Seed = Seed;
    EXPECT_LE(gen::mutateSource(Base, Grow).size(), Grow.MaxSize);
  }
}

TEST(Minimizer, ReducesToThePredicateCore) {
  // A haystack of lines, one of which carries the "failure".
  std::string Source;
  for (int I = 0; I < 100; ++I)
    Source += I == 57 ? "needle := '1';\n"
                      : "filler_" + std::to_string(I) + " := '0';\n";
  auto StillFails = [](const std::string &S) {
    return S.find("needle") != std::string::npos;
  };
  std::string Min = gen::minimizeSource(Source, StillFails);
  EXPECT_TRUE(StillFails(Min));
  EXPECT_LT(Min.size(), 32u) << Min; // one line, possibly char-trimmed
  EXPECT_EQ(Min.find("filler"), std::string::npos);
}

TEST(Minimizer, ReturnsInputWhenPredicateNeverHolds) {
  std::string Source = "a := b;\n";
  EXPECT_EQ(gen::minimizeSource(Source,
                                [](const std::string &) { return false; }),
            Source);
}

} // namespace
