//===- tests/graph_test.cpp - Digraph algebra -----------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/BitSet.h"
#include "support/Graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>

using namespace vif;

namespace {

Digraph path3() {
  Digraph G;
  G.addEdge("a", "b");
  G.addEdge("b", "c");
  return G;
}

TEST(Digraph, NodesAndEdges) {
  Digraph G = path3();
  EXPECT_EQ(G.numNodes(), 3u);
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_TRUE(G.hasEdge("a", "b"));
  EXPECT_FALSE(G.hasEdge("b", "a"));
  EXPECT_FALSE(G.hasEdge("a", "c"));
  EXPECT_TRUE(G.hasNode("c"));
  EXPECT_FALSE(G.hasNode("d"));
}

TEST(Digraph, BulkEdgeInsertDeduplicatesAndMerges) {
  Digraph G;
  Digraph::NodeId A = G.addNode("a");
  Digraph::NodeId B = G.addNode("b");
  Digraph::NodeId C = G.addNode("c");
  G.addEdge(A, B); // pre-existing edge must survive the bulk merge
  G.addEdges({{B, C}, {A, B}, {B, C}, {C, A}});
  EXPECT_EQ(G.numEdges(), 3u);
  EXPECT_TRUE(G.hasEdge("a", "b"));
  EXPECT_TRUE(G.hasEdge("b", "c"));
  EXPECT_TRUE(G.hasEdge("c", "a"));
  EXPECT_FALSE(G.hasEdge("a", "c"));
}

TEST(Digraph, DuplicateInsertionIsIdempotent) {
  Digraph G;
  G.addEdge("a", "b");
  G.addEdge("a", "b");
  EXPECT_EQ(G.addNode("a"), G.addNode("a"));
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_EQ(G.numNodes(), 2u);
}

TEST(Digraph, Reachability) {
  Digraph G = path3();
  EXPECT_TRUE(G.reachable("a", "c"));
  EXPECT_FALSE(G.reachable("c", "a"));
  // Length >= 1: a node does not reach itself without a cycle.
  EXPECT_FALSE(G.reachable("a", "a"));
  G.addEdge("c", "a");
  EXPECT_TRUE(G.reachable("a", "a"));
}

TEST(Digraph, TransitiveClosure) {
  Digraph G = path3();
  Digraph C = G.transitiveClosure();
  EXPECT_TRUE(C.hasEdge("a", "c"));
  EXPECT_EQ(C.numEdges(), 3u);
  EXPECT_TRUE(C.isTransitive());
  EXPECT_FALSE(G.isTransitive()) << "the path itself is not transitive";
}

TEST(Digraph, ClosureOfCycleIsComplete) {
  Digraph G;
  G.addEdge("a", "b");
  G.addEdge("b", "c");
  G.addEdge("c", "a");
  Digraph C = G.transitiveClosure();
  EXPECT_EQ(C.numEdges(), 9u) << "3-cycle closes to all pairs + loops";
  EXPECT_TRUE(C.hasEdge("a", "a"));
}

TEST(Digraph, NonTransitivityWitness) {
  // The paper's program (a) graph: b -> c, a -> b but NO a -> c.
  Digraph G;
  G.addEdge("b", "c");
  G.addEdge("a", "b");
  EXPECT_FALSE(G.isTransitive());
  EXPECT_FALSE(G.hasEdge("a", "c"));
  EXPECT_TRUE(G.reachable("a", "c"))
      << "reachability exists, flow does not — the paper's core point";
}

TEST(Digraph, MergeNodes) {
  Digraph G;
  G.addEdge("a.in", "b.out");
  G.addEdge("b.in", "c.out");
  Digraph M = G.mergeNodes([](std::string_view N) {
    return std::string(N.substr(0, N.find('.')));
  });
  EXPECT_TRUE(M.hasEdge("a", "b"));
  EXPECT_TRUE(M.hasEdge("b", "c"));
  EXPECT_EQ(M.numNodes(), 3u);
}

TEST(Digraph, MergeDoesNotFabricateSelfLoops) {
  Digraph G;
  G.addEdge("a.in", "a.out");
  G.addEdge("b.in", "b.in"); // genuine self loop survives
  Digraph M = G.mergeNodes([](std::string_view N) {
    return std::string(N.substr(0, N.find('.')));
  });
  EXPECT_FALSE(M.hasEdge("a", "a"))
      << "a.in -> a.out collapses, not loops";
  EXPECT_TRUE(M.hasEdge("b", "b"));
}

TEST(Digraph, InducedSubgraph) {
  Digraph G = path3();
  G.addEdge("a", "x");
  Digraph S = G.inducedSubgraph(
      [](std::string_view N) { return N != "x"; });
  EXPECT_EQ(S.numNodes(), 3u);
  EXPECT_EQ(S.numEdges(), 2u);
  EXPECT_FALSE(S.hasNode("x"));
}

TEST(Digraph, EdgesNotIn) {
  Digraph G = path3();
  Digraph H = path3();
  H.addEdge("a", "c");
  auto Extra = H.edgesNotIn(G);
  ASSERT_EQ(Extra.size(), 1u);
  EXPECT_EQ(Extra[0].first, "a");
  EXPECT_EQ(Extra[0].second, "c");
  EXPECT_TRUE(G.edgesNotIn(H).empty());
}

TEST(Digraph, SameFlows) {
  Digraph G = path3(), H = path3();
  EXPECT_TRUE(G.sameFlows(H));
  H.addEdge("c", "a");
  EXPECT_FALSE(G.sameFlows(H));
}

TEST(Digraph, SuccessorsPredecessors) {
  Digraph G = path3();
  auto B = G.id("b");
  ASSERT_EQ(G.successors(G.id("a")).size(), 1u);
  EXPECT_EQ(G.successors(G.id("a"))[0], B);
  ASSERT_EQ(G.predecessors(G.id("c")).size(), 1u);
  EXPECT_EQ(G.predecessors(G.id("c"))[0], B);
  EXPECT_TRUE(G.successors(G.id("c")).empty());
}

TEST(Digraph, DotOutputIsSortedAndQuoted) {
  Digraph G;
  G.addEdge("b", "a");
  G.addEdge("a", "b");
  std::ostringstream OS;
  G.printDOT(OS, "t");
  EXPECT_EQ(OS.str(), "digraph \"t\" {\n"
                      "  \"a\";\n"
                      "  \"b\";\n"
                      "  \"a\" -> \"b\";\n"
                      "  \"b\" -> \"a\";\n"
                      "}\n");
}

TEST(Digraph, ClosureIdempotent) {
  Digraph G = path3();
  Digraph C1 = G.transitiveClosure();
  Digraph C2 = C1.transitiveClosure();
  EXPECT_TRUE(C1.sameFlows(C2));
}

TEST(Digraph, ClosureOfEmptyGraph) {
  Digraph G;
  Digraph C = G.transitiveClosure();
  EXPECT_EQ(C.numNodes(), 0u);
  EXPECT_EQ(C.numEdges(), 0u);

  // The bit-matrix form degrades to a 0 x 0 index without crashing.
  BitMatrix M;
  G.reachabilityClosure(M);
  EXPECT_EQ(M.wordsPerRow() * 64, 0u);
}

TEST(Digraph, ClosurePreservesSelfLoops) {
  Digraph G;
  G.addEdge("a", "a");
  G.addEdge("a", "b");
  Digraph C = G.transitiveClosure();
  EXPECT_TRUE(C.hasEdge("a", "a"));
  EXPECT_TRUE(C.hasEdge("a", "b"));
  // b is on no cycle: the length >= 1 closure has no (b, b) bit.
  EXPECT_FALSE(C.hasEdge("b", "b"));
  EXPECT_EQ(C.numEdges(), 2u);
}

TEST(Digraph, ClosureIgnoresDuplicateEdges) {
  Digraph G;
  G.addEdge("a", "b");
  G.addEdge("a", "b");
  G.addEdge("b", "c");
  G.addEdge("a", "b");
  Digraph C = G.transitiveClosure();
  EXPECT_EQ(C.numEdges(), 3u);
  EXPECT_TRUE(C.hasEdge("a", "c"));
}

TEST(Digraph, ReachabilityClosureMatchesDfs) {
  Digraph G;
  G.addEdge("a", "b");
  G.addEdge("b", "c");
  G.addEdge("c", "a");
  G.addEdge("c", "d");
  BitMatrix M;
  G.reachabilityClosure(M);
  const std::vector<std::string_view> &Names = G.nodes();
  for (Digraph::NodeId I = 0; I < G.numNodes(); ++I)
    for (Digraph::NodeId J = 0; J < G.numNodes(); ++J)
      EXPECT_EQ(M.test(I, J), G.reachable(Names[I], Names[J]))
          << Names[I] << " -> " << Names[J];
}

TEST(Digraph, ConcurrentLazyViewsAreSafe) {
  // The sorted-edge, rank and edge-order views build lazily under a mutex;
  // many threads materializing them on a freshly mutated graph must agree
  // (the tsan_serve binary runs the instrumented version of this pattern).
  Digraph G;
  for (unsigned I = 0; I + 1 < 64; ++I)
    G.addEdge("n" + std::to_string(I), "n" + std::to_string(I + 1));
  size_t Expect = G.numEdges();
  std::vector<std::thread> Threads;
  std::atomic<size_t> Sum{0};
  for (unsigned T = 0; T < 8; ++T)
    Threads.emplace_back([&G, &Sum]() {
      size_t Count = 0;
      G.forEachSortedEdge(
          [&Count](std::string_view, std::string_view) { ++Count; });
      Count += G.rankedNodes().size() == G.numNodes() ? 1 : 0;
      Sum += Count;
    });
  for (std::thread &T : Threads)
    T.join();
  // Each thread saw all 63 edges plus one complete rank table.
  EXPECT_EQ(Sum.load(), 8 * (Expect + 1));
}

} // namespace
