entity mux is port(d0 : in std_logic; d1 : in std_logic;
                   sel : in std_logic; q : out std_logic); end mux;
architecture rtl of mux is
begin
  p : process
  begin
    if sel = '1' then
      q <= d1;
    else
      q <= d0;
    end if;
    wait on d0, d1, sel;
  end process p;
end rtl;
