-- minimized mutation-fuzzer crasher: signed int64 overflow while
-- lexing an overlong integer literal (pre saturation fix)
b := x(99999999999999999999999999999999999 downto 0);
