entity broken is port(d : in std_logic
-- missing closing paren and everything after it
