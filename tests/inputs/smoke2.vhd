entity reg is port(d : in std_logic; q : out std_logic); end reg;
architecture rtl of reg is
begin
  p : process
  begin
    q <= d;
    wait on d;
  end process p;
end rtl;
