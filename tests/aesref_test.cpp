//===- tests/aesref_test.cpp - FIPS-197 reference vectors -----------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "aesref/Aes128.h"

#include <gtest/gtest.h>

using namespace vif::aes;

namespace {

Block block(std::initializer_list<int> Bytes) {
  Block B{};
  int I = 0;
  for (int V : Bytes)
    B[I++] = static_cast<uint8_t>(V);
  return B;
}

TEST(AesRef, SBoxSpotChecks) {
  EXPECT_EQ(SBox[0x00], 0x63);
  EXPECT_EQ(SBox[0x01], 0x7c);
  EXPECT_EQ(SBox[0x53], 0xed);
  EXPECT_EQ(SBox[0xff], 0x16);
}

TEST(AesRef, SBoxIsAPermutation) {
  bool Seen[256] = {};
  for (int I = 0; I < 256; ++I) {
    EXPECT_FALSE(Seen[SBox[I]]);
    Seen[SBox[I]] = true;
  }
}

TEST(AesRef, Xtime) {
  EXPECT_EQ(xtime(0x57), 0xae);
  EXPECT_EQ(xtime(0xae), 0x47);
  EXPECT_EQ(xtime(0x80), 0x1b);
  EXPECT_EQ(xtime(0x00), 0x00);
}

TEST(AesRef, KeyExpansionFirstAndLastWords) {
  // FIPS-197 Appendix A.1 for key 2b7e1516...
  Key K = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  KeySchedule W = expandKey(K);
  // w4 = a0fafe17.
  EXPECT_EQ(W[16], 0xa0);
  EXPECT_EQ(W[17], 0xfa);
  EXPECT_EQ(W[18], 0xfe);
  EXPECT_EQ(W[19], 0x17);
  // w43 = b6630ca6.
  EXPECT_EQ(W[172], 0xb6);
  EXPECT_EQ(W[173], 0x63);
  EXPECT_EQ(W[174], 0x0c);
  EXPECT_EQ(W[175], 0xa6);
}

TEST(AesRef, ShiftRowsRotates) {
  Block S;
  for (int I = 0; I < 16; ++I)
    S[I] = static_cast<uint8_t>(I);
  shiftRows(S);
  // Column-major: S[r + 4c]. Row 0 fixed.
  EXPECT_EQ(S[0], 0);
  EXPECT_EQ(S[4], 4);
  // Row 1 shifted left by 1: new (1, c) = old (1, c+1).
  EXPECT_EQ(S[1], 5);
  EXPECT_EQ(S[13], 1);
  // Row 2 by 2.
  EXPECT_EQ(S[2], 10);
  // Row 3 by 3.
  EXPECT_EQ(S[3], 15);
}

TEST(AesRef, MixColumnsKnownVector) {
  // FIPS-197 Section 5.1.3 example column db 13 53 45 -> 8e 4d a1 bc.
  Block S{};
  S[0] = 0xdb;
  S[1] = 0x13;
  S[2] = 0x53;
  S[3] = 0x45;
  mixColumns(S);
  EXPECT_EQ(S[0], 0x8e);
  EXPECT_EQ(S[1], 0x4d);
  EXPECT_EQ(S[2], 0xa1);
  EXPECT_EQ(S[3], 0xbc);
}

TEST(AesRef, AppendixBVector) {
  Block Plain = block({0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                       0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34});
  Key K = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  Block Expected = block({0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                          0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32});
  EXPECT_EQ(encrypt(Plain, K), Expected);
}

TEST(AesRef, AppendixCVector) {
  // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
  Block Plain, Expected;
  Key K;
  for (int I = 0; I < 16; ++I) {
    Plain[I] = static_cast<uint8_t>(I * 0x11);
    K[I] = static_cast<uint8_t>(I);
  }
  Expected = block({0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                    0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a});
  EXPECT_EQ(encrypt(Plain, K), Expected);
}

TEST(AesRef, RoundFunctionsComposeToEncrypt) {
  // Re-derive encrypt() from the exposed round primitives; guards against
  // the primitives drifting from the composed implementation.
  Block Plain = block({0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                       0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34});
  Key K = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  KeySchedule W = expandKey(K);
  Block S = Plain;
  addRoundKey(S, &W[0]);
  for (int R = 1; R <= 9; ++R) {
    subBytes(S);
    shiftRows(S);
    mixColumns(S);
    addRoundKey(S, &W[16 * R]);
  }
  subBytes(S);
  shiftRows(S);
  addRoundKey(S, &W[160]);
  EXPECT_EQ(S, encrypt(Plain, K));
}

} // namespace
