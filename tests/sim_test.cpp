//===- tests/sim_test.cpp - SOS simulator (paper Tables 1-3) --------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "sim/Simulator.h"
#include "sim/VcdWriter.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace vif;

namespace {

ElaboratedProgram elabDesign(const std::string &Source) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  auto P = elaborateDesign(F, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

ElaboratedProgram elabStmts(const std::string &Source) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(Source, Diags);
  auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

unsigned sigId(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabSignal &S : P.Signals)
    if (S.Name == Name)
      return S.Id;
  ADD_FAILURE() << "no signal " << Name;
  return 0;
}

unsigned varId(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabVariable &V : P.Variables)
    if (V.Name == Name)
      return V.Id;
  ADD_FAILURE() << "no variable " << Name;
  return 0;
}

TEST(Simulator, InitialValuesAreU) {
  ElaboratedProgram P = elabStmts(
      "variable v : std_logic;\n"
      "variable w : std_logic_vector(3 downto 0);\n"
      "null;");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.variableValue(varId(P, "v")).str(), "'U'");
  EXPECT_EQ(Sim.variableValue(varId(P, "w")).str(), "\"UUUU\"");
}

TEST(Simulator, DeclaredInitializers) {
  ElaboratedProgram P = elabStmts(
      "variable v : std_logic := '1';\n"
      "variable w : std_logic_vector(3 downto 0) := \"1010\";\n"
      "null;");
  Simulator Sim(P);
  Sim.run();
  EXPECT_EQ(Sim.variableValue(varId(P, "v")).str(), "'1'");
  EXPECT_EQ(Sim.variableValue(varId(P, "w")).str(), "\"1010\"");
}

TEST(Simulator, VariableAssignmentIsImmediate) {
  ElaboratedProgram P = elabStmts(
      "variable a, b : std_logic;\n"
      "a := '1'; b := a;");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.variableValue(varId(P, "b")).str(), "'1'");
}

TEST(Simulator, SignalAssignmentIsDeferredToDelta) {
  // The paper's key semantic point (Figure 2): s <= '1' modifies the
  // *active* value; a read before the synchronization still sees the old
  // present value.
  ElaboratedProgram P = elabStmts(
      "variable before, after : std_logic;\n"
      "s <= '1';\n"
      "before := s;\n"
      "wait on s;\n"
      "after := s;");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.variableValue(varId(P, "before")).str(), "'U'")
      << "read before the delta cycle sees the old present value";
  EXPECT_EQ(Sim.variableValue(varId(P, "after")).str(), "'1'");
  EXPECT_EQ(Sim.deltasExecuted(), 1u);
}

TEST(Simulator, LastAssignmentToSignalWins) {
  ElaboratedProgram P = elabStmts(
      "variable r : std_logic;\n"
      "s <= '0'; s <= '1'; wait on s; r := s;");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.variableValue(varId(P, "r")).str(), "'1'")
      << "within one process the driver is overwritten, not resolved";
}

TEST(Simulator, ResolutionAcrossProcesses) {
  // Two processes drive the same signal in the same delta: fs resolves the
  // multiset {'0', '1'} to 'X'.
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= '0'; wait; end process p1;
      p2 : process begin s <= '1'; wait; end process p2;
    end rtl;)");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.presentValue(sigId(P, "s")).str(), "'X'");
}

TEST(Simulator, ResolutionZWithDriver) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= 'Z'; wait; end process p1;
      p2 : process begin s <= '1'; wait; end process p2;
    end rtl;)");
  Simulator Sim(P);
  Sim.run();
  EXPECT_EQ(Sim.presentValue(sigId(P, "s")).str(), "'1'")
      << "high impedance yields to the forcing driver";
}

TEST(Simulator, WaitUntilGatesWakeup) {
  // The process wakes only when s changes AND the until condition holds.
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic := '0';
    begin
      watcher : process
      begin
        q <= '0';
        wait on s until s = '1';
        q <= '1';
        wait;
      end process watcher;
    end rtl;)");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.presentValue(sigId(P, "q")).str(), "'0'");

  // Drive s to '0' (no change) — nothing happens. Hmm: '0' == present, so
  // present does not change and the process must stay asleep.
  Sim.driveSignal(sigId(P, "s"), Value::scalar(StdLogic::Zero));
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.presentValue(sigId(P, "q")).str(), "'0'");

  // Drive s to '1': change + condition holds -> q follows.
  Sim.driveSignal(sigId(P, "s"), Value::scalar(StdLogic::One));
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.presentValue(sigId(P, "q")).str(), "'1'");
}

TEST(Simulator, WaitUntilConditionFalseKeepsWaiting) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic := '0';
    begin
      w : process
      begin
        wait on s until s = '1';
        q <= '1';
        wait;
      end process w;
    end rtl;)");
  Simulator Sim(P);
  Sim.driveSignal(sigId(P, "s"), Value::scalar(StdLogic::X));
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_TRUE(Sim.isWaiting(0)) << "s changed but condition is false";
  EXPECT_EQ(Sim.presentValue(sigId(P, "q")).str(), "'U'");
}

TEST(Simulator, DeltaCycleChain) {
  // s0 -> s1 -> s2 through two processes: two delta cycles.
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic; s2 : out std_logic); end e;
    architecture rtl of e is
      signal s0, s1 : std_logic;
    begin
      a : process begin s1 <= s0; wait on s0; end process a;
      b : process begin s2 <= s1; wait on s1; end process b;
    end rtl;)");
  Simulator Sim(P);
  Sim.run();
  Sim.driveSignal(sigId(P, "s0"), Value::scalar(StdLogic::One));
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.presentValue(sigId(P, "s2")).str(), "'1'");
  EXPECT_GE(Sim.deltasExecuted(), 3u);
}

TEST(Simulator, SliceAssignments) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(
      "variable v : std_logic_vector(7 downto 0) := \"00000000\";\n"
      "signal s : std_logic_vector(7 downto 0);\n"
      "v(7 downto 4) := \"1010\";\n"
      "s <= v;\n"
      "s(1 downto 0) <= \"11\";\n"
      "wait on s;",
      Diags);
  auto P2 = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  ASSERT_TRUE(P2.has_value()) << Diags.str();
  Simulator Sim(*P2);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  // Slice assignment after whole assignment patches the pending active
  // value: 10100000 with low bits forced to 11.
  EXPECT_EQ(Sim.presentValue(sigId(*P2, "s")).str(), "\"10100011\"");
}

TEST(Simulator, SliceOnToRangeVector) {
  ElaboratedProgram P = elabStmts(
      "variable v : std_logic_vector(0 to 7) := \"00000000\";\n"
      "variable w : std_logic_vector(0 to 1);\n"
      "v(0 to 1) := \"10\";\n"
      "w := v(0 to 1);");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.variableValue(varId(P, "w")).str(), "\"10\"");
}

TEST(Simulator, IfAndWhileControlFlow) {
  ElaboratedProgram P = elabStmts(
      "variable c : std_logic_vector(2 downto 0) := \"000\";\n"
      "variable n : std_logic_vector(2 downto 0) := \"101\";\n"
      "while c < n loop c := c + \"001\"; end loop;");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.variableValue(varId(P, "c")).str(), "\"101\"");
}

TEST(Simulator, StuckOnMetaCondition) {
  ElaboratedProgram P = elabStmts(
      "variable u : std_logic;\n"
      "if u then null; end if;");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Stuck)
      << "condition evaluates to 'U', violating the side condition of "
         "Table 2 [Conditional]";
  EXPECT_NE(Sim.stuckReason().find("'U'"), std::string::npos);
}

TEST(Simulator, RunawayProcessHitsStepBudget) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p : process
        variable v : std_logic := '0';
      begin
        v := not v;
      end process p;
    end rtl;)");
  Simulator::Options Opts;
  Opts.MaxStepsPerPhase = 1000;
  Simulator Sim(P, Opts);
  EXPECT_EQ(Sim.run(), SimStatus::Stuck);
  EXPECT_NE(Sim.stuckReason().find("step budget"), std::string::npos);
}

TEST(Simulator, MaxDeltasBudget) {
  // Two processes ping-ponging forever: both start at '0', so both flip to
  // '1', then back, never stabilizing.
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic); end e;
    architecture rtl of e is
      signal a : std_logic := '0';
      signal b : std_logic := '0';
    begin
      p1 : process begin a <= not b; wait on b; end process p1;
      p2 : process begin b <= not a; wait on a; end process p2;
    end rtl;)");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(10), SimStatus::MaxDeltas);
  EXPECT_EQ(Sim.deltasExecuted(), 10u);
}

TEST(Simulator, PlainWaitSleepsForever) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
    begin
      p : process begin q <= '1'; wait; end process p;
    end rtl;)");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.presentValue(sigId(P, "q")).str(), "'1'");
  // Even after driving the port, the plain wait never wakes.
  Sim.driveSignal(sigId(P, "go"), Value::scalar(StdLogic::One));
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_TRUE(Sim.isWaiting(0));
}

TEST(Simulator, TraceRecordsPresentChanges) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic); end e;
    architecture rtl of e is
      signal s : std_logic := '0';
    begin
      p : process begin s <= '1'; wait; end process p;
    end rtl;)");
  Simulator::Options Opts;
  Opts.RecordTrace = true;
  Simulator Sim(P, Opts);
  Sim.run();
  ASSERT_EQ(Sim.trace().size(), 1u);
  EXPECT_EQ(Sim.trace()[0].SigId, sigId(P, "s"));
  EXPECT_EQ(Sim.trace()[0].Old.str(), "'0'");
  EXPECT_EQ(Sim.trace()[0].New.str(), "'1'");
}

TEST(VcdWriter, EmitsHeaderInitialValuesAndChanges) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic); end e;
    architecture rtl of e is
      signal s : std_logic := '0';
      signal v : std_logic_vector(3 downto 0) := "0000";
    begin
      p : process begin s <= '1'; v <= "1010"; wait; end process p;
    end rtl;)");
  Simulator::Options Opts;
  Opts.RecordTrace = true;
  Simulator Sim(P, Opts);
  Sim.run();
  std::ostringstream OS;
  writeVcd(OS, P, Sim);
  std::string Vcd = OS.str();
  EXPECT_NE(Vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(Vcd.find("$var wire 1 "), std::string::npos);
  EXPECT_NE(Vcd.find("$var wire 4 "), std::string::npos);
  // Initial dump holds the pre-delta values.
  size_t DumpPos = Vcd.find("$dumpvars");
  size_t Step1 = Vcd.find("#1");
  ASSERT_NE(DumpPos, std::string::npos);
  ASSERT_NE(Step1, std::string::npos);
  EXPECT_LT(DumpPos, Step1);
  EXPECT_NE(Vcd.find("b0000 "), std::string::npos) << "initial vector";
  EXPECT_NE(Vcd.find("b1010 "), std::string::npos) << "changed vector";
}

TEST(VcdWriter, NineValuedProjection) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(go : in std_logic); end e;
    architecture rtl of e is
      signal s : std_logic := 'H';
    begin
      p : process begin s <= 'Z'; wait; end process p;
    end rtl;)");
  Simulator::Options Opts;
  Opts.RecordTrace = true;
  Simulator Sim(P, Opts);
  Sim.run();
  std::ostringstream OS;
  writeVcd(OS, P, Sim);
  std::string Vcd = OS.str();
  // 'H' projects to 1 in the initial dump; 'Z' to z afterwards; the
  // uninitialized go port shows as x.
  EXPECT_NE(Vcd.find("z"), std::string::npos);
  EXPECT_NE(Vcd.find("x"), std::string::npos);
}

TEST(Simulator, EnvironmentDriverParticipatesInResolution) {
  ElaboratedProgram P = elabDesign(R"(
    entity e is port(bus_s : inout std_logic); end e;
    architecture rtl of e is
    begin
      p : process begin bus_s <= '0'; wait; end process p;
    end rtl;)");
  Simulator Sim(P);
  Sim.driveSignal(sigId(P, "bus_s"), Value::scalar(StdLogic::One));
  Sim.run();
  EXPECT_EQ(Sim.presentValue(sigId(P, "bus_s")).str(), "'X'")
      << "process '0' resolves against environment '1'";
}

TEST(Simulator, ExpressionOperators) {
  ElaboratedProgram P = elabStmts(
      "variable a : std_logic_vector(3 downto 0) := \"0110\";\n"
      "variable b : std_logic_vector(3 downto 0) := \"0011\";\n"
      "variable r_xor, r_and : std_logic_vector(3 downto 0);\n"
      "variable r_cat : std_logic_vector(7 downto 0);\n"
      "variable r_eq, r_lt : std_logic;\n"
      "r_xor := a xor b;\n"
      "r_and := a and b;\n"
      "r_cat := a & b;\n"
      "r_eq := a = b;\n"
      "r_lt := b < a;");
  Simulator Sim(P);
  EXPECT_EQ(Sim.run(), SimStatus::Quiescent);
  EXPECT_EQ(Sim.variableValue(varId(P, "r_xor")).str(), "\"0101\"");
  EXPECT_EQ(Sim.variableValue(varId(P, "r_and")).str(), "\"0010\"");
  EXPECT_EQ(Sim.variableValue(varId(P, "r_cat")).str(), "\"01100011\"");
  EXPECT_EQ(Sim.variableValue(varId(P, "r_eq")).str(), "'0'");
  EXPECT_EQ(Sim.variableValue(varId(P, "r_lt")).str(), "'1'");
}

} // namespace
