//===- tests/artifact_store_test.cpp - On-disk artifact persistence -------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--store` persistence layer end-to-end: VIFS blob round-trips and
/// the corruption battery (truncated, bit-flipped, version-bumped files
/// must all read as misses, never as wrong data), the design/query-index
/// codecs, restart survival (a fresh session over a warm store produces
/// byte-identical results without invoking any solver), and the
/// incremental path (editing one process of an N-process design re-solves
/// exactly one process, with results equal to a cold run).
///
//===----------------------------------------------------------------------===//

#include "driver/AnalysisSession.h"
#include "driver/ArtifactStore.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace vif;
using namespace vif::driver;

namespace {

/// A unique store directory per test, removed on scope exit.
struct TempStoreDir {
  std::string Path;
  TempStoreDir() {
    std::string Templ = ::testing::TempDir() + "vif-store-XXXXXX";
    std::vector<char> Buf(Templ.begin(), Templ.end());
    Buf.push_back('\0');
    const char *P = ::mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Path = P ? P : "";
  }
  ~TempStoreDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

const char MuxSource[] =
    "entity mux is port(d0 : in std_logic; d1 : in std_logic;"
    " sel : in std_logic; q : out std_logic); end mux;"
    " architecture rtl of mux is begin p : process begin"
    " if sel = '1' then q <= d1; else q <= d0; end if;"
    " wait on d0, d1, sel; end process p; end rtl;";

/// Renders everything the dsgn blob covers — both matrices and the sorted
/// flow-graph edge list — so runs can be compared byte for byte.
std::string renderIfa(AnalysisSession &S) {
  const IFAResult *R = S.ifa();
  const ElaboratedProgram *P = S.program();
  EXPECT_NE(R, nullptr);
  EXPECT_NE(P, nullptr);
  if (!R || !P)
    return "";
  std::ostringstream OS;
  R->RMlo.print(OS, *P);
  R->RMgl.print(OS, *P);
  R->Graph.forEachSortedEdge(
      [&OS](std::string_view From, std::string_view To) {
        OS << From << " -> " << To << '\n';
      });
  return OS.str();
}

TEST(ArtifactStore, RawBlobRoundTrip) {
  TempStoreDir Dir;
  ArtifactStore Store(Dir.Path);
  ASSERT_TRUE(Store.usable());

  std::string Payload = "per-process artifact bytes \x01\x02\x00 etc";
  Payload.push_back('\0'); // embedded NULs must survive
  Store.store("actv", 0xdeadbeef12345678ull, Payload);

  std::string Back;
  EXPECT_TRUE(Store.load("actv", 0xdeadbeef12345678ull, Back));
  EXPECT_EQ(Back, Payload);

  // Same key under another kind is a distinct blob.
  EXPECT_FALSE(Store.load("rdpr", 0xdeadbeef12345678ull, Back));
  // Absent key: miss.
  EXPECT_FALSE(Store.load("actv", 1, Back));

  ArtifactStore::Counters C = Store.counters();
  EXPECT_EQ(C.Hits, 1u);
  EXPECT_EQ(C.Misses, 2u);
  EXPECT_EQ(C.Writes, 1u);
  EXPECT_GT(C.BytesRead, Payload.size());
  EXPECT_GT(C.BytesWritten, Payload.size());
}

TEST(ArtifactStore, SurvivesReopenAndOverwrites) {
  TempStoreDir Dir;
  {
    ArtifactStore S1(Dir.Path);
    S1.store("dsgn", 7, "first");
    S1.store("dsgn", 7, "second"); // overwrite is the fresher value
  }
  ArtifactStore S2(Dir.Path);
  std::string Back;
  EXPECT_TRUE(S2.load("dsgn", 7, Back));
  EXPECT_EQ(Back, "second");
}

TEST(ArtifactStore, UnusableDirectoryIsInert) {
  TempStoreDir Dir;
  std::string FilePath = Dir.Path + "/not-a-directory";
  writeFile(FilePath, "plain file");
  ArtifactStore Store(FilePath);
  EXPECT_FALSE(Store.usable());
  Store.store("dsgn", 1, "payload"); // must not throw or create anything
  std::string Back;
  EXPECT_FALSE(Store.load("dsgn", 1, Back));
}

TEST(ArtifactStore, CorruptTruncatedAndVersionBumpedFilesAreMisses) {
  TempStoreDir Dir;
  ArtifactStore Store(Dir.Path);
  ASSERT_TRUE(Store.usable());
  std::string Payload(64, 'x');
  Store.store("dsgn", 42, Payload);
  std::string File =
      Dir.Path + "/" + ArtifactStore::fileName("dsgn", 42);
  std::string Good = readFile(File);
  ASSERT_GT(Good.size(), 28u); // magic+version+kind+key+len

  std::string Back;
  ASSERT_TRUE(Store.load("dsgn", 42, Back));

  // Truncation anywhere — inside the header, the payload, the checksum.
  for (size_t Len : {0ul, 3ul, 16ul, Good.size() / 2, Good.size() - 1}) {
    writeFile(File, Good.substr(0, Len));
    EXPECT_FALSE(Store.load("dsgn", 42, Back)) << "truncated to " << Len;
  }

  // A flipped payload byte fails the checksum.
  std::string Flipped = Good;
  Flipped[30] ^= 0x40;
  writeFile(File, Flipped);
  EXPECT_FALSE(Store.load("dsgn", 42, Back));

  // A future format version is a miss, not an error.
  std::string Bumped = Good;
  Bumped[4] = char(ArtifactStoreVersion + 1);
  writeFile(File, Bumped);
  EXPECT_FALSE(Store.load("dsgn", 42, Back));

  // Bad magic.
  std::string BadMagic = Good;
  BadMagic[0] = 'X';
  writeFile(File, BadMagic);
  EXPECT_FALSE(Store.load("dsgn", 42, Back));

  // A key mismatch (file renamed / hash collision) is caught by the
  // envelope, which records the key it was written under.
  std::string Moved = Dir.Path + "/" + ArtifactStore::fileName("dsgn", 43);
  writeFile(Moved, Good);
  EXPECT_FALSE(Store.load("dsgn", 43, Back));

  // Restoring the original bytes restores the hit.
  writeFile(File, Good);
  EXPECT_TRUE(Store.load("dsgn", 42, Back));
  EXPECT_EQ(Back, Payload);
}

TEST(ArtifactCodec, DesignBlobRoundTrips) {
  AnalysisSession S =
      AnalysisSession::fromSource("mux.vhd", MuxSource, SessionOptions());
  const IFAResult *R = S.ifa();
  ASSERT_NE(R, nullptr);

  std::string Blob = encodeDesignArtifact(*R);
  ResourceMatrix RMlo, RMgl;
  Digraph Graph;
  ASSERT_TRUE(decodeDesignArtifact(Blob, RMlo, RMgl, Graph));

  const ElaboratedProgram *P = S.program();
  std::ostringstream Want, Got;
  R->RMlo.print(Want, *P);
  R->RMgl.print(Want, *P);
  RMlo.print(Got, *P);
  RMgl.print(Got, *P);
  EXPECT_EQ(Got.str(), Want.str());
  EXPECT_EQ(Graph.numNodes(), R->Graph.numNodes());
  EXPECT_EQ(Graph.numEdges(), R->Graph.numEdges());

  // Every strict prefix is undecodable — the framing is fully
  // length-prefixed, so truncation can never produce a partial result.
  for (size_t Len = 0; Len < Blob.size(); ++Len) {
    ResourceMatrix A, B;
    Digraph G;
    EXPECT_FALSE(decodeDesignArtifact(Blob.substr(0, Len), A, B, G))
        << "prefix of " << Len << " bytes decoded";
  }
  // Trailing garbage is rejected too (atEnd discipline).
  ResourceMatrix A, B;
  Digraph G;
  EXPECT_FALSE(decodeDesignArtifact(Blob + "z", A, B, G));
}

TEST(ArtifactCodec, QueryIndexRoundTripsAndValidatesShape) {
  AnalysisSession S = AnalysisSession::fromSource(
      "pipe.vhd", workloads::pipelineDesign(5), SessionOptions());
  const query::FlowQueryEngine *Q = S.queryEngine();
  ASSERT_NE(Q, nullptr);
  const Digraph &Graph = S.ifa()->Graph;

  std::string Blob = encodeQueryIndex(*Q);
  std::optional<query::FlowQueryEngine> Back =
      decodeQueryIndex(Blob, Graph);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->numNodes(), Q->numNodes());
  EXPECT_EQ(Back->numEdges(), Q->numEdges());
  EXPECT_TRUE(Back->reaches("s_0", "s_5"));
  EXPECT_FALSE(Back->reaches("s_5", "s_0"));
  EXPECT_EQ(Back->reachableFrom("s_0"), Q->reachableFrom("s_0"));
  EXPECT_EQ(Back->whatReaches("s_5"), Q->whatReaches("s_5"));

  // The blob only fits the graph it was built over: a mismatched node
  // count is a miss, not a crash or a wrong engine.
  AnalysisSession Other =
      AnalysisSession::fromSource("mux.vhd", MuxSource, SessionOptions());
  EXPECT_FALSE(
      decodeQueryIndex(Blob, Other.ifa()->Graph).has_value());

  for (size_t Len = 0; Len < Blob.size(); ++Len)
    EXPECT_FALSE(decodeQueryIndex(Blob.substr(0, Len), Graph).has_value())
        << "prefix of " << Len << " bytes decoded";
}

TEST(RestartSurvival, WarmDiskRunInvokesNoSolver) {
  TempStoreDir Dir;
  std::string Source = workloads::pipelineDesign(6);
  std::string Cold;
  {
    ArtifactStore Store(Dir.Path);
    ProcessArtifactTable Table;
    Table.setBacking(&Store);
    AnalysisSession S =
        AnalysisSession::fromSource("pipe.vhd", Source, SessionOptions());
    S.setArtifacts(&Table, &Store);
    Cold = renderIfa(S);
    EXPECT_GT(S.timings().IfaMs, 0.0);
    ASSERT_NE(S.queryEngine(), nullptr);
    EXPECT_GE(Store.counters().Writes, 2u); // dsgn + qidx at least
  } // "process exit": every in-memory artifact is gone

  ArtifactStore Store(Dir.Path);
  ProcessArtifactTable Table;
  Table.setBacking(&Store);
  AnalysisSession S =
      AnalysisSession::fromSource("pipe.vhd", Source, SessionOptions());
  S.setArtifacts(&Table, &Store);
  std::string Warm = renderIfa(S);

  // Byte-identical results, no solver invocation: the ifa stage timing
  // never ran — only store I/O time was spent.
  EXPECT_EQ(Warm, Cold);
  EXPECT_TRUE(S.ifaPartial());
  EXPECT_EQ(S.timings().IfaMs, 0.0);
  EXPECT_GT(S.timings().StoreMs, 0.0);
  EXPECT_EQ(S.incrementalStats().RdSolved, 0u);
  EXPECT_EQ(S.incrementalStats().ActiveSolved, 0u);

  // The query index is served from disk too: no closure rebuild.
  const query::FlowQueryEngine *Q = S.queryEngine();
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(S.timings().QueryMs, 0.0);
  EXPECT_TRUE(Q->reaches("s_0", "s_6"));
  EXPECT_GE(Store.counters().Hits, 2u);
  EXPECT_EQ(Store.counters().Writes, 0u);
}

TEST(RestartSurvival, RdRequestUpgradesThePartialResultInPlace) {
  TempStoreDir Dir;
  std::string Source = workloads::pipelineDesign(4);
  size_t ColdIterations = 0;
  {
    ArtifactStore Store(Dir.Path);
    AnalysisSession S =
        AnalysisSession::fromSource("pipe.vhd", Source, SessionOptions());
    S.setArtifacts(nullptr, &Store);
    ASSERT_NE(S.ifa(), nullptr);
    ColdIterations = S.reachingDefs()->Iterations;
  }

  ArtifactStore Store(Dir.Path);
  AnalysisSession S =
      AnalysisSession::fromSource("pipe.vhd", Source, SessionOptions());
  S.setArtifacts(nullptr, &Store);
  const IFAResult *R = S.ifa();
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(S.ifaPartial());
  const Digraph *GraphBefore = &R->Graph;

  // Asking for the RD tier upgrades the partial result without
  // disturbing the artifacts already handed out: same IFAResult, same
  // graph object, and the solved RD matches the cold run.
  const ReachingDefsResult *RD = S.reachingDefs();
  ASSERT_NE(RD, nullptr);
  EXPECT_FALSE(S.ifaPartial());
  EXPECT_EQ(S.ifa(), R);
  EXPECT_EQ(&S.ifa()->Graph, GraphBefore);
  EXPECT_EQ(RD->Iterations, ColdIterations);
}

TEST(Incremental, EditingOneProcessResolvesExactlyOne) {
  std::string Base = workloads::pipelineDesign(8);
  // An expression-level edit confined to the last process: same labels,
  // same resolved ids everywhere else, so only st_8's slice hash moves.
  std::string Edited = Base;
  size_t At = Edited.find("s_8 <= s_7;");
  ASSERT_NE(At, std::string::npos);
  Edited.replace(At, 11, "s_8 <= s_7 and s_7;");

  ProcessArtifactTable Table;
  AnalysisSession A =
      AnalysisSession::fromSource("pipe.vhd", Base, SessionOptions());
  A.setArtifacts(&Table, nullptr);
  ASSERT_NE(A.ifa(), nullptr);
  EXPECT_EQ(A.incrementalStats().ActiveSolved, 8u);
  EXPECT_EQ(A.incrementalStats().ActiveReused, 0u);
  EXPECT_EQ(A.incrementalStats().RdSolved, 8u);
  EXPECT_EQ(A.incrementalStats().RdReused, 0u);

  AnalysisSession B =
      AnalysisSession::fromSource("pipe.vhd", Edited, SessionOptions());
  B.setArtifacts(&Table, nullptr);
  ASSERT_NE(B.ifa(), nullptr);
  EXPECT_EQ(B.incrementalStats().ActiveSolved, 1u);
  EXPECT_EQ(B.incrementalStats().ActiveReused, 7u);
  EXPECT_EQ(B.incrementalStats().RdSolved, 1u);
  EXPECT_EQ(B.incrementalStats().RdReused, 7u);

  // The recomposed results are exactly the cold run's (set for set).
  AnalysisSession Cold =
      AnalysisSession::fromSource("pipe.vhd", Edited, SessionOptions());
  EXPECT_EQ(renderIfa(B), renderIfa(Cold));
  EXPECT_EQ(B.reachingDefs()->Iterations, Cold.reachingDefs()->Iterations);
}

TEST(Incremental, UnchangedReanalysisReusesEverything) {
  std::string Source = workloads::pipelineDesign(5);
  ProcessArtifactTable Table;
  AnalysisSession A =
      AnalysisSession::fromSource("pipe.vhd", Source, SessionOptions());
  A.setArtifacts(&Table, nullptr);
  ASSERT_NE(A.ifa(), nullptr);

  AnalysisSession B =
      AnalysisSession::fromSource("pipe.vhd", Source, SessionOptions());
  B.setArtifacts(&Table, nullptr);
  ASSERT_NE(B.ifa(), nullptr);
  EXPECT_EQ(B.incrementalStats().ActiveSolved, 0u);
  EXPECT_EQ(B.incrementalStats().ActiveReused, 5u);
  EXPECT_EQ(B.incrementalStats().RdSolved, 0u);
  EXPECT_EQ(B.incrementalStats().RdReused, 5u);
  EXPECT_EQ(renderIfa(A), renderIfa(B));
}

} // namespace
