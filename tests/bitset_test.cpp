//===- tests/bitset_test.cpp - support/BitSet word-boundary edges ---------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/BitSet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace vif;

namespace {

// The sizes the satellite spec calls out: empty, one-under, exactly-one,
// and one-over a 64-bit word.
const size_t BoundarySizes[] = {0, 63, 64, 65};

TEST(BitSet, EmptyUniverse) {
  BitSet B(0);
  EXPECT_EQ(B.size(), 0u);
  EXPECT_TRUE(B.none());
  EXPECT_EQ(B.count(), 0u);
  BitSet C(0);
  EXPECT_TRUE(B == C);
  EXPECT_FALSE(B.unionWith(C)) << "∅ ∪ ∅ does not grow";
  B.intersectWith(C);
  B.subtract(C);
  B.forEach([](size_t) { FAIL() << "no bits to visit"; });
}

TEST(BitSet, SetTestResetAcrossBoundaries) {
  for (size_t N : BoundarySizes) {
    if (N == 0)
      continue;
    BitSet B(N);
    for (size_t I = 0; I < N; ++I)
      EXPECT_FALSE(B.test(I)) << "fresh set, size " << N;
    // First, last, and the word-straddling bits when present.
    std::vector<size_t> Probe = {0, N - 1};
    if (N > 63)
      Probe.push_back(63);
    if (N > 64)
      Probe.push_back(64);
    for (size_t I : Probe) {
      B.set(I);
      EXPECT_TRUE(B.test(I)) << "size " << N << " bit " << I;
    }
    EXPECT_EQ(B.count(), [&] {
      std::vector<size_t> Dedup = Probe;
      std::sort(Dedup.begin(), Dedup.end());
      Dedup.erase(std::unique(Dedup.begin(), Dedup.end()), Dedup.end());
      return Dedup.size();
    }());
    for (size_t I : Probe) {
      B.reset(I);
      EXPECT_FALSE(B.test(I));
    }
    EXPECT_TRUE(B.none());
  }
}

TEST(BitSet, LastWordIsNotSharedWithNeighbors) {
  // Setting the final bit of a 65-bit set must not disturb bit 63/0.
  BitSet B(65);
  B.set(64);
  EXPECT_FALSE(B.test(63));
  EXPECT_FALSE(B.test(0));
  EXPECT_EQ(B.count(), 1u);
  B.set(63);
  EXPECT_EQ(B.count(), 2u);
}

TEST(BitSet, UnionGrewDetection) {
  for (size_t N : BoundarySizes) {
    if (N == 0)
      continue;
    BitSet A(N), B(N);
    B.set(N - 1);
    EXPECT_TRUE(A.unionWith(B)) << "gaining the last bit grows, size " << N;
    EXPECT_FALSE(A.unionWith(B)) << "second union is a no-op, size " << N;
    EXPECT_TRUE(A == B);
    // Growing by a bit in the first word while the last word is equal.
    BitSet C(N);
    C.set(0);
    EXPECT_TRUE(A.unionWith(C));
    EXPECT_EQ(A.count(), N == 1 ? 1u : 2u);
  }
}

TEST(BitSet, SubtractAndIntersect) {
  BitSet A(65), B(65);
  for (size_t I : {size_t(0), size_t(5), size_t(63), size_t(64)})
    A.set(I);
  B.set(5);
  B.set(64);
  BitSet I = A;
  I.intersectWith(B);
  EXPECT_EQ(I.count(), 2u);
  EXPECT_TRUE(I.test(5));
  EXPECT_TRUE(I.test(64));
  A.subtract(B);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_TRUE(A.test(0));
  EXPECT_TRUE(A.test(63));
  EXPECT_FALSE(A.test(64));
}

TEST(BitSet, ForEachVisitsAscending) {
  BitSet B(65);
  std::vector<size_t> Expected = {0, 31, 32, 63, 64};
  for (size_t I : Expected)
    B.set(I);
  std::vector<size_t> Seen;
  B.forEach([&Seen](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, Expected);
}

TEST(BitSet, EqualityIsSizeAndContent) {
  BitSet A(64), B(65);
  EXPECT_FALSE(A == B) << "same content, different universes";
  BitSet C(64);
  C.set(63);
  EXPECT_TRUE(A != C);
  A.set(63);
  EXPECT_TRUE(A == C);
  A.clearAll();
  EXPECT_TRUE(A.none());
  EXPECT_EQ(A.size(), 64u);
}

TEST(BitMatrix, RowsShareOneBufferAcrossWordBoundaries) {
  for (size_t Bits : {size_t(0), size_t(1), size_t(63), size_t(64),
                      size_t(65)}) {
    BitMatrix M(3, Bits);
    EXPECT_EQ(M.numRows(), 3u);
    EXPECT_EQ(M.numBits(), Bits);
    // Rows are padded to a multiple of 4 words (32-byte stride) so the
    // unrolled union kernels run tail-free.
    EXPECT_EQ(M.wordsPerRow(), ((Bits + 63) / 64 + 3) & ~size_t(3));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(M.row(0)) % 32, 0u)
        << "rows must be 32-byte aligned";
    if (Bits == 0)
      continue;
    M.set(0, 0);
    M.set(0, Bits - 1);
    M.set(2, Bits - 1);
    EXPECT_TRUE(M.test(0, 0));
    EXPECT_TRUE(M.test(0, Bits - 1));
    EXPECT_FALSE(M.test(1, 0)) << "rows must not alias";
    EXPECT_FALSE(M.test(1, Bits - 1));
    EXPECT_TRUE(M.test(2, Bits - 1));
  }
}

TEST(BitMatrix, SpanOperationsMatchBitSetSemantics) {
  size_t K = 65, W = (K + 63) / 64;
  BitMatrix M(4, K);
  M.set(0, 0);
  M.set(0, 64);
  M.set(1, 5);
  M.set(1, 64);

  // orInto reports growth exactly when a new bit appears.
  EXPECT_TRUE(BitMatrix::orInto(M.row(2), M.row(0), W));
  EXPECT_FALSE(BitMatrix::orInto(M.row(2), M.row(0), W)) << "idempotent";
  EXPECT_TRUE(BitMatrix::orInto(M.row(2), M.row(1), W));
  EXPECT_FALSE(BitMatrix::equal(M.row(2), M.row(0), W));

  // subtract: {0,5,64} \ {5,64} = {0}.
  BitMatrix::subtract(M.row(2), M.row(1), W);
  std::vector<size_t> Seen;
  BitMatrix::forEachBit(M.row(2), W, [&](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<size_t>{0}));

  // andWith: {0,64} ∩ {5,64} = {64}, crossing the word boundary.
  BitMatrix::copy(M.row(3), M.row(0), W);
  BitMatrix::andWith(M.row(3), M.row(1), W);
  Seen.clear();
  BitMatrix::forEachBit(M.row(3), W, [&](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<size_t>{64}));
  BitMatrix::clear(M.row(3), W);
  BitMatrix::forEachBit(M.row(3), W, [&](size_t) { FAIL(); });

  // reset() clears content and reshapes (padded to 4-word rows).
  M.reset(2, 63);
  EXPECT_EQ(M.wordsPerRow(), 4u);
  EXPECT_FALSE(M.test(0, 0));
}

} // namespace
