//===- tests/property_test.cpp - Cross-cutting analysis invariants --------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Properties that must hold on arbitrary programs, exercised over the
/// deterministic random families of workloads/Synthetic.h:
///
///  * precision order: the RD-guided graph is a subgraph of Kemmerer's
///    transitive closure (same local matrix, strictly finer closure);
///  * RD∩ ⊆ RD∪ everywhere (the paper's ⋂˙ guarantee);
///  * RMlo ⊆ RMgl and RMgl \ RMlo carries only R0 entries;
///  * idempotence of the closure (re-running adds nothing);
///  * determinism (two runs produce identical results).
///
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "parse/Parser.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

#include <set>

using namespace vif;

namespace {

struct Analyzed {
  ElaboratedProgram Program;
  ProgramCFG CFG;
  IFAResult R;
  KemmererResult K;
};

Analyzed analyze(const std::string &Source, bool IsDesign,
                 IFAOptions Opts = {}) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  EXPECT_TRUE(P.has_value()) << Diags.str() << "\n" << Source;
  Analyzed A{std::move(*P), {}, {}, {}};
  A.CFG = ProgramCFG::build(A.Program);
  A.R = analyzeInformationFlow(A.Program, A.CFG, Opts);
  A.K = analyzeKemmerer(A.Program, A.CFG);
  return A;
}

void checkInvariants(const Analyzed &A, const std::string &Tag) {
  // Precision order: every RD-guided edge is in Kemmerer's closure, EXCEPT
  // flows that originate at a synchronization point (resources read by a
  // wait's S set or until condition). Kemmerer's local matrix has no
  // modify entry at waits, so his method cannot see those flows at all —
  // the two methods are comparable only away from synchronization reads.
  // Interface nodes (n◦/n•) likewise have no Kemmerer counterpart.
  std::set<std::string> WaitReadSources;
  for (const ProcessCFG &Proc : A.CFG.processes())
    for (LabelId L : Proc.WaitLabels)
      for (Resource N : A.R.RMlo.resourcesAt(L, Access::R0))
        WaitReadSources.insert(N.name(A.Program));
  for (const auto &[From, To] : A.R.Graph.sortedEdges()) {
    auto IsInterface = [](const std::string &N) {
      return N.find("◦") != std::string::npos ||
             N.find("•") != std::string::npos;
    };
    if (IsInterface(From) || IsInterface(To))
      continue;
    // A source that is itself a sync read, or feeds one (transitively, by
    // Kemmerer's own closure), may flow through the synchronization gate —
    // a channel Kemmerer's model does not have.
    bool FeedsSync = WaitReadSources.count(From) != 0;
    for (const std::string &W : WaitReadSources)
      FeedsSync |= A.K.Graph.hasNode(From) && A.K.Graph.hasNode(W) &&
                   A.K.Graph.hasEdge(From, W);
    if (FeedsSync)
      continue;
    EXPECT_TRUE(A.K.Graph.hasEdge(From, To))
        << Tag << ": RD-guided edge " << From << "->" << To
        << " missing from Kemmerer's closure";
  }

  // RD∩ ⊆ RD∪.
  for (LabelId L = 1; L <= A.CFG.numLabels(); ++L) {
    for (const DefPair &D : A.R.Active.MustEntry[L])
      EXPECT_TRUE(A.R.Active.MayEntry[L].contains(D)) << Tag;
    for (const DefPair &D : A.R.Active.MustExit[L])
      EXPECT_TRUE(A.R.Active.MayExit[L].contains(D)) << Tag;
  }

  // RMlo ⊆ RMgl; the closure only adds R0 entries (plus the outgoing M
  // pseudo-entries, which live at labels above the real ones).
  for (const RMEntry &E : A.R.RMlo)
    EXPECT_TRUE(A.R.RMgl.contains(E.N, E.L, E.A)) << Tag;
  for (const RMEntry &E : A.R.RMgl) {
    if (A.R.RMlo.contains(E.N, E.L, E.A))
      continue;
    bool IsOutgoingM = E.L > A.CFG.numLabels() &&
                       (E.A == Access::M0 || E.A == Access::M1);
    EXPECT_TRUE(E.A == Access::R0 || IsOutgoingM) << Tag;
  }
}

class RandomStatementPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomStatementPrograms, Invariants) {
  std::string Source = workloads::randomStatements(GetParam(), 25, 6);
  Analyzed A = analyze(Source, false);
  checkInvariants(A, "stmt seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStatementPrograms,
                         ::testing::Range<uint64_t>(1, 26));

class RandomDesigns : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDesigns, Invariants) {
  std::string Source =
      workloads::randomDesign(GetParam(), 2 + GetParam() % 3, 8, 4);
  Analyzed A = analyze(Source, true);
  checkInvariants(A, "design seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesigns,
                         ::testing::Range<uint64_t>(1, 26));

class RandomDesignsImproved : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDesignsImproved, InvariantsWithInterfaceNodes) {
  IFAOptions Opts;
  Opts.Improved = true;
  std::string Source = workloads::randomPortedDesign(GetParam(), 3, 6, 3, 2);
  Analyzed A = analyze(Source, true, Opts);
  checkInvariants(A, "ported seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesignsImproved,
                         ::testing::Range<uint64_t>(1, 16));

TEST(Determinism, RepeatedAnalysisIsIdentical) {
  std::string Source = workloads::randomDesign(7, 3, 10, 4);
  Analyzed A = analyze(Source, true);
  Analyzed B = analyze(Source, true);
  EXPECT_TRUE(A.R.Graph.sameFlows(B.R.Graph));
  EXPECT_TRUE(A.R.RMgl == B.R.RMgl);
  EXPECT_EQ(A.R.Graph.dot(), B.R.Graph.dot());
}

TEST(Idempotence, ClosureIsAFixpoint) {
  // Feeding the analysis its own program twice (re-elaborated) must give
  // the same RMgl; and Kemmerer's closure is idempotent by construction.
  std::string Source = workloads::tempReuseLadder(3, 4);
  Analyzed A = analyze(Source, false);
  Digraph Once = A.K.Graph;
  Digraph Twice = Once.transitiveClosure();
  EXPECT_TRUE(Once.sameFlows(Twice));
}

TEST(Determinism, GraphNodeOrderIsStable) {
  std::string Source = workloads::randomDesign(11, 4, 6, 5);
  Analyzed A = analyze(Source, true);
  std::vector<std::string> N1 = A.R.Graph.sortedNodes();
  Analyzed B = analyze(Source, true);
  EXPECT_EQ(N1, B.R.Graph.sortedNodes());
}

} // namespace
