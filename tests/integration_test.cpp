//===- tests/integration_test.cpp - End-to-end pipeline -------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-pipeline tests: VHDL1 source -> parse -> elaborate -> simulate,
/// checked against the software AES-128 reference (the SIM row of the
/// experiment index), plus analysis/simulation agreement checks.
///
//===----------------------------------------------------------------------===//

#include "aesref/Aes128.h"
#include "ifa/InformationFlow.h"
#include "ifa/Policy.h"
#include "parse/Parser.h"
#include "sim/Simulator.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

ElaboratedProgram elabDesign(const std::string &Source) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  auto P = elaborateDesign(F, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

unsigned sigId(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabSignal &S : P.Signals)
    if (S.Name == Name)
      return S.Id;
  ADD_FAILURE() << "no signal " << Name;
  return 0;
}

/// Runs the generated AES core on (Plain, Key) and returns the ct bytes.
std::optional<aes::Block> simulateAes(const ElaboratedProgram &P,
                                      const aes::Block &Plain,
                                      const aes::Key &Key) {
  Simulator Sim(P);
  for (int I = 0; I < 16; ++I) {
    Sim.driveSignal(sigId(P, "pt_" + std::to_string(I)),
                    Value::vector(LogicVector::fromUInt(Plain[I], 8)));
    Sim.driveSignal(sigId(P, "key_" + std::to_string(I)),
                    Value::vector(LogicVector::fromUInt(Key[I], 8)));
  }
  Sim.driveSignal(sigId(P, "go"), Value::scalar(StdLogic::One));
  if (Sim.run() == SimStatus::Stuck) {
    ADD_FAILURE() << "simulation stuck: " << Sim.stuckReason();
    return std::nullopt;
  }
  aes::Block Out{};
  for (int I = 0; I < 16; ++I) {
    const Value &V = Sim.presentValue(sigId(P, "ct_" + std::to_string(I)));
    std::optional<uint64_t> Byte = V.asVector().toUInt();
    if (!Byte) {
      ADD_FAILURE() << "ct_" << I << " is not binary: " << V.str();
      return std::nullopt;
    }
    Out[I] = static_cast<uint8_t>(*Byte);
  }
  return Out;
}

TEST(AesIntegration, FullEncryptionMatchesFips197AppendixB) {
  // The headline substrate-validation experiment: the VHDL1 AES core,
  // executed under the paper's SOS, reproduces FIPS-197.
  ElaboratedProgram P = elabDesign(workloads::aesCoreDesign(10));
  aes::Block Plain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                      0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  aes::Key Key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                  0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  std::optional<aes::Block> Ct = simulateAes(P, Plain, Key);
  ASSERT_TRUE(Ct.has_value());
  EXPECT_EQ(*Ct, aes::encrypt(Plain, Key));
}

TEST(AesIntegration, SecondVectorAppendixC) {
  ElaboratedProgram P = elabDesign(workloads::aesCoreDesign(10));
  aes::Block Plain;
  aes::Key Key;
  for (int I = 0; I < 16; ++I) {
    Plain[I] = static_cast<uint8_t>(I * 0x11);
    Key[I] = static_cast<uint8_t>(I);
  }
  std::optional<aes::Block> Ct = simulateAes(P, Plain, Key);
  ASSERT_TRUE(Ct.has_value());
  aes::Block Expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                         0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(*Ct, Expected);
}

TEST(AesIntegration, AnalysisOfTheCoreFindsKeyToCiphertextFlows) {
  ElaboratedProgram P = elabDesign(workloads::aesCoreDesign(1));
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAResult R = analyzeInformationFlow(P, CFG);
  // Every ct byte depends on key and plaintext bytes (diffusion is not
  // complete after one round, but ct_0 certainly sees pt_0 and key_0).
  EXPECT_TRUE(R.Graph.hasEdge("pt_0", "ct_0"));
  EXPECT_TRUE(R.Graph.hasEdge("key_0", "ct_0"));
  // And the ct ports never flow back into pt.
  EXPECT_FALSE(R.Graph.hasEdge("ct_0", "pt_0"));
}

TEST(AesIntegration, PolicyAuditOnLeakyCore) {
  ElaboratedProgram P = elabDesign(workloads::leakyCoreDesign());
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions Opts;
  Opts.Improved = true;
  IFAResult R = analyzeInformationFlow(P, CFG, Opts);
  FlowPolicy Policy;
  Policy.Forbidden.push_back({"key", "ready"});
  Policy.Forbidden.push_back({"din", "ready"});
  auto Violations = checkFlowPolicy(R.Graph, Policy);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].From, "key");
  EXPECT_EQ(Violations[0].To, "ready");
}

//===----------------------------------------------------------------------===//
// Simulation/analysis agreement on random designs
//===----------------------------------------------------------------------===//

class RandomDesignPipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDesignPipeline, ElaboratesAnalyzesAndSimulates) {
  std::string Source = workloads::randomDesign(GetParam(), 3, 7, 4);
  ElaboratedProgram P = elabDesign(Source);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAResult R = analyzeInformationFlow(P, CFG);
  EXPECT_GE(R.Graph.numNodes(), P.Signals.size());

  Simulator Sim(P);
  SimStatus Status = Sim.run(1000);
  EXPECT_NE(Status, SimStatus::Stuck) << Sim.stuckReason() << "\n"
                                      << Source;
  // Drive the clock a few times; the design must keep making progress
  // without getting stuck.
  for (int Tick = 0; Tick < 4; ++Tick) {
    Sim.driveSignal(sigId(P, "clk"),
                    Value::scalar(Tick % 2 ? StdLogic::Zero
                                           : StdLogic::One));
    EXPECT_NE(Sim.run(1000), SimStatus::Stuck) << Sim.stuckReason();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesignPipeline,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Analysis soundness vs simulation (differential check)
//===----------------------------------------------------------------------===//

TEST(Soundness, SimulatedFlowImpliesGraphEdge) {
  // A concrete two-path mux: which input reaches q depends on sel. Flip
  // each input and confirm: whenever flipping din changes q in simulation,
  // the graph has din -> q.
  const char *Source = R"(
    entity mux is port(d0 : in std_logic; d1 : in std_logic;
                       sel : in std_logic; q : out std_logic); end mux;
    architecture rtl of mux is
    begin
      p : process
      begin
        if sel = '1' then
          q <= d1;
        else
          q <= d0;
        end if;
        wait on d0, d1, sel;
      end process p;
    end rtl;)";
  ElaboratedProgram P = elabDesign(Source);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAResult R = analyzeInformationFlow(P, CFG);

  // All three inputs may influence q.
  EXPECT_TRUE(R.Graph.hasEdge("d0", "q"));
  EXPECT_TRUE(R.Graph.hasEdge("d1", "q"));
  EXPECT_TRUE(R.Graph.hasEdge("sel", "q"))
      << "implicit flow through the branch";

  // Differential simulation: sel='0', flipping d0 flips q.
  auto RunWith = [&](StdLogic D0, StdLogic D1, StdLogic Sel) {
    Simulator Sim(P);
    Sim.driveSignal(sigId(P, "d0"), Value::scalar(D0));
    Sim.driveSignal(sigId(P, "d1"), Value::scalar(D1));
    Sim.driveSignal(sigId(P, "sel"), Value::scalar(Sel));
    Sim.run();
    return Sim.presentValue(sigId(P, "q")).str();
  };
  EXPECT_EQ(RunWith(StdLogic::Zero, StdLogic::One, StdLogic::Zero), "'0'");
  EXPECT_EQ(RunWith(StdLogic::One, StdLogic::One, StdLogic::Zero), "'1'");
  EXPECT_EQ(RunWith(StdLogic::Zero, StdLogic::One, StdLogic::One), "'1'");
}

TEST(Soundness, NoEdgeMeansNoObservableInfluence) {
  // secret is xored into a dead variable; q depends only on din. The
  // analysis must produce no secret -> q edge, and simulation agrees.
  const char *Source = R"(
    entity core is port(secret : in std_logic; din : in std_logic;
                        q : out std_logic); end core;
    architecture rtl of core is
    begin
      p : process
        variable dead : std_logic;
        variable v : std_logic;
      begin
        dead := secret xor din;
        dead := '0';
        v := din;
        q <= v;
        wait on din, secret;
      end process p;
    end rtl;)";
  ElaboratedProgram P = elabDesign(Source);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAResult R = analyzeInformationFlow(P, CFG);
  EXPECT_FALSE(R.Graph.hasEdge("secret", "q"));

  auto RunWith = [&](StdLogic Secret) {
    Simulator Sim(P);
    Sim.driveSignal(sigId(P, "secret"), Value::scalar(Secret));
    Sim.driveSignal(sigId(P, "din"), Value::scalar(StdLogic::One));
    Sim.run();
    return Sim.presentValue(sigId(P, "q")).str();
  };
  EXPECT_EQ(RunWith(StdLogic::Zero), RunWith(StdLogic::One))
      << "flipping the secret is unobservable at q";
}

} // namespace
