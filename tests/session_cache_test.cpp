//===- tests/session_cache_test.cpp - Content-addressed session cache ----===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"
#include "driver/SessionCache.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace vif;
using namespace vif::driver;

namespace {

const char MuxSource[] = R"(
entity mux is port(d0 : in std_logic; d1 : in std_logic;
                   sel : in std_logic; q : out std_logic); end mux;
architecture rtl of mux is
begin
  p : process
  begin
    if sel = '1' then
      q <= d1;
    else
      q <= d0;
    end if;
    wait on d0, d1, sel;
  end process p;
end rtl;
)";

const char RegSource[] = R"(
entity reg is port(d : in std_logic; q : out std_logic); end reg;
architecture rtl of reg is
begin
  p : process
  begin
    q <= d;
    wait on d;
  end process p;
end rtl;
)";

TEST(HashBuilder, OrderAndLengthSensitive) {
  EXPECT_EQ(HashBuilder().str("ab").str("c").value(),
            HashBuilder().str("ab").str("c").value());
  EXPECT_NE(HashBuilder().str("ab").str("c").value(),
            HashBuilder().str("a").str("bc").value());
  EXPECT_NE(HashBuilder().boolean(true).value(),
            HashBuilder().boolean(false).value());
  EXPECT_EQ(HashBuilder().str("x").hex().size(), 16u);
}

TEST(SessionCacheKey, ContentAddressedNotNameAddressed) {
  SessionOptions Opts;
  EXPECT_EQ(sessionCacheKey(MuxSource, Opts),
            sessionCacheKey(MuxSource, Opts));
  EXPECT_NE(sessionCacheKey(MuxSource, Opts),
            sessionCacheKey(RegSource, Opts));
}

// Every analysis knob must flip the key: a cache that conflates option
// sets serves artifacts computed under the wrong analysis.
TEST(SessionCacheKey, EveryOptionParticipates) {
  SessionOptions Base;
  uint64_t BaseKey = sessionCacheKey(MuxSource, Base);

  std::vector<SessionOptions> Variants(7, Base);
  Variants[0].Statements = true;
  Variants[1].Ifa.Improved = true;
  Variants[2].Ifa.ProgramEndOutgoing = true;
  Variants[3].Ifa.ReferenceClosure = true;
  Variants[4].Ifa.RD.UseMustActiveKill = false;
  Variants[5].Ifa.RD.EnumerateCrossFlowTuples = true;
  Variants[6].Ifa.RD.ReferenceSolver = true;

  std::vector<uint64_t> Keys{BaseKey};
  for (const SessionOptions &V : Variants)
    Keys.push_back(sessionCacheKey(MuxSource, V));
  SessionOptions HL;
  HL.Ifa.RD.HsiehLevitanCrossFlow = true;
  Keys.push_back(sessionCacheKey(MuxSource, HL));

  for (size_t A = 0; A < Keys.size(); ++A)
    for (size_t B = A + 1; B < Keys.size(); ++B)
      EXPECT_NE(Keys[A], Keys[B]) << "variants " << A << " and " << B;

  // Solver parallelism is not an artifact-changing option: the same
  // session must be shared (and the cache hit) across --jobs settings.
  SessionOptions Jobs4 = Base;
  Jobs4.Ifa.RD.Jobs = 4;
  EXPECT_EQ(BaseKey, sessionCacheKey(MuxSource, Jobs4));
}

TEST(SessionCache, HitSharesTheSessionAcrossNames) {
  SessionCache Cache(4);
  SessionOptions Opts;

  const AnalysisSession *First;
  {
    SessionCache::Ref R = Cache.acquire("a.vhd", MuxSource, Opts);
    EXPECT_FALSE(R.hit());
    First = &R.session();
    ASSERT_NE(R.session().ifa(), nullptr);
  }
  {
    // Same content under a different name: same session, same artifacts.
    SessionCache::Ref R = Cache.acquire("b.vhd", MuxSource, Opts);
    EXPECT_TRUE(R.hit());
    EXPECT_EQ(&R.session(), First);
    EXPECT_EQ(R.session().ifa(), R.session().ifa());
    EXPECT_EQ(R.session().name(), "a.vhd") << "keeps the first name";
  }
  SessionCache::Stats St = Cache.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(SessionCache, ArtifactsPersistAcrossAcquires) {
  SessionCache Cache(4);
  SessionOptions Opts;
  const IFAResult *Ifa;
  {
    SessionCache::Ref R = Cache.acquire("mux", MuxSource, Opts);
    Ifa = R.session().ifa();
    ASSERT_NE(Ifa, nullptr);
  }
  {
    SessionCache::Ref R = Cache.acquire("mux", MuxSource, Opts);
    ASSERT_TRUE(R.hit());
    // The expensive artifact is the very same object — nothing recomputed.
    EXPECT_EQ(R.session().ifa(), Ifa);
  }
}

TEST(SessionCache, OptionSensitivityKeepsEntriesApart) {
  SessionCache Cache(4);
  SessionOptions Plain, Improved;
  Improved.Ifa.Improved = true;

  SessionCache::Ref A = Cache.acquire("mux", MuxSource, Plain);
  EXPECT_FALSE(A.hit());
  SessionCache::Ref B = Cache.acquire("mux", MuxSource, Improved);
  EXPECT_FALSE(B.hit());
  EXPECT_NE(&A.session(), &B.session());
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(SessionCache, LruEvictionDropsTheColdestEntry) {
  SessionCache Cache(2);
  SessionOptions Opts;
  std::string A = std::string(MuxSource) + "-- a\n";
  std::string B = std::string(MuxSource) + "-- b\n";
  std::string C = std::string(MuxSource) + "-- c\n";

  Cache.acquire("a", A, Opts);
  Cache.acquire("b", B, Opts);
  // Touch a so b becomes the least recently used ...
  EXPECT_TRUE(Cache.acquire("a", A, Opts).hit());
  // ... then force an eviction.
  Cache.acquire("c", C, Opts);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);

  EXPECT_TRUE(Cache.acquire("a", A, Opts).hit()) << "a was kept warm";
  EXPECT_FALSE(Cache.acquire("b", B, Opts).hit()) << "b was evicted";
}

TEST(SessionCache, EvictedButHeldSessionStaysAlive) {
  SessionCache Cache(1);
  SessionOptions Opts;
  SessionCache::Ref Held = Cache.acquire("mux", MuxSource, Opts);
  ASSERT_NE(Held.session().program(), nullptr);
  // Evict the held entry; the Ref keeps it alive and usable.
  Cache.acquire("reg", RegSource, Opts);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_NE(Held.session().ifa(), nullptr);
}

TEST(SessionCache, ClearForgetsEntriesButKeepsStats) {
  SessionCache Cache(4);
  SessionOptions Opts;
  Cache.acquire("mux", MuxSource, Opts);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_FALSE(Cache.acquire("mux", MuxSource, Opts).hit());
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(SessionCache, RefMoveAssignmentReleasesTheOldEntry) {
  // Rebinding a Ref must release the previously held entry (entry lock
  // dropped, bytes reported) before taking over the new one — a Ref
  // that leaked its old lock would deadlock the next acquire of that
  // entry from another thread.
  SessionCache Cache(4);
  SessionOptions Opts;
  SessionCache::Ref R = Cache.acquire("mux", MuxSource, Opts);
  ASSERT_NE(R.session().ifa(), nullptr);
  const AnalysisSession *Mux = &R.session();

  R = Cache.acquire("reg", RegSource, Opts);
  EXPECT_NE(&R.session(), Mux);
  EXPECT_EQ(R.session().name(), "reg");

  // The mux entry's lock must be free again: re-acquiring it from
  // another thread completes (would deadlock if move-assignment leaked
  // the old lock).
  std::thread T([&Cache, &Opts, Mux] {
    SessionCache::Ref Again = Cache.acquire("mux", MuxSource, Opts);
    EXPECT_TRUE(Again.hit());
    EXPECT_EQ(&Again.session(), Mux);
  });
  T.join();

  // Releasing the mux Ref reported its measured bytes to the cache.
  EXPECT_GT(Cache.bytes(), 0u);

  // Self-move must not lose the entry (clang warns on the direct
  // spelling, so go through a pointer).
  SessionCache::Ref &Alias = R;
  R = std::move(Alias);
  EXPECT_EQ(R.session().name(), "reg");
}

TEST(SessionCache, ByteBudgetEvictsByMeasuredBytes) {
  // A fleet of generated designs through a byte-budgeted cache: total
  // measured bytes must stay under the budget once Refs are released,
  // with the cold entries evicted (not merely counted).
  SessionOptions Opts;

  // Size one released session to pick a budget that holds only a few.
  size_t OneSession;
  {
    SessionCache Probe(2);
    {
      SessionCache::Ref R = Probe.acquire("probe", MuxSource, Opts);
      ASSERT_NE(R.session().ifa(), nullptr);
      OneSession = R.session().memoryBytes();
    }
    ASSERT_GT(OneSession, 0u);
    EXPECT_EQ(Probe.bytes(), OneSession);
  }

  size_t Budget = 3 * OneSession + OneSession / 2;
  SessionCache Cache(64, Budget); // entry capacity is not the binding limit
  EXPECT_EQ(Cache.bytesBudget(), Budget);
  for (int I = 0; I < 12; ++I) {
    std::string Source = std::string(MuxSource) + "-- v" + std::to_string(I) +
                         "\n";
    SessionCache::Ref R = Cache.acquire("v" + std::to_string(I), Source, Opts);
    ASSERT_NE(R.session().ifa(), nullptr);
    EXPECT_FALSE(R.hit());
  }
  EXPECT_LE(Cache.bytes(), Budget);
  EXPECT_GE(Cache.size(), 1u);
  EXPECT_LT(Cache.size(), 12u);
  EXPECT_GT(Cache.stats().Evictions, 0u);
  EXPECT_EQ(Cache.stats().Misses, 12u);

  // The survivors are the most recently used; the warmest entry is
  // still a hit.
  EXPECT_TRUE(Cache.acquire("v11", std::string(MuxSource) + "-- v11\n", Opts)
                  .hit());
}

TEST(SessionCache, ByteBudgetKeepsOneOversizedEntry) {
  // A single design larger than the whole budget still caches: the
  // floor is one entry, so repeat requests stay warm instead of
  // thrashing.
  SessionCache Cache(8, /*BytesBudget=*/1);
  SessionOptions Opts;
  { Cache.acquire("mux", MuxSource, Opts); }
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_GT(Cache.bytes(), 1u);
  EXPECT_TRUE(Cache.acquire("mux", MuxSource, Opts).hit());
}

TEST(SessionCache, MemoryBytesGrowsWithArtifacts) {
  // The deep measure must actually see the analysis artifacts: a
  // session that ran the IFA pipeline weighs more than one that only
  // parsed, which weighs more than the bare source.
  AnalysisSession Parsed = AnalysisSession::fromSource("mux", MuxSource);
  size_t AfterParse = Parsed.memoryBytes();
  EXPECT_GT(AfterParse, sizeof(MuxSource));
  ASSERT_NE(Parsed.ifa(), nullptr);
  EXPECT_GT(Parsed.memoryBytes(), AfterParse)
      << "IFA artifacts must be counted";
}

TEST(Batch, CacheDeduplicatesIdenticalInputs) {
  SessionCache Cache(8);
  std::vector<BatchInput> Inputs = {
      {"one", std::string(MuxSource)},
      {"two", std::string(MuxSource)},
      {"three", std::string(RegSource)},
  };
  BatchOptions Opts;
  Opts.Mode = BatchMode::Flows;
  Opts.Cache = &Cache;
  Opts.Jobs = 1; // deterministic hit attribution
  BatchResult R = runBatch(Inputs, Opts);

  ASSERT_EQ(R.Designs.size(), 3u);
  EXPECT_FALSE(R.Designs[0].CacheHit);
  EXPECT_TRUE(R.Designs[1].CacheHit);
  EXPECT_EQ(R.Designs[1].Name, "two") << "result keeps the requested name";
  EXPECT_FALSE(R.Designs[2].CacheHit);
  EXPECT_EQ(R.Designs[0].NumEdges, R.Designs[1].NumEdges);
  EXPECT_EQ(Cache.stats().Hits, 1u);
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(Batch, CacheSurvivesConcurrentDuplicates) {
  SessionCache Cache(8);
  std::vector<BatchInput> Inputs;
  for (int I = 0; I < 16; ++I)
    Inputs.push_back({"in" + std::to_string(I), std::string(MuxSource)});
  BatchOptions Opts;
  Opts.Mode = BatchMode::Flows;
  Opts.Cache = &Cache;
  Opts.Jobs = 4;
  BatchResult R = runBatch(Inputs, Opts);

  EXPECT_EQ(R.NumOk, 16u);
  for (const DesignResult &D : R.Designs)
    EXPECT_EQ(D.NumEdges, 3u);
  SessionCache::Stats St = Cache.stats();
  EXPECT_EQ(St.Hits + St.Misses, 16u);
  EXPECT_GE(St.Hits, 1u);
  EXPECT_EQ(Cache.size(), 1u) << "identical content collapses to one entry";
}

TEST(Batch, UnreadableInputBypassesTheCache) {
  SessionCache Cache(8);
  std::vector<BatchInput> Inputs = {
      {"/nonexistent/definitely-missing.vhd", std::nullopt}};
  BatchOptions Opts;
  Opts.Cache = &Cache;
  BatchResult R = runBatch(Inputs, Opts);
  ASSERT_EQ(R.Designs.size(), 1u);
  EXPECT_FALSE(R.Designs[0].Ok);
  EXPECT_TRUE(R.Designs[0].Unreadable);
  EXPECT_FALSE(R.Designs[0].CacheHit);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().Misses, 0u);
}

} // namespace
