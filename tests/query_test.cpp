//===- tests/query_test.cpp - FlowQueryEngine vs DFS/BFS oracles ----------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// The query engine answers reaches/reachableFrom/whatReaches from a packed
// bit-matrix closure and extracts witness paths by BFS over a CSR copy of
// the adjacency. These tests run it differentially against first-principles
// walks of the same graph: every ordered node pair's reaches() against
// Digraph::reachable (per-source DFS), every positive witness validated
// edge by edge and pinned to the exact BFS distance, and the forward/
// backward sets against per-node DFS sweeps — over the paper's figure
// programs and the synthetic workload families, plain and improved.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "parse/Parser.h"
#include "query/FlowQueryEngine.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace vif;
using query::FlowQueryEngine;
using query::NodeMark;
using query::WitnessStep;

namespace {

ElaboratedProgram elaborate(const std::string &Source, bool IsDesign) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    if (!Diags.hasErrors())
      P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    if (!Diags.hasErrors())
      P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

/// Exact BFS distance (in edges, length >= 1) from \p Src to \p Sink, or
/// SIZE_MAX when unreachable. Src == Sink asks for the shortest cycle.
size_t bfsDistance(const Digraph &G, Digraph::NodeId Src,
                   Digraph::NodeId Sink) {
  std::vector<size_t> Dist(G.numNodes(), SIZE_MAX);
  std::vector<Digraph::NodeId> Queue;
  for (Digraph::NodeId S : G.successors(Src)) {
    if (S == Sink)
      return 1;
    if (Dist[S] == SIZE_MAX) {
      Dist[S] = 1;
      Queue.push_back(S);
    }
  }
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    Digraph::NodeId Cur = Queue[Head];
    for (Digraph::NodeId S : G.successors(Cur)) {
      if (S == Sink)
        return Dist[Cur] + 1;
      if (Dist[S] == SIZE_MAX) {
        Dist[S] = Dist[Cur] + 1;
        Queue.push_back(S);
      }
    }
  }
  return SIZE_MAX;
}

/// Checks every engine answer over \p G against fresh DFS/BFS walks.
void expectEngineMatchesOracle(const Digraph &G, const char *What) {
  FlowQueryEngine Q(G);
  EXPECT_EQ(Q.numNodes(), G.numNodes()) << What;
  EXPECT_EQ(Q.numEdges(), G.numEdges()) << What;

  size_t N = G.numNodes();
  const std::vector<std::string_view> &Names = G.nodes();
  for (Digraph::NodeId A = 0; A < N; ++A) {
    for (Digraph::NodeId B = 0; B < N; ++B) {
      SCOPED_TRACE(std::string(What) + ": " + std::string(Names[A]) +
                   " -> " + std::string(Names[B]));
      bool Fast = Q.reaches(Names[A], Names[B]);
      EXPECT_EQ(Fast, G.reachable(Names[A], Names[B]));
      std::optional<std::vector<WitnessStep>> W =
          Q.witnessPath(Names[A], Names[B]);
      ASSERT_EQ(W.has_value(), Fast);
      if (!W)
        continue;
      // Endpoints, then every hop an actual edge, then exactly shortest.
      ASSERT_GE(W->size(), 2u);
      EXPECT_EQ(W->front().Node, Names[A]);
      EXPECT_EQ(W->back().Node, Names[B]);
      for (size_t I = 0; I + 1 < W->size(); ++I)
        EXPECT_TRUE(G.hasEdge((*W)[I].Node, (*W)[I + 1].Node))
            << (*W)[I].Node << " -> " << (*W)[I + 1].Node;
      EXPECT_EQ(W->size(), bfsDistance(G, A, B) + 1);
      // Marks and bare resource names are canonical per step.
      for (const WitnessStep &Step : *W)
        EXPECT_TRUE(query::makeWitnessStep(Step.Node) == Step) << Step.Node;
    }
  }

  // Forward and backward sets against per-node DFS sweeps.
  for (Digraph::NodeId S = 0; S < N; ++S) {
    std::vector<std::string> Fwd, Bwd;
    for (Digraph::NodeId T = 0; T < N; ++T) {
      if (G.reachable(Names[S], Names[T]))
        Fwd.push_back(std::string(Names[T]));
      if (G.reachable(Names[T], Names[S]))
        Bwd.push_back(std::string(Names[T]));
    }
    std::sort(Fwd.begin(), Fwd.end());
    std::sort(Bwd.begin(), Bwd.end());
    EXPECT_EQ(Q.reachableFrom(Names[S]), Fwd) << What << ": " << Names[S];
    EXPECT_EQ(Q.whatReaches(Names[S]), Bwd) << What << ": " << Names[S];
  }
}

/// Analyzes \p Source and runs the full differential battery on the
/// resulting flow graph, plain and improved.
void expectQueriesAgree(const std::string &Source, bool IsDesign,
                        const char *What) {
  ElaboratedProgram P = elaborate(Source, IsDesign);
  ProgramCFG CFG = ProgramCFG::build(P);
  for (bool Improved : {false, true}) {
    IFAOptions Opts;
    Opts.Improved = Improved;
    IFAResult R = analyzeInformationFlow(P, CFG, Opts);
    std::string Tag = std::string(What) + (Improved ? " (improved)" : "");
    expectEngineMatchesOracle(R.Graph, Tag.c_str());
  }
}

//===----------------------------------------------------------------------===//
// Paper figure programs
//===----------------------------------------------------------------------===//

TEST(QueryDifferential, Fig3Programs) {
  expectQueriesAgree("c := b; b := a;", false, "fig3(a)");
  expectQueriesAgree("b := a; c := b;", false, "fig3(b)");
}

TEST(QueryDifferential, Fig4EndOutgoing) {
  ElaboratedProgram P = elaborate("b := a; c := b;", false);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions EndOut;
  EndOut.ProgramEndOutgoing = true;
  IFAResult R = analyzeInformationFlow(P, CFG, EndOut);
  expectEngineMatchesOracle(R.Graph, "fig4(b)");
}

TEST(QueryDifferential, Fig5ShiftRows) {
  expectQueriesAgree(workloads::shiftRowsStatements(), false, "fig5");
  expectQueriesAgree(workloads::shiftRowsDesign(), true, "fig5-design");
}

//===----------------------------------------------------------------------===//
// Synthetic families
//===----------------------------------------------------------------------===//

TEST(QueryDifferential, ChainFamily) {
  for (unsigned N : {1u, 2u, 17u, 64u})
    expectQueriesAgree(workloads::chainStatements(N), false, "chain");
}

TEST(QueryDifferential, LadderFamily) {
  expectQueriesAgree(workloads::tempReuseLadder(6, 4), false, "ladder");
}

TEST(QueryDifferential, PipelineAndMeshDesigns) {
  expectQueriesAgree(workloads::pipelineDesign(5), true, "pipeline");
  for (unsigned Procs : {2u, 3u})
    expectQueriesAgree(workloads::syncMeshDesign(Procs, 3, 4), true, "mesh");
}

TEST(QueryDifferential, RandomDesigns) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    expectQueriesAgree(workloads::randomDesign(Seed, 3, 6, 3), true,
                       "randomDesign");
}

//===----------------------------------------------------------------------===//
// Engine unit behavior on hand-built graphs
//===----------------------------------------------------------------------===//

TEST(FlowQueryEngine, EmptyGraph) {
  Digraph G;
  FlowQueryEngine Q(G);
  EXPECT_EQ(Q.numNodes(), 0u);
  EXPECT_EQ(Q.numEdges(), 0u);
  EXPECT_FALSE(Q.reaches("a", "b"));
  EXPECT_FALSE(Q.witnessPath("a", "b").has_value());
  EXPECT_TRUE(Q.reachableFrom("a").empty());
  EXPECT_TRUE(Q.whatReaches("a").empty());
}

TEST(FlowQueryEngine, UnknownNamesAnswerNegatively) {
  Digraph G;
  G.addEdge(G.addNode("a"), G.addNode("b"));
  FlowQueryEngine Q(G);
  EXPECT_TRUE(Q.knows("a"));
  EXPECT_FALSE(Q.knows("zz"));
  EXPECT_FALSE(Q.reaches("zz", "b"));
  EXPECT_FALSE(Q.reaches("a", "zz"));
  EXPECT_FALSE(Q.witnessPath("zz", "b").has_value());
  EXPECT_TRUE(Q.reachableFrom("zz").empty());
  EXPECT_TRUE(Q.whatReaches("zz").empty());
}

TEST(FlowQueryEngine, SelfLoopAndCycleWitnesses) {
  // reaches() requires a path of length >= 1; a node on no cycle does not
  // reach itself, a self-loop yields the two-step witness [c, c], and
  // Src == Sink on a longer cycle yields the full loop.
  Digraph G;
  Digraph::NodeId A = G.addNode("a");
  Digraph::NodeId B = G.addNode("b");
  Digraph::NodeId C = G.addNode("c");
  G.addEdge(A, B);
  G.addEdge(B, A);
  G.addEdge(C, C);
  FlowQueryEngine Q(G);

  EXPECT_TRUE(Q.reaches("a", "a"));
  auto Loop = Q.witnessPath("a", "a");
  ASSERT_TRUE(Loop.has_value());
  ASSERT_EQ(Loop->size(), 3u);
  EXPECT_EQ((*Loop)[0].Node, "a");
  EXPECT_EQ((*Loop)[1].Node, "b");
  EXPECT_EQ((*Loop)[2].Node, "a");

  auto Self = Q.witnessPath("c", "c");
  ASSERT_TRUE(Self.has_value());
  ASSERT_EQ(Self->size(), 2u);
  EXPECT_EQ((*Self)[0].Node, "c");
  EXPECT_EQ((*Self)[1].Node, "c");

  // c is on no path to or from the a/b cycle.
  EXPECT_FALSE(Q.reaches("a", "c"));
  EXPECT_FALSE(Q.reaches("c", "a"));
}

TEST(FlowQueryEngine, DeterministicTieBreak) {
  // Two equal-length paths a -> {m, z} -> d: BFS must pick the smaller
  // node id, which insertion order makes "m", on every call and on a
  // freshly built engine.
  Digraph G;
  Digraph::NodeId A = G.addNode("a");
  Digraph::NodeId M = G.addNode("m");
  Digraph::NodeId Z = G.addNode("z");
  Digraph::NodeId D = G.addNode("d");
  G.addEdge(A, Z);
  G.addEdge(A, M);
  G.addEdge(Z, D);
  G.addEdge(M, D);
  FlowQueryEngine Q(G);
  auto First = Q.witnessPath("a", "d");
  ASSERT_TRUE(First.has_value());
  ASSERT_EQ(First->size(), 3u);
  EXPECT_EQ((*First)[1].Node, "m");
  EXPECT_TRUE(Q.witnessPath("a", "d") == First);
  FlowQueryEngine Fresh(G);
  EXPECT_TRUE(Fresh.witnessPath("a", "d") == First);
}

TEST(FlowQueryEngine, MarkResolution) {
  WitnessStep Plain = query::makeWitnessStep("x");
  EXPECT_EQ(Plain.Resource, "x");
  EXPECT_EQ(Plain.Mark, NodeMark::Plain);

  WitnessStep In = query::makeWitnessStep("x◦");
  EXPECT_EQ(In.Node, "x◦");
  EXPECT_EQ(In.Resource, "x");
  EXPECT_EQ(In.Mark, NodeMark::Incoming);

  WitnessStep Out = query::makeWitnessStep("x•");
  EXPECT_EQ(Out.Resource, "x");
  EXPECT_EQ(Out.Mark, NodeMark::Outgoing);

  EXPECT_STREQ(query::nodeMarkName(NodeMark::Plain), "plain");
  EXPECT_STREQ(query::nodeMarkName(NodeMark::Incoming), "incoming");
  EXPECT_STREQ(query::nodeMarkName(NodeMark::Outgoing), "outgoing");
}

TEST(FlowQueryEngine, ImprovedGraphResolvesMarks) {
  // The improved analysis introduces ◦/• interface nodes; a witness through
  // them must carry resolved marks and bare resource names.
  ElaboratedProgram P = elaborate(workloads::pipelineDesign(3), true);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions Improved;
  Improved.Improved = true;
  IFAResult R = analyzeInformationFlow(P, CFG, Improved);
  FlowQueryEngine Q(R.Graph);
  bool SawMark = false;
  for (std::string_view Name : R.Graph.nodes()) {
    WitnessStep Step = query::makeWitnessStep(Name);
    if (Step.Mark != NodeMark::Plain) {
      SawMark = true;
      EXPECT_LT(Step.Resource.size(), Step.Node.size());
    }
  }
  EXPECT_TRUE(SawMark) << "improved pipeline graph has no interface nodes";
}

TEST(FlowQueryEngine, MemoryBytesAccountsForIndex) {
  Digraph Small;
  Small.addEdge(Small.addNode("a"), Small.addNode("b"));
  FlowQueryEngine QSmall(Small);
  EXPECT_GT(QSmall.memoryBytes(), 0u);

  DiagnosticEngine Diags;
  StatementProgram Prog =
      parseStatementProgram(workloads::chainStatements(128), Diags);
  ASSERT_FALSE(Diags.hasErrors());
  std::optional<ElaboratedProgram> P =
      elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  ASSERT_TRUE(P.has_value());
  ProgramCFG CFG = ProgramCFG::build(*P);
  IFAResult R = analyzeInformationFlow(*P, CFG);
  FlowQueryEngine QBig(R.Graph);
  EXPECT_GT(QBig.memoryBytes(), QSmall.memoryBytes());
}

} // namespace
