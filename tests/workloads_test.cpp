//===- tests/workloads_test.cpp - Figure 5 & workload generators ----------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "parse/Parser.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

struct Analyzed {
  ElaboratedProgram Program;
  ProgramCFG CFG;
};

Analyzed elaborate(const std::string &Source, bool IsDesign) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  EXPECT_TRUE(P.has_value()) << Diags.str();
  Analyzed A{std::move(*P), {}};
  A.CFG = ProgramCFG::build(A.Program);
  return A;
}

std::string stripMarks(std::string_view Name) {
  for (std::string_view Suffix : {"◦", "•"})
    if (Name.size() >= Suffix.size() &&
        Name.substr(Name.size() - Suffix.size()) == Suffix)
      return std::string(Name.substr(0, Name.size() - Suffix.size()));
  return std::string(Name);
}

bool isStateNode(std::string_view Name) {
  return Name.rfind("a_", 0) == 0;
}

//===----------------------------------------------------------------------===//
// Figure 5: ShiftRows
//===----------------------------------------------------------------------===//

TEST(Fig5, OurAnalysisRecoversExactRotations) {
  Analyzed A = elaborate(workloads::shiftRowsStatements(), false);
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG, Opts);
  Digraph State =
      R.Graph.mergeNodes(stripMarks).inducedSubgraph(isStateNode);

  EXPECT_EQ(State.numNodes(), 12u) << "a_1_0 .. a_3_3";
  // Row r is rotated left by r: a_r_((c+r)%4) -> a_r_c, and nothing else.
  unsigned Expected = 0;
  for (int Row = 1; Row <= 3; ++Row)
    for (int Col = 0; Col < 4; ++Col) {
      std::string From = "a_" + std::to_string(Row) + "_" +
                         std::to_string((Col + Row) % 4);
      std::string To =
          "a_" + std::to_string(Row) + "_" + std::to_string(Col);
      EXPECT_TRUE(State.hasEdge(From, To)) << From << " -> " << To;
      ++Expected;
    }
  EXPECT_EQ(State.numEdges(), Expected)
      << "exactly the 12 rotation edges of Figure 5(b)";
}

TEST(Fig5, KemmererSmearssAcrossRows) {
  Analyzed A = elaborate(workloads::shiftRowsStatements(), false);
  KemmererResult K = analyzeKemmerer(A.Program, A.CFG);
  Digraph State = K.Graph.inducedSubgraph(isStateNode);

  EXPECT_EQ(State.numNodes(), 12u);
  // The shared temporaries chain all rows into one strongly connected
  // component: a_r_c feeds t_{c-r}, every a_*_c is fed by t_c, and the
  // temps reach each other through the state bytes. The transitive closure
  // is the complete graph on the 12 state nodes, self-loops included.
  EXPECT_EQ(State.numEdges(), 144u)
      << "Figure 5(a): dense false-positive mess";
  EXPECT_TRUE(State.hasEdge("a_1_1", "a_2_0"));
  EXPECT_TRUE(State.hasEdge("a_3_3", "a_1_0"));
  EXPECT_TRUE(State.hasEdge("a_1_0", "a_1_0")) << "even self-flows";
}

TEST(Fig5, PrecisionGapIs132Edges) {
  Analyzed A = elaborate(workloads::shiftRowsStatements(), false);
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG, Opts);
  KemmererResult K = analyzeKemmerer(A.Program, A.CFG);
  Digraph Ours =
      R.Graph.mergeNodes(stripMarks).inducedSubgraph(isStateNode);
  Digraph Base = K.Graph.inducedSubgraph(isStateNode);
  EXPECT_EQ(Base.edgesNotIn(Ours).size(), 132u)
      << "132 of Kemmerer's 144 edges are false positives";
  EXPECT_TRUE(Ours.edgesNotIn(Base).empty())
      << "our analysis reports no edge Kemmerer misses";
}

//===----------------------------------------------------------------------===//
// Other AES components (Section 6's "several programs")
//===----------------------------------------------------------------------===//

TEST(AesComponents, AddRoundKeyIsDiagonal) {
  Analyzed A = elaborate(workloads::addRoundKeyStatements(4), false);
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG);
  for (int I = 0; I < 4; ++I) {
    std::string S = "s_" + std::to_string(I);
    std::string K = "k_" + std::to_string(I);
    EXPECT_TRUE(R.Graph.hasEdge(K, S));
    EXPECT_TRUE(R.Graph.hasEdge(S, S)) << "s_i := s_i xor k_i";
    for (int J = 0; J < 4; ++J) {
      if (J != I) {
        EXPECT_FALSE(R.Graph.hasEdge(K, "s_" + std::to_string(J)))
            << "keys do not cross bytes";
      }
    }
  }
}

TEST(AesComponents, SubBytesKeepsBytesSeparate) {
  Analyzed A = elaborate(workloads::subBytesStatements(3), false);
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG);
  KemmererResult K = analyzeKemmerer(A.Program, A.CFG);
  // Each byte flows only to itself (through the shared temporary t).
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 3; ++J) {
      std::string From = "s_" + std::to_string(I);
      std::string To = "s_" + std::to_string(J);
      if (I == J)
        EXPECT_TRUE(R.Graph.hasEdge(From, To));
      else
        EXPECT_FALSE(R.Graph.hasEdge(From, To)) << From << "->" << To;
    }
  // Kemmerer conflates them through t.
  EXPECT_TRUE(K.Graph.hasEdge("s_0", "s_2"));
}

TEST(AesComponents, MixColumnsMixesWithinColumnOnly) {
  Analyzed A = elaborate(workloads::mixColumnsStatements(), false);
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG);
  // Within a column everything mixes; across columns nothing flows.
  for (int C = 0; C < 4; ++C)
    for (int R1 = 0; R1 < 4; ++R1)
      for (int R2 = 0; R2 < 4; ++R2)
        EXPECT_TRUE(R.Graph.hasEdge(
            "s_" + std::to_string(R1) + "_" + std::to_string(C),
            "s_" + std::to_string(R2) + "_" + std::to_string(C)));
  EXPECT_FALSE(R.Graph.hasEdge("s_0_0", "s_0_1"));
  EXPECT_FALSE(R.Graph.hasEdge("s_3_2", "s_1_3"));
}

TEST(AesComponents, ShiftRowsDesignParsesAndAnalyzes) {
  Analyzed A = elaborate(workloads::shiftRowsDesign(), true);
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG);
  // First-iteration flow: a_1_1 -> a_1_0 via t_0.
  EXPECT_TRUE(R.Graph.hasEdge("a_1_1", "a_1_0"));
  // The looped process composes rotations across delta cycles, but never
  // across rows.
  EXPECT_FALSE(R.Graph.hasEdge("a_1_1", "a_2_0"));
  EXPECT_FALSE(R.Graph.hasEdge("a_2_3", "a_3_1"));
}

//===----------------------------------------------------------------------===//
// Synthetic generators
//===----------------------------------------------------------------------===//

TEST(Synthetic, ChainPrecisionGap) {
  Analyzed A = elaborate(workloads::chainStatements(10), false);
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG);
  KemmererResult K = analyzeKemmerer(A.Program, A.CFG);
  // Both closures agree here (nothing is overwritten): n(n+1)/2 edges.
  EXPECT_EQ(R.Graph.numEdges(), 55u);
  EXPECT_TRUE(R.Graph.sameFlows(K.Graph));
}

TEST(Synthetic, LadderKeepsGroupsApart) {
  Analyzed A = elaborate(workloads::tempReuseLadder(4, 3), false);
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG);
  KemmererResult K = analyzeKemmerer(A.Program, A.CFG);
  // No cross-group edge in ours; Kemmerer has them.
  EXPECT_FALSE(R.Graph.hasEdge("a_0_0", "a_1_0"));
  EXPECT_TRUE(K.Graph.hasEdge("a_0_1", "a_1_0"));
  EXPECT_GT(K.Graph.edgesNotIn(R.Graph).size(), 0u);
}

TEST(Synthetic, PipelineDesignElaborates) {
  Analyzed A = elaborate(workloads::pipelineDesign(5), true);
  EXPECT_EQ(A.Program.Processes.size(), 5u);
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG);
  EXPECT_TRUE(R.Graph.hasEdge("s_0", "s_1"));
  EXPECT_TRUE(R.Graph.hasEdge("s_4", "s_5"));
  EXPECT_TRUE(R.Graph.hasEdge("s_0", "s_5"))
      << "the pipeline genuinely forwards values end to end";
}

TEST(Synthetic, MeshAndRandomDesignsElaborate) {
  for (unsigned Procs : {1u, 2u, 4u})
    elaborate(workloads::syncMeshDesign(Procs, 2, 3), true);
  for (uint64_t Seed : {1ull, 7ull, 42ull})
    elaborate(workloads::randomDesign(Seed, 3, 8, 4), true);
  for (uint64_t Seed : {1ull, 9ull})
    elaborate(workloads::randomStatements(Seed, 20, 5), false);
}

TEST(Synthetic, AesCoreDesignElaborates) {
  Analyzed A = elaborate(workloads::aesCoreDesign(1), true);
  EXPECT_EQ(A.Program.Processes.size(), 1u);
  EXPECT_EQ(A.Program.Signals.size(), 49u) << "16 pt + 16 key + 16 ct + go";
  EXPECT_GT(A.Program.Variables.size(), 180u)
      << "44 key-schedule words x 4 bytes + state + temps";
}

TEST(Synthetic, LeakyCoreHasTheAdvertisedLeak) {
  Analyzed A = elaborate(workloads::leakyCoreDesign(), true);
  IFAResult R = analyzeInformationFlow(A.Program, A.CFG);
  EXPECT_TRUE(R.Graph.hasEdge("key", "ready")) << "the covert channel";
  EXPECT_TRUE(R.Graph.hasEdge("key", "dout")) << "the legitimate flow";
  EXPECT_FALSE(R.Graph.hasEdge("din", "ready"));
}

} // namespace
