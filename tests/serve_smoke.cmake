# Serve-mode smoke test: drive the built `vifc serve` binary end-to-end
# over stdin/stdout. Invoked by ctest as
#   cmake -DVIFC=<path> -DINPUT=<smoke.vhd> -P serve_smoke.cmake
# Asserts the line-delimited vifc.v1 protocol: one response per request,
# a cache hit on the repeated request, an error object for a malformed
# line, stats counters, and that shutdown stops the loop before later
# requests are read.

set(reqs "${CMAKE_CURRENT_BINARY_DIR}/serve_smoke_requests.jsonl")
file(WRITE "${reqs}"
"{\"schema\":\"vifc.v1\",\"id\":1,\"command\":\"flows\",\"path\":\"${INPUT}\"}
{\"schema\":\"vifc.v1\",\"id\":2,\"command\":\"flows\",\"path\":\"${INPUT}\"}
this is not json
{\"schema\":\"vifc.v1\",\"id\":3,\"command\":\"stats\"}
{\"schema\":\"vifc.v1\",\"id\":4,\"command\":\"shutdown\"}
{\"schema\":\"vifc.v1\",\"id\":99,\"command\":\"ping\"}
")

execute_process(COMMAND ${VIFC} serve
                INPUT_FILE "${reqs}"
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vifc serve failed (rc=${rc}):\n${out}\n${err}")
endif()

# One response line per handled request (the post-shutdown ping is never
# read): 5 lines.
string(REGEX MATCHALL "\n" newlines "${out}")
list(LENGTH newlines n)
if(NOT n EQUAL 5)
  message(FATAL_ERROR "expected 5 response lines, got ${n}:\n${out}")
endif()

foreach(want
    [["schema":"vifc.v1"]]
    [["id":1,"command":"flows"]]
    [["cacheHit":false]]
    [["cacheHit":true]]
    [[sel]]
    [["code":"parse-error"]]
    [["id":3,"command":"stats","status":"ok"]]
    [["hits":1]]
    [["id":4,"command":"shutdown","status":"ok"]])
  if(NOT out MATCHES "${want}")
    message(FATAL_ERROR "serve output lacks ${want}:\n${out}")
  endif()
endforeach()

if(out MATCHES [["id":99]])
  message(FATAL_ERROR "serve answered a request after shutdown:\n${out}")
endif()

message(STATUS "vifc serve smoke test passed")
