//===- tests/parser_test.cpp - VHDL1 parser -------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "parse/Lexer.h"
#include "parse/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

StmtPtr stmts(const std::string &Source) {
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return S;
}

ExprPtr expr(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  ExprPtr E = P.parseExpression();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return E;
}

TEST(Parser, NullStatement) {
  StmtPtr S = stmts("null;");
  ASSERT_TRUE(S);
  EXPECT_TRUE(isa<NullStmt>(S.get()));
}

TEST(Parser, VariableAssignment) {
  StmtPtr S = stmts("x := y;");
  auto *A = dyn_cast<VarAssignStmt>(S.get());
  ASSERT_TRUE(A);
  EXPECT_EQ(A->targetName(), "x");
  EXPECT_FALSE(A->hasSlice());
  EXPECT_TRUE(isa<NameExpr>(&A->value()));
}

TEST(Parser, SignalAssignment) {
  StmtPtr S = stmts("s <= '1';");
  auto *A = dyn_cast<SignalAssignStmt>(S.get());
  ASSERT_TRUE(A);
  EXPECT_EQ(A->targetName(), "s");
  EXPECT_TRUE(isa<LogicLiteralExpr>(&A->value()));
}

TEST(Parser, SlicedAssignments) {
  StmtPtr S = stmts("x(7 downto 4) := y(3 downto 0);");
  auto *A = dyn_cast<VarAssignStmt>(S.get());
  ASSERT_TRUE(A);
  ASSERT_TRUE(A->hasSlice());
  EXPECT_EQ(A->slice().Z1, 7);
  EXPECT_EQ(A->slice().Z2, 4);
  EXPECT_TRUE(A->slice().Downto);
  auto *V = dyn_cast<SliceExpr>(&A->value());
  ASSERT_TRUE(V);
  EXPECT_EQ(V->slice().Z1, 3);
}

TEST(Parser, ToSlices) {
  StmtPtr S = stmts("x(0 to 3) := y;");
  auto *A = cast<VarAssignStmt>(S.get());
  ASSERT_TRUE(A->hasSlice());
  EXPECT_FALSE(A->slice().Downto);
}

TEST(Parser, SequenceBecomesCompound) {
  StmtPtr S = stmts("a := b; c := d; null;");
  auto *C = dyn_cast<CompoundStmt>(S.get());
  ASSERT_TRUE(C);
  EXPECT_EQ(C->stmts().size(), 3u);
}

TEST(Parser, IfThenElse) {
  StmtPtr S = stmts("if c = '1' then a := b; else a := d; end if;");
  auto *I = dyn_cast<IfStmt>(S.get());
  ASSERT_TRUE(I);
  EXPECT_TRUE(isa<BinaryExpr>(&I->cond()));
  EXPECT_TRUE(isa<VarAssignStmt>(&I->thenStmt()));
  EXPECT_TRUE(isa<VarAssignStmt>(&I->elseStmt()));
}

TEST(Parser, IfWithoutElseGetsNull) {
  StmtPtr S = stmts("if c then a := b; end if;");
  auto *I = cast<IfStmt>(S.get());
  EXPECT_TRUE(isa<NullStmt>(&I->elseStmt()));
}

TEST(Parser, ElsifChainsDesugar) {
  StmtPtr S = stmts("if a then x := y;"
                    " elsif b then x := z;"
                    " else x := w; end if;");
  auto *I = cast<IfStmt>(S.get());
  auto *Nested = dyn_cast<IfStmt>(&I->elseStmt());
  ASSERT_TRUE(Nested);
  EXPECT_TRUE(isa<VarAssignStmt>(&Nested->elseStmt()));
}

TEST(Parser, WhileLoop) {
  StmtPtr S = stmts("while g = '0' loop x := y; end loop;");
  auto *W = dyn_cast<WhileStmt>(S.get());
  ASSERT_TRUE(W);
  EXPECT_TRUE(isa<VarAssignStmt>(&W->body()));
}

TEST(Parser, WaitVariants) {
  StmtPtr S = stmts("wait on a, b until c = '1'; wait on a; wait until c;"
                    " wait;");
  auto *C = cast<CompoundStmt>(S.get());
  ASSERT_EQ(C->stmts().size(), 4u);
  auto *W0 = cast<WaitStmt>(C->stmts()[0].get());
  EXPECT_EQ(W0->onNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(W0->hasUntil());
  auto *W1 = cast<WaitStmt>(C->stmts()[1].get());
  EXPECT_TRUE(W1->hasExplicitOn());
  EXPECT_FALSE(W1->hasUntil());
  auto *W2 = cast<WaitStmt>(C->stmts()[2].get());
  EXPECT_FALSE(W2->hasExplicitOn());
  EXPECT_TRUE(W2->hasUntil());
  auto *W3 = cast<WaitStmt>(C->stmts()[3].get());
  EXPECT_FALSE(W3->hasExplicitOn());
  EXPECT_FALSE(W3->hasUntil());
}

TEST(Parser, ExpressionPrecedence) {
  // `a xor b and c` groups as (a xor b) and c — logical ops are one level,
  // left associative (documented superset of VHDL).
  ExprPtr E = expr("a xor b and c");
  auto *Top = dyn_cast<BinaryExpr>(E.get());
  ASSERT_TRUE(Top);
  EXPECT_EQ(Top->op(), BinaryOpKind::And);
  // Relational binds tighter than logical.
  E = expr("a = b or c = d");
  Top = cast<BinaryExpr>(E.get());
  EXPECT_EQ(Top->op(), BinaryOpKind::Or);
  EXPECT_EQ(cast<BinaryExpr>(&Top->lhs())->op(), BinaryOpKind::Eq);
  // * over +.
  E = expr("a + b * c");
  Top = cast<BinaryExpr>(E.get());
  EXPECT_EQ(Top->op(), BinaryOpKind::Add);
  EXPECT_EQ(cast<BinaryExpr>(&Top->rhs())->op(), BinaryOpKind::Mul);
}

TEST(Parser, NotBindsTightest) {
  ExprPtr E = expr("not a and b");
  auto *Top = cast<BinaryExpr>(E.get());
  EXPECT_EQ(Top->op(), BinaryOpKind::And);
  EXPECT_TRUE(isa<UnaryExpr>(&Top->lhs()));
}

TEST(Parser, Parentheses) {
  ExprPtr E = expr("a and (b or c)");
  auto *Top = cast<BinaryExpr>(E.get());
  EXPECT_EQ(Top->op(), BinaryOpKind::And);
  EXPECT_EQ(cast<BinaryExpr>(&Top->rhs())->op(), BinaryOpKind::Or);
}

TEST(Parser, ConcatAndLiterals) {
  ExprPtr E = expr("\"00\" & x(7 downto 7) & '1'");
  ASSERT_TRUE(E);
  EXPECT_TRUE(isa<BinaryExpr>(E.get()));
}

TEST(Parser, EntityWithPorts) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(
      "entity e is port(a : in std_logic; b, c : out "
      "std_logic_vector(7 downto 0); d : inout std_logic); end e;",
      Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(F.Entities.size(), 1u);
  const Entity &E = F.Entities[0];
  ASSERT_EQ(E.Ports.size(), 4u);
  EXPECT_EQ(E.Ports[0].Mode, PortMode::In);
  EXPECT_EQ(E.Ports[1].Name, "b");
  EXPECT_EQ(E.Ports[2].Name, "c");
  EXPECT_EQ(E.Ports[1].Mode, PortMode::Out);
  EXPECT_TRUE(E.Ports[1].Ty.isVector());
  EXPECT_EQ(E.Ports[1].Ty.width(), 8u);
  EXPECT_EQ(E.Ports[3].Mode, PortMode::InOut);
}

TEST(Parser, FullArchitecture) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(R"(
    entity top is port(clk : in std_logic; q : out std_logic); end top;
    architecture rtl of top is
      signal s : std_logic := '0';
    begin
      p : process
        variable v : std_logic;
      begin
        v := s;
        q <= v;
        wait on clk;
      end process p;
      blk : block
        signal inner : std_logic;
      begin
        inner <= clk;
      end block blk;
      s <= clk;
    end rtl;
  )",
                             Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(F.Architectures.size(), 1u);
  const Architecture &A = F.Architectures[0];
  EXPECT_EQ(A.EntityName, "top");
  ASSERT_EQ(A.Decls.size(), 1u);
  ASSERT_EQ(A.Stmts.size(), 3u);
  EXPECT_TRUE(isa<ProcessStmt>(A.Stmts[0].get()));
  EXPECT_TRUE(isa<BlockStmt>(A.Stmts[1].get()));
  EXPECT_TRUE(isa<ConcAssignStmt>(A.Stmts[2].get()));
}

TEST(Parser, StatementProgramWithDecls) {
  DiagnosticEngine Diags;
  StatementProgram P = parseStatementProgram(
      "variable x : std_logic_vector(7 downto 0);\n"
      "variable y : std_logic;\n"
      "x(3 downto 0) := x(7 downto 4);",
      Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(P.Decls.size(), 2u);
  EXPECT_TRUE(isa<VarAssignStmt>(P.Body.get()));
}

//===----------------------------------------------------------------------===//
// Error recovery
//===----------------------------------------------------------------------===//

TEST(ParserErrors, MissingSemicolon) {
  DiagnosticEngine Diags;
  parseStatements("a := b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserErrors, MismatchedEndName) {
  DiagnosticEngine Diags;
  parseDesign("entity e is port(a : in std_logic); end f;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserErrors, BadSliceDirection) {
  DiagnosticEngine Diags;
  parseStatements("x(1 upto 2) := y;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserErrors, BadPortMode) {
  DiagnosticEngine Diags;
  parseDesign("entity e is port(a : buffer std_logic); end e;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserErrors, VectorRangeAgainstDirection) {
  DiagnosticEngine Diags;
  parseDesign("entity e is port(a : in std_logic_vector(0 downto 7)); "
              "end e;",
              Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Robustness: hostile inputs must produce diagnostics, never crashes
//===----------------------------------------------------------------------===//

class HostileInputTest : public ::testing::TestWithParam<const char *> {};

TEST_P(HostileInputTest, NoCrashOnGarbage) {
  DiagnosticEngine D1, D2;
  // Both entry points must survive arbitrary input.
  parseDesign(GetParam(), D1);
  StatementProgram P = parseStatementProgram(GetParam(), D2);
  // Nothing to assert beyond survival and (usually) diagnostics; empty
  // input parses cleanly as an empty program.
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Garbage, HostileInputTest,
    ::testing::Values(
        "", ";;;;", "entity", "entity e", "architecture of is begin",
        "process begin end", "((((((((", "x := ; y <=",
        "\"unterminated", "'x", "if if if then then else",
        "wait wait wait;", "end end end;",
        "entity e is port(); end e;",
        "a : in std_logic", "123 456 789",
        "x(1 downto downto 2) := y;",
        "while loop end loop;",
        "entity e is port(a : in std_logic); end e;"
        " architecture a of e is begin b : block begin", // truncated
        "-- only a comment"));

TEST(ParserRobustness, DeeplyNestedExpressions) {
  // 200 nested parens: must not smash the stack or reject valid input.
  std::string Source = "x := ";
  for (int I = 0; I < 200; ++I)
    Source += "(";
  Source += "y";
  for (int I = 0; I < 200; ++I)
    Source += ")";
  Source += ";";
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_TRUE(S);
  EXPECT_EQ(stmtToString(*S), "x := y;\n");
}

TEST(ParserRobustness, DeeplyNestedIfs) {
  std::string Source, Close;
  for (int I = 0; I < 150; ++I) {
    Source += "if c then ";
    Close += " end if;";
  }
  Source += "x := y;" + Close;
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_TRUE(S);
}

// Pinned by the mutation fuzzer (vifc-fuzz --mode mutate): adversarial
// inputs beyond the nesting budget must produce diagnostics, never smash
// the stack. The recursive descent guards itself with a shared depth
// counter (Parser::MaxNestingDepth).
TEST(ParserRobustness, PathologicalNestingIsDiagnosed) {
  std::string Parens = "x := " + std::string(100000, '(') + "y" +
                       std::string(100000, ')') + ";";
  DiagnosticEngine D1;
  parseStatements(Parens, D1);
  EXPECT_TRUE(D1.hasErrors());

  std::string Ifs, Close;
  for (int I = 0; I < 50000; ++I) {
    Ifs += "if c then ";
    Close += " end if;";
  }
  DiagnosticEngine D2;
  parseStatements(Ifs + "null;" + Close, D2);
  EXPECT_TRUE(D2.hasErrors());

  // elsif chains recurse per arm and share the same budget; past it they
  // must degrade to diagnostics too.
  std::string Elsifs = "if c then x := y; ";
  for (int I = 0; I < 2000; ++I)
    Elsifs += "elsif c then x := y; ";
  DiagnosticEngine D3;
  parseStatements(Elsifs + "end if;", D3);
  EXPECT_TRUE(D3.hasErrors());
}

// Pinned by the mutation fuzzer: lexer error recovery must iterate, not
// recurse — megabytes of garbage used to overflow the stack one frame
// per bad byte (under sanitizers, which disable tail calls).
TEST(ParserRobustness, LongGarbageInputRecoversIteratively) {
  std::string Garbage(2 * 1024 * 1024, '$');
  DiagnosticEngine Diags;
  parseStatements(Garbage, Diags);
  EXPECT_TRUE(Diags.hasErrors());

  // The malformed-char-literal arm recovers through the same loop.
  std::string Ticks(1024 * 1024, '\'');
  DiagnosticEngine D2;
  parseStatements("x := " + Ticks + ";", D2);
  EXPECT_TRUE(D2.hasErrors());
}

// Pinned by the mutation fuzzer: digit runs longer than int64 must
// saturate with a diagnostic instead of wrapping through signed overflow
// into a bogus (possibly "valid") slice bound.
TEST(ParserRobustness, OverlongIntegerLiteralIsDiagnosed) {
  DiagnosticEngine Diags;
  parseStatements("x := y(99999999999999999999999999999999999 downto 0);",
                  Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("integer literal too large"), std::string::npos)
      << Diags.str();

  // The largest representable literal still lexes fine.
  DiagnosticEngine D2;
  parseStatements("x := y(9223372036854775807 downto 0);", D2);
  EXPECT_EQ(D2.str().find("integer literal too large"), std::string::npos)
      << D2.str();
}

//===----------------------------------------------------------------------===//
// Round trips: parse(print(ast)) == ast (structurally)
//===----------------------------------------------------------------------===//

class RoundTripTest : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  DiagnosticEngine D1;
  StmtPtr S1 = parseStatements(GetParam(), D1);
  ASSERT_FALSE(D1.hasErrors()) << D1.str();
  std::string P1 = stmtToString(*S1);
  DiagnosticEngine D2;
  StmtPtr S2 = parseStatements(P1, D2);
  ASSERT_FALSE(D2.hasErrors()) << D2.str() << "\nprinted:\n" << P1;
  EXPECT_EQ(P1, stmtToString(*S2));
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "null;",
        "a := b;",
        "s <= a xor b;",
        "x(7 downto 0) := y(15 downto 8);",
        "if c then a := b; end if;",
        "if c then a := b; else s <= '1'; end if;",
        "while g loop a := b; s <= a; end loop;",
        "wait on a, b until c = '1';",
        "wait;",
        "a := (b and c) or (not d);",
        "v := \"0101\" & w(3 to 4) & '1';",
        "a := b + c * d - e;",
        "if a = '1' then if b then null; end if; else c := d; end if;"));

TEST(RoundTrip, DesignFile) {
  const char *Source = R"(
    entity e is port(a : in std_logic; z : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic := '1';
    begin
      p : process
        variable v : std_logic_vector(3 downto 0) := "0000";
      begin
        v(3 downto 2) := v(1 downto 0);
        s <= a;
        wait on a;
      end process p;
      z <= s;
    end rtl;
  )";
  DiagnosticEngine D1;
  DesignFile F1 = parseDesign(Source, D1);
  ASSERT_FALSE(D1.hasErrors()) << D1.str();
  std::string P1 = designToString(F1);
  DiagnosticEngine D2;
  DesignFile F2 = parseDesign(P1, D2);
  ASSERT_FALSE(D2.hasErrors()) << D2.str() << "\nprinted:\n" << P1;
  EXPECT_EQ(P1, designToString(F2));
}

} // namespace
