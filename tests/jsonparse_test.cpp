//===- tests/jsonparse_test.cpp - support/JsonParse -----------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace vif;

namespace {

JsonValue parseOk(const std::string &Text) {
  std::string Error;
  std::optional<JsonValue> V = parseJson(Text, &Error);
  EXPECT_TRUE(V.has_value()) << Text << " -> " << Error;
  return V ? *V : JsonValue();
}

std::string parseErr(const std::string &Text) {
  std::string Error;
  EXPECT_FALSE(parseJson(Text, &Error).has_value()) << Text;
  return Error;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool());
  EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parseOk("-3.5e2").asNumber(), -350.0);
  EXPECT_DOUBLE_EQ(parseOk("0").asNumber(), 0.0);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
  EXPECT_EQ(parseOk("  \"ws\"  ").asString(), "ws");
}

TEST(JsonParse, NestedContainersKeepOrder) {
  JsonValue V = parseOk(R"({"b": [1, {"x": true}], "a": null, "b": 2})");
  ASSERT_TRUE(V.isObject());
  ASSERT_EQ(V.members().size(), 3u) << "duplicates preserved";
  EXPECT_EQ(V.members()[0].first, "b");
  EXPECT_EQ(V.members()[1].first, "a");
  const JsonValue *B = V.find("b");
  ASSERT_NE(B, nullptr);
  ASSERT_TRUE(B->isArray()) << "find returns the first member";
  ASSERT_EQ(B->elements().size(), 2u);
  const JsonValue *X = B->elements()[1].find("x");
  ASSERT_NE(X, nullptr);
  EXPECT_TRUE(X->asBool());
  EXPECT_EQ(V.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parseOk(R"("a\"b\\c\/d")").asString(), "a\"b\\c/d");
  EXPECT_EQ(parseOk(R"("\b\f\n\r\t")").asString(), "\b\f\n\r\t");
  EXPECT_EQ(parseOk(R"("A")").asString(), "A");
  EXPECT_EQ(parseOk(R"("é")").asString(), "\xc3\xa9");
  EXPECT_EQ(parseOk(R"("◦")").asString(), "◦");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseOk(R"("😀")").asString(), "\xf0\x9f\x98\x80");
  EXPECT_EQ(parseOk("\"raw ◦ utf8\"").asString(), "raw ◦ utf8");
}

TEST(JsonParse, ErrorsCarryOffsets) {
  EXPECT_NE(parseErr("").find("unexpected end"), std::string::npos);
  EXPECT_NE(parseErr("{\"a\": }").find("offset"), std::string::npos);
  EXPECT_NE(parseErr("[1, 2").find("unterminated array"),
            std::string::npos);
  EXPECT_NE(parseErr("[1 2]").find("','"), std::string::npos);
  EXPECT_NE(parseErr("\"open").find("unterminated"), std::string::npos);
  EXPECT_NE(parseErr("nul"), "");
  EXPECT_NE(parseErr("01"), "");
  EXPECT_NE(parseErr("1 2").find("trailing"), std::string::npos);
  EXPECT_NE(parseErr("{\"a\" 1}").find("':'"), std::string::npos);
  EXPECT_NE(parseErr(R"("\ud83d")").find("surrogate"), std::string::npos);
  EXPECT_NE(parseErr(R"("\q")"), "");
  EXPECT_NE(parseErr("{1: 2}").find("member name"), std::string::npos);
}

TEST(JsonParse, DepthLimitFailsCleanly) {
  std::string Deep(200, '[');
  Deep += std::string(200, ']');
  EXPECT_NE(parseErr(Deep).find("nesting too deep"), std::string::npos);
  // 32 levels is comfortably within the limit.
  std::string Ok(32, '[');
  Ok += "1";
  Ok += std::string(32, ']');
  parseOk(Ok);
}

// Round-trip: whatever JsonWriter emits (both styles), parseJson accepts.
TEST(JsonParse, RoundTripsWriterOutput) {
  for (JsonStyle Style : {JsonStyle::Pretty, JsonStyle::Compact}) {
    std::ostringstream OS;
    JsonWriter J(OS, Style);
    J.beginObject();
    J.member("text", "line\nbreak \"quoted\" ◦");
    J.member("count", 42);
    J.member("ratio", 0.25);
    J.member("flag", true);
    J.key("null");
    J.null();
    J.key("list");
    J.beginArray();
    J.value(1);
    J.value("two");
    J.endArray();
    J.endObject();

    JsonValue V = parseOk(OS.str());
    EXPECT_EQ(V.find("text")->asString(), "line\nbreak \"quoted\" ◦");
    EXPECT_DOUBLE_EQ(V.find("count")->asNumber(), 42);
    EXPECT_DOUBLE_EQ(V.find("ratio")->asNumber(), 0.25);
    EXPECT_TRUE(V.find("flag")->asBool());
    EXPECT_TRUE(V.find("null")->isNull());
    ASSERT_EQ(V.find("list")->elements().size(), 2u);
  }
}

TEST(JsonWriterCompact, SingleLineNoTrailingNewline) {
  std::ostringstream OS;
  JsonWriter J(OS, JsonStyle::Compact);
  J.beginObject();
  J.member("a", 1);
  J.key("b");
  J.beginArray();
  J.value("x");
  J.endArray();
  J.key("c");
  J.beginObject();
  J.endObject();
  J.endObject();
  EXPECT_EQ(OS.str(), R"({"a":1,"b":["x"],"c":{}})");
}

} // namespace
