//===- tests/tsan_serve.cpp - ThreadSanitizer drive of concurrent serve ---===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// A plain main() (no gtest, so every instruction in the binary is
// TSan-instrumented) that hammers one shared driver::Server from many
// threads: handleLine directly (the transport-agnostic core), serveFd
// over per-thread socketpairs, and the cache byte accounting on Ref
// release. Any data race — the request/in-flight counters, SessionCache
// LRU and byte totals, lazy per-entry pipeline runs, shutdown flag —
// aborts the test through TSan's reporting. Built with -fsanitize=thread
// when the toolchain supports it and registered as ctest vifc_tsan_serve.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"
#include "query/FlowQueryEngine.h"
#include "support/BitSet.h"
#include "support/Graph.h"
#include "support/Parallel.h"
#include "workloads/Synthetic.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace vif;
using namespace vif::driver;

namespace {

std::string escapeJson(const std::string &Source) {
  std::string Out;
  for (char C : Source) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string flowsRequest(const std::string &Source, int Id) {
  return "{\"schema\":\"vifc.v1\",\"id\":" + std::to_string(Id) +
         ",\"command\":\"flows\",\"source\":\"" + escapeJson(Source) +
         "\"}";
}

std::string queryRequest(const std::string &Source, int Id,
                         const std::string &From, const std::string &To) {
  return "{\"schema\":\"vifc.v1\",\"id\":" + std::to_string(Id) +
         ",\"command\":\"query\",\"source\":\"" + escapeJson(Source) +
         "\",\"options\":{\"from\":\"" + From + "\",\"to\":\"" + To +
         "\"}}";
}

/// M threads calling handleLine directly against one server with a
/// byte-budgeted cache: K requests each over a small set of shared
/// designs, so threads collide on entries while eviction churns them.
bool hammerHandleLine() {
  constexpr unsigned Threads = 6, Requests = 10, Designs = 4;
  std::vector<std::string> Reqs;
  for (unsigned D = 0; D < Designs; ++D)
    Reqs.push_back(flowsRequest(workloads::pipelineDesign(4 + D), int(D)));

  ServeOptions SO;
  SO.CacheBytes = 1 << 18; // small enough to force evictions
  Server S(SO);
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&S, &Reqs, &Failures, T] {
      for (unsigned R = 0; R < Requests; ++R) {
        const std::string &Req = Reqs[(T + R) % Designs];
        std::string Response = S.handleLine(Req);
        if (Response.find("\"status\":\"ok\"") == std::string::npos)
          ++Failures;
      }
    });
  for (std::thread &W : Workers)
    W.join();

  if (Failures.load() != 0) {
    std::fprintf(stderr, "tsan_serve: %u handleLine calls failed\n",
                 Failures.load());
    return false;
  }
  SessionCache::Stats St = S.cache().stats();
  if (St.Hits + St.Misses != uint64_t(Threads) * Requests) {
    std::fprintf(stderr, "tsan_serve: hits+misses %llu != requests %u\n",
                 static_cast<unsigned long long>(St.Hits + St.Misses),
                 Threads * Requests);
    return false;
  }
  if (S.requestsHandled() != uint64_t(Threads) * Requests ||
      S.inFlight() != 0) {
    std::fprintf(stderr, "tsan_serve: request counters diverge\n");
    return false;
  }
  return true;
}

/// M threads each running the fd transport over their own socketpair
/// against one shared server — the listenAndServe worker shape without
/// the TCP stack in the way.
bool hammerServeFd() {
  constexpr unsigned Threads = 4, Requests = 6;
  Server S;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&S, &Failures, T] {
      int Fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
        ++Failures;
        return;
      }
      std::string Payload;
      for (unsigned R = 0; R < Requests; ++R)
        Payload += flowsRequest(workloads::pipelineDesign(3 + T % 2),
                                int(T * 100 + R)) +
                   "\n";
      size_t Off = 0;
      while (Off < Payload.size()) {
        ssize_t W =
            ::write(Fds[1], Payload.data() + Off, Payload.size() - Off);
        if (W <= 0) {
          ++Failures;
          break;
        }
        Off += static_cast<size_t>(W);
      }
      ::shutdown(Fds[1], SHUT_WR);
      std::string Error;
      if (!S.serveFd(Fds[0], &Error)) {
        std::fprintf(stderr, "tsan_serve: serveFd: %s\n", Error.c_str());
        ++Failures;
      }
      ::close(Fds[0]);
      std::string Out;
      char Buf[65536];
      ssize_t N;
      while ((N = ::read(Fds[1], Buf, sizeof(Buf))) > 0)
        Out.append(Buf, static_cast<size_t>(N));
      ::close(Fds[1]);
      size_t Lines = 0;
      for (char C : Out)
        Lines += C == '\n';
      if (Lines != Requests)
        ++Failures;
    });
  for (std::thread &W : Workers)
    W.join();

  if (Failures.load() != 0) {
    std::fprintf(stderr, "tsan_serve: %u serveFd clients failed\n",
                 Failures.load());
    return false;
  }
  return true;
}

/// Query requests racing flows requests on one shared cache: the lazily
/// built query index (AnalysisSession::queryEngine) and the graph's lazy
/// sorted views are exercised from several threads against the same
/// cached sessions.
bool hammerQueryRequests() {
  constexpr unsigned Threads = 6, Requests = 10, Designs = 3;
  std::vector<std::string> Queries, Flows;
  for (unsigned D = 0; D < Designs; ++D) {
    std::string Source = workloads::pipelineDesign(3 + D);
    Queries.push_back(queryRequest(Source, int(D), "s_0", "s_2"));
    Flows.push_back(flowsRequest(Source, int(100 + D)));
  }

  Server S;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&S, &Queries, &Flows, &Failures, T] {
      for (unsigned R = 0; R < Requests; ++R) {
        bool WantQuery = (T + R) % 2 == 0;
        const std::string &Req = WantQuery ? Queries[(T + R) % Designs]
                                           : Flows[(T + R) % Designs];
        std::string Response = S.handleLine(Req);
        if (Response.find("\"status\":\"ok\"") == std::string::npos)
          ++Failures;
        if (WantQuery &&
            Response.find("\"reaches\":true") == std::string::npos)
          ++Failures;
      }
    });
  for (std::thread &W : Workers)
    W.join();

  if (Failures.load() != 0) {
    std::fprintf(stderr, "tsan_serve: %u query requests failed\n",
                 Failures.load());
    return false;
  }
  return true;
}

/// Many threads materializing one shared Digraph's lazy views (sorted
/// edges, ranks, reachability closure, a full query engine) — the borrow
/// pattern recordGraph/FlowQueryEngine rely on under the worker pool.
bool hammerGraphViews() {
  Digraph G;
  for (unsigned I = 0; I < 96; ++I)
    G.addEdge("n" + std::to_string(I * 7 % 32),
              "n" + std::to_string(I * 13 % 32));

  constexpr unsigned Threads = 8;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&G, &Failures] {
      size_t Edges = 0;
      G.forEachSortedEdge(
          [&Edges](std::string_view, std::string_view) { ++Edges; });
      if (Edges != G.numEdges())
        ++Failures;
      if (G.rankedNodes().size() != G.numNodes())
        ++Failures;
      BitMatrix M;
      G.reachabilityClosure(M);
      query::FlowQueryEngine Q(G);
      if (Q.numEdges() != G.numEdges())
        ++Failures;
    });
  for (std::thread &W : Workers)
    W.join();

  if (Failures.load() != 0) {
    std::fprintf(stderr, "tsan_serve: %u graph view readers failed\n",
                 Failures.load());
    return false;
  }
  return true;
}

/// The WorkerPool itself under churn: enqueue from several producers
/// while the pool drains, close() racing the last enqueues.
bool hammerWorkerPool() {
  std::atomic<unsigned> Ran{0};
  std::atomic<unsigned> Accepted{0};
  {
    WorkerPool Pool(3, 8);
    std::vector<std::thread> Producers;
    for (unsigned P = 0; P < 4; ++P)
      Producers.emplace_back([&Pool, &Ran, &Accepted] {
        for (unsigned I = 0; I < 50; ++I)
          if (Pool.tryEnqueue([&Ran] {
                Ran.fetch_add(1, std::memory_order_relaxed);
              }))
            Accepted.fetch_add(1, std::memory_order_relaxed);
      });
    for (std::thread &P : Producers)
      P.join();
    Pool.close(); // drains everything accepted
  }
  if (Ran.load() != Accepted.load()) {
    std::fprintf(stderr, "tsan_serve: pool ran %u of %u accepted tasks\n",
                 Ran.load(), Accepted.load());
    return false;
  }
  return true;
}

} // namespace

int main() {
  bool Ok = true;
  // Several rounds so thread interleavings vary.
  for (int Round = 0; Round < 3 && Ok; ++Round) {
    Ok = Ok && hammerHandleLine();
    Ok = Ok && hammerQueryRequests();
    Ok = Ok && hammerGraphViews();
    Ok = Ok && hammerServeFd();
    Ok = Ok && hammerWorkerPool();
  }
  if (Ok)
    std::puts("tsan_serve: all concurrent serves consistent");
  return Ok ? 0 : 1;
}
