//===- tests/localdeps_test.cpp - Table 6 inference system ----------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/LocalDeps.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

struct Analyzed {
  ElaboratedProgram Program;
  ProgramCFG CFG;
  ResourceMatrix RM;
};

Analyzed localDeps(const std::string &Source, bool IsDesign = false) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  EXPECT_TRUE(P.has_value()) << Diags.str();
  Analyzed A{std::move(*P), {}, {}};
  A.CFG = ProgramCFG::build(A.Program);
  A.RM = computeLocalDeps(A.Program, A.CFG);
  return A;
}

Resource rvar(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabVariable &V : P.Variables)
    if (V.Name == Name)
      return Resource::variable(V.Id);
  ADD_FAILURE() << "no variable " << Name;
  return Resource();
}

Resource rsig(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabSignal &S : P.Signals)
    if (S.Name == Name)
      return Resource::signal(S.Id);
  ADD_FAILURE() << "no signal " << Name;
  return Resource();
}

TEST(LocalDeps, VariableAssignment) {
  // B ⊢ [x := e]^l : {(x,l,M0)} ∪ {(n,l,R0) | n ∈ FV(e) ∪ FS(e) ∪ B}
  Analyzed A = localDeps("x := a xor b;");
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "x"), 1, Access::M0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "a"), 1, Access::R0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "b"), 1, Access::R0));
  EXPECT_EQ(A.RM.size(), 3u);
}

TEST(LocalDeps, SignalAssignmentModifiesActiveValue) {
  Analyzed A = localDeps("s <= a;");
  EXPECT_TRUE(A.RM.contains(rsig(A.Program, "s"), 1, Access::M1))
      << "signals are modified at the active level (M1), not M0";
  EXPECT_FALSE(A.RM.contains(rsig(A.Program, "s"), 1, Access::M0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "a"), 1, Access::R0));
}

TEST(LocalDeps, NullContributesNothing) {
  Analyzed A = localDeps("null;");
  EXPECT_TRUE(A.RM.empty());
}

TEST(LocalDeps, ImplicitFlowThroughCondition) {
  Analyzed A = localDeps("if c then x := a; else y := b; end if;");
  // Labels: [c]^1 [x:=a]^2 [y:=b]^3. The condition's reads appear at the
  // assignments via the block set B, not at the condition label.
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "c"), 2, Access::R0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "c"), 3, Access::R0));
  EXPECT_TRUE(A.RM.resourcesAt(1, Access::R0).empty());
}

TEST(LocalDeps, NestedConditionsAccumulate) {
  Analyzed A = localDeps(
      "if c then if d then x := a; end if; end if;");
  // [c]^1 [d]^2 [x:=a]^3 — both guards flow into x.
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "c"), 3, Access::R0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "d"), 3, Access::R0));
}

TEST(LocalDeps, WhileGuardsBody) {
  Analyzed A = localDeps("while g loop x := a; end loop;");
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "g"), 2, Access::R0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "x"), 2, Access::M0));
}

TEST(LocalDeps, ImplicitNullBranchLeaksNothing) {
  // if c then null else null: no assignment, no RM entries at all — the
  // analysis does not invent flows out of pure control.
  Analyzed A = localDeps("if c then null; else null; end if;");
  EXPECT_TRUE(A.RM.empty());
}

TEST(LocalDeps, WaitReadsAndSynchronizes) {
  // [s <= a]^1 [wait on t until b = '1']^2: the wait carries R1 for every
  // signal of the process and R0 for S ∪ FV(e) ∪ FS(e) ∪ B.
  Analyzed A = localDeps("s <= a; wait on t until b = '1';");
  EXPECT_TRUE(A.RM.contains(rsig(A.Program, "s"), 2, Access::R1));
  EXPECT_TRUE(A.RM.contains(rsig(A.Program, "t"), 2, Access::R1));
  EXPECT_TRUE(A.RM.contains(rsig(A.Program, "t"), 2, Access::R0))
      << "waited-on signals are read";
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "b"), 2, Access::R0))
      << "condition variables are read";
}

TEST(LocalDeps, WaitInsideConditionTakesBlockSet) {
  Analyzed A = localDeps("if c then s <= a; wait on s; end if;");
  // [c]^1 [s<=a]^2 [wait]^3.
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "c"), 3, Access::R0))
      << "reaching the wait reveals the condition";
}

TEST(LocalDeps, SliceAccessesCountAsReadsAndWrites) {
  Analyzed A = localDeps(
      "variable x, y : std_logic_vector(3 downto 0);\n"
      "x(3 downto 2) := y(1 downto 0);");
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "x"), 1, Access::M0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "y"), 1, Access::R0));
}

TEST(LocalDeps, MultiProcessUnion) {
  Analyzed A = localDeps(R"(
    entity e is port(clk : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= clk; wait on clk; end process p1;
      p2 : process begin q <= s; wait on s; end process p2;
    end rtl;)",
                         /*IsDesign=*/true);
  // RMlo = RM_1 ∪ RM_2; both processes contribute M1 entries.
  bool SawS = false, SawQ = false;
  for (const RMEntry &E : A.RM) {
    if (E.A != Access::M1)
      continue;
    SawS |= E.N == rsig(A.Program, "s");
    SawQ |= E.N == rsig(A.Program, "q");
  }
  EXPECT_TRUE(SawS);
  EXPECT_TRUE(SawQ);
}

TEST(LocalDeps, R1CoversAllProcessSignals) {
  Analyzed A = localDeps(R"(
    entity e is port(clk : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s, t : std_logic;
    begin
      p : process
      begin
        s <= clk;
        t <= s;
        q <= t;
        wait on clk;
      end process p;
    end rtl;)",
                         /*IsDesign=*/true);
  // FS(ss) = {clk, s, t, q}; all get R1 at the wait.
  LabelId WaitLabel = A.CFG.process(0).WaitLabels.at(0);
  EXPECT_EQ(A.RM.resourcesAt(WaitLabel, Access::R1).size(), 4u);
}

TEST(LocalDeps, PaperProgramA) {
  // (a): [c := b]^1 [b := a]^2 — the running example.
  Analyzed A = localDeps("c := b; b := a;");
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "c"), 1, Access::M0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "b"), 1, Access::R0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "b"), 2, Access::M0));
  EXPECT_TRUE(A.RM.contains(rvar(A.Program, "a"), 2, Access::R0));
  EXPECT_EQ(A.RM.size(), 4u);
}

TEST(ResourceMatrixType, RangeQueries) {
  ResourceMatrix RM;
  RM.insert(Resource::variable(0), 3, Access::R0);
  RM.insert(Resource::variable(1), 3, Access::R0);
  RM.insert(Resource::variable(2), 3, Access::M0);
  RM.insert(Resource::variable(0), 4, Access::R0);
  EXPECT_EQ(RM.resourcesAt(3, Access::R0).size(), 2u);
  EXPECT_EQ(RM.resourcesAt(3, Access::M0).size(), 1u);
  EXPECT_EQ(RM.resourcesAt(5, Access::R0).size(), 0u);
  EXPECT_EQ(RM.labels(), (std::vector<LabelId>{3, 4}));
  EXPECT_FALSE(RM.insert(Resource::variable(0), 3, Access::R0))
      << "duplicate insert";
}

} // namespace
