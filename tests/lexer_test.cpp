//===- tests/lexer_test.cpp - VHDL1 lexer ---------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "parse/Lexer.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Source) {
  DiagnosticEngine Diags;
  std::vector<TokenKind> Result;
  for (const Token &T : lex(Source, Diags))
    Result.push_back(T.K);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Result;
}

TEST(Lexer, EmptyInputIsJustEof) {
  EXPECT_EQ(kinds(""), std::vector<TokenKind>{TokenKind::Eof});
  EXPECT_EQ(kinds("   \n\t  "), std::vector<TokenKind>{TokenKind::Eof});
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto K = kinds("ENTITY Entity entity eNtItY");
  EXPECT_EQ(K, (std::vector<TokenKind>{
                   TokenKind::KwEntity, TokenKind::KwEntity,
                   TokenKind::KwEntity, TokenKind::KwEntity,
                   TokenKind::Eof}));
}

TEST(Lexer, IdentifiersLowercased) {
  DiagnosticEngine Diags;
  auto Tokens = lex("FooBar foo_bar2", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "foobar");
  EXPECT_EQ(Tokens[1].Text, "foo_bar2");
}

TEST(Lexer, IntegerLiterals) {
  DiagnosticEngine Diags;
  auto Tokens = lex("0 7 123", Diags);
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 7);
  EXPECT_EQ(Tokens[2].IntValue, 123);
}

TEST(Lexer, CharAndStringLiterals) {
  DiagnosticEngine Diags;
  auto Tokens = lex("'1' 'U' \"01ZX\" \"\"", Diags);
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].K, TokenKind::CharLiteral);
  EXPECT_EQ(Tokens[0].Text, "1");
  EXPECT_EQ(Tokens[1].Text, "U");
  EXPECT_EQ(Tokens[2].K, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[2].Text, "01ZX");
  EXPECT_EQ(Tokens[3].Text, "");
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, LiteralBodiesKeepCase) {
  DiagnosticEngine Diags;
  auto Tokens = lex("\"uU\"", Diags);
  EXPECT_EQ(Tokens[0].Text, "uU") << "literal bodies are case sensitive";
}

TEST(Lexer, OperatorsAndPunctuation) {
  auto K = kinds("( ) ; : , := <= < > >= = /= + - * &");
  EXPECT_EQ(K, (std::vector<TokenKind>{
                   TokenKind::LParen, TokenKind::RParen, TokenKind::Semi,
                   TokenKind::Colon, TokenKind::Comma, TokenKind::ColonEq,
                   TokenKind::LessEq, TokenKind::Less, TokenKind::Greater,
                   TokenKind::GreaterEq, TokenKind::Eq, TokenKind::NotEq,
                   TokenKind::Plus, TokenKind::Minus, TokenKind::Star,
                   TokenKind::Amp, TokenKind::Eof}));
}

TEST(Lexer, MaximalMunchOnCompoundOperators) {
  auto K = kinds("a<=b");
  EXPECT_EQ(K, (std::vector<TokenKind>{TokenKind::Identifier,
                                       TokenKind::LessEq,
                                       TokenKind::Identifier,
                                       TokenKind::Eof}));
  K = kinds("a:=1");
  EXPECT_EQ(K[1], TokenKind::ColonEq);
}

TEST(Lexer, CommentsAreSkipped) {
  auto K = kinds("a -- this is a comment <= := entity\nb");
  EXPECT_EQ(K, (std::vector<TokenKind>{TokenKind::Identifier,
                                       TokenKind::Identifier,
                                       TokenKind::Eof}));
}

TEST(Lexer, CommentAtEndOfFile) {
  auto K = kinds("a -- no newline at end");
  EXPECT_EQ(K.size(), 2u);
}

TEST(Lexer, MinusVsComment) {
  auto K = kinds("a - b");
  EXPECT_EQ(K[1], TokenKind::Minus);
}

TEST(Lexer, SourceLocations) {
  DiagnosticEngine Diags;
  auto Tokens = lex("ab\n  cd", Diags);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
}

TEST(Lexer, ErrorsReportedAndRecovered) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a ? b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // The bad character is skipped; both identifiers survive.
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, UnterminatedString) {
  DiagnosticEngine Diags;
  lex("\"0101", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, SlashRequiresEq) {
  DiagnosticEngine Diags;
  lex("a / b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, StdLogicTypeNamesAreKeywords) {
  auto K = kinds("std_logic std_logic_vector");
  EXPECT_EQ(K[0], TokenKind::KwStdLogic);
  EXPECT_EQ(K[1], TokenKind::KwStdLogicVector);
}

TEST(Lexer, WaitRelatedKeywords) {
  auto K = kinds("wait on until downto to inout");
  EXPECT_EQ(K, (std::vector<TokenKind>{
                   TokenKind::KwWait, TokenKind::KwOn, TokenKind::KwUntil,
                   TokenKind::KwDownto, TokenKind::KwTo, TokenKind::KwInout,
                   TokenKind::Eof}));
}

} // namespace
