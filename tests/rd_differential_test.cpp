//===- tests/rd_differential_test.cpp - Dense vs reference solvers --------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// The rd fixpoints run densely (BitSets over per-process DefPairDomains,
// rd/DenseDomain.h); the original sorted-vector solvers are retained as
// oracles. These tests run both over the paper's figure programs and the
// synthetic families and assert identical Entry/Exit sets label by label,
// and identical IFA results end to end.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "parse/Parser.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

ElaboratedProgram elaborate(const std::string &Source, bool IsDesign) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    if (!Diags.hasErrors())
      P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    if (!Diags.hasErrors())
      P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

/// Asserts that the dense and reference solvers agree on every per-label
/// set of both rd analyses.
void expectSolversAgree(const std::string &Source, bool IsDesign,
                        const char *What) {
  ElaboratedProgram P = elaborate(Source, IsDesign);
  ProgramCFG CFG = ProgramCFG::build(P);

  ActiveSignalsResult Dense = analyzeActiveSignals(P, CFG);
  ActiveSignalsResult Ref = analyzeActiveSignalsReference(P, CFG);
  for (LabelId L = 1; L <= CFG.numLabels(); ++L) {
    EXPECT_TRUE(Dense.MayEntry[L] == Ref.MayEntry[L])
        << What << ": MayEntry at " << L;
    EXPECT_TRUE(Dense.MayExit[L] == Ref.MayExit[L])
        << What << ": MayExit at " << L;
    EXPECT_TRUE(Dense.MustEntry[L] == Ref.MustEntry[L])
        << What << ": MustEntry at " << L;
    EXPECT_TRUE(Dense.MustExit[L] == Ref.MustExit[L])
        << What << ": MustExit at " << L;
  }

  ReachingDefsResult RDDense = analyzeReachingDefs(P, CFG, Dense);
  ReachingDefsResult RDRef = analyzeReachingDefsReference(P, CFG, Ref);
  for (LabelId L = 1; L <= CFG.numLabels(); ++L) {
    EXPECT_TRUE(RDDense.Entry[L] == RDRef.Entry[L])
        << What << ": RD Entry at " << L;
    EXPECT_TRUE(RDDense.Exit[L] == RDRef.Exit[L])
        << What << ": RD Exit at " << L;
  }
}

/// Asserts that the full IFA pipeline produces identical matrices and
/// graphs whichever solver family feeds it.
void expectIfaAgrees(const std::string &Source, bool IsDesign,
                     IFAOptions Opts, const char *What) {
  ElaboratedProgram P = elaborate(Source, IsDesign);
  ProgramCFG CFG = ProgramCFG::build(P);

  IFAOptions RefOpts = Opts;
  RefOpts.RD.ReferenceSolver = true;
  IFAResult Dense = analyzeInformationFlow(P, CFG, Opts);
  IFAResult Ref = analyzeInformationFlow(P, CFG, RefOpts);

  EXPECT_TRUE(Dense.RMgl == Ref.RMgl) << What << ": RMgl differs";
  EXPECT_EQ(Dense.Graph.numNodes(), Ref.Graph.numNodes()) << What;
  EXPECT_EQ(Dense.Graph.sortedEdges(), Ref.Graph.sortedEdges()) << What;
}

//===----------------------------------------------------------------------===//
// Paper figure programs
//===----------------------------------------------------------------------===//

TEST(RdDifferential, Fig3Programs) {
  expectSolversAgree("c := b; b := a;", false, "fig3(a)");
  expectSolversAgree("b := a; c := b;", false, "fig3(b)");
}

TEST(RdDifferential, Fig5ShiftRows) {
  expectSolversAgree(workloads::shiftRowsStatements(), false, "fig5");
  expectSolversAgree(workloads::shiftRowsDesign(), true, "fig5-design");
}

TEST(IfaDifferential, Fig3And4Graphs) {
  expectIfaAgrees("c := b; b := a;", false, {}, "fig3(a)");
  IFAOptions EndOut;
  EndOut.ProgramEndOutgoing = true;
  expectIfaAgrees("b := a; c := b;", false, EndOut, "fig4(b)");
}

TEST(IfaDifferential, Fig5Graphs) {
  IFAOptions EndOut;
  EndOut.ProgramEndOutgoing = true;
  expectIfaAgrees(workloads::shiftRowsStatements(), false, EndOut, "fig5");
  expectIfaAgrees(workloads::shiftRowsDesign(), true, {}, "fig5-design");
}

//===----------------------------------------------------------------------===//
// Synthetic families (the bench_scaling workloads)
//===----------------------------------------------------------------------===//

TEST(RdDifferential, ChainFamily) {
  for (unsigned N : {1u, 2u, 17u, 64u})
    expectSolversAgree(workloads::chainStatements(N), false, "chain");
}

TEST(RdDifferential, LadderFamily) {
  expectSolversAgree(workloads::tempReuseLadder(6, 4), false, "ladder");
}

TEST(RdDifferential, PipelineAndMeshDesigns) {
  expectSolversAgree(workloads::pipelineDesign(5), true, "pipeline");
  for (unsigned Procs : {2u, 3u})
    expectSolversAgree(workloads::syncMeshDesign(Procs, 3, 4), true, "mesh");
}

TEST(RdDifferential, RandomDesigns) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    expectSolversAgree(workloads::randomDesign(Seed, 3, 6, 3), true,
                       "randomDesign");
}

TEST(IfaDifferential, SyntheticGraphs) {
  expectIfaAgrees(workloads::chainStatements(32), false, {}, "chain");
  expectIfaAgrees(workloads::tempReuseLadder(4, 4), false, {}, "ladder");
  expectIfaAgrees(workloads::pipelineDesign(4), true, {}, "pipeline");
  expectIfaAgrees(workloads::syncMeshDesign(3, 3, 4), true, {}, "mesh");
  IFAOptions Improved;
  Improved.Improved = true;
  expectIfaAgrees(workloads::pipelineDesign(3), true, Improved,
                  "pipeline-improved");
  for (uint64_t Seed = 1; Seed <= 6; ++Seed)
    expectIfaAgrees(workloads::randomDesign(Seed, 3, 6, 3), true, {},
                    "randomDesign");
}

TEST(IfaDifferential, AblationVariantsAgree) {
  // The ablation knobs change which sets are computed, not which solver
  // computes them — the dense/reference pair must agree under each.
  IFAOptions NoKill;
  NoKill.RD.UseMustActiveKill = false;
  expectIfaAgrees(workloads::syncMeshDesign(2, 3, 4), true, NoKill,
                  "mesh-nokill");
  IFAOptions HL;
  HL.RD.HsiehLevitanCrossFlow = true;
  expectIfaAgrees(workloads::syncMeshDesign(2, 3, 4), true, HL, "mesh-hl");
}

} // namespace
