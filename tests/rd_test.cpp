//===- tests/rd_test.cpp - Reaching Definitions (paper Tables 4-5) --------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "rd/ReachingDefs.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

struct Analyzed {
  ElaboratedProgram Program;
  ProgramCFG CFG;
  ActiveSignalsResult Active;
  ReachingDefsResult RD;
};

Analyzed analyzeStmts(const std::string &Source,
                      ReachingDefsOptions Opts = {}) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(Source, Diags);
  auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  Analyzed A{std::move(*P), {}, {}, {}};
  A.CFG = ProgramCFG::build(A.Program);
  A.Active = analyzeActiveSignals(A.Program, A.CFG);
  A.RD = analyzeReachingDefs(A.Program, A.CFG, A.Active, Opts);
  return A;
}

Analyzed analyzeDesign(const std::string &Source,
                       ReachingDefsOptions Opts = {}) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  auto P = elaborateDesign(F, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  Analyzed A{std::move(*P), {}, {}, {}};
  A.CFG = ProgramCFG::build(A.Program);
  A.Active = analyzeActiveSignals(A.Program, A.CFG);
  A.RD = analyzeReachingDefs(A.Program, A.CFG, A.Active, Opts);
  return A;
}

unsigned sigId(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabSignal &S : P.Signals)
    if (S.Name == Name)
      return S.Id;
  ADD_FAILURE() << "no signal " << Name;
  return 0;
}

unsigned varId(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabVariable &V : P.Variables)
    if (V.Name == Name)
      return V.Id;
  ADD_FAILURE() << "no variable " << Name;
  return 0;
}

DefPair sig(const ElaboratedProgram &P, const std::string &Name,
            LabelId L) {
  return DefPair{Resource::signal(sigId(P, Name)), L};
}

DefPair var(const ElaboratedProgram &P, const std::string &Name,
            LabelId L) {
  return DefPair{Resource::variable(varId(P, Name)), L};
}

//===----------------------------------------------------------------------===//
// Active signals (Table 4)
//===----------------------------------------------------------------------===//

TEST(ActiveSignals, GenAndKillByWholeAssignment) {
  // [s <= a]^1 [t <= a]^2 [s <= b]^3 [null]^4
  Analyzed A = analyzeStmts("s <= a; t <= a; s <= b; null;");
  EXPECT_TRUE(A.Active.MayExit[1].contains(sig(A.Program, "s", 1)));
  EXPECT_TRUE(A.Active.MayExit[2].contains(sig(A.Program, "t", 2)));
  // The second assignment to s kills the first.
  EXPECT_FALSE(A.Active.MayExit[3].contains(sig(A.Program, "s", 1)));
  EXPECT_TRUE(A.Active.MayExit[3].contains(sig(A.Program, "s", 3)));
  EXPECT_TRUE(A.Active.MayExit[3].contains(sig(A.Program, "t", 2)));
  // Straight-line code: must == may.
  EXPECT_TRUE(A.Active.MustExit[3] == A.Active.MayExit[3]);
}

TEST(ActiveSignals, WaitKillsAllActiveDefs) {
  // [s <= a]^1 [wait on s]^2 [null]^3
  Analyzed A = analyzeStmts("s <= a; wait on s; null;");
  EXPECT_TRUE(A.Active.MayEntry[2].contains(sig(A.Program, "s", 1)));
  EXPECT_TRUE(A.Active.MayExit[2].empty())
      << "synchronization consumes every active value";
}

TEST(ActiveSignals, SliceAssignmentGeneratesWithoutKilling) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(
      "signal v : std_logic_vector(3 downto 0);\n"
      "variable a : std_logic_vector(3 downto 0);\n"
      "variable b : std_logic_vector(1 downto 0);\n"
      "v <= a;\n"              // l1
      "v(1 downto 0) <= b;\n"  // l2: gen only
      "null;",                 // l3
      Diags);
  auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ProgramCFG CFG = ProgramCFG::build(*P);
  ActiveSignalsResult Active = analyzeActiveSignals(*P, CFG);
  // Both definitions reach l3: the slice write does not overwrite the
  // whole active value (Table 4 has no kill for slice assignments).
  EXPECT_TRUE(Active.MayEntry[3].contains(sig(*P, "v", 1)));
  EXPECT_TRUE(Active.MayEntry[3].contains(sig(*P, "v", 2)));
}

TEST(ActiveSignals, MayVsMustAtJoin) {
  // if c then [s <= a]^2 else [null]^3; [null]^5 — s may be active at the
  // join but is not guaranteed to be.
  Analyzed A = analyzeStmts(
      "if c then s <= a; else null; end if; null;");
  // Labels: [c]^1 [s<=a]^2 [null]^3 [null]^4 (join)
  LabelId Join = 4;
  EXPECT_TRUE(A.Active.MayEntry[Join].contains(sig(A.Program, "s", 2)));
  EXPECT_FALSE(A.Active.MustEntry[Join].contains(sig(A.Program, "s", 2)));
}

TEST(ActiveSignals, MustSurvivesWhenBothBranchesAssign) {
  Analyzed A = analyzeStmts(
      "if c then s <= a; else s <= b; end if; null;");
  // Labels: [c]^1 [s<=a]^2 [s<=b]^3 [null]^4.
  EXPECT_TRUE(A.Active.MayEntry[4].contains(sig(A.Program, "s", 2)));
  EXPECT_TRUE(A.Active.MayEntry[4].contains(sig(A.Program, "s", 3)));
  // Neither branch's definition MUST reach (they are alternatives), but
  // the *signal* s must be active via one of them. fst(must) must contain
  // s — the dotted intersection keeps per-(signal,label) pairs, so the
  // pair itself is absent while the union trick in RDcf uses fst().
  EXPECT_FALSE(A.Active.MustEntry[4].contains(sig(A.Program, "s", 2)));
  EXPECT_FALSE(A.Active.MustEntry[4].contains(sig(A.Program, "s", 3)));
}

TEST(ActiveSignals, LoopAccumulatesMayDefs) {
  Analyzed A = analyzeStmts(
      "while c loop s <= a; end loop; null;");
  // Labels: [c]^1 [s<=a]^2 [null]^3.
  EXPECT_TRUE(A.Active.MayEntry[1].contains(sig(A.Program, "s", 2)))
      << "back edge feeds the loop header";
  EXPECT_FALSE(A.Active.MustEntry[1].contains(sig(A.Program, "s", 2)))
      << "zero-trip execution may bypass the assignment";
  EXPECT_TRUE(A.Active.MayEntry[3].contains(sig(A.Program, "s", 2)));
}

TEST(ActiveSignals, MustIsSubsetOfMay) {
  Analyzed A = analyzeStmts(
      "if c then s <= a; t <= b; else s <= b; end if;"
      " while d loop t <= a; end loop; u <= t; null;");
  for (LabelId L = 1; L <= A.CFG.numLabels(); ++L) {
    for (const DefPair &D : A.Active.MustEntry[L])
      EXPECT_TRUE(A.Active.MayEntry[L].contains(D))
          << "RD∩ ⊆ RD∪ violated at label " << L;
    for (const DefPair &D : A.Active.MustExit[L])
      EXPECT_TRUE(A.Active.MayExit[L].contains(D));
  }
}

//===----------------------------------------------------------------------===//
// Variables and present signal values (Table 5)
//===----------------------------------------------------------------------===//

TEST(ReachingDefs, InitialDefsAtEntry) {
  Analyzed A = analyzeStmts("x := a; y := x;");
  // Entry of init: every free variable/signal paired with "?".
  const PairSet &Init = A.RD.Entry[1];
  EXPECT_TRUE(Init.contains(var(A.Program, "x", InitialLabel)));
  EXPECT_TRUE(Init.contains(var(A.Program, "a", InitialLabel)));
  EXPECT_TRUE(Init.contains(var(A.Program, "y", InitialLabel)));
}

TEST(ReachingDefs, VariableAssignmentKillsAndGens) {
  Analyzed A = analyzeStmts("x := a; x := b; y := x;");
  // At l3, only (x,2) reaches.
  EXPECT_TRUE(A.RD.Entry[3].contains(var(A.Program, "x", 2)));
  EXPECT_FALSE(A.RD.Entry[3].contains(var(A.Program, "x", 1)));
  EXPECT_FALSE(A.RD.Entry[3].contains(var(A.Program, "x", InitialLabel)))
      << "(x, ?) is killed by the first assignment";
  // a and b keep their initial defs.
  EXPECT_TRUE(A.RD.Entry[3].contains(var(A.Program, "a", InitialLabel)));
}

TEST(ReachingDefs, BranchesMergeByUnion) {
  Analyzed A = analyzeStmts(
      "if c then x := a; else x := b; end if; y := x;");
  // Labels: [c]^1 [x:=a]^2 [x:=b]^3 [y:=x]^4.
  EXPECT_TRUE(A.RD.Entry[4].contains(var(A.Program, "x", 2)));
  EXPECT_TRUE(A.RD.Entry[4].contains(var(A.Program, "x", 3)));
  EXPECT_FALSE(A.RD.Entry[4].contains(var(A.Program, "x", InitialLabel)));
}

TEST(ReachingDefs, SliceVarAssignDoesNotKill) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(
      "variable v : std_logic_vector(3 downto 0);\n"
      "variable w : std_logic_vector(1 downto 0);\n"
      "v := \"0000\";\n"       // l1
      "v(1 downto 0) := w;\n"  // l2
      "w := v(3 downto 2);",   // l3
      Diags);
  auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ProgramCFG CFG = ProgramCFG::build(*P);
  ActiveSignalsResult Active = analyzeActiveSignals(*P, CFG);
  ReachingDefsResult RD = analyzeReachingDefs(*P, CFG, Active);
  EXPECT_TRUE(RD.Entry[3].contains(var(*P, "v", 1)));
  EXPECT_TRUE(RD.Entry[3].contains(var(*P, "v", 2)));
}

TEST(ReachingDefs, WaitDefinesPresentValueOfMayActiveSignals) {
  // [s <= a]^1 [wait on s]^2 [x := s]^3
  Analyzed A = analyzeStmts("s <= a; wait on s; x := s;");
  EXPECT_TRUE(A.RD.Entry[3].contains(sig(A.Program, "s", 2)))
      << "the present value of s is (re)defined at the wait";
  EXPECT_FALSE(A.RD.Entry[3].contains(sig(A.Program, "s", InitialLabel)))
      << "s must be active at the wait, so (s,?) is killed";
}

TEST(ReachingDefs, ConditionalActiveKeepsInitialDef) {
  // s is only conditionally driven, so RD∩ cannot prove it becomes
  // active; the initial definition must survive the wait.
  Analyzed A = analyzeStmts(
      "if c then s <= a; else null; end if; wait on s; x := s;");
  // Labels: [c]^1 [s<=a]^2 [null]^3 [wait]^4 [x:=s]^5.
  EXPECT_TRUE(A.RD.Entry[5].contains(sig(A.Program, "s", 4)));
  EXPECT_TRUE(A.RD.Entry[5].contains(sig(A.Program, "s", InitialLabel)))
      << "under-approximation refuses to kill the initial value";
}

TEST(ReachingDefs, AblationWithoutMustKill) {
  // With the under-approximation disabled (ABL-RD), even an
  // unconditionally driven signal keeps its stale defs across waits.
  ReachingDefsOptions Opts;
  Opts.UseMustActiveKill = false;
  Analyzed A = analyzeStmts("s <= a; wait on s; x := s;", Opts);
  EXPECT_TRUE(A.RD.Entry[3].contains(sig(A.Program, "s", InitialLabel)))
      << "no kill without RD∩";
  EXPECT_TRUE(A.RD.Entry[3].contains(sig(A.Program, "s", 2)));
}

TEST(ReachingDefs, CrossProcessMayActivePropagates) {
  // p2 never drives s itself; the definition arrives via p1's activity.
  Analyzed A = analyzeDesign(R"(
    entity e is port(clk : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= clk; wait on clk; end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := s;
        q <= x;
        wait on s;
      end process p2;
    end rtl;)");
  // Find p2's wait label and the label of x := s.
  const ProcessCFG &P2 = A.CFG.process(1);
  ASSERT_EQ(P2.WaitLabels.size(), 1u);
  LabelId W2 = P2.WaitLabels[0];
  // After the wait, the present value of s is defined at W2 because s may
  // be active in p1 at its wait.
  unsigned S = sigId(A.Program, "s");
  bool Found = false;
  for (const DefPair &D : A.RD.Exit[W2])
    if (D.N == Resource::signal(S) && D.L == W2)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(ReachingDefs, FactoredEqualsEnumeratedOnMesh) {
  // The factored cf quantification must coincide with the explicit
  // Cartesian-product definition.
  for (unsigned Procs : {2u, 3u}) {
    std::string Source = workloads::syncMeshDesign(Procs, 3, 4);
    ReachingDefsOptions Fact, Enum;
    Enum.EnumerateCrossFlowTuples = true;
    Analyzed AF = analyzeDesign(Source, Fact);
    Analyzed AE = analyzeDesign(Source, Enum);
    ASSERT_EQ(AF.CFG.numLabels(), AE.CFG.numLabels());
    for (LabelId L = 1; L <= AF.CFG.numLabels(); ++L) {
      EXPECT_TRUE(AF.RD.Entry[L] == AE.RD.Entry[L]) << "entry at " << L;
      EXPECT_TRUE(AF.RD.Exit[L] == AE.RD.Exit[L]) << "exit at " << L;
    }
  }
}

TEST(ReachingDefs, FactoredEqualsEnumeratedOnRandomDesigns) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    std::string Source = workloads::randomDesign(Seed, 3, 6, 3);
    ReachingDefsOptions Fact, Enum;
    Enum.EnumerateCrossFlowTuples = true;
    Analyzed AF = analyzeDesign(Source, Fact);
    Analyzed AE = analyzeDesign(Source, Enum);
    for (LabelId L = 1; L <= AF.CFG.numLabels(); ++L) {
      EXPECT_TRUE(AF.RD.Entry[L] == AE.RD.Entry[L])
          << "seed " << Seed << " entry at " << L;
      EXPECT_TRUE(AF.RD.Exit[L] == AE.RD.Exit[L])
          << "seed " << Seed << " exit at " << L;
    }
  }
}

TEST(ReachingDefs, AtProcessEnd) {
  Analyzed A = analyzeStmts("x := a; if c then x := b; end if;");
  PairSet End = A.RD.atProcessEnd(A.CFG.process(0));
  EXPECT_TRUE(End.contains(var(A.Program, "x", 1)));
  EXPECT_TRUE(End.contains(var(A.Program, "x", 3)));
  EXPECT_TRUE(End.contains(var(A.Program, "a", InitialLabel)));
}

//===----------------------------------------------------------------------===//
// PairSet algebra
//===----------------------------------------------------------------------===//

TEST(PairSet, BasicOperations) {
  PairSet S;
  DefPair P1{Resource::variable(1), 5};
  DefPair P2{Resource::signal(1), 5};
  EXPECT_TRUE(S.insert(P1));
  EXPECT_FALSE(S.insert(P1)) << "duplicate";
  S.insert(P2);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(P1));
  PairSet T;
  T.insert(P2);
  S.intersectWith(T);
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.contains(P2));
}

TEST(PairSet, DottedIntersectionOfEmptyFamilyIsEmpty) {
  EXPECT_TRUE(PairSet::dottedIntersection({}).empty());
}

TEST(PairSet, FirstComponents) {
  PairSet S;
  S.insert(DefPair{Resource::signal(3), 1});
  S.insert(DefPair{Resource::signal(3), 2});
  S.insert(DefPair{Resource::variable(1), 7});
  std::vector<Resource> F = S.firstComponents();
  EXPECT_EQ(F.size(), 2u);
}

TEST(PairSet, ResourceDecorations) {
  Resource N = Resource::signal(42);
  EXPECT_TRUE(N.isPlain());
  Resource In = N.incoming(), Out = N.outgoing();
  EXPECT_TRUE(In.isIncoming());
  EXPECT_TRUE(Out.isOutgoing());
  EXPECT_EQ(In.plain(), N);
  EXPECT_EQ(Out.plain(), N);
  EXPECT_EQ(In.id(), 42u);
  EXPECT_TRUE(In.isSignal());
  EXPECT_NE(In, Out);
  EXPECT_NE(In, N);
}

} // namespace
