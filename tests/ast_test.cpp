//===- tests/ast_test.cpp - Types, AST nodes, printer, diagnostics --------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "ast/Type.h"
#include "parse/Lexer.h"
#include "parse/Parser.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

//===----------------------------------------------------------------------===//
// Type
//===----------------------------------------------------------------------===//

TEST(Type, ScalarBasics) {
  Type T = Type::scalar();
  EXPECT_TRUE(T.isScalar());
  EXPECT_FALSE(T.isVector());
  EXPECT_EQ(T.width(), 1u);
  EXPECT_EQ(T.str(), "std_logic");
  EXPECT_FALSE(T.containsIndex(0));
}

TEST(Type, DowntoVector) {
  Type T = Type::vector(7, 0, true);
  EXPECT_EQ(T.width(), 8u);
  EXPECT_EQ(T.left(), 7);
  EXPECT_EQ(T.right(), 0);
  EXPECT_TRUE(T.isDownto());
  EXPECT_EQ(T.str(), "std_logic_vector(7 downto 0)");
  // Position 0 is the leftmost element, i.e. index 7.
  EXPECT_EQ(T.positionOf(7), 0u);
  EXPECT_EQ(T.positionOf(0), 7u);
  EXPECT_TRUE(T.containsIndex(3));
  EXPECT_FALSE(T.containsIndex(8));
  EXPECT_FALSE(T.containsIndex(-1));
}

TEST(Type, ToVector) {
  Type T = Type::vector(0, 7, false);
  EXPECT_EQ(T.width(), 8u);
  EXPECT_FALSE(T.isDownto());
  EXPECT_EQ(T.positionOf(0), 0u);
  EXPECT_EQ(T.positionOf(7), 7u);
  EXPECT_EQ(T.str(), "std_logic_vector(0 to 7)");
}

TEST(Type, NonZeroBasedRanges) {
  Type T = Type::vector(11, 4, true);
  EXPECT_EQ(T.width(), 8u);
  EXPECT_EQ(T.positionOf(11), 0u);
  EXPECT_EQ(T.positionOf(4), 7u);
  EXPECT_FALSE(T.containsIndex(3));
  Type U = Type::vector(3, 10, false);
  EXPECT_EQ(U.width(), 8u);
  EXPECT_EQ(U.positionOf(3), 0u);
  EXPECT_EQ(U.positionOf(10), 7u);
}

TEST(Type, SliceValidation) {
  Type T = Type::vector(7, 0, true);
  EXPECT_TRUE(T.sliceValid(7, 4, true));
  EXPECT_TRUE(T.sliceValid(3, 3, true)) << "single element slice";
  EXPECT_FALSE(T.sliceValid(4, 7, true)) << "runs against direction";
  EXPECT_FALSE(T.sliceValid(7, 4, false)) << "direction mismatch";
  EXPECT_FALSE(T.sliceValid(8, 4, true)) << "out of range";
  EXPECT_EQ(T.slicePosition(7, 4, true), 0u);
  EXPECT_EQ(T.slicePosition(3, 0, true), 4u);
  EXPECT_EQ(T.sliceWidth(7, 4, true), 4u);

  Type U = Type::vector(0, 7, false);
  EXPECT_TRUE(U.sliceValid(2, 5, false));
  EXPECT_FALSE(U.sliceValid(5, 2, false));
  EXPECT_EQ(U.slicePosition(2, 5, false), 2u);
}

TEST(Type, EqualityAndAssignability) {
  Type A = Type::vector(7, 0, true);
  Type B = Type::vector(7, 0, true);
  Type C = Type::vector(0, 7, false);
  Type D = Type::vector(15, 8, true);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_TRUE(A.assignableFrom(C)) << "same width, by-position assignment";
  EXPECT_TRUE(A.assignableFrom(D));
  EXPECT_FALSE(A.assignableFrom(Type::vector(3, 0, true)));
  EXPECT_FALSE(A.assignableFrom(Type::scalar()));
  EXPECT_TRUE(Type::scalar().assignableFrom(Type::scalar()));
}

//===----------------------------------------------------------------------===//
// SourceLoc / Diagnostics
//===----------------------------------------------------------------------===//

TEST(SourceLoc, OrderingAndValidity) {
  SourceLoc A(1, 5), B(1, 9), C(2, 1), Invalid;
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
  EXPECT_TRUE(A.isValid());
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_EQ(A.str(), "1:5");
  EXPECT_EQ(Invalid.str(), "<unknown>");
}

TEST(Diagnostics, CountsAndRendering) {
  DiagnosticEngine D;
  EXPECT_TRUE(D.empty());
  D.warning(SourceLoc(1, 1), "looks odd");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(2, 3), "broken");
  D.note(SourceLoc(2, 4), "because of this");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.all().size(), 3u);
  std::string S = D.str();
  EXPECT_NE(S.find("1:1: warning: looks odd"), std::string::npos);
  EXPECT_NE(S.find("2:3: error: broken"), std::string::npos);
  EXPECT_NE(S.find("2:4: note: because of this"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Expression and statement nodes
//===----------------------------------------------------------------------===//

ExprPtr parseE(const std::string &S) {
  DiagnosticEngine Diags;
  Lexer L(S, Diags);
  Parser P(L.lexAll(), Diags);
  ExprPtr E = P.parseExpression();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return E;
}

TEST(Expr, CloneIsDeepAndPreservesAnnotations) {
  ExprPtr E = parseE("a and (b xor c)");
  // Resolve/type one node manually and check the clone keeps it.
  E->setType(Type::scalar());
  auto *Name = cast<NameExpr>(&cast<BinaryExpr>(E.get())->lhs());
  Name->setRef(ObjectRef::variable(42));
  ExprPtr C = E->clone();
  EXPECT_NE(C.get(), E.get());
  EXPECT_TRUE(C->hasType());
  const auto *ClonedName = cast<NameExpr>(&cast<BinaryExpr>(C.get())->lhs());
  EXPECT_NE(ClonedName, Name);
  EXPECT_TRUE(ClonedName->ref().isVariable());
  EXPECT_EQ(ClonedName->ref().Id, 42u);
}

TEST(Expr, ForEachNameUseVisitsAllLeaves) {
  ExprPtr E = parseE("(a and b) xor not c(3 downto 0)");
  int Names = 0, Slices = 0;
  forEachNameUse(*E, [&](const Expr &Use) {
    if (isa<NameExpr>(&Use))
      ++Names;
    else if (isa<SliceExpr>(&Use))
      ++Slices;
  });
  EXPECT_EQ(Names, 2);
  EXPECT_EQ(Slices, 1);
}

TEST(Expr, SliceSpecWidthAndPrinting) {
  SliceSpec S{7, 4, true};
  EXPECT_EQ(S.width(), 4u);
  EXPECT_EQ(S.str(), "7 downto 4");
  SliceSpec T{2, 5, false};
  EXPECT_EQ(T.width(), 4u);
  EXPECT_EQ(T.str(), "2 to 5");
}

TEST(Stmt, CloneStatementTree) {
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements(
      "if c then x := a; else s <= b; end if; wait on s;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  StmtPtr C = S->clone();
  EXPECT_EQ(stmtToString(*S), stmtToString(*C));
  EXPECT_NE(S.get(), C.get());
}

TEST(Printer, ExprSpellingAndParens) {
  EXPECT_EQ(exprToString(*parseE("a and b or c")), "(a and b) or c");
  EXPECT_EQ(exprToString(*parseE("a and (b or c)")), "a and (b or c)");
  EXPECT_EQ(exprToString(*parseE("not a")), "not a");
  EXPECT_EQ(exprToString(*parseE("a = '1'")), "a = '1'");
  EXPECT_EQ(exprToString(*parseE("x(7 downto 0)")), "x(7 downto 0)");
  EXPECT_EQ(exprToString(*parseE("\"01\" & y")), "\"01\" & y");
  EXPECT_EQ(exprToString(*parseE("a + b * c")), "a + b * c");
  EXPECT_EQ(exprToString(*parseE("(a + b) * c")), "(a + b) * c");
}

TEST(Printer, OperatorSpellings) {
  EXPECT_STREQ(binaryOpSpelling(BinaryOpKind::Xnor), "xnor");
  EXPECT_STREQ(binaryOpSpelling(BinaryOpKind::Ne), "/=");
  EXPECT_STREQ(binaryOpSpelling(BinaryOpKind::Concat), "&");
  EXPECT_STREQ(unaryOpSpelling(UnaryOpKind::Not), "not");
}

TEST(Printer, PortModes) {
  EXPECT_STREQ(portModeSpelling(PortMode::In), "in");
  EXPECT_STREQ(portModeSpelling(PortMode::Out), "out");
  EXPECT_STREQ(portModeSpelling(PortMode::InOut), "inout");
}

TEST(Design, FindEntityAndArchitecture) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(
      "entity a is port(x : in std_logic); end a;\n"
      "entity b is port(x : in std_logic); end b;\n"
      "architecture impl of a is begin end impl;",
      Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_NE(F.findEntity("a"), nullptr);
  EXPECT_NE(F.findEntity("b"), nullptr);
  EXPECT_EQ(F.findEntity("c"), nullptr);
  EXPECT_NE(F.findArchitecture("impl"), nullptr);
  EXPECT_EQ(F.findArchitecture("nope"), nullptr);
}

TEST(Casting, IsaCastDynCast) {
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements("x := a;", Diags);
  Stmt *Raw = S.get();
  EXPECT_TRUE(isa<VarAssignStmt>(Raw));
  EXPECT_TRUE(isa<AssignStmtBase>(Raw)) << "base classof covers both";
  EXPECT_FALSE(isa<SignalAssignStmt>(Raw));
  EXPECT_NE(dyn_cast<VarAssignStmt>(Raw), nullptr);
  EXPECT_EQ(dyn_cast<WaitStmt>(Raw), nullptr);
  EXPECT_EQ(cast<VarAssignStmt>(Raw)->targetName(), "x");
}

} // namespace
