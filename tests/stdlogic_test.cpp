//===- tests/stdlogic_test.cpp - IEEE 1164 value algebra ------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "stdlogic/LogicVector.h"
#include "stdlogic/StdLogic.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

const StdLogic AllValues[9] = {
    StdLogic::U, StdLogic::X, StdLogic::Zero,     StdLogic::One, StdLogic::Z,
    StdLogic::W, StdLogic::L, StdLogic::H,        StdLogic::DontCare};

TEST(StdLogic, CharRoundTrip) {
  for (StdLogic V : AllValues) {
    std::optional<StdLogic> Back = stdLogicFromChar(toChar(V));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, V);
  }
  EXPECT_FALSE(stdLogicFromChar('u').has_value()) << "case sensitive";
  EXPECT_FALSE(stdLogicFromChar('q').has_value());
}

TEST(StdLogic, ResolutionIsCommutative) {
  for (StdLogic A : AllValues)
    for (StdLogic B : AllValues)
      EXPECT_EQ(resolve(A, B), resolve(B, A))
          << toChar(A) << " vs " << toChar(B);
}

TEST(StdLogic, ResolutionIsAssociative) {
  // Required for the paper's fs over multisets to be well defined as a
  // fold.
  for (StdLogic A : AllValues)
    for (StdLogic B : AllValues)
      for (StdLogic C : AllValues)
        EXPECT_EQ(resolve(resolve(A, B), C), resolve(A, resolve(B, C)));
}

TEST(StdLogic, ResolutionIsIdempotentExceptDontCare) {
  // IEEE 1164 resolves '-' with anything (itself included) to 'X': two
  // drivers both saying "don't care" still conflict.
  for (StdLogic A : AllValues) {
    if (A == StdLogic::DontCare)
      continue;
    EXPECT_EQ(resolve(A, A), A);
  }
  EXPECT_EQ(resolve(StdLogic::DontCare, StdLogic::DontCare), StdLogic::X);
}

TEST(StdLogic, ResolutionKnownCases) {
  // Spot checks against the IEEE 1164 resolution table.
  EXPECT_EQ(resolve(StdLogic::Zero, StdLogic::One), StdLogic::X);
  EXPECT_EQ(resolve(StdLogic::Z, StdLogic::One), StdLogic::One);
  EXPECT_EQ(resolve(StdLogic::Z, StdLogic::Zero), StdLogic::Zero);
  EXPECT_EQ(resolve(StdLogic::L, StdLogic::One), StdLogic::One);
  EXPECT_EQ(resolve(StdLogic::H, StdLogic::L), StdLogic::W);
  EXPECT_EQ(resolve(StdLogic::U, StdLogic::DontCare), StdLogic::U);
  EXPECT_EQ(resolve(StdLogic::Z, StdLogic::Z), StdLogic::Z);
  EXPECT_EQ(resolve(StdLogic::DontCare, StdLogic::Zero), StdLogic::X);
}

TEST(StdLogic, UDominatesEverything) {
  for (StdLogic A : AllValues)
    EXPECT_EQ(resolve(StdLogic::U, A), StdLogic::U);
}

TEST(StdLogic, NotTable) {
  EXPECT_EQ(logicNot(StdLogic::Zero), StdLogic::One);
  EXPECT_EQ(logicNot(StdLogic::One), StdLogic::Zero);
  EXPECT_EQ(logicNot(StdLogic::L), StdLogic::One);
  EXPECT_EQ(logicNot(StdLogic::H), StdLogic::Zero);
  EXPECT_EQ(logicNot(StdLogic::U), StdLogic::U);
  EXPECT_EQ(logicNot(StdLogic::Z), StdLogic::X);
  EXPECT_EQ(logicNot(StdLogic::DontCare), StdLogic::X);
}

TEST(StdLogic, AndAbsorption) {
  // '0' and weak zero are annihilators; '1'/'H' are identities up to
  // strength stripping.
  for (StdLogic A : AllValues) {
    EXPECT_EQ(logicAnd(StdLogic::Zero, A), StdLogic::Zero);
    EXPECT_EQ(logicAnd(StdLogic::L, A), StdLogic::Zero);
    EXPECT_EQ(logicOr(StdLogic::One, A), StdLogic::One);
    EXPECT_EQ(logicOr(StdLogic::H, A), StdLogic::One);
  }
  EXPECT_EQ(logicAnd(StdLogic::One, StdLogic::One), StdLogic::One);
  EXPECT_EQ(logicAnd(StdLogic::One, StdLogic::H), StdLogic::One);
}

TEST(StdLogic, DeMorganOnBinaryValues) {
  const StdLogic Bin[2] = {StdLogic::Zero, StdLogic::One};
  for (StdLogic A : Bin)
    for (StdLogic B : Bin) {
      EXPECT_EQ(logicNand(A, B), logicNot(logicAnd(A, B)));
      EXPECT_EQ(logicNor(A, B), logicNot(logicOr(A, B)));
      EXPECT_EQ(logicOr(logicNot(A), logicNot(B)),
                logicNot(logicAnd(A, B)));
    }
}

TEST(StdLogic, XorProperties) {
  EXPECT_EQ(logicXor(StdLogic::One, StdLogic::One), StdLogic::Zero);
  EXPECT_EQ(logicXor(StdLogic::One, StdLogic::Zero), StdLogic::One);
  EXPECT_EQ(logicXor(StdLogic::L, StdLogic::H), StdLogic::One);
  for (StdLogic A : AllValues)
    EXPECT_EQ(logicXor(A, StdLogic::X),
              A == StdLogic::U ? StdLogic::U : StdLogic::X);
}

TEST(StdLogic, ToX01) {
  EXPECT_EQ(toX01(StdLogic::L), StdLogic::Zero);
  EXPECT_EQ(toX01(StdLogic::H), StdLogic::One);
  EXPECT_EQ(toX01(StdLogic::Z), StdLogic::X);
  EXPECT_EQ(toX01(StdLogic::U), StdLogic::X);
  EXPECT_TRUE(isBinary(StdLogic::H));
  EXPECT_FALSE(isBinary(StdLogic::W));
  EXPECT_EQ(toBool(StdLogic::H), true);
  EXPECT_EQ(toBool(StdLogic::L), false);
  EXPECT_FALSE(toBool(StdLogic::Z).has_value());
}

//===----------------------------------------------------------------------===//
// LogicVector
//===----------------------------------------------------------------------===//

TEST(LogicVector, FromStringAndBack) {
  std::optional<LogicVector> V = LogicVector::fromString("01ZXUWLH-");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->size(), 9u);
  EXPECT_EQ(V->str(), "01ZXUWLH-");
  EXPECT_FALSE(LogicVector::fromString("01q").has_value());
}

TEST(LogicVector, DefaultIsAllU) {
  LogicVector V(4);
  EXPECT_EQ(V.str(), "UUUU");
}

TEST(LogicVector, UIntRoundTrip) {
  for (uint64_t X : {0ull, 1ull, 0xa5ull, 0xffull}) {
    LogicVector V = LogicVector::fromUInt(X, 8);
    ASSERT_TRUE(V.toUInt().has_value());
    EXPECT_EQ(*V.toUInt(), X);
  }
  // MSB first.
  EXPECT_EQ(LogicVector::fromUInt(0x80, 8).str(), "10000000");
  EXPECT_EQ(LogicVector::fromUInt(0x01, 8).str(), "00000001");
}

TEST(LogicVector, NonBinaryHasNoUInt) {
  LogicVector V = *LogicVector::fromString("0X01");
  EXPECT_FALSE(V.toUInt().has_value());
  // Weak values strip to binary.
  EXPECT_EQ(*LogicVector::fromString("LH")->toUInt(), 1u);
}

TEST(LogicVector, SliceAndSet) {
  LogicVector V = *LogicVector::fromString("10110010");
  EXPECT_EQ(V.slicePos(0, 4).str(), "1011");
  EXPECT_EQ(V.slicePos(4, 4).str(), "0010");
  V.setSlicePos(2, *LogicVector::fromString("ZZ"));
  EXPECT_EQ(V.str(), "10ZZ0010");
}

TEST(LogicVector, ElementwiseOps) {
  LogicVector A = *LogicVector::fromString("0011");
  LogicVector B = *LogicVector::fromString("0101");
  EXPECT_EQ(A.andOp(B).str(), "0001");
  EXPECT_EQ(A.orOp(B).str(), "0111");
  EXPECT_EQ(A.xorOp(B).str(), "0110");
  EXPECT_EQ(A.notOp().str(), "1100");
  EXPECT_EQ(A.nandOp(B).str(), "1110");
  EXPECT_EQ(A.norOp(B).str(), "1000");
  EXPECT_EQ(A.xnorOp(B).str(), "1001");
}

TEST(LogicVector, Arithmetic) {
  LogicVector A = LogicVector::fromUInt(200, 8);
  LogicVector B = LogicVector::fromUInt(100, 8);
  EXPECT_EQ(*A.add(B).toUInt(), 44u) << "mod 256";
  EXPECT_EQ(*A.sub(B).toUInt(), 100u);
  EXPECT_EQ(*B.sub(A).toUInt(), 156u) << "wraps mod 256";
  EXPECT_EQ(*B.mul(B).toUInt(), (100u * 100u) % 256u);
}

TEST(LogicVector, ArithmeticPoisonedByX) {
  LogicVector A = *LogicVector::fromString("0000000X");
  LogicVector B = LogicVector::fromUInt(1, 8);
  EXPECT_EQ(A.add(B).str(), "XXXXXXXX");
  EXPECT_EQ(A.sub(B).str(), "XXXXXXXX");
  EXPECT_EQ(A.mul(B).str(), "XXXXXXXX");
}

TEST(LogicVector, Comparisons) {
  LogicVector A = LogicVector::fromUInt(5, 4);
  LogicVector B = LogicVector::fromUInt(9, 4);
  EXPECT_EQ(A.ltOp(B), StdLogic::One);
  EXPECT_EQ(A.gtOp(B), StdLogic::Zero);
  EXPECT_EQ(A.leOp(A), StdLogic::One);
  EXPECT_EQ(A.geOp(B), StdLogic::Zero);
  EXPECT_EQ(A.eqOp(A), StdLogic::One);
  EXPECT_EQ(A.neOp(B), StdLogic::One);
}

TEST(LogicVector, StructuralEqualityOnMetaValues) {
  LogicVector A = *LogicVector::fromString("UX");
  EXPECT_EQ(A.eqOp(A), StdLogic::One) << "VHDL '=' is value identity";
  LogicVector B = *LogicVector::fromString("U0");
  EXPECT_EQ(A.eqOp(B), StdLogic::Zero);
  // Orderings poison on meta values instead.
  EXPECT_EQ(A.ltOp(B), StdLogic::X);
}

TEST(LogicVector, Concat) {
  LogicVector A = *LogicVector::fromString("10");
  LogicVector B = *LogicVector::fromString("01Z");
  EXPECT_EQ(A.concat(B).str(), "1001Z");
}

TEST(LogicVector, ResolveElementwise) {
  LogicVector A = *LogicVector::fromString("01Z");
  LogicVector B = *LogicVector::fromString("0ZZ");
  EXPECT_EQ(A.resolveWith(B).str(), "01Z");
}

class ResolutionTableTest : public ::testing::TestWithParam<int> {};

TEST_P(ResolutionTableTest, ForcingBeatsWeakAgainstEveryValue) {
  // For every value v: resolving '0' with v is never a weak value, and
  // resolving with 'Z' is the identity on everything but 'Z' itself.
  StdLogic V = static_cast<StdLogic>(GetParam());
  StdLogic WithZero = resolve(StdLogic::Zero, V);
  EXPECT_TRUE(WithZero == StdLogic::Zero || WithZero == StdLogic::X ||
              WithZero == StdLogic::U);
  if (V != StdLogic::Z) {
    EXPECT_EQ(resolve(StdLogic::Z, V),
              V == StdLogic::DontCare ? StdLogic::X : V);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNineValues, ResolutionTableTest,
                         ::testing::Range(0, 9));

} // namespace
