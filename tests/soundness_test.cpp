//===- tests/soundness_test.cpp - Differential soundness -------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based soundness check of the Information Flow analysis against
/// the SOS simulator: on randomly generated designs, flip one input port,
/// simulate both worlds with identical clocks, and require that ANY
/// observable difference on an output port is matched by an edge
/// input -> output in the analysis graph. This is the operational meaning
/// of the paper's flow graph ("there is a direct edge from one node to
/// another whenever there might be a direct or indirect information flow").
///
/// The converse (edge implies an observable difference) is intentionally
/// NOT asserted — the analysis over-approximates.
///
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "parse/Parser.h"
#include "sim/Simulator.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

constexpr unsigned NumIns = 3;
constexpr unsigned NumOuts = 2;

struct World {
  ElaboratedProgram Program;
  ProgramCFG CFG;
  Digraph Graph;
};

World build(uint64_t Seed) {
  DiagnosticEngine Diags;
  std::string Source =
      workloads::randomPortedDesign(Seed, 3, 6, NumIns, NumOuts);
  DesignFile F = parseDesign(Source, Diags);
  auto P = elaborateDesign(F, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str() << "\n" << Source;
  World W{std::move(*P), {}, {}};
  W.CFG = ProgramCFG::build(W.Program);
  W.Graph = analyzeInformationFlow(W.Program, W.CFG).Graph;
  return W;
}

unsigned sigId(const ElaboratedProgram &P, const std::string &Name) {
  for (const ElabSignal &S : P.Signals)
    if (S.Name == Name)
      return S.Id;
  ADD_FAILURE() << "no signal " << Name;
  return 0;
}

/// Simulates with the given input assignment over several clock ticks and
/// returns the final values of all output ports.
std::vector<std::string> observe(const ElaboratedProgram &P,
                                 const std::vector<StdLogic> &Inputs) {
  Simulator Sim(P);
  for (unsigned I = 0; I < NumIns; ++I)
    Sim.driveSignal(sigId(P, "i_" + std::to_string(I)),
                    Value::scalar(Inputs[I]));
  EXPECT_NE(Sim.run(10000), SimStatus::Stuck) << Sim.stuckReason();
  for (int Tick = 0; Tick < 4; ++Tick) {
    // Keep the inputs driven at every synchronization, like the paper's π
    // process, and toggle the clock.
    for (unsigned I = 0; I < NumIns; ++I)
      Sim.driveSignal(sigId(P, "i_" + std::to_string(I)),
                      Value::scalar(Inputs[I]));
    Sim.driveSignal(sigId(P, "clk"), Value::scalar(Tick % 2 == 0
                                                       ? StdLogic::One
                                                       : StdLogic::Zero));
    EXPECT_NE(Sim.run(10000), SimStatus::Stuck) << Sim.stuckReason();
  }
  std::vector<std::string> Out;
  for (unsigned O = 0; O < NumOuts; ++O)
    Out.push_back(
        Sim.presentValue(sigId(P, "o_" + std::to_string(O))).str());
  return Out;
}

class DifferentialSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSoundness, ObservableInfluenceImpliesEdge) {
  World W = build(GetParam());
  std::vector<StdLogic> Base(NumIns, StdLogic::Zero);
  std::vector<std::string> BaseOut = observe(W.Program, Base);

  for (unsigned Flip = 0; Flip < NumIns; ++Flip) {
    std::vector<StdLogic> Mod = Base;
    Mod[Flip] = StdLogic::One;
    std::vector<std::string> ModOut = observe(W.Program, Mod);
    for (unsigned O = 0; O < NumOuts; ++O) {
      if (BaseOut[O] == ModOut[O])
        continue;
      // Observable influence: the graph must contain the flow.
      std::string In = "i_" + std::to_string(Flip);
      std::string Out = "o_" + std::to_string(O);
      EXPECT_TRUE(W.Graph.hasEdge(In, Out))
          << "simulation observes " << In << " -> " << Out << " ("
          << BaseOut[O] << " vs " << ModOut[O]
          << ") but the analysis has no such edge\nseed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSoundness,
                         ::testing::Range<uint64_t>(1, 41));

TEST(DifferentialSoundness, KnownMuxCase) {
  // Deterministic sanity companion to the random sweep (same harness,
  // hand-written design): q = sel ? d1 : d0.
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(R"(
    entity mux is port(clk : in std_logic; i_0 : in std_logic;
                       i_1 : in std_logic; i_2 : in std_logic;
                       o_0 : out std_logic; o_1 : out std_logic);
    end mux;
    architecture rtl of mux is
    begin
      p : process
      begin
        if i_2 = '1' then
          o_0 <= i_1;
        else
          o_0 <= i_0;
        end if;
        o_1 <= i_2;
        wait on clk;
      end process p;
    end rtl;)",
                             Diags);
  auto P = elaborateDesign(F, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ProgramCFG CFG = ProgramCFG::build(*P);
  Digraph G = analyzeInformationFlow(*P, CFG).Graph;

  std::vector<StdLogic> Base(NumIns, StdLogic::Zero);
  std::vector<std::string> BaseOut = observe(*P, Base);
  std::vector<StdLogic> FlipD0 = Base;
  FlipD0[0] = StdLogic::One;
  std::vector<std::string> D0Out = observe(*P, FlipD0);
  EXPECT_NE(BaseOut[0], D0Out[0]) << "flipping d0 with sel=0 flips o_0";
  EXPECT_TRUE(G.hasEdge("i_0", "o_0"));
  EXPECT_EQ(BaseOut[1], D0Out[1]);
  EXPECT_FALSE(G.hasEdge("i_0", "o_1"))
      << "and the analysis agrees there is no i_0 -> o_1 flow";
}

} // namespace
