//===- tests/driver_test.cpp - Driver layer: sessions and batches ---------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisSession.h"
#include "driver/Batch.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace vif;
using namespace vif::driver;

namespace {

const char MuxSource[] = R"(
entity mux is port(d0 : in std_logic; d1 : in std_logic;
                   sel : in std_logic; q : out std_logic); end mux;
architecture rtl of mux is
begin
  p : process
  begin
    if sel = '1' then
      q <= d1;
    else
      q <= d0;
    end if;
    wait on d0, d1, sel;
  end process p;
end rtl;
)";

const char RegSource[] = R"(
entity reg is port(d : in std_logic; q : out std_logic); end reg;
architecture rtl of reg is
begin
  p : process
  begin
    q <= d;
    wait on d;
  end process p;
end rtl;
)";

TEST(AnalysisSession, ArtifactsAreCachedPointerIdentical) {
  AnalysisSession S = AnalysisSession::fromSource("mux", MuxSource);
  const std::string *Src = S.source();
  ASSERT_NE(Src, nullptr);
  EXPECT_EQ(Src, S.source());

  const DesignFile *Ast = S.designAst();
  ASSERT_NE(Ast, nullptr);
  EXPECT_EQ(Ast, S.designAst());

  const ElaboratedProgram *P = S.program();
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P, S.program());
  EXPECT_EQ(P->Signals.size(), 4u);

  const ProgramCFG *C = S.cfg();
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C, S.cfg());

  const IFAResult *R = S.ifa();
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R, S.ifa());
  EXPECT_TRUE(R->Graph.hasEdge("sel", "q"));

  EXPECT_EQ(S.reachingDefs(), &R->RD);

  const KemmererResult *K = S.kemmerer();
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K, S.kemmerer());

  const AlfpClosureResult *A = S.alfp();
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A, S.alfp());
  EXPECT_TRUE(A->Solved);
  EXPECT_TRUE(A->RMgl == R->RMgl) << "ALFP closure must agree with native";
}

TEST(AnalysisSession, StatementPrograms) {
  SessionOptions Opts;
  Opts.Statements = true;
  AnalysisSession S =
      AnalysisSession::fromSource("paper-a", "c := b; b := a;", Opts);
  const StatementProgram *Ast = S.statementAst();
  ASSERT_NE(Ast, nullptr);
  EXPECT_EQ(S.designAst(), nullptr);
  const IFAResult *R = S.ifa();
  ASSERT_NE(R, nullptr);
  // The paper's example (a): b flows to c and a to b, but a never to c.
  EXPECT_TRUE(R->Graph.hasEdge("b", "c"));
  EXPECT_TRUE(R->Graph.hasEdge("a", "b"));
  EXPECT_FALSE(R->Graph.hasEdge("a", "c"));
}

TEST(AnalysisSession, ParseErrorFailsOnceWithoutDuplicateDiagnostics) {
  AnalysisSession S =
      AnalysisSession::fromSource("broken", "entity broken is port(");
  EXPECT_EQ(S.program(), nullptr);
  EXPECT_FALSE(S.unreadable());
  size_t Reported = S.diagnostics().all().size();
  EXPECT_GT(Reported, 0u);
  // A failed stage is cached like a successful one: no re-parse, no
  // duplicated diagnostics, downstream stages stay null.
  EXPECT_EQ(S.program(), nullptr);
  EXPECT_EQ(S.ifa(), nullptr);
  EXPECT_EQ(S.kemmerer(), nullptr);
  EXPECT_EQ(S.alfp(), nullptr);
  EXPECT_EQ(S.diagnostics().all().size(), Reported);
}

TEST(AnalysisSession, MissingFileIsUnreadable) {
  AnalysisSession S =
      AnalysisSession::fromFile("/nonexistent/definitely-missing.vhd");
  EXPECT_EQ(S.source(), nullptr);
  EXPECT_EQ(S.program(), nullptr);
  EXPECT_TRUE(S.unreadable());
  EXPECT_TRUE(S.diagnostics().empty());
}

TEST(AnalysisSession, TimingsAccumulateForComputedStages) {
  AnalysisSession S = AnalysisSession::fromSource("mux", MuxSource);
  ASSERT_NE(S.ifa(), nullptr);
  const StageTimings &T = S.timings();
  EXPECT_GT(T.totalMs(), 0.0);
  EXPECT_EQ(T.KemmererMs, 0.0) << "unrequested stages must not run";
}

TEST(Batch, KeepsGoingPastFailuresAndPreservesOrder) {
  std::vector<BatchInput> Inputs = {
      {"good-mux", MuxSource},
      {"broken", std::string("entity broken is port(")},
      {"good-reg", RegSource},
  };
  BatchOptions Opts;
  Opts.Mode = BatchMode::Flows;
  Opts.Jobs = 2;
  BatchResult R = runBatch(Inputs, Opts);

  ASSERT_EQ(R.Designs.size(), 3u);
  EXPECT_EQ(R.Designs[0].Name, "good-mux");
  EXPECT_EQ(R.Designs[1].Name, "broken");
  EXPECT_EQ(R.Designs[2].Name, "good-reg");

  EXPECT_TRUE(R.Designs[0].Ok);
  EXPECT_EQ(R.Designs[0].NumEdges, 3u);
  EXPECT_FALSE(R.Designs[1].Ok);
  EXPECT_FALSE(R.Designs[1].Diagnostics.empty());
  EXPECT_TRUE(R.Designs[2].Ok);
  EXPECT_EQ(R.Designs[2].NumEdges, 1u);

  EXPECT_EQ(R.NumOk, 2u);
  EXPECT_EQ(R.NumFailed, 1u);
  EXPECT_FALSE(R.allOk());
}

TEST(Batch, FlowMethodsAgreeOnEdgeCounts) {
  std::vector<BatchInput> Inputs = {{"mux", MuxSource}};
  BatchOptions Opts;
  Opts.Mode = BatchMode::Flows;
  size_t Native = 0;
  for (FlowMethod M :
       {FlowMethod::Native, FlowMethod::Alfp, FlowMethod::Kemmerer}) {
    Opts.Method = M;
    BatchResult R = runBatch(Inputs, Opts);
    ASSERT_TRUE(R.Designs[0].Ok) << flowMethodName(M);
    if (M == FlowMethod::Native)
      Native = R.Designs[0].NumEdges;
    else if (M == FlowMethod::Alfp)
      EXPECT_EQ(R.Designs[0].NumEdges, Native);
    else
      EXPECT_GE(R.Designs[0].NumEdges, Native)
          << "Kemmerer over-approximates";
  }
}

TEST(Batch, ReportModeEvaluatesPolicy) {
  std::vector<BatchInput> Inputs = {{"mux", MuxSource}};
  BatchOptions Opts;
  Opts.Mode = BatchMode::Report;
  Opts.Policy.Forbidden.push_back({"d1", "q"});
  BatchResult R = runBatch(Inputs, Opts);
  ASSERT_TRUE(R.Designs[0].Ok);
  ASSERT_EQ(R.Designs[0].Violations.size(), 1u);
  EXPECT_EQ(R.Designs[0].Violations[0].From, "d1");
  EXPECT_EQ(R.Designs[0].Violations[0].To, "q");
  EXPECT_EQ(R.NumViolations, 1u);
  EXPECT_FALSE(R.Designs[0].ReportText.empty());
}

TEST(Batch, JsonRenderingCarriesPerDesignStatus) {
  std::vector<BatchInput> Inputs = {
      {"good", MuxSource}, {"broken", std::string("entity (")}};
  BatchOptions Opts;
  Opts.Mode = BatchMode::Flows;
  BatchResult R = runBatch(Inputs, Opts);
  std::ostringstream OS;
  printBatchJson(OS, R, Opts);
  std::string J = OS.str();
  EXPECT_NE(J.find("\"command\": \"flows\""), std::string::npos);
  EXPECT_NE(J.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(J.find("\"status\": \"error\""), std::string::npos);
  EXPECT_NE(J.find("\"from\": \"sel\""), std::string::npos);
  EXPECT_NE(J.find("\"summary\""), std::string::npos);
}

TEST(Batch, MatricesModeCountsEntries) {
  std::vector<BatchInput> Inputs = {{"mux", MuxSource}};
  BatchOptions Opts;
  Opts.Mode = BatchMode::Matrices;
  BatchResult R = runBatch(Inputs, Opts);
  ASSERT_TRUE(R.Designs[0].Ok);
  EXPECT_GT(R.Designs[0].RMloEntries, 0u);
  EXPECT_GE(R.Designs[0].RMglEntries, R.Designs[0].RMloEntries);
  EXPECT_FALSE(R.Designs[0].RMglText.empty());
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(jsonEscape("s◦"), "s◦") << "UTF-8 passes through";
}

TEST(Json, WriterNestsAndSeparates) {
  std::ostringstream OS;
  JsonWriter J(OS);
  J.beginObject();
  J.member("a", 1);
  J.key("b");
  J.beginArray();
  J.value("x");
  J.value(true);
  J.null();
  J.endArray();
  J.key("c");
  J.beginObject();
  J.endObject();
  J.endObject();
  EXPECT_EQ(OS.str(), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\",\n    true,\n"
                      "    null\n  ],\n  \"c\": {}\n}\n");
}

} // namespace
