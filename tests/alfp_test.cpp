//===- tests/alfp_test.cpp - ALFP engine + closure cross-check ------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "alfp/Alfp.h"
#include "alfp/AlfpParser.h"
#include "ifa/AlfpClosure.h"
#include "ifa/AlfpRd.h"
#include "parse/Parser.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace vif;
using alfp::Atom;
using alfp::Literal;
using alfp::RelId;
using alfp::Term;
using alfp::Tuple;

namespace {

TEST(Alfp, FactsAndQueries) {
  alfp::Program P;
  RelId Edge = P.relation("edge", 2);
  Atom A = P.atoms().intern("a"), B = P.atoms().intern("b");
  P.fact(Edge, {A, B});
  ASSERT_TRUE(P.solve());
  EXPECT_TRUE(P.contains(Edge, {A, B}));
  EXPECT_FALSE(P.contains(Edge, {B, A}));
  EXPECT_EQ(P.derivedCount(), 0u);
}

TEST(Alfp, NullaryRelationsIterateAndDerive) {
  // Arity-0 relations hold at most one (empty) row; the flat store must
  // still iterate and derive it (regression: a pointer-striding iterator
  // with stride 0 made begin() == end() while size() == 1).
  alfp::Program P;
  RelId Go = P.relation("go", 0);
  RelId Done = P.relation("done", 0);
  P.fact(Go, {});
  P.clause({Literal{Done, false, {}}, {Literal{Go, false, {}}}});
  ASSERT_TRUE(P.solve());
  EXPECT_TRUE(P.contains(Done, {}));
  EXPECT_EQ(P.derivedCount(), 1u);
  size_t Rows = 0;
  for (const Atom *T : P.tuples(Go)) {
    (void)T;
    ++Rows;
  }
  EXPECT_EQ(Rows, 1u);
}

TEST(Alfp, OverwideLiteralIsDiagnosed) {
  // The join loop tracks fresh bindings in a 64-bit position mask; wider
  // body literals must be rejected up front, not silently corrupted.
  alfp::Program P;
  unsigned Wide = static_cast<unsigned>(alfp::Program::MaxLiteralArity) + 1;
  RelId R = P.relation("r", Wide);
  RelId Q = P.relation("q", 1);
  std::vector<Term> Args;
  for (unsigned I = 0; I < Wide; ++I)
    Args.push_back(Term::var(I));
  P.clause({Literal{Q, false, {Term::var(0)}}, {Literal{R, false, Args}}});
  std::string Error;
  EXPECT_FALSE(P.solve(&Error));
  EXPECT_NE(Error.find("arity"), std::string::npos) << Error;
}

TEST(Alfp, TransitiveClosure) {
  alfp::Program P;
  RelId Edge = P.relation("edge", 2);
  RelId Path = P.relation("path", 2);
  Atom N[5];
  for (int I = 0; I < 5; ++I)
    N[I] = P.atoms().intern("n" + std::to_string(I));
  for (int I = 0; I + 1 < 5; ++I)
    P.fact(Edge, {N[I], N[I + 1]});
  Term X = Term::var(0), Y = Term::var(1), Z = Term::var(2);
  P.clause({Literal{Path, false, {X, Y}},
            {Literal{Edge, false, {X, Y}}}});
  P.clause({Literal{Path, false, {X, Z}},
            {Literal{Path, false, {X, Y}}, Literal{Edge, false, {Y, Z}}}});
  ASSERT_TRUE(P.solve());
  EXPECT_EQ(P.tuples(Path).size(), 10u) << "C(5,2) ordered pairs";
  EXPECT_TRUE(P.contains(Path, {N[0], N[4]}));
  EXPECT_FALSE(P.contains(Path, {N[4], N[0]}));
}

TEST(Alfp, SameGeneration) {
  // Classic non-linear recursion: sg(x,y) :- sibling base; sg through
  // parents.
  alfp::Program P;
  RelId Par = P.relation("par", 2);
  RelId Sg = P.relation("sg", 2);
  Atom A = P.atoms().intern("a"), B = P.atoms().intern("b"),
       C = P.atoms().intern("c"), D = P.atoms().intern("d"),
       R = P.atoms().intern("root");
  // root is parent of a and b; a parent of c; b parent of d.
  P.fact(Par, {R, A});
  P.fact(Par, {R, B});
  P.fact(Par, {A, C});
  P.fact(Par, {B, D});
  Term X = Term::var(0), Y = Term::var(1), XP = Term::var(2),
       YP = Term::var(3);
  // sg(x, y) :- par(p, x), par(p, y).
  P.clause({Literal{Sg, false, {X, Y}},
            {Literal{Par, false, {XP, X}}, Literal{Par, false, {XP, Y}}}});
  // sg(x, y) :- par(xp, x), sg(xp, yp), par(yp, y).
  P.clause({Literal{Sg, false, {X, Y}},
            {Literal{Par, false, {XP, X}}, Literal{Sg, false, {XP, YP}},
             Literal{Par, false, {YP, Y}}}});
  ASSERT_TRUE(P.solve());
  EXPECT_TRUE(P.contains(Sg, {C, D})) << "cousins are same generation";
  EXPECT_FALSE(P.contains(Sg, {A, C}));
}

TEST(Alfp, StratifiedNegation) {
  alfp::Program P;
  RelId Node = P.relation("node", 1);
  RelId Edge = P.relation("edge", 2);
  RelId Reach = P.relation("reach", 1);
  RelId Unreach = P.relation("unreach", 1);
  Atom A = P.atoms().intern("a"), B = P.atoms().intern("b"),
       C = P.atoms().intern("c");
  for (Atom N : {A, B, C})
    P.fact(Node, {N});
  P.fact(Edge, {A, B});
  P.fact(Reach, {A});
  Term X = Term::var(0), Y = Term::var(1);
  P.clause({Literal{Reach, false, {Y}},
            {Literal{Reach, false, {X}}, Literal{Edge, false, {X, Y}}}});
  // unreach(x) :- node(x), not reach(x).
  P.clause({Literal{Unreach, false, {X}},
            {Literal{Node, false, {X}}, Literal{Reach, true, {X}}}});
  ASSERT_TRUE(P.solve());
  EXPECT_TRUE(P.contains(Unreach, {C}));
  EXPECT_FALSE(P.contains(Unreach, {A}));
  EXPECT_FALSE(P.contains(Unreach, {B}));
}

TEST(Alfp, NonStratifiableRejected) {
  // p(x) :- node(x), not p(x) — negation through recursion.
  alfp::Program P;
  RelId Node = P.relation("node", 1);
  RelId Prop = P.relation("p", 1);
  P.fact(Node, {P.atoms().intern("a")});
  Term X = Term::var(0);
  P.clause({Literal{Prop, false, {X}},
            {Literal{Node, false, {X}}, Literal{Prop, true, {X}}}});
  std::string Error;
  EXPECT_FALSE(P.solve(&Error));
  EXPECT_NE(Error.find("stratifiable"), std::string::npos);
}

TEST(Alfp, UnsafeClauseRejected) {
  alfp::Program P;
  RelId Q = P.relation("q", 1);
  RelId R = P.relation("r", 1);
  Term X = Term::var(0), Y = Term::var(1);
  // Head variable Y unbound.
  P.clause({Literal{Q, false, {Y}}, {Literal{R, false, {X}}}});
  std::string Error;
  EXPECT_FALSE(P.solve(&Error));
  EXPECT_NE(Error.find("unsafe"), std::string::npos);
}

TEST(Alfp, ConstantsInLiterals) {
  alfp::Program P;
  RelId Color = P.relation("color", 2);
  RelId RedThing = P.relation("red_thing", 1);
  Atom Red = P.atoms().intern("red"), Blue = P.atoms().intern("blue"),
       Car = P.atoms().intern("car"), Sky = P.atoms().intern("sky");
  P.fact(Color, {Car, Red});
  P.fact(Color, {Sky, Blue});
  Term X = Term::var(0);
  P.clause({Literal{RedThing, false, {X}},
            {Literal{Color, false, {X, Term::atom(Red)}}}});
  ASSERT_TRUE(P.solve());
  EXPECT_TRUE(P.contains(RedThing, {Car}));
  EXPECT_EQ(P.tuples(RedThing).size(), 1u);
}

TEST(Alfp, SharedVariableJoin) {
  alfp::Program P;
  RelId E = P.relation("e", 2);
  RelId Tri = P.relation("tri", 3);
  Atom A = P.atoms().intern("a"), B = P.atoms().intern("b"),
       C = P.atoms().intern("c");
  P.fact(E, {A, B});
  P.fact(E, {B, C});
  P.fact(E, {C, A});
  Term X = Term::var(0), Y = Term::var(1), Z = Term::var(2);
  P.clause({Literal{Tri, false, {X, Y, Z}},
            {Literal{E, false, {X, Y}}, Literal{E, false, {Y, Z}},
             Literal{E, false, {Z, X}}}});
  ASSERT_TRUE(P.solve());
  EXPECT_EQ(P.tuples(Tri).size(), 3u) << "three rotations of the triangle";
}

//===----------------------------------------------------------------------===//
// Text syntax (alfp/AlfpParser.h)
//===----------------------------------------------------------------------===//

TEST(AlfpParser, FactsRulesAndQueries) {
  DiagnosticEngine Diags;
  alfp::ParsedProgram PP = alfp::parseAlfp(R"(
    -- a tiny reachability program
    edge(a, b).
    edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    ?path
  )",
                                           Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_TRUE(PP.P.solve());
  ASSERT_EQ(PP.Queries.size(), 1u);
  EXPECT_EQ(alfp::dumpRelation(PP.P, PP.Queries[0]),
            "path(a, b).\npath(a, c).\npath(b, c).\n");
}

TEST(AlfpParser, NegationSyntax) {
  DiagnosticEngine Diags;
  alfp::ParsedProgram PP = alfp::parseAlfp(R"(
    node(a). node(b). node(c).
    edge(a, b).
    reach(a).
    reach(Y) :- reach(X), edge(X, Y).
    dead(X) :- node(X), !reach(X).
    ?dead
  )",
                                           Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_TRUE(PP.P.solve());
  EXPECT_EQ(alfp::dumpRelation(PP.P, PP.Queries[0]), "dead(c).\n");
}

TEST(AlfpParser, VariablesAreUppercase) {
  DiagnosticEngine Diags;
  alfp::ParsedProgram PP = alfp::parseAlfp(
      "likes(alice, Bob_unbound) :- person(alice).", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  std::string Error;
  EXPECT_FALSE(PP.P.solve(&Error)) << "head variable unbound -> unsafe";
  EXPECT_NE(Error.find("unsafe"), std::string::npos);
}

TEST(AlfpParser, Errors) {
  auto ExpectError = [](const char *Source, const char *Fragment) {
    DiagnosticEngine Diags;
    alfp::parseAlfp(Source, Diags);
    EXPECT_TRUE(Diags.hasErrors()) << Source;
    EXPECT_NE(Diags.str().find(Fragment), std::string::npos)
        << "wanted '" << Fragment << "' in:\n"
        << Diags.str();
  };
  ExpectError("p(X).", "facts must be ground");
  ExpectError("!p(a).", "head must not be negated");
  ExpectError("p(a) q(b).", "expected '.' or ':-'");
  ExpectError("p(.", "expected argument");
  ExpectError("?nosuch", "unknown relation");
}

TEST(AlfpParser, CommentsAndWhitespace) {
  DiagnosticEngine Diags;
  alfp::ParsedProgram PP = alfp::parseAlfp(
      "-- leading comment\n  p ( a ) . -- trailing\n?p", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_TRUE(PP.P.solve());
  EXPECT_EQ(alfp::dumpRelation(PP.P, PP.Queries[0]), "p(a).\n");
}

//===----------------------------------------------------------------------===//
// Cross-check: the ALFP encoding of Tables 7-9 equals the native closure
//===----------------------------------------------------------------------===//

void expectAlfpMatchesNative(const std::string &Source, bool IsDesign,
                             IFAOptions Opts) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ProgramCFG CFG = ProgramCFG::build(*P);
  IFAResult Native = analyzeInformationFlow(*P, CFG, Opts);
  AlfpClosureResult Alfp = closeWithAlfp(*P, CFG, Native, Opts);
  ASSERT_TRUE(Alfp.Solved) << Alfp.Error;
  EXPECT_TRUE(Alfp.RMgl == Native.RMgl)
      << "ALFP and native closures disagree on:\n"
      << Source;
}

TEST(AlfpClosure, ProgramA) {
  expectAlfpMatchesNative("c := b; b := a;", false, {});
}

TEST(AlfpClosure, ProgramBImproved) {
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  expectAlfpMatchesNative("b := a; c := b;", false, Opts);
}

TEST(AlfpClosure, SignalDesign) {
  expectAlfpMatchesNative(R"(
    entity e is port(clk : in std_logic; secret : in std_logic;
                     q : out std_logic); end e;
    architecture rtl of e is
      signal s : std_logic;
    begin
      p1 : process begin s <= secret; wait on clk; end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := s;
        q <= x;
        wait on clk;
      end process p2;
    end rtl;)",
                          true, {});
}

TEST(AlfpClosure, SignalDesignImproved) {
  IFAOptions Opts;
  Opts.Improved = true;
  expectAlfpMatchesNative(R"(
    entity e is port(din : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
    begin
      p : process
        variable x : std_logic;
      begin
        wait on din;
        x := din;
        q <= x;
        wait on din;
      end process p;
    end rtl;)",
                          true, Opts);
}

//===----------------------------------------------------------------------===//
// Cross-check: the ALFP encoding of the may-RD equations (Tables 4-5)
//===----------------------------------------------------------------------===//

void expectRdAlfpMatchesNative(const std::string &Source, bool IsDesign) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ProgramCFG CFG = ProgramCFG::build(*P);
  ActiveSignalsResult Active = analyzeActiveSignals(*P, CFG);
  ReachingDefsResult Native = analyzeReachingDefs(*P, CFG, Active);
  AlfpRdResult Alfp = solveRdWithAlfp(*P, CFG, Active);
  ASSERT_TRUE(Alfp.Solved) << Alfp.Error;
  for (LabelId L = 1; L <= CFG.numLabels(); ++L) {
    EXPECT_TRUE(Alfp.MayPhiEntry[L] == Active.MayEntry[L])
        << "RD∪ϕ entry mismatch at label " << L << "\n" << Source;
    EXPECT_TRUE(Alfp.CfEntry[L] == Native.Entry[L])
        << "RDcf entry mismatch at label " << L << "\n" << Source;
  }
}

TEST(AlfpRd, StatementProgram) {
  expectRdAlfpMatchesNative(
      "s <= a; t <= a; s <= b; wait on s; u := s; x := u;", false);
}

TEST(AlfpRd, BranchingAndLoops) {
  expectRdAlfpMatchesNative(
      "if c then s <= a; else x := b; end if;"
      " while d loop t <= x; x := a; end loop; wait on t; y := t;",
      false);
}

TEST(AlfpRd, MultiProcessDesign) {
  expectRdAlfpMatchesNative(R"(
    entity e is port(clk : in std_logic; q : out std_logic); end e;
    architecture rtl of e is
      signal s, t : std_logic;
    begin
      p1 : process begin s <= clk; wait on clk; t <= s; wait on clk;
      end process p1;
      p2 : process
        variable x : std_logic;
      begin
        x := t;
        q <= x;
        wait on t;
      end process p2;
    end rtl;)",
                            true);
}

class AlfpRdRandomCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlfpRdRandomCrossCheck, NativeEqualsAlfpOnRandomDesigns) {
  expectRdAlfpMatchesNative(
      workloads::randomDesign(GetParam(), 2 + GetParam() % 2, 5, 3), true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlfpRdRandomCrossCheck,
                         ::testing::Range<uint64_t>(1, 13));

class AlfpRandomCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlfpRandomCrossCheck, NativeEqualsAlfpOnRandomDesigns) {
  IFAOptions Opts;
  Opts.Improved = GetParam() % 2 == 0;
  expectAlfpMatchesNative(
      workloads::randomDesign(GetParam(), 2 + GetParam() % 3, 5, 3), true,
      Opts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlfpRandomCrossCheck,
                         ::testing::Range<uint64_t>(1, 17));

} // namespace
