//===- tests/sema_test.cpp - Elaboration and type checking ----------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "sema/Elaborator.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace vif;

namespace {

std::optional<ElaboratedProgram> elab(const std::string &Source,
                                      DiagnosticEngine &Diags) {
  DesignFile F = parseDesign(Source, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  return elaborateDesign(F, Diags);
}

std::optional<ElaboratedProgram> elabOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = elab(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return P;
}

void expectError(const std::string &Source, const std::string &Fragment) {
  DiagnosticEngine Diags;
  auto P = elab(Source, Diags);
  EXPECT_FALSE(P.has_value());
  EXPECT_NE(Diags.str().find(Fragment), std::string::npos)
      << "expected diagnostic containing '" << Fragment << "', got:\n"
      << Diags.str();
}

const char *Header = "entity e is port(clk : in std_logic; q : out "
                     "std_logic); end e;\n";

TEST(Elaborator, PortsBecomeSignals) {
  auto P = elabOk("entity e is port(a : in std_logic; b : out std_logic;"
                  " c : inout std_logic_vector(3 downto 0)); end e;\n"
                  "architecture rtl of e is begin b <= a; end rtl;");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Signals.size(), 3u);
  EXPECT_EQ(P->Signals[0].Class, SignalClass::PortIn);
  EXPECT_EQ(P->Signals[1].Class, SignalClass::PortOut);
  EXPECT_EQ(P->Signals[2].Class, SignalClass::PortInOut);
  EXPECT_TRUE(P->Signals[2].isInput());
  EXPECT_TRUE(P->Signals[2].isOutput());
  EXPECT_EQ(P->inputSignals().size(), 2u);
  EXPECT_EQ(P->outputSignals().size(), 2u);
}

TEST(Elaborator, ConcurrentAssignBecomesProcess) {
  auto P = elabOk(std::string(Header) +
                  "architecture rtl of e is begin q <= clk; end rtl;");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Processes.size(), 1u);
  EXPECT_TRUE(P->Processes[0].Looped);
  // Shape: null; while '1' loop (q <= clk; wait on clk) end loop.
  const auto *C = dyn_cast<CompoundStmt>(P->Processes[0].Body.get());
  ASSERT_TRUE(C);
  ASSERT_EQ(C->stmts().size(), 2u);
  EXPECT_TRUE(isa<NullStmt>(C->stmts()[0].get()));
  const auto *W = dyn_cast<WhileStmt>(C->stmts()[1].get());
  ASSERT_TRUE(W);
  const auto *Body = dyn_cast<CompoundStmt>(&W->body());
  ASSERT_TRUE(Body);
  ASSERT_EQ(Body->stmts().size(), 2u);
  EXPECT_TRUE(isa<SignalAssignStmt>(Body->stmts()[0].get()));
  const auto *Wait = dyn_cast<WaitStmt>(Body->stmts()[1].get());
  ASSERT_TRUE(Wait);
  // Sensitive to FS(e) = {clk}.
  ASSERT_EQ(Wait->onSignals().size(), 1u);
  EXPECT_EQ(P->signal(Wait->onSignals()[0]).Name, "clk");
}

TEST(Elaborator, BlockSignalsAreFlattenedAndScoped) {
  auto P = elabOk(std::string(Header) + R"(
    architecture rtl of e is
    begin
      b1 : block
        signal s : std_logic;
      begin
        s <= clk;
      end block b1;
      b2 : block
        signal s : std_logic;
      begin
        q <= s;
      end block b2;
    end rtl;)");
  ASSERT_TRUE(P);
  // Two distinct signals named s, uniquely renamed.
  int Count = 0;
  for (const ElabSignal &S : P->Signals)
    if (S.Name == "s")
      ++Count;
  EXPECT_EQ(Count, 2);
  EXPECT_NE(P->Signals[2].UniqueName, P->Signals[3].UniqueName);
}

TEST(Elaborator, BlockScopeNotVisibleOutside) {
  expectError(std::string(Header) + R"(
    architecture rtl of e is
    begin
      b1 : block
        signal s : std_logic;
      begin
        s <= clk;
      end block b1;
      q <= s;
    end rtl;)",
              "undeclared name 's'");
}

TEST(Elaborator, WaitDefaultsMaterialized) {
  auto P = elabOk(std::string(Header) + R"(
    architecture rtl of e is
      signal a, b : std_logic;
    begin
      p : process
      begin
        q <= a;
        wait until a = b;
      end process p;
    end rtl;)");
  ASSERT_TRUE(P);
  // The wait has no 'on' clause; S defaults to FS(a = b) = {a, b}.
  const auto *C = cast<CompoundStmt>(P->Processes[0].Body.get());
  const auto *W = cast<WhileStmt>(C->stmts()[1].get());
  const auto *Body = cast<CompoundStmt>(&W->body());
  const auto *Wait = cast<WaitStmt>(Body->stmts()[1].get());
  ASSERT_EQ(Wait->onSignals().size(), 2u);
  EXPECT_EQ(P->signal(Wait->onSignals()[0]).Name, "a");
  EXPECT_EQ(P->signal(Wait->onSignals()[1]).Name, "b");
}

TEST(Elaborator, VariablesArePerProcess) {
  auto P = elabOk(std::string(Header) + R"(
    architecture rtl of e is
    begin
      p1 : process
        variable v : std_logic;
      begin
        v := clk; wait on clk;
      end process p1;
      p2 : process
        variable v : std_logic;
      begin
        q <= v; wait on clk;
      end process p2;
    end rtl;)");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Variables.size(), 2u);
  EXPECT_EQ(P->Variables[0].ProcessId, 0u);
  EXPECT_EQ(P->Variables[1].ProcessId, 1u);
  // Qualified unique names on collision.
  EXPECT_EQ(P->Variables[0].UniqueName, "p1.v");
  EXPECT_EQ(P->Variables[1].UniqueName, "p2.v");
}

TEST(Elaborator, TypeErrors) {
  expectError(std::string(Header) +
                  "architecture rtl of e is signal v : "
                  "std_logic_vector(7 downto 0); begin v <= clk; end rtl;",
              "cannot assign");
  expectError(std::string(Header) +
                  "architecture rtl of e is begin q <= clk and "
                  "\"01\"; end rtl;",
              "equal widths");
  expectError(std::string(Header) + R"(
    architecture rtl of e is
    begin
      p : process
        variable v : std_logic_vector(7 downto 0);
      begin
        if v then null; end if;
        wait on clk;
      end process p;
    end rtl;)",
              "condition must be std_logic");
}

TEST(Elaborator, SliceChecks) {
  expectError(std::string(Header) + R"(
    architecture rtl of e is
      signal v : std_logic_vector(7 downto 0);
    begin
      p : process
      begin
        v(8 downto 1) <= v;
        wait on clk;
      end process p;
    end rtl;)",
              "slice");
  expectError(std::string(Header) + R"(
    architecture rtl of e is
      signal v : std_logic_vector(7 downto 0);
    begin
      p : process
      begin
        v(0 to 3) <= v(3 downto 0);
        wait on clk;
      end process p;
    end rtl;)",
              "slice");
}

TEST(Elaborator, PortModeEnforcement) {
  expectError(std::string(Header) +
                  "architecture rtl of e is begin clk <= '1'; end rtl;",
              "cannot assign to 'in' port");
  expectError(std::string(Header) + R"(
    architecture rtl of e is
      signal s : std_logic;
    begin
      s <= q;
    end rtl;)",
              "cannot read 'out' port");
}

TEST(Elaborator, AssignOperatorMismatch) {
  expectError(std::string(Header) + R"(
    architecture rtl of e is
      signal s : std_logic;
    begin
      p : process
      begin
        s := clk;
        wait on clk;
      end process p;
    end rtl;)",
              "use '<=' to assign");
  expectError(std::string(Header) + R"(
    architecture rtl of e is
    begin
      p : process
        variable v : std_logic;
      begin
        v <= clk;
        wait on clk;
      end process p;
    end rtl;)",
              "use ':=' to assign");
}

TEST(Elaborator, WaitOnVariableRejected) {
  expectError(std::string(Header) + R"(
    architecture rtl of e is
    begin
      p : process
        variable v : std_logic;
      begin
        q <= clk;
        wait on v;
      end process p;
    end rtl;)",
              "requires signals");
}

TEST(Elaborator, UndeclaredAndDuplicate) {
  expectError(std::string(Header) +
                  "architecture rtl of e is begin q <= nosuch; end rtl;",
              "undeclared");
  expectError(std::string(Header) + R"(
    architecture rtl of e is
    begin
      p : process
        variable v : std_logic;
        variable v : std_logic;
      begin
        q <= clk;
        wait on clk;
      end process p;
    end rtl;)",
              "redeclaration");
}

TEST(Elaborator, InitializersMustBeLiterals) {
  expectError(std::string(Header) + R"(
    architecture rtl of e is
      signal a : std_logic;
      signal b : std_logic := a;
    begin
      q <= b;
    end rtl;)",
              "must be a literal");
}

TEST(Elaborator, MissingEntity) {
  expectError("architecture rtl of ghost is begin end rtl;",
              "unknown entity");
}

TEST(Elaborator, SelectArchitectureByName) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(
      std::string(Header) +
          "architecture a1 of e is begin q <= clk; end a1;\n"
          "architecture a2 of e is begin q <= not clk; end a2;",
      Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ElaborateOptions Opts;
  Opts.ArchitectureName = "a2";
  auto P = elaborateDesign(F, Diags, Opts);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  EXPECT_EQ(P->Processes.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Statement-program elaboration
//===----------------------------------------------------------------------===//

TEST(ElaborateStatements, ImplicitVariables) {
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements("c := b; b := a;", Diags);
  auto P = elaborateStatements(*S, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  EXPECT_EQ(P->Variables.size(), 3u);
  EXPECT_TRUE(P->Signals.empty());
  EXPECT_FALSE(P->Processes[0].Looped);
}

TEST(ElaborateStatements, SignalTargetsBecomeSignals) {
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements("s <= a; wait on t; b := s;", Diags);
  auto P = elaborateStatements(*S, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  // s and t are signals; a and b variables.
  EXPECT_EQ(P->Signals.size(), 2u);
  EXPECT_EQ(P->Variables.size(), 2u);
}

TEST(ElaborateStatements, ExplicitDeclsRespected) {
  DiagnosticEngine Diags;
  StatementProgram Prog = parseStatementProgram(
      "variable x : std_logic_vector(7 downto 0);\n"
      "x(3 downto 0) := x(7 downto 4);",
      Diags);
  auto P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_EQ(P->Variables.size(), 1u);
  EXPECT_EQ(P->Variables[0].Ty.width(), 8u);
}

TEST(ElaborateStatements, FreeObjectCollection) {
  DiagnosticEngine Diags;
  StmtPtr S = parseStatements("if c then a := b; end if;", Diags);
  auto P = elaborateStatements(*S, Diags);
  ASSERT_TRUE(P);
  std::vector<unsigned> Vars, Sigs;
  collectStmtObjects(*P->Processes[0].Body, Vars, Sigs);
  EXPECT_EQ(Vars.size(), 3u);
  EXPECT_TRUE(Sigs.empty());
}

} // namespace
