//===- tests/rm_differential_test.cpp - Dense matrix & closure oracles ----===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
// The ResourceMatrix runs on a dense sorted-run backend (flat entry
// vector + lazily merged insert buffer); the historical std::set backend
// is retained as ReferenceResourceMatrix. Likewise the Table 8 closure
// propagates BitSet R0 rows over a design-level resource numbering, with
// the sorted-vector rows retained behind IFAOptions::ReferenceClosure.
// These tests drive both backends through identical operation streams on
// the paper figures and the synthetic families and assert byte-identical
// entry sequences, equal flow graphs, and — for Digraph's Warshall
// closure — agreement with a naive DFS reachability oracle on random
// digraphs across word-boundary sizes.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "parse/Parser.h"
#include "workloads/AesVhdl.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vif;

namespace {

ElaboratedProgram elaborate(const std::string &Source, bool IsDesign) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> P;
  if (IsDesign) {
    DesignFile F = parseDesign(Source, Diags);
    if (!Diags.hasErrors())
      P = elaborateDesign(F, Diags);
  } else {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    if (!Diags.hasErrors())
      P = elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return std::move(*P);
}

/// The workload corpus both backend differentials sweep: the paper's
/// figure programs plus one representative of each synthetic family.
struct Workload {
  const char *Name;
  std::string Source;
  bool IsDesign;
};

std::vector<Workload> corpus() {
  std::vector<Workload> C;
  C.push_back({"fig3(a)", "c := b; b := a;", false});
  C.push_back({"fig3(b)", "b := a; c := b;", false});
  C.push_back({"fig5", workloads::shiftRowsStatements(), false});
  C.push_back({"fig5-design", workloads::shiftRowsDesign(), true});
  C.push_back({"chain", workloads::chainStatements(48), false});
  C.push_back({"ladder", workloads::tempReuseLadder(5, 4), false});
  C.push_back({"pipeline", workloads::pipelineDesign(5), true});
  C.push_back({"mesh", workloads::syncMeshDesign(3, 3, 4), true});
  for (uint64_t Seed = 1; Seed <= 4; ++Seed)
    C.push_back({"random", workloads::randomDesign(Seed, 3, 6, 3), true});
  return C;
}

/// Deterministic xorshift for shuffled replay orders.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
};

std::vector<RMEntry> entriesOf(const ResourceMatrix &RM) {
  return std::vector<RMEntry>(RM.begin(), RM.end());
}

std::vector<RMEntry> entriesOf(const ReferenceResourceMatrix &RM) {
  return std::vector<RMEntry>(RM.begin(), RM.end());
}

//===----------------------------------------------------------------------===//
// Matrix backend differential
//===----------------------------------------------------------------------===//

/// Replays \p Entries (shuffled, with duplicate re-inserts and
/// interleaved reads that force flush boundaries) into both backends and
/// asserts identical behavior and identical final entry streams.
void expectBackendsAgree(std::vector<RMEntry> Entries, uint64_t Seed,
                         const char *What) {
  Rng R(Seed);
  for (size_t I = Entries.size(); I > 1; --I)
    std::swap(Entries[I - 1], Entries[R.next() % I]);

  ResourceMatrix Dense;
  ReferenceResourceMatrix Ref;
  size_t Op = 0;
  for (const RMEntry &E : Entries) {
    EXPECT_EQ(Dense.insert(E.N, E.L, E.A), Ref.insert(E.N, E.L, E.A))
        << What << ": first insert disagrees";
    // Re-insert a previously inserted entry now and then: both backends
    // must report it as present.
    if (++Op % 3 == 0) {
      const RMEntry &Dup = Entries[R.next() % Op];
      EXPECT_EQ(Dense.insert(Dup.N, Dup.L, Dup.A),
                Ref.insert(Dup.N, Dup.L, Dup.A))
          << What << ": duplicate insert disagrees";
    }
    // Interleave reads so the dense backend's pending buffer flushes at
    // arbitrary points in the stream.
    if (Op % 7 == 0) {
      EXPECT_EQ(Dense.size(), Ref.size()) << What;
      EXPECT_TRUE(Dense.contains(E.N, E.L, E.A)) << What;
    }
  }
  EXPECT_EQ(Dense.size(), Ref.size()) << What;
  std::vector<RMEntry> DenseStream = entriesOf(Dense);
  std::vector<RMEntry> RefStream = entriesOf(Ref);
  ASSERT_EQ(DenseStream.size(), RefStream.size()) << What;
  for (size_t I = 0; I < DenseStream.size(); ++I)
    EXPECT_TRUE(DenseStream[I] == RefStream[I])
        << What << ": entry stream diverges at " << I;
}

TEST(RmBackendDifferential, ShuffledReplayOnCorpus) {
  for (const Workload &W : corpus()) {
    ElaboratedProgram P = elaborate(W.Source, W.IsDesign);
    ProgramCFG CFG = ProgramCFG::build(P);
    IFAOptions Opts;
    Opts.Improved = true;
    IFAResult R = analyzeInformationFlow(P, CFG, Opts);
    expectBackendsAgree(entriesOf(R.RMlo), 7, W.Name);
    expectBackendsAgree(entriesOf(R.RMgl), 1234567, W.Name);
  }
}

TEST(RmBackendDifferential, BulkR0RowsAgree) {
  // insertR0Rows in all three forms — dense vector rows, dense bitset
  // rows, reference hinted sweep — must land the same entry stream on
  // top of the same RMlo.
  for (const Workload &W : corpus()) {
    ElaboratedProgram P = elaborate(W.Source, W.IsDesign);
    ProgramCFG CFG = ProgramCFG::build(P);
    IFAResult R = analyzeInformationFlow(P, CFG);

    // The closure's post-fixpoint R0 rows, reconstructed from RMgl.
    std::vector<LabelId> Labels = R.RMgl.labels();
    LabelId MaxLabel = Labels.empty() ? 0 : Labels.back();
    std::vector<std::vector<uint32_t>> Rows(static_cast<size_t>(MaxLabel) +
                                            1);
    for (const RMEntry &E : R.RMgl)
      if (E.A == Access::R0)
        Rows[E.L].push_back(E.N.raw());

    // Shared universe for the bitset form.
    std::vector<uint32_t> Universe;
    for (const auto &Row : Rows)
      Universe.insert(Universe.end(), Row.begin(), Row.end());
    std::sort(Universe.begin(), Universe.end());
    Universe.erase(std::unique(Universe.begin(), Universe.end()),
                   Universe.end());
    std::vector<BitSet> BitRows(Rows.size(), BitSet(Universe.size()));
    for (size_t L = 0; L < Rows.size(); ++L)
      for (uint32_t Raw : Rows[L])
        BitRows[L].set(static_cast<size_t>(
            std::lower_bound(Universe.begin(), Universe.end(), Raw) -
            Universe.begin()));

    ResourceMatrix DenseVec, DenseBits;
    ReferenceResourceMatrix Ref;
    for (const RMEntry &E : R.RMlo) {
      DenseVec.insert(E.N, E.L, E.A);
      DenseBits.insert(E.N, E.L, E.A);
      Ref.insert(E.N, E.L, E.A);
    }
    DenseVec.insertR0Rows(Rows);
    DenseBits.insertR0Rows(BitRows, Universe);
    Ref.insertR0Rows(Rows);

    std::vector<RMEntry> FromVec = entriesOf(DenseVec);
    std::vector<RMEntry> FromBits = entriesOf(DenseBits);
    std::vector<RMEntry> FromRef = entriesOf(Ref);
    ASSERT_EQ(FromVec.size(), FromRef.size()) << W.Name;
    ASSERT_EQ(FromBits.size(), FromRef.size()) << W.Name;
    for (size_t I = 0; I < FromRef.size(); ++I) {
      EXPECT_TRUE(FromVec[I] == FromRef[I]) << W.Name << " at " << I;
      EXPECT_TRUE(FromBits[I] == FromRef[I]) << W.Name << " at " << I;
    }
    // And the rebuilt matrix carries the same flows as the pipeline's.
    EXPECT_TRUE(extractFlowGraph(DenseBits, P).sameFlows(
        extractFlowGraph(R.RMgl, P)))
        << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// BitSet closure vs sorted-vector closure
//===----------------------------------------------------------------------===//

void expectClosuresAgree(const Workload &W, IFAOptions Opts) {
  ElaboratedProgram P = elaborate(W.Source, W.IsDesign);
  ProgramCFG CFG = ProgramCFG::build(P);
  IFAOptions RefOpts = Opts;
  RefOpts.ReferenceClosure = true;
  IFAResult Dense = analyzeInformationFlow(P, CFG, Opts);
  IFAResult Ref = analyzeInformationFlow(P, CFG, RefOpts);
  EXPECT_TRUE(Dense.RMlo == Ref.RMlo) << W.Name << ": RMlo differs";
  EXPECT_TRUE(Dense.RMgl == Ref.RMgl) << W.Name << ": RMgl differs";
  EXPECT_TRUE(Dense.Graph.sameFlows(Ref.Graph)) << W.Name << ": graph";
}

TEST(ClosureDifferential, BitsetVsSortedVectorRows) {
  for (const Workload &W : corpus()) {
    expectClosuresAgree(W, {});
    IFAOptions Improved;
    Improved.Improved = true;
    expectClosuresAgree(W, Improved);
  }
}

TEST(ClosureDifferential, EndOutVariant) {
  IFAOptions EndOut;
  EndOut.ProgramEndOutgoing = true;
  expectClosuresAgree({"fig4(b)", "b := a; c := b;", false}, EndOut);
  expectClosuresAgree({"fig5", workloads::shiftRowsStatements(), false},
                      EndOut);
  expectClosuresAgree({"ladder", workloads::tempReuseLadder(4, 4), false},
                      EndOut);
}

//===----------------------------------------------------------------------===//
// Warshall transitive closure vs DFS reachability
//===----------------------------------------------------------------------===//

/// The oracle: an edge a -> b for every path of length >= 1, computed by
/// one DFS per source over the successor lists.
Digraph naiveClosure(const Digraph &G) {
  Digraph C;
  for (std::string_view Name : G.nodes())
    C.addNode(Name);
  size_t N = G.numNodes();
  for (Digraph::NodeId S = 0; S < N; ++S) {
    std::vector<bool> Seen(N, false);
    std::vector<Digraph::NodeId> Stack = {S};
    while (!Stack.empty()) {
      Digraph::NodeId Cur = Stack.back();
      Stack.pop_back();
      for (Digraph::NodeId Succ : G.successors(Cur))
        if (!Seen[Succ]) {
          Seen[Succ] = true;
          C.addEdge(S, Succ);
          Stack.push_back(Succ);
        }
    }
  }
  return C;
}

TEST(TransitiveClosure, MatchesDfsOracleAcrossWordBoundaries) {
  // 0/63/64/65 probe the BitSet word boundaries; the rest are ordinary
  // sizes with varying densities.
  for (size_t N : {0u, 1u, 2u, 7u, 63u, 64u, 65u, 80u}) {
    for (uint64_t Seed : {1u, 2u, 3u}) {
      Rng R(Seed * 977 + N);
      Digraph G;
      for (size_t I = 0; I < N; ++I)
        G.addNode("n" + std::to_string(I));
      if (N > 0) {
        // ~2N random edges, self-loops allowed (the closure must keep
        // them and only them as length->= 1 self-paths on cycles).
        for (size_t E = 0; E < 2 * N; ++E)
          G.addEdge(static_cast<Digraph::NodeId>(R.next() % N),
                    static_cast<Digraph::NodeId>(R.next() % N));
      }
      Digraph Fast = G.transitiveClosure();
      Digraph Oracle = naiveClosure(G);
      EXPECT_TRUE(Fast.sameFlows(Oracle))
          << "N=" << N << " seed=" << Seed << ": " << Fast.numEdges()
          << " vs " << Oracle.numEdges() << " edges";
      EXPECT_TRUE(Fast.isTransitive()) << "N=" << N;
      // Idempotence: closing a closure changes nothing.
      EXPECT_TRUE(Fast.transitiveClosure().sameFlows(Fast)) << "N=" << N;
    }
  }
}

TEST(TransitiveClosure, KemmererChainStillQuadratic) {
  // The chain's closure is the full order relation — N(N+1)/2 edges with
  // the self-free path interpretation: x_i -> x_j for i < j.
  ElaboratedProgram P = elaborate(workloads::chainStatements(70), false);
  ProgramCFG CFG = ProgramCFG::build(P);
  KemmererResult R = analyzeKemmerer(P, CFG);
  EXPECT_EQ(R.Graph.numEdges(), 70u * 71u / 2u);
}

} // namespace
