//===- tests/v1b_test.cpp - Binary v1b response format --------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The v1b binary response format end-to-end: every analysis command
/// round-trips through encode + decode back to the equivalent vifc.v1
/// JSON document, repeated identical requests yield byte-identical
/// frames, frames self-delimit by their header length, malformed frames
/// are rejected and unknown sections are skipped (the version-1
/// compatibility policy). Plus the streaming-edge differential: on
/// fuzz-generated designs forEachSortedEdge must enumerate exactly the
/// legacy sortedEdges() order.
///
//===----------------------------------------------------------------------===//

#include "driver/AnalysisSession.h"
#include "driver/Serve.h"
#include "driver/V1b.h"
#include "gen/Generator.h"
#include "support/Json.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace vif;
using namespace vif::driver;

namespace {

const char MuxSource[] =
    "entity mux is port(d0 : in std_logic; d1 : in std_logic;"
    " sel : in std_logic; q : out std_logic); end mux;"
    " architecture rtl of mux is begin p : process begin"
    " if sel = '1' then q <= d1; else q <= d0; end if;"
    " wait on d0, d1, sel; end process p; end rtl;";

std::string request(const std::string &Command, const std::string &Id,
                    bool V1b, const std::string &ExtraMembers = "") {
  std::ostringstream OS;
  OS << "{\"schema\":\"vifc.v1\",\"id\":" << Id << ",\"command\":\""
     << Command << "\",\"source\":\"" << jsonEscape(MuxSource) << "\"";
  if (V1b)
    OS << ",\"format\":\"v1b\"";
  if (!ExtraMembers.empty())
    OS << "," << ExtraMembers;
  OS << "}";
  return OS.str();
}

/// Re-serializes a parsed JsonValue compactly, skipping the named
/// top-level members — used to strip the non-deterministic timing/cache
/// members a JSON response carries but a v1b frame deliberately omits.
/// Number re-emission matches the decoder's policy (integers in the
/// exact-double range as integers) so both sides compare as strings.
void reserialize(JsonWriter &J, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    J.null();
    break;
  case JsonValue::Kind::Bool:
    J.value(V.asBool());
    break;
  case JsonValue::Kind::Number: {
    double N = V.asNumber();
    if (N == std::floor(N) && std::abs(N) <= 9007199254740992.0)
      J.value(static_cast<long long>(N));
    else
      J.value(N);
    break;
  }
  case JsonValue::Kind::String:
    J.value(V.asString());
    break;
  case JsonValue::Kind::Array:
    J.beginArray();
    for (const JsonValue &E : V.elements())
      reserialize(J, E);
    J.endArray();
    break;
  case JsonValue::Kind::Object:
    J.beginObject();
    for (const auto &[Key, Value] : V.members()) {
      J.key(Key);
      reserialize(J, Value);
    }
    J.endObject();
    break;
  }
}

std::string stripVolatile(const std::string &Json) {
  std::optional<JsonValue> Doc = parseJson(Json);
  EXPECT_TRUE(Doc && Doc->isObject()) << Json;
  if (!Doc || !Doc->isObject())
    return "";
  // contentKey is deterministic but, like the cache bookkeeping, a
  // JSON-transport member a v1b frame deliberately omits.
  const std::set<std::string> Volatile = {"cacheHit", "timings", "wallMs",
                                          "cache", "contentKey"};
  std::ostringstream OS;
  JsonWriter J(OS, JsonStyle::Compact);
  J.beginObject();
  for (const auto &[Key, Value] : Doc->members()) {
    if (Volatile.count(Key))
      continue;
    J.key(Key);
    reserialize(J, Value);
  }
  J.endObject();
  return OS.str();
}

std::string decode(const std::string &Frame) {
  std::string Json, Error;
  EXPECT_TRUE(decodeV1bToJson(Frame, Json, &Error)) << Error;
  return Json;
}

TEST(V1b, RoundTripEveryCommand) {
  struct Case {
    const char *Command;
    const char *Extra;
  } Cases[] = {
      {"check", ""},
      {"flows", ""},
      {"flows", "\"options\":{\"method\":\"kemmerer\"}"},
      {"flows", "\"options\":{\"method\":\"alfp\"}"},
      {"rm", ""},
      {"report",
       "\"options\":{\"forbid\":[{\"from\":\"sel\",\"to\":\"q\"}]}"},
      {"query", "\"options\":{\"from\":\"sel\",\"to\":\"q\"}"},
      {"query", "\"options\":{\"from\":\"q\",\"to\":\"sel\"}"},
  };
  for (const Case &C : Cases) {
    // One server per case so the JSON and v1b requests hit the same
    // warm cache state.
    Server S;
    std::string Json = S.handleLine(request(C.Command, "\"r1\"", false,
                                            C.Extra));
    std::string Frame = S.handleLine(request(C.Command, "\"r1\"", true,
                                             C.Extra));
    ASSERT_EQ(v1bFrameLength(Frame), Frame.size()) << C.Command;
    EXPECT_EQ(decode(Frame), stripVolatile(Json))
        << C.Command << " " << C.Extra;
  }
}

TEST(V1b, ByteDeterministicAcrossRepeats) {
  Server S;
  std::string Req = request("flows", "7", true);
  std::string Cold = S.handleLine(Req); // cache miss
  std::string Warm = S.handleLine(Req); // cache hit
  EXPECT_FALSE(Cold.empty());
  EXPECT_EQ(Cold, Warm);
}

TEST(V1b, IdTokenForms) {
  Server S;
  struct Case {
    const char *IdJson;
    const char *Expect; // expected "id" fragment in the decoded document
  } Cases[] = {
      {"\"req-1\"", "\"id\":\"req-1\""},
      {"42", "\"id\":42"},
      {"null", "\"id\":null"},
  };
  for (const Case &C : Cases) {
    std::string Json = decode(S.handleLine(request("check", C.IdJson, true)));
    EXPECT_NE(Json.find(C.Expect), std::string::npos) << Json;
  }
  // No id at all: no IDNT section, no "id" member.
  std::string NoId = S.handleLine(
      "{\"command\":\"check\",\"format\":\"v1b\",\"source\":\"" +
      jsonEscape(MuxSource) + "\"}");
  EXPECT_EQ(decode(NoId).find("\"id\""), std::string::npos);
}

TEST(V1b, AnalysisFailureStillFrames) {
  Server S;
  std::string Frame = S.handleLine(
      "{\"command\":\"check\",\"format\":\"v1b\",\"source\":\"entity \"}");
  ASSERT_EQ(v1bFrameLength(Frame), Frame.size());
  std::string Json = decode(Frame);
  EXPECT_NE(Json.find("\"status\":\"error\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"diagnostics\""), std::string::npos) << Json;
}

TEST(V1b, ProtocolErrorsStayJson) {
  Server S;
  // Malformed requests answer in JSON even when the client asked for
  // v1b — there may be no valid analysis to frame.
  std::string Resp = S.handleLine(
      "{\"command\":\"check\",\"format\":\"v1b\",\"bogus\":1}");
  EXPECT_EQ(v1bFrameLength(Resp), 0u);
  EXPECT_EQ(Resp[0], '{');
  EXPECT_NE(Resp.find("bad-request"), std::string::npos);
  // Unknown format value.
  Resp = S.handleLine("{\"command\":\"check\",\"format\":\"xml\",\"source\""
                      ":\"x\"}");
  EXPECT_NE(Resp.find("unknown format"), std::string::npos);
  // Non-analysis commands take no format member.
  Resp = S.handleLine("{\"command\":\"ping\",\"format\":\"v1b\"}");
  EXPECT_NE(Resp.find("takes no input or options"), std::string::npos);
}

TEST(V1b, FrameLengthSelfDelimits) {
  Server S;
  std::string A = S.handleLine(request("check", "1", true));
  std::string B = S.handleLine(request("flows", "2", true));
  std::string Stream = A + B;
  ASSERT_EQ(v1bFrameLength(Stream), A.size());
  std::string_view Rest = std::string_view(Stream).substr(A.size());
  ASSERT_EQ(v1bFrameLength(Rest), B.size());
  // Not a frame / too short.
  EXPECT_EQ(v1bFrameLength("VIFB"), 0u);
  EXPECT_EQ(v1bFrameLength("{\"schema\":\"vifc.v1\"}"), 0u);
}

TEST(V1b, DecodeRejectsMalformed) {
  Server S;
  std::string Frame = S.handleLine(request("flows", "1", true));
  std::string Json, Error;
  // Bad magic.
  std::string Bad = Frame;
  Bad[0] = 'X';
  EXPECT_FALSE(decodeV1bToJson(Bad, Json, &Error));
  // Truncated.
  EXPECT_FALSE(decodeV1bToJson(std::string_view(Frame).substr(
                                   0, Frame.size() - 1),
                               Json, &Error));
  // Trailing garbage (frame length no longer matches).
  EXPECT_FALSE(decodeV1bToJson(Frame + "x", Json, &Error));
  // Unsupported version.
  Bad = Frame;
  Bad[4] = 2;
  EXPECT_FALSE(decodeV1bToJson(Bad, Json, &Error));
}

/// Patches little-endian integers inside a frame, to synthesize inputs
/// the encoder never produces.
void pokeU32(std::string &B, size_t Off, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B[Off + I] = static_cast<char>((V >> (8 * I)) & 0xff);
}
void pokeU64(std::string &B, size_t Off, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B[Off + I] = static_cast<char>((V >> (8 * I)) & 0xff);
}

TEST(V1b, UnknownSectionsAreSkipped) {
  Server S;
  std::string Frame = S.handleLine(request("flows", "9", true));
  std::string Expected = decode(Frame);
  // Append an unknown section and patch the header: same document must
  // come back — version 1 readers skip tags they don't know.
  std::string_view Payload = "future";
  std::string Extended = Frame;
  Extended += "ZZZZ";
  std::string Len(8, '\0');
  pokeU64(Len, 0, Payload.size());
  Extended += Len;
  Extended += Payload;
  pokeU64(Extended, 8, Extended.size()); // frame length
  uint32_t Sections = static_cast<uint8_t>(Frame[16]) |
                      (static_cast<uint8_t>(Frame[17]) << 8) |
                      (static_cast<uint8_t>(Frame[18]) << 16) |
                      (static_cast<uint8_t>(Frame[19]) << 24);
  pokeU32(Extended, 16, Sections + 1);
  EXPECT_EQ(decode(Extended), Expected);
}

TEST(V1b, EdgeIndicesOutOfRangeRejected) {
  Server S;
  std::string Frame = S.handleLine(request("flows", "3", true));
  // Find the EDGE section and poke its first "from" index out of range.
  size_t Pos = Frame.find("EDGE");
  ASSERT_NE(Pos, std::string::npos);
  std::string Bad = Frame;
  pokeU32(Bad, Pos + 4 + 8 + 8, 0xfffffffe);
  std::string Json, Error;
  EXPECT_FALSE(decodeV1bToJson(Bad, Json, &Error));
  EXPECT_NE(Error.find("EDGE"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Streaming-edge differential: forEachSortedEdge vs legacy sortedEdges()
//===----------------------------------------------------------------------===//

TEST(V1b, StreamingEdgeOrderMatchesLegacyOnFuzzDesigns) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    std::string Source = gen::generateDesign(Seed);
    AnalysisSession S = AnalysisSession::fromSource(
        "gen-" + std::to_string(Seed), Source, {});
    if (!S.program())
      continue; // generator emits valid designs; belt and braces
    const Digraph &G = S.ifa()->Graph;

    std::vector<std::pair<std::string, std::string>> Legacy =
        G.sortedEdges();
    std::vector<std::pair<std::string, std::string>> Streamed;
    Streamed.reserve(Legacy.size());
    G.forEachSortedEdge([&](std::string_view From, std::string_view To) {
      Streamed.emplace_back(std::string(From), std::string(To));
    });
    EXPECT_EQ(Streamed, Legacy) << "seed " << Seed;

    // And the ranked variant indexes the same pairs through the node
    // rank table.
    const std::vector<Digraph::NodeId> &Ranked = G.rankedNodes();
    size_t I = 0;
    G.forEachSortedEdgeRanked([&](Digraph::NodeId From, Digraph::NodeId To) {
      ASSERT_LT(I, Streamed.size());
      EXPECT_EQ(G.name(Ranked[From]), Streamed[I].first);
      EXPECT_EQ(G.name(Ranked[To]), Streamed[I].second);
      ++I;
    });
    EXPECT_EQ(I, Streamed.size());
  }
}

} // namespace
