//===- driver/V1b.h - The binary columnar v1b response format ---*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `v1b` binary response format: the columnar sibling of the
/// `vifc.v1` JSON analysis documents, for bulk consumers that want edge
/// lists as integers, not escaped strings. A response is one
/// self-delimiting frame of length-prefixed sections (node string table,
/// u32 edge-rank pairs, verdicts); docs/SCHEMA.md specifies the layout
/// normatively and tools/schema_check.py pins the section table against
/// it. Requested with `"format": "v1b"` in `vifc serve` and
/// `--format=v1b` on the CLI. The decoder below maps a frame back to the
/// equivalent design-level `vifc.v1` JSON document (minus the
/// non-deterministic timing/cache members) and exists for tests and as
/// the reference reader.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_DRIVER_V1B_H
#define VIF_DRIVER_V1B_H

#include "driver/Batch.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace vif {
namespace driver {

/// Frame magic ("VIFB") and format version. Versioning policy
/// (docs/SCHEMA.md): adding new optional sections keeps version 1 —
/// readers skip unknown section tags; changing the layout of an existing
/// section bumps the version.
inline constexpr char V1bMagic[4] = {'V', 'I', 'F', 'B'};
inline constexpr uint32_t V1bVersion = 1;

/// Appends one v1b frame for \p D to \p Out. \p IdToken, when non-empty,
/// is the request's "id" rendered as a JSON value token (e.g. `"req-1"`,
/// `42`, `null`) and is echoed in the IDNT section. Timings and cache
/// statistics are deliberately not part of a frame, so identical requests
/// produce byte-identical frames.
void writeV1bDesign(std::string &Out, const DesignResult &D,
                    const BatchOptions &Opts, std::string_view IdToken = {});

/// One frame per design, in input order (the `--format=v1b` CLI output).
void printBatchV1b(std::ostream &OS, const BatchResult &R,
                   const BatchOptions &Opts);

/// The total byte length of the frame starting at \p Bytes, read from its
/// header; 0 when \p Bytes is too short or not a v1b frame. Stream
/// readers use this to split concatenated frames.
uint64_t v1bFrameLength(std::string_view Bytes);

/// Decodes one complete frame back into the equivalent design-level
/// vifc.v1 JSON document (compact style) — the serve JSON response minus
/// its "cacheHit", "timings", "wallMs" and "cache" members. Returns false
/// (setting \p Error when non-null) on malformed input. Unknown section
/// tags are skipped, per the version-1 compatibility policy.
bool decodeV1bToJson(std::string_view Frame, std::string &JsonOut,
                     std::string *Error = nullptr);

} // namespace driver
} // namespace vif

#endif // VIF_DRIVER_V1B_H
