//===- driver/AnalysisSession.cpp -----------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisSession.h"

#include "driver/ArtifactStore.h"
#include "driver/SessionCache.h"
#include "ifa/LocalDeps.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace vif;
using namespace vif::driver;

namespace {

/// Adds the scope's wall-clock duration to a StageTimings field.
class StageTimer {
public:
  explicit StageTimer(double &Out)
      : Out(Out), Start(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    Out += std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
               .count();
  }

private:
  double &Out;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

AnalysisSession AnalysisSession::fromFile(std::string Path,
                                          SessionOptions Opts) {
  AnalysisSession S;
  S.Name = std::move(Path);
  S.Opts = Opts;
  return S;
}

AnalysisSession AnalysisSession::fromSource(std::string Name,
                                            std::string Source,
                                            SessionOptions Opts) {
  AnalysisSession S;
  S.Name = std::move(Name);
  S.Src = std::move(Source);
  S.SourceState = State::Ok;
  S.Opts = Opts;
  return S;
}

bool vif::driver::readSourceFile(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Out = SS.str();
    return true;
  }
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

const std::string *AnalysisSession::source() {
  if (SourceState == State::NotComputed) {
    ++ArtifactEpoch;
    SourceState = State::Failed;
    StageTimer T(Times.ReadMs);
    if (readSourceFile(Name, Src))
      SourceState = State::Ok;
  }
  return SourceState == State::Ok ? &Src : nullptr;
}

bool AnalysisSession::ensureParsed() {
  if (ParseState == State::NotComputed) {
    ++ArtifactEpoch;
    ParseState = State::Failed;
    if (const std::string *Text = source()) {
      StageTimer T(Times.ParseMs);
      if (Opts.Statements)
        StmtAst.emplace(parseStatementProgram(*Text, Diags));
      else
        DesignAst.emplace(parseDesign(*Text, Diags));
      if (!Diags.hasErrors())
        ParseState = State::Ok;
    }
  }
  return ParseState == State::Ok;
}

const DesignFile *AnalysisSession::designAst() {
  if (!ensureParsed() || Opts.Statements)
    return nullptr;
  return &*DesignAst;
}

const StatementProgram *AnalysisSession::statementAst() {
  if (!ensureParsed() || !Opts.Statements)
    return nullptr;
  return &*StmtAst;
}

const ElaboratedProgram *AnalysisSession::program() {
  if (ElabState == State::NotComputed) {
    ++ArtifactEpoch;
    ElabState = State::Failed;
    if (ensureParsed()) {
      StageTimer T(Times.ElaborateMs);
      std::optional<ElaboratedProgram> P =
          Opts.Statements
              ? elaborateStatements(*StmtAst->Body, Diags, &StmtAst->Decls)
              : elaborateDesign(*DesignAst, Diags);
      if (P && !Diags.hasErrors()) {
        Prog.emplace(std::move(*P));
        ElabState = State::Ok;
      }
    }
  }
  return ElabState == State::Ok ? &*Prog : nullptr;
}

const ProgramCFG *AnalysisSession::cfg() {
  if (CfgState == State::NotComputed) {
    ++ArtifactEpoch;
    CfgState = State::Failed;
    if (const ElaboratedProgram *P = program()) {
      StageTimer T(Times.CfgMs);
      Cfg.emplace(ProgramCFG::build(*P));
      CfgState = State::Ok;
    }
  }
  return CfgState == State::Ok ? &*Cfg : nullptr;
}

uint64_t AnalysisSession::designKey() {
  return sessionCacheKey(Src, Opts);
}

const IFAResult *AnalysisSession::ifa() {
  if (IfaState == State::NotComputed) {
    ++ArtifactEpoch;
    IfaState = State::Failed;
    const ElaboratedProgram *P = program();
    const ProgramCFG *C = cfg();
    if (P && C) {
      // Whole-design store hit: the matrices and the flow graph come back
      // without running any solver. The RD tier stays empty until some
      // consumer actually asks for it (reachingDefs()/alfp() upgrade).
      if (Blobs) {
        StageTimer T(Times.StoreMs);
        std::string Payload;
        if (Blobs->load("dsgn", designKey(), Payload)) {
          IFAResult R;
          if (decodeDesignArtifact(Payload, R.RMlo, R.RMgl, R.Graph)) {
            Ifa.emplace(std::move(R));
            IfaPartial = true;
            IfaState = State::Ok;
          }
        }
      }
      if (IfaState != State::Ok)
        computeIfa(*P, *C);
    }
  }
  return IfaState == State::Ok ? &*Ifa : nullptr;
}

void AnalysisSession::computeIfa(const ElaboratedProgram &P,
                                 const ProgramCFG &C) {
  {
    StageTimer T(Times.IfaMs);
    bool Composed = false;
    if (Artifacts) {
      ActiveSignalsResult Active;
      ReachingDefsResult RD;
      IncrementalStats S;
      if (analyzeIncremental(P, C, Opts.Ifa.RD, *Artifacts, Active, RD,
                             &S)) {
        IncStats = S;
        Ifa.emplace(composeInformationFlow(P, C, Opts.Ifa,
                                           computeLocalDeps(P, C),
                                           std::move(Active),
                                           std::move(RD)));
        Composed = true;
      }
    }
    if (!Composed)
      Ifa.emplace(analyzeInformationFlow(P, C, Opts.Ifa));
    IfaState = State::Ok;
  }
  if (Blobs) {
    StageTimer T(Times.StoreMs);
    Blobs->store("dsgn", designKey(), encodeDesignArtifact(*Ifa));
  }
}

void AnalysisSession::upgradeIfa() {
  // Recompute the solver tier and graft it into the partial result. The
  // matrices and the flow graph keep their identity — consumers hold
  // pointers into them — and are byte-equal to the recomputed ones by the
  // store-key guarantee (same source, same options, same pipeline).
  ++ArtifactEpoch;
  IfaPartial = false;
  StageTimer T(Times.IfaMs);
  IFAResult Full;
  bool Composed = false;
  if (Artifacts) {
    ActiveSignalsResult Active;
    ReachingDefsResult RD;
    IncrementalStats S;
    if (analyzeIncremental(*Prog, *Cfg, Opts.Ifa.RD, *Artifacts, Active,
                           RD, &S)) {
      IncStats = S;
      Full = composeInformationFlow(*Prog, *Cfg, Opts.Ifa,
                                    computeLocalDeps(*Prog, *Cfg),
                                    std::move(Active), std::move(RD));
      Composed = true;
    }
  }
  if (!Composed)
    Full = analyzeInformationFlow(*Prog, *Cfg, Opts.Ifa);
  Ifa->RDDagger = std::move(Full.RDDagger);
  Ifa->RDDaggerPhi = std::move(Full.RDDaggerPhi);
  Ifa->OutgoingLabels = std::move(Full.OutgoingLabels);
  Ifa->Active = std::move(Full.Active);
  Ifa->RD = std::move(Full.RD);
}

const ReachingDefsResult *AnalysisSession::reachingDefs() {
  const IFAResult *R = ifa();
  if (R && IfaPartial) {
    upgradeIfa();
    R = &*Ifa;
  }
  return R ? &R->RD : nullptr;
}

const KemmererResult *AnalysisSession::kemmerer() {
  if (KemmererState == State::NotComputed) {
    ++ArtifactEpoch;
    KemmererState = State::Failed;
    const ElaboratedProgram *P = program();
    const ProgramCFG *C = cfg();
    if (P && C) {
      StageTimer T(Times.KemmererMs);
      Kemm.emplace(analyzeKemmerer(*P, *C));
      KemmererState = State::Ok;
    }
  }
  return KemmererState == State::Ok ? &*Kemm : nullptr;
}

const AlfpClosureResult *AnalysisSession::alfp() {
  if (AlfpState == State::NotComputed) {
    ++ArtifactEpoch;
    AlfpState = State::Failed;
    const IFAResult *Native = ifa();
    if (Native && IfaPartial) {
      // The ALFP re-derivation consumes the RD tier a partial result
      // does not carry.
      upgradeIfa();
      Native = &*Ifa;
    }
    if (Native) {
      StageTimer T(Times.AlfpMs);
      Alfp.emplace(closeWithAlfp(*program(), *cfg(), *Native, Opts.Ifa));
      AlfpState = State::Ok;
    }
  }
  return AlfpState == State::Ok ? &*Alfp : nullptr;
}

const query::FlowQueryEngine *AnalysisSession::queryEngine() {
  if (QueryState == State::NotComputed) {
    ++ArtifactEpoch;
    QueryState = State::Failed;
    if (const IFAResult *R = ifa()) {
      if (Blobs) {
        StageTimer T(Times.StoreMs);
        std::string Payload;
        if (Blobs->load("qidx", designKey(), Payload)) {
          if (std::optional<query::FlowQueryEngine> E =
                  decodeQueryIndex(Payload, R->Graph)) {
            Query.emplace(std::move(*E));
            QueryState = State::Ok;
          }
        }
      }
      if (QueryState != State::Ok) {
        {
          StageTimer T(Times.QueryMs);
          Query.emplace(R->Graph);
        }
        QueryState = State::Ok;
        if (Blobs) {
          StageTimer T(Times.StoreMs);
          Blobs->store("qidx", designKey(), encodeQueryIndex(*Query));
        }
      }
    }
  }
  return QueryState == State::Ok ? &*Query : nullptr;
}

size_t AnalysisSession::memoryBytes() const {
  size_t Bytes = sizeof(AnalysisSession) + Src.capacity() + Name.capacity();
  // The parse/elaborate/CFG tier holds trees proportional to the source:
  // every node, label and flow pair traces back to a handful of source
  // bytes. 4x the text is a deliberate flat estimate — the artifacts
  // below are measured exactly and dominate on every warm session.
  if (ParseState == State::Ok)
    Bytes += 4 * Src.size();
  if (Ifa)
    Bytes += Ifa->memoryBytes();
  if (Kemm)
    Bytes += Kemm->memoryBytes();
  if (Alfp)
    Bytes += Alfp->memoryBytes();
  if (Query)
    Bytes += Query->memoryBytes();
  return Bytes;
}
