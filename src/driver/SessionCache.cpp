//===- driver/SessionCache.cpp --------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/SessionCache.h"

#include "support/Hash.h"

using namespace vif;
using namespace vif::driver;

namespace {

/// The single source of truth for which analysis options the cache is
/// sensitive to: calls \p Fn once per option bit, in a fixed order. Both
/// the hash key and the collision comparison derive from this fold, so a
/// new knob added here is automatically in both — adding a field to
/// SessionOptions/IFAOptions/ReachingDefsOptions means extending exactly
/// this function (and the pinning test).
template <typename F>
void foreachOptionBit(const SessionOptions &O, F &&Fn) {
  Fn(O.Statements);
  Fn(O.Ifa.Improved);
  Fn(O.Ifa.ProgramEndOutgoing);
  Fn(O.Ifa.ReferenceClosure);
  Fn(O.Ifa.RD.UseMustActiveKill);
  Fn(O.Ifa.RD.EnumerateCrossFlowTuples);
  Fn(O.Ifa.RD.ReferenceSolver);
  Fn(O.Ifa.RD.HsiehLevitanCrossFlow);
  // ReachingDefsOptions::Jobs is deliberately not folded in: it changes
  // how many threads solve the per-process fixpoints, never any computed
  // artifact, so sessions are shared across --jobs settings (the pinning
  // test asserts the key is insensitive to it).
}

uint64_t packedOptionBits(const SessionOptions &O) {
  uint64_t Bits = 0;
  unsigned I = 0;
  foreachOptionBit(O, [&](bool B) { Bits |= uint64_t(B) << I++; });
  return Bits;
}

bool sameOptions(const SessionOptions &A, const SessionOptions &B) {
  return packedOptionBits(A) == packedOptionBits(B);
}

} // namespace

uint64_t vif::driver::sessionCacheKey(std::string_view Source,
                                      const SessionOptions &Opts) {
  HashBuilder H;
  H.str(Source);
  foreachOptionBit(Opts, [&](bool B) { H.boolean(B); });
  return H.value();
}

SessionCache::Ref SessionCache::acquire(std::string Name,
                                        std::string_view Source,
                                        const SessionOptions &Opts) {
  return acquireImpl(std::move(Name), Source, nullptr, Opts);
}

SessionCache::Ref SessionCache::acquireOwned(std::string Name,
                                             std::string Source,
                                             const SessionOptions &Opts) {
  return acquireImpl(std::move(Name), Source, &Source, Opts);
}

SessionCache::Ref SessionCache::acquireImpl(std::string Name,
                                            std::string_view Source,
                                            std::string *Owned,
                                            const SessionOptions &Opts) {
  uint64_t Key = sessionCacheKey(Source, Opts);
  std::shared_ptr<Entry> E;
  bool Hit = false;
  {
    std::lock_guard<std::mutex> G(M);
    auto It = Index.find(Key);
    // A key match is only a hit when the bytes and options really agree:
    // the key is a 64-bit FNV-1a, and a silent collision would serve one
    // design's covert-channel verdicts for another. On mismatch the new
    // request wins the slot (counted as an eviction + miss).
    if (It != Index.end()) {
      AnalysisSession &Cached = (*It->second)->S;
      // source() is a plain read here: fromSource sessions are born with
      // their text in place.
      const std::string *CachedSrc = Cached.source();
      if (CachedSrc && *CachedSrc == Source &&
          sameOptions(Cached.options(), Opts)) {
        Lru.splice(Lru.begin(), Lru, It->second);
        It->second = Lru.begin();
        E = *It->second;
        Hit = true;
        ++St.Hits;
      } else {
        TotalBytes -= (*It->second)->Bytes;
        Lru.erase(It->second);
        Index.erase(It);
        ++St.Evictions;
      }
    }
    if (!Hit) {
      // Materialize the owned source last: Source may view *Owned.
      E = std::make_shared<Entry>(
          Key, AnalysisSession::fromSource(
                   std::move(Name),
                   Owned ? std::move(*Owned) : std::string(Source), Opts));
      E->S.setArtifacts(ArtTable, ArtStore);
      Lru.push_front(E);
      Index[Key] = Lru.begin();
      ++St.Misses;
      while (Lru.size() > Cap) {
        TotalBytes -= Lru.back()->Bytes;
        Index.erase(Lru.back()->Key);
        Lru.pop_back();
        ++St.Evictions;
      }
    }
  }
  // The per-entry lock is taken outside the cache lock: a worker stuck
  // computing a large design must not block unrelated acquires.
  return Ref(this, std::move(E), Hit);
}

void SessionCache::noteReleased(const std::shared_ptr<Entry> &E,
                                size_t Bytes) {
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(E->Key);
  // Only resident entries participate in the byte total — E may have
  // been evicted (or its slot re-won after a collision) while this Ref
  // held it; its size then dies with the last keepAlive holder.
  if (It == Index.end() || *It->second != E)
    return;
  TotalBytes += Bytes - E->Bytes;
  E->Bytes = Bytes;
  // Evict cold entries while over budget. The floor of one entry means a
  // single design larger than the whole budget still caches — evicting
  // it would only guarantee recomputation.
  while (BytesBudget && TotalBytes > BytesBudget && Lru.size() > 1) {
    TotalBytes -= Lru.back()->Bytes;
    Index.erase(Lru.back()->Key);
    Lru.pop_back();
    ++St.Evictions;
  }
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> G(M);
  return St;
}

size_t SessionCache::size() const {
  std::lock_guard<std::mutex> G(M);
  return Lru.size();
}

size_t SessionCache::bytes() const {
  std::lock_guard<std::mutex> G(M);
  return TotalBytes;
}

void SessionCache::clear() {
  std::lock_guard<std::mutex> G(M);
  Lru.clear();
  Index.clear();
  TotalBytes = 0;
}
