//===- driver/Batch.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"

#include "driver/Serialize.h"
#include "driver/SessionCache.h"
#include "ifa/Report.h"
#include "support/Parallel.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>
#include <thread>

using namespace vif;
using namespace vif::driver;

const char *vif::driver::batchModeName(BatchMode M) {
  switch (M) {
  case BatchMode::Check:
    return "check";
  case BatchMode::Flows:
    return "flows";
  case BatchMode::Matrices:
    return "rm";
  case BatchMode::Report:
    return "report";
  case BatchMode::Query:
    return "query";
  }
  return "?";
}

const char *vif::driver::flowMethodName(FlowMethod M) {
  switch (M) {
  case FlowMethod::Native:
    return "native";
  case FlowMethod::Alfp:
    return "alfp";
  case FlowMethod::Kemmerer:
    return "kemmerer";
  }
  return "?";
}

namespace {

void recordGraph(DesignResult &D, const Digraph &G) {
  D.NumNodes = G.numNodes();
  D.NumEdges = G.numEdges();
  // Borrow the graph instead of copying its edge list; materialize the
  // sorted views now, while the producing session is still exclusively
  // held, so every later read through D.Graph is a pure read.
  G.ensureSortedViews();
  D.Graph = &G;
}

/// Drives \p S through the artifacts \p Opts.Mode needs and records the
/// outcome under the *requested* name (a cached session may have been
/// inserted under a different path with identical content).
DesignResult resultFromSession(AnalysisSession &S, const std::string &Name,
                               const BatchOptions &Opts) {
  DesignResult D;
  D.Name = Name;

  const ElaboratedProgram *P = S.program();
  if (P) {
    D.NumProcesses = P->Processes.size();
    D.NumSignals = P->Signals.size();
    D.NumVariables = P->Variables.size();
    switch (Opts.Mode) {
    case BatchMode::Check:
      D.Ok = true;
      break;
    case BatchMode::Flows:
      switch (Opts.Method) {
      case FlowMethod::Native:
        if (const IFAResult *R = S.ifa()) {
          recordGraph(D, R->Graph);
          D.Ok = true;
        }
        break;
      case FlowMethod::Kemmerer:
        if (const KemmererResult *K = S.kemmerer()) {
          recordGraph(D, K->Graph);
          D.Ok = true;
        }
        break;
      case FlowMethod::Alfp:
        if (const AlfpClosureResult *A = S.alfp()) {
          if (A->Solved) {
            // The ALFP flow graph is extracted per request, not stored in
            // the session, so the result owns it outright.
            auto G = std::make_shared<Digraph>(
                extractFlowGraph(A->RMgl, *P));
            recordGraph(D, *G);
            D.GraphOwner = std::move(G);
            D.Ok = true;
          } else {
            D.Diagnostics = "alfp error: " + A->Error + "\n";
          }
        }
        break;
      }
      break;
    case BatchMode::Matrices:
      if (const IFAResult *R = S.ifa()) {
        D.RMloEntries = R->RMlo.size();
        D.RMglEntries = R->RMgl.size();
        if (Opts.CaptureRenderedText) {
          std::ostringstream Lo, Gl;
          R->RMlo.print(Lo, *P);
          R->RMgl.print(Gl, *P);
          D.RMloText = Lo.str();
          D.RMglText = Gl.str();
        }
        D.Ok = true;
      }
      break;
    case BatchMode::Report:
      if (const IFAResult *R = S.ifa()) {
        recordGraph(D, R->Graph);
        D.Violations = checkFlowPolicy(R->Graph, Opts.Policy);
        if (Opts.CaptureRenderedText) {
          ReportOptions RepOpts;
          RepOpts.Policy = Opts.Policy;
          RepOpts.Violations = &D.Violations;
          D.ReportText = auditReport(*P, *R, RepOpts);
        }
        D.Ok = true;
      }
      break;
    case BatchMode::Query:
      if (const query::FlowQueryEngine *Q = S.queryEngine()) {
        D.NumNodes = Q->numNodes();
        D.NumEdges = Q->numEdges();
        D.Reaches = Q->reaches(Opts.QueryFrom, Opts.QueryTo);
        if (D.Reaches)
          D.Witness = *Q->witnessPath(Opts.QueryFrom, Opts.QueryTo);
        D.Forward = Q->reachableFrom(Opts.QueryFrom);
        D.Backward = Q->whatReaches(Opts.QueryTo);
        D.Ok = true;
      }
      break;
    }
  } else {
    D.Unreadable = S.unreadable();
  }

  // Diagnostics accompany both failures (errors) and successes (warnings,
  // notes); unreadable inputs have none, so synthesize one line.
  D.Diagnostics += S.diagnostics().str();
  if (D.Unreadable)
    D.Diagnostics += "error: cannot read '" + D.Name + "'\n";
  D.Timings = S.timings();
  return D;
}

} // namespace

DesignResult vif::driver::analyzeDesign(const BatchInput &In,
                                        const BatchOptions &Opts) {
  if (Opts.Cache) {
    // Content-addressed path: read the input first so the cache can key
    // on its bytes. Unreadable inputs fall through to the uncached path,
    // which reproduces the cannot-read result cheaply.
    auto ReadStart = std::chrono::steady_clock::now();
    std::string FileSource;
    bool Readable = In.Source || readSourceFile(In.Name, FileSource);
    double ReadMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - ReadStart)
                        .count();
    if (Readable) {
      // Inline sources go in as a view (no copy on a hit); file reads
      // hand their buffer over.
      SessionCache::Ref Ref =
          In.Source
              ? Opts.Cache->acquire(In.Name, *In.Source, Opts.Session)
              : Opts.Cache->acquireOwned(In.Name, std::move(FileSource),
                                         Opts.Session);
      DesignResult D = resultFromSession(Ref.session(), In.Name, Opts);
      // A borrowed graph lives in the cached session; keep the entry (not
      // its lock) alive for as long as the result is.
      if (D.Graph && !D.GraphOwner)
        D.GraphOwner = Ref.keepAlive();
      D.CacheHit = Ref.hit();
      // The session never read a file (it was built fromSource), so its
      // ReadMs is 0; report this request's read instead.
      D.Timings.ReadMs += ReadMs;
      return D;
    }
  }
  auto S = std::make_shared<AnalysisSession>(
      In.Source ? AnalysisSession::fromSource(In.Name, *In.Source,
                                              Opts.Session)
                : AnalysisSession::fromFile(In.Name, Opts.Session));
  S->setArtifacts(Opts.Artifacts, Opts.Store);
  DesignResult D = resultFromSession(*S, In.Name, Opts);
  if (D.Graph && !D.GraphOwner)
    D.GraphOwner = std::move(S);
  return D;
}

BatchResult vif::driver::runBatch(const std::vector<BatchInput> &Inputs,
                                  const BatchOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  BatchResult R;
  R.Designs.resize(Inputs.size());

  size_t N = Inputs.size();
  unsigned HW = std::thread::hardware_concurrency();
  unsigned Jobs = Opts.Jobs ? Opts.Jobs : std::min(HW ? HW : 1u, 8u);
  Jobs = static_cast<unsigned>(std::min<size_t>(Jobs, N));
  // Stdin is a single stream: several "-" inputs racing to drain it from
  // different workers would split it nondeterministically, so serialize.
  size_t StdinInputs = 0;
  for (const BatchInput &In : Inputs)
    if (!In.Source && In.Name == "-")
      ++StdinInputs;
  if (StdinInputs > 1)
    Jobs = 1;

  parallelFor(Jobs, N, [&](size_t I) {
    R.Designs[I] = analyzeDesign(Inputs[I], Opts);
  });

  for (const DesignResult &D : R.Designs) {
    (D.Ok ? R.NumOk : R.NumFailed) += 1;
    R.NumViolations += D.Violations.size();
  }
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  return R;
}

void vif::driver::printBatchText(std::ostream &OS, const BatchResult &R,
                                 const BatchOptions &Opts) {
  for (const DesignResult &D : R.Designs) {
    OS << "== " << D.Name << ": " << (D.Ok ? "ok" : "FAILED") << '\n';
    if (!D.Diagnostics.empty())
      OS << D.Diagnostics;
    if (!D.Ok)
      continue;
    OS << D.NumProcesses << " process(es), " << D.NumSignals
       << " signal(s), " << D.NumVariables << " variable(s)\n";
    switch (Opts.Mode) {
    case BatchMode::Check:
      break;
    case BatchMode::Flows:
      OS << D.NumNodes << " node(s), " << D.NumEdges << " edge(s)\n";
      if (D.Graph)
        D.Graph->forEachSortedEdge(
            [&OS](std::string_view From, std::string_view To) {
              OS << From << " -> " << To << '\n';
            });
      break;
    case BatchMode::Matrices:
      OS << "== RMlo (" << D.RMloEntries << " entries)\n" << D.RMloText;
      OS << "== RMgl (" << D.RMglEntries << " entries)\n" << D.RMglText;
      break;
    case BatchMode::Report:
      OS << D.ReportText;
      break;
    case BatchMode::Query: {
      OS << "reaches(" << Opts.QueryFrom << ", " << Opts.QueryTo
         << "): " << (D.Reaches ? "yes" : "no") << '\n';
      if (D.Reaches) {
        OS << "witness:";
        for (const query::WitnessStep &Step : D.Witness)
          OS << (&Step == D.Witness.data() ? " " : " -> ") << Step.Node;
        OS << '\n';
      }
      auto PrintSet = [&OS](const char *Label,
                            const std::vector<std::string> &Set) {
        OS << Label << " (" << Set.size() << "):";
        for (const std::string &Node : Set)
          OS << ' ' << Node;
        OS << '\n';
      };
      PrintSet("reachable-from", D.Forward);
      PrintSet("what-reaches", D.Backward);
      break;
    }
    }
  }
  OS << "--\n"
     << R.Designs.size() << " design(s): " << R.NumOk << " ok, "
     << R.NumFailed << " failed";
  if (Opts.Mode == BatchMode::Report)
    OS << ", " << R.NumViolations << " policy violation(s)";
  OS << "; " << R.WallMs << " ms\n";
}

void vif::driver::printBatchJson(std::ostream &OS, const BatchResult &R,
                                 const BatchOptions &Opts) {
  writeBatchDocument(OS, R, Opts);
}
