//===- driver/Batch.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"

#include "ifa/Report.h"
#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ostream>
#include <sstream>
#include <thread>

using namespace vif;
using namespace vif::driver;

const char *vif::driver::batchModeName(BatchMode M) {
  switch (M) {
  case BatchMode::Check:
    return "check";
  case BatchMode::Flows:
    return "flows";
  case BatchMode::Matrices:
    return "rm";
  case BatchMode::Report:
    return "report";
  }
  return "?";
}

const char *vif::driver::flowMethodName(FlowMethod M) {
  switch (M) {
  case FlowMethod::Native:
    return "native";
  case FlowMethod::Alfp:
    return "alfp";
  case FlowMethod::Kemmerer:
    return "kemmerer";
  }
  return "?";
}

namespace {

void recordGraph(DesignResult &D, const Digraph &G) {
  D.NumNodes = G.numNodes();
  D.NumEdges = G.numEdges();
  D.Edges = G.sortedEdges();
}

DesignResult analyzeOne(const BatchInput &In, const BatchOptions &Opts) {
  AnalysisSession S =
      In.Source ? AnalysisSession::fromSource(In.Name, *In.Source,
                                              Opts.Session)
                : AnalysisSession::fromFile(In.Name, Opts.Session);
  DesignResult D;
  D.Name = In.Name;

  const ElaboratedProgram *P = S.program();
  if (P) {
    D.NumProcesses = P->Processes.size();
    D.NumSignals = P->Signals.size();
    D.NumVariables = P->Variables.size();
    switch (Opts.Mode) {
    case BatchMode::Check:
      D.Ok = true;
      break;
    case BatchMode::Flows:
      switch (Opts.Method) {
      case FlowMethod::Native:
        if (const IFAResult *R = S.ifa()) {
          recordGraph(D, R->Graph);
          D.Ok = true;
        }
        break;
      case FlowMethod::Kemmerer:
        if (const KemmererResult *K = S.kemmerer()) {
          recordGraph(D, K->Graph);
          D.Ok = true;
        }
        break;
      case FlowMethod::Alfp:
        if (const AlfpClosureResult *A = S.alfp()) {
          if (A->Solved) {
            recordGraph(D, extractFlowGraph(A->RMgl, *P));
            D.Ok = true;
          } else {
            D.Diagnostics = "alfp error: " + A->Error + "\n";
          }
        }
        break;
      }
      break;
    case BatchMode::Matrices:
      if (const IFAResult *R = S.ifa()) {
        D.RMloEntries = R->RMlo.size();
        D.RMglEntries = R->RMgl.size();
        if (Opts.CaptureRenderedText) {
          std::ostringstream Lo, Gl;
          R->RMlo.print(Lo, *P);
          R->RMgl.print(Gl, *P);
          D.RMloText = Lo.str();
          D.RMglText = Gl.str();
        }
        D.Ok = true;
      }
      break;
    case BatchMode::Report:
      if (const IFAResult *R = S.ifa()) {
        recordGraph(D, R->Graph);
        D.Violations = checkFlowPolicy(R->Graph, Opts.Policy);
        if (Opts.CaptureRenderedText) {
          ReportOptions RepOpts;
          RepOpts.Policy = Opts.Policy;
          RepOpts.Violations = &D.Violations;
          D.ReportText = auditReport(*P, *R, RepOpts);
        }
        D.Ok = true;
      }
      break;
    }
  } else {
    D.Unreadable = S.unreadable();
  }

  // Diagnostics accompany both failures (errors) and successes (warnings,
  // notes); unreadable inputs have none, so synthesize one line.
  D.Diagnostics += S.diagnostics().str();
  if (D.Unreadable)
    D.Diagnostics += "error: cannot read '" + D.Name + "'\n";
  D.Timings = S.timings();
  return D;
}

} // namespace

BatchResult vif::driver::runBatch(const std::vector<BatchInput> &Inputs,
                                  const BatchOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  BatchResult R;
  R.Designs.resize(Inputs.size());

  size_t N = Inputs.size();
  unsigned HW = std::thread::hardware_concurrency();
  unsigned Jobs = Opts.Jobs ? Opts.Jobs : std::min(HW ? HW : 1u, 8u);
  Jobs = static_cast<unsigned>(std::min<size_t>(Jobs, N));
  // Stdin is a single stream: several "-" inputs racing to drain it from
  // different workers would split it nondeterministically, so serialize.
  size_t StdinInputs = 0;
  for (const BatchInput &In : Inputs)
    if (!In.Source && In.Name == "-")
      ++StdinInputs;
  if (StdinInputs > 1)
    Jobs = 1;

  if (Jobs <= 1) {
    for (size_t I = 0; I < N; ++I)
      R.Designs[I] = analyzeOne(Inputs[I], Opts);
  } else {
    std::atomic<size_t> Next{0};
    auto Worker = [&] {
      for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1))
        R.Designs[I] = analyzeOne(Inputs[I], Opts);
    };
    std::vector<std::thread> Pool;
    Pool.reserve(Jobs);
    for (unsigned T = 0; T < Jobs; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  for (const DesignResult &D : R.Designs) {
    (D.Ok ? R.NumOk : R.NumFailed) += 1;
    R.NumViolations += D.Violations.size();
  }
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  return R;
}

void vif::driver::printBatchText(std::ostream &OS, const BatchResult &R,
                                 const BatchOptions &Opts) {
  for (const DesignResult &D : R.Designs) {
    OS << "== " << D.Name << ": " << (D.Ok ? "ok" : "FAILED") << '\n';
    if (!D.Diagnostics.empty())
      OS << D.Diagnostics;
    if (!D.Ok)
      continue;
    OS << D.NumProcesses << " process(es), " << D.NumSignals
       << " signal(s), " << D.NumVariables << " variable(s)\n";
    switch (Opts.Mode) {
    case BatchMode::Check:
      break;
    case BatchMode::Flows:
      OS << D.NumNodes << " node(s), " << D.NumEdges << " edge(s)\n";
      for (const auto &[From, To] : D.Edges)
        OS << From << " -> " << To << '\n';
      break;
    case BatchMode::Matrices:
      OS << "== RMlo (" << D.RMloEntries << " entries)\n" << D.RMloText;
      OS << "== RMgl (" << D.RMglEntries << " entries)\n" << D.RMglText;
      break;
    case BatchMode::Report:
      OS << D.ReportText;
      break;
    }
  }
  OS << "--\n"
     << R.Designs.size() << " design(s): " << R.NumOk << " ok, "
     << R.NumFailed << " failed";
  if (Opts.Mode == BatchMode::Report)
    OS << ", " << R.NumViolations << " policy violation(s)";
  OS << "; " << R.WallMs << " ms\n";
}

void vif::driver::printBatchJson(std::ostream &OS, const BatchResult &R,
                                 const BatchOptions &Opts) {
  JsonWriter J(OS);
  J.beginObject();
  J.member("command", batchModeName(Opts.Mode));
  if (Opts.Mode == BatchMode::Flows)
    J.member("method", flowMethodName(Opts.Method));

  J.key("designs");
  J.beginArray();
  for (const DesignResult &D : R.Designs) {
    J.beginObject();
    J.member("file", D.Name);
    J.member("status", D.Ok ? "ok" : "error");
    if (D.Unreadable)
      J.member("unreadable", true);
    if (!D.Diagnostics.empty())
      J.member("diagnostics", D.Diagnostics);
    if (D.Ok) {
      J.member("processes", D.NumProcesses);
      J.member("signals", D.NumSignals);
      J.member("variables", D.NumVariables);
    }
    if (D.Ok &&
        (Opts.Mode == BatchMode::Flows || Opts.Mode == BatchMode::Report)) {
      J.key("graph");
      J.beginObject();
      J.member("nodes", D.NumNodes);
      J.member("edges", D.NumEdges);
      J.key("edgeList");
      J.beginArray();
      for (const auto &[From, To] : D.Edges) {
        J.beginObject();
        J.member("from", From);
        J.member("to", To);
        J.endObject();
      }
      J.endArray();
      J.endObject();
    }
    if (D.Ok && Opts.Mode == BatchMode::Matrices) {
      J.key("matrices");
      J.beginObject();
      J.member("rmlo", D.RMloEntries);
      J.member("rmgl", D.RMglEntries);
      J.endObject();
    }
    if (D.Ok && Opts.Mode == BatchMode::Report) {
      J.key("violations");
      J.beginArray();
      for (const PolicyViolation &V : D.Violations) {
        J.beginObject();
        J.member("from", V.From);
        J.member("to", V.To);
        J.member("viaPath", V.ViaPath);
        J.endObject();
      }
      J.endArray();
    }
    J.key("timings");
    J.beginObject();
    J.member("readMs", D.Timings.ReadMs);
    J.member("parseMs", D.Timings.ParseMs);
    J.member("elaborateMs", D.Timings.ElaborateMs);
    J.member("cfgMs", D.Timings.CfgMs);
    J.member("ifaMs", D.Timings.IfaMs);
    J.member("kemmererMs", D.Timings.KemmererMs);
    J.member("alfpMs", D.Timings.AlfpMs);
    J.member("totalMs", D.Timings.totalMs());
    J.endObject();
    J.endObject();
  }
  J.endArray();

  J.key("summary");
  J.beginObject();
  J.member("designs", R.Designs.size());
  J.member("ok", R.NumOk);
  J.member("failed", R.NumFailed);
  if (Opts.Mode == BatchMode::Report)
    J.member("violations", R.NumViolations);
  J.member("wallMs", R.WallMs);
  J.endObject();
  J.endObject();
}
