//===- driver/V1b.cpp -----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/V1b.h"

#include "support/Json.h"
#include "support/JsonParse.h"

#include <cmath>
#include <cstring>
#include <ostream>
#include <sstream>
#include <vector>

using namespace vif;
using namespace vif::driver;

namespace {

//===----------------------------------------------------------------------===//
// Little-endian primitives
//===----------------------------------------------------------------------===//

void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }

void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// u32 length prefix + raw bytes.
void putStr(std::string &B, std::string_view S) {
  putU32(B, static_cast<uint32_t>(S.size()));
  B.append(S.data(), S.size());
}

/// Accumulates sections, then wraps them in the frame header. Section
/// payloads are built independently so each one's length prefix is exact.
class FrameBuilder {
public:
  /// Tags are written through this single call so tools/schema_check.py
  /// can grep the emitted section table out of this file.
  void section(const char (&Tag)[5], std::string Payload) {
    Body.append(Tag, 4);
    putU64(Body, Payload.size());
    Body += Payload;
    ++Count;
  }

  void finish(std::string &Out) const {
    // Header: magic, u32 version, u64 total frame length, u32 section
    // count, then the section bytes.
    Out.append(V1bMagic, 4);
    putU32(Out, V1bVersion);
    putU64(Out, 4 + 4 + 8 + 4 + Body.size());
    putU32(Out, Count);
    Out += Body;
  }

private:
  std::string Body;
  uint32_t Count = 0;
};

uint8_t commandCode(BatchMode M) {
  switch (M) {
  case BatchMode::Check:
    return 0;
  case BatchMode::Flows:
    return 1;
  case BatchMode::Matrices:
    return 2;
  case BatchMode::Report:
    return 3;
  case BatchMode::Query:
    return 4;
  }
  return 0xff;
}

uint8_t methodCode(FlowMethod M) {
  switch (M) {
  case FlowMethod::Native:
    return 0;
  case FlowMethod::Alfp:
    return 1;
  case FlowMethod::Kemmerer:
    return 2;
  }
  return 0xff;
}

const char *commandName(uint8_t Code) {
  switch (Code) {
  case 0:
    return "check";
  case 1:
    return "flows";
  case 2:
    return "rm";
  case 3:
    return "report";
  case 4:
    return "query";
  }
  return nullptr;
}

const char *methodName(uint8_t Code) {
  switch (Code) {
  case 0:
    return "native";
  case 1:
    return "alfp";
  case 2:
    return "kemmerer";
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Decoder cursor
//===----------------------------------------------------------------------===//

/// Bounds-checked little-endian reader over one byte range. Every getter
/// sets Failed (and returns 0/"") past the end instead of reading wild.
struct Cursor {
  explicit Cursor(std::string_view Bytes) : Bytes(Bytes) {}

  bool take(size_t N, std::string_view &Out) {
    if (Failed || Bytes.size() - Off < N) {
      Failed = true;
      return false;
    }
    Out = Bytes.substr(Off, N);
    Off += N;
    return true;
  }

  uint8_t u8() {
    std::string_view S;
    return take(1, S) ? static_cast<uint8_t>(S[0]) : 0;
  }

  uint32_t u32() {
    std::string_view S;
    if (!take(4, S))
      return 0;
    uint32_t V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | static_cast<uint8_t>(S[I]);
    return V;
  }

  uint64_t u64() {
    std::string_view S;
    if (!take(8, S))
      return 0;
    uint64_t V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | static_cast<uint8_t>(S[I]);
    return V;
  }

  std::string_view str() {
    uint32_t N = u32();
    std::string_view S;
    take(N, S);
    return S;
  }

  bool atEnd() const { return !Failed && Off == Bytes.size(); }

  std::string_view Bytes;
  size_t Off = 0;
  bool Failed = false;
};

bool fail(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

void vif::driver::writeV1bDesign(std::string &Out, const DesignResult &D,
                                 const BatchOptions &Opts,
                                 std::string_view IdToken) {
  FrameBuilder F;
  {
    std::string Meta;
    putU8(Meta, commandCode(Opts.Mode));
    putU8(Meta, methodCode(Opts.Method));
    putU8(Meta, D.Ok ? 1 : 0);
    putU8(Meta, D.Unreadable ? 1 : 0);
    putStr(Meta, D.Name);
    putU64(Meta, D.NumProcesses);
    putU64(Meta, D.NumSignals);
    putU64(Meta, D.NumVariables);
    F.section("META", std::move(Meta));
  }
  if (!IdToken.empty())
    F.section("IDNT", std::string(IdToken));
  if (!D.Diagnostics.empty())
    F.section("DIAG", D.Diagnostics);
  if (D.Ok &&
      (Opts.Mode == BatchMode::Flows || Opts.Mode == BatchMode::Report) &&
      D.Graph) {
    const Digraph &G = *D.Graph;
    {
      // Node string table, lexicographic (rank) order.
      std::string Nodes;
      putU32(Nodes, static_cast<uint32_t>(G.numNodes()));
      for (Digraph::NodeId Id : G.rankedNodes())
        putStr(Nodes, G.name(Id));
      F.section("NODE", std::move(Nodes));
    }
    {
      // Edges as (from, to) indices into the NODE table, sorted — the
      // same order the JSON edgeList streams in, two u32s per edge.
      std::string EdgeSec;
      putU64(EdgeSec, G.numEdges());
      EdgeSec.reserve(EdgeSec.size() + 8 * G.numEdges());
      G.forEachSortedEdgeRanked(
          [&EdgeSec](Digraph::NodeId From, Digraph::NodeId To) {
            putU32(EdgeSec, From);
            putU32(EdgeSec, To);
          });
      F.section("EDGE", std::move(EdgeSec));
    }
  }
  if (D.Ok && Opts.Mode == BatchMode::Matrices) {
    std::string Mtrx;
    putU64(Mtrx, D.RMloEntries);
    putU64(Mtrx, D.RMglEntries);
    F.section("MTRX", std::move(Mtrx));
  }
  if (D.Ok && Opts.Mode == BatchMode::Report) {
    std::string Viol;
    putU32(Viol, static_cast<uint32_t>(D.Violations.size()));
    for (const PolicyViolation &V : D.Violations) {
      putStr(Viol, V.From);
      putStr(Viol, V.To);
      putU8(Viol, V.ViaPath ? 1 : 0);
    }
    F.section("VIOL", std::move(Viol));
  }
  if (D.Ok && Opts.Mode == BatchMode::Query) {
    // Query result: from, to, reaches flag, witness steps (node string +
    // resource string + mark code 0 plain / 1 incoming / 2 outgoing),
    // then the forward and backward reachable-name sets.
    std::string Qres;
    putStr(Qres, Opts.QueryFrom);
    putStr(Qres, Opts.QueryTo);
    putU8(Qres, D.Reaches ? 1 : 0);
    putU32(Qres, static_cast<uint32_t>(D.Witness.size()));
    for (const query::WitnessStep &Step : D.Witness) {
      putStr(Qres, Step.Node);
      putStr(Qres, Step.Resource);
      putU8(Qres, static_cast<uint8_t>(Step.Mark));
    }
    putU32(Qres, static_cast<uint32_t>(D.Forward.size()));
    for (const std::string &Node : D.Forward)
      putStr(Qres, Node);
    putU32(Qres, static_cast<uint32_t>(D.Backward.size()));
    for (const std::string &Node : D.Backward)
      putStr(Qres, Node);
    F.section("QRES", std::move(Qres));
  }
  F.finish(Out);
}

void vif::driver::printBatchV1b(std::ostream &OS, const BatchResult &R,
                                const BatchOptions &Opts) {
  std::string Out;
  for (const DesignResult &D : R.Designs) {
    Out.clear();
    writeV1bDesign(Out, D, Opts);
    OS.write(Out.data(), static_cast<std::streamsize>(Out.size()));
  }
}

uint64_t vif::driver::v1bFrameLength(std::string_view Bytes) {
  if (Bytes.size() < 16 || std::memcmp(Bytes.data(), V1bMagic, 4) != 0)
    return 0;
  Cursor C(Bytes.substr(8));
  return C.u64();
}

bool vif::driver::decodeV1bToJson(std::string_view Frame,
                                  std::string &JsonOut, std::string *Error) {
  Cursor C(Frame);
  std::string_view Magic;
  if (!C.take(4, Magic) || std::memcmp(Magic.data(), V1bMagic, 4) != 0)
    return fail(Error, "not a v1b frame (bad magic)");
  if (C.u32() != V1bVersion)
    return fail(Error, "unsupported v1b version");
  uint64_t FrameLen = C.u64();
  if (FrameLen != Frame.size())
    return fail(Error, "frame length mismatch");
  uint32_t SectionCount = C.u32();

  // Collect the section payloads by tag; unknown tags are skipped.
  std::string_view Meta, IdTok, Diag, NodeSec, EdgeSec, Mtrx, Viol, Qres;
  bool HasMeta = false, HasNode = false, HasEdge = false, HasMtrx = false,
       HasViol = false, HasQres = false;
  for (uint32_t I = 0; I < SectionCount; ++I) {
    std::string_view Tag;
    if (!C.take(4, Tag))
      return fail(Error, "truncated section header");
    uint64_t Len = C.u64();
    std::string_view Payload;
    if (!C.take(Len, Payload))
      return fail(Error, "truncated section payload");
    if (Tag == "META") {
      Meta = Payload;
      HasMeta = true;
    } else if (Tag == "IDNT") {
      IdTok = Payload;
    } else if (Tag == "DIAG") {
      Diag = Payload;
    } else if (Tag == "NODE") {
      NodeSec = Payload;
      HasNode = true;
    } else if (Tag == "EDGE") {
      EdgeSec = Payload;
      HasEdge = true;
    } else if (Tag == "MTRX") {
      Mtrx = Payload;
      HasMtrx = true;
    } else if (Tag == "VIOL") {
      Viol = Payload;
      HasViol = true;
    } else if (Tag == "QRES") {
      Qres = Payload;
      HasQres = true;
    }
  }
  if (!C.atEnd())
    return fail(Error, "trailing bytes after last section");
  if (!HasMeta)
    return fail(Error, "missing META section");

  Cursor M(Meta);
  uint8_t Command = M.u8();
  uint8_t Method = M.u8();
  bool Ok = M.u8() != 0;
  bool Unreadable = M.u8() != 0;
  std::string_view Name = M.str();
  uint64_t Processes = M.u64();
  uint64_t Signals = M.u64();
  uint64_t Variables = M.u64();
  if (!M.atEnd())
    return fail(Error, "malformed META section");
  const char *CommandStr = commandName(Command);
  const char *MethodStr = methodName(Method);
  if (!CommandStr || !MethodStr)
    return fail(Error, "unknown command or method code");

  std::ostringstream OS;
  JsonWriter J(OS, JsonStyle::Compact);
  J.beginObject();
  J.member("schema", "vifc.v1");
  if (!IdTok.empty()) {
    // The token is a complete JSON value (string, number or null); parse
    // and re-emit it so JsonOut stays well-formed even on a hostile frame.
    std::string ParseError;
    std::optional<JsonValue> Id = parseJson(IdTok, &ParseError);
    if (!Id || (!Id->isString() && !Id->isNumber() && !Id->isNull()))
      return fail(Error, "malformed IDNT section");
    J.key("id");
    if (Id->isString()) {
      J.value(Id->asString());
    } else if (Id->isNumber()) {
      double N = Id->asNumber();
      if (N == std::floor(N) && std::abs(N) <= 9007199254740992.0)
        J.value(static_cast<long long>(N));
      else
        J.value(N);
    } else {
      J.null();
    }
  }
  J.member("command", CommandStr);
  if (Command == 1) // flows
    J.member("method", MethodStr);
  J.member("file", Name);
  J.member("status", Ok ? "ok" : "error");
  if (Unreadable)
    J.member("unreadable", true);
  if (!Diag.empty())
    J.member("diagnostics", Diag);
  if (Ok) {
    J.member("processes", Processes);
    J.member("signals", Signals);
    J.member("variables", Variables);
  }
  if (Ok && HasNode && HasEdge) {
    Cursor N(NodeSec);
    uint32_t NodeCount = N.u32();
    std::vector<std::string_view> Nodes;
    Nodes.reserve(NodeCount);
    for (uint32_t I = 0; I < NodeCount && !N.Failed; ++I)
      Nodes.push_back(N.str());
    if (!N.atEnd() || Nodes.size() != NodeCount)
      return fail(Error, "malformed NODE section");
    Cursor E(EdgeSec);
    uint64_t EdgeCount = E.u64();
    J.key("graph");
    J.beginObject();
    J.member("nodes", NodeCount);
    J.member("edges", EdgeCount);
    J.key("edgeList");
    J.beginArray();
    for (uint64_t I = 0; I < EdgeCount; ++I) {
      uint32_t From = E.u32(), To = E.u32();
      if (E.Failed || From >= NodeCount || To >= NodeCount)
        return fail(Error, "malformed EDGE section");
      J.beginObject();
      J.member("from", Nodes[From]);
      J.member("to", Nodes[To]);
      J.endObject();
    }
    J.endArray();
    J.endObject();
    if (!E.atEnd())
      return fail(Error, "malformed EDGE section");
  }
  if (Ok && HasMtrx) {
    Cursor X(Mtrx);
    uint64_t RMlo = X.u64(), RMgl = X.u64();
    if (!X.atEnd())
      return fail(Error, "malformed MTRX section");
    J.key("matrices");
    J.beginObject();
    J.member("rmlo", RMlo);
    J.member("rmgl", RMgl);
    J.endObject();
  }
  if (Ok && HasViol) {
    Cursor V(Viol);
    uint32_t Count = V.u32();
    J.key("violations");
    J.beginArray();
    for (uint32_t I = 0; I < Count; ++I) {
      std::string_view From = V.str(), To = V.str();
      bool ViaPath = V.u8() != 0;
      if (V.Failed)
        return fail(Error, "malformed VIOL section");
      J.beginObject();
      J.member("from", From);
      J.member("to", To);
      J.member("viaPath", ViaPath);
      J.endObject();
    }
    J.endArray();
    if (!V.atEnd())
      return fail(Error, "malformed VIOL section");
  }
  if (Ok && HasQres) {
    Cursor Q(Qres);
    std::string_view From = Q.str(), To = Q.str();
    bool Reaches = Q.u8() != 0;
    J.key("query");
    J.beginObject();
    J.member("from", From);
    J.member("to", To);
    J.member("reaches", Reaches);
    uint32_t WitnessCount = Q.u32();
    if (Reaches) {
      J.key("witness");
      J.beginArray();
    }
    for (uint32_t I = 0; I < WitnessCount; ++I) {
      std::string_view Node = Q.str(), Resource = Q.str();
      uint8_t Mark = Q.u8();
      if (Q.Failed || Mark > 2 || !Reaches)
        return fail(Error, "malformed QRES section");
      J.beginObject();
      J.member("node", Node);
      J.member("resource", Resource);
      J.member("kind",
               query::nodeMarkName(static_cast<query::NodeMark>(Mark)));
      J.endObject();
    }
    if (Reaches)
      J.endArray();
    for (const char *Key : {"reachableFrom", "whatReaches"}) {
      uint32_t Count = Q.u32();
      J.key(Key);
      J.beginArray();
      for (uint32_t I = 0; I < Count; ++I) {
        std::string_view Node = Q.str();
        if (Q.Failed)
          return fail(Error, "malformed QRES section");
        J.value(Node);
      }
      J.endArray();
    }
    J.endObject();
    if (!Q.atEnd())
      return fail(Error, "malformed QRES section");
  }
  J.endObject();
  JsonOut = OS.str();
  return true;
}
