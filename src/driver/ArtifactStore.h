//===- driver/ArtifactStore.h - On-disk analysis artifacts ------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent half of the incremental layer (rd/Incremental.h): a
/// directory of binary blobs keyed by (kind, hash), written atomically and
/// read back with the same bounds-checked framing discipline as the v1b
/// graph format. Four blob kinds exist today:
///
///   "actv" / "rdpr"  per-process Table 4 / Table 5 artifacts, payloads
///                    produced by rd/Incremental.h's codecs and consulted
///                    by ProcessArtifactTable on memory misses;
///   "dsgn"           whole-design results — RMlo, the closed RMgl and the
///                    flow graph — keyed by the session cache key, letting
///                    a fresh process skip every solver for a previously
///                    analyzed (source, options) pair;
///   "qidx"           the flow-query reachability index (closure matrix +
///                    CSR adjacency) for the same key.
///
/// Every blob is one file `<kind>-<16 hex digits of key>.bin` framed as
///
///   "VIFS" | u32 version | kind[4] | u64 key | u64 len | payload | u64 fnv
///
/// (all little-endian; fnv is FNV-1a over the payload). Writes go through
/// a temp file + rename, so readers never observe a torn blob. Any
/// anomaly on read — short file, bad magic/version/kind/key/length/
/// checksum, undecodable payload — is silently a miss: the store is a
/// cache, and the worst a corrupt entry may cost is a re-solve. docs/
/// SCHEMA.md section "Artifact store" pins the format; bumping
/// ArtifactStoreVersion orphans old files (misses) without breaking them.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_DRIVER_ARTIFACTSTORE_H
#define VIF_DRIVER_ARTIFACTSTORE_H

#include "ifa/InformationFlow.h"
#include "query/FlowQueryEngine.h"
#include "rd/Incremental.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vif {
namespace driver {

inline constexpr char ArtifactStoreMagic[4] = {'V', 'I', 'F', 'S'};
inline constexpr uint32_t ArtifactStoreVersion = 1;

/// A directory-backed ArtifactBlobStore. Thread-safe: loads are
/// independent reads, stores are atomic renames, counters are atomics.
/// The directory is created on construction; if that fails the store
/// stays constructible but every load misses and every store is a no-op
/// (a missing `--store` directory must never fail an analysis).
class ArtifactStore final : public ArtifactBlobStore {
public:
  explicit ArtifactStore(std::string Directory);

  const std::string &directory() const { return Dir; }
  /// True when the backing directory exists and is usable.
  bool usable() const { return Usable; }

  bool load(const char (&Kind)[5], uint64_t Key,
            std::string &Payload) override;
  void store(const char (&Kind)[5], uint64_t Key,
             std::string_view Payload) override;

  /// A consistent snapshot of the store counters (surfaced through
  /// `vifc --store` summaries and the serve `stats` document).
  struct Counters {
    uint64_t Hits = 0;        ///< loads served from disk
    uint64_t Misses = 0;      ///< loads that found nothing usable
    uint64_t Writes = 0;      ///< blobs written back
    uint64_t BytesRead = 0;   ///< file bytes of served loads
    uint64_t BytesWritten = 0;///< file bytes written
  };
  Counters counters() const {
    Counters C;
    C.Hits = Hits.load(std::memory_order_relaxed);
    C.Misses = Misses.load(std::memory_order_relaxed);
    C.Writes = Writes.load(std::memory_order_relaxed);
    C.BytesRead = BytesRead.load(std::memory_order_relaxed);
    C.BytesWritten = BytesWritten.load(std::memory_order_relaxed);
    return C;
  }

  /// The store filename for a blob, relative to the directory (exposed
  /// for the corruption tests, which overwrite entries in place).
  static std::string fileName(const char (&Kind)[5], uint64_t Key);

private:
  std::string Dir;
  bool Usable = false;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Writes{0};
  std::atomic<uint64_t> BytesRead{0}, BytesWritten{0};
};

/// Codecs for the whole-design blob (kind "dsgn"): the partial IFAResult
/// — RMlo, RMgl and the flow graph — that every batch mode except the
/// RD/ALFP inspectors consumes. The payload is framed in tagged sections
/// ("RMLO", "RMGL", "GRPH") mirroring v1b; decode returns false on any
/// anomaly and leaves the outputs unspecified.
std::string encodeDesignArtifact(const IFAResult &R);
bool decodeDesignArtifact(std::string_view Payload, ResourceMatrix &RMlo,
                          ResourceMatrix &RMgl, Digraph &Graph);

/// Codecs for the query-index blob (kind "qidx", section "QIDX"): the
/// reachability closure and CSR adjacency of a FlowQueryEngine over
/// \p Graph. decode validates every shape invariant against the graph
/// and returns nullopt on any mismatch (a miss; the engine is rebuilt).
std::string encodeQueryIndex(const query::FlowQueryEngine &E);
std::optional<query::FlowQueryEngine>
decodeQueryIndex(std::string_view Payload, const Digraph &Graph);

} // namespace driver
} // namespace vif

#endif // VIF_DRIVER_ARTIFACTSTORE_H
