//===- driver/Serve.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"

#include "driver/Batch.h"
#include "driver/Serialize.h"
#include "driver/V1b.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/JsonParse.h"
#include "support/Parallel.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace vif;
using namespace vif::driver;

namespace {

/// One decoded, validated request. Validation is strict: the wire format
/// is versioned, so an unknown member is a client bug to report, not
/// noise to ignore (docs/SERVER.md).
struct ServeRequest {
  std::string Command;
  std::string Path;
  bool HasSource = false;
  std::string Source;
  /// Source-by-reference: the content hash of a source some earlier
  /// request sent inline (the server echoes it as "contentKey").
  bool HasContentKey = false;
  std::string ContentKey;
  std::string Name;
  BatchMode Mode = BatchMode::Check;
  FlowMethod Method = FlowMethod::Native;
  SessionOptions Session;
  FlowPolicy Policy;
  /// Query mode: the "from" / "to" option pair (both required).
  std::string From;
  std::string To;
  bool HasFrom = false;
  bool HasTo = false;
  /// "format": "v1b" — answer with one binary frame (driver/V1b.h)
  /// instead of the JSON document. Errors are always JSON.
  bool V1b = false;
};

bool isAnalysisCommand(const std::string &C, BatchMode &Mode) {
  if (C == "check")
    Mode = BatchMode::Check;
  else if (C == "flows")
    Mode = BatchMode::Flows;
  else if (C == "rm")
    Mode = BatchMode::Matrices;
  else if (C == "report")
    Mode = BatchMode::Report;
  else if (C == "query")
    Mode = BatchMode::Query;
  else
    return false;
  return true;
}

/// Returns the name of the first duplicated member of \p Obj, or "".
/// The protocol is strict about duplicates: last-one-wins would silently
/// analyze the wrong input, and our find() lookups take the first.
std::string firstDuplicateMember(const JsonValue &Obj) {
  for (size_t I = 0; I < Obj.members().size(); ++I)
    for (size_t J = I + 1; J < Obj.members().size(); ++J)
      if (Obj.members()[I].first == Obj.members()[J].first)
        return Obj.members()[I].first;
  return "";
}

/// Fills \p R from the request's "options" object; returns an error
/// message, or "" on success.
std::string parseRequestOptions(const JsonValue &Options, ServeRequest &R) {
  if (!Options.isObject())
    return "\"options\" must be an object";
  if (std::string Dup = firstDuplicateMember(Options); !Dup.empty())
    return "duplicate option \"" + Dup + "\"";
  for (const auto &[Key, Value] : Options.members()) {
    if (Key == "statements" || Key == "improved" || Key == "endOut") {
      if (!Value.isBool())
        return "option \"" + Key + "\" must be a boolean";
      if (Key == "statements")
        R.Session.Statements = Value.asBool();
      else if (Key == "improved")
        R.Session.Ifa.Improved = Value.asBool();
      else
        R.Session.Ifa.ProgramEndOutgoing = Value.asBool();
    } else if (Key == "method") {
      if (R.Mode != BatchMode::Flows)
        return "option \"method\" only applies to \"flows\"";
      if (!Value.isString())
        return "option \"method\" must be a string";
      const std::string &M = Value.asString();
      if (M == "native")
        R.Method = FlowMethod::Native;
      else if (M == "alfp")
        R.Method = FlowMethod::Alfp;
      else if (M == "kemmerer")
        R.Method = FlowMethod::Kemmerer;
      else
        return "unknown method \"" + M + "\"";
    } else if (Key == "from" || Key == "to") {
      if (R.Mode != BatchMode::Query)
        return "option \"" + Key + "\" only applies to \"query\"";
      if (!Value.isString())
        return "option \"" + Key + "\" must be a string";
      if (Key == "from") {
        R.From = Value.asString();
        R.HasFrom = true;
      } else {
        R.To = Value.asString();
        R.HasTo = true;
      }
    } else if (Key == "forbid") {
      if (R.Mode != BatchMode::Report)
        return "option \"forbid\" only applies to \"report\"";
      if (!Value.isArray())
        return "option \"forbid\" must be an array";
      for (const JsonValue &Rule : Value.elements()) {
        const JsonValue *From = Rule.isObject() ? Rule.find("from") : nullptr;
        const JsonValue *To = Rule.isObject() ? Rule.find("to") : nullptr;
        if (!From || !To || !From->isString() || !To->isString() ||
            Rule.members().size() != 2)
          return "each \"forbid\" rule must be {\"from\": ..., \"to\": ...}";
        R.Policy.Forbidden.push_back({From->asString(), To->asString()});
      }
    } else {
      return "unknown option \"" + Key + "\"";
    }
  }
  return "";
}

/// Decodes the already-parsed request object into \p R; returns an error
/// message, or "" on success. "schema" and "id" were handled by the
/// caller.
std::string parseRequest(const JsonValue &Doc, ServeRequest &R) {
  if (std::string Dup = firstDuplicateMember(Doc); !Dup.empty())
    return "duplicate member \"" + Dup + "\"";
  const JsonValue *Options = nullptr;
  bool HasFormat = false;
  for (const auto &[Key, Value] : Doc.members()) {
    if (Key == "schema" || Key == "id")
      continue;
    if (Key == "command") {
      if (!Value.isString())
        return "\"command\" must be a string";
      R.Command = Value.asString();
    } else if (Key == "path") {
      if (!Value.isString())
        return "\"path\" must be a string";
      R.Path = Value.asString();
    } else if (Key == "source") {
      if (!Value.isString())
        return "\"source\" must be a string";
      R.HasSource = true;
      R.Source = Value.asString();
    } else if (Key == "contentKey") {
      if (!Value.isString())
        return "\"contentKey\" must be a string";
      R.HasContentKey = true;
      R.ContentKey = Value.asString();
    } else if (Key == "name") {
      if (!Value.isString())
        return "\"name\" must be a string";
      R.Name = Value.asString();
    } else if (Key == "format") {
      if (!Value.isString())
        return "\"format\" must be a string";
      const std::string &F = Value.asString();
      if (F == "v1b")
        R.V1b = true;
      else if (F != "json")
        return "unknown format \"" + F + "\" (expected \"json\" or \"v1b\")";
      HasFormat = true;
    } else if (Key == "options") {
      Options = &Value;
    } else {
      return "unknown member \"" + Key + "\"";
    }
  }

  if (R.Command.empty())
    return "missing \"command\"";
  bool Analysis = isAnalysisCommand(R.Command, R.Mode);
  if (!Analysis && R.Command != "ping" && R.Command != "stats" &&
      R.Command != "shutdown")
    return "unknown command \"" + R.Command + "\"";

  if (!Analysis) {
    if (!R.Path.empty() || R.HasSource || R.HasContentKey ||
        !R.Name.empty() || Options || HasFormat)
      return "\"" + R.Command + "\" takes no input or options";
    return "";
  }

  if (int(R.HasSource) + int(R.HasContentKey) + int(!R.Path.empty()) != 1)
    return "exactly one of \"path\", \"source\" or \"contentKey\" is "
           "required";
  if (R.Path == "-")
    return "\"path\": \"-\" is not valid here: stdin is the transport";
  if (!R.Name.empty() && !R.HasSource && !R.HasContentKey)
    return "\"name\" only labels an inline \"source\" or a \"contentKey\"";
  if (Options)
    if (std::string Msg = parseRequestOptions(*Options, R); !Msg.empty())
      return Msg;
  if (R.Mode == BatchMode::Query && (!R.HasFrom || !R.HasTo))
    return "\"query\" requires options \"from\" and \"to\"";
  return "";
}

/// Echoes the request's "id" member (validated as string/number/null).
/// Integral numbers round-trip exactly; fractional ones go through the
/// writer's %.6g double formatting (SERVER.md tells clients to use
/// strings or integers).
void writeId(JsonWriter &J, const JsonValue *Id) {
  if (!Id)
    return;
  J.key("id");
  if (Id->isString()) {
    J.value(Id->asString());
  } else if (Id->isNumber()) {
    double N = Id->asNumber();
    // 2^53: the largest range where double holds integers exactly.
    if (N == std::floor(N) && std::abs(N) <= 9007199254740992.0)
      J.value(static_cast<long long>(N));
    else
      J.value(N);
  } else {
    J.null();
  }
}

/// The request's "id" as a standalone JSON value token — what writeId
/// would emit after the key — for echoing into a v1b IDNT section.
/// Empty when the request carried no id.
std::string renderIdToken(const JsonValue *Id) {
  if (!Id)
    return "";
  if (Id->isString())
    return "\"" + jsonEscape(Id->asString()) + "\"";
  if (Id->isNumber()) {
    double N = Id->asNumber();
    char Num[32];
    if (N == std::floor(N) && std::abs(N) <= 9007199254740992.0)
      std::snprintf(Num, sizeof(Num), "%lld", static_cast<long long>(N));
    else
      std::snprintf(Num, sizeof(Num), "%.6g", N);
    return Num;
  }
  return "null";
}

std::string errorResponse(const JsonValue *Id, std::string_view Code,
                          std::string_view Message) {
  std::ostringstream OS;
  JsonWriter J(OS, JsonStyle::Compact);
  J.beginObject();
  writeSchemaTag(J);
  writeId(J, Id);
  J.member("status", "error");
  writeErrorObject(J, Code, Message);
  J.endObject();
  return OS.str();
}

/// Best-effort write of \p Line + '\n' to \p Fd; errors are the peer's
/// problem (used for the admission-control `overloaded` response).
void writeLineBestEffort(int Fd, const std::string &Line) {
  std::string Out = Line + '\n';
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t W = ::write(Fd, Out.data() + Off, Out.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    Off += static_cast<size_t>(W);
  }
}

} // namespace

namespace {

/// The content key of a source: 16 lowercase hex digits of its content
/// hash (the same builder the session cache keys with, minus options —
/// a contentKey names bytes, not an analysis).
std::string contentKeyOf(std::string_view Source) {
  HashBuilder H;
  H.str(Source);
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H.value()));
  return Buf;
}

} // namespace

Server::Server(ServeOptions Opts)
    : Opts(Opts), Cache(Opts.CacheCapacity, Opts.CacheBytes) {
  if (!Opts.StoreDir.empty()) {
    Store = std::make_unique<ArtifactStore>(Opts.StoreDir);
    Artifacts.setBacking(Store.get());
  }
  Cache.setArtifacts(&Artifacts, Store.get());
}

std::shared_ptr<const std::string>
Server::lookupContent(const std::string &Key) {
  std::lock_guard<std::mutex> G(ContentM);
  auto It = Content.find(Key);
  if (It == Content.end())
    return nullptr;
  ContentLru.splice(ContentLru.begin(), ContentLru, It->second.second);
  return It->second.first;
}

std::string Server::rememberContent(const std::string &Source) {
  std::string Key = contentKeyOf(Source);
  std::lock_guard<std::mutex> G(ContentM);
  auto It = Content.find(Key);
  if (It != Content.end()) {
    ContentLru.splice(ContentLru.begin(), ContentLru, It->second.second);
    return Key;
  }
  ContentLru.push_front(Key);
  Content.emplace(Key, std::make_pair(
                           std::make_shared<const std::string>(Source),
                           ContentLru.begin()));
  while (Content.size() > ContentCapacity) {
    Content.erase(ContentLru.back());
    ContentLru.pop_back();
  }
  return Key;
}

unsigned Server::effectiveWorkers() const {
  if (Opts.Workers)
    return Opts.Workers;
  unsigned HW = std::thread::hardware_concurrency();
  return std::max(1u, std::min(HW ? HW : 1u, 8u));
}

std::string Server::handleLine(const std::string &Line) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  InFlight.fetch_add(1, std::memory_order_relaxed);
  struct InFlightGuard {
    std::atomic<uint64_t> &C;
    ~InFlightGuard() { C.fetch_sub(1, std::memory_order_relaxed); }
  } Guard{InFlight};
  auto Start = std::chrono::steady_clock::now();

  std::string ParseError;
  std::optional<JsonValue> Doc = parseJson(Line, &ParseError);
  if (!Doc)
    return errorResponse(nullptr, "parse-error", ParseError);
  if (!Doc->isObject())
    return errorResponse(nullptr, "bad-request",
                         "request must be a JSON object");

  const JsonValue *Id = Doc->find("id");
  if (Id && !Id->isString() && !Id->isNumber() && !Id->isNull())
    return errorResponse(nullptr, "bad-request",
                         "\"id\" must be a string, number or null");
  if (const JsonValue *Schema = Doc->find("schema")) {
    if (!Schema->isString() || Schema->asString() != SchemaVersion)
      return errorResponse(Id, "unsupported-schema",
                           std::string("this server speaks \"") +
                               SchemaVersion + "\"");
  }

  ServeRequest R;
  R.Session = Opts.Session;
  if (std::string Msg = parseRequest(*Doc, R); !Msg.empty())
    return errorResponse(Id, "bad-request", Msg);

  std::ostringstream OS;
  JsonWriter J(OS, JsonStyle::Compact);

  if (R.Command == "ping" || R.Command == "shutdown") {
    if (R.Command == "shutdown")
      ShuttingDown.store(true, std::memory_order_release);
    J.beginObject();
    writeSchemaTag(J);
    writeId(J, Id);
    J.member("command", R.Command);
    J.member("status", "ok");
    J.endObject();
    return OS.str();
  }

  if (R.Command == "stats") {
    J.beginObject();
    writeSchemaTag(J);
    writeId(J, Id);
    J.member("command", R.Command);
    J.member("status", "ok");
    J.member("requests", Requests.load(std::memory_order_relaxed));
    // Counts this stats request itself, so it is always >= 1.
    J.member("inFlight", InFlight.load(std::memory_order_relaxed));
    writeCacheObject(J, Cache);
    if (Store)
      writeStoreObject(J, *Store);
    J.endObject();
    return OS.str();
  }

  BatchOptions B;
  B.Mode = R.Mode;
  B.Method = R.Method;
  B.Session = R.Session;
  B.Policy = std::move(R.Policy);
  B.QueryFrom = std::move(R.From);
  B.QueryTo = std::move(R.To);
  B.CaptureRenderedText = false;
  B.Cache = &Cache;

  BatchInput In;
  std::string ContentKey; // echoed so clients can go by-reference next
  if (R.HasContentKey) {
    std::shared_ptr<const std::string> Src = lookupContent(R.ContentKey);
    if (!Src)
      return errorResponse(Id, "unknown-content-key",
                           "no source cached under contentKey \"" +
                               R.ContentKey +
                               "\"; send it inline once first");
    In.Name = R.Name.empty() ? "<request>" : R.Name;
    In.Source = *Src;
    ContentKey = std::move(R.ContentKey);
  } else if (R.HasSource) {
    In.Name = R.Name.empty() ? "<request>" : R.Name;
    ContentKey = rememberContent(R.Source);
    In.Source = std::move(R.Source);
  } else {
    In.Name = R.Path;
  }

  DesignResult D = analyzeDesign(In, B);
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  if (R.V1b) {
    // One self-delimiting binary frame; no timings or cache statistics,
    // so identical requests yield byte-identical responses.
    std::string Frame;
    writeV1bDesign(Frame, D, B, renderIdToken(Id));
    return Frame;
  }

  J.beginObject();
  writeSchemaTag(J);
  writeId(J, Id);
  J.member("command", R.Command);
  if (!ContentKey.empty())
    J.member("contentKey", ContentKey);
  if (R.Mode == BatchMode::Flows)
    J.member("method", flowMethodName(R.Method));
  writeDesignBody(J, D, B);
  J.member("wallMs", WallMs);
  writeCacheObject(J, Cache);
  J.endObject();
  return OS.str();
}

void Server::run(std::istream &In, std::ostream &Out) {
  std::string Line;
  while (!ShuttingDown && std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    Out << handleLine(Line) << '\n' << std::flush;
  }
}

bool Server::serveFd(int Fd, std::string *Error) {
  // A peer that disconnects before reading its response must cost us an
  // EPIPE write error (handled below), not a fatal SIGPIPE — also when
  // callers hand us their own fd without going through listenAndServe.
  std::signal(SIGPIPE, SIG_IGN);
  auto fail = [&](const char *What) {
    if (Error)
      *Error = std::string(What) + ": " + std::strerror(errno);
    return false;
  };
  auto respond = [&](std::string Line) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      return true;
    std::string Resp = handleLine(Line);
    Resp += '\n';
    size_t Off = 0;
    while (Off < Resp.size()) {
      ssize_t W = ::write(Fd, Resp.data() + Off, Resp.size() - Off);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return fail("write");
      }
      Off += static_cast<size_t>(W);
    }
    return true;
  };

  std::string Buf;
  char Chunk[4096];
  while (!ShuttingDown) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return fail("read");
    }
    if (N == 0)
      break;
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t NL;
    while (!ShuttingDown && (NL = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (!respond(std::move(Line)))
        return false;
    }
  }
  // A final request without a trailing newline still deserves an answer.
  if (!ShuttingDown && !Buf.empty())
    return respond(std::move(Buf));
  return true;
}

bool Server::listenAndServe(uint16_t Port, std::string *Error) {
  auto fail = [&](const char *What, int Sock) {
    if (Error)
      *Error = std::string(What) + ": " + std::strerror(errno);
    if (Sock >= 0)
      ::close(Sock);
    return false;
  };

  int Sock = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Sock < 0)
    return fail("socket", -1);
  int One = 1;
  ::setsockopt(Sock, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(Sock, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return fail("bind", Sock);

  unsigned Workers = effectiveWorkers();
  size_t MaxQueued =
      Opts.MaxQueuedConns ? Opts.MaxQueuedConns : 2 * size_t(Workers);
  // The kernel backlog follows the admission bound: connections we would
  // accept-and-shed anyway may as well queue in the kernel first, but a
  // tiny fixed backlog (the old hardcoded 8) made bursts of concurrent
  // connects fail with ECONNREFUSED before admission control ever saw
  // them.
  int Backlog = static_cast<int>(
      std::min<size_t>(size_t(Workers) + MaxQueued + 8, 256));
  if (::listen(Sock, Backlog) < 0)
    return fail("listen", Sock);

  sockaddr_in Bound;
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Sock, reinterpret_cast<sockaddr *>(&Bound),
                    &BoundLen) == 0)
    BoundPort.store(ntohs(Bound.sin_port), std::memory_order_release);
  else
    BoundPort.store(Port, std::memory_order_release);
  if (Opts.OnListening)
    Opts.OnListening(boundPort());

  // Accept loop + worker pool. Each queued task owns one accepted
  // connection: a worker runs the full per-connection pipelined request
  // loop, so responses on one connection stay in request order while
  // other connections progress on other workers. tryEnqueue failing is
  // the admission bound — the connection is answered with one
  // `overloaded` error line and closed instead of waiting unboundedly.
  {
    WorkerPool Pool(Workers, MaxQueued);
    const std::string Overloaded = errorResponse(
        nullptr, "overloaded",
        "server at connection capacity; retry later");
    while (!shuttingDown()) {
      // Poll with a timeout so a shutdown served on a worker thread
      // stops the accept loop promptly instead of blocking in accept
      // until one more client connects.
      pollfd P{Sock, POLLIN, 0};
      int Ready = ::poll(&P, 1, 100);
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        ::close(Sock);
        Pool.close();
        return fail("poll", -1);
      }
      if (Ready == 0)
        continue;
      int Conn = ::accept(Sock, nullptr, nullptr);
      if (Conn < 0) {
        if (errno == EINTR)
          continue;
        ::close(Sock);
        Pool.close();
        return fail("accept", -1);
      }
      bool Queued = Pool.tryEnqueue([this, Conn] {
        // Connections still queued when shutdown arrives are closed
        // unanswered (the drain guarantee covers requests in flight,
        // not connections that never reached a worker).
        if (!shuttingDown()) {
          std::string ConnError;
          if (!serveFd(Conn, &ConnError))
            // One broken connection must not take the server down:
            // log and keep serving everyone else (docs/SERVER.md).
            std::fprintf(stderr, "vifc serve: connection error: %s\n",
                         ConnError.c_str());
        }
        ::close(Conn);
      });
      if (!Queued) {
        writeLineBestEffort(Conn, Overloaded);
        ::close(Conn);
      }
    }
    // Stop accepting first, then drain: workers finish the requests they
    // are answering (serveFd re-checks shuttingDown between requests).
    ::close(Sock);
    Pool.close();
  }
  return true;
}
