//===- driver/Serialize.h - The vifc.v1 JSON wire format --------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single place every vifc JSON document is produced. Each document —
/// batch results (`--json` on check/flows/rm/report), sim and datalog
/// documents, serve responses and error objects — opens with a
/// `"schema": "vifc.v1"` member and is specified normatively in
/// docs/SCHEMA.md; a field emitted here but absent from that spec fails
/// `tools/schema_check.py`. Commands and the serve loop must route
/// through these writers instead of hand-rolling JsonWriter calls, so the
/// wire format can only drift in one reviewable file.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_DRIVER_SERIALIZE_H
#define VIF_DRIVER_SERIALIZE_H

#include "driver/Batch.h"
#include "driver/SessionCache.h"
#include "support/Json.h"

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace vif {
namespace driver {

/// The wire-format version stamped into every JSON document. Versioning
/// policy (docs/SCHEMA.md): adding optional fields keeps "vifc.v1";
/// renaming, removing or re-typing any documented field bumps to
/// "vifc.v2".
inline constexpr const char SchemaVersion[] = "vifc.v1";

/// Emits the leading "schema" member; must be the first member of every
/// top-level document object.
void writeSchemaTag(JsonWriter &J);

/// The members describing one analyzed design: file/status/diagnostics,
/// program shape, then the mode-dependent payload (graph, matrices,
/// violations) and per-stage timings. Used verbatim inside batch
/// documents and serve responses. When \p Opts.Cache is set, a
/// "cacheHit" member reports whether the design's session was reused.
void writeDesignBody(JsonWriter &J, const DesignResult &D,
                     const BatchOptions &Opts);

/// The "cache" statistics object (serve responses, stats documents).
void writeCacheObject(JsonWriter &J, const SessionCache &Cache);

class ArtifactStore;

/// The "store" statistics object — on-disk artifact hits/misses/writes
/// and byte traffic (serve stats documents when `--store` is configured).
void writeStoreObject(JsonWriter &J, const ArtifactStore &Store);

/// One complete batch document (the `--json` output of check/flows/rm/
/// report): schema, command, designs array, summary.
void writeBatchDocument(std::ostream &OS, const BatchResult &R,
                        const BatchOptions &Opts,
                        JsonStyle Style = JsonStyle::Pretty);

/// The "error" object carried by failed serve responses and one-shot
/// error documents: a stable machine code plus a human message.
void writeErrorObject(JsonWriter &J, std::string_view Code,
                      std::string_view Message);

/// One signal's final value in a sim document.
struct SimSignalValue {
  std::string Name;
  std::string Value;
};

/// Everything `vifc sim --json` reports.
struct SimDocument {
  std::string File;
  /// simStatusName(): "quiescent" | "max-deltas" | "stuck".
  std::string Status;
  uint64_t Deltas = 0;
  /// Only meaningful when Status == "stuck".
  std::string StuckReason;
  std::vector<SimSignalValue> Signals;
};

void writeSimDocument(std::ostream &OS, const SimDocument &Doc,
                      JsonStyle Style = JsonStyle::Pretty);

/// One solved relation in a datalog document, tuples rendered as atom
/// strings and sorted for determinism.
struct DatalogRelation {
  std::string Name;
  unsigned Arity = 0;
  std::vector<std::vector<std::string>> Tuples;
};

/// Everything `vifc datalog --json` reports: the ?-queried relations and
/// the derived-tuple count.
void writeDatalogDocument(std::ostream &OS, std::string_view File,
                          const std::vector<DatalogRelation> &Relations,
                          size_t DerivedCount,
                          JsonStyle Style = JsonStyle::Pretty);

} // namespace driver
} // namespace vif

#endif // VIF_DRIVER_SERIALIZE_H
