//===- driver/Batch.h - Multi-design batch analysis -------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one AnalysisSession per input design, concurrently over a small
/// thread pool, and aggregates the per-design outcomes — program shape,
/// graph sizes, policy verdicts, timings — into deterministic text or
/// machine-readable JSON. This is the engine behind `vifc`'s multi-FILE /
/// `--json` operation and the substrate for sweeping whole design suites
/// the way SEIF's harness sweeps Verilog designs. A broken design never
/// stops the batch: its diagnostics ride along in its result slot.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_DRIVER_BATCH_H
#define VIF_DRIVER_BATCH_H

#include "driver/AnalysisSession.h"
#include "ifa/Policy.h"
#include "query/FlowQueryEngine.h"
#include "support/Graph.h"

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vif {
namespace driver {

class SessionCache;

/// One batch input: a file path, or an in-memory source labeled \p Name.
/// A path of "-" reads stdin; at most one input should do so — stdin is a
/// single stream, so runBatch serializes the whole batch (Jobs = 1) when
/// several "-" inputs appear, and every "-" after the first sees an empty
/// stream.
struct BatchInput {
  std::string Name;
  std::optional<std::string> Source;
};

/// What each design's session computes and reports.
enum class BatchMode : uint8_t { Check, Flows, Matrices, Report, Query };

const char *batchModeName(BatchMode M);

/// Which closure produces the flow graph in Flows mode.
enum class FlowMethod : uint8_t { Native, Alfp, Kemmerer };

const char *flowMethodName(FlowMethod M);

struct BatchOptions {
  BatchMode Mode = BatchMode::Check;
  FlowMethod Method = FlowMethod::Native;
  SessionOptions Session;
  /// Evaluated in Report mode; violations count into the batch summary.
  FlowPolicy Policy;
  /// Query mode: the (source, sink) point query every design answers.
  std::string QueryFrom;
  std::string QueryTo;
  /// Worker threads; 0 picks min(#designs, #cores, 8).
  unsigned Jobs = 0;
  /// Capture the rendered matrix/report texts per design. printBatchText
  /// needs them; JSON consumers (counts + verdicts only) turn this off so
  /// large suites don't pay for formatting that is thrown away.
  bool CaptureRenderedText = true;
  /// When set, sessions come from this content-addressed cache instead of
  /// being built fresh: designs whose (source, options) were seen before —
  /// in this batch or by an earlier request against the same cache (the
  /// `vifc serve` case) — reuse every artifact already computed. Inputs
  /// that cannot be read bypass the cache. Not owned.
  SessionCache *Cache = nullptr;
  /// Incremental/persistence wiring for the sessions the batch builds
  /// itself (when Cache is set, its own wiring applies instead — see
  /// SessionCache::setArtifacts). Neither is owned.
  ProcessArtifactTable *Artifacts = nullptr;
  ArtifactBlobStore *Store = nullptr;
};

/// The outcome of one design, in input order.
struct DesignResult {
  std::string Name;
  bool Ok = false;
  /// I/O failure reading the input (vs analysis diagnostics).
  bool Unreadable = false;
  /// The session came out of BatchOptions::Cache warm (meaningless when
  /// no cache was configured).
  bool CacheHit = false;
  /// Rendered diagnostics — errors on failure, warnings/notes otherwise.
  std::string Diagnostics;
  StageTimings Timings;

  /// Program shape; valid once elaboration succeeded.
  size_t NumProcesses = 0;
  size_t NumSignals = 0;
  size_t NumVariables = 0;

  /// Flows / Report modes: the flow graph, borrowed from the session that
  /// computed it (or owned through GraphOwner). Its sorted views are
  /// materialized before the producing session's lock is released, so all
  /// reads through this pointer — forEachSortedEdge, rankedNodes — are
  /// pure and need no further synchronization. Null in other modes and on
  /// failure.
  size_t NumNodes = 0;
  size_t NumEdges = 0;
  const Digraph *Graph = nullptr;
  /// Keeps *Graph alive: the cache entry, the ad-hoc session, or a
  /// standalone graph (the ALFP extraction). Never dereferenced.
  std::shared_ptr<const void> GraphOwner;

  /// Matrices mode: entry counts and the rendered matrices.
  size_t RMloEntries = 0;
  size_t RMglEntries = 0;
  std::string RMloText;
  std::string RMglText;

  /// Report mode: the audit report and the policy verdicts.
  std::string ReportText;
  std::vector<PolicyViolation> Violations;

  /// Query mode: the point-query answer. All strings are copied out of
  /// the session (no borrow), so query results outlive it freely.
  bool Reaches = false;
  std::vector<query::WitnessStep> Witness;
  std::vector<std::string> Forward;
  std::vector<std::string> Backward;
};

struct BatchResult {
  std::vector<DesignResult> Designs;
  size_t NumOk = 0;
  size_t NumFailed = 0;
  size_t NumViolations = 0;
  /// End-to-end wall time of the batch (not the sum of per-design times).
  double WallMs = 0;

  bool allOk() const { return NumFailed == 0; }
};

/// Analyzes one input end-to-end — through BatchOptions::Cache when set —
/// and never fails fatally. The unit runBatch fans out and `vifc serve`
/// answers single requests with.
DesignResult analyzeDesign(const BatchInput &In, const BatchOptions &Opts);

/// Analyzes every input; failures are recorded, never fatal. Results come
/// back in input order regardless of scheduling.
BatchResult runBatch(const std::vector<BatchInput> &Inputs,
                     const BatchOptions &Opts);

/// Human-readable rendering, one block per design in input order.
void printBatchText(std::ostream &OS, const BatchResult &R,
                    const BatchOptions &Opts);

/// One vifc.v1 JSON document with a per-design array and a summary
/// object (delegates to driver/Serialize.h's writeBatchDocument).
void printBatchJson(std::ostream &OS, const BatchResult &R,
                    const BatchOptions &Opts);

} // namespace driver
} // namespace vif

#endif // VIF_DRIVER_BATCH_H
