//===- driver/SessionCache.h - Content-addressed session cache -*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe LRU cache of AnalysisSessions keyed by the content hash
/// of the VHDL source text plus the analysis options. Re-analyzing an
/// unchanged design reuses every artifact the cached session already
/// computed (parse → elaborate → CFG → RD → IFA, lazily, at most once —
/// AnalysisSession's contract), so a cache hit that only needs `check`
/// data costs nothing beyond the hash, and a later `flows` request on the
/// same source extends the same session instead of starting over. This is
/// the warm-session substrate behind `vifc serve` and the batch runner
/// (docs/SERVER.md describes the service semantics).
///
/// The key is content-addressed: the input's *name* does not participate,
/// so identical sources under different paths share one entry (rendered
/// diagnostics carry line:col only, never the name, which keeps that
/// sharing observable only as a speedup). The analysis mode (check vs
/// flows vs report) and the policy are not in the key either — they
/// select which artifacts of the session are consumed, not how they are
/// computed.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_DRIVER_SESSIONCACHE_H
#define VIF_DRIVER_SESSIONCACHE_H

#include "driver/AnalysisSession.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

namespace vif {
namespace driver {

/// The cache key for one (source text, analysis options) pair. Every
/// option that changes any computable artifact must be folded in —
/// adding a knob to SessionOptions/IFAOptions/ReachingDefsOptions means
/// extending the foreachOptionBit fold in SessionCache.cpp, which this
/// key and the collision verifier both derive from
/// (tests/session_cache_test.cpp pins the sensitivity of each existing
/// knob).
uint64_t sessionCacheKey(std::string_view Source, const SessionOptions &Opts);

class SessionCache {
public:
  static constexpr size_t DefaultCapacity = 32;

  /// \p Capacity bounds the entry count; \p BytesBudget, when non-zero,
  /// additionally bounds the sum of measured entry sizes
  /// (AnalysisSession::memoryBytes) — both enforce LRU eviction, and the
  /// byte budget always keeps at least one entry so a single oversized
  /// design still caches.
  explicit SessionCache(size_t Capacity = DefaultCapacity,
                        size_t BytesBudget = 0)
      : Cap(Capacity ? Capacity : 1), BytesBudget(BytesBudget) {}
  SessionCache(const SessionCache &) = delete;
  SessionCache &operator=(const SessionCache &) = delete;

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  /// An acquired session: keeps the entry alive (even across eviction)
  /// and holds its per-entry lock, so concurrent batch workers that land
  /// on the same content serialize their lazy computations instead of
  /// racing. Release it (let it go out of scope) promptly — releasing is
  /// also when the entry's byte size is (re)measured and the byte budget
  /// enforced, so sizes account for whatever artifacts the holder just
  /// computed.
  class Ref {
  public:
    Ref(Ref &&) = default;
    /// Move-assignment releases the currently held entry first — unlock,
    /// then report its size and drop ownership — and only then rebinds,
    /// preserving the ordering invariant that the old entry (and its
    /// mutex) must never be destroyed while Lock still holds it.
    Ref &operator=(Ref &&O) noexcept {
      if (this != &O) {
        release();
        C = O.C;
        O.C = nullptr;
        E = std::move(O.E);
        Hit = O.Hit;
        Lock = std::move(O.Lock);
      }
      return *this;
    }
    ~Ref() { release(); }

    AnalysisSession &session() const { return E->S; }
    /// True when the session already existed (a cache hit).
    bool hit() const { return Hit; }
    uint64_t key() const { return E->Key; }
    /// Shared ownership of the entry *without* its lock, for results that
    /// borrow session artifacts (e.g. a flow graph) beyond the Ref's
    /// lifetime: the artifacts stay alive across eviction, but nothing
    /// stays locked — holding locked Refs long-term would deadlock the
    /// next acquire of the same content.
    std::shared_ptr<const void> keepAlive() const { return E; }

  private:
    friend class SessionCache;
    struct Entry {
      Entry(uint64_t Key, AnalysisSession S) : Key(Key), S(std::move(S)) {}
      uint64_t Key;
      AnalysisSession S;
      std::mutex M;
      /// Last measured session size; guarded by the *cache* mutex.
      size_t Bytes = 0;
      /// S.artifactEpoch() at the last measure; guarded by the *entry*
      /// mutex M (written by the Ref that holds it). The sentinel makes
      /// the very first release measure unconditionally.
      unsigned MeasuredEpoch = ~0u;
    };
    Ref(SessionCache *C, std::shared_ptr<Entry> E, bool Hit)
        : C(C), E(std::move(E)), Hit(Hit), Lock(this->E->M) {}

    /// Measures the session (still under the entry lock), unlocks, then
    /// reports the size to the cache — which may evict over-budget
    /// entries, possibly including this one. Releases that computed
    /// nothing new (the artifact epoch is unchanged) skip both the deep
    /// measure and the cache round trip, so the pure-hit path costs no
    /// more than the unlock.
    void release() {
      if (!E)
        return;
      unsigned Epoch = E->S.artifactEpoch();
      bool Changed = Epoch != E->MeasuredEpoch;
      size_t Bytes = 0;
      if (Changed) {
        Bytes = E->S.memoryBytes();
        E->MeasuredEpoch = Epoch;
      }
      Lock = std::unique_lock<std::mutex>();
      if (C && Changed)
        C->noteReleased(E, Bytes);
      E.reset();
      C = nullptr;
    }

    SessionCache *C = nullptr;
    std::shared_ptr<Entry> E;
    bool Hit = false;
    std::unique_lock<std::mutex> Lock;
  };

  /// Returns the cached session for (\p Source, \p Opts), inserting a
  /// fresh one (labeled \p Name) on miss and evicting the least recently
  /// used entry beyond capacity. On a hit the session keeps the name it
  /// was first inserted under, and the source is never copied: acquire()
  /// only materializes an owned string on miss, acquireOwned() moves the
  /// caller's buffer in (for callers that just read it and would
  /// otherwise pay a second copy).
  Ref acquire(std::string Name, std::string_view Source,
              const SessionOptions &Opts);
  Ref acquireOwned(std::string Name, std::string Source,
                   const SessionOptions &Opts);

  /// Every session created on a miss gets this wiring (see
  /// AnalysisSession::setArtifacts): per-process artifacts shared across
  /// all entries through \p Table, whole-design artifacts through
  /// \p Store. Neither is owned; configure before the cache is shared
  /// across threads.
  void setArtifacts(ProcessArtifactTable *Table, ArtifactBlobStore *Store) {
    ArtTable = Table;
    ArtStore = Store;
  }
  ProcessArtifactTable *artifactTable() const { return ArtTable; }
  ArtifactBlobStore *artifactStore() const { return ArtStore; }

  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return Cap; }
  /// Sum of the measured sizes of resident entries. An entry's size is
  /// measured when its Ref is released, so entries currently being
  /// computed for the first time count as 0 until released.
  size_t bytes() const;
  /// The configured byte budget; 0 = unlimited.
  size_t bytesBudget() const { return BytesBudget; }
  void clear();

private:
  using Entry = Ref::Entry;

  /// \p Owned, when non-null, is the string \p Source views and may be
  /// moved from on miss.
  Ref acquireImpl(std::string Name, std::string_view Source,
                  std::string *Owned, const SessionOptions &Opts);

  /// Records \p E's freshly measured size and evicts LRU entries while
  /// the byte budget is exceeded (keeping at least one entry). Called by
  /// Ref::release with the entry lock already dropped.
  void noteReleased(const std::shared_ptr<Entry> &E, size_t Bytes);

  size_t Cap;
  size_t BytesBudget;
  ProcessArtifactTable *ArtTable = nullptr;
  ArtifactBlobStore *ArtStore = nullptr;
  /// Sum of Entry::Bytes over resident (indexed) entries; guarded by M.
  size_t TotalBytes = 0;
  mutable std::mutex M;
  /// Front = most recently used.
  std::list<std::shared_ptr<Entry>> Lru;
  std::unordered_map<uint64_t, std::list<std::shared_ptr<Entry>>::iterator>
      Index;
  Stats St;
};

} // namespace driver
} // namespace vif

#endif // VIF_DRIVER_SESSIONCACHE_H
