//===- driver/Serialize.cpp -----------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/Serialize.h"

#include "driver/ArtifactStore.h"

#include <ostream>

using namespace vif;
using namespace vif::driver;

void vif::driver::writeSchemaTag(JsonWriter &J) {
  J.member("schema", SchemaVersion);
}

void vif::driver::writeDesignBody(JsonWriter &J, const DesignResult &D,
                                  const BatchOptions &Opts) {
  J.member("file", D.Name);
  J.member("status", D.Ok ? "ok" : "error");
  if (D.Unreadable)
    J.member("unreadable", true);
  if (!D.Diagnostics.empty())
    J.member("diagnostics", D.Diagnostics);
  if (Opts.Cache)
    J.member("cacheHit", D.CacheHit);
  if (D.Ok) {
    J.member("processes", D.NumProcesses);
    J.member("signals", D.NumSignals);
    J.member("variables", D.NumVariables);
  }
  if (D.Ok &&
      (Opts.Mode == BatchMode::Flows || Opts.Mode == BatchMode::Report)) {
    J.key("graph");
    J.beginObject();
    J.member("nodes", D.NumNodes);
    J.member("edges", D.NumEdges);
    J.key("edgeList");
    J.beginArray();
    if (D.Graph)
      D.Graph->forEachSortedEdge(
          [&J](std::string_view From, std::string_view To) {
            J.beginObject();
            J.member("from", From);
            J.member("to", To);
            J.endObject();
          });
    J.endArray();
    J.endObject();
  }
  if (D.Ok && Opts.Mode == BatchMode::Matrices) {
    J.key("matrices");
    J.beginObject();
    J.member("rmlo", D.RMloEntries);
    J.member("rmgl", D.RMglEntries);
    J.endObject();
  }
  if (D.Ok && Opts.Mode == BatchMode::Report) {
    J.key("violations");
    J.beginArray();
    for (const PolicyViolation &V : D.Violations) {
      J.beginObject();
      J.member("from", V.From);
      J.member("to", V.To);
      J.member("viaPath", V.ViaPath);
      J.endObject();
    }
    J.endArray();
  }
  if (D.Ok && Opts.Mode == BatchMode::Query) {
    J.key("query");
    J.beginObject();
    J.member("from", Opts.QueryFrom);
    J.member("to", Opts.QueryTo);
    J.member("reaches", D.Reaches);
    if (D.Reaches) {
      J.key("witness");
      J.beginArray();
      for (const query::WitnessStep &Step : D.Witness) {
        J.beginObject();
        J.member("node", Step.Node);
        J.member("resource", Step.Resource);
        J.member("kind", query::nodeMarkName(Step.Mark));
        J.endObject();
      }
      J.endArray();
    }
    J.key("reachableFrom");
    J.beginArray();
    for (const std::string &Node : D.Forward)
      J.value(Node);
    J.endArray();
    J.key("whatReaches");
    J.beginArray();
    for (const std::string &Node : D.Backward)
      J.value(Node);
    J.endArray();
    J.endObject();
  }
  J.key("timings");
  J.beginObject();
  J.member("readMs", D.Timings.ReadMs);
  J.member("parseMs", D.Timings.ParseMs);
  J.member("elaborateMs", D.Timings.ElaborateMs);
  J.member("cfgMs", D.Timings.CfgMs);
  J.member("ifaMs", D.Timings.IfaMs);
  J.member("kemmererMs", D.Timings.KemmererMs);
  J.member("alfpMs", D.Timings.AlfpMs);
  J.member("queryMs", D.Timings.QueryMs);
  J.member("storeMs", D.Timings.StoreMs);
  J.member("totalMs", D.Timings.totalMs());
  J.endObject();
}

void vif::driver::writeCacheObject(JsonWriter &J, const SessionCache &Cache) {
  SessionCache::Stats St = Cache.stats();
  J.key("cache");
  J.beginObject();
  J.member("size", Cache.size());
  J.member("capacity", Cache.capacity());
  J.member("hits", St.Hits);
  J.member("misses", St.Misses);
  J.member("evictions", St.Evictions);
  J.member("bytes", Cache.bytes());
  J.member("bytesBudget", Cache.bytesBudget());
  J.endObject();
}

void vif::driver::writeStoreObject(JsonWriter &J,
                                   const ArtifactStore &Store) {
  ArtifactStore::Counters C = Store.counters();
  J.key("store");
  J.beginObject();
  J.member("hits", C.Hits);
  J.member("misses", C.Misses);
  J.member("writes", C.Writes);
  J.member("bytesRead", C.BytesRead);
  J.member("bytesWritten", C.BytesWritten);
  J.endObject();
}

void vif::driver::writeBatchDocument(std::ostream &OS, const BatchResult &R,
                                     const BatchOptions &Opts,
                                     JsonStyle Style) {
  JsonWriter J(OS, Style);
  J.beginObject();
  writeSchemaTag(J);
  J.member("command", batchModeName(Opts.Mode));
  if (Opts.Mode == BatchMode::Flows)
    J.member("method", flowMethodName(Opts.Method));

  J.key("designs");
  J.beginArray();
  for (const DesignResult &D : R.Designs) {
    J.beginObject();
    writeDesignBody(J, D, Opts);
    J.endObject();
  }
  J.endArray();

  J.key("summary");
  J.beginObject();
  J.member("designs", R.Designs.size());
  J.member("ok", R.NumOk);
  J.member("failed", R.NumFailed);
  if (Opts.Mode == BatchMode::Report)
    J.member("violations", R.NumViolations);
  J.member("wallMs", R.WallMs);
  J.endObject();
  if (Opts.Cache)
    writeCacheObject(J, *Opts.Cache);
  J.endObject();
}

void vif::driver::writeErrorObject(JsonWriter &J, std::string_view Code,
                                   std::string_view Message) {
  J.key("error");
  J.beginObject();
  J.member("code", Code);
  J.member("message", Message);
  J.endObject();
}

void vif::driver::writeSimDocument(std::ostream &OS, const SimDocument &Doc,
                                   JsonStyle Style) {
  JsonWriter J(OS, Style);
  J.beginObject();
  writeSchemaTag(J);
  J.member("command", "sim");
  J.member("file", Doc.File);
  J.member("status", Doc.Status);
  J.member("deltas", Doc.Deltas);
  if (!Doc.StuckReason.empty())
    J.member("reason", Doc.StuckReason);
  J.key("signals");
  J.beginArray();
  for (const SimSignalValue &S : Doc.Signals) {
    J.beginObject();
    J.member("name", S.Name);
    J.member("value", S.Value);
    J.endObject();
  }
  J.endArray();
  J.endObject();
}

void vif::driver::writeDatalogDocument(
    std::ostream &OS, std::string_view File,
    const std::vector<DatalogRelation> &Relations, size_t DerivedCount,
    JsonStyle Style) {
  JsonWriter J(OS, Style);
  J.beginObject();
  writeSchemaTag(J);
  J.member("command", "datalog");
  J.member("file", File);
  J.key("relations");
  J.beginArray();
  for (const DatalogRelation &R : Relations) {
    J.beginObject();
    J.member("name", R.Name);
    J.member("arity", R.Arity);
    J.key("tuples");
    J.beginArray();
    for (const std::vector<std::string> &T : R.Tuples) {
      J.beginArray();
      for (const std::string &Atom : T)
        J.value(Atom);
      J.endArray();
    }
    J.endArray();
    J.endObject();
  }
  J.endArray();
  J.member("derived", DerivedCount);
  J.endObject();
}
