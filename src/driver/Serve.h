//===- driver/Serve.h - Long-lived analysis server --------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `vifc serve`: a long-lived request loop that keeps AnalysisSessions
/// warm behind a content-addressed SessionCache, so re-analyzing an
/// unchanged design answers from cached artifacts instead of recomputing
/// the pipeline. The protocol is line-delimited JSON — one request object
/// per line in, one vifc.v1 response document per line out — spoken over
/// stdin/stdout or an optional loopback TCP listener. docs/SERVER.md is
/// the normative protocol walkthrough; docs/SCHEMA.md specifies the
/// response documents.
///
/// The core is transport-agnostic: handleLine() maps one request string
/// to one response string, and the stdio/fd/TCP loops are thin wrappers —
/// which is also what makes the server testable in-process.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_DRIVER_SERVE_H
#define VIF_DRIVER_SERVE_H

#include "driver/SessionCache.h"

#include <cstdint>
#include <iosfwd>
#include <string>

namespace vif {
namespace driver {

struct ServeOptions {
  /// LRU capacity of the session cache (entries, not bytes).
  size_t CacheCapacity = SessionCache::DefaultCapacity;
  /// Session defaults a request's "options" object overrides per field.
  SessionOptions Session;
};

/// One server: a session cache plus request counters. Not itself
/// thread-safe — requests are handled one at a time per server (the cache
/// underneath is thread-safe, so sharing one across servers is fine).
class Server {
public:
  explicit Server(ServeOptions Opts = ServeOptions());

  /// Handles one request line and returns the one-line JSON response
  /// (no trailing newline). Never throws; malformed input yields an
  /// error-object response. A "shutdown" request flips shuttingDown().
  std::string handleLine(const std::string &Line);

  /// True once a shutdown request was served; loops exit after writing
  /// its response.
  bool shuttingDown() const { return ShuttingDown; }

  /// The stdio loop: one request per line on \p In, one response per
  /// line on \p Out (flushed per response). Returns at EOF or shutdown.
  /// Blank lines are ignored.
  void run(std::istream &In, std::ostream &Out);

  /// The same loop over a connected file descriptor (one client).
  /// Returns false with \p Error set on a transport failure.
  bool serveFd(int Fd, std::string *Error = nullptr);

  /// Binds 127.0.0.1:\p Port and serves connections one at a time until
  /// a shutdown request arrives. Loopback only: the protocol has no
  /// authentication, so it must not listen on routable interfaces.
  bool listenAndServe(uint16_t Port, std::string *Error = nullptr);

  SessionCache &cache() { return Cache; }
  uint64_t requestsHandled() const { return Requests; }

private:
  ServeOptions Opts;
  SessionCache Cache;
  uint64_t Requests = 0;
  bool ShuttingDown = false;
};

} // namespace driver
} // namespace vif

#endif // VIF_DRIVER_SERVE_H
