//===- driver/Serve.h - Long-lived analysis server --------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `vifc serve`: a long-lived request loop that keeps AnalysisSessions
/// warm behind a content-addressed SessionCache, so re-analyzing an
/// unchanged design answers from cached artifacts instead of recomputing
/// the pipeline. The protocol is line-delimited JSON — one request object
/// per line in, one vifc.v1 response document per line out — spoken over
/// stdin/stdout or an optional loopback TCP listener. docs/SERVER.md is
/// the normative protocol walkthrough; docs/SCHEMA.md specifies the
/// response documents.
///
/// The core is transport-agnostic and thread-safe: handleLine() maps one
/// request string to one response string and may be called from many
/// threads at once (the SessionCache underneath serializes per entry).
/// The stdio/fd loops are thin single-connection wrappers; listenAndServe
/// is the concurrent TCP front end — an accept loop handing connections
/// to a fixed WorkerPool (support/Parallel.h) with bounded admission,
/// which is also what makes the server testable in-process.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_DRIVER_SERVE_H
#define VIF_DRIVER_SERVE_H

#include "driver/ArtifactStore.h"
#include "driver/SessionCache.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace vif {
namespace driver {

struct ServeOptions {
  /// LRU capacity of the session cache in entries.
  size_t CacheCapacity = SessionCache::DefaultCapacity;
  /// Byte budget for the session cache (deep-measured entry sizes);
  /// 0 = entries-only eviction.
  size_t CacheBytes = 0;
  /// TCP worker threads (listenAndServe): each worker owns one
  /// connection at a time. 0 = auto (hardware concurrency, capped at 8).
  unsigned Workers = 0;
  /// Connections allowed to wait for a free worker before new ones are
  /// shed with an `overloaded` error response. 0 = auto (2x workers).
  size_t MaxQueuedConns = 0;
  /// Called once the TCP listener is bound, with the actual port —
  /// which is only known here when asking for an ephemeral port (0).
  std::function<void(uint16_t)> OnListening;
  /// Session defaults a request's "options" object overrides per field.
  SessionOptions Session;
  /// When non-empty, the server persists analysis artifacts under this
  /// directory (driver/ArtifactStore.h) and serves them back across
  /// restarts; the per-process artifact table is backed by it. Empty =
  /// in-memory incrementality only.
  std::string StoreDir;
};

/// One server: a session cache plus request counters. handleLine (and
/// therefore serveFd, on distinct descriptors) is safe to call from many
/// threads concurrently; listenAndServe runs exactly that way.
class Server {
public:
  explicit Server(ServeOptions Opts = ServeOptions());

  /// Handles one request line and returns the one-line JSON response
  /// (no trailing newline). Never throws; malformed input yields an
  /// error-object response. A "shutdown" request flips shuttingDown().
  /// Thread-safe.
  std::string handleLine(const std::string &Line);

  /// True once a shutdown request was served; loops exit after writing
  /// its response.
  bool shuttingDown() const {
    return ShuttingDown.load(std::memory_order_acquire);
  }

  /// The stdio loop: one request per line on \p In, one response per
  /// line on \p Out (flushed per response). Returns at EOF or shutdown.
  /// Blank lines are ignored.
  void run(std::istream &In, std::ostream &Out);

  /// The same loop over a connected file descriptor (one client).
  /// Requests on one descriptor are answered in order (pipelining);
  /// distinct descriptors may be served from distinct threads in
  /// parallel. Returns false with \p Error set on a transport failure.
  bool serveFd(int Fd, std::string *Error = nullptr);

  /// Binds 127.0.0.1:\p Port (0 = ephemeral, reported via boundPort()
  /// and ServeOptions::OnListening) and serves connections over a fixed
  /// worker pool until a shutdown request arrives, then drains: requests
  /// already being handled complete and are answered, every connection
  /// is closed. Connections beyond the worker+queue bound are shed with
  /// a one-line `overloaded` error. Loopback only: the protocol has no
  /// authentication, so it must not listen on routable interfaces.
  bool listenAndServe(uint16_t Port, std::string *Error = nullptr);

  /// The port the TCP listener is bound to; 0 until listenAndServe has
  /// bound its socket (poll it from the spawning thread).
  uint16_t boundPort() const {
    return BoundPort.load(std::memory_order_acquire);
  }

  /// Worker threads listenAndServe will use (the resolved Workers
  /// option).
  unsigned effectiveWorkers() const;

  SessionCache &cache() { return Cache; }
  /// The on-disk artifact store; null unless ServeOptions::StoreDir was
  /// set.
  const ArtifactStore *artifactStore() const { return Store.get(); }
  /// The shared per-process artifact table every session analyzes
  /// through.
  ProcessArtifactTable &artifactTable() { return Artifacts; }
  uint64_t requestsHandled() const {
    return Requests.load(std::memory_order_relaxed);
  }
  /// Requests currently inside handleLine, across all threads.
  uint64_t inFlight() const {
    return InFlight.load(std::memory_order_relaxed);
  }

private:
  /// Returns the cached source for a content key, or null (the
  /// `unknown-content-key` error).
  std::shared_ptr<const std::string> lookupContent(const std::string &Key);
  /// Records an inline source under its content key (LRU-bounded) and
  /// returns the key, which the response echoes so clients can switch to
  /// by-reference requests.
  std::string rememberContent(const std::string &Source);

  ServeOptions Opts;
  SessionCache Cache;
  /// On-disk artifact store (ServeOptions::StoreDir) and the per-process
  /// artifact table shared by all sessions; wired into Cache before any
  /// request runs.
  std::unique_ptr<ArtifactStore> Store;
  ProcessArtifactTable Artifacts;
  /// The content-key map behind "contentKey" requests: source bytes by
  /// their content hash, LRU-bounded, populated by inline-source
  /// requests.
  static constexpr size_t ContentCapacity = 1024;
  std::mutex ContentM;
  std::list<std::string> ContentLru; ///< most recent first
  std::unordered_map<std::string,
                     std::pair<std::shared_ptr<const std::string>,
                               std::list<std::string>::iterator>>
      Content;
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> InFlight{0};
  std::atomic<bool> ShuttingDown{false};
  std::atomic<uint16_t> BoundPort{0};
};

} // namespace driver
} // namespace vif

#endif // VIF_DRIVER_SERVE_H
