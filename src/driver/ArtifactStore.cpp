//===- driver/ArtifactStore.cpp -------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "driver/ArtifactStore.h"

#include "support/BinaryIO.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

using namespace vif;
using namespace vif::driver;

namespace fs = std::filesystem;

namespace {

uint64_t fnv1a(std::string_view S) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Frames tagged sections inside a blob payload, mirroring the v1b frame
/// discipline: four ASCII tag chars, then the u64-length-prefixed body.
/// tools/schema_check.py pins every tag handed to section() against
/// docs/SCHEMA.md, exactly as it pins the v1b section tags.
class SectionFramer {
public:
  void section(const char (&Tag)[5], std::string_view Body) {
    W.bytes(Tag, 4);
    W.str(Body);
  }
  std::string take() { return W.take(); }

private:
  ByteWriter W;
};

bool readSection(ByteReader &R, const char (&Tag)[5],
                 std::string_view &Body) {
  char T[4];
  R.bytes(T, 4);
  Body = R.str();
  return R.ok() && std::memcmp(T, Tag, 4) == 0;
}

std::string encodeMatrix(const ResourceMatrix &M) {
  ByteWriter W;
  W.u64(M.size());
  for (const RMEntry &E : M) {
    W.u32(E.L);
    W.u8(static_cast<uint8_t>(E.A));
    W.u32(E.N.raw());
  }
  return W.take();
}

bool decodeMatrix(std::string_view Blob, ResourceMatrix &M) {
  ByteReader R(Blob);
  uint64_t N = R.u64();
  if (N > R.remaining() / 9) // 9 bytes per entry
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    uint32_t L = R.u32();
    uint8_t A = R.u8();
    uint32_t Raw = R.u32();
    if (A > static_cast<uint8_t>(Access::R1))
      return false;
    // The encoder walks a deduplicated matrix; a duplicate is corruption.
    if (!M.insert(Resource::fromRaw(Raw), static_cast<LabelId>(L),
                  static_cast<Access>(A)))
      return false;
  }
  return R.ok() && R.atEnd();
}

std::string encodeGraph(const Digraph &G) {
  ByteWriter W;
  W.u64(G.numNodes());
  for (std::string_view Name : G.nodes())
    W.str(Name);
  W.u64(G.numEdges());
  G.forEachEdgeId([&W](Digraph::NodeId From, Digraph::NodeId To) {
    W.u32(From);
    W.u32(To);
  });
  return W.take();
}

bool decodeGraph(std::string_view Blob, Digraph &G) {
  ByteReader R(Blob);
  uint64_t N = R.u64();
  if (N > R.remaining() / 8) // every name costs at least its length prefix
    return false;
  G.reserveNodes(static_cast<size_t>(N));
  for (uint64_t I = 0; I < N; ++I) {
    std::string_view Name = R.str();
    if (!R.ok())
      return false;
    G.addNode(Name);
  }
  if (G.numNodes() != N) // duplicate names can only come from corruption
    return false;
  uint64_t NumEdges = R.u64();
  if (NumEdges > R.remaining() / 8)
    return false;
  std::vector<std::pair<Digraph::NodeId, Digraph::NodeId>> Edges;
  Edges.reserve(static_cast<size_t>(NumEdges));
  for (uint64_t I = 0; I < NumEdges; ++I) {
    uint32_t From = R.u32();
    uint32_t To = R.u32();
    if (From >= N || To >= N)
      return false;
    Edges.emplace_back(From, To);
  }
  G.addEdges(std::move(Edges));
  return R.ok() && R.atEnd();
}

} // namespace

//===----------------------------------------------------------------------===//
// ArtifactStore
//===----------------------------------------------------------------------===//

ArtifactStore::ArtifactStore(std::string Directory)
    : Dir(std::move(Directory)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  Usable = fs::is_directory(Dir, EC);
}

std::string ArtifactStore::fileName(const char (&Kind)[5], uint64_t Key) {
  return std::string(Kind, 4) + "-" + hex16(Key) + ".bin";
}

bool ArtifactStore::load(const char (&Kind)[5], uint64_t Key,
                         std::string &Payload) {
  if (Usable) {
    std::ifstream In(fs::path(Dir) / fileName(Kind, Key),
                     std::ios::binary);
    if (In) {
      std::string Blob((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
      ByteReader R(Blob);
      char Magic[4];
      R.bytes(Magic, 4);
      uint32_t Version = R.u32();
      char StoredKind[4];
      R.bytes(StoredKind, 4);
      uint64_t StoredKey = R.u64();
      std::string_view Body = R.str();
      uint64_t Check = R.u64();
      if (R.ok() && R.atEnd() &&
          std::memcmp(Magic, ArtifactStoreMagic, 4) == 0 &&
          Version == ArtifactStoreVersion &&
          std::memcmp(StoredKind, Kind, 4) == 0 && StoredKey == Key &&
          Check == fnv1a(Body)) {
        Payload.assign(Body);
        Hits.fetch_add(1, std::memory_order_relaxed);
        BytesRead.fetch_add(Blob.size(), std::memory_order_relaxed);
        return true;
      }
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ArtifactStore::store(const char (&Kind)[5], uint64_t Key,
                          std::string_view Payload) {
  if (!Usable)
    return;
  ByteWriter W;
  W.bytes(ArtifactStoreMagic, 4);
  W.u32(ArtifactStoreVersion);
  W.bytes(Kind, 4);
  W.u64(Key);
  W.str(Payload);
  W.u64(fnv1a(Payload));
  std::string Blob = W.take();

  // Temp name is per-thread so concurrent writers of the same key never
  // interleave; the final rename is atomic, so readers see old-or-new.
  uint64_t Tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  fs::path Tmp = fs::path(Dir) /
                 (".tmp-" + fileName(Kind, Key) + "-" + hex16(Tid));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out.write(Blob.data(), static_cast<std::streamsize>(Blob.size()));
    if (!Out) {
      Out.close();
      std::error_code EC;
      fs::remove(Tmp, EC);
      return;
    }
  }
  std::error_code EC;
  fs::rename(Tmp, fs::path(Dir) / fileName(Kind, Key), EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return;
  }
  Writes.fetch_add(1, std::memory_order_relaxed);
  BytesWritten.fetch_add(Blob.size(), std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Whole-design blob ("dsgn")
//===----------------------------------------------------------------------===//

std::string vif::driver::encodeDesignArtifact(const IFAResult &R) {
  SectionFramer F;
  F.section("RMLO", encodeMatrix(R.RMlo));
  F.section("RMGL", encodeMatrix(R.RMgl));
  F.section("GRPH", encodeGraph(R.Graph));
  return F.take();
}

bool vif::driver::decodeDesignArtifact(std::string_view Payload,
                                       ResourceMatrix &RMlo,
                                       ResourceMatrix &RMgl,
                                       Digraph &Graph) {
  ByteReader R(Payload);
  std::string_view Lo, Gl, Gr;
  if (!readSection(R, "RMLO", Lo) || !readSection(R, "RMGL", Gl) ||
      !readSection(R, "GRPH", Gr) || !R.atEnd())
    return false;
  return decodeMatrix(Lo, RMlo) && decodeMatrix(Gl, RMgl) &&
         decodeGraph(Gr, Graph);
}

//===----------------------------------------------------------------------===//
// Query-index blob ("qidx")
//===----------------------------------------------------------------------===//

std::string vif::driver::encodeQueryIndex(const query::FlowQueryEngine &E) {
  const BitMatrix &C = E.closureMatrix();
  size_t N = C.numRows();
  size_t Words = (N + 63) / 64; // meaningful words per row (bits == rows)
  ByteWriter W;
  W.u64(N);
  for (size_t RI = 0; RI < N; ++RI) {
    const uint64_t *Row = C.row(RI);
    for (size_t WI = 0; WI < Words; ++WI)
      W.u64(Row[WI]);
  }
  W.u64(E.rowStart().size());
  for (uint32_t V : E.rowStart())
    W.u32(V);
  W.u64(E.succList().size());
  for (Digraph::NodeId S : E.succList())
    W.u32(S);
  SectionFramer F;
  F.section("QIDX", W.take());
  return F.take();
}

std::optional<query::FlowQueryEngine>
vif::driver::decodeQueryIndex(std::string_view Payload,
                              const Digraph &Graph) {
  ByteReader Outer(Payload);
  std::string_view Body;
  if (!readSection(Outer, "QIDX", Body) || !Outer.atEnd())
    return std::nullopt;
  ByteReader R(Body);
  uint64_t N = R.u64();
  if (N != Graph.numNodes())
    return std::nullopt;
  size_t Words = (static_cast<size_t>(N) + 63) / 64;
  if (N && N > R.remaining() / (Words * 8))
    return std::nullopt;
  BitMatrix Closure(static_cast<size_t>(N), static_cast<size_t>(N));
  for (uint64_t RI = 0; RI < N; ++RI) {
    uint64_t *Row = Closure.row(static_cast<size_t>(RI));
    for (size_t WI = 0; WI < Words; ++WI)
      Row[WI] = R.u64();
    // Padding bits beyond N in the last word must stay clear — the
    // matrix's word-level consumers rely on it.
    if (N % 64)
      Row[Words - 1] &= ~uint64_t(0) >> (64 - N % 64);
  }
  uint64_t RSCount = R.u64();
  if (RSCount != N + 1 || RSCount > R.remaining() / 4)
    return std::nullopt;
  std::vector<uint32_t> RowStart(static_cast<size_t>(RSCount));
  for (uint32_t &V : RowStart)
    V = R.u32();
  uint64_t SCount = R.u64();
  if (SCount > R.remaining() / 4)
    return std::nullopt;
  std::vector<Digraph::NodeId> Succ(static_cast<size_t>(SCount));
  for (Digraph::NodeId &S : Succ)
    S = R.u32();
  if (!R.ok() || !R.atEnd())
    return std::nullopt;
  return query::FlowQueryEngine::fromIndex(Graph, std::move(Closure),
                                           std::move(RowStart),
                                           std::move(Succ));
}
