//===- driver/AnalysisSession.h - Cached analysis pipeline ------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver layer owns the parse → elaborate → CFG → RD → IFA pipeline
/// end-to-end. An AnalysisSession loads one source and computes each
/// artifact lazily, at most once, caching it for every later consumer —
/// the CLI adapters, the batch runner, tests and benches all share the
/// same pipeline instead of re-wiring it by hand. Failed stages are
/// cached too: a session never re-parses a broken design and never
/// reports the same diagnostic twice. Repeated accessor calls return the
/// same object (pointer-identical), which downstream caching layers rely
/// on.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_DRIVER_ANALYSISSESSION_H
#define VIF_DRIVER_ANALYSISSESSION_H

#include "ifa/AlfpClosure.h"
#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "parse/Parser.h"
#include "query/FlowQueryEngine.h"
#include "rd/Incremental.h"
#include "sema/Elaborator.h"

#include <optional>
#include <string>

namespace vif {
namespace driver {

/// Wall-clock cost of each computed stage, milliseconds. A stage that was
/// never requested stays 0.
struct StageTimings {
  double ReadMs = 0;
  double ParseMs = 0;
  double ElaborateMs = 0;
  double CfgMs = 0;
  double IfaMs = 0;
  double KemmererMs = 0;
  double AlfpMs = 0;
  double QueryMs = 0;
  /// Time spent loading/decoding and encoding/writing on-disk artifacts
  /// (the `--store` path). Solver time it saved shows up as the *absence*
  /// of IfaMs/QueryMs — a warm-disk run has IfaMs ~0 and only StoreMs.
  double StoreMs = 0;

  double totalMs() const {
    return ReadMs + ParseMs + ElaborateMs + CfgMs + IfaMs + KemmererMs +
           AlfpMs + QueryMs + StoreMs;
  }
};

struct SessionOptions {
  /// Parse the input as a bare statement program instead of a design file.
  bool Statements = false;
  /// Options for the RD-guided analysis (Table 9 improvement knobs etc.).
  IFAOptions Ifa;
};

/// Reads \p Path into \p Out ("-" drains stdin); false on I/O failure.
/// The same reader AnalysisSession::source() uses, exposed so callers
/// that need the content up front (the content-addressed SessionCache)
/// read it identically.
bool readSourceFile(const std::string &Path, std::string &Out);

/// One design's trip through the pipeline, artifacts computed on demand.
class AnalysisSession {
public:
  /// A session that lazily reads \p Path ("-" reads stdin).
  static AnalysisSession fromFile(std::string Path,
                                  SessionOptions Opts = SessionOptions());
  /// A session over an in-memory source, labeled \p Name in results.
  static AnalysisSession fromSource(std::string Name, std::string Source,
                                    SessionOptions Opts = SessionOptions());

  AnalysisSession(AnalysisSession &&) = default;
  AnalysisSession &operator=(AnalysisSession &&) = default;

  /// Wires the incremental/persistence layer in: per-process Table 4/5
  /// artifacts are reused through \p Table, whole-design artifacts (the
  /// matrices + flow graph, the query index) through \p Store. Either may
  /// be null; neither is owned. Call before the first analysis accessor —
  /// artifacts already computed are never retrofitted.
  void setArtifacts(ProcessArtifactTable *Table, ArtifactBlobStore *Store) {
    Artifacts = Table;
    Blobs = Store;
  }

  /// How the last ifa() run composed its Table 4/5 results (all zero when
  /// the cold path ran: no table wired, an uncovered option mode, or a
  /// whole-design store hit that skipped the solvers entirely).
  const IncrementalStats &incrementalStats() const { return IncStats; }

  /// True while ifa() holds a store-served partial result (matrices and
  /// flow graph only). reachingDefs()/alfp() upgrade it in place — the
  /// graph and matrices keep their identity, the RD tier is filled in.
  bool ifaPartial() const { return IfaPartial; }

  const std::string &name() const { return Name; }
  const SessionOptions &options() const { return Opts; }
  const DiagnosticEngine &diagnostics() const { return Diags; }
  const StageTimings &timings() const { return Times; }

  /// The raw source text; nullptr when the file cannot be read.
  const std::string *source();
  /// True once source() has failed — an I/O failure, as opposed to parse
  /// or elaboration diagnostics.
  bool unreadable() const { return SourceState == State::Failed; }

  /// The parsed design file (nullptr for statement sessions or on parse
  /// errors; diagnostics() holds why).
  const DesignFile *designAst();
  /// The parsed statement program (statement sessions only).
  const StatementProgram *statementAst();

  /// The elaborated flat process model; nullptr on any earlier failure.
  const ElaboratedProgram *program();
  /// Labels/flow/cf facts over program().
  const ProgramCFG *cfg();
  /// The RD-guided Information Flow analysis under options().Ifa,
  /// including the RD intermediates and the flow graph.
  const IFAResult *ifa();
  /// The underlying Reaching Definitions results (computed with ifa()).
  const ReachingDefsResult *reachingDefs();
  /// Kemmerer's transitive-closure baseline.
  const KemmererResult *kemmerer();
  /// The ALFP re-derivation of ifa()'s closure. Non-null whenever the
  /// solver ran; check Solved for its verdict.
  const AlfpClosureResult *alfp();
  /// The point-query engine over ifa()'s flow graph: one reachability
  /// closure + CSR index, built once and cached like every other artifact
  /// (memoryBytes() counts it against the cache budget). The engine
  /// borrows ifa()->Graph, which lives as long as the session.
  const query::FlowQueryEngine *queryEngine();

  /// Deep size of everything this session currently holds, in bytes:
  /// the source text plus the measured footprints of every computed
  /// artifact (ResourceMatrix/BitMatrix/Digraph/PairSet allocations —
  /// the structures that dominate a warm session). The AST/elaboration/
  /// CFG tier is estimated at a fixed multiple of the source size (those
  /// trees are a small constant factor of it) rather than walked. This
  /// is what SessionCache charges an entry against its `--cache-bytes`
  /// budget; it only measures, never computes or flushes anything. Not
  /// thread-safe against concurrent lazy computation — call it while
  /// holding the session's cache-entry lock.
  size_t memoryBytes() const;

  /// Bumped every time a lazy stage runs (successfully or not), so
  /// holders can tell whether memoryBytes() could have changed since
  /// they last measured — a pure consumer of already-computed artifacts
  /// leaves the epoch alone, and SessionCache skips the re-measure on
  /// such releases. Same thread-safety rule as memoryBytes().
  unsigned artifactEpoch() const { return ArtifactEpoch; }

private:
  AnalysisSession() = default;

  enum class State : uint8_t { NotComputed, Ok, Failed };

  /// Runs the parse stage if needed; true when an AST is available.
  bool ensureParsed();

  /// The store key for whole-design artifacts: the session cache key of
  /// (source, options). Requires the source to be loaded.
  uint64_t designKey();
  /// The solver path of ifa(): incremental through Artifacts when
  /// possible, cold otherwise; writes the design blob back on success.
  void computeIfa(const ElaboratedProgram &P, const ProgramCFG &C);
  /// Fills a partial ifa() result's RD tier in place (see ifaPartial()).
  void upgradeIfa();

  std::string Name;
  SessionOptions Opts;
  DiagnosticEngine Diags;
  StageTimings Times;
  unsigned ArtifactEpoch = 0;

  State SourceState = State::NotComputed;
  State ParseState = State::NotComputed;
  State ElabState = State::NotComputed;
  State CfgState = State::NotComputed;
  State IfaState = State::NotComputed;
  State KemmererState = State::NotComputed;
  State AlfpState = State::NotComputed;
  State QueryState = State::NotComputed;

  /// Borrowed wiring of the incremental layer; see setArtifacts().
  ProcessArtifactTable *Artifacts = nullptr;
  ArtifactBlobStore *Blobs = nullptr;
  IncrementalStats IncStats;
  bool IfaPartial = false;

  std::string Src;
  std::optional<DesignFile> DesignAst;
  std::optional<StatementProgram> StmtAst;
  std::optional<ElaboratedProgram> Prog;
  std::optional<ProgramCFG> Cfg;
  std::optional<IFAResult> Ifa;
  std::optional<KemmererResult> Kemm;
  std::optional<AlfpClosureResult> Alfp;
  std::optional<query::FlowQueryEngine> Query;
};

} // namespace driver
} // namespace vif

#endif // VIF_DRIVER_ANALYSISSESSION_H
