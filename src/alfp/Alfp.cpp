//===- alfp/Alfp.cpp ------------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "alfp/Alfp.h"

#include <algorithm>
#include <cassert>

using namespace vif;
using namespace vif::alfp;

Atom Interner::intern(const std::string &S) {
  auto It = Ids.find(S);
  if (It != Ids.end())
    return It->second;
  Atom A = static_cast<Atom>(Names.size());
  Names.push_back(S);
  Ids.emplace(S, A);
  return A;
}

const std::string &Interner::name(Atom A) const {
  assert(A < Names.size() && "atom out of range");
  return Names[A];
}

RelId Program::relation(const std::string &Name, unsigned Arity) {
  auto It = RelIds.find(Name);
  if (It != RelIds.end()) {
    assert(Relations[It->second].Arity == Arity &&
           "relation redeclared with different arity");
    return It->second;
  }
  RelId R = static_cast<RelId>(Relations.size());
  Relations.push_back(Relation{Name, Arity, {}});
  RelIds.emplace(Name, R);
  return R;
}

std::optional<RelId> Program::findRelation(const std::string &Name) const {
  auto It = RelIds.find(Name);
  if (It == RelIds.end())
    return std::nullopt;
  return It->second;
}

const std::string &Program::relationName(RelId R) const {
  assert(R < Relations.size() && "unknown relation");
  return Relations[R].Name;
}

unsigned Program::relationArity(RelId R) const {
  assert(R < Relations.size() && "unknown relation");
  return Relations[R].Arity;
}

void Program::fact(RelId R, Tuple T) {
  assert(R < Relations.size() && "unknown relation");
  assert(T.size() == Relations[R].Arity && "fact arity mismatch");
  Relations[R].Facts.insert(std::move(T));
}

const std::set<Tuple> &Program::tuples(RelId R) const {
  assert(R < Relations.size() && "unknown relation");
  return Relations[R].Facts;
}

bool Program::contains(RelId R, const Tuple &T) const {
  return tuples(R).count(T) != 0;
}

bool Program::checkSafety(const Clause &C, std::string *Error) const {
  std::set<uint32_t> Bound;
  for (const Literal &L : C.Body) {
    if (L.Negated)
      continue;
    for (const Term &T : L.Args)
      if (T.IsVar)
        Bound.insert(T.Id);
  }
  auto CheckLiteral = [&](const Literal &L, const char *Role) {
    for (const Term &T : L.Args)
      if (T.IsVar && !Bound.count(T.Id)) {
        if (Error)
          *Error = std::string("unsafe clause: variable in ") + Role +
                   " of '" + Relations[L.Rel].Name +
                   "' is not bound by a positive body literal";
        return false;
      }
    return true;
  };
  if (!CheckLiteral(C.Head, "head"))
    return false;
  for (const Literal &L : C.Body)
    if (L.Negated && !CheckLiteral(L, "negated literal"))
      return false;
  return true;
}

bool Program::stratify(std::vector<std::vector<size_t>> &ClausesByStratum,
                       std::string *Error) const {
  // Assign strata by iterating Bellman-Ford style:
  //   stratum(head) >= stratum(positive body rel)
  //   stratum(head) >= stratum(negated body rel) + 1
  // Failure to converge within |relations| rounds means negation occurs in
  // a cycle.
  size_t N = Relations.size();
  std::vector<unsigned> Stratum(N, 0);
  for (size_t Round = 0; Round <= N + 1; ++Round) {
    bool Changed = false;
    for (const Clause &C : Clauses) {
      unsigned &H = Stratum[C.Head.Rel];
      for (const Literal &L : C.Body) {
        unsigned Need = Stratum[L.Rel] + (L.Negated ? 1 : 0);
        if (H < Need) {
          H = Need;
          Changed = true;
        }
      }
    }
    if (!Changed)
      break;
    if (Round == N + 1) {
      if (Error)
        *Error = "program is not stratifiable: negation through recursion";
      return false;
    }
  }
  unsigned MaxStratum = 0;
  for (unsigned S : Stratum)
    MaxStratum = std::max(MaxStratum, S);
  ClausesByStratum.assign(MaxStratum + 1, {});
  for (size_t I = 0; I < Clauses.size(); ++I)
    ClausesByStratum[Stratum[Clauses[I].Head.Rel]].push_back(I);
  return true;
}

void Program::matchFrom(const Clause &C, size_t LitIdx, int DeltaPos,
                        const std::vector<std::set<Tuple>> &Delta,
                        std::map<uint32_t, Atom> &Bindings,
                        std::set<Tuple> &NewTuples) {
  if (LitIdx == C.Body.size()) {
    // Instantiate the head.
    Tuple T;
    T.reserve(C.Head.Args.size());
    for (const Term &A : C.Head.Args)
      T.push_back(A.IsVar ? Bindings.at(A.Id) : A.Id);
    if (!Relations[C.Head.Rel].Facts.count(T))
      NewTuples.insert(std::move(T));
    return;
  }

  const Literal &L = C.Body[LitIdx];
  ++Applications;

  if (L.Negated) {
    Tuple T;
    T.reserve(L.Args.size());
    for (const Term &A : L.Args)
      T.push_back(A.IsVar ? Bindings.at(A.Id) : A.Id);
    if (!Relations[L.Rel].Facts.count(T))
      matchFrom(C, LitIdx + 1, DeltaPos, Delta, Bindings, NewTuples);
    return;
  }

  const std::set<Tuple> &Source = (static_cast<int>(LitIdx) == DeltaPos)
                                      ? Delta[L.Rel]
                                      : Relations[L.Rel].Facts;
  for (const Tuple &T : Source) {
    // Unify T against L.Args under the current bindings.
    std::vector<uint32_t> NewlyBound;
    bool Ok = true;
    for (size_t I = 0; I < L.Args.size() && Ok; ++I) {
      const Term &A = L.Args[I];
      if (!A.IsVar) {
        Ok = A.Id == T[I];
        continue;
      }
      auto It = Bindings.find(A.Id);
      if (It == Bindings.end()) {
        Bindings.emplace(A.Id, T[I]);
        NewlyBound.push_back(A.Id);
      } else {
        Ok = It->second == T[I];
      }
    }
    if (Ok)
      matchFrom(C, LitIdx + 1, DeltaPos, Delta, Bindings, NewTuples);
    for (uint32_t V : NewlyBound)
      Bindings.erase(V);
  }
}

void Program::applyClause(const Clause &C, int DeltaPos,
                          const std::vector<std::set<Tuple>> &Delta,
                          std::set<Tuple> &NewTuples) {
  std::map<uint32_t, Atom> Bindings;
  matchFrom(C, 0, DeltaPos, Delta, Bindings, NewTuples);
}

bool Program::solve(std::string *Error) {
  for (const Clause &C : Clauses)
    if (!checkSafety(C, Error))
      return false;

  std::vector<std::vector<size_t>> ByStratum;
  if (!stratify(ByStratum, Error))
    return false;

  for (const std::vector<size_t> &Stratum : ByStratum) {
    // Naive first round (all-full evaluation) seeds the deltas.
    std::vector<std::set<Tuple>> Delta(Relations.size());
    for (size_t CI : Stratum) {
      std::set<Tuple> New;
      applyClause(Clauses[CI], -1, Delta, New);
      for (const Tuple &T : New)
        if (Relations[Clauses[CI].Head.Rel].Facts.insert(T).second) {
          Delta[Clauses[CI].Head.Rel].insert(T);
          ++Derived;
        }
    }
    // Semi-naive iteration: at least one same-stratum positive literal is
    // bound to the delta of the previous round.
    std::set<RelId> StratumRels;
    for (size_t CI : Stratum)
      StratumRels.insert(Clauses[CI].Head.Rel);
    while (true) {
      std::vector<std::set<Tuple>> NewDelta(Relations.size());
      bool Any = false;
      for (size_t CI : Stratum) {
        const Clause &C = Clauses[CI];
        for (size_t LI = 0; LI < C.Body.size(); ++LI) {
          const Literal &L = C.Body[LI];
          if (L.Negated || !StratumRels.count(L.Rel) ||
              Delta[L.Rel].empty())
            continue;
          std::set<Tuple> New;
          applyClause(C, static_cast<int>(LI), Delta, New);
          for (const Tuple &T : New)
            if (Relations[C.Head.Rel].Facts.insert(T).second) {
              NewDelta[C.Head.Rel].insert(T);
              ++Derived;
              Any = true;
            }
        }
      }
      if (!Any)
        break;
      Delta = std::move(NewDelta);
    }
  }
  return true;
}
