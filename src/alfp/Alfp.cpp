//===- alfp/Alfp.cpp ------------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "alfp/Alfp.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace vif;
using namespace vif::alfp;

Atom Interner::intern(const std::string &S) {
  auto It = Ids.find(S);
  if (It != Ids.end())
    return It->second;
  Atom A = static_cast<Atom>(Names.size());
  Names.push_back(S);
  Ids.emplace(S, A);
  return A;
}

const std::string &Interner::name(Atom A) const {
  assert(A < Names.size() && "atom out of range");
  return Names[A];
}

//===----------------------------------------------------------------------===//
// TupleStore
//===----------------------------------------------------------------------===//

uint64_t TupleStore::hashRow(const Atom *T) const {
  // FNV-1a over the row's atoms; collisions are resolved by content
  // comparison inside the bucket.
  uint64_t H = 1469598103934665603ull;
  for (unsigned I = 0; I < ArityVal; ++I) {
    H ^= T[I];
    H *= 1099511628211ull;
  }
  return H;
}

bool TupleStore::insert(const Atom *T) {
  uint64_t H = hashRow(T);
  std::vector<uint32_t> &Bucket = HashBuckets[H];
  for (uint32_t R : Bucket)
    if (std::equal(T, T + ArityVal, Data.data() + size_t(R) * ArityVal))
      return false;
  uint32_t NewRow = static_cast<uint32_t>(NumRows);
  Bucket.push_back(NewRow);
  Data.insert(Data.end(), T, T + ArityVal);
  if (ArityVal != 0)
    Col0[T[0]].push_back(NewRow);
  ++NumRows;
  return true;
}

bool TupleStore::contains(const Atom *T) const {
  auto It = HashBuckets.find(hashRow(T));
  if (It == HashBuckets.end())
    return false;
  for (uint32_t R : It->second)
    if (std::equal(T, T + ArityVal, Data.data() + size_t(R) * ArityVal))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

RelId Program::relation(const std::string &Name, unsigned Arity) {
  auto It = RelIds.find(Name);
  if (It != RelIds.end()) {
    assert(Relations[It->second].Arity == Arity &&
           "relation redeclared with different arity");
    return It->second;
  }
  RelId R = static_cast<RelId>(Relations.size());
  Relations.push_back(Relation{Name, Arity, TupleStore(Arity)});
  RelIds.emplace(Name, R);
  return R;
}

std::optional<RelId> Program::findRelation(const std::string &Name) const {
  auto It = RelIds.find(Name);
  if (It == RelIds.end())
    return std::nullopt;
  return It->second;
}

const std::string &Program::relationName(RelId R) const {
  assert(R < Relations.size() && "unknown relation");
  return Relations[R].Name;
}

unsigned Program::relationArity(RelId R) const {
  assert(R < Relations.size() && "unknown relation");
  return Relations[R].Arity;
}

void Program::fact(RelId R, Tuple T) {
  assert(R < Relations.size() && "unknown relation");
  assert(T.size() == Relations[R].Arity && "fact arity mismatch");
  Relations[R].Facts.insert(T);
}

const TupleStore &Program::tuples(RelId R) const {
  assert(R < Relations.size() && "unknown relation");
  return Relations[R].Facts;
}

bool Program::contains(RelId R, const Tuple &T) const {
  return tuples(R).contains(T);
}

bool Program::checkSafety(const Clause &C, std::string *Error) const {
  // The join loop tracks freshly bound argument positions in a 64-bit
  // mask; diagnose wider literals up front instead of corrupting
  // bindings at solve time.
  for (const Literal &L : C.Body)
    if (L.Args.size() > MaxLiteralArity) {
      if (Error)
        *Error = "literal of '" + Relations[L.Rel].Name +
                 "' exceeds the supported arity of " +
                 std::to_string(MaxLiteralArity);
      return false;
    }
  std::set<uint32_t> Bound;
  for (const Literal &L : C.Body) {
    if (L.Negated)
      continue;
    for (const Term &T : L.Args)
      if (T.IsVar)
        Bound.insert(T.Id);
  }
  auto CheckLiteral = [&](const Literal &L, const char *Role) {
    for (const Term &T : L.Args)
      if (T.IsVar && !Bound.count(T.Id)) {
        if (Error)
          *Error = std::string("unsafe clause: variable in ") + Role +
                   " of '" + Relations[L.Rel].Name +
                   "' is not bound by a positive body literal";
        return false;
      }
    return true;
  };
  if (!CheckLiteral(C.Head, "head"))
    return false;
  for (const Literal &L : C.Body)
    if (L.Negated && !CheckLiteral(L, "negated literal"))
      return false;
  return true;
}

bool Program::stratify(std::vector<std::vector<size_t>> &ClausesByStratum,
                       std::string *Error) const {
  // Assign strata by iterating Bellman-Ford style:
  //   stratum(head) >= stratum(positive body rel)
  //   stratum(head) >= stratum(negated body rel) + 1
  // Failure to converge within |relations| rounds means negation occurs in
  // a cycle.
  size_t N = Relations.size();
  std::vector<unsigned> Stratum(N, 0);
  for (size_t Round = 0; Round <= N + 1; ++Round) {
    bool Changed = false;
    for (const Clause &C : Clauses) {
      unsigned &H = Stratum[C.Head.Rel];
      for (const Literal &L : C.Body) {
        unsigned Need = Stratum[L.Rel] + (L.Negated ? 1 : 0);
        if (H < Need) {
          H = Need;
          Changed = true;
        }
      }
    }
    if (!Changed)
      break;
    if (Round == N + 1) {
      if (Error)
        *Error = "program is not stratifiable: negation through recursion";
      return false;
    }
  }
  unsigned MaxStratum = 0;
  for (unsigned S : Stratum)
    MaxStratum = std::max(MaxStratum, S);
  ClausesByStratum.assign(MaxStratum + 1, {});
  for (size_t I = 0; I < Clauses.size(); ++I)
    ClausesByStratum[Stratum[Clauses[I].Head.Rel]].push_back(I);
  return true;
}

void Program::matchFrom(const Clause &C, size_t LitIdx, int DeltaPos,
                        const std::vector<TupleStore> &Delta,
                        MatchContext &Ctx, TupleStore &Pending) {
  if (LitIdx == C.Body.size()) {
    // Instantiate the head; Pending dedups repeats within this
    // application, the caller dedups against the full relation.
    Ctx.Scratch.clear();
    for (const Term &A : C.Head.Args)
      Ctx.Scratch.push_back(A.IsVar ? Ctx.BindVal[A.Id] : A.Id);
    if (!Relations[C.Head.Rel].Facts.contains(Ctx.Scratch.data()))
      Pending.insert(Ctx.Scratch.data());
    return;
  }

  const Literal &L = C.Body[LitIdx];

  if (L.Negated) {
    // Safety guarantees every variable is bound here: one membership
    // probe, counted as one application (the same unit of work as one
    // candidate unification on a positive literal).
    ++Applications;
    Ctx.Scratch.clear();
    for (const Term &A : L.Args)
      Ctx.Scratch.push_back(A.IsVar ? Ctx.BindVal[A.Id] : A.Id);
    if (!Relations[L.Rel].Facts.contains(Ctx.Scratch.data()))
      matchFrom(C, LitIdx + 1, DeltaPos, Delta, Ctx, Pending);
    return;
  }

  const TupleStore &Source = (static_cast<int>(LitIdx) == DeltaPos)
                                 ? Delta[L.Rel]
                                 : Relations[L.Rel].Facts;

  // checkSafety rejects wider literals before solving starts, so the
  // unbind mask below cannot overflow.
  assert(L.Args.size() <= MaxLiteralArity && "unchecked literal arity");
  auto TryRow = [&](const Atom *T) {
    ++Applications;
    // Unify T against L.Args under the current bindings; remember which
    // argument positions bound a fresh variable so they can be undone.
    uint64_t FreshMask = 0;
    bool Ok = true;
    for (size_t I = 0; I < L.Args.size() && Ok; ++I) {
      const Term &A = L.Args[I];
      if (!A.IsVar) {
        Ok = A.Id == T[I];
        continue;
      }
      if (!Ctx.BindSet[A.Id]) {
        Ctx.BindSet[A.Id] = 1;
        Ctx.BindVal[A.Id] = T[I];
        FreshMask |= uint64_t(1) << I;
      } else {
        Ok = Ctx.BindVal[A.Id] == T[I];
      }
    }
    if (Ok)
      matchFrom(C, LitIdx + 1, DeltaPos, Delta, Ctx, Pending);
    while (FreshMask) {
      unsigned I = static_cast<unsigned>(__builtin_ctzll(FreshMask));
      FreshMask &= FreshMask - 1;
      Ctx.BindSet[L.Args[I].Id] = 0;
    }
  };

  // First-column index: when the leading argument is already a known atom
  // (a constant or a bound variable), only the rows keyed by it can match.
  if (!L.Args.empty()) {
    const Term &A0 = L.Args[0];
    bool Known = !A0.IsVar || Ctx.BindSet[A0.Id];
    if (Known) {
      Atom Key = A0.IsVar ? Ctx.BindVal[A0.Id] : A0.Id;
      if (const std::vector<uint32_t> *Rows = Source.rowsWithCol0(Key))
        for (uint32_t R : *Rows)
          TryRow(Source.row(R));
      return;
    }
  }
  for (const Atom *T : Source)
    TryRow(T);
}

void Program::applyClause(const Clause &C, int DeltaPos,
                          const std::vector<TupleStore> &Delta,
                          TupleStore &Pending) {
  uint32_t NumVars = 0;
  auto Scan = [&NumVars](const Literal &L) {
    for (const Term &T : L.Args)
      if (T.IsVar)
        NumVars = std::max(NumVars, T.Id + 1);
  };
  Scan(C.Head);
  for (const Literal &L : C.Body)
    Scan(L);
  MatchContext Ctx;
  Ctx.BindVal.assign(NumVars, 0);
  Ctx.BindSet.assign(NumVars, 0);
  matchFrom(C, 0, DeltaPos, Delta, Ctx, Pending);
}

bool Program::solve(std::string *Error) {
  for (const Clause &C : Clauses)
    if (!checkSafety(C, Error))
      return false;

  std::vector<std::vector<size_t>> ByStratum;
  if (!stratify(ByStratum, Error))
    return false;

  auto FreshDeltas = [this] {
    std::vector<TupleStore> D(Relations.size());
    for (size_t R = 0; R < Relations.size(); ++R)
      D[R].reset(Relations[R].Arity);
    return D;
  };

  TupleStore Pending;
  for (const std::vector<size_t> &Stratum : ByStratum) {
    // Naive first round (all-full evaluation) seeds the deltas.
    std::vector<TupleStore> Delta = FreshDeltas();
    for (size_t CI : Stratum) {
      const Clause &C = Clauses[CI];
      Pending.reset(Relations[C.Head.Rel].Arity);
      applyClause(C, -1, Delta, Pending);
      for (const Atom *T : Pending)
        if (Relations[C.Head.Rel].Facts.insert(T)) {
          Delta[C.Head.Rel].insert(T);
          ++Derived;
        }
    }
    // Semi-naive iteration: at least one same-stratum positive literal is
    // bound to the delta of the previous round.
    std::vector<uint8_t> StratumRels(Relations.size(), 0);
    for (size_t CI : Stratum)
      StratumRels[Clauses[CI].Head.Rel] = 1;
    while (true) {
      std::vector<TupleStore> NewDelta = FreshDeltas();
      bool Any = false;
      for (size_t CI : Stratum) {
        const Clause &C = Clauses[CI];
        for (size_t LI = 0; LI < C.Body.size(); ++LI) {
          const Literal &L = C.Body[LI];
          if (L.Negated || !StratumRels[L.Rel] || Delta[L.Rel].empty())
            continue;
          Pending.reset(Relations[C.Head.Rel].Arity);
          applyClause(C, static_cast<int>(LI), Delta, Pending);
          for (const Atom *T : Pending)
            if (Relations[C.Head.Rel].Facts.insert(T)) {
              NewDelta[C.Head.Rel].insert(T);
              ++Derived;
              Any = true;
            }
        }
      }
      if (!Any)
        break;
      Delta = std::move(NewDelta);
    }
  }
  return true;
}
