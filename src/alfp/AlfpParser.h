//===- alfp/AlfpParser.h - Text syntax for ALFP programs --------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete syntax for the ALFP/Datalog engine, in the tradition of the
/// Succinct Solver's clause input:
///
///   path(X, Y) :- edge(X, Y).
///   path(X, Z) :- path(X, Y), edge(Y, Z).
///   unreach(X) :- node(X), !reach(X).
///   edge(a, b).                      -- facts are clauses without body
///   ?path                           -- marks a relation for output
///
/// Identifiers starting with an uppercase letter are variables; everything
/// else is a constant atom. `--` starts a line comment. Negation is `!`.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_ALFP_ALFPPARSER_H
#define VIF_ALFP_ALFPPARSER_H

#include "alfp/Alfp.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace vif {
namespace alfp {

/// Result of parsing: the populated program plus the relations flagged for
/// output with `?rel` directives (in source order).
struct ParsedProgram {
  Program P;
  std::vector<RelId> Queries;
};

/// Parses \p Source into a program; reports problems to \p Diags. The
/// program is usable iff !Diags.hasErrors().
ParsedProgram parseAlfp(const std::string &Source, DiagnosticEngine &Diags);

/// Renders all tuples of \p Rel as "rel(a, b).\n" lines, sorted.
std::string dumpRelation(const Program &P, RelId Rel);

} // namespace alfp
} // namespace vif

#endif // VIF_ALFP_ALFPPARSER_H
