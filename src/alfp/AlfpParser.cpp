//===- alfp/AlfpParser.cpp ------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "alfp/AlfpParser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

using namespace vif;
using namespace vif::alfp;

namespace {

/// Character-level cursor with line/column tracking.
class Cursor {
public:
  Cursor(const std::string &Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '-' && Pos + 1 < Source.size() && Source[Pos + 1] == '-') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  bool atEnd() const { return Pos >= Source.size(); }
  char peek() const { return atEnd() ? '\0' : Source[Pos]; }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  bool accept(char C) {
    skipTrivia();
    if (peek() != C)
      return false;
    advance();
    return true;
  }

  bool expect(char C, const char *Context) {
    if (accept(C))
      return true;
    Diags.error(loc(), std::string("expected '") + C + "' in " + Context);
    return false;
  }

  /// Reads an identifier ([A-Za-z_][A-Za-z0-9_']*); empty on failure.
  std::string ident() {
    skipTrivia();
    std::string S;
    if (!atEnd() &&
        (std::isalpha(static_cast<unsigned char>(peek())) || peek() == '_'))
      S.push_back(advance());
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_' || peek() == '\''))
      S.push_back(advance());
    return S;
  }

  SourceLoc loc() const { return SourceLoc(Line, Col); }

private:
  const std::string &Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

class AlfpParser {
public:
  AlfpParser(const std::string &Source, DiagnosticEngine &Diags)
      : C(Source, Diags), Diags(Diags) {}

  ParsedProgram run() {
    for (;;) {
      C.skipTrivia();
      if (C.atEnd())
        return std::move(Result);
      if (C.accept('?')) {
        std::string Name = C.ident();
        if (Name.empty()) {
          Diags.error(C.loc(), "expected relation name after '?'");
          return std::move(Result);
        }
        PendingQueries.push_back(Name);
        continue;
      }
      parseClause();
      if (Diags.hasErrors())
        return std::move(Result);
    }
  }

private:
  struct ParsedLiteral {
    std::string Rel;
    bool Negated = false;
    std::vector<Term> Args;
    SourceLoc Loc;
    bool Ground = true;
  };

  /// Variables are clause-local; this maps their names to dense ids.
  std::map<std::string, uint32_t> VarIds;

  std::optional<ParsedLiteral> parseLiteral() {
    ParsedLiteral L;
    L.Loc = C.loc();
    L.Negated = C.accept('!');
    L.Rel = C.ident();
    if (L.Rel.empty()) {
      Diags.error(C.loc(), "expected relation name");
      return std::nullopt;
    }
    if (!C.expect('(', "literal"))
      return std::nullopt;
    for (;;) {
      std::string Arg = C.ident();
      if (Arg.empty()) {
        Diags.error(C.loc(), "expected argument");
        return std::nullopt;
      }
      if (std::isupper(static_cast<unsigned char>(Arg[0]))) {
        auto [It, New] = VarIds.try_emplace(
            Arg, static_cast<uint32_t>(VarIds.size()));
        (void)New;
        L.Args.push_back(Term::var(It->second));
        L.Ground = false;
      } else {
        L.Args.push_back(Term::atom(Result.P.atoms().intern(Arg)));
      }
      if (C.accept(','))
        continue;
      if (!C.expect(')', "literal"))
        return std::nullopt;
      return L;
    }
  }

  RelId relationFor(const ParsedLiteral &L) {
    return Result.P.relation(L.Rel, static_cast<unsigned>(L.Args.size()));
  }

  void parseClause() {
    VarIds.clear();
    std::optional<ParsedLiteral> Head = parseLiteral();
    if (!Head)
      return;
    if (Head->Negated) {
      Diags.error(Head->Loc, "clause head must not be negated");
      return;
    }
    Clause Cl;
    Cl.Head = Literal{relationFor(*Head), false, Head->Args};
    bool HeadGround = Head->Ground;

    C.skipTrivia();
    if (C.accept('.')) {
      if (!HeadGround) {
        Diags.error(Head->Loc, "facts must be ground");
        return;
      }
      Tuple T;
      for (const Term &A : Head->Args)
        T.push_back(A.Id);
      Result.P.fact(Cl.Head.Rel, std::move(T));
      return;
    }
    // ":-" body.
    if (!C.accept(':') || !C.accept('-')) {
      Diags.error(C.loc(), "expected '.' or ':-' after clause head");
      return;
    }
    for (;;) {
      std::optional<ParsedLiteral> Lit = parseLiteral();
      if (!Lit)
        return;
      Cl.Body.push_back(Literal{relationFor(*Lit), Lit->Negated, Lit->Args});
      if (C.accept(','))
        continue;
      if (!C.expect('.', "clause"))
        return;
      break;
    }
    Result.P.clause(std::move(Cl));
  }

  Cursor C;
  DiagnosticEngine &Diags;
  ParsedProgram Result;

public:
  std::vector<std::string> PendingQueries;
};

} // namespace

ParsedProgram vif::alfp::parseAlfp(const std::string &Source,
                                   DiagnosticEngine &Diags) {
  AlfpParser Parser(Source, Diags);
  ParsedProgram Result = Parser.run();
  // Resolve `?rel` directives once every relation has been declared.
  for (const std::string &Name : Parser.PendingQueries) {
    std::optional<RelId> Rel = Result.P.findRelation(Name);
    if (!Rel) {
      Diags.error(SourceLoc(), "query of unknown relation '" + Name + "'");
      continue;
    }
    Result.Queries.push_back(*Rel);
  }
  return Result;
}

std::string vif::alfp::dumpRelation(const Program &P, RelId Rel) {
  // The store iterates in (deterministic) insertion order; sort the
  // rendered lines so output is stable across derivation orders and
  // interner orderings.
  std::vector<std::string> Lines;
  unsigned Arity = P.relationArity(Rel);
  for (const Atom *T : P.tuples(Rel)) {
    std::ostringstream OS;
    OS << P.relationName(Rel) << '(';
    for (unsigned I = 0; I < Arity; ++I)
      OS << (I ? ", " : "") << P.atoms().name(T[I]);
    OS << ").";
    Lines.push_back(OS.str());
  }
  std::sort(Lines.begin(), Lines.end());
  std::ostringstream OS;
  for (const std::string &L : Lines)
    OS << L << '\n';
  return OS.str();
}
