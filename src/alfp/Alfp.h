//===- alfp/Alfp.h - ALFP/Datalog fixpoint engine ---------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small solver for Alternation-free Least Fixed Point logic in the style
/// of the Succinct Solver [Nielson, Nielson, Seidl 2002], which is the
/// engine the paper's authors implemented their analysis in. The fragment
/// supported here is Datalog with stratified negation:
///
///   clause ::= R(t...) :- L1, ..., Ln.
///   Li     ::= S(t...) | not S(t...)
///
/// Clauses must be safe (every head or negated variable is bound by a
/// positive body literal) and negation must be stratified (no negative
/// dependency inside a recursive component). Evaluation is semi-naive per
/// stratum.
///
/// The ifa module encodes the closure rules of paper Tables 7-9 as clauses
/// (ifa/AlfpClosure.h); tests assert that the engine reproduces the native
/// closure exactly, validating both implementations against each other —
/// the same cross-checking methodology the paper's authors used between
/// their specification and their Succinct Solver encoding.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_ALFP_ALFP_H
#define VIF_ALFP_ALFP_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace vif {
namespace alfp {

/// An interned constant.
using Atom = uint32_t;
/// A relation handle.
using RelId = unsigned;
/// A ground tuple.
using Tuple = std::vector<Atom>;

/// Interns strings as dense Atom ids.
class Interner {
public:
  Atom intern(const std::string &S);
  const std::string &name(Atom A) const;
  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, Atom> Ids;
};

/// A term: either a clause-local variable or a constant atom.
struct Term {
  bool IsVar = false;
  uint32_t Id = 0;

  static Term var(uint32_t V) { return Term{true, V}; }
  static Term atom(Atom A) { return Term{false, A}; }
};

/// A (possibly negated) relation application.
struct Literal {
  RelId Rel = 0;
  bool Negated = false;
  std::vector<Term> Args;
};

/// Head :- Body. An empty body is a fact schema (ground head required).
struct Clause {
  Literal Head;
  std::vector<Literal> Body;
};

/// A Datalog program with stratified negation.
class Program {
public:
  /// Declares (or retrieves) a relation.
  RelId relation(const std::string &Name, unsigned Arity);

  /// Looks a relation up by name without declaring it.
  std::optional<RelId> findRelation(const std::string &Name) const;

  /// Name and arity of a declared relation.
  const std::string &relationName(RelId R) const;
  unsigned relationArity(RelId R) const;

  /// Number of declared relations (ids are dense, 0..count-1).
  size_t relationCount() const { return Relations.size(); }

  /// Adds a ground fact.
  void fact(RelId R, Tuple T);

  /// Adds a clause; safety is checked at solve() time.
  void clause(Clause C) { Clauses.push_back(std::move(C)); }

  /// Runs the fixpoint. Returns false (with \p Error filled in) on safety
  /// or stratification violations.
  bool solve(std::string *Error = nullptr);

  const std::set<Tuple> &tuples(RelId R) const;
  bool contains(RelId R, const Tuple &T) const;

  /// Total number of tuples derived by solve() beyond the base facts.
  size_t derivedCount() const { return Derived; }
  /// Number of rule applications attempted (for the complexity benches).
  size_t applications() const { return Applications; }

  Interner &atoms() { return Atoms; }
  const Interner &atoms() const { return Atoms; }

private:
  struct Relation {
    std::string Name;
    unsigned Arity;
    std::set<Tuple> Facts;
  };

  bool checkSafety(const Clause &C, std::string *Error) const;
  bool stratify(std::vector<std::vector<size_t>> &ClausesByStratum,
                std::string *Error) const;
  /// Evaluates \p C with body literal \p DeltaPos restricted to \p Delta;
  /// DeltaPos == -1 means evaluate against full relations only.
  void applyClause(const Clause &C, int DeltaPos,
                   const std::vector<std::set<Tuple>> &Delta,
                   std::set<Tuple> &NewTuples);
  void matchFrom(const Clause &C, size_t LitIdx, int DeltaPos,
                 const std::vector<std::set<Tuple>> &Delta,
                 std::map<uint32_t, Atom> &Bindings,
                 std::set<Tuple> &NewTuples);

  Interner Atoms;
  std::vector<Relation> Relations;
  std::unordered_map<std::string, RelId> RelIds;
  std::vector<Clause> Clauses;
  size_t Derived = 0;
  size_t Applications = 0;
};

} // namespace alfp
} // namespace vif

#endif // VIF_ALFP_ALFP_H
