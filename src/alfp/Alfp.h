//===- alfp/Alfp.h - ALFP/Datalog fixpoint engine ---------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small solver for Alternation-free Least Fixed Point logic in the style
/// of the Succinct Solver [Nielson, Nielson, Seidl 2002], which is the
/// engine the paper's authors implemented their analysis in. The fragment
/// supported here is Datalog with stratified negation:
///
///   clause ::= R(t...) :- L1, ..., Ln.
///   Li     ::= S(t...) | not S(t...)
///
/// Clauses must be safe (every head or negated variable is bound by a
/// positive body literal) and negation must be stratified (no negative
/// dependency inside a recursive component). Evaluation is semi-naive per
/// stratum; relations are stored as flat tuple rows (TupleStore) with a
/// content-hash membership index and a first-column index that the join
/// loops consult whenever a literal's first argument is already bound.
///
/// The ifa module encodes the closure rules of paper Tables 7-9 as clauses
/// (ifa/AlfpClosure.h); tests assert that the engine reproduces the native
/// closure exactly, validating both implementations against each other —
/// the same cross-checking methodology the paper's authors used between
/// their specification and their Succinct Solver encoding.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_ALFP_ALFP_H
#define VIF_ALFP_ALFP_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace vif {
namespace alfp {

/// An interned constant.
using Atom = uint32_t;
/// A relation handle.
using RelId = unsigned;
/// A ground tuple (boundary representation; the solver keeps rows flat).
using Tuple = std::vector<Atom>;

/// Interns strings as dense Atom ids.
class Interner {
public:
  Atom intern(const std::string &S);
  const std::string &name(Atom A) const;
  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, Atom> Ids;
};

/// A flat, insertion-ordered set of fixed-arity tuples: rows live
/// back-to-back in one vector, membership is a content-hash bucket probe,
/// and a first-column index answers "all rows whose col 0 is A" for the
/// join loops. Insertion order is deterministic, so results are
/// reproducible; consumers that print sort their own output
/// (alfp::dumpRelation).
class TupleStore {
public:
  TupleStore() = default;
  explicit TupleStore(unsigned Arity) : ArityVal(Arity) {}

  /// Drops all rows and (re)sets the arity.
  void reset(unsigned Arity) {
    ArityVal = Arity;
    NumRows = 0;
    Data.clear();
    HashBuckets.clear();
    Col0.clear();
  }

  unsigned arity() const { return ArityVal; }
  size_t size() const { return NumRows; }
  bool empty() const { return NumRows == 0; }

  /// Pointer to the I-th row (arity() consecutive atoms).
  const Atom *row(size_t I) const {
    assert(I < NumRows && "row out of range");
    return Data.data() + I * ArityVal;
  }

  /// Inserts a row of arity() atoms; returns true if it was new.
  bool insert(const Atom *T);
  bool insert(const Tuple &T) {
    assert(T.size() == ArityVal && "tuple arity mismatch");
    return insert(T.data());
  }

  bool contains(const Atom *T) const;
  bool contains(const Tuple &T) const {
    assert(T.size() == ArityVal && "tuple arity mismatch");
    return contains(T.data());
  }

  /// Indices of rows whose first column equals \p A (null when none).
  const std::vector<uint32_t> *rowsWithCol0(Atom A) const {
    auto It = Col0.find(A);
    return It == Col0.end() ? nullptr : &It->second;
  }

  /// Iteration yields const Atom* row pointers, in insertion order. The
  /// iterator counts rows rather than striding pointers so nullary
  /// relations (arity 0, at most one row) still iterate their row.
  class const_iterator {
  public:
    const_iterator(const Atom *Base, size_t Idx, unsigned Arity)
        : Base(Base), Idx(Idx), Arity(Arity) {}
    const Atom *operator*() const { return Base + Idx * Arity; }
    const_iterator &operator++() {
      ++Idx;
      return *this;
    }
    bool operator!=(const const_iterator &O) const { return Idx != O.Idx; }
    bool operator==(const const_iterator &O) const { return Idx == O.Idx; }

  private:
    const Atom *Base;
    size_t Idx;
    unsigned Arity;
  };
  const_iterator begin() const { return {Data.data(), 0, ArityVal}; }
  const_iterator end() const { return {Data.data(), NumRows, ArityVal}; }

private:
  uint64_t hashRow(const Atom *T) const;

  unsigned ArityVal = 0;
  size_t NumRows = 0;
  std::vector<Atom> Data;
  /// Content hash -> row indices with that hash (collisions compared by
  /// content). Self-contained, so moving the store never dangles.
  std::unordered_map<uint64_t, std::vector<uint32_t>> HashBuckets;
  /// First column -> row indices (empty map for arity 0).
  std::unordered_map<Atom, std::vector<uint32_t>> Col0;
};

/// A term: either a clause-local variable or a constant atom.
struct Term {
  bool IsVar = false;
  uint32_t Id = 0;

  static Term var(uint32_t V) { return Term{true, V}; }
  static Term atom(Atom A) { return Term{false, A}; }
};

/// A (possibly negated) relation application.
struct Literal {
  RelId Rel = 0;
  bool Negated = false;
  std::vector<Term> Args;
};

/// Head :- Body. An empty body is a fact schema (ground head required).
struct Clause {
  Literal Head;
  std::vector<Literal> Body;
};

/// A Datalog program with stratified negation.
class Program {
public:
  /// Widest body literal solve() accepts (the join loop's fresh-binding
  /// bookkeeping is a 64-bit position mask); wider literals are rejected
  /// by the safety check with a diagnostic.
  static constexpr size_t MaxLiteralArity = 64;
  /// Declares (or retrieves) a relation.
  RelId relation(const std::string &Name, unsigned Arity);

  /// Looks a relation up by name without declaring it.
  std::optional<RelId> findRelation(const std::string &Name) const;

  /// Name and arity of a declared relation.
  const std::string &relationName(RelId R) const;
  unsigned relationArity(RelId R) const;

  /// Number of declared relations (ids are dense, 0..count-1).
  size_t relationCount() const { return Relations.size(); }

  /// Adds a ground fact.
  void fact(RelId R, Tuple T);

  /// Adds a clause; safety is checked at solve() time.
  void clause(Clause C) { Clauses.push_back(std::move(C)); }

  /// Runs the fixpoint. Returns false (with \p Error filled in) on safety
  /// or stratification violations.
  bool solve(std::string *Error = nullptr);

  const TupleStore &tuples(RelId R) const;
  bool contains(RelId R, const Tuple &T) const;

  /// Total number of tuples derived by solve() beyond the base facts.
  size_t derivedCount() const { return Derived; }
  /// Number of tuple match attempts performed by solve(): one per
  /// candidate row unified against a positive body literal, plus one per
  /// negated-literal membership probe. Positive and negated literals are
  /// counted by the same unit of work — a single tuple test — and
  /// candidates that the first-column index prunes are never attempted,
  /// so this tracks the actual join effort of the complexity benches.
  size_t applications() const { return Applications; }

  Interner &atoms() { return Atoms; }
  const Interner &atoms() const { return Atoms; }

private:
  struct Relation {
    std::string Name;
    unsigned Arity;
    TupleStore Facts;
  };

  /// Per-applyClause scratch: flat variable bindings and a row buffer.
  struct MatchContext {
    std::vector<Atom> BindVal;
    std::vector<uint8_t> BindSet;
    std::vector<Atom> Scratch;
  };

  bool checkSafety(const Clause &C, std::string *Error) const;
  bool stratify(std::vector<std::vector<size_t>> &ClausesByStratum,
                std::string *Error) const;
  /// Evaluates \p C with body literal \p DeltaPos restricted to \p Delta;
  /// DeltaPos == -1 means evaluate against full relations only. New head
  /// tuples (not yet in the head relation) are collected into \p Pending.
  void applyClause(const Clause &C, int DeltaPos,
                   const std::vector<TupleStore> &Delta,
                   TupleStore &Pending);
  void matchFrom(const Clause &C, size_t LitIdx, int DeltaPos,
                 const std::vector<TupleStore> &Delta, MatchContext &Ctx,
                 TupleStore &Pending);

  Interner Atoms;
  std::vector<Relation> Relations;
  std::unordered_map<std::string, RelId> RelIds;
  std::vector<Clause> Clauses;
  size_t Derived = 0;
  size_t Applications = 0;
};

} // namespace alfp
} // namespace vif

#endif // VIF_ALFP_ALFP_H
