//===- support/Casting.h - isa/cast/dyn_cast helpers ------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style: class hierarchies carry a Kind
/// discriminator and a static classof; these templates provide the familiar
/// isa<>, cast<> and dyn_cast<> access paths without enabling C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_CASTING_H
#define VIF_SUPPORT_CASTING_H

#include <cassert>

namespace vif {

template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace vif

#endif // VIF_SUPPORT_CASTING_H
