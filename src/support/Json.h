//===- support/Json.h - Streaming JSON writer -------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal streaming JSON writer for machine-readable tool output (the
/// driver layer's batch reports, `vifc --json`). No external dependency,
/// no DOM: values are emitted directly to an ostream, with the writer
/// tracking nesting so commas, newlines and indentation come out right.
/// Strings are escaped per RFC 8259; non-ASCII bytes pass through verbatim
/// (the repo's node names carry UTF-8 ◦/• marks).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_JSON_H
#define VIF_SUPPORT_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace vif {

/// Escapes \p S for inclusion in a double-quoted JSON string (quotes not
/// included).
std::string jsonEscape(std::string_view S);

/// Appends the escaped form of \p S to \p Out. Clean runs (the common
/// case — most emitted strings need no escaping at all) are appended in
/// one block instead of per character.
void jsonEscapeTo(std::string &Out, std::string_view S);

/// Layout of an emitted document: Pretty is the human-facing multi-line
/// form (`vifc --json`); Compact packs the whole document onto one line
/// with no trailing newline — the shape the line-delimited `vifc serve`
/// protocol requires (docs/SERVER.md).
enum class JsonStyle : uint8_t { Pretty, Compact };

/// Writes one JSON document. Usage:
///
///   JsonWriter J(OS);
///   J.beginObject();
///   J.key("designs"); J.beginArray(); ... J.endArray();
///   J.endObject();   // emits the final newline (Pretty style only)
///
/// Output is batched in an internal buffer and reaches the stream when
/// the top-level container closes (or on destruction), so emitting a
/// large document costs string appends, not per-token ostream calls.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS, unsigned IndentWidth = 2)
      : OS(OS), IndentWidth(IndentWidth) {}
  JsonWriter(std::ostream &OS, JsonStyle Style, unsigned IndentWidth = 2)
      : OS(OS), IndentWidth(IndentWidth),
        Compact(Style == JsonStyle::Compact) {}
  JsonWriter(const JsonWriter &) = delete;
  JsonWriter &operator=(const JsonWriter &) = delete;
  ~JsonWriter() { flush(); }

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  /// Emits the key of the next object member.
  void key(std::string_view K);

  void value(std::string_view V);
  void value(const char *V) { value(std::string_view(V)); }
  void value(const std::string &V) { value(std::string_view(V)); }
  void value(bool V);
  void value(double V);
  // One overload per standard integer width so size_t/uint64_t/unsigned
  // all resolve exactly on every platform (size_t is unsigned long on
  // LP64 Linux but maps differently elsewhere).
  void value(long long V);
  void value(unsigned long long V);
  void value(long V) { value(static_cast<long long>(V)); }
  void value(unsigned long V) { value(static_cast<unsigned long long>(V)); }
  void value(int V) { value(static_cast<long long>(V)); }
  void value(unsigned V) { value(static_cast<unsigned long long>(V)); }
  void null();

  /// key() + value() in one call.
  template <typename T> void member(std::string_view K, const T &V) {
    key(K);
    value(V);
  }

private:
  void open(char C);
  void close(char C);
  /// Emits the separator/indentation due before the next value.
  void prefix();
  void indent();
  /// Writes the buffered output to the stream.
  void flush();

  std::ostream &OS;
  /// Pending output; flushed when the outermost container closes and on
  /// destruction.
  std::string Buf;
  unsigned IndentWidth;
  /// Compact style: no newlines, no indentation, no trailing newline.
  bool Compact = false;
  /// One entry per open container: the number of elements emitted so far.
  std::vector<size_t> Stack;
  /// True right after key(): the next value sits on the same line.
  bool AfterKey = false;
};

} // namespace vif

#endif // VIF_SUPPORT_JSON_H
