//===- support/Json.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

using namespace vif;

void vif::jsonEscapeTo(std::string &Out, std::string_view S) {
  size_t RunStart = 0;
  auto FlushRun = [&](size_t End) {
    if (End > RunStart)
      Out.append(S.data() + RunStart, End - RunStart);
  };
  for (size_t I = 0; I < S.size(); ++I) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    const char *Escape = nullptr;
    switch (C) {
    case '"':
      Escape = "\\\"";
      break;
    case '\\':
      Escape = "\\\\";
      break;
    case '\b':
      Escape = "\\b";
      break;
    case '\f':
      Escape = "\\f";
      break;
    case '\n':
      Escape = "\\n";
      break;
    case '\r':
      Escape = "\\r";
      break;
    case '\t':
      Escape = "\\t";
      break;
    default:
      if (C < 0x20) {
        FlushRun(I);
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
        RunStart = I + 1;
      }
      continue;
    }
    FlushRun(I);
    Out += Escape;
    RunStart = I + 1;
  }
  FlushRun(S.size());
}

std::string vif::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  jsonEscapeTo(Out, S);
  return Out;
}

void JsonWriter::flush() {
  if (!Buf.empty()) {
    OS.write(Buf.data(), static_cast<std::streamsize>(Buf.size()));
    Buf.clear();
  }
}

void JsonWriter::indent() {
  Buf.append(Stack.size() * IndentWidth, ' ');
}

void JsonWriter::prefix() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (Stack.empty())
    return;
  if (Stack.back() != 0)
    Buf += ',';
  if (!Compact) {
    Buf += '\n';
    indent();
  }
  ++Stack.back();
}

void JsonWriter::open(char C) {
  prefix();
  Buf += C;
  Stack.push_back(0);
}

void JsonWriter::close(char C) {
  assert(!Stack.empty() && "unbalanced JSON container");
  bool HadElements = Stack.back() != 0;
  Stack.pop_back();
  if (HadElements && !Compact) {
    Buf += '\n';
    indent();
  }
  Buf += C;
  if (Stack.empty()) {
    if (!Compact)
      Buf += '\n';
    // The document is complete; hand it to the stream in one write.
    flush();
  }
}

void JsonWriter::key(std::string_view K) {
  assert(!AfterKey && "key without a value");
  prefix();
  Buf += '"';
  jsonEscapeTo(Buf, K);
  Buf += (Compact ? "\":" : "\": ");
  AfterKey = true;
}

void JsonWriter::value(std::string_view V) {
  prefix();
  Buf += '"';
  jsonEscapeTo(Buf, V);
  Buf += '"';
}

void JsonWriter::value(bool V) {
  prefix();
  Buf += (V ? "true" : "false");
}

void JsonWriter::value(double V) {
  prefix();
  if (!std::isfinite(V)) {
    Buf += "null"; // JSON has no Inf/NaN
    return;
  }
  char Num[32];
  std::snprintf(Num, sizeof(Num), "%.6g", V);
  Buf += Num;
}

void JsonWriter::value(long long V) {
  prefix();
  char Num[24];
  std::snprintf(Num, sizeof(Num), "%lld", V);
  Buf += Num;
}

void JsonWriter::value(unsigned long long V) {
  prefix();
  char Num[24];
  std::snprintf(Num, sizeof(Num), "%llu", V);
  Buf += Num;
}

void JsonWriter::null() {
  prefix();
  Buf += "null";
}
