//===- support/Json.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

using namespace vif;

std::string vif::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonWriter::indent() {
  for (size_t I = 0, E = Stack.size() * IndentWidth; I < E; ++I)
    OS << ' ';
}

void JsonWriter::prefix() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (Stack.empty())
    return;
  if (Stack.back() != 0)
    OS << ',';
  if (!Compact) {
    OS << '\n';
    indent();
  }
  ++Stack.back();
}

void JsonWriter::open(char C) {
  prefix();
  OS << C;
  Stack.push_back(0);
}

void JsonWriter::close(char C) {
  assert(!Stack.empty() && "unbalanced JSON container");
  bool HadElements = Stack.back() != 0;
  Stack.pop_back();
  if (HadElements && !Compact) {
    OS << '\n';
    indent();
  }
  OS << C;
  if (Stack.empty() && !Compact)
    OS << '\n';
}

void JsonWriter::key(std::string_view K) {
  assert(!AfterKey && "key without a value");
  prefix();
  OS << '"' << jsonEscape(K) << (Compact ? "\":" : "\": ");
  AfterKey = true;
}

void JsonWriter::value(std::string_view V) {
  prefix();
  OS << '"' << jsonEscape(V) << '"';
}

void JsonWriter::value(bool V) {
  prefix();
  OS << (V ? "true" : "false");
}

void JsonWriter::value(double V) {
  prefix();
  if (!std::isfinite(V)) {
    OS << "null"; // JSON has no Inf/NaN
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  OS << Buf;
}

void JsonWriter::value(long long V) {
  prefix();
  OS << V;
}

void JsonWriter::value(unsigned long long V) {
  prefix();
  OS << V;
}

void JsonWriter::null() {
  prefix();
  OS << "null";
}
