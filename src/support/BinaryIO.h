//===- support/BinaryIO.h - Bounds-checked little-endian IO -----*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level encode/decode helpers shared by every binary artifact format
/// in the project (the v1b graph format in driver/V1b.cpp and the on-disk
/// artifact store in driver/ArtifactStore.cpp). Writers append to a
/// std::string; readers carry an Ok flag that latches false on the first
/// out-of-bounds read, so decoders can run a whole parse and check once at
/// the end — the discipline that lets corrupt store entries degrade to
/// cache misses instead of undefined behavior.
///
/// All integers are little-endian regardless of host order.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_BINARYIO_H
#define VIF_SUPPORT_BINARYIO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace vif {

/// Appends little-endian scalars and raw bytes to an owned buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }

  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }

  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }

  void bytes(const void *Data, size_t Len) {
    Buf.append(static_cast<const char *>(Data), Len);
  }

  /// Length-prefixed string (u64 length, then the bytes).
  void str(std::string_view S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  size_t size() const { return Buf.size(); }
  const std::string &data() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Reads little-endian scalars and raw bytes from a borrowed buffer. Any
/// read past the end returns zeros/empties and latches ok() to false; the
/// caller checks ok() (and usually atEnd()) once after decoding.
class ByteReader {
public:
  explicit ByteReader(std::string_view Data)
      : P(Data.data()), End(Data.data() + Data.size()) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(*P++);
  }

  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(*P++)) << (8 * I);
    return V;
  }

  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(*P++)) << (8 * I);
    return V;
  }

  void bytes(void *Dst, size_t Len) {
    if (!need(Len)) {
      std::memset(Dst, 0, Len);
      return;
    }
    std::memcpy(Dst, P, Len);
    P += Len;
  }

  /// A borrowed view of the next \p Len bytes (empty on underflow).
  std::string_view raw(size_t Len) {
    if (!need(Len))
      return {};
    std::string_view V(P, Len);
    P += Len;
    return V;
  }

  /// Length-prefixed string written by ByteWriter::str.
  std::string_view str() {
    uint64_t Len = u64();
    if (Len > remaining()) { // also catches absurd lengths from corruption
      OkFlag = false;
      return {};
    }
    return raw(static_cast<size_t>(Len));
  }

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool atEnd() const { return P == End; }
  bool ok() const { return OkFlag; }

private:
  bool need(size_t N) {
    if (static_cast<size_t>(End - P) < N) {
      OkFlag = false;
      return false;
    }
    return true;
  }

  const char *P;
  const char *End;
  bool OkFlag = true;
};

} // namespace vif

#endif // VIF_SUPPORT_BINARYIO_H
