//===- support/Graph.h - Directed graphs over named nodes -------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of the Information Flow analysis is "a non-transitive directed
/// graph that connects those nodes (representing either variables or signals)
/// where an information flow might occur" (paper, abstract). Digraph is that
/// result type: nodes are named resources, edges are possible flows. It also
/// provides the graph algebra the evaluation needs: transitive closure
/// (Kemmerer's method), reachability, edge diffs (false-positive counting for
/// Figure 5), node merging (the paper merges n◦/n• interface nodes for
/// presentation) and DOT rendering.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_GRAPH_H
#define VIF_SUPPORT_GRAPH_H

#include <cassert>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vif {

/// A directed graph whose nodes are identified by stable string names.
///
/// Node ids are dense and assigned in insertion order; all iteration orders
/// exposed by the class are deterministic.
///
/// Edges live in one flat sorted vector; addEdge/addEdges append to a
/// pending buffer that is merged in lazily, so bulk construction (the flow
/// graphs, the Warshall closure below) never pays per-edge ordered-set
/// node allocations. The lazy merge mutates on const reads — like the
/// LazyPairSets boundary in rd/DenseDomain.h, a Digraph must not be read
/// from multiple threads concurrently (per-design results never are; the
/// SessionCache holds a per-entry lock while a session is in use).
class Digraph {
public:
  using NodeId = unsigned;

  /// Adds a node (no-op if present); returns its id.
  NodeId addNode(const std::string &Name);

  /// Adds both endpoints as needed and then the edge From -> To.
  void addEdge(const std::string &From, const std::string &To);
  void addEdge(NodeId From, NodeId To);

  /// Bulk-inserts edges given as id pairs over existing nodes. The list is
  /// sorted and deduplicated on the next flush, so callers — in particular
  /// the id-based flow-graph extraction — can append pairs freely and hand
  /// them over in one O(E log E) pass instead of E ordered insertions.
  void addEdges(std::vector<std::pair<NodeId, NodeId>> EdgeList);

  /// Pre-sizes the name table and index for \p N expected nodes.
  void reserveNodes(size_t N);

  bool hasNode(const std::string &Name) const;
  bool hasEdge(const std::string &From, const std::string &To) const;
  bool hasEdge(NodeId From, NodeId To) const;

  /// Returns the id for \p Name; asserts that the node exists.
  NodeId id(const std::string &Name) const;
  const std::string &name(NodeId Id) const {
    assert(Id < Names.size() && "node id out of range");
    return Names[Id];
  }

  size_t numNodes() const { return Names.size(); }
  size_t numEdges() const {
    flushEdges();
    return Edges.size();
  }

  /// Node names in insertion order.
  const std::vector<std::string> &nodes() const { return Names; }
  /// Node names sorted lexicographically.
  std::vector<std::string> sortedNodes() const;
  /// All edges as (from, to) name pairs, sorted lexicographically.
  std::vector<std::pair<std::string, std::string>> sortedEdges() const;

  /// Successor ids of \p Id in ascending id order.
  std::vector<NodeId> successors(NodeId Id) const;
  /// Predecessor ids of \p Id in ascending id order.
  std::vector<NodeId> predecessors(NodeId Id) const;

  /// True if there is a directed path (of length >= 1) From -> To.
  bool reachable(const std::string &From, const std::string &To) const;

  /// The transitive closure over the same node set: an edge a -> b for every
  /// path a -> ... -> b of length >= 1. This is the "traditional method of
  /// Kemmerer" step (paper Section 5.2).
  Digraph transitiveClosure() const;

  /// True if for every pair of edges a -> b, b -> c the edge a -> c exists.
  /// The paper stresses that information-flow graphs are non-transitive in
  /// general (Figure 3(a)); this predicate lets tests assert exactly that.
  bool isTransitive() const;

  /// A graph with every node renamed through \p Rename; edges whose endpoints
  /// collapse to the same node become self-loops only if they already were
  /// self-loops (merging n with n◦/n• must not fabricate flows n -> n).
  Digraph mergeNodes(
      const std::function<std::string(const std::string &)> &Rename) const;

  /// The subgraph induced by the nodes for which \p Keep returns true.
  Digraph
  inducedSubgraph(const std::function<bool(const std::string &)> &Keep) const;

  /// Edges present in \p this but not in \p Other (by node name). Used to
  /// count Kemmerer false positives relative to the RD-guided analysis.
  std::vector<std::pair<std::string, std::string>>
  edgesNotIn(const Digraph &Other) const;

  /// Structural equality on node names and edges.
  bool sameFlows(const Digraph &Other) const;

  /// Emits the graph in Graphviz DOT syntax with nodes and edges sorted.
  void printDOT(std::ostream &OS, const std::string &Title = "flows") const;
  std::string dot(const std::string &Title = "flows") const;

private:
  /// Merges Pending into the sorted, deduplicated Edges vector.
  void flushEdges() const;

  std::vector<std::string> Names;
  std::unordered_map<std::string, NodeId> Ids;
  /// Sorted and deduplicated (after flushEdges).
  mutable std::vector<std::pair<NodeId, NodeId>> Edges;
  /// Edges appended since the last flush, in arrival order.
  mutable std::vector<std::pair<NodeId, NodeId>> Pending;
};

} // namespace vif

#endif // VIF_SUPPORT_GRAPH_H
