//===- support/Graph.h - Directed graphs over named nodes -------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of the Information Flow analysis is "a non-transitive directed
/// graph that connects those nodes (representing either variables or signals)
/// where an information flow might occur" (paper, abstract). Digraph is that
/// result type: nodes are named resources, edges are possible flows. It also
/// provides the graph algebra the evaluation needs: transitive closure
/// (Kemmerer's method), reachability, edge diffs (false-positive counting for
/// Figure 5), node merging (the paper merges n◦/n• interface nodes for
/// presentation) and DOT rendering.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_GRAPH_H
#define VIF_SUPPORT_GRAPH_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vif {

class BitMatrix;

/// A directed graph whose nodes are identified by stable string names.
///
/// Node ids are dense and assigned in insertion order; all iteration orders
/// exposed by the class are deterministic.
///
/// Node names are bump-allocated into an internal arena and exposed as
/// string_views; the arena blocks never move, so views stay valid across
/// addNode and across moves of the whole graph.
///
/// Edges live in one flat sorted vector; addEdge/addEdges append to a
/// pending buffer that is merged in lazily, so bulk construction (the flow
/// graphs, the Warshall closure below) never pays per-edge ordered-set
/// node allocations. Sorted iteration orders are likewise cached lazily: a
/// lexicographic node-rank permutation and an edge permutation sorted by
/// (rank[from], rank[to]) are computed once and reused, so emitting a
/// result costs an integer sort the first time and nothing after. The lazy
/// merge mutates on const reads, but builds are internally synchronized:
/// each view flips an atomic flag under a per-graph mutex (double-checked),
/// so concurrent const readers — e.g. two query threads touching the same
/// cached session graph — race only on the cheap acquire load. Mutation
/// (addNode/addEdge) remains single-threaded by contract, as before.
/// ensureSortedViews() is still the cheap publish point the SessionCache
/// uses to pre-pay all three builds while the per-entry lock is held.
class Digraph {
public:
  using NodeId = unsigned;

  Digraph() = default;
  Digraph(Digraph &&Other) noexcept;
  Digraph &operator=(Digraph &&Other) noexcept;
  Digraph(const Digraph &Other);
  Digraph &operator=(const Digraph &Other);

  /// Adds a node (no-op if present); returns its id.
  NodeId addNode(std::string_view Name);

  /// Adds both endpoints as needed and then the edge From -> To.
  void addEdge(std::string_view From, std::string_view To);
  void addEdge(NodeId From, NodeId To);

  /// Bulk-inserts edges given as id pairs over existing nodes. The list is
  /// sorted and deduplicated on the next flush, so callers — in particular
  /// the id-based flow-graph extraction — can append pairs freely and hand
  /// them over in one O(E log E) pass instead of E ordered insertions.
  void addEdges(std::vector<std::pair<NodeId, NodeId>> EdgeList);

  /// Pre-sizes the name table and index for \p N expected nodes.
  void reserveNodes(size_t N);

  bool hasNode(std::string_view Name) const;
  bool hasEdge(std::string_view From, std::string_view To) const;
  bool hasEdge(NodeId From, NodeId To) const;

  /// Returns the id for \p Name; asserts that the node exists.
  NodeId id(std::string_view Name) const;
  std::string_view name(NodeId Id) const {
    assert(Id < Names.size() && "node id out of range");
    return Names[Id];
  }

  size_t numNodes() const { return Names.size(); }
  size_t numEdges() const {
    flushEdges();
    return Edges.size();
  }

  /// Heap footprint in bytes: name arena, node/edge vectors, id map and
  /// the cached sorted views (cache byte-budget accounting). Does not
  /// flush or build anything — it measures what is allocated right now.
  size_t memoryBytes() const;

  /// Node names in insertion order.
  const std::vector<std::string_view> &nodes() const { return Names; }
  /// Node names sorted lexicographically (a per-call copy; prefer
  /// rankedNodes() on hot paths).
  std::vector<std::string> sortedNodes() const;
  /// All edges as (from, to) name pairs, sorted lexicographically (a
  /// per-call copy; prefer forEachSortedEdge on hot paths).
  std::vector<std::pair<std::string, std::string>> sortedEdges() const;

  /// Node ids in lexicographic name order (the rank permutation). The
  /// reference stays valid until the next node insertion.
  const std::vector<NodeId> &rankedNodes() const {
    ensureRank();
    return RankOrder;
  }
  /// Lexicographic rank of node \p Id: name(rankedNodes()[rankOf(Id)]) ==
  /// name(Id).
  NodeId rankOf(NodeId Id) const {
    ensureRank();
    assert(Id < RankOf.size() && "node id out of range");
    return RankOf[Id];
  }

  /// Forces the lazy edge flush, rank permutation and sorted-edge
  /// permutation. After this call all read accessors are pure reads, so the
  /// graph may be shared across threads (the SessionCache's publish point).
  void ensureSortedViews() const {
    flushEdges();
    ensureRank();
    ensureEdgeOrder();
  }

  /// Streams the edges in lexicographic (from-name, to-name) order as
  /// string_view pairs, without materializing any intermediate vector.
  /// Exactly the order of sortedEdges().
  template <typename Callback> void forEachSortedEdge(Callback &&CB) const {
    ensureSortedViews();
    for (uint32_t Index : EdgeOrder) {
      const auto &[From, To] = Edges[Index];
      CB(Names[From], Names[To]);
    }
  }

  /// Streams the edges in the same sorted order as (rank, rank) pairs —
  /// indices into rankedNodes(), i.e. into the sorted node table. The pair
  /// sequence itself is sorted ascending; this is the v1b EDGE section.
  template <typename Callback>
  void forEachSortedEdgeRanked(Callback &&CB) const {
    ensureSortedViews();
    for (uint32_t Index : EdgeOrder) {
      const auto &[From, To] = Edges[Index];
      CB(RankOf[From], RankOf[To]);
    }
  }

  /// Streams all edges as (from-id, to-id) pairs in ascending id order (the
  /// flat storage order). Cheapest whole-edge-set scan; used for id-indexed
  /// fan-in/out counting.
  template <typename Callback> void forEachEdgeId(Callback &&CB) const {
    flushEdges();
    for (const auto &[From, To] : Edges)
      CB(From, To);
  }

  /// Successor ids of \p Id in ascending id order.
  std::vector<NodeId> successors(NodeId Id) const;
  /// Predecessor ids of \p Id in ascending id order.
  std::vector<NodeId> predecessors(NodeId Id) const;

  /// True if there is a directed path (of length >= 1) From -> To.
  bool reachable(std::string_view From, std::string_view To) const;

  /// Fills \p Out with the N x N reachability matrix: bit (i, j) is set iff
  /// there is a directed path of length >= 1 from node i to node j. This is
  /// the packed-bit-row Warshall core shared by transitiveClosure() and the
  /// query engine's reachability index; \p Out is reset to the right shape.
  void reachabilityClosure(BitMatrix &Out) const;

  /// The transitive closure over the same node set: an edge a -> b for every
  /// path a -> ... -> b of length >= 1. This is the "traditional method of
  /// Kemmerer" step (paper Section 5.2).
  Digraph transitiveClosure() const;

  /// True if for every pair of edges a -> b, b -> c the edge a -> c exists.
  /// The paper stresses that information-flow graphs are non-transitive in
  /// general (Figure 3(a)); this predicate lets tests assert exactly that.
  bool isTransitive() const;

  /// A graph with every node renamed through \p Rename; edges whose endpoints
  /// collapse to the same node become self-loops only if they already were
  /// self-loops (merging n with n◦/n• must not fabricate flows n -> n).
  Digraph
  mergeNodes(const std::function<std::string(std::string_view)> &Rename) const;

  /// The subgraph induced by the nodes for which \p Keep returns true.
  Digraph
  inducedSubgraph(const std::function<bool(std::string_view)> &Keep) const;

  /// Edges present in \p this but not in \p Other (by node name). Used to
  /// count Kemmerer false positives relative to the RD-guided analysis.
  std::vector<std::pair<std::string, std::string>>
  edgesNotIn(const Digraph &Other) const;

  /// Structural equality on node names and edges.
  bool sameFlows(const Digraph &Other) const;

  /// Emits the graph in Graphviz DOT syntax with nodes and edges sorted.
  void printDOT(std::ostream &OS, std::string_view Title = "flows") const;
  std::string dot(std::string_view Title = "flows") const;

private:
  /// Copies \p Name into the arena and returns the stable view.
  std::string_view intern(std::string_view Name);

  /// Merges Pending into the sorted, deduplicated Edges vector.
  void flushEdges() const;
  /// Computes RankOrder/RankOf if stale.
  void ensureRank() const;
  /// Computes EdgeOrder if stale. Requires flushed edges and a valid rank.
  void ensureEdgeOrder() const;

  /// Bump-allocated name storage. Blocks never move or shrink, so the views
  /// in Names (and those handed out) remain valid for the graph's lifetime.
  std::vector<std::unique_ptr<char[]>> ArenaBlocks;
  size_t ArenaUsed = 0;
  size_t ArenaCap = 0;

  std::vector<std::string_view> Names;
  std::unordered_map<std::string_view, NodeId> Ids;
  /// Sorted and deduplicated (after flushEdges).
  mutable std::vector<std::pair<NodeId, NodeId>> Edges;
  /// Edges appended since the last flush, in arrival order.
  mutable std::vector<std::pair<NodeId, NodeId>> Pending;
  /// True while Pending holds unmerged edges. An atomic mirror of
  /// "!Pending.empty()" so concurrent const readers can skip the flush
  /// without touching the vector; cleared with release order after the
  /// merge so the merged Edges are visible to whoever sees it clear.
  mutable std::atomic<bool> EdgesDirty{false};

  /// Node ids in lexicographic name order and its inverse, computed once
  /// per node-set generation. Adding a node only invalidates these two
  /// (relative ranks of existing nodes are preserved, so EdgeOrder — sorted
  /// by relative rank — stays correct).
  mutable std::vector<NodeId> RankOrder;
  mutable std::vector<NodeId> RankOf;
  mutable std::atomic<bool> RankValid{false};
  /// Indices into Edges in (rank[from], rank[to]) order — the lexicographic
  /// edge order without touching a byte of string data.
  mutable std::vector<uint32_t> EdgeOrder;
  mutable std::atomic<bool> EdgeOrderValid{false};
  /// Serializes lazy view construction across concurrent const readers.
  /// Heap-allocated so the graph stays movable; each graph keeps its own
  /// mutex across moves (the views themselves move, the lock does not).
  mutable std::unique_ptr<std::mutex> ViewMutex = std::make_unique<std::mutex>();
};

} // namespace vif

#endif // VIF_SUPPORT_GRAPH_H
