//===- support/SourceLoc.h - Source positions -------------------*- C++ -*-===//
//
// Part of the vif project, an implementation of the analyses described in
// "Information Flow Analysis for VHDL" (Tolstrup, Nielson, Nielson;
// PaCT 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions and ranges used to attribute tokens, AST nodes and
/// diagnostics to the VHDL1 source text.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_SOURCELOC_H
#define VIF_SUPPORT_SOURCELOC_H

#include <string>

namespace vif {

/// A position in the source text. Lines and columns are 1-based; a
/// default-constructed location is invalid and prints as "<unknown>".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &O) const {
    return Line == O.Line && Col == O.Col;
  }
  bool operator!=(const SourceLoc &O) const { return !(*this == O); }
  bool operator<(const SourceLoc &O) const {
    return Line != O.Line ? Line < O.Line : Col < O.Col;
  }

  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// A half-open range of source positions, [Begin, End).
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace vif

#endif // VIF_SUPPORT_SOURCELOC_H
