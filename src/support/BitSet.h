//===- support/BitSet.h - Packed fixed-universe bit set ---------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A packed bit set over a fixed universe 0..size()-1, stored as uint64
/// words with word-at-a-time lattice operations. This is the dense carrier
/// the paper's Section 7 has in mind when it calls the analysis "a
/// combination of three bit-vector frameworks": the rd solvers number
/// their (Resource, Label) domains densely (rd/DenseDomain.h) and run the
/// fixpoints over BitSets instead of sorted-vector PairSets.
///
/// All binary operations require both operands to share one universe size;
/// unionWith returns whether any bit was newly set, which is exactly the
/// grew-check the worklist solvers need.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_BITSET_H
#define VIF_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vif {

class BitSet {
public:
  BitSet() = default;
  explicit BitSet(size_t NumBits) { resize(NumBits); }

  /// Resets to \p NumBits bits, all clear.
  void resize(size_t NumBits) {
    NumBitsVal = NumBits;
    Words.assign((NumBits + 63) / 64, 0);
  }

  size_t size() const { return NumBitsVal; }

  void set(size_t I) {
    assert(I < NumBitsVal && "bit index out of range");
    Words[I >> 6] |= uint64_t(1) << (I & 63);
  }

  void reset(size_t I) {
    assert(I < NumBitsVal && "bit index out of range");
    Words[I >> 6] &= ~(uint64_t(1) << (I & 63));
  }

  bool test(size_t I) const {
    assert(I < NumBitsVal && "bit index out of range");
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  /// this := this ∪ O; returns true if this grew.
  bool unionWith(const BitSet &O) {
    assert(O.NumBitsVal == NumBitsVal && "universe mismatch");
    uint64_t GrewBits = 0;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t New = Words[I] | O.Words[I];
      GrewBits |= New ^ Words[I];
      Words[I] = New;
    }
    return GrewBits != 0;
  }

  /// this := this ∩ O.
  void intersectWith(const BitSet &O) {
    assert(O.NumBitsVal == NumBitsVal && "universe mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= O.Words[I];
  }

  /// this := this \ O (and-not).
  void subtract(const BitSet &O) {
    assert(O.NumBitsVal == NumBitsVal && "universe mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~O.Words[I];
  }

  /// Clears every bit, keeping the universe size.
  void clearAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Calls \p F(index) for every set bit, ascending.
  template <typename Fn> void forEach(Fn F) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        F((WI << 6) + Bit);
        W &= W - 1;
      }
    }
  }

  bool operator==(const BitSet &O) const {
    return NumBitsVal == O.NumBitsVal && Words == O.Words;
  }
  bool operator!=(const BitSet &O) const { return !(*this == O); }

private:
  size_t NumBitsVal = 0;
  std::vector<uint64_t> Words;
};

} // namespace vif

#endif // VIF_SUPPORT_BITSET_H
