//===- support/BitSet.h - Packed fixed-universe bit set ---------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A packed bit set over a fixed universe 0..size()-1, stored as uint64
/// words with word-at-a-time lattice operations. This is the dense carrier
/// the paper's Section 7 has in mind when it calls the analysis "a
/// combination of three bit-vector frameworks": the rd solvers number
/// their (Resource, Label) domains densely (rd/DenseDomain.h) and run the
/// fixpoints over BitSets instead of sorted-vector PairSets.
///
/// All binary operations require both operands to share one universe size;
/// unionWith returns whether any bit was newly set, which is exactly the
/// grew-check the worklist solvers need.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_BITSET_H
#define VIF_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vif {

/// The word-span union kernels every bit-vector consumer funnels through
/// (BitSet::unionWith, BitMatrix::orInto, the Warshall closure's row
/// union). Unrolled four words wide with independent grew accumulators,
/// so the loop body is a straight-line dependency-free block the
/// autovectorizer turns into 256-bit lanes; BitMatrix aligns and pads
/// its rows (32-byte rows, wordsPerRow a multiple of 4) so the unrolled
/// loop runs tail-free and aligned on matrix rows. bench/bench_bitset.cpp
/// pins the throughput.
namespace bits {

/// Dst |= Src over \p W words; returns true if Dst grew. Safe under
/// Dst == Src (reports no growth).
inline bool orInto(uint64_t *Dst, const uint64_t *Src, size_t W) {
  uint64_t G0 = 0, G1 = 0, G2 = 0, G3 = 0;
  size_t I = 0;
  for (; I + 4 <= W; I += 4) {
    uint64_t N0 = Dst[I + 0] | Src[I + 0];
    uint64_t N1 = Dst[I + 1] | Src[I + 1];
    uint64_t N2 = Dst[I + 2] | Src[I + 2];
    uint64_t N3 = Dst[I + 3] | Src[I + 3];
    G0 |= N0 ^ Dst[I + 0];
    G1 |= N1 ^ Dst[I + 1];
    G2 |= N2 ^ Dst[I + 2];
    G3 |= N3 ^ Dst[I + 3];
    Dst[I + 0] = N0;
    Dst[I + 1] = N1;
    Dst[I + 2] = N2;
    Dst[I + 3] = N3;
  }
  for (; I < W; ++I) {
    uint64_t New = Dst[I] | Src[I];
    G0 |= New ^ Dst[I];
    Dst[I] = New;
  }
  return (G0 | G1 | G2 | G3) != 0;
}

/// Dst |= Src without the grew check — the Warshall inner loop, where
/// the guard bit already told us the union is wanted.
inline void orWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  size_t I = 0;
  for (; I + 4 <= W; I += 4) {
    Dst[I + 0] |= Src[I + 0];
    Dst[I + 1] |= Src[I + 1];
    Dst[I + 2] |= Src[I + 2];
    Dst[I + 3] |= Src[I + 3];
  }
  for (; I < W; ++I)
    Dst[I] |= Src[I];
}

} // namespace bits

class BitSet {
public:
  BitSet() = default;
  explicit BitSet(size_t NumBits) { resize(NumBits); }

  /// Resets to \p NumBits bits, all clear.
  void resize(size_t NumBits) {
    NumBitsVal = NumBits;
    Words.assign((NumBits + 63) / 64, 0);
  }

  size_t size() const { return NumBitsVal; }

  void set(size_t I) {
    assert(I < NumBitsVal && "bit index out of range");
    Words[I >> 6] |= uint64_t(1) << (I & 63);
  }

  void reset(size_t I) {
    assert(I < NumBitsVal && "bit index out of range");
    Words[I >> 6] &= ~(uint64_t(1) << (I & 63));
  }

  bool test(size_t I) const {
    assert(I < NumBitsVal && "bit index out of range");
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  /// this := this ∪ O; returns true if this grew.
  bool unionWith(const BitSet &O) {
    assert(O.NumBitsVal == NumBitsVal && "universe mismatch");
    return bits::orInto(Words.data(), O.Words.data(), Words.size());
  }

  /// this := this ∩ O.
  void intersectWith(const BitSet &O) {
    assert(O.NumBitsVal == NumBitsVal && "universe mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= O.Words[I];
  }

  /// this := this \ O (and-not).
  void subtract(const BitSet &O) {
    assert(O.NumBitsVal == NumBitsVal && "universe mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~O.Words[I];
  }

  /// Clears every bit, keeping the universe size.
  void clearAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Calls \p F(index) for every set bit, ascending.
  template <typename Fn> void forEach(Fn F) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        F((WI << 6) + Bit);
        W &= W - 1;
      }
    }
  }

  bool operator==(const BitSet &O) const {
    return NumBitsVal == O.NumBitsVal && Words == O.Words;
  }
  bool operator!=(const BitSet &O) const { return !(*this == O); }

  /// Heap footprint in bytes (cache byte-budget accounting).
  size_t memoryBytes() const { return Words.capacity() * sizeof(uint64_t); }

private:
  size_t NumBitsVal = 0;
  std::vector<uint64_t> Words;
};

/// A fixed-universe matrix of bit rows in one flat word buffer — the
/// allocation-amortized form of vector<BitSet>. The rd solvers hold all
/// their per-label Kill/Gen/Entry/Exit sets as rows of a few matrices
/// (one allocation each) instead of thousands of individual BitSets,
/// which is what keeps the dense solvers ahead of the sorted-vector ones
/// even on Fig5-size programs.
///
/// Row operations take raw word pointers (row(I)), so rows of different
/// matrices with the same universe combine freely.
class BitMatrix {
public:
  BitMatrix() = default;
  BitMatrix(size_t NumRows, size_t NumBits) { reset(NumRows, NumBits); }
  // Base points into Words, so copies re-align against their own buffer
  // and copy row payloads (the aligned start may sit at a different
  // element offset in the new allocation). Moves keep the buffer and
  // with it the pointer.
  BitMatrix(const BitMatrix &O) { *this = O; }
  BitMatrix &operator=(const BitMatrix &O) {
    if (this != &O) {
      reset(O.Rows, O.Bits);
      if (Rows)
        copy(row(0), O.row(0), Rows * WPR);
    }
    return *this;
  }
  BitMatrix(BitMatrix &&) = default;
  BitMatrix &operator=(BitMatrix &&) = default;

  /// Resets to \p NumRows rows of \p NumBits bits, all clear, reusing
  /// the buffer's capacity when it suffices (for callers that solve many
  /// fixpoints with one scratch matrix). Rows are padded to a multiple
  /// of 4 words and the first row is placed on a 32-byte boundary, so
  /// every row is 32-byte aligned and the 4-wide union kernels (see
  /// namespace bits) run tail-free over whole rows; the padding words
  /// stay zero under every lattice operation.
  void reset(size_t NumRows, size_t NumBits) {
    Rows = NumRows;
    Bits = NumBits;
    WPR = ((NumBits + 63) / 64 + 3) & ~size_t(3);
    Words.assign(Rows * WPR + 3, 0);
    uintptr_t P = reinterpret_cast<uintptr_t>(Words.data());
    Base = Words.data() + (((P + 31) & ~uintptr_t(31)) - P) / 8;
  }

  size_t numRows() const { return Rows; }
  size_t numBits() const { return Bits; }
  size_t wordsPerRow() const { return WPR; }

  uint64_t *row(size_t R) {
    assert(R < Rows && "row out of range");
    return Base + R * WPR;
  }
  const uint64_t *row(size_t R) const {
    assert(R < Rows && "row out of range");
    return Base + R * WPR;
  }

  void set(size_t R, size_t B) {
    assert(B < Bits && "bit index out of range");
    row(R)[B >> 6] |= uint64_t(1) << (B & 63);
  }
  bool test(size_t R, size_t B) const {
    assert(B < Bits && "bit index out of range");
    return (row(R)[B >> 6] >> (B & 63)) & 1;
  }

  /// Word-span lattice operations shared by every row consumer; \p W is
  /// the common wordsPerRow of the operands.
  /// Dst |= Src; returns true if Dst grew.
  static bool orInto(uint64_t *Dst, const uint64_t *Src, size_t W) {
    return bits::orInto(Dst, Src, W);
  }
  /// Dst &= Src.
  static void andWith(uint64_t *Dst, const uint64_t *Src, size_t W) {
    for (size_t I = 0; I < W; ++I)
      Dst[I] &= Src[I];
  }
  /// Dst &= ~Src.
  static void subtract(uint64_t *Dst, const uint64_t *Src, size_t W) {
    for (size_t I = 0; I < W; ++I)
      Dst[I] &= ~Src[I];
  }
  static void copy(uint64_t *Dst, const uint64_t *Src, size_t W) {
    for (size_t I = 0; I < W; ++I)
      Dst[I] = Src[I];
  }
  static void clear(uint64_t *Dst, size_t W) {
    for (size_t I = 0; I < W; ++I)
      Dst[I] = 0;
  }
  static bool equal(const uint64_t *A, const uint64_t *B, size_t W) {
    for (size_t I = 0; I < W; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }
  /// Calls \p F(index) for every set bit of the \p W-word span, ascending.
  template <typename Fn>
  static void forEachBit(const uint64_t *Span, size_t W, Fn F) {
    for (size_t WI = 0; WI < W; ++WI) {
      uint64_t Word = Span[WI];
      while (Word) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
        F((WI << 6) + Bit);
        Word &= Word - 1;
      }
    }
  }

  /// Heap footprint in bytes (cache byte-budget accounting).
  size_t memoryBytes() const { return Words.capacity() * sizeof(uint64_t); }

private:
  size_t Rows = 0, Bits = 0, WPR = 0;
  std::vector<uint64_t> Words;
  /// First row, 32-byte aligned within Words (never null after reset).
  uint64_t *Base = nullptr;
};

} // namespace vif

#endif // VIF_SUPPORT_BITSET_H
