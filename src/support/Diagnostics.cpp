//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <ostream>
#include <sstream>

using namespace vif;

const char *vif::severityName(DiagSeverity Sev) {
  switch (Sev) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(DiagSeverity Sev, SourceLoc Loc,
                              std::string Message) {
  if (Sev == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Sev, Loc, std::move(Message)});
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.Loc.str() << ": " << severityName(D.Severity) << ": " << D.Message
       << '\n';
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
