//===- support/Parallel.h - Simple fork-join parallel loops -----*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one parallel primitive the project needs: run N independent index
/// tasks over a pool of worker threads and join. driver::Batch fans
/// designs out with it and the rd solvers fan processes out with it (each
/// process's fixpoint is independent — disjoint labels, disjoint result
/// slots). Work is claimed from one atomic counter, so scheduling is
/// dynamic but the tasks themselves must write only index-owned state for
/// the results to be deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_PARALLEL_H
#define VIF_SUPPORT_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace vif {

/// Runs \p Fn(I) for every I in [0, N), over min(\p Jobs, N) threads.
/// Jobs <= 1 (and N <= 1) runs inline on the calling thread — the
/// serial path has zero threading overhead and is the default everywhere.
/// \p Fn must confine its writes to state owned by index I.
template <typename Fn>
void parallelFor(unsigned Jobs, size_t N, Fn &&F) {
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      F(I);
    return;
  }
  unsigned Threads = static_cast<unsigned>(
      std::min<size_t>(Jobs, N));
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1))
      F(I);
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
}

} // namespace vif

#endif // VIF_SUPPORT_PARALLEL_H
