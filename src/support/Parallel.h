//===- support/Parallel.h - Simple fork-join parallel loops -----*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel primitives the project needs. parallelFor runs N
/// independent index tasks over a pool of worker threads and joins:
/// driver::Batch fans designs out with it and the rd solvers fan
/// processes out with it (each process's fixpoint is independent —
/// disjoint labels, disjoint result slots). Work is claimed from one
/// atomic counter, so scheduling is dynamic but the tasks themselves must
/// write only index-owned state for the results to be deterministic.
///
/// WorkerPool is the long-lived variant for open-ended work: a fixed set
/// of threads draining a bounded task queue, with explicit admission
/// (tryEnqueue fails instead of growing without bound) — the scheduler
/// under the concurrent `vifc serve` front end (driver/Serve.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_PARALLEL_H
#define VIF_SUPPORT_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vif {

/// Runs \p Fn(I) for every I in [0, N), over min(\p Jobs, N) threads.
/// Jobs <= 1 (and N <= 1) runs inline on the calling thread — the
/// serial path has zero threading overhead and is the default everywhere.
/// \p Fn must confine its writes to state owned by index I.
template <typename Fn>
void parallelFor(unsigned Jobs, size_t N, Fn &&F) {
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      F(I);
    return;
  }
  unsigned Threads = static_cast<unsigned>(
      std::min<size_t>(Jobs, N));
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1))
      F(I);
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
}

/// A fixed pool of worker threads draining a bounded FIFO task queue.
///
/// Unlike parallelFor, the work list is open-ended: producers enqueue
/// tasks as they arrive and the pool runs them in submission order,
/// MaxQueued bounds how many tasks may wait (admission control — a full
/// queue makes tryEnqueue fail rather than buffer without limit), and
/// close() drains everything still queued before joining. Tasks must be
/// self-contained: the pool never reports results or exceptions (tasks
/// must not throw).
class WorkerPool {
public:
  /// \p Threads workers (at least 1) over a queue of at most
  /// \p MaxQueued waiting tasks (0 = unbounded).
  explicit WorkerPool(unsigned Threads, size_t MaxQueued = 0)
      : MaxQueued(MaxQueued) {
    Workers.reserve(std::max(Threads, 1u));
    for (unsigned T = 0; T < std::max(Threads, 1u); ++T)
      Workers.emplace_back([this] { workerLoop(); });
  }

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;
  ~WorkerPool() { close(); }

  /// Queues \p Task unless the pool is closed or the queue is full;
  /// false means the caller must shed the work (the serve front end
  /// answers `overloaded`).
  bool tryEnqueue(std::function<void()> Task) {
    {
      std::lock_guard<std::mutex> G(M);
      if (Closed || (MaxQueued && Queue.size() >= MaxQueued))
        return false;
      Queue.push_back(std::move(Task));
    }
    CV.notify_one();
    return true;
  }

  /// Tasks queued but not yet claimed by a worker.
  size_t queued() const {
    std::lock_guard<std::mutex> G(M);
    return Queue.size();
  }

  unsigned threads() const { return static_cast<unsigned>(Workers.size()); }

  /// Rejects further enqueues, runs every task still queued, and joins
  /// the workers. Idempotent; called by the destructor. Tasks that must
  /// not run to completion during a shutdown have to check their own
  /// stop flag — the pool always drains (dropping tasks would leak
  /// whatever they own, e.g. accepted connections).
  void close() {
    {
      std::lock_guard<std::mutex> G(M);
      if (Closed)
        return;
      Closed = true;
    }
    CV.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> G(M);
        CV.wait(G, [this] { return Closed || !Queue.empty(); });
        if (Queue.empty())
          return; // closed and drained
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      Task();
    }
  }

  mutable std::mutex M;
  std::condition_variable CV;
  std::deque<std::function<void()>> Queue;
  const size_t MaxQueued;
  bool Closed = false;
  std::vector<std::thread> Workers;
};

} // namespace vif

#endif // VIF_SUPPORT_PARALLEL_H
