//===- support/Graph.cpp --------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/Graph.h"

#include <algorithm>
#include <ostream>
#include <sstream>

using namespace vif;

Digraph::NodeId Digraph::addNode(const std::string &Name) {
  auto It = Ids.find(Name);
  if (It != Ids.end())
    return It->second;
  NodeId Id = static_cast<NodeId>(Names.size());
  Names.push_back(Name);
  Ids.emplace(Name, Id);
  return Id;
}

void Digraph::addEdge(const std::string &From, const std::string &To) {
  addEdge(addNode(From), addNode(To));
}

void Digraph::addEdge(NodeId From, NodeId To) {
  assert(From < Names.size() && To < Names.size() && "edge endpoint unknown");
  Edges.insert({From, To});
}

void Digraph::addEdges(std::vector<std::pair<NodeId, NodeId>> EdgeList) {
  std::sort(EdgeList.begin(), EdgeList.end());
  EdgeList.erase(std::unique(EdgeList.begin(), EdgeList.end()),
                 EdgeList.end());
#ifndef NDEBUG
  for (const auto &[From, To] : EdgeList)
    assert(From < Names.size() && To < Names.size() &&
           "edge endpoint unknown");
#endif
  // The list is now strictly ascending in the set's own order, so the
  // range insert degenerates to an ordered merge.
  Edges.insert(EdgeList.begin(), EdgeList.end());
}

void Digraph::reserveNodes(size_t N) {
  Names.reserve(N);
  Ids.reserve(N);
}

bool Digraph::hasNode(const std::string &Name) const {
  return Ids.count(Name) != 0;
}

bool Digraph::hasEdge(const std::string &From, const std::string &To) const {
  auto F = Ids.find(From), T = Ids.find(To);
  if (F == Ids.end() || T == Ids.end())
    return false;
  return hasEdge(F->second, T->second);
}

bool Digraph::hasEdge(NodeId From, NodeId To) const {
  return Edges.count({From, To}) != 0;
}

Digraph::NodeId Digraph::id(const std::string &Name) const {
  auto It = Ids.find(Name);
  assert(It != Ids.end() && "unknown node name");
  return It->second;
}

std::vector<std::string> Digraph::sortedNodes() const {
  std::vector<std::string> Result = Names;
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<std::pair<std::string, std::string>> Digraph::sortedEdges() const {
  std::vector<std::pair<std::string, std::string>> Result;
  Result.reserve(Edges.size());
  for (const auto &[From, To] : Edges)
    Result.emplace_back(Names[From], Names[To]);
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<Digraph::NodeId> Digraph::successors(NodeId Id) const {
  std::vector<NodeId> Result;
  for (auto It = Edges.lower_bound({Id, 0});
       It != Edges.end() && It->first == Id; ++It)
    Result.push_back(It->second);
  return Result;
}

std::vector<Digraph::NodeId> Digraph::predecessors(NodeId Id) const {
  std::vector<NodeId> Result;
  for (const auto &[From, To] : Edges)
    if (To == Id)
      Result.push_back(From);
  return Result;
}

bool Digraph::reachable(const std::string &From, const std::string &To) const {
  auto F = Ids.find(From), T = Ids.find(To);
  if (F == Ids.end() || T == Ids.end())
    return false;
  // Plain DFS from From; a path must have length >= 1, so To is only
  // accepted once reached over an edge.
  std::vector<bool> Seen(Names.size(), false);
  std::vector<NodeId> Stack = {F->second};
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    for (NodeId Succ : successors(N)) {
      if (Succ == T->second)
        return true;
      if (!Seen[Succ]) {
        Seen[Succ] = true;
        Stack.push_back(Succ);
      }
    }
  }
  return false;
}

Digraph Digraph::transitiveClosure() const {
  Digraph Result;
  for (const std::string &Name : Names)
    Result.addNode(Name);
  // Floyd-Warshall style closure on a dense bit matrix; the graphs the
  // evaluation produces are small (resources, not labels).
  size_t N = Names.size();
  std::vector<std::vector<bool>> M(N, std::vector<bool>(N, false));
  for (const auto &[From, To] : Edges)
    M[From][To] = true;
  for (size_t K = 0; K < N; ++K)
    for (size_t I = 0; I < N; ++I) {
      if (!M[I][K])
        continue;
      for (size_t J = 0; J < N; ++J)
        if (M[K][J])
          M[I][J] = true;
    }
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      if (M[I][J])
        Result.addEdge(static_cast<NodeId>(I), static_cast<NodeId>(J));
  return Result;
}

bool Digraph::isTransitive() const {
  for (const auto &[A, B] : Edges)
    for (NodeId C : successors(B))
      if (!hasEdge(A, C))
        return false;
  return true;
}

Digraph Digraph::mergeNodes(
    const std::function<std::string(const std::string &)> &Rename) const {
  Digraph Result;
  for (const std::string &Name : Names)
    Result.addNode(Rename(Name));
  for (const auto &[From, To] : Edges) {
    std::string F = Rename(Names[From]), T = Rename(Names[To]);
    // Merging must not fabricate self-flows: an edge between two distinct
    // nodes that collapse onto one name (e.g. a◦ -> a•) states that the
    // incoming value may flow to the outgoing value, which the merged node
    // represents implicitly, not as a loop.
    if (F == T && From != To)
      continue;
    Result.addEdge(F, T);
  }
  return Result;
}

Digraph Digraph::inducedSubgraph(
    const std::function<bool(const std::string &)> &Keep) const {
  Digraph Result;
  for (const std::string &Name : Names)
    if (Keep(Name))
      Result.addNode(Name);
  for (const auto &[From, To] : Edges)
    if (Keep(Names[From]) && Keep(Names[To]))
      Result.addEdge(Names[From], Names[To]);
  return Result;
}

std::vector<std::pair<std::string, std::string>>
Digraph::edgesNotIn(const Digraph &Other) const {
  std::vector<std::pair<std::string, std::string>> Result;
  for (const auto &[From, To] : sortedEdges())
    if (!Other.hasEdge(From, To))
      Result.emplace_back(From, To);
  return Result;
}

bool Digraph::sameFlows(const Digraph &Other) const {
  return sortedNodes() == Other.sortedNodes() &&
         sortedEdges() == Other.sortedEdges();
}

void Digraph::printDOT(std::ostream &OS, const std::string &Title) const {
  OS << "digraph \"" << Title << "\" {\n";
  for (const std::string &Name : sortedNodes())
    OS << "  \"" << Name << "\";\n";
  for (const auto &[From, To] : sortedEdges())
    OS << "  \"" << From << "\" -> \"" << To << "\";\n";
  OS << "}\n";
}

std::string Digraph::dot(const std::string &Title) const {
  std::ostringstream OS;
  printDOT(OS, Title);
  return OS.str();
}
