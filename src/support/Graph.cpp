//===- support/Graph.cpp --------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/Graph.h"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

using namespace vif;

Digraph::NodeId Digraph::addNode(const std::string &Name) {
  auto It = Ids.find(Name);
  if (It != Ids.end())
    return It->second;
  NodeId Id = static_cast<NodeId>(Names.size());
  Names.push_back(Name);
  Ids.emplace(Name, Id);
  return Id;
}

void Digraph::addEdge(const std::string &From, const std::string &To) {
  addEdge(addNode(From), addNode(To));
}

void Digraph::addEdge(NodeId From, NodeId To) {
  assert(From < Names.size() && To < Names.size() && "edge endpoint unknown");
  Pending.push_back({From, To});
}

void Digraph::addEdges(std::vector<std::pair<NodeId, NodeId>> EdgeList) {
#ifndef NDEBUG
  for (const auto &[From, To] : EdgeList)
    assert(From < Names.size() && To < Names.size() &&
           "edge endpoint unknown");
#endif
  if (Pending.empty())
    Pending = std::move(EdgeList);
  else
    Pending.insert(Pending.end(), EdgeList.begin(), EdgeList.end());
}

void Digraph::flushEdges() const {
  if (Pending.empty())
    return;
  std::sort(Pending.begin(), Pending.end());
  Pending.erase(std::unique(Pending.begin(), Pending.end()), Pending.end());
  if (Edges.empty()) {
    Edges.swap(Pending);
  } else {
    std::vector<std::pair<NodeId, NodeId>> Merged;
    Merged.reserve(Edges.size() + Pending.size());
    std::set_union(Edges.begin(), Edges.end(), Pending.begin(),
                   Pending.end(), std::back_inserter(Merged));
    Edges.swap(Merged);
    Pending.clear();
  }
}

void Digraph::reserveNodes(size_t N) {
  Names.reserve(N);
  Ids.reserve(N);
}

bool Digraph::hasNode(const std::string &Name) const {
  return Ids.count(Name) != 0;
}

bool Digraph::hasEdge(const std::string &From, const std::string &To) const {
  auto F = Ids.find(From), T = Ids.find(To);
  if (F == Ids.end() || T == Ids.end())
    return false;
  return hasEdge(F->second, T->second);
}

bool Digraph::hasEdge(NodeId From, NodeId To) const {
  flushEdges();
  return std::binary_search(Edges.begin(), Edges.end(),
                            std::make_pair(From, To));
}

Digraph::NodeId Digraph::id(const std::string &Name) const {
  auto It = Ids.find(Name);
  assert(It != Ids.end() && "unknown node name");
  return It->second;
}

std::vector<std::string> Digraph::sortedNodes() const {
  std::vector<std::string> Result = Names;
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<std::pair<std::string, std::string>> Digraph::sortedEdges() const {
  flushEdges();
  std::vector<std::pair<std::string, std::string>> Result;
  Result.reserve(Edges.size());
  for (const auto &[From, To] : Edges)
    Result.emplace_back(Names[From], Names[To]);
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<Digraph::NodeId> Digraph::successors(NodeId Id) const {
  flushEdges();
  std::vector<NodeId> Result;
  for (auto It = std::lower_bound(Edges.begin(), Edges.end(),
                                  std::make_pair(Id, NodeId(0)));
       It != Edges.end() && It->first == Id; ++It)
    Result.push_back(It->second);
  return Result;
}

std::vector<Digraph::NodeId> Digraph::predecessors(NodeId Id) const {
  flushEdges();
  std::vector<NodeId> Result;
  for (const auto &[From, To] : Edges)
    if (To == Id)
      Result.push_back(From);
  return Result;
}

bool Digraph::reachable(const std::string &From, const std::string &To) const {
  auto F = Ids.find(From), T = Ids.find(To);
  if (F == Ids.end() || T == Ids.end())
    return false;
  // Plain DFS from From; a path must have length >= 1, so To is only
  // accepted once reached over an edge.
  std::vector<bool> Seen(Names.size(), false);
  std::vector<NodeId> Stack = {F->second};
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    for (NodeId Succ : successors(N)) {
      if (Succ == T->second)
        return true;
      if (!Seen[Succ]) {
        Seen[Succ] = true;
        Stack.push_back(Succ);
      }
    }
  }
  return false;
}

Digraph Digraph::transitiveClosure() const {
  flushEdges();
  Digraph Result;
  for (const std::string &Name : Names)
    Result.addNode(Name);
  // Warshall closure over packed bit rows: one flat uint64 buffer holds
  // the N x N reachability matrix, and the inner J loop collapses to a
  // word-parallel row union M[I] |= M[K] guarded by M[I][K] — a 64x
  // constant cut over the bool-matrix formulation ("the traditional
  // method of Kemmerer" is the remaining cubic family; see DESIGN.md).
  size_t N = Names.size();
  size_t W = (N + 63) / 64; // words per row
  std::vector<uint64_t> M(N * W, 0);
  for (const auto &[From, To] : Edges)
    M[static_cast<size_t>(From) * W + (To >> 6)] |= uint64_t(1)
                                                    << (To & 63);
  for (size_t K = 0; K < N; ++K) {
    const uint64_t *RowK = M.data() + K * W;
    for (size_t I = 0; I < N; ++I) {
      uint64_t *RowI = M.data() + I * W;
      if (!((RowI[K >> 6] >> (K & 63)) & 1))
        continue;
      for (size_t J = 0; J < W; ++J)
        RowI[J] |= RowK[J];
    }
  }
  // Row-major set-bit order is exactly the sorted edge order, so the
  // result's edge vector is materialized directly, already flushed.
  for (size_t I = 0; I < N; ++I) {
    const uint64_t *RowI = M.data() + I * W;
    for (size_t WI = 0; WI < W; ++WI) {
      uint64_t Word = RowI[WI];
      while (Word) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
        Result.Edges.emplace_back(static_cast<NodeId>(I),
                                  static_cast<NodeId>((WI << 6) + Bit));
        Word &= Word - 1;
      }
    }
  }
  return Result;
}

bool Digraph::isTransitive() const {
  flushEdges();
  for (const auto &[A, B] : Edges)
    for (NodeId C : successors(B))
      if (!hasEdge(A, C))
        return false;
  return true;
}

Digraph Digraph::mergeNodes(
    const std::function<std::string(const std::string &)> &Rename) const {
  flushEdges();
  Digraph Result;
  for (const std::string &Name : Names)
    Result.addNode(Rename(Name));
  for (const auto &[From, To] : Edges) {
    std::string F = Rename(Names[From]), T = Rename(Names[To]);
    // Merging must not fabricate self-flows: an edge between two distinct
    // nodes that collapse onto one name (e.g. a◦ -> a•) states that the
    // incoming value may flow to the outgoing value, which the merged node
    // represents implicitly, not as a loop.
    if (F == T && From != To)
      continue;
    Result.addEdge(F, T);
  }
  return Result;
}

Digraph Digraph::inducedSubgraph(
    const std::function<bool(const std::string &)> &Keep) const {
  flushEdges();
  Digraph Result;
  for (const std::string &Name : Names)
    if (Keep(Name))
      Result.addNode(Name);
  for (const auto &[From, To] : Edges)
    if (Keep(Names[From]) && Keep(Names[To]))
      Result.addEdge(Names[From], Names[To]);
  return Result;
}

std::vector<std::pair<std::string, std::string>>
Digraph::edgesNotIn(const Digraph &Other) const {
  std::vector<std::pair<std::string, std::string>> Result;
  for (const auto &[From, To] : sortedEdges())
    if (!Other.hasEdge(From, To))
      Result.emplace_back(From, To);
  return Result;
}

bool Digraph::sameFlows(const Digraph &Other) const {
  return sortedNodes() == Other.sortedNodes() &&
         sortedEdges() == Other.sortedEdges();
}

void Digraph::printDOT(std::ostream &OS, const std::string &Title) const {
  OS << "digraph \"" << Title << "\" {\n";
  for (const std::string &Name : sortedNodes())
    OS << "  \"" << Name << "\";\n";
  for (const auto &[From, To] : sortedEdges())
    OS << "  \"" << From << "\" -> \"" << To << "\";\n";
  OS << "}\n";
}

std::string Digraph::dot(const std::string &Title) const {
  std::ostringstream OS;
  printDOT(OS, Title);
  return OS.str();
}
