//===- support/Graph.cpp --------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/Graph.h"

#include "support/BitSet.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <ostream>
#include <sstream>

using namespace vif;

std::string_view Digraph::intern(std::string_view Name) {
  if (Name.empty())
    return std::string_view("", 0);
  if (Name.size() > ArenaCap - ArenaUsed || ArenaBlocks.empty()) {
    size_t Cap = std::max<size_t>(Name.size(), 4096);
    ArenaBlocks.push_back(std::make_unique<char[]>(Cap));
    ArenaCap = Cap;
    ArenaUsed = 0;
  }
  char *Slot = ArenaBlocks.back().get() + ArenaUsed;
  std::memcpy(Slot, Name.data(), Name.size());
  ArenaUsed += Name.size();
  return std::string_view(Slot, Name.size());
}

Digraph::Digraph(const Digraph &Other) {
  Other.flushEdges();
  reserveNodes(Other.Names.size());
  for (std::string_view Name : Other.Names)
    addNode(Name);
  Edges = Other.Edges;
}

Digraph::Digraph(Digraph &&Other) noexcept
    : ArenaBlocks(std::move(Other.ArenaBlocks)), ArenaUsed(Other.ArenaUsed),
      ArenaCap(Other.ArenaCap), Names(std::move(Other.Names)),
      Ids(std::move(Other.Ids)), Edges(std::move(Other.Edges)),
      Pending(std::move(Other.Pending)), RankOrder(std::move(Other.RankOrder)),
      RankOf(std::move(Other.RankOf)), EdgeOrder(std::move(Other.EdgeOrder)) {
  // The atomic flags are copied by value; the mutex is NOT moved — each
  // graph keeps its own (a moved-from graph must still be lockable).
  EdgesDirty.store(Other.EdgesDirty.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  RankValid.store(Other.RankValid.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  EdgeOrderValid.store(Other.EdgeOrderValid.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  Other.ArenaUsed = 0;
  Other.ArenaCap = 0;
  Other.EdgesDirty.store(false, std::memory_order_relaxed);
  Other.RankValid.store(false, std::memory_order_relaxed);
  Other.EdgeOrderValid.store(false, std::memory_order_relaxed);
}

Digraph &Digraph::operator=(Digraph &&Other) noexcept {
  if (this != &Other) {
    ArenaBlocks = std::move(Other.ArenaBlocks);
    ArenaUsed = Other.ArenaUsed;
    ArenaCap = Other.ArenaCap;
    Names = std::move(Other.Names);
    Ids = std::move(Other.Ids);
    Edges = std::move(Other.Edges);
    Pending = std::move(Other.Pending);
    RankOrder = std::move(Other.RankOrder);
    RankOf = std::move(Other.RankOf);
    EdgeOrder = std::move(Other.EdgeOrder);
    EdgesDirty.store(Other.EdgesDirty.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    RankValid.store(Other.RankValid.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    EdgeOrderValid.store(Other.EdgeOrderValid.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    Other.ArenaUsed = 0;
    Other.ArenaCap = 0;
    Other.EdgesDirty.store(false, std::memory_order_relaxed);
    Other.RankValid.store(false, std::memory_order_relaxed);
    Other.EdgeOrderValid.store(false, std::memory_order_relaxed);
  }
  return *this;
}

Digraph &Digraph::operator=(const Digraph &Other) {
  if (this != &Other) {
    Digraph Copy(Other);
    *this = std::move(Copy);
  }
  return *this;
}

Digraph::NodeId Digraph::addNode(std::string_view Name) {
  auto It = Ids.find(Name);
  if (It != Ids.end())
    return It->second;
  NodeId Id = static_cast<NodeId>(Names.size());
  std::string_view Stable = intern(Name);
  Names.push_back(Stable);
  Ids.emplace(Stable, Id);
  // Relative ranks survive, so EdgeOrder stays valid. Mutation is
  // single-threaded by contract, so relaxed stores suffice here.
  RankValid.store(false, std::memory_order_relaxed);
  return Id;
}

void Digraph::addEdge(std::string_view From, std::string_view To) {
  addEdge(addNode(From), addNode(To));
}

void Digraph::addEdge(NodeId From, NodeId To) {
  assert(From < Names.size() && To < Names.size() && "edge endpoint unknown");
  Pending.push_back({From, To});
  EdgesDirty.store(true, std::memory_order_relaxed);
  EdgeOrderValid.store(false, std::memory_order_relaxed);
}

void Digraph::addEdges(std::vector<std::pair<NodeId, NodeId>> EdgeList) {
#ifndef NDEBUG
  for (const auto &[From, To] : EdgeList)
    assert(From < Names.size() && To < Names.size() &&
           "edge endpoint unknown");
#endif
  if (EdgeList.empty())
    return;
  if (Pending.empty())
    Pending = std::move(EdgeList);
  else
    Pending.insert(Pending.end(), EdgeList.begin(), EdgeList.end());
  EdgesDirty.store(true, std::memory_order_relaxed);
  EdgeOrderValid.store(false, std::memory_order_relaxed);
}

// Each lazy view is built with double-checked locking: the acquire load on
// the fast path pairs with the release store after the build, so a reader
// that sees the flag set also sees the finished vectors. Concurrent const
// readers (two query threads over one cached session graph) serialize only
// on first use; after that the fast path is a single atomic load.

void Digraph::flushEdges() const {
  if (!EdgesDirty.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> Lock(*ViewMutex);
  if (!EdgesDirty.load(std::memory_order_relaxed))
    return;
  std::sort(Pending.begin(), Pending.end());
  Pending.erase(std::unique(Pending.begin(), Pending.end()), Pending.end());
  if (Edges.empty()) {
    Edges.swap(Pending);
  } else {
    std::vector<std::pair<NodeId, NodeId>> Merged;
    Merged.reserve(Edges.size() + Pending.size());
    std::set_union(Edges.begin(), Edges.end(), Pending.begin(),
                   Pending.end(), std::back_inserter(Merged));
    Edges.swap(Merged);
    Pending.clear();
  }
  EdgeOrderValid.store(false, std::memory_order_relaxed);
  EdgesDirty.store(false, std::memory_order_release);
}

void Digraph::ensureRank() const {
  if (RankValid.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> Lock(*ViewMutex);
  if (RankValid.load(std::memory_order_relaxed))
    return;
  RankOrder.resize(Names.size());
  std::iota(RankOrder.begin(), RankOrder.end(), NodeId(0));
  std::sort(RankOrder.begin(), RankOrder.end(),
            [this](NodeId A, NodeId B) { return Names[A] < Names[B]; });
  RankOf.resize(Names.size());
  for (size_t Rank = 0; Rank < RankOrder.size(); ++Rank)
    RankOf[RankOrder[Rank]] = static_cast<NodeId>(Rank);
  RankValid.store(true, std::memory_order_release);
}

void Digraph::ensureEdgeOrder() const {
  if (EdgeOrderValid.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> Lock(*ViewMutex);
  if (EdgeOrderValid.load(std::memory_order_relaxed))
    return;
  EdgeOrder.resize(Edges.size());
  std::iota(EdgeOrder.begin(), EdgeOrder.end(), uint32_t(0));
  std::sort(EdgeOrder.begin(), EdgeOrder.end(),
            [this](uint32_t A, uint32_t B) {
              const auto &EA = Edges[A], &EB = Edges[B];
              NodeId FA = RankOf[EA.first], FB = RankOf[EB.first];
              if (FA != FB)
                return FA < FB;
              return RankOf[EA.second] < RankOf[EB.second];
            });
  EdgeOrderValid.store(true, std::memory_order_release);
}

size_t Digraph::memoryBytes() const {
  // intern() sizes every block at max(name, 4096) and only tracks the
  // open block's capacity (ArenaCap), so closed blocks are counted at
  // the 4096 floor — exact except for individual names beyond 4K.
  size_t Arena = (ArenaBlocks.empty()
                      ? 0
                      : (ArenaBlocks.size() - 1) * size_t(4096)) +
                 ArenaCap;
  size_t Map = Ids.bucket_count() * sizeof(void *) +
               Ids.size() * (sizeof(std::pair<std::string_view, NodeId>) +
                             2 * sizeof(void *));
  return Arena + Names.capacity() * sizeof(std::string_view) + Map +
         (Edges.capacity() + Pending.capacity()) *
             sizeof(std::pair<NodeId, NodeId>) +
         (RankOrder.capacity() + RankOf.capacity()) * sizeof(NodeId) +
         EdgeOrder.capacity() * sizeof(uint32_t) + sizeof(std::mutex);
}

void Digraph::reserveNodes(size_t N) {
  Names.reserve(N);
  Ids.reserve(N);
}

bool Digraph::hasNode(std::string_view Name) const {
  return Ids.count(Name) != 0;
}

bool Digraph::hasEdge(std::string_view From, std::string_view To) const {
  auto F = Ids.find(From), T = Ids.find(To);
  if (F == Ids.end() || T == Ids.end())
    return false;
  return hasEdge(F->second, T->second);
}

bool Digraph::hasEdge(NodeId From, NodeId To) const {
  flushEdges();
  return std::binary_search(Edges.begin(), Edges.end(),
                            std::make_pair(From, To));
}

Digraph::NodeId Digraph::id(std::string_view Name) const {
  auto It = Ids.find(Name);
  assert(It != Ids.end() && "unknown node name");
  return It->second;
}

std::vector<std::string> Digraph::sortedNodes() const {
  ensureRank();
  std::vector<std::string> Result;
  Result.reserve(RankOrder.size());
  for (NodeId Id : RankOrder)
    Result.emplace_back(Names[Id]);
  return Result;
}

std::vector<std::pair<std::string, std::string>> Digraph::sortedEdges() const {
  std::vector<std::pair<std::string, std::string>> Result;
  Result.reserve(numEdges());
  forEachSortedEdge([&Result](std::string_view From, std::string_view To) {
    Result.emplace_back(From, To);
  });
  return Result;
}

std::vector<Digraph::NodeId> Digraph::successors(NodeId Id) const {
  flushEdges();
  std::vector<NodeId> Result;
  for (auto It = std::lower_bound(Edges.begin(), Edges.end(),
                                  std::make_pair(Id, NodeId(0)));
       It != Edges.end() && It->first == Id; ++It)
    Result.push_back(It->second);
  return Result;
}

std::vector<Digraph::NodeId> Digraph::predecessors(NodeId Id) const {
  flushEdges();
  std::vector<NodeId> Result;
  for (const auto &[From, To] : Edges)
    if (To == Id)
      Result.push_back(From);
  return Result;
}

bool Digraph::reachable(std::string_view From, std::string_view To) const {
  auto F = Ids.find(From), T = Ids.find(To);
  if (F == Ids.end() || T == Ids.end())
    return false;
  // Plain DFS from From; a path must have length >= 1, so To is only
  // accepted once reached over an edge.
  std::vector<bool> Seen(Names.size(), false);
  std::vector<NodeId> Stack = {F->second};
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    for (NodeId Succ : successors(N)) {
      if (Succ == T->second)
        return true;
      if (!Seen[Succ]) {
        Seen[Succ] = true;
        Stack.push_back(Succ);
      }
    }
  }
  return false;
}

void Digraph::reachabilityClosure(BitMatrix &Out) const {
  flushEdges();
  // Warshall closure over packed bit rows: the BitMatrix holds the N x N
  // reachability matrix, and the inner J loop collapses to a word-parallel
  // row union M[I] |= M[K] guarded by M[I][K] — a 64x constant cut over
  // the bool-matrix formulation ("the traditional method of Kemmerer" is
  // the remaining cubic family; see DESIGN.md). BitMatrix pads each row
  // to a multiple of 4 words so the unrolled union kernel (bits::orWords)
  // runs tail-free; padding bits stay zero.
  size_t N = Names.size();
  Out.reset(N, N);
  size_t W = Out.wordsPerRow();
  for (const auto &[From, To] : Edges)
    Out.set(From, To);
  for (size_t K = 0; K < N; ++K) {
    const uint64_t *RowK = Out.row(K);
    for (size_t I = 0; I < N; ++I) {
      if (I == K)
        continue; // RowI |= RowI is a no-op (and would alias)
      uint64_t *RowI = Out.row(I);
      if (!((RowI[K >> 6] >> (K & 63)) & 1))
        continue;
      bits::orWords(RowI, RowK, W);
    }
  }
}

Digraph Digraph::transitiveClosure() const {
  Digraph Result;
  Result.reserveNodes(Names.size());
  for (std::string_view Name : Names)
    Result.addNode(Name);
  BitMatrix M;
  reachabilityClosure(M);
  // Row-major set-bit order is exactly the sorted edge order, so the
  // result's edge vector is materialized directly, already flushed.
  size_t N = Names.size();
  size_t W = M.wordsPerRow();
  for (size_t I = 0; I < N; ++I) {
    const uint64_t *RowI = M.row(I);
    for (size_t WI = 0; WI < W; ++WI) {
      uint64_t Word = RowI[WI];
      while (Word) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
        Result.Edges.emplace_back(static_cast<NodeId>(I),
                                  static_cast<NodeId>((WI << 6) + Bit));
        Word &= Word - 1;
      }
    }
  }
  return Result;
}

bool Digraph::isTransitive() const {
  flushEdges();
  for (const auto &[A, B] : Edges)
    for (NodeId C : successors(B))
      if (!hasEdge(A, C))
        return false;
  return true;
}

Digraph Digraph::mergeNodes(
    const std::function<std::string(std::string_view)> &Rename) const {
  flushEdges();
  Digraph Result;
  for (std::string_view Name : Names)
    Result.addNode(Rename(Name));
  for (const auto &[From, To] : Edges) {
    std::string F = Rename(Names[From]), T = Rename(Names[To]);
    // Merging must not fabricate self-flows: an edge between two distinct
    // nodes that collapse onto one name (e.g. a◦ -> a•) states that the
    // incoming value may flow to the outgoing value, which the merged node
    // represents implicitly, not as a loop.
    if (F == T && From != To)
      continue;
    Result.addEdge(F, T);
  }
  return Result;
}

Digraph Digraph::inducedSubgraph(
    const std::function<bool(std::string_view)> &Keep) const {
  flushEdges();
  Digraph Result;
  for (std::string_view Name : Names)
    if (Keep(Name))
      Result.addNode(Name);
  for (const auto &[From, To] : Edges)
    if (Keep(Names[From]) && Keep(Names[To]))
      Result.addEdge(Names[From], Names[To]);
  return Result;
}

std::vector<std::pair<std::string, std::string>>
Digraph::edgesNotIn(const Digraph &Other) const {
  std::vector<std::pair<std::string, std::string>> Result;
  forEachSortedEdge([&](std::string_view From, std::string_view To) {
    if (!Other.hasEdge(From, To))
      Result.emplace_back(From, To);
  });
  return Result;
}

bool Digraph::sameFlows(const Digraph &Other) const {
  return sortedNodes() == Other.sortedNodes() &&
         sortedEdges() == Other.sortedEdges();
}

void Digraph::printDOT(std::ostream &OS, std::string_view Title) const {
  OS << "digraph \"" << Title << "\" {\n";
  ensureRank();
  for (NodeId Id : RankOrder)
    OS << "  \"" << Names[Id] << "\";\n";
  forEachSortedEdge([&OS](std::string_view From, std::string_view To) {
    OS << "  \"" << From << "\" -> \"" << To << "\";\n";
  });
  OS << "}\n";
}

std::string Digraph::dot(std::string_view Title) const {
  std::ostringstream OS;
  printDOT(OS, Title);
  return OS.str();
}
