//===- support/Hash.h - Content hashing -------------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small incremental content hash (64-bit FNV-1a) for content-addressed
/// caching: the driver's SessionCache keys sessions by the hash of the
/// VHDL source text plus the analysis options (see driver/SessionCache.h).
/// Not cryptographic — collisions are tolerable for a cache (a collision
/// serves the wrong artifact, so keys also fold in lengths to keep the
/// accidental-collision surface small) and the stream is trusted local
/// input, not an adversary.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_HASH_H
#define VIF_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace vif {

/// Incremental 64-bit FNV-1a. Feed bytes/integers/strings in a fixed
/// order; equal feed sequences produce equal values.
class HashBuilder {
public:
  HashBuilder &bytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ull;
    }
    return *this;
  }

  /// Length-prefixed, so ("ab","c") and ("a","bc") hash differently.
  HashBuilder &str(std::string_view S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  HashBuilder &u64(uint64_t V) { return bytes(&V, sizeof(V)); }
  HashBuilder &boolean(bool B) { return u64(B ? 1 : 0); }

  uint64_t value() const { return H; }

  /// 16 lowercase hex digits of value().
  std::string hex() const {
    static const char Digits[] = "0123456789abcdef";
    std::string Out(16, '0');
    uint64_t V = H;
    for (int I = 15; I >= 0; --I, V >>= 4)
      Out[static_cast<size_t>(I)] = Digits[V & 0xf];
    return Out;
  }

private:
  uint64_t H = 0xcbf29ce484222325ull; // FNV offset basis
};

} // namespace vif

#endif // VIF_SUPPORT_HASH_H
