//===- support/JsonParse.h - Minimal JSON parser ----------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read side of support/Json.h: a small RFC 8259 parser producing an
/// owning DOM (JsonValue). It exists for the `vifc serve` request decoder
/// and for tests that validate emitted documents, so it favors strictness
/// and clear error messages over speed: no trailing garbage, no
/// comments, a fixed nesting-depth limit (serve parses untrusted lines —
/// a deep bomb must fail, not overflow the stack).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_JSONPARSE_H
#define VIF_SUPPORT_JSONPARSE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vif {

/// One parsed JSON value. Object members keep their source order (and
/// duplicates), which the schema-conformance tests rely on to see every
/// emitted field.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  static JsonValue makeBool(bool B);
  static JsonValue makeNumber(double N);
  static JsonValue makeString(std::string S);
  static JsonValue makeArray();
  static JsonValue makeObject();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }

  /// Array elements (valid for arrays; empty otherwise).
  const std::vector<JsonValue> &elements() const { return Elems; }
  std::vector<JsonValue> &elements() { return Elems; }

  /// Object members in source order (valid for objects; empty otherwise).
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  std::vector<std::pair<std::string, JsonValue>> &members() {
    return Members;
  }

  /// First member named \p Key, or nullptr (objects only).
  const JsonValue *find(std::string_view Key) const;

private:
  Kind K;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Parses exactly one JSON document covering all of \p Text (surrounding
/// whitespace allowed). On failure returns nullopt and, when \p Error is
/// non-null, stores "offset N: what went wrong".
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Error = nullptr);

} // namespace vif

#endif // VIF_SUPPORT_JSONPARSE_H
