//===- support/JsonParse.cpp ----------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "support/JsonParse.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace vif;

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

JsonValue JsonValue::makeNumber(double N) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = N;
  return V;
}

JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

JsonValue JsonValue::makeArray() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::makeObject() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

const JsonValue *JsonValue::find(std::string_view Key) const {
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view; fails fast with an
/// offset-tagged message.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> run(std::string *Error) {
    JsonValue V;
    if (!parseValue(V, 0) || !expectEnd()) {
      if (Error)
        *Error = Err;
      return std::nullopt;
    }
    return V;
  }

private:
  /// Nested containers beyond this fail cleanly instead of deepening the
  /// C++ call stack on hostile input.
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &What) {
    if (Err.empty())
      Err = "offset " + std::to_string(Pos) + ": " + What;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool expectEnd() {
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after the document");
    return true;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool literal(std::string_view Word) {
    if (Text.compare(Pos, Word.size(), Word) != 0)
      return fail("invalid literal");
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      return literal("null") ? (Out = JsonValue(), true) : false;
    case 't':
      return literal("true") ? (Out = JsonValue::makeBool(true), true)
                             : false;
    case 'f':
      return literal("false") ? (Out = JsonValue::makeBool(false), true)
                              : false;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::makeString(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    ++Pos; // '['
    Out = JsonValue::makeArray();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue Elem;
      if (!parseValue(Elem, Depth + 1))
        return false;
      Out.elements().push_back(std::move(Elem));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    ++Pos; // '{'
    Out = JsonValue::makeObject();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected a member name");
      std::string Name;
      if (!parseString(Name))
        return false;
      if (!consume(':'))
        return false;
      JsonValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.members().emplace_back(std::move(Name), std::move(Member));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return fail("unterminated escape");
      switch (Text[Pos]) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        ++Pos;
        unsigned CP = 0;
        if (!parseHex4(CP))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00-
        // \uDFFF; combine into one code point.
        if (CP >= 0xD800 && CP <= 0xDBFF) {
          if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          unsigned Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("invalid low surrogate");
          CP = 0x10000 + ((CP - 0xD800) << 10) + (Low - 0xDC00);
        } else if (CP >= 0xDC00 && CP <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, CP);
        continue; // parseHex4 already advanced Pos
      }
      default:
        return fail("invalid escape");
      }
      ++Pos;
    }
  }

  /// Reads exactly four hex digits at Pos into \p Out, advancing Pos.
  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + static_cast<size_t>(I)];
      unsigned Digit;
      if (C >= '0' && C <= '9')
        Digit = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Digit = static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Digit = static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("invalid \\u escape");
      Out = Out * 16 + Digit;
    }
    Pos += 4;
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned CP) {
    if (CP < 0x80) {
      Out += static_cast<char>(CP);
    } else if (CP < 0x800) {
      Out += static_cast<char>(0xC0 | (CP >> 6));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      Out += static_cast<char>(0xE0 | (CP >> 12));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (CP >> 18));
      Out += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto digits = [&] {
      size_t N = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++N;
      }
      return N;
    };
    // JSON forbids leading zeros ("01") and a bare '-'.
    size_t IntStart = Pos;
    if (digits() == 0)
      return fail("invalid number");
    if (Text[IntStart] == '0' && Pos - IntStart > 1)
      return fail("leading zero in number");
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (digits() == 0)
        return fail("digits required after '.'");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (digits() == 0)
        return fail("digits required in exponent");
    }
    std::string Num(Text.substr(Start, Pos - Start));
    Out = JsonValue::makeNumber(std::strtod(Num.c_str(), nullptr));
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

std::optional<JsonValue> vif::parseJson(std::string_view Text,
                                        std::string *Error) {
  return Parser(Text).run(Error);
}
