//===- support/Diagnostics.h - Diagnostic engine ----------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Library code never throws; parse and
/// elaboration failures are reported here and callers test hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SUPPORT_DIAGNOSTICS_H
#define VIF_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace vif {

enum class DiagSeverity { Note, Warning, Error };

/// Renders a severity as the lowercase tag used in diagnostic output.
const char *severityName(DiagSeverity Sev);

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one source unit.
///
/// The engine is deliberately append-only: analyses downstream of a failed
/// phase check hasErrors() and bail out rather than inspecting partial
/// results.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }
  void report(DiagSeverity Sev, SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }

  /// Prints every diagnostic as "line:col: severity: message".
  void print(std::ostream &OS) const;

  /// Concatenation of all rendered diagnostics; convenient in tests.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace vif

#endif // VIF_SUPPORT_DIAGNOSTICS_H
