//===- aesref/Aes128.h - Software AES-128 reference -------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A straightforward FIPS-197 AES-128 implementation. The paper's evaluation
/// ran on the NSA AES reference VHDL [17], which is not public; we rebuild
/// the hardware description in VHDL1 (src/workloads) and use this software
/// implementation as the oracle the simulator's outputs are checked against
/// (FIPS-197 Appendix B/C test vectors in the test suite).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_AESREF_AES128_H
#define VIF_AESREF_AES128_H

#include <array>
#include <cstdint>

namespace vif {
namespace aes {

using Block = std::array<uint8_t, 16>;
using Key = std::array<uint8_t, 16>;
/// 11 round keys of 16 bytes each.
using KeySchedule = std::array<uint8_t, 176>;

/// The AES S-box.
extern const uint8_t SBox[256];

/// GF(2^8) xtime (multiplication by {02}).
uint8_t xtime(uint8_t X);

/// FIPS-197 key expansion.
KeySchedule expandKey(const Key &K);

/// Single-round building blocks, exposed so the simulator tests can check
/// each VHDL1 component (SubBytes, ShiftRows, MixColumns, AddRoundKey)
/// against its software counterpart. State layout is column-major as in
/// FIPS-197: State[r + 4*c] is row r, column c.
void subBytes(Block &State);
void shiftRows(Block &State);
void mixColumns(Block &State);
void addRoundKey(Block &State, const uint8_t *RoundKey);

/// Full encryption of one block.
Block encrypt(const Block &Plain, const Key &K);

} // namespace aes
} // namespace vif

#endif // VIF_AESREF_AES128_H
