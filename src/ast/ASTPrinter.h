//===- ast/ASTPrinter.h - VHDL1 pretty printer ------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders AST nodes back to VHDL1 concrete syntax. The printer is exact
/// enough to round-trip: parse(print(ast)) is structurally identical to ast,
/// which the parser tests exploit.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_AST_ASTPRINTER_H
#define VIF_AST_ASTPRINTER_H

#include "ast/Design.h"

#include <iosfwd>
#include <string>

namespace vif {

void printExpr(std::ostream &OS, const Expr &E);
void printStmt(std::ostream &OS, const Stmt &S, unsigned Indent = 0);
void printDecl(std::ostream &OS, const Decl &D, unsigned Indent = 0);
void printConcStmt(std::ostream &OS, const ConcStmt &S, unsigned Indent = 0);
void printEntity(std::ostream &OS, const Entity &E);
void printArchitecture(std::ostream &OS, const Architecture &A);
void printDesignFile(std::ostream &OS, const DesignFile &D);

std::string exprToString(const Expr &E);
std::string stmtToString(const Stmt &S);
std::string designToString(const DesignFile &D);

} // namespace vif

#endif // VIF_AST_ASTPRINTER_H
