//===- ast/Type.cpp -------------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ast/Type.h"

using namespace vif;

std::string Type::str() const {
  if (!IsVector)
    return "std_logic";
  return "std_logic_vector(" + std::to_string(Left) +
         (Downto ? " downto " : " to ") + std::to_string(Right) + ")";
}
