//===- ast/Type.h - VHDL1 types ---------------------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VHDL1 type grammar (paper Figure 1):
///
///   type ::= std_logic | std_logic_vector(z1 downto z2)
///          | std_logic_vector(z1 to z2)
///
/// Type is a small value class. It owns the index-to-position mapping for
/// vectors, which is where the paper's "normalize all vectors to ascending
/// ranges" simplification is absorbed: values (LogicVector) are purely
/// positional with the leftmost declared element first, and `to` ranges
/// differ from `downto` ranges only in how an index is translated to a
/// position.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_AST_TYPE_H
#define VIF_AST_TYPE_H

#include <cassert>
#include <cstdlib>
#include <string>

namespace vif {

/// A VHDL1 type: std_logic or std_logic_vector with a static range.
class Type {
public:
  /// std_logic.
  Type() = default;

  static Type scalar() { return Type(); }

  /// std_logic_vector(Left downto Right) or (Left to Right).
  static Type vector(int Left, int Right, bool Downto) {
    Type T;
    T.IsVector = true;
    T.Left = Left;
    T.Right = Right;
    T.Downto = Downto;
    assert(T.rangeValid() && "vector range runs against its direction");
    return T;
  }

  bool isScalar() const { return !IsVector; }
  bool isVector() const { return IsVector; }

  int left() const {
    assert(IsVector && "scalar types have no range");
    return Left;
  }
  int right() const {
    assert(IsVector && "scalar types have no range");
    return Right;
  }
  bool isDownto() const {
    assert(IsVector && "scalar types have no range");
    return Downto;
  }

  /// Number of std_logic elements (1 for scalars).
  unsigned width() const {
    if (!IsVector)
      return 1;
    return static_cast<unsigned>(std::abs(Left - Right)) + 1;
  }

  bool containsIndex(int Index) const {
    if (!IsVector)
      return false;
    if (Downto)
      return Index <= Left && Index >= Right;
    return Index >= Left && Index <= Right;
  }

  /// Translates a declared index into a position (0 = leftmost element).
  unsigned positionOf(int Index) const {
    assert(containsIndex(Index) && "index outside declared range");
    return static_cast<unsigned>(Downto ? Left - Index : Index - Left);
  }

  /// True if (Z1 downto Z2) resp. (Z1 to Z2) is a well-formed slice of this
  /// type: matching direction and both bounds inside the declared range.
  bool sliceValid(int Z1, int Z2, bool SliceDownto) const {
    if (!IsVector || SliceDownto != Downto)
      return false;
    if (!containsIndex(Z1) || !containsIndex(Z2))
      return false;
    return Downto ? Z1 >= Z2 : Z1 <= Z2;
  }

  /// Leftmost position of the slice; requires sliceValid.
  unsigned slicePosition(int Z1, int Z2, bool SliceDownto) const {
    assert(sliceValid(Z1, Z2, SliceDownto) && "malformed slice");
    (void)Z2;
    (void)SliceDownto;
    return positionOf(Z1);
  }

  /// Width of the slice; requires sliceValid.
  unsigned sliceWidth(int Z1, int Z2, bool SliceDownto) const {
    assert(sliceValid(Z1, Z2, SliceDownto) && "malformed slice");
    (void)SliceDownto;
    return static_cast<unsigned>(std::abs(Z1 - Z2)) + 1;
  }

  bool operator==(const Type &O) const {
    if (IsVector != O.IsVector)
      return false;
    if (!IsVector)
      return true;
    return Left == O.Left && Right == O.Right && Downto == O.Downto;
  }
  bool operator!=(const Type &O) const { return !(*this == O); }

  /// True if values of \p O can be assigned to objects of this type. VHDL
  /// array assignment is by position, so only the widths must agree.
  bool assignableFrom(const Type &O) const {
    return IsVector == O.IsVector && width() == O.width();
  }

  /// Renders the type in VHDL syntax.
  std::string str() const;

private:
  bool rangeValid() const { return Downto ? Left >= Right : Left <= Right; }

  bool IsVector = false;
  int Left = 0;
  int Right = 0;
  bool Downto = true;
};

} // namespace vif

#endif // VIF_AST_TYPE_H
