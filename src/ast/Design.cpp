//===- ast/Design.cpp -----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ast/Design.h"

using namespace vif;

// Out-of-line virtual anchor.
ConcStmt::~ConcStmt() = default;

const char *vif::portModeSpelling(PortMode Mode) {
  switch (Mode) {
  case PortMode::In:
    return "in";
  case PortMode::Out:
    return "out";
  case PortMode::InOut:
    return "inout";
  }
  return "?";
}

const Entity *DesignFile::findEntity(const std::string &Name) const {
  for (const Entity &E : Entities)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

const Architecture *
DesignFile::findArchitecture(const std::string &Name) const {
  for (const Architecture &A : Architectures)
    if (A.Name == Name)
      return &A;
  return nullptr;
}
