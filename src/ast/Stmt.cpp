//===- ast/Stmt.cpp -------------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ast/Stmt.h"

using namespace vif;

// Out-of-line virtual anchor.
Stmt::~Stmt() = default;

StmtPtr NullStmt::clone() const {
  return std::make_unique<NullStmt>(range());
}

StmtPtr VarAssignStmt::clone() const {
  auto Node = std::make_unique<VarAssignStmt>(
      targetName(), hasSlice() ? std::optional<SliceSpec>(slice())
                               : std::nullopt,
      value().clone(), range());
  Node->setTargetRef(targetRef());
  return Node;
}

StmtPtr SignalAssignStmt::clone() const {
  auto Node = std::make_unique<SignalAssignStmt>(
      targetName(), hasSlice() ? std::optional<SliceSpec>(slice())
                               : std::nullopt,
      value().clone(), range());
  Node->setTargetRef(targetRef());
  return Node;
}

StmtPtr WaitStmt::clone() const {
  auto Node = std::make_unique<WaitStmt>(
      onNames(), hasExplicitOn(), hasUntil() ? until().clone() : nullptr,
      range());
  Node->setOnSignals(onSignals());
  return Node;
}

StmtPtr CompoundStmt::clone() const {
  std::vector<StmtPtr> Cloned;
  Cloned.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    Cloned.push_back(S->clone());
  return std::make_unique<CompoundStmt>(std::move(Cloned), range());
}

StmtPtr IfStmt::clone() const {
  return std::make_unique<IfStmt>(Cond->clone(), Then->clone(),
                                  Else->clone(), range());
}

StmtPtr WhileStmt::clone() const {
  return std::make_unique<WhileStmt>(Cond->clone(), Body->clone(), range());
}
