//===- ast/ASTPrinter.cpp -------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"

#include "support/Casting.h"

#include <ostream>
#include <sstream>

using namespace vif;

namespace {

/// Binding strength for parenthesization. VHDL operator families are mostly
/// non-associative across families; we parenthesize any nested binary whose
/// precedence is not strictly higher than its parent's, which is always
/// legal and keeps the printer simple and unambiguous.
unsigned precedenceOf(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::And:
  case BinaryOpKind::Or:
  case BinaryOpKind::Nand:
  case BinaryOpKind::Nor:
  case BinaryOpKind::Xor:
  case BinaryOpKind::Xnor:
    return 1;
  case BinaryOpKind::Eq:
  case BinaryOpKind::Ne:
  case BinaryOpKind::Lt:
  case BinaryOpKind::Le:
  case BinaryOpKind::Gt:
  case BinaryOpKind::Ge:
    return 2;
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
  case BinaryOpKind::Concat:
    return 3;
  case BinaryOpKind::Mul:
    return 4;
  }
  return 0;
}

void printExprPrec(std::ostream &OS, const Expr &E, unsigned ParentPrec) {
  switch (E.kind()) {
  case Expr::Kind::LogicLiteral:
    OS << '\'' << toChar(cast<LogicLiteralExpr>(&E)->value()) << '\'';
    return;
  case Expr::Kind::VectorLiteral:
    OS << '"' << cast<VectorLiteralExpr>(&E)->value().str() << '"';
    return;
  case Expr::Kind::Name:
    OS << cast<NameExpr>(&E)->name();
    return;
  case Expr::Kind::Slice: {
    const auto *S = cast<SliceExpr>(&E);
    OS << S->name() << '(' << S->slice().str() << ')';
    return;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    OS << unaryOpSpelling(U->op()) << ' ';
    printExprPrec(OS, U->sub(), 5);
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    unsigned Prec = precedenceOf(B->op());
    bool Paren = Prec <= ParentPrec;
    if (Paren)
      OS << '(';
    printExprPrec(OS, B->lhs(), Prec);
    OS << ' ' << binaryOpSpelling(B->op()) << ' ';
    printExprPrec(OS, B->rhs(), Prec);
    if (Paren)
      OS << ')';
    return;
  }
  }
}

std::ostream &indent(std::ostream &OS, unsigned Indent) {
  for (unsigned I = 0; I < Indent; ++I)
    OS << "  ";
  return OS;
}

} // namespace

void vif::printExpr(std::ostream &OS, const Expr &E) {
  printExprPrec(OS, E, 0);
}

void vif::printStmt(std::ostream &OS, const Stmt &S, unsigned Indent) {
  switch (S.kind()) {
  case Stmt::Kind::Null:
    indent(OS, Indent) << "null;\n";
    return;
  case Stmt::Kind::VarAssign:
  case Stmt::Kind::SignalAssign: {
    const auto *A = cast<AssignStmtBase>(&S);
    indent(OS, Indent) << A->targetName();
    if (A->hasSlice())
      OS << '(' << A->slice().str() << ')';
    OS << (S.kind() == Stmt::Kind::VarAssign ? " := " : " <= ");
    printExpr(OS, A->value());
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Wait: {
    const auto *W = cast<WaitStmt>(&S);
    indent(OS, Indent) << "wait";
    if (W->hasExplicitOn()) {
      OS << " on ";
      for (size_t I = 0; I < W->onNames().size(); ++I) {
        if (I)
          OS << ", ";
        OS << W->onNames()[I];
      }
    }
    if (W->hasUntil()) {
      OS << " until ";
      printExpr(OS, W->until());
    }
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Compound:
    for (const StmtPtr &Sub : cast<CompoundStmt>(&S)->stmts())
      printStmt(OS, *Sub, Indent);
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    indent(OS, Indent) << "if ";
    printExpr(OS, I->cond());
    OS << " then\n";
    printStmt(OS, I->thenStmt(), Indent + 1);
    // An else branch that is exactly `null` prints as an omitted branch;
    // the parser reintroduces the NullStmt, preserving round-trips.
    if (!isa<NullStmt>(&I->elseStmt())) {
      indent(OS, Indent) << "else\n";
      printStmt(OS, I->elseStmt(), Indent + 1);
    }
    indent(OS, Indent) << "end if;\n";
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&S);
    indent(OS, Indent) << "while ";
    printExpr(OS, W->cond());
    OS << " loop\n";
    printStmt(OS, W->body(), Indent + 1);
    indent(OS, Indent) << "end loop;\n";
    return;
  }
  }
}

void vif::printDecl(std::ostream &OS, const Decl &D, unsigned Indent) {
  indent(OS, Indent) << (D.K == Decl::Kind::Variable ? "variable "
                                                     : "signal ")
                     << D.Name << " : " << D.Ty.str();
  if (D.Init) {
    OS << " := ";
    printExpr(OS, *D.Init);
  }
  OS << ";\n";
}

void vif::printConcStmt(std::ostream &OS, const ConcStmt &S,
                        unsigned Indent) {
  switch (S.kind()) {
  case ConcStmt::Kind::Process: {
    const auto *P = cast<ProcessStmt>(&S);
    indent(OS, Indent) << P->label() << " : process\n";
    for (const Decl &D : P->decls())
      printDecl(OS, D, Indent + 1);
    indent(OS, Indent) << "begin\n";
    printStmt(OS, P->body(), Indent + 1);
    indent(OS, Indent) << "end process " << P->label() << ";\n";
    return;
  }
  case ConcStmt::Kind::Block: {
    const auto *B = cast<BlockStmt>(&S);
    indent(OS, Indent) << B->label() << " : block\n";
    for (const Decl &D : B->decls())
      printDecl(OS, D, Indent + 1);
    indent(OS, Indent) << "begin\n";
    for (const ConcStmtPtr &Sub : B->stmts())
      printConcStmt(OS, *Sub, Indent + 1);
    indent(OS, Indent) << "end block " << B->label() << ";\n";
    return;
  }
  case ConcStmt::Kind::SignalAssign: {
    const auto *A = cast<ConcAssignStmt>(&S);
    indent(OS, Indent) << A->targetName();
    if (A->hasSlice())
      OS << '(' << A->slice().str() << ')';
    OS << " <= ";
    printExpr(OS, A->value());
    OS << ";\n";
    return;
  }
  }
}

void vif::printEntity(std::ostream &OS, const Entity &E) {
  OS << "entity " << E.Name << " is\n  port(\n";
  for (size_t I = 0; I < E.Ports.size(); ++I) {
    const Port &P = E.Ports[I];
    OS << "    " << P.Name << " : " << portModeSpelling(P.Mode) << ' '
       << P.Ty.str();
    OS << (I + 1 == E.Ports.size() ? "\n" : ";\n");
  }
  OS << "  );\nend " << E.Name << ";\n";
}

void vif::printArchitecture(std::ostream &OS, const Architecture &A) {
  OS << "architecture " << A.Name << " of " << A.EntityName << " is\n";
  for (const Decl &D : A.Decls)
    printDecl(OS, D, 1);
  OS << "begin\n";
  for (const ConcStmtPtr &S : A.Stmts)
    printConcStmt(OS, *S, 1);
  OS << "end " << A.Name << ";\n";
}

void vif::printDesignFile(std::ostream &OS, const DesignFile &D) {
  for (const Entity &E : D.Entities) {
    printEntity(OS, E);
    OS << '\n';
  }
  for (const Architecture &A : D.Architectures) {
    printArchitecture(OS, A);
    OS << '\n';
  }
}

std::string vif::exprToString(const Expr &E) {
  std::ostringstream OS;
  printExpr(OS, E);
  return OS.str();
}

std::string vif::stmtToString(const Stmt &S) {
  std::ostringstream OS;
  printStmt(OS, S);
  return OS.str();
}

std::string vif::designToString(const DesignFile &D) {
  std::ostringstream OS;
  printDesignFile(OS, D);
  return OS.str();
}
