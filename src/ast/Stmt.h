//===- ast/Stmt.h - VHDL1 sequential statements -----------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VHDL1 statement grammar (paper Figure 1):
///
///   ss ::= null | x := e | x(z1 downto z2) := e | x(z1 to z2) := e
///        | s <= e | s(z1 downto z2) <= e | s(z1 to z2) <= e
///        | wait on S until e | ss1; ss2 | if e then ss1 else ss2
///        | while e do ss
///
/// The binary sequencing ss1; ss2 is represented as an n-ary CompoundStmt,
/// which is equivalent up to associativity and more convenient for a parser.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_AST_STMT_H
#define VIF_AST_STMT_H

#include "ast/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace vif {

/// Base class of all VHDL1 sequential statements.
class Stmt {
public:
  enum class Kind : uint8_t {
    Null,
    VarAssign,
    SignalAssign,
    Wait,
    Compound,
    If,
    While,
  };

  virtual ~Stmt();

  Kind kind() const { return K; }
  SourceRange range() const { return Range; }

  /// Deep copy, preserving resolution and type annotations.
  virtual std::unique_ptr<Stmt> clone() const = 0;

protected:
  Stmt(Kind K, SourceRange Range) : K(K), Range(Range) {}

private:
  Kind K;
  SourceRange Range;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// null.
class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceRange Range = SourceRange())
      : Stmt(Kind::Null, Range) {}

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == Kind::Null; }
};

/// Common shape of the two assignment statements: a target name with an
/// optional static slice and a value expression.
class AssignStmtBase : public Stmt {
public:
  const std::string &targetName() const { return Target; }
  bool hasSlice() const { return Slice.has_value(); }
  const SliceSpec &slice() const {
    assert(Slice && "assignment has no slice");
    return *Slice;
  }
  const Expr &value() const { return *Value; }
  Expr &value() { return *Value; }

  ObjectRef targetRef() const { return Ref; }
  void setTargetRef(ObjectRef R) { Ref = R; }

  static bool classof(const Stmt *S) {
    return S->kind() == Kind::VarAssign || S->kind() == Kind::SignalAssign;
  }

protected:
  AssignStmtBase(Kind K, std::string Target, std::optional<SliceSpec> Slice,
                 ExprPtr Value, SourceRange Range)
      : Stmt(K, Range), Target(std::move(Target)), Slice(Slice),
        Value(std::move(Value)) {}

private:
  std::string Target;
  std::optional<SliceSpec> Slice;
  ExprPtr Value;
  ObjectRef Ref;
};

/// x := e and x(z1 downto z2) := e. The parser cannot distinguish variable
/// from signal targets by name, but it can by operator: ":=" always targets
/// a variable, "<=" always a signal.
class VarAssignStmt : public AssignStmtBase {
public:
  VarAssignStmt(std::string Target, std::optional<SliceSpec> Slice,
                ExprPtr Value, SourceRange Range)
      : AssignStmtBase(Kind::VarAssign, std::move(Target), Slice,
                       std::move(Value), Range) {}

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == Kind::VarAssign; }
};

/// s <= e and s(z1 downto z2) <= e. Assigns the *active* value (available
/// after the next delta-cycle); the present value is untouched.
class SignalAssignStmt : public AssignStmtBase {
public:
  SignalAssignStmt(std::string Target, std::optional<SliceSpec> Slice,
                   ExprPtr Value, SourceRange Range)
      : AssignStmtBase(Kind::SignalAssign, std::move(Target), Slice,
                       std::move(Value), Range) {}

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) {
    return S->kind() == Kind::SignalAssign;
  }
};

/// wait on S until e. Both components are optional in the source: the
/// defaults are S = FS(e) and e = true (paper Section 2); the elaborator
/// materializes them so analyses always see both.
class WaitStmt : public Stmt {
public:
  WaitStmt(std::vector<std::string> OnNames, bool HasOn, ExprPtr Until,
           SourceRange Range)
      : Stmt(Kind::Wait, Range), OnNames(std::move(OnNames)), HasOn(HasOn),
        Until(std::move(Until)) {}

  /// Signal names in the `on` clause as written (possibly empty).
  const std::vector<std::string> &onNames() const { return OnNames; }
  bool hasExplicitOn() const { return HasOn; }

  bool hasUntil() const { return Until != nullptr; }
  const Expr &until() const {
    assert(Until && "wait has no until condition");
    return *Until;
  }
  Expr &until() {
    assert(Until && "wait has no until condition");
    return *Until;
  }

  /// Resolved ids of the signals waited on (filled by the elaborator,
  /// including defaulted `on` sets).
  const std::vector<unsigned> &onSignals() const { return OnSignals; }
  void setOnSignals(std::vector<unsigned> Sigs) {
    OnSignals = std::move(Sigs);
  }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == Kind::Wait; }

private:
  std::vector<std::string> OnNames;
  bool HasOn;
  ExprPtr Until;
  std::vector<unsigned> OnSignals;
};

/// ss1; ss2; ...; ssn.
class CompoundStmt : public Stmt {
public:
  CompoundStmt(std::vector<StmtPtr> Stmts, SourceRange Range)
      : Stmt(Kind::Compound, Range), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &stmts() const { return Stmts; }
  std::vector<StmtPtr> &stmts() { return Stmts; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == Kind::Compound; }

private:
  std::vector<StmtPtr> Stmts;
};

/// if e then ss1 else ss2. A missing else branch parses as NullStmt, so
/// Else is never null.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceRange Range)
      : Stmt(Kind::If, Range), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {
    assert(this->Then && this->Else && "if branches must be non-null");
  }

  const Expr &cond() const { return *Cond; }
  Expr &cond() { return *Cond; }
  const Stmt &thenStmt() const { return *Then; }
  const Stmt &elseStmt() const { return *Else; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else;
};

/// while e do ss.
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceRange Range)
      : Stmt(Kind::While, Range), Cond(std::move(Cond)),
        Body(std::move(Body)) {}

  const Expr &cond() const { return *Cond; }
  Expr &cond() { return *Cond; }
  const Stmt &body() const { return *Body; }

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

} // namespace vif

#endif // VIF_AST_STMT_H
