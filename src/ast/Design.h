//===- ast/Design.h - VHDL1 design units ------------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Design-unit level of the VHDL1 grammar (paper Figure 1):
///
///   pgm  ::= ent | arch | pgm1 pgm2
///   ent  ::= entity ie is port(prt); end ie;
///   prt  ::= s : in type | s : out type | prt1; prt2
///   arch ::= architecture ia of ie is begin css; end ia;
///   css  ::= s <= e | s(range) <= e
///          | ip : process decl; begin ss; end process ip
///          | ib : block decl; begin css; end block ib | css1|css2
///   decl ::= variable x : type := e | signal s : type := e | decl1; decl2
///
/// Extensions relative to the paper, both flagged in DESIGN.md:
///  * port mode `inout` (needed to model the AES state interface the Figure 5
///    experiment reads and writes);
///  * an optional architecture declarative part for signals (full VHDL
///    allows it; the paper routes all local signals through blocks).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_AST_DESIGN_H
#define VIF_AST_DESIGN_H

#include "ast/Stmt.h"

#include <memory>
#include <string>
#include <vector>

namespace vif {

enum class PortMode : uint8_t { In, Out, InOut };

const char *portModeSpelling(PortMode Mode);

/// One port of an entity.
struct Port {
  std::string Name;
  PortMode Mode = PortMode::In;
  Type Ty;
  SourceRange Range;
};

/// entity ie is port(...); end ie;
struct Entity {
  std::string Name;
  std::vector<Port> Ports;
  SourceRange Range;
};

/// A variable or signal declaration.
struct Decl {
  enum class Kind : uint8_t { Variable, Signal };

  Kind K = Kind::Variable;
  std::string Name;
  Type Ty;
  ExprPtr Init; ///< may be null (defaults to 'U' / "U...U")
  SourceRange Range;
};

/// Base class of concurrent statements.
class ConcStmt {
public:
  enum class Kind : uint8_t { Process, Block, SignalAssign };

  virtual ~ConcStmt();

  Kind kind() const { return K; }
  SourceRange range() const { return Range; }

protected:
  ConcStmt(Kind K, SourceRange Range) : K(K), Range(Range) {}

private:
  Kind K;
  SourceRange Range;
};

using ConcStmtPtr = std::unique_ptr<ConcStmt>;

/// ip : process decl; begin ss; end process ip.
class ProcessStmt : public ConcStmt {
public:
  ProcessStmt(std::string Label, std::vector<Decl> Decls, StmtPtr Body,
              SourceRange Range)
      : ConcStmt(Kind::Process, Range), Label(std::move(Label)),
        Decls(std::move(Decls)), Body(std::move(Body)) {}

  const std::string &label() const { return Label; }
  const std::vector<Decl> &decls() const { return Decls; }
  const Stmt &body() const { return *Body; }

  static bool classof(const ConcStmt *S) {
    return S->kind() == Kind::Process;
  }

private:
  std::string Label;
  std::vector<Decl> Decls;
  StmtPtr Body;
};

/// ib : block decl; begin css; end block ib. Blocks introduce local signals
/// scoped over the nested concurrent statements; the elaborator flattens
/// them.
class BlockStmt : public ConcStmt {
public:
  BlockStmt(std::string Label, std::vector<Decl> Decls,
            std::vector<ConcStmtPtr> Stmts, SourceRange Range)
      : ConcStmt(Kind::Block, Range), Label(std::move(Label)),
        Decls(std::move(Decls)), Stmts(std::move(Stmts)) {}

  const std::string &label() const { return Label; }
  const std::vector<Decl> &decls() const { return Decls; }
  const std::vector<ConcStmtPtr> &stmts() const { return Stmts; }

  static bool classof(const ConcStmt *S) { return S->kind() == Kind::Block; }

private:
  std::string Label;
  std::vector<Decl> Decls;
  std::vector<ConcStmtPtr> Stmts;
};

/// A concurrent signal assignment: "corresponds to a process that is
/// sensitive to the free signals in the right-hand side expression and that
/// has the same assignment inside" (paper Section 2). The elaborator performs
/// exactly that rewriting.
class ConcAssignStmt : public ConcStmt {
public:
  ConcAssignStmt(std::string Target, std::optional<SliceSpec> Slice,
                 ExprPtr Value, SourceRange Range)
      : ConcStmt(Kind::SignalAssign, Range), Target(std::move(Target)),
        Slice(Slice), Value(std::move(Value)) {}

  const std::string &targetName() const { return Target; }
  bool hasSlice() const { return Slice.has_value(); }
  const SliceSpec &slice() const {
    assert(Slice && "assignment has no slice");
    return *Slice;
  }
  const Expr &value() const { return *Value; }

  static bool classof(const ConcStmt *S) {
    return S->kind() == Kind::SignalAssign;
  }

private:
  std::string Target;
  std::optional<SliceSpec> Slice;
  ExprPtr Value;
};

/// architecture ia of ie is [decls] begin css; end ia;
struct Architecture {
  std::string Name;
  std::string EntityName;
  std::vector<Decl> Decls; ///< extension: architecture-level signals
  std::vector<ConcStmtPtr> Stmts;
  SourceRange Range;
};

/// A parsed VHDL1 program: a sequence of entities and architectures.
struct DesignFile {
  std::vector<Entity> Entities;
  std::vector<Architecture> Architectures;

  const Entity *findEntity(const std::string &Name) const;
  const Architecture *findArchitecture(const std::string &Name) const;
};

} // namespace vif

#endif // VIF_AST_DESIGN_H
