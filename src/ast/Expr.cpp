//===- ast/Expr.cpp -------------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ast/Expr.h"

#include "support/Casting.h"

using namespace vif;

// Out-of-line virtual anchor.
Expr::~Expr() = default;

const char *vif::unaryOpSpelling(UnaryOpKind Op) {
  switch (Op) {
  case UnaryOpKind::Not:
    return "not";
  }
  return "?";
}

const char *vif::binaryOpSpelling(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::And:
    return "and";
  case BinaryOpKind::Or:
    return "or";
  case BinaryOpKind::Nand:
    return "nand";
  case BinaryOpKind::Nor:
    return "nor";
  case BinaryOpKind::Xor:
    return "xor";
  case BinaryOpKind::Xnor:
    return "xnor";
  case BinaryOpKind::Eq:
    return "=";
  case BinaryOpKind::Ne:
    return "/=";
  case BinaryOpKind::Lt:
    return "<";
  case BinaryOpKind::Le:
    return "<=";
  case BinaryOpKind::Gt:
    return ">";
  case BinaryOpKind::Ge:
    return ">=";
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Concat:
    return "&";
  }
  return "?";
}

namespace {

/// Copies the sema annotations (type) shared by all nodes.
template <typename NodeT> ExprPtr annotated(std::unique_ptr<NodeT> Node,
                                            const Expr &Original) {
  if (Original.hasType())
    Node->setType(Original.type());
  return Node;
}

} // namespace

ExprPtr LogicLiteralExpr::clone() const {
  return annotated(std::make_unique<LogicLiteralExpr>(Value, range()), *this);
}

ExprPtr VectorLiteralExpr::clone() const {
  return annotated(std::make_unique<VectorLiteralExpr>(Value, range()), *this);
}

ExprPtr NameExpr::clone() const {
  auto Node = std::make_unique<NameExpr>(Name, range());
  Node->setRef(Ref);
  return annotated(std::move(Node), *this);
}

ExprPtr SliceExpr::clone() const {
  auto Node = std::make_unique<SliceExpr>(Name, Slice, range());
  Node->setRef(Ref);
  return annotated(std::move(Node), *this);
}

ExprPtr UnaryExpr::clone() const {
  return annotated(
      std::make_unique<UnaryExpr>(Op, Sub->clone(), range()), *this);
}

ExprPtr BinaryExpr::clone() const {
  return annotated(
      std::make_unique<BinaryExpr>(Op, LHS->clone(), RHS->clone(), range()),
      *this);
}

void vif::forEachNameUse(const Expr &E,
                         const std::function<void(const Expr &)> &Fn) {
  switch (E.kind()) {
  case Expr::Kind::LogicLiteral:
  case Expr::Kind::VectorLiteral:
    return;
  case Expr::Kind::Name:
  case Expr::Kind::Slice:
    Fn(E);
    return;
  case Expr::Kind::Unary:
    forEachNameUse(cast<UnaryExpr>(&E)->sub(), Fn);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    forEachNameUse(B->lhs(), Fn);
    forEachNameUse(B->rhs(), Fn);
    return;
  }
  }
}
