//===- ast/Expr.h - VHDL1 expressions ---------------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VHDL1 expression grammar (paper Figure 1):
///
///   e ::= m | a | x | x(z1 downto z2) | x(z1 to z2) | s | s(z1 downto z2)
///       | s(z1 to z2) | opum e | e1 opbm e2 | e1 opa e2
///
/// Variables and signals are syntactically identical identifiers; the parser
/// produces NameExpr/SliceExpr nodes and the elaborator resolves each to a
/// variable or a signal (ObjectRef). All analyses require resolved trees.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_AST_EXPR_H
#define VIF_AST_EXPR_H

#include "ast/Type.h"
#include "stdlogic/LogicVector.h"
#include "stdlogic/StdLogic.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace vif {

/// Resolution of an identifier to the elaborated object it denotes.
/// Variable ids index ElaboratedProgram::Variables, signal ids
/// ElaboratedProgram::Signals.
struct ObjectRef {
  enum class Kind : uint8_t { Unresolved, Variable, Signal };

  Kind K = Kind::Unresolved;
  unsigned Id = 0;

  bool isResolved() const { return K != Kind::Unresolved; }
  bool isVariable() const { return K == Kind::Variable; }
  bool isSignal() const { return K == Kind::Signal; }

  static ObjectRef variable(unsigned Id) {
    return ObjectRef{Kind::Variable, Id};
  }
  static ObjectRef signal(unsigned Id) { return ObjectRef{Kind::Signal, Id}; }
};

/// A static slice designator (z1 downto z2) or (z1 to z2).
struct SliceSpec {
  int Z1 = 0;
  int Z2 = 0;
  bool Downto = true;

  unsigned width() const {
    return static_cast<unsigned>(Z1 > Z2 ? Z1 - Z2 : Z2 - Z1) + 1;
  }
  std::string str() const {
    return std::to_string(Z1) + (Downto ? " downto " : " to ") +
           std::to_string(Z2);
  }
};

enum class UnaryOpKind : uint8_t { Not };

enum class BinaryOpKind : uint8_t {
  // opbm: logical operators, element-wise on equal-width vectors.
  And,
  Or,
  Nand,
  Nor,
  Xor,
  Xnor,
  // Relational operators; result is std_logic (the fragment folds booleans
  // into std_logic, conditions test for '1').
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // opa: arithmetic on equal-width vectors (numeric_std unsigned, mod 2^n).
  Add,
  Sub,
  Mul,
  // Concatenation.
  Concat,
};

/// VHDL spelling of an operator ("and", "/=", "&", ...).
const char *unaryOpSpelling(UnaryOpKind Op);
const char *binaryOpSpelling(BinaryOpKind Op);

/// Base class of all VHDL1 expressions.
class Expr {
public:
  enum class Kind : uint8_t {
    LogicLiteral,
    VectorLiteral,
    Name,
    Slice,
    Unary,
    Binary,
  };

  virtual ~Expr();

  Kind kind() const { return K; }
  SourceRange range() const { return Range; }

  /// The static type, filled in by the elaborator.
  bool hasType() const { return Ty.has_value(); }
  const Type &type() const {
    assert(Ty && "expression has not been type-checked");
    return *Ty;
  }
  void setType(Type T) { Ty = T; }

  /// Deep copy, preserving resolution and type annotations.
  virtual std::unique_ptr<Expr> clone() const = 0;

protected:
  Expr(Kind K, SourceRange Range) : K(K), Range(Range) {}
  Expr(const Expr &) = default;

private:
  Kind K;
  SourceRange Range;
  std::optional<Type> Ty;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A logic-value literal, e.g. '1'.
class LogicLiteralExpr : public Expr {
public:
  LogicLiteralExpr(StdLogic Value, SourceRange Range)
      : Expr(Kind::LogicLiteral, Range), Value(Value) {}

  StdLogic value() const { return Value; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) {
    return E->kind() == Kind::LogicLiteral;
  }

private:
  StdLogic Value;
};

/// A vector literal, e.g. "0101".
class VectorLiteralExpr : public Expr {
public:
  VectorLiteralExpr(LogicVector Value, SourceRange Range)
      : Expr(Kind::VectorLiteral, Range), Value(std::move(Value)) {}

  const LogicVector &value() const { return Value; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) {
    return E->kind() == Kind::VectorLiteral;
  }

private:
  LogicVector Value;
};

/// A whole-object reference: x or s.
class NameExpr : public Expr {
public:
  NameExpr(std::string Name, SourceRange Range)
      : Expr(Kind::Name, Range), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  ObjectRef ref() const { return Ref; }
  void setRef(ObjectRef R) { Ref = R; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == Kind::Name; }

private:
  std::string Name;
  ObjectRef Ref;
};

/// A static slice of an object: x(z1 downto z2) or s(z1 to z2).
class SliceExpr : public Expr {
public:
  SliceExpr(std::string Name, SliceSpec Slice, SourceRange Range)
      : Expr(Kind::Slice, Range), Name(std::move(Name)), Slice(Slice) {}

  const std::string &name() const { return Name; }
  const SliceSpec &slice() const { return Slice; }
  ObjectRef ref() const { return Ref; }
  void setRef(ObjectRef R) { Ref = R; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == Kind::Slice; }

private:
  std::string Name;
  SliceSpec Slice;
  ObjectRef Ref;
};

/// opum e.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, ExprPtr Sub, SourceRange Range)
      : Expr(Kind::Unary, Range), Op(Op), Sub(std::move(Sub)) {}

  UnaryOpKind op() const { return Op; }
  const Expr &sub() const { return *Sub; }
  Expr &sub() { return *Sub; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOpKind Op;
  ExprPtr Sub;
};

/// e1 opbm e2 and e1 opa e2.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS, SourceRange Range)
      : Expr(Kind::Binary, Range), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOpKind op() const { return Op; }
  const Expr &lhs() const { return *LHS; }
  const Expr &rhs() const { return *RHS; }
  Expr &lhs() { return *LHS; }
  Expr &rhs() { return *RHS; }

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOpKind Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// Invokes \p Fn on every NameExpr/SliceExpr in \p E (pre-order).
void forEachNameUse(const Expr &E,
                    const std::function<void(const Expr &)> &Fn);

} // namespace vif

#endif // VIF_AST_EXPR_H
