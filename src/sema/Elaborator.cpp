//===- sema/Elaborator.cpp ------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "sema/Elaborator.h"

#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <set>

using namespace vif;

const char *vif::signalClassName(SignalClass C) {
  switch (C) {
  case SignalClass::Internal:
    return "internal";
  case SignalClass::PortIn:
    return "in";
  case SignalClass::PortOut:
    return "out";
  case SignalClass::PortInOut:
    return "inout";
  }
  return "?";
}

std::string ElaboratedProgram::resourceName(ObjectRef Ref) const {
  assert(Ref.isResolved() && "resource name of unresolved reference");
  if (Ref.isVariable())
    return variable(Ref.Id).UniqueName;
  return signal(Ref.Id).UniqueName;
}

std::vector<unsigned> ElaboratedProgram::inputSignals() const {
  std::vector<unsigned> Result;
  for (const ElabSignal &S : Signals)
    if (S.isInput())
      Result.push_back(S.Id);
  return Result;
}

std::vector<unsigned> ElaboratedProgram::outputSignals() const {
  std::vector<unsigned> Result;
  for (const ElabSignal &S : Signals)
    if (S.isOutput())
      Result.push_back(S.Id);
  return Result;
}

//===----------------------------------------------------------------------===//
// Free-object collection
//===----------------------------------------------------------------------===//

namespace {

void insertSorted(std::vector<unsigned> &V, unsigned Id) {
  auto It = std::lower_bound(V.begin(), V.end(), Id);
  if (It == V.end() || *It != Id)
    V.insert(It, Id);
}

void collectRef(ObjectRef Ref, std::vector<unsigned> &Vars,
                std::vector<unsigned> &Sigs) {
  assert(Ref.isResolved() && "free-object scan requires a resolved tree");
  if (Ref.isVariable())
    insertSorted(Vars, Ref.Id);
  else
    insertSorted(Sigs, Ref.Id);
}

} // namespace

void vif::collectExprObjects(const Expr &E, std::vector<unsigned> &Vars,
                             std::vector<unsigned> &Sigs) {
  forEachNameUse(E, [&](const Expr &Use) {
    if (const auto *N = dyn_cast<NameExpr>(&Use))
      collectRef(N->ref(), Vars, Sigs);
    else
      collectRef(cast<SliceExpr>(&Use)->ref(), Vars, Sigs);
  });
}

void vif::collectStmtObjects(const Stmt &S, std::vector<unsigned> &Vars,
                             std::vector<unsigned> &Sigs) {
  switch (S.kind()) {
  case Stmt::Kind::Null:
    return;
  case Stmt::Kind::VarAssign:
  case Stmt::Kind::SignalAssign: {
    const auto *A = cast<AssignStmtBase>(&S);
    collectRef(A->targetRef(), Vars, Sigs);
    collectExprObjects(A->value(), Vars, Sigs);
    return;
  }
  case Stmt::Kind::Wait: {
    const auto *W = cast<WaitStmt>(&S);
    for (unsigned Sig : W->onSignals())
      insertSorted(Sigs, Sig);
    if (W->hasUntil())
      collectExprObjects(W->until(), Vars, Sigs);
    return;
  }
  case Stmt::Kind::Compound:
    for (const StmtPtr &Sub : cast<CompoundStmt>(&S)->stmts())
      collectStmtObjects(*Sub, Vars, Sigs);
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    collectExprObjects(I->cond(), Vars, Sigs);
    collectStmtObjects(I->thenStmt(), Vars, Sigs);
    collectStmtObjects(I->elseStmt(), Vars, Sigs);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(&S);
    collectExprObjects(W->cond(), Vars, Sigs);
    collectStmtObjects(W->body(), Vars, Sigs);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Elaborator
//===----------------------------------------------------------------------===//

namespace {

/// Scope entry for a visible signal.
struct SignalBinding {
  std::string Name;
  unsigned Id;
};

class Elaborator {
public:
  Elaborator(DiagnosticEngine &Diags) : Diags(Diags) {}

  std::optional<ElaboratedProgram> run(const DesignFile &File,
                                       const ElaborateOptions &Opts);

private:
  void declarePort(const Port &P);
  unsigned declareSignal(const Decl &D, SignalClass Class,
                         const std::string &ScopePrefix);
  void elabConcStmts(const std::vector<ConcStmtPtr> &Stmts,
                     std::vector<std::vector<SignalBinding>> &Scopes,
                     const std::string &ScopePrefix);
  void elabProcess(const ProcessStmt &P,
                   std::vector<std::vector<SignalBinding>> &Scopes);
  void elabConcAssign(const ConcAssignStmt &A,
                      std::vector<std::vector<SignalBinding>> &Scopes);

  /// Looks a signal name up through the scope stack, innermost first.
  std::optional<unsigned>
  lookupSignal(const std::string &Name,
               const std::vector<std::vector<SignalBinding>> &Scopes) const;

  /// Checks that \p Init is a literal of type \p Ty (or null).
  ExprPtr checkInitializer(const ExprPtr &Init, const Type &Ty,
                           const char *What, const std::string &Name);

  DiagnosticEngine &Diags;
  ElaboratedProgram Program;
  std::set<std::string> UsedSignalNames;
  unsigned NextConcAssign = 0;
};

/// Resolves and type-checks the statements of one process. Also used for
/// the bare-statement entry point with implicit declarations enabled.
class ProcessChecker {
public:
  ProcessChecker(DiagnosticEngine &Diags, ElaboratedProgram &Program,
                 unsigned ProcessId,
                 const std::vector<std::vector<SignalBinding>> *SignalScopes,
                 bool ImplicitDecls)
      : Diags(Diags), Program(Program), ProcessId(ProcessId),
        SignalScopes(SignalScopes), ImplicitDecls(ImplicitDecls) {}

  /// Declares a process-local variable; reports redeclarations.
  void declareVariable(const std::string &Name, Type Ty, ExprPtr Init,
                       SourceLoc Loc);

  void checkStmt(Stmt &S);

  /// Implicit-declaration mode only: declares every `<=` target and every
  /// waited-on name as a scalar signal, so later reads resolve to signals.
  void predeclareSignals(const Stmt &S);

  /// Statement-program mode: declares \p D (variable or internal signal)
  /// before resolution starts.
  void declareUpFront(const Decl &D);

private:
  std::optional<Type> checkExpr(Expr &E);
  std::optional<Type> checkName(NameExpr &E);
  std::optional<Type> checkSlice(SliceExpr &E);
  std::optional<ObjectRef> resolve(const std::string &Name, SourceLoc Loc,
                                   bool WantSignal);
  void checkCondition(Expr &E, const char *What);
  void checkAssign(AssignStmtBase &S, bool IsSignal);
  void checkWait(WaitStmt &W);

  const Type *typeOf(ObjectRef Ref) const;

  DiagnosticEngine &Diags;
  ElaboratedProgram &Program;
  unsigned ProcessId;
  const std::vector<std::vector<SignalBinding>> *SignalScopes;
  bool ImplicitDecls;
  std::map<std::string, unsigned> LocalVars;
  std::vector<SignalBinding> ImplicitSignals;
};

void ProcessChecker::declareUpFront(const Decl &D) {
  assert(ImplicitDecls && "up-front declaration is for statement programs");
  ExprPtr Init;
  if (D.Init) {
    // Statement programs accept literal initializers only, like designs.
    if (isa<LogicLiteralExpr>(D.Init.get()) ||
        isa<VectorLiteralExpr>(D.Init.get()))
      Init = D.Init->clone();
    else
      Diags.error(D.Range.Begin, "initializer of '" + D.Name +
                                     "' must be a literal");
  }
  if (D.K == Decl::Kind::Variable) {
    declareVariable(D.Name, D.Ty, std::move(Init), D.Range.Begin);
    return;
  }
  for (const SignalBinding &B : ImplicitSignals)
    if (B.Name == D.Name) {
      Diags.error(D.Range.Begin, "redeclaration of signal '" + D.Name + "'");
      return;
    }
  ElabSignal Sig;
  Sig.Id = static_cast<unsigned>(Program.Signals.size());
  Sig.Name = Sig.UniqueName = D.Name;
  Sig.Ty = D.Ty;
  Sig.Init = std::move(Init);
  Program.Signals.push_back(std::move(Sig));
  ImplicitSignals.push_back({D.Name, Program.Signals.back().Id});
}

void ProcessChecker::predeclareSignals(const Stmt &S) {
  assert(ImplicitDecls && "predeclaration is for implicit mode only");
  auto DeclareSignal = [&](const std::string &Name) {
    for (const SignalBinding &B : ImplicitSignals)
      if (B.Name == Name)
        return;
    ElabSignal Sig;
    Sig.Id = static_cast<unsigned>(Program.Signals.size());
    Sig.Name = Sig.UniqueName = Name;
    Sig.Ty = Type::scalar();
    Program.Signals.push_back(std::move(Sig));
    ImplicitSignals.push_back({Name, Program.Signals.back().Id});
  };
  switch (S.kind()) {
  case Stmt::Kind::Null:
  case Stmt::Kind::VarAssign:
    return;
  case Stmt::Kind::SignalAssign:
    DeclareSignal(cast<SignalAssignStmt>(&S)->targetName());
    return;
  case Stmt::Kind::Wait:
    for (const std::string &Name : cast<WaitStmt>(&S)->onNames())
      DeclareSignal(Name);
    return;
  case Stmt::Kind::Compound:
    for (const StmtPtr &Sub : cast<CompoundStmt>(&S)->stmts())
      predeclareSignals(*Sub);
    return;
  case Stmt::Kind::If:
    predeclareSignals(cast<IfStmt>(&S)->thenStmt());
    predeclareSignals(cast<IfStmt>(&S)->elseStmt());
    return;
  case Stmt::Kind::While:
    predeclareSignals(cast<WhileStmt>(&S)->body());
    return;
  }
}

void ProcessChecker::declareVariable(const std::string &Name, Type Ty,
                                     ExprPtr Init, SourceLoc Loc) {
  if (LocalVars.count(Name)) {
    Diags.error(Loc, "redeclaration of variable '" + Name + "'");
    return;
  }
  ElabVariable V;
  V.Id = static_cast<unsigned>(Program.Variables.size());
  V.Name = Name;
  // Qualify on collision with a variable of the same name in another
  // process, so graph nodes stay unambiguous.
  bool Clash = false;
  for (const ElabVariable &Other : Program.Variables)
    if (Other.Name == Name)
      Clash = true;
  V.UniqueName =
      Clash ? Program.process(ProcessId).Name + "." + Name : Name;
  if (Clash) {
    // Retroactively qualify the earlier homonyms as well.
    for (ElabVariable &Other : Program.Variables)
      if (Other.Name == Name && Other.UniqueName == Name)
        Other.UniqueName =
            Program.process(Other.ProcessId).Name + "." + Name;
  }
  V.Ty = Ty;
  V.Init = std::move(Init);
  V.ProcessId = ProcessId;
  LocalVars[Name] = V.Id;
  Program.Variables.push_back(std::move(V));
  Program.Processes[ProcessId].Variables.push_back(
      Program.Variables.back().Id);
}

const Type *ProcessChecker::typeOf(ObjectRef Ref) const {
  if (Ref.isVariable())
    return &Program.variable(Ref.Id).Ty;
  if (Ref.isSignal())
    return &Program.signal(Ref.Id).Ty;
  return nullptr;
}

std::optional<ObjectRef> ProcessChecker::resolve(const std::string &Name,
                                                 SourceLoc Loc,
                                                 bool WantSignal) {
  auto It = LocalVars.find(Name);
  if (It != LocalVars.end())
    return ObjectRef::variable(It->second);
  for (const SignalBinding &B : ImplicitSignals)
    if (B.Name == Name)
      return ObjectRef::signal(B.Id);
  if (SignalScopes) {
    for (auto ScopeIt = SignalScopes->rbegin();
         ScopeIt != SignalScopes->rend(); ++ScopeIt)
      for (const SignalBinding &B : *ScopeIt)
        if (B.Name == Name)
          return ObjectRef::signal(B.Id);
  }
  if (ImplicitDecls) {
    // Bare-statement mode: fabricate a scalar object on first use.
    // Signal-ness was fixed up front by predeclareSignals; everything else
    // is a variable.
    if (WantSignal) {
      ElabSignal S;
      S.Id = static_cast<unsigned>(Program.Signals.size());
      S.Name = S.UniqueName = Name;
      S.Ty = Type::scalar();
      Program.Signals.push_back(std::move(S));
      ImplicitSignals.push_back({Name, Program.Signals.back().Id});
      return ObjectRef::signal(Program.Signals.back().Id);
    }
    declareVariable(Name, Type::scalar(), nullptr, Loc);
    return ObjectRef::variable(LocalVars.at(Name));
  }
  Diags.error(Loc, "use of undeclared name '" + Name + "'");
  return std::nullopt;
}

std::optional<Type> ProcessChecker::checkName(NameExpr &E) {
  if (!E.ref().isResolved()) {
    std::optional<ObjectRef> Ref =
        resolve(E.name(), E.range().Begin, /*WantSignal=*/false);
    if (!Ref)
      return std::nullopt;
    E.setRef(*Ref);
  }
  Type Ty = *typeOf(E.ref());
  if (E.ref().isSignal() &&
      Program.signal(E.ref().Id).Class == SignalClass::PortOut)
    Diags.error(E.range().Begin,
                "cannot read 'out' port '" + E.name() + "'");
  E.setType(Ty);
  return Ty;
}

std::optional<Type> ProcessChecker::checkSlice(SliceExpr &E) {
  if (!E.ref().isResolved()) {
    std::optional<ObjectRef> Ref =
        resolve(E.name(), E.range().Begin, /*WantSignal=*/false);
    if (!Ref)
      return std::nullopt;
    E.setRef(*Ref);
  }
  const Type &DeclTy = *typeOf(E.ref());
  if (E.ref().isSignal() &&
      Program.signal(E.ref().Id).Class == SignalClass::PortOut)
    Diags.error(E.range().Begin,
                "cannot read 'out' port '" + E.name() + "'");
  const SliceSpec &Sl = E.slice();
  if (!DeclTy.sliceValid(Sl.Z1, Sl.Z2, Sl.Downto)) {
    Diags.error(E.range().Begin, "slice (" + Sl.str() +
                                     ") is invalid for '" + E.name() +
                                     "' of type " + DeclTy.str());
    return std::nullopt;
  }
  Type Ty = Type::vector(Sl.Z1, Sl.Z2, Sl.Downto);
  E.setType(Ty);
  return Ty;
}

std::optional<Type> ProcessChecker::checkExpr(Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::LogicLiteral:
    E.setType(Type::scalar());
    return Type::scalar();
  case Expr::Kind::VectorLiteral: {
    const LogicVector &V = cast<VectorLiteralExpr>(&E)->value();
    if (V.empty()) {
      Diags.error(E.range().Begin, "empty vector literal");
      return std::nullopt;
    }
    Type Ty = Type::vector(static_cast<int>(V.size()) - 1, 0, true);
    E.setType(Ty);
    return Ty;
  }
  case Expr::Kind::Name:
    return checkName(*cast<NameExpr>(&E));
  case Expr::Kind::Slice:
    return checkSlice(*cast<SliceExpr>(&E));
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(&E);
    std::optional<Type> Sub = checkExpr(U->sub());
    if (!Sub)
      return std::nullopt;
    E.setType(*Sub);
    return Sub;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(&E);
    std::optional<Type> L = checkExpr(B->lhs());
    std::optional<Type> R = checkExpr(B->rhs());
    if (!L || !R)
      return std::nullopt;
    switch (B->op()) {
    case BinaryOpKind::And:
    case BinaryOpKind::Or:
    case BinaryOpKind::Nand:
    case BinaryOpKind::Nor:
    case BinaryOpKind::Xor:
    case BinaryOpKind::Xnor:
      if (L->isVector() != R->isVector() || L->width() != R->width()) {
        Diags.error(E.range().Begin,
                    std::string("operands of '") +
                        binaryOpSpelling(B->op()) +
                        "' must have equal widths (" + L->str() + " vs " +
                        R->str() + ")");
        return std::nullopt;
      }
      E.setType(*L);
      return L;
    case BinaryOpKind::Eq:
    case BinaryOpKind::Ne:
    case BinaryOpKind::Lt:
    case BinaryOpKind::Le:
    case BinaryOpKind::Gt:
    case BinaryOpKind::Ge:
      if (L->isVector() != R->isVector() || L->width() != R->width()) {
        Diags.error(E.range().Begin,
                    std::string("operands of '") +
                        binaryOpSpelling(B->op()) +
                        "' must have equal widths (" + L->str() + " vs " +
                        R->str() + ")");
        return std::nullopt;
      }
      E.setType(Type::scalar());
      return Type::scalar();
    case BinaryOpKind::Add:
    case BinaryOpKind::Sub:
    case BinaryOpKind::Mul:
      if (!L->isVector() || !R->isVector() || L->width() != R->width()) {
        Diags.error(E.range().Begin,
                    std::string("operands of '") +
                        binaryOpSpelling(B->op()) +
                        "' must be equal-width vectors");
        return std::nullopt;
      }
      E.setType(*L);
      return L;
    case BinaryOpKind::Concat: {
      unsigned Width = L->width() + R->width();
      Type Ty = Type::vector(static_cast<int>(Width) - 1, 0, true);
      E.setType(Ty);
      return Ty;
    }
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

void ProcessChecker::checkCondition(Expr &E, const char *What) {
  std::optional<Type> Ty = checkExpr(E);
  if (Ty && !Ty->isScalar())
    Diags.error(E.range().Begin,
                std::string(What) + " condition must be std_logic, got " +
                    Ty->str());
}

void ProcessChecker::checkAssign(AssignStmtBase &S, bool IsSignal) {
  std::optional<ObjectRef> Ref = S.targetRef().isResolved()
                                     ? std::optional<ObjectRef>(S.targetRef())
                                     : resolve(S.targetName(),
                                               S.range().Begin, IsSignal);
  std::optional<Type> ValueTy = checkExpr(S.value());
  if (!Ref)
    return;
  S.setTargetRef(*Ref);
  if (IsSignal && !Ref->isSignal()) {
    Diags.error(S.range().Begin,
                "'" + S.targetName() + "' is a variable; use ':=' to assign");
    return;
  }
  if (!IsSignal && !Ref->isVariable()) {
    Diags.error(S.range().Begin,
                "'" + S.targetName() + "' is a signal; use '<=' to assign");
    return;
  }
  if (Ref->isSignal()) {
    SignalClass Class = Program.signal(Ref->Id).Class;
    if (Class == SignalClass::PortIn)
      Diags.error(S.range().Begin,
                  "cannot assign to 'in' port '" + S.targetName() + "'");
  }
  const Type &DeclTy = *typeOf(*Ref);
  Type TargetTy = DeclTy;
  if (S.hasSlice()) {
    const SliceSpec &Sl = S.slice();
    if (!DeclTy.sliceValid(Sl.Z1, Sl.Z2, Sl.Downto)) {
      Diags.error(S.range().Begin, "slice (" + Sl.str() +
                                       ") is invalid for '" +
                                       S.targetName() + "' of type " +
                                       DeclTy.str());
      return;
    }
    TargetTy = Type::vector(Sl.Z1, Sl.Z2, Sl.Downto);
  }
  if (ValueTy && !TargetTy.assignableFrom(*ValueTy))
    Diags.error(S.range().Begin, "cannot assign " + ValueTy->str() + " to " +
                                     (S.hasSlice() ? "slice of " : "") +
                                     "'" + S.targetName() + "' of type " +
                                     DeclTy.str());
}

void ProcessChecker::checkWait(WaitStmt &W) {
  if (W.hasUntil())
    checkCondition(W.until(), "wait until");
  std::vector<unsigned> OnSigs;
  if (W.hasExplicitOn()) {
    for (const std::string &Name : W.onNames()) {
      std::optional<ObjectRef> Ref =
          resolve(Name, W.range().Begin, /*WantSignal=*/true);
      if (!Ref)
        continue;
      if (!Ref->isSignal()) {
        Diags.error(W.range().Begin,
                    "wait 'on' requires signals; '" + Name +
                        "' is a variable");
        continue;
      }
      insertSorted(OnSigs, Ref->Id);
    }
  } else if (W.hasUntil()) {
    // Default: S = FS(e) (paper Section 2).
    std::vector<unsigned> Vars;
    collectExprObjects(W.until(), Vars, OnSigs);
  }
  W.setOnSignals(std::move(OnSigs));
}

void ProcessChecker::checkStmt(Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Null:
    return;
  case Stmt::Kind::VarAssign:
    checkAssign(*cast<VarAssignStmt>(&S), /*IsSignal=*/false);
    return;
  case Stmt::Kind::SignalAssign:
    checkAssign(*cast<SignalAssignStmt>(&S), /*IsSignal=*/true);
    return;
  case Stmt::Kind::Wait:
    checkWait(*cast<WaitStmt>(&S));
    return;
  case Stmt::Kind::Compound:
    for (StmtPtr &Sub : cast<CompoundStmt>(&S)->stmts())
      checkStmt(*Sub);
    return;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(&S);
    checkCondition(I->cond(), "if");
    checkStmt(const_cast<Stmt &>(I->thenStmt()));
    checkStmt(const_cast<Stmt &>(I->elseStmt()));
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(&S);
    checkCondition(W->cond(), "while");
    checkStmt(const_cast<Stmt &>(W->body()));
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Design-level elaboration
//===----------------------------------------------------------------------===//

ExprPtr Elaborator::checkInitializer(const ExprPtr &Init, const Type &Ty,
                                     const char *What,
                                     const std::string &Name) {
  if (!Init)
    return nullptr;
  if (const auto *L = dyn_cast<LogicLiteralExpr>(Init.get())) {
    if (!Ty.isScalar()) {
      Diags.error(Init->range().Begin,
                  std::string("initializer of ") + What + " '" + Name +
                      "' must be a vector literal");
      return nullptr;
    }
    ExprPtr C = L->clone();
    C->setType(Type::scalar());
    return C;
  }
  if (const auto *V = dyn_cast<VectorLiteralExpr>(Init.get())) {
    if (!Ty.isVector() || Ty.width() != V->value().size()) {
      Diags.error(Init->range().Begin,
                  std::string("initializer of ") + What + " '" + Name +
                      "' must be a vector literal of width " +
                      std::to_string(Ty.width()));
      return nullptr;
    }
    ExprPtr C = V->clone();
    C->setType(Type::vector(static_cast<int>(V->value().size()) - 1, 0,
                            true));
    return C;
  }
  Diags.error(Init->range().Begin,
              std::string("initializer of ") + What + " '" + Name +
                  "' must be a literal");
  return nullptr;
}

void Elaborator::declarePort(const Port &P) {
  if (!UsedSignalNames.insert(P.Name).second) {
    Diags.error(P.Range.Begin, "duplicate port name '" + P.Name + "'");
    return;
  }
  ElabSignal S;
  S.Id = static_cast<unsigned>(Program.Signals.size());
  S.Name = S.UniqueName = P.Name;
  S.Ty = P.Ty;
  switch (P.Mode) {
  case PortMode::In:
    S.Class = SignalClass::PortIn;
    break;
  case PortMode::Out:
    S.Class = SignalClass::PortOut;
    break;
  case PortMode::InOut:
    S.Class = SignalClass::PortInOut;
    break;
  }
  Program.Signals.push_back(std::move(S));
}

unsigned Elaborator::declareSignal(const Decl &D, SignalClass Class,
                                   const std::string &ScopePrefix) {
  ElabSignal S;
  S.Id = static_cast<unsigned>(Program.Signals.size());
  S.Name = D.Name;
  std::string Unique = D.Name;
  if (!UsedSignalNames.insert(Unique).second) {
    Unique = ScopePrefix + D.Name;
    while (!UsedSignalNames.insert(Unique).second)
      Unique += "'";
  }
  S.UniqueName = Unique;
  S.Ty = D.Ty;
  S.Class = Class;
  S.Init = checkInitializer(D.Init, D.Ty, "signal", D.Name);
  Program.Signals.push_back(std::move(S));
  return Program.Signals.back().Id;
}

void Elaborator::elabProcess(
    const ProcessStmt &P,
    std::vector<std::vector<SignalBinding>> &Scopes) {
  ElabProcess Proc;
  Proc.Id = static_cast<unsigned>(Program.Processes.size());
  Proc.Name = P.label();
  Proc.Looped = true;
  Program.Processes.push_back(std::move(Proc));
  unsigned Id = Program.Processes.back().Id;

  ProcessChecker Checker(Diags, Program, Id, &Scopes,
                         /*ImplicitDecls=*/false);
  for (const Decl &D : P.decls()) {
    if (D.K == Decl::Kind::Signal) {
      // The VHDL1 grammar routes process-level locals through `variable`;
      // signal declarations belong in blocks. Full VHDL agrees.
      Diags.error(D.Range.Begin,
                  "signal declarations are not allowed inside processes");
      continue;
    }
    ExprPtr Init = checkInitializer(D.Init, D.Ty, "variable", D.Name);
    Checker.declareVariable(D.Name, D.Ty, std::move(Init), D.Range.Begin);
  }

  // The paper rewrites `ip: process begin ss end` into `null; while '1' do
  // ss`; materialize exactly that shape so the CFG has an isolated entry.
  StmtPtr Body = P.body().clone();
  Checker.checkStmt(*Body);
  std::vector<StmtPtr> Wrapped;
  Wrapped.push_back(std::make_unique<NullStmt>(P.range()));
  ExprPtr True =
      std::make_unique<LogicLiteralExpr>(StdLogic::One, P.range());
  True->setType(Type::scalar());
  Wrapped.push_back(std::make_unique<WhileStmt>(std::move(True),
                                                std::move(Body), P.range()));
  Program.Processes[Id].Body =
      std::make_unique<CompoundStmt>(std::move(Wrapped), P.range());
}

void Elaborator::elabConcAssign(
    const ConcAssignStmt &A,
    std::vector<std::vector<SignalBinding>> &Scopes) {
  // Rewrite `s <= e` into `ca_N: process begin s <= e; wait on FS(e); end`.
  ElabProcess Proc;
  Proc.Id = static_cast<unsigned>(Program.Processes.size());
  Proc.Name = "ca_" + std::to_string(NextConcAssign++) + "_" +
              A.targetName();
  Proc.Looped = true;
  Program.Processes.push_back(std::move(Proc));
  unsigned Id = Program.Processes.back().Id;

  ProcessChecker Checker(Diags, Program, Id, &Scopes,
                         /*ImplicitDecls=*/false);

  auto Assign = std::make_unique<SignalAssignStmt>(
      A.targetName(),
      A.hasSlice() ? std::optional<SliceSpec>(A.slice()) : std::nullopt,
      A.value().clone(), A.range());
  Checker.checkStmt(*Assign);

  // Sensitivity: the free signals of the right-hand side.
  std::vector<unsigned> Vars, Sigs;
  if (!Diags.hasErrors())
    collectExprObjects(Assign->value(), Vars, Sigs);
  std::vector<std::string> OnNames;
  for (unsigned Sig : Sigs)
    OnNames.push_back(Program.signal(Sig).Name);
  auto Wait = std::make_unique<WaitStmt>(std::move(OnNames),
                                         /*HasOn=*/true, nullptr, A.range());
  Wait->setOnSignals(std::move(Sigs));

  std::vector<StmtPtr> Body;
  Body.push_back(std::move(Assign));
  Body.push_back(std::move(Wait));
  StmtPtr Compound =
      std::make_unique<CompoundStmt>(std::move(Body), A.range());

  std::vector<StmtPtr> Wrapped;
  Wrapped.push_back(std::make_unique<NullStmt>(A.range()));
  ExprPtr True =
      std::make_unique<LogicLiteralExpr>(StdLogic::One, A.range());
  True->setType(Type::scalar());
  Wrapped.push_back(std::make_unique<WhileStmt>(
      std::move(True), std::move(Compound), A.range()));
  Program.Processes[Id].Body =
      std::make_unique<CompoundStmt>(std::move(Wrapped), A.range());
}

void Elaborator::elabConcStmts(
    const std::vector<ConcStmtPtr> &Stmts,
    std::vector<std::vector<SignalBinding>> &Scopes,
    const std::string &ScopePrefix) {
  for (const ConcStmtPtr &S : Stmts) {
    switch (S->kind()) {
    case ConcStmt::Kind::Process:
      elabProcess(*cast<ProcessStmt>(S.get()), Scopes);
      break;
    case ConcStmt::Kind::SignalAssign:
      elabConcAssign(*cast<ConcAssignStmt>(S.get()), Scopes);
      break;
    case ConcStmt::Kind::Block: {
      const auto *B = cast<BlockStmt>(S.get());
      std::vector<SignalBinding> Local;
      for (const Decl &D : B->decls()) {
        if (D.K == Decl::Kind::Variable) {
          Diags.error(D.Range.Begin,
                      "variable declarations are not allowed in blocks");
          continue;
        }
        unsigned Id = declareSignal(D, SignalClass::Internal,
                                    B->label() + ".");
        Local.push_back({D.Name, Id});
      }
      Scopes.push_back(std::move(Local));
      elabConcStmts(B->stmts(), Scopes, ScopePrefix + B->label() + ".");
      Scopes.pop_back();
      break;
    }
    }
  }
}

std::optional<ElaboratedProgram> Elaborator::run(const DesignFile &File,
                                                 const ElaborateOptions &Opts) {
  const Architecture *Arch = nullptr;
  if (!Opts.ArchitectureName.empty()) {
    Arch = File.findArchitecture(Opts.ArchitectureName);
    if (!Arch) {
      Diags.error(SourceLoc(), "no architecture named '" +
                                   Opts.ArchitectureName + "'");
      return std::nullopt;
    }
  } else if (!File.Architectures.empty()) {
    Arch = &File.Architectures.front();
  } else {
    Diags.error(SourceLoc(), "design file contains no architecture");
    return std::nullopt;
  }

  const Entity *Ent = File.findEntity(Arch->EntityName);
  if (!Ent) {
    Diags.error(Arch->Range.Begin, "architecture '" + Arch->Name +
                                       "' refers to unknown entity '" +
                                       Arch->EntityName + "'");
    return std::nullopt;
  }

  for (const Port &P : Ent->Ports)
    declarePort(P);

  std::vector<std::vector<SignalBinding>> Scopes;
  std::vector<SignalBinding> TopScope;
  for (const ElabSignal &S : Program.Signals)
    TopScope.push_back({S.Name, S.Id});
  for (const Decl &D : Arch->Decls) {
    if (D.K == Decl::Kind::Variable) {
      Diags.error(D.Range.Begin,
                  "variable declarations are not allowed in architectures");
      continue;
    }
    unsigned Id = declareSignal(D, SignalClass::Internal, Arch->Name + ".");
    TopScope.push_back({D.Name, Id});
  }
  Scopes.push_back(std::move(TopScope));

  elabConcStmts(Arch->Stmts, Scopes, "");

  if (Diags.hasErrors())
    return std::nullopt;
  return std::move(Program);
}

} // namespace

std::optional<ElaboratedProgram>
vif::elaborateDesign(const DesignFile &File, DiagnosticEngine &Diags,
                     const ElaborateOptions &Opts) {
  Elaborator E(Diags);
  return E.run(File, Opts);
}

std::optional<ElaboratedProgram>
vif::elaborateStatements(const Stmt &Body, DiagnosticEngine &Diags,
                         const std::vector<Decl> *Decls) {
  ElaboratedProgram Program;
  ElabProcess Proc;
  Proc.Id = 0;
  Proc.Name = "main";
  Proc.Looped = false;
  Program.Processes.push_back(std::move(Proc));

  ProcessChecker Checker(Diags, Program, 0, nullptr, /*ImplicitDecls=*/true);
  if (Decls)
    for (const Decl &D : *Decls)
      Checker.declareUpFront(D);
  StmtPtr Cloned = Body.clone();
  // Declare every `<=`-target and waited-on name as a signal up front so
  // that later reads resolve to the signal rather than implicitly
  // declaring a variable.
  Checker.predeclareSignals(*Cloned);
  Checker.checkStmt(*Cloned);
  Program.Processes[0].Body = std::move(Cloned);

  if (Diags.hasErrors())
    return std::nullopt;
  return Program;
}
