//===- sema/Elaborator.h - VHDL1 elaboration --------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Elaboration turns a parsed DesignFile into the flat process model the
/// paper's semantics and analyses operate on (Section 3.3, "Architectures"):
///
///  * the architecture is bound to its entity; ports become signals tagged
///    with their mode;
///  * blocks are flattened, their local signals added to the signal table
///    with lexical scoping;
///  * concurrent signal assignments are rewritten into equivalent processes
///    ("a process that is sensitive to the free signals in the right-hand
///    side expression and that has the same assignment inside");
///  * process bodies are wrapped as `null; while '1' loop ss end loop`,
///    matching the paper's rewriting of process declarations;
///  * every name is resolved to a variable or signal and every expression
///    type-checked; `wait` statements get their defaulted `on` sets
///    materialized (S = FS(e), e = true).
///
/// A second entry point elaborates a bare statement list as a single
/// anonymous process with implicitly declared scalar variables; this is how
/// the paper's running examples (a) `c:=b; b:=a` and (b) `b:=a; c:=b` are
/// analyzed.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SEMA_ELABORATOR_H
#define VIF_SEMA_ELABORATOR_H

#include "ast/Design.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <vector>

namespace vif {

/// How a signal relates to the environment. Port signals are the program's
/// interface: the improved Information Flow analysis (paper Table 9) attaches
/// incoming nodes (s◦) to In/InOut ports and outgoing nodes (s•) to Out/InOut
/// ports via the conceptual π process.
enum class SignalClass : uint8_t { Internal, PortIn, PortOut, PortInOut };

const char *signalClassName(SignalClass C);

/// A signal after elaboration.
struct ElabSignal {
  unsigned Id = 0;
  std::string Name;       ///< source name
  std::string UniqueName; ///< disambiguated across scopes
  Type Ty;
  SignalClass Class = SignalClass::Internal;
  ExprPtr Init; ///< literal initializer or null ('U'-filled default)

  bool isInput() const {
    return Class == SignalClass::PortIn || Class == SignalClass::PortInOut;
  }
  bool isOutput() const {
    return Class == SignalClass::PortOut || Class == SignalClass::PortInOut;
  }
};

/// A process-local variable after elaboration.
struct ElabVariable {
  unsigned Id = 0;
  std::string Name;
  std::string UniqueName; ///< qualified with the process name on collision
  Type Ty;
  ExprPtr Init; ///< literal initializer or null
  unsigned ProcessId = 0;
};

/// A process after elaboration. When Looped, Body already has the paper's
/// `null; while '1' do ss` shape.
struct ElabProcess {
  unsigned Id = 0;
  std::string Name;
  StmtPtr Body;
  std::vector<unsigned> Variables;
  bool Looped = true;
};

/// The flat program model shared by the simulator and all analyses.
struct ElaboratedProgram {
  std::vector<ElabSignal> Signals;
  std::vector<ElabVariable> Variables;
  std::vector<ElabProcess> Processes;

  const ElabSignal &signal(unsigned Id) const {
    assert(Id < Signals.size() && "signal id out of range");
    return Signals[Id];
  }
  const ElabVariable &variable(unsigned Id) const {
    assert(Id < Variables.size() && "variable id out of range");
    return Variables[Id];
  }
  const ElabProcess &process(unsigned Id) const {
    assert(Id < Processes.size() && "process id out of range");
    return Processes[Id];
  }

  /// The node name for a resolved object in analysis results: the unique
  /// name of the variable or signal.
  std::string resourceName(ObjectRef Ref) const;

  /// Ids of all In/InOut resp. Out/InOut port signals.
  std::vector<unsigned> inputSignals() const;
  std::vector<unsigned> outputSignals() const;
};

/// Elaboration options.
struct ElaborateOptions {
  /// Architecture to elaborate; empty selects the only/first one.
  std::string ArchitectureName;
};

/// Elaborates \p File; returns nullopt and reports diagnostics on error.
std::optional<ElaboratedProgram>
elaborateDesign(const DesignFile &File, DiagnosticEngine &Diags,
                const ElaborateOptions &Opts = ElaborateOptions());

/// Elaborates a bare statement list as one anonymous, non-looped process.
/// Objects may be declared up front via \p Decls (variables and signals of
/// any type); any remaining free name is implicitly declared — as a scalar
/// internal signal when it is assigned with `<=` or waited on, as a scalar
/// variable otherwise. This is the harness for the paper's statement-level
/// examples.
std::optional<ElaboratedProgram>
elaborateStatements(const Stmt &Body, DiagnosticEngine &Diags,
                    const std::vector<Decl> *Decls = nullptr);

/// Collects the free variables FV(e) / free signals FS(e) of a resolved
/// expression into sorted id vectors (paper Section 2 notation).
void collectExprObjects(const Expr &E, std::vector<unsigned> &Vars,
                        std::vector<unsigned> &Sigs);

/// FV(ss) and FS(ss) over a resolved statement, including targets, wait-on
/// sets and until conditions.
void collectStmtObjects(const Stmt &S, std::vector<unsigned> &Vars,
                        std::vector<unsigned> &Sigs);

} // namespace vif

#endif // VIF_SEMA_ELABORATOR_H
