//===- parse/Lexer.h - VHDL1 lexer ------------------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for VHDL1: identifiers/keywords (case insensitive),
/// decimal integers, character and string literals, `--` line comments and
/// the operator/punctuation set of the fragment.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_PARSE_LEXER_H
#define VIF_PARSE_LEXER_H

#include "parse/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace vif {

class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the entire input. The result always ends with an Eof token; on
  /// malformed input, errors are reported to the diagnostic engine and the
  /// offending characters are skipped.
  std::vector<Token> lexAll();

private:
  Token lexOne();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc loc() const { return SourceLoc(Line, Col); }
  void skipTrivia();

  Token make(TokenKind K, SourceLoc Loc, std::string Text = "") const;

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace vif

#endif // VIF_PARSE_LEXER_H
