//===- parse/Parser.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include "parse/Lexer.h"

#include <cassert>

using namespace vif;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Index + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // Eof
  return Tokens[I];
}

Token Parser::consume() {
  Token T = cur();
  if (!at(TokenKind::Eof))
    ++Index;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!at(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(cur().Loc, std::string("expected ") + tokenKindName(K) +
                             " in " + Context + ", found " +
                             tokenKindName(cur().K));
  return false;
}

bool Parser::enterNesting() {
  if (NestingDepth >= MaxNestingDepth) {
    Diags.error(cur().Loc, "nesting too deep");
    skipToSemi();
    return false;
  }
  ++NestingDepth;
  return true;
}

void Parser::skipToSemi() {
  while (!at(TokenKind::Eof) && !at(TokenKind::Semi))
    consume();
  accept(TokenKind::Semi);
}

//===----------------------------------------------------------------------===//
// Design units
//===----------------------------------------------------------------------===//

DesignFile Parser::parseDesignFile() {
  DesignFile File;
  while (!at(TokenKind::Eof)) {
    if (at(TokenKind::KwEntity)) {
      File.Entities.push_back(parseEntity());
      continue;
    }
    if (at(TokenKind::KwArchitecture)) {
      File.Architectures.push_back(parseArchitecture());
      continue;
    }
    Diags.error(cur().Loc,
                std::string("expected 'entity' or 'architecture', found ") +
                    tokenKindName(cur().K));
    consume();
  }
  return File;
}

Entity Parser::parseEntity() {
  Entity E;
  SourceLoc Start = cur().Loc;
  expect(TokenKind::KwEntity, "entity declaration");
  E.Name = cur().Text;
  expect(TokenKind::Identifier, "entity declaration");
  expect(TokenKind::KwIs, "entity declaration");
  expect(TokenKind::KwPort, "entity declaration");
  expect(TokenKind::LParen, "port clause");
  E.Ports = parsePortList();
  expect(TokenKind::RParen, "port clause");
  expect(TokenKind::Semi, "port clause");
  expect(TokenKind::KwEnd, "entity declaration");
  if (at(TokenKind::KwEntity))
    consume(); // optional "end entity name;"
  if (at(TokenKind::Identifier)) {
    if (cur().Text != E.Name)
      Diags.error(cur().Loc, "entity name '" + cur().Text +
                                 "' at end does not match '" + E.Name + "'");
    consume();
  }
  expect(TokenKind::Semi, "entity declaration");
  E.Range = SourceRange(Start, cur().Loc);
  return E;
}

std::vector<Port> Parser::parsePortList() {
  std::vector<Port> Ports;
  for (;;) {
    Port P;
    P.Range = SourceRange(cur().Loc);
    // A port item may declare several names at once: a, b : in std_logic.
    std::vector<std::string> Names;
    Names.push_back(cur().Text);
    if (!expect(TokenKind::Identifier, "port declaration"))
      return Ports;
    while (accept(TokenKind::Comma)) {
      Names.push_back(cur().Text);
      if (!expect(TokenKind::Identifier, "port declaration"))
        return Ports;
    }
    expect(TokenKind::Colon, "port declaration");
    if (accept(TokenKind::KwIn))
      P.Mode = PortMode::In;
    else if (accept(TokenKind::KwOut))
      P.Mode = PortMode::Out;
    else if (accept(TokenKind::KwInout))
      P.Mode = PortMode::InOut;
    else
      Diags.error(cur().Loc, "expected port mode 'in', 'out' or 'inout'");
    P.Ty = parseType();
    for (const std::string &Name : Names) {
      Port Item = P;
      Item.Name = Name;
      Ports.push_back(std::move(Item));
    }
    if (!accept(TokenKind::Semi))
      return Ports;
    // Allow a trailing semicolon before ')'.
    if (at(TokenKind::RParen))
      return Ports;
  }
}

Type Parser::parseType() {
  if (accept(TokenKind::KwStdLogic))
    return Type::scalar();
  if (accept(TokenKind::KwStdLogicVector)) {
    expect(TokenKind::LParen, "vector type");
    bool Neg1 = accept(TokenKind::Minus);
    int Z1 = static_cast<int>(cur().IntValue) * (Neg1 ? -1 : 1);
    expect(TokenKind::IntLiteral, "vector range");
    bool Downto = true;
    if (accept(TokenKind::KwDownto))
      Downto = true;
    else if (accept(TokenKind::KwTo))
      Downto = false;
    else
      Diags.error(cur().Loc, "expected 'downto' or 'to' in vector range");
    bool Neg2 = accept(TokenKind::Minus);
    int Z2 = static_cast<int>(cur().IntValue) * (Neg2 ? -1 : 1);
    expect(TokenKind::IntLiteral, "vector range");
    expect(TokenKind::RParen, "vector type");
    if (Downto ? Z1 < Z2 : Z1 > Z2) {
      Diags.error(cur().Loc, "vector range runs against its direction");
      return Type::vector(Z1, Z1, Downto);
    }
    return Type::vector(Z1, Z2, Downto);
  }
  Diags.error(cur().Loc,
              std::string("expected 'std_logic' or 'std_logic_vector', "
                          "found ") +
                  tokenKindName(cur().K));
  return Type::scalar();
}

Architecture Parser::parseArchitecture() {
  Architecture A;
  SourceLoc Start = cur().Loc;
  expect(TokenKind::KwArchitecture, "architecture body");
  A.Name = cur().Text;
  expect(TokenKind::Identifier, "architecture body");
  expect(TokenKind::KwOf, "architecture body");
  A.EntityName = cur().Text;
  expect(TokenKind::Identifier, "architecture body");
  expect(TokenKind::KwIs, "architecture body");
  A.Decls = parseDeclList();
  expect(TokenKind::KwBegin, "architecture body");
  while (!at(TokenKind::KwEnd) && !at(TokenKind::Eof))
    if (ConcStmtPtr S = parseConcStmt())
      A.Stmts.push_back(std::move(S));
  expect(TokenKind::KwEnd, "architecture body");
  if (at(TokenKind::KwArchitecture))
    consume(); // optional "end architecture name;"
  if (at(TokenKind::Identifier)) {
    if (cur().Text != A.Name)
      Diags.error(cur().Loc, "architecture name '" + cur().Text +
                                 "' at end does not match '" + A.Name + "'");
    consume();
  }
  expect(TokenKind::Semi, "architecture body");
  A.Range = SourceRange(Start, cur().Loc);
  return A;
}

std::vector<Decl> Parser::parseDeclList() {
  std::vector<Decl> Decls;
  while (at(TokenKind::KwVariable) || at(TokenKind::KwSignal)) {
    Decl D;
    D.Range = SourceRange(cur().Loc);
    D.K = at(TokenKind::KwVariable) ? Decl::Kind::Variable
                                    : Decl::Kind::Signal;
    consume();
    std::vector<std::string> Names;
    Names.push_back(cur().Text);
    if (!expect(TokenKind::Identifier, "declaration")) {
      skipToSemi();
      continue;
    }
    while (accept(TokenKind::Comma)) {
      Names.push_back(cur().Text);
      if (!expect(TokenKind::Identifier, "declaration"))
        break;
    }
    expect(TokenKind::Colon, "declaration");
    D.Ty = parseType();
    if (accept(TokenKind::ColonEq))
      D.Init = parseExpr();
    expect(TokenKind::Semi, "declaration");
    for (size_t I = 0; I < Names.size(); ++I) {
      Decl Item;
      Item.K = D.K;
      Item.Name = Names[I];
      Item.Ty = D.Ty;
      Item.Range = D.Range;
      // The initializer expression is shared syntax; clone per name.
      if (D.Init)
        Item.Init = D.Init->clone();
      Decls.push_back(std::move(Item));
    }
  }
  return Decls;
}

ConcStmtPtr Parser::parseConcStmt() {
  SourceLoc Start = cur().Loc;
  // label : process ... | label : block ... | signal assignment.
  if (at(TokenKind::Identifier) && peek().is(TokenKind::Colon)) {
    std::string Label = consume().Text;
    consume(); // ':'
    if (at(TokenKind::KwProcess))
      return parseProcess(std::move(Label), Start);
    if (at(TokenKind::KwBlock))
      return parseBlock(std::move(Label), Start);
    Diags.error(cur().Loc, "expected 'process' or 'block' after label");
    skipToSemi();
    return nullptr;
  }
  // Concurrent signal assignment.
  if (at(TokenKind::Identifier)) {
    std::string Target = consume().Text;
    std::optional<SliceSpec> Slice = parseSliceSuffix();
    if (!expect(TokenKind::LessEq, "concurrent signal assignment")) {
      skipToSemi();
      return nullptr;
    }
    ExprPtr Value = parseExpr();
    expect(TokenKind::Semi, "concurrent signal assignment");
    return std::make_unique<ConcAssignStmt>(std::move(Target), Slice,
                                            std::move(Value),
                                            SourceRange(Start, cur().Loc));
  }
  Diags.error(cur().Loc, std::string("expected concurrent statement, found ") +
                             tokenKindName(cur().K));
  consume();
  return nullptr;
}

ConcStmtPtr Parser::parseProcess(std::string Label, SourceLoc Start) {
  expect(TokenKind::KwProcess, "process statement");
  std::vector<Decl> Decls = parseDeclList();
  expect(TokenKind::KwBegin, "process statement");
  StmtPtr Body = parseStatementList();
  expect(TokenKind::KwEnd, "process statement");
  expect(TokenKind::KwProcess, "process statement");
  if (at(TokenKind::Identifier)) {
    if (cur().Text != Label)
      Diags.error(cur().Loc, "process label '" + cur().Text +
                                 "' at end does not match '" + Label + "'");
    consume();
  }
  expect(TokenKind::Semi, "process statement");
  return std::make_unique<ProcessStmt>(std::move(Label), std::move(Decls),
                                       std::move(Body),
                                       SourceRange(Start, cur().Loc));
}

ConcStmtPtr Parser::parseBlock(std::string Label, SourceLoc Start) {
  expect(TokenKind::KwBlock, "block statement");
  std::vector<Decl> Decls = parseDeclList();
  expect(TokenKind::KwBegin, "block statement");
  std::vector<ConcStmtPtr> Body;
  while (!at(TokenKind::KwEnd) && !at(TokenKind::Eof))
    if (ConcStmtPtr S = parseConcStmt())
      Body.push_back(std::move(S));
  expect(TokenKind::KwEnd, "block statement");
  expect(TokenKind::KwBlock, "block statement");
  if (at(TokenKind::Identifier)) {
    if (cur().Text != Label)
      Diags.error(cur().Loc, "block label '" + cur().Text +
                                 "' at end does not match '" + Label + "'");
    consume();
  }
  expect(TokenKind::Semi, "block statement");
  return std::make_unique<BlockStmt>(std::move(Label), std::move(Decls),
                                     std::move(Body),
                                     SourceRange(Start, cur().Loc));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool Parser::atStmtListEnd() const {
  return at(TokenKind::KwEnd) || at(TokenKind::KwElse) ||
         at(TokenKind::KwElsif) || at(TokenKind::Eof);
}

StmtPtr Parser::parseStatementList() {
  SourceLoc Start = cur().Loc;
  std::vector<StmtPtr> Stmts;
  while (!atStmtListEnd())
    if (StmtPtr S = parseStmt())
      Stmts.push_back(std::move(S));
  if (Stmts.size() == 1)
    return std::move(Stmts.front());
  return std::make_unique<CompoundStmt>(std::move(Stmts),
                                        SourceRange(Start, cur().Loc));
}

StmtPtr Parser::parseStmt() {
  if (!enterNesting())
    return nullptr;
  StmtPtr S = parseStmtImpl();
  --NestingDepth;
  return S;
}

StmtPtr Parser::parseStmtImpl() {
  SourceLoc Start = cur().Loc;
  if (accept(TokenKind::KwNull)) {
    expect(TokenKind::Semi, "null statement");
    return std::make_unique<NullStmt>(SourceRange(Start, cur().Loc));
  }
  if (at(TokenKind::KwIf)) {
    consume();
    return parseIf(Start);
  }
  if (at(TokenKind::KwWhile)) {
    consume();
    return parseWhile(Start);
  }
  if (at(TokenKind::KwWait)) {
    consume();
    return parseWait(Start);
  }
  if (at(TokenKind::Identifier))
    return parseAssignment();
  Diags.error(cur().Loc, std::string("expected statement, found ") +
                             tokenKindName(cur().K));
  consume();
  return nullptr;
}

StmtPtr Parser::parseIf(SourceLoc Start) {
  if (!enterNesting())
    return nullptr;
  StmtPtr S = parseIfImpl(Start);
  --NestingDepth;
  return S;
}

StmtPtr Parser::parseIfImpl(SourceLoc Start) {
  ExprPtr Cond = parseExpr();
  expect(TokenKind::KwThen, "if statement");
  StmtPtr Then = parseStatementList();
  StmtPtr Else;
  if (at(TokenKind::KwElsif)) {
    // elsif desugars into a nested if that reuses this 'end if'.
    SourceLoc ElsifLoc = consume().Loc;
    Else = parseIf(ElsifLoc);
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else),
                                    SourceRange(Start, cur().Loc));
  }
  if (accept(TokenKind::KwElse))
    Else = parseStatementList();
  else
    Else = std::make_unique<NullStmt>(SourceRange(cur().Loc));
  expect(TokenKind::KwEnd, "if statement");
  expect(TokenKind::KwIf, "if statement");
  expect(TokenKind::Semi, "if statement");
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else),
                                  SourceRange(Start, cur().Loc));
}

StmtPtr Parser::parseWhile(SourceLoc Start) {
  ExprPtr Cond = parseExpr();
  expect(TokenKind::KwLoop, "while loop");
  StmtPtr Body = parseStatementList();
  expect(TokenKind::KwEnd, "while loop");
  expect(TokenKind::KwLoop, "while loop");
  expect(TokenKind::Semi, "while loop");
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body),
                                     SourceRange(Start, cur().Loc));
}

StmtPtr Parser::parseWait(SourceLoc Start) {
  std::vector<std::string> OnNames;
  bool HasOn = false;
  if (accept(TokenKind::KwOn)) {
    HasOn = true;
    OnNames.push_back(cur().Text);
    expect(TokenKind::Identifier, "wait statement");
    while (accept(TokenKind::Comma)) {
      OnNames.push_back(cur().Text);
      expect(TokenKind::Identifier, "wait statement");
    }
  }
  ExprPtr Until;
  if (accept(TokenKind::KwUntil))
    Until = parseExpr();
  expect(TokenKind::Semi, "wait statement");
  return std::make_unique<WaitStmt>(std::move(OnNames), HasOn,
                                    std::move(Until),
                                    SourceRange(Start, cur().Loc));
}

StmtPtr Parser::parseAssignment() {
  SourceLoc Start = cur().Loc;
  std::string Target = consume().Text;
  std::optional<SliceSpec> Slice = parseSliceSuffix();
  if (accept(TokenKind::ColonEq)) {
    ExprPtr Value = parseExpr();
    expect(TokenKind::Semi, "variable assignment");
    return std::make_unique<VarAssignStmt>(std::move(Target), Slice,
                                           std::move(Value),
                                           SourceRange(Start, cur().Loc));
  }
  if (accept(TokenKind::LessEq)) {
    ExprPtr Value = parseExpr();
    expect(TokenKind::Semi, "signal assignment");
    return std::make_unique<SignalAssignStmt>(std::move(Target), Slice,
                                              std::move(Value),
                                              SourceRange(Start, cur().Loc));
  }
  Diags.error(cur().Loc, "expected ':=' or '<=' in assignment");
  skipToSemi();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

// Grammar (loosely following VHDL operator classes):
//   expr     ::= rel { (and|or|nand|nor|xor|xnor) rel }
//   rel      ::= add [ (=|/=|<|<=|>|>=) add ]
//   add      ::= mul { (+|-|&) mul }
//   mul      ::= primary { * primary }
//   primary  ::= literal | name [slice] | (expr) | not primary
// Unlike strict VHDL we allow mixing different logical operators without
// parentheses (left-associative); this accepts a superset of legal VHDL.

ExprPtr Parser::parseExpr() {
  ExprPtr LHS = parseRelational();
  for (;;) {
    BinaryOpKind Op;
    if (at(TokenKind::KwAnd))
      Op = BinaryOpKind::And;
    else if (at(TokenKind::KwOr))
      Op = BinaryOpKind::Or;
    else if (at(TokenKind::KwNand))
      Op = BinaryOpKind::Nand;
    else if (at(TokenKind::KwNor))
      Op = BinaryOpKind::Nor;
    else if (at(TokenKind::KwXor))
      Op = BinaryOpKind::Xor;
    else if (at(TokenKind::KwXnor))
      Op = BinaryOpKind::Xnor;
    else
      return LHS;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseRelational();
    if (!LHS || !RHS)
      return LHS ? std::move(LHS) : std::move(RHS);
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       SourceRange(Loc));
  }
}

ExprPtr Parser::parseRelational() {
  ExprPtr LHS = parseAdditive();
  BinaryOpKind Op;
  if (at(TokenKind::Eq))
    Op = BinaryOpKind::Eq;
  else if (at(TokenKind::NotEq))
    Op = BinaryOpKind::Ne;
  else if (at(TokenKind::Less))
    Op = BinaryOpKind::Lt;
  else if (at(TokenKind::LessEq))
    Op = BinaryOpKind::Le;
  else if (at(TokenKind::Greater))
    Op = BinaryOpKind::Gt;
  else if (at(TokenKind::GreaterEq))
    Op = BinaryOpKind::Ge;
  else
    return LHS;
  SourceLoc Loc = consume().Loc;
  ExprPtr RHS = parseAdditive();
  if (!LHS || !RHS)
    return LHS ? std::move(LHS) : std::move(RHS);
  return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                      SourceRange(Loc));
}

ExprPtr Parser::parseAdditive() {
  ExprPtr LHS = parseMultiplicative();
  for (;;) {
    BinaryOpKind Op;
    if (at(TokenKind::Plus))
      Op = BinaryOpKind::Add;
    else if (at(TokenKind::Minus))
      Op = BinaryOpKind::Sub;
    else if (at(TokenKind::Amp))
      Op = BinaryOpKind::Concat;
    else
      return LHS;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseMultiplicative();
    if (!LHS || !RHS)
      return LHS ? std::move(LHS) : std::move(RHS);
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       SourceRange(Loc));
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr LHS = parsePrimary();
  while (at(TokenKind::Star)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parsePrimary();
    if (!LHS || !RHS)
      return LHS ? std::move(LHS) : std::move(RHS);
    LHS = std::make_unique<BinaryExpr>(BinaryOpKind::Mul, std::move(LHS),
                                       std::move(RHS), SourceRange(Loc));
  }
  return LHS;
}

ExprPtr Parser::parsePrimary() {
  if (!enterNesting())
    return nullptr;
  ExprPtr E = parsePrimaryImpl();
  --NestingDepth;
  return E;
}

ExprPtr Parser::parsePrimaryImpl() {
  SourceLoc Start = cur().Loc;
  if (at(TokenKind::KwNot)) {
    consume();
    ExprPtr Sub = parsePrimary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOpKind::Not, std::move(Sub),
                                       SourceRange(Start, cur().Loc));
  }
  if (at(TokenKind::CharLiteral)) {
    Token T = consume();
    std::optional<StdLogic> V =
        T.Text.size() == 1 ? stdLogicFromChar(T.Text[0]) : std::nullopt;
    if (!V) {
      Diags.error(T.Loc, "'" + T.Text + "' is not a std_logic value");
      V = StdLogic::U;
    }
    return std::make_unique<LogicLiteralExpr>(*V, SourceRange(T.Loc));
  }
  if (at(TokenKind::StringLiteral)) {
    Token T = consume();
    std::optional<LogicVector> V = LogicVector::fromString(T.Text);
    if (!V) {
      Diags.error(T.Loc,
                  "string literal \"" + T.Text +
                      "\" contains characters outside std_logic");
      V = LogicVector(T.Text.size());
    }
    return std::make_unique<VectorLiteralExpr>(std::move(*V),
                                               SourceRange(T.Loc));
  }
  if (at(TokenKind::LParen)) {
    consume();
    ExprPtr Sub = parseExpr();
    expect(TokenKind::RParen, "parenthesized expression");
    return Sub;
  }
  if (at(TokenKind::Identifier)) {
    Token T = consume();
    if (at(TokenKind::LParen)) {
      std::optional<SliceSpec> Slice = parseSliceSuffix();
      if (Slice)
        return std::make_unique<SliceExpr>(T.Text, *Slice,
                                           SourceRange(T.Loc, cur().Loc));
      return nullptr;
    }
    return std::make_unique<NameExpr>(T.Text, SourceRange(T.Loc));
  }
  Diags.error(Start, std::string("expected expression, found ") +
                         tokenKindName(cur().K));
  consume();
  return nullptr;
}

std::optional<SliceSpec> Parser::parseSliceSuffix() {
  if (!at(TokenKind::LParen))
    return std::nullopt;
  consume();
  SliceSpec Slice;
  Slice.Z1 = static_cast<int>(cur().IntValue);
  if (!expect(TokenKind::IntLiteral, "slice")) {
    skipToSemi();
    return std::nullopt;
  }
  if (accept(TokenKind::KwDownto))
    Slice.Downto = true;
  else if (accept(TokenKind::KwTo))
    Slice.Downto = false;
  else {
    Diags.error(cur().Loc, "expected 'downto' or 'to' in slice");
    skipToSemi();
    return std::nullopt;
  }
  Slice.Z2 = static_cast<int>(cur().IntValue);
  if (!expect(TokenKind::IntLiteral, "slice")) {
    skipToSemi();
    return std::nullopt;
  }
  expect(TokenKind::RParen, "slice");
  return Slice;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpression() { return parseExpr(); }

DesignFile vif::parseDesign(const std::string &Source,
                            DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseDesignFile();
}

StmtPtr vif::parseStatements(const std::string &Source,
                             DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseStatementList();
}

StatementProgram vif::parseStatementProgram(const std::string &Source,
                                            DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  StatementProgram Prog;
  Prog.Decls = P.parseDeclarations();
  Prog.Body = P.parseStatementList();
  return Prog;
}
