//===- parse/Token.h - VHDL1 tokens -----------------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the VHDL1 lexer. VHDL keywords and identifiers are case
/// insensitive; the lexer normalizes identifier spellings to lowercase and
/// recognizes keywords in any case. Literal bodies keep their exact case
/// ('U' and 'u' are different characters, only the former is std_logic).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_PARSE_TOKEN_H
#define VIF_PARSE_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace vif {

enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  CharLiteral,   ///< '0', 'U', ...
  StringLiteral, ///< "0101"

  // Keywords.
  KwArchitecture,
  KwAnd,
  KwBegin,
  KwBlock,
  KwDownto,
  KwElse,
  KwElsif,
  KwEnd,
  KwEntity,
  KwIf,
  KwIn,
  KwInout,
  KwIs,
  KwLoop,
  KwNand,
  KwNor,
  KwNot,
  KwNull,
  KwOf,
  KwOn,
  KwOr,
  KwOut,
  KwPort,
  KwProcess,
  KwSignal,
  KwStdLogic,
  KwStdLogicVector,
  KwThen,
  KwTo,
  KwUntil,
  KwVariable,
  KwWait,
  KwWhile,
  KwXnor,
  KwXor,

  // Punctuation and operators.
  LParen,
  RParen,
  Semi,
  Colon,
  Comma,
  ColonEq,   ///< :=
  LessEq,    ///< <= (signal assignment or relational, by context)
  Less,      ///< <
  Greater,   ///< >
  GreaterEq, ///< >=
  Eq,        ///< =
  NotEq,     ///< /=
  Plus,
  Minus,
  Star,
  Amp,
};

/// Human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind K = TokenKind::Eof;
  /// Identifier spelling (lowercased), literal body, or empty.
  std::string Text;
  /// Value of IntLiteral tokens.
  int64_t IntValue = 0;
  SourceLoc Loc;

  bool is(TokenKind Kind) const { return K == Kind; }
};

} // namespace vif

#endif // VIF_PARSE_TOKEN_H
