//===- parse/Lexer.cpp ----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "parse/Lexer.h"

#include <cctype>
#include <cstdint>
#include <unordered_map>

using namespace vif;

const char *vif::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwArchitecture:
    return "'architecture'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwBegin:
    return "'begin'";
  case TokenKind::KwBlock:
    return "'block'";
  case TokenKind::KwDownto:
    return "'downto'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwElsif:
    return "'elsif'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwEntity:
    return "'entity'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwInout:
    return "'inout'";
  case TokenKind::KwIs:
    return "'is'";
  case TokenKind::KwLoop:
    return "'loop'";
  case TokenKind::KwNand:
    return "'nand'";
  case TokenKind::KwNor:
    return "'nor'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwOf:
    return "'of'";
  case TokenKind::KwOn:
    return "'on'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwOut:
    return "'out'";
  case TokenKind::KwPort:
    return "'port'";
  case TokenKind::KwProcess:
    return "'process'";
  case TokenKind::KwSignal:
    return "'signal'";
  case TokenKind::KwStdLogic:
    return "'std_logic'";
  case TokenKind::KwStdLogicVector:
    return "'std_logic_vector'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwTo:
    return "'to'";
  case TokenKind::KwUntil:
    return "'until'";
  case TokenKind::KwVariable:
    return "'variable'";
  case TokenKind::KwWait:
    return "'wait'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwXnor:
    return "'xnor'";
  case TokenKind::KwXor:
    return "'xor'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::ColonEq:
    return "':='";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::NotEq:
    return "'/='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Amp:
    return "'&'";
  }
  return "token";
}

namespace {

const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"architecture", TokenKind::KwArchitecture},
      {"and", TokenKind::KwAnd},
      {"begin", TokenKind::KwBegin},
      {"block", TokenKind::KwBlock},
      {"downto", TokenKind::KwDownto},
      {"else", TokenKind::KwElse},
      {"elsif", TokenKind::KwElsif},
      {"end", TokenKind::KwEnd},
      {"entity", TokenKind::KwEntity},
      {"if", TokenKind::KwIf},
      {"in", TokenKind::KwIn},
      {"inout", TokenKind::KwInout},
      {"is", TokenKind::KwIs},
      {"loop", TokenKind::KwLoop},
      {"nand", TokenKind::KwNand},
      {"nor", TokenKind::KwNor},
      {"not", TokenKind::KwNot},
      {"null", TokenKind::KwNull},
      {"of", TokenKind::KwOf},
      {"on", TokenKind::KwOn},
      {"or", TokenKind::KwOr},
      {"out", TokenKind::KwOut},
      {"port", TokenKind::KwPort},
      {"process", TokenKind::KwProcess},
      {"signal", TokenKind::KwSignal},
      {"std_logic", TokenKind::KwStdLogic},
      {"std_logic_vector", TokenKind::KwStdLogicVector},
      {"then", TokenKind::KwThen},
      {"to", TokenKind::KwTo},
      {"until", TokenKind::KwUntil},
      {"variable", TokenKind::KwVariable},
      {"wait", TokenKind::KwWait},
      {"while", TokenKind::KwWhile},
      {"xnor", TokenKind::KwXnor},
      {"xor", TokenKind::KwXor},
  };
  return Table;
}

char lowered(char C) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
}

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) != 0;
}

bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) != 0 || C == '_';
}

} // namespace

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '-' && peek(1) == '-') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::make(TokenKind K, SourceLoc Loc, std::string Text) const {
  Token T;
  T.K = K;
  T.Text = std::move(Text);
  T.Loc = Loc;
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = lexOne();
    bool Done = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}

Token Lexer::lexOne() {
  // The error-recovery arms loop back here instead of recursing: recovery
  // once per bad byte must cost a loop iteration, not a stack frame
  // (megabytes of garbage input would otherwise overflow the stack).
  for (;;) {
    skipTrivia();
    SourceLoc Start = loc();
    if (atEnd())
      return make(TokenKind::Eof, Start);

    char C = advance();

    if (isIdentStart(C)) {
      std::string Ident(1, lowered(C));
      while (!atEnd() && isIdentCont(peek()))
        Ident.push_back(lowered(advance()));
      auto It = keywordTable().find(Ident);
      if (It != keywordTable().end())
        return make(It->second, Start);
      return make(TokenKind::Identifier, Start, std::move(Ident));
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      // Accumulate with an explicit overflow check: a digit run longer
      // than int64 holds (fuzzed inputs produce them) must saturate with
      // a diagnostic, not wrap through signed overflow.
      const int64_t Max = INT64_MAX;
      int64_t Value = C - '0';
      bool Overflow = false;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        int64_t Digit = advance() - '0';
        if (Value > (Max - Digit) / 10) {
          Overflow = true;
          Value = Max;
          while (!atEnd() &&
                 std::isdigit(static_cast<unsigned char>(peek())))
            advance();
          break;
        }
        Value = Value * 10 + Digit;
      }
      if (Overflow)
        Diags.error(Start, "integer literal too large");
      Token T = make(TokenKind::IntLiteral, Start);
      T.IntValue = Value;
      return T;
    }

    switch (C) {
    case '\'': {
      // Character literal: exactly one character between ticks.
      if (atEnd() || peek(1) != '\'') {
        Diags.error(Start, "malformed character literal");
        continue;
      }
      char Body = advance();
      advance(); // closing tick
      return make(TokenKind::CharLiteral, Start, std::string(1, Body));
    }
    case '"': {
      std::string Body;
      while (!atEnd() && peek() != '"' && peek() != '\n')
        Body.push_back(advance());
      if (atEnd() || peek() != '"') {
        Diags.error(Start, "unterminated string literal");
        return make(TokenKind::StringLiteral, Start, std::move(Body));
      }
      advance(); // closing quote
      return make(TokenKind::StringLiteral, Start, std::move(Body));
    }
    case '(':
      return make(TokenKind::LParen, Start);
    case ')':
      return make(TokenKind::RParen, Start);
    case ';':
      return make(TokenKind::Semi, Start);
    case ',':
      return make(TokenKind::Comma, Start);
    case ':':
      if (peek() == '=') {
        advance();
        return make(TokenKind::ColonEq, Start);
      }
      return make(TokenKind::Colon, Start);
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokenKind::LessEq, Start);
      }
      return make(TokenKind::Less, Start);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokenKind::GreaterEq, Start);
      }
      return make(TokenKind::Greater, Start);
    case '=':
      return make(TokenKind::Eq, Start);
    case '/':
      if (peek() == '=') {
        advance();
        return make(TokenKind::NotEq, Start);
      }
      Diags.error(Start, "expected '=' after '/'");
      continue;
    case '+':
      return make(TokenKind::Plus, Start);
    case '-':
      return make(TokenKind::Minus, Start);
    case '*':
      return make(TokenKind::Star, Start);
    case '&':
      return make(TokenKind::Amp, Start);
    default:
      Diags.error(Start, std::string("unexpected character '") + C + "'");
      continue;
    }
  }
}
