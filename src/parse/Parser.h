//===- parse/Parser.h - VHDL1 recursive-descent parser ----------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the VHDL1 grammar of Figure 1, using the
/// concrete VHDL syntax (`if .. then .. end if;`, `while .. loop .. end
/// loop;`, `wait on a, b until e;`). Errors are reported to the diagnostic
/// engine; parseDesignFile returns a partial tree which callers must not use
/// when hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef VIF_PARSE_PARSER_H
#define VIF_PARSE_PARSER_H

#include "ast/Design.h"
#include "parse/Token.h"
#include "support/Diagnostics.h"

#include <optional>
#include <vector>

namespace vif {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a whole program (entities and architectures until EOF).
  DesignFile parseDesignFile();

  /// Parses a single sequential statement list (used by tests and by
  /// analyses of stand-alone statement programs such as the paper's (a) and
  /// (b) examples).
  StmtPtr parseStatementList();

  /// Parses a single expression (used by tests).
  ExprPtr parseExpression();

  /// Parses a (possibly empty) declaration list.
  std::vector<Decl> parseDeclarations() { return parseDeclList(); }

private:
  const Token &cur() const { return Tokens[Index]; }
  const Token &peek(unsigned Ahead = 1) const;
  bool at(TokenKind K) const { return cur().is(K); }
  Token consume();
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void skipToSemi();

  Entity parseEntity();
  Architecture parseArchitecture();
  std::vector<Port> parsePortList();
  Type parseType();
  std::vector<Decl> parseDeclList();
  ConcStmtPtr parseConcStmt();
  ConcStmtPtr parseProcess(std::string Label, SourceLoc Start);
  ConcStmtPtr parseBlock(std::string Label, SourceLoc Start);

  StmtPtr parseStmt();
  StmtPtr parseStmtImpl();
  StmtPtr parseIf(SourceLoc Start);
  StmtPtr parseIfImpl(SourceLoc Start);
  StmtPtr parseWhile(SourceLoc Start);
  StmtPtr parseWait(SourceLoc Start);
  StmtPtr parseAssignment();

  ExprPtr parseExpr();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parsePrimary();
  ExprPtr parsePrimaryImpl();
  std::optional<SliceSpec> parseSliceSuffix();

  /// True if the statement-list terminator set begins at the cursor.
  bool atStmtListEnd() const;

  /// Guards the recursive descent against adversarial nesting (fuzzed
  /// inputs with tens of thousands of '(' or nested 'if's would otherwise
  /// overflow the stack). Checked wherever the grammar recurses through
  /// itself: primaries, statements and elsif chains share the counter.
  bool enterNesting();
  static constexpr unsigned MaxNestingDepth = 512;

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Index = 0;
  unsigned NestingDepth = 0;
};

/// Convenience: lex and parse \p Source as a full design file.
DesignFile parseDesign(const std::string &Source, DiagnosticEngine &Diags);

/// Convenience: lex and parse \p Source as a statement list.
StmtPtr parseStatements(const std::string &Source, DiagnosticEngine &Diags);

/// A stand-alone statement program: optional variable/signal declarations
/// followed by a statement list (the shape of the paper's function-level
/// examples).
struct StatementProgram {
  std::vector<Decl> Decls;
  StmtPtr Body;
};

/// Lexes and parses declarations followed by statements.
StatementProgram parseStatementProgram(const std::string &Source,
                                       DiagnosticEngine &Diags);

} // namespace vif

#endif // VIF_PARSE_PARSER_H
