//===- sim/ExprEval.h - Expression evaluation E[[e]] ------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's expression semantics (Table 1):
///
///   E : Expr -> (State x Signals -> Value)
///
/// Signals are always read at their *present* value, ϕ s 0. Slices go
/// through `split` after the declared type translates indices to positions.
/// Evaluation can fail only when a semantic side condition is violated
/// (e.g. a condition that is neither '0' nor '1' is handled by the caller);
/// operator application itself is total on well-typed trees.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SIM_EXPREVAL_H
#define VIF_SIM_EXPREVAL_H

#include "sema/Elaborator.h"
#include "sim/Value.h"

namespace vif {

/// Read access to the paper's ⟨σ, ϕ⟩ pair for one process.
class EvalContext {
public:
  virtual ~EvalContext();

  /// σ x — present value of a local variable.
  virtual Value readVariable(unsigned VarId) const = 0;
  /// ϕ s 0 — present value of a signal.
  virtual Value readSignalPresent(unsigned SigId) const = 0;
};

/// E[[e]]⟨σ, ϕ⟩ over a resolved, type-checked expression.
Value evalExpr(const Expr &E, const EvalContext &Ctx,
               const ElaboratedProgram &Program);

/// Evaluates a literal initializer (LogicLiteralExpr / VectorLiteralExpr);
/// used for declaration initial values.
Value evalLiteral(const Expr &E);

} // namespace vif

#endif // VIF_SIM_EXPREVAL_H
