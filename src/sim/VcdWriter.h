//===- sim/VcdWriter.h - Value Change Dump output ----------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports a simulation trace in the IEEE 1364 VCD format so waveforms can
/// be inspected with standard viewers (GTKWave etc.). Each delta cycle of
/// the paper's semantics becomes one VCD timestep. The nine-valued logic is
/// projected onto VCD's four-valued alphabet: {'U','X','W','-'} -> x,
/// {'L'} -> 0, {'H'} -> 1, 'Z' -> z.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SIM_VCDWRITER_H
#define VIF_SIM_VCDWRITER_H

#include "sim/Simulator.h"

#include <iosfwd>

namespace vif {

/// Writes the recorded trace of \p Sim (which must have been constructed
/// with Options::RecordTrace) as a VCD document covering every signal of
/// \p Program.
void writeVcd(std::ostream &OS, const ElaboratedProgram &Program,
              const Simulator &Sim);

} // namespace vif

#endif // VIF_SIM_VCDWRITER_H
