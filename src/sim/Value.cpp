//===- sim/Value.cpp ------------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "sim/Value.h"

using namespace vif;

Value Value::resolveWith(const Value &O) const {
  assert(isScalar() == O.isScalar() && width() == O.width() &&
         "resolving drivers of different shapes");
  if (isScalar())
    return scalar(resolve(asScalar(), O.asScalar()));
  return vector(asVector().resolveWith(O.asVector()));
}

std::string Value::str() const {
  if (isScalar())
    return std::string("'") + toChar(asScalar()) + "'";
  return "\"" + asVector().str() + "\"";
}
