//===- sim/ExprEval.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "sim/ExprEval.h"

#include "support/Casting.h"

using namespace vif;

EvalContext::~EvalContext() = default;

namespace {

/// Reads the declared type of a resolved object.
const Type &declaredType(ObjectRef Ref, const ElaboratedProgram &Program) {
  return Ref.isVariable() ? Program.variable(Ref.Id).Ty
                          : Program.signal(Ref.Id).Ty;
}

Value readWhole(ObjectRef Ref, const EvalContext &Ctx) {
  return Ref.isVariable() ? Ctx.readVariable(Ref.Id)
                          : Ctx.readSignalPresent(Ref.Id);
}

/// The paper's split(a, z1, z2): elements of the vector in the given index
/// range, via the declared type's index-to-position mapping.
Value split(const Value &V, const Type &DeclTy, const SliceSpec &Slice) {
  unsigned Pos = DeclTy.slicePosition(Slice.Z1, Slice.Z2, Slice.Downto);
  unsigned Width = DeclTy.sliceWidth(Slice.Z1, Slice.Z2, Slice.Downto);
  return Value::vector(V.asVector().slicePos(Pos, Width));
}

Value evalUnary(UnaryOpKind Op, const Value &Sub) {
  switch (Op) {
  case UnaryOpKind::Not:
    if (Sub.isScalar())
      return Value::scalar(logicNot(Sub.asScalar()));
    return Value::vector(Sub.asVector().notOp());
  }
  return Sub;
}

/// Applies a scalar logical table, lifting to vectors element-wise.
Value evalLogic(BinaryOpKind Op, const Value &L, const Value &R) {
  if (L.isScalar()) {
    StdLogic A = L.asScalar(), B = R.asScalar();
    switch (Op) {
    case BinaryOpKind::And:
      return Value::scalar(logicAnd(A, B));
    case BinaryOpKind::Or:
      return Value::scalar(logicOr(A, B));
    case BinaryOpKind::Nand:
      return Value::scalar(logicNand(A, B));
    case BinaryOpKind::Nor:
      return Value::scalar(logicNor(A, B));
    case BinaryOpKind::Xor:
      return Value::scalar(logicXor(A, B));
    case BinaryOpKind::Xnor:
      return Value::scalar(logicXnor(A, B));
    default:
      break;
    }
    assert(false && "not a logical operator");
    return L;
  }
  const LogicVector &A = L.asVector(), &B = R.asVector();
  switch (Op) {
  case BinaryOpKind::And:
    return Value::vector(A.andOp(B));
  case BinaryOpKind::Or:
    return Value::vector(A.orOp(B));
  case BinaryOpKind::Nand:
    return Value::vector(A.nandOp(B));
  case BinaryOpKind::Nor:
    return Value::vector(A.norOp(B));
  case BinaryOpKind::Xor:
    return Value::vector(A.xorOp(B));
  case BinaryOpKind::Xnor:
    return Value::vector(A.xnorOp(B));
  default:
    break;
  }
  assert(false && "not a logical operator");
  return L;
}

Value evalRelational(BinaryOpKind Op, const Value &L, const Value &R) {
  // Scalars compare as width-1 vectors; this keeps one code path.
  LogicVector A = L.isScalar() ? LogicVector({L.asScalar()}) : L.asVector();
  LogicVector B = R.isScalar() ? LogicVector({R.asScalar()}) : R.asVector();
  switch (Op) {
  case BinaryOpKind::Eq:
    return Value::scalar(A.eqOp(B));
  case BinaryOpKind::Ne:
    return Value::scalar(A.neOp(B));
  case BinaryOpKind::Lt:
    return Value::scalar(A.ltOp(B));
  case BinaryOpKind::Le:
    return Value::scalar(A.leOp(B));
  case BinaryOpKind::Gt:
    return Value::scalar(A.gtOp(B));
  case BinaryOpKind::Ge:
    return Value::scalar(A.geOp(B));
  default:
    break;
  }
  assert(false && "not a relational operator");
  return Value();
}

Value evalArith(BinaryOpKind Op, const Value &L, const Value &R) {
  const LogicVector &A = L.asVector(), &B = R.asVector();
  switch (Op) {
  case BinaryOpKind::Add:
    return Value::vector(A.add(B));
  case BinaryOpKind::Sub:
    return Value::vector(A.sub(B));
  case BinaryOpKind::Mul:
    return Value::vector(A.mul(B));
  default:
    break;
  }
  assert(false && "not an arithmetic operator");
  return Value();
}

LogicVector asVectorValue(const Value &V) {
  if (V.isVector())
    return V.asVector();
  return LogicVector({V.asScalar()});
}

} // namespace

Value vif::evalLiteral(const Expr &E) {
  if (const auto *L = dyn_cast<LogicLiteralExpr>(&E))
    return Value::scalar(L->value());
  return Value::vector(cast<VectorLiteralExpr>(&E)->value());
}

Value vif::evalExpr(const Expr &E, const EvalContext &Ctx,
                    const ElaboratedProgram &Program) {
  switch (E.kind()) {
  case Expr::Kind::LogicLiteral:
  case Expr::Kind::VectorLiteral:
    return evalLiteral(E);
  case Expr::Kind::Name:
    return readWhole(cast<NameExpr>(&E)->ref(), Ctx);
  case Expr::Kind::Slice: {
    const auto *S = cast<SliceExpr>(&E);
    return split(readWhole(S->ref(), Ctx), declaredType(S->ref(), Program),
                 S->slice());
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    return evalUnary(U->op(), evalExpr(U->sub(), Ctx, Program));
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    Value L = evalExpr(B->lhs(), Ctx, Program);
    Value R = evalExpr(B->rhs(), Ctx, Program);
    switch (B->op()) {
    case BinaryOpKind::And:
    case BinaryOpKind::Or:
    case BinaryOpKind::Nand:
    case BinaryOpKind::Nor:
    case BinaryOpKind::Xor:
    case BinaryOpKind::Xnor:
      return evalLogic(B->op(), L, R);
    case BinaryOpKind::Eq:
    case BinaryOpKind::Ne:
    case BinaryOpKind::Lt:
    case BinaryOpKind::Le:
    case BinaryOpKind::Gt:
    case BinaryOpKind::Ge:
      return evalRelational(B->op(), L, R);
    case BinaryOpKind::Add:
    case BinaryOpKind::Sub:
    case BinaryOpKind::Mul:
      return evalArith(B->op(), L, R);
    case BinaryOpKind::Concat:
      return Value::vector(asVectorValue(L).concat(asVectorValue(R)));
    }
    break;
  }
  }
  assert(false && "malformed expression tree");
  return Value();
}
