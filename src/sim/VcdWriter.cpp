//===- sim/VcdWriter.cpp --------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "sim/VcdWriter.h"

#include <map>
#include <ostream>

using namespace vif;

namespace {

/// VCD identifier for the signal with index \p Id: printable ASCII starting
/// at '!', multi-character for large designs.
std::string vcdId(unsigned Id) {
  std::string S;
  do {
    S.push_back(static_cast<char>('!' + Id % 94));
    Id /= 94;
  } while (Id != 0);
  return S;
}

char vcdChar(StdLogic V) {
  switch (V) {
  case StdLogic::Zero:
  case StdLogic::L:
    return '0';
  case StdLogic::One:
  case StdLogic::H:
    return '1';
  case StdLogic::Z:
    return 'z';
  case StdLogic::U:
  case StdLogic::X:
  case StdLogic::W:
  case StdLogic::DontCare:
    return 'x';
  }
  return 'x';
}

void emitValue(std::ostream &OS, const Value &V, const std::string &Id) {
  if (V.isScalar()) {
    OS << vcdChar(V.asScalar()) << Id << '\n';
    return;
  }
  OS << 'b';
  for (StdLogic B : V.asVector().bits())
    OS << vcdChar(B);
  OS << ' ' << Id << '\n';
}

} // namespace

void vif::writeVcd(std::ostream &OS, const ElaboratedProgram &Program,
                   const Simulator &Sim) {
  OS << "$comment vif VHDL1 simulator trace $end\n";
  OS << "$timescale 1ns $end\n";
  OS << "$scope module design $end\n";
  for (const ElabSignal &S : Program.Signals)
    OS << "$var wire " << S.Ty.width() << ' ' << vcdId(S.Id) << ' '
       << S.UniqueName << " $end\n";
  OS << "$upscope $end\n$enddefinitions $end\n";

  // Initial values: the Old value of the first change of each signal, or
  // the final present value if it never changed.
  std::map<unsigned, Value> Initial;
  for (const TraceEvent &E : Sim.trace())
    Initial.try_emplace(E.SigId, E.Old);
  OS << "$dumpvars\n";
  for (const ElabSignal &S : Program.Signals) {
    auto It = Initial.find(S.Id);
    emitValue(OS, It != Initial.end() ? It->second : Sim.presentValue(S.Id),
              vcdId(S.Id));
  }
  OS << "$end\n";

  unsigned CurrentDelta = 0;
  for (const TraceEvent &E : Sim.trace()) {
    if (E.Delta != CurrentDelta) {
      CurrentDelta = E.Delta;
      OS << '#' << CurrentDelta << '\n';
    }
    emitValue(OS, E.New, vcdId(E.SigId));
  }
  // Close the waveform one step after the last change.
  OS << '#' << (Sim.deltasExecuted() + 1) << '\n';
}
