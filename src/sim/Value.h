//===- sim/Value.h - Runtime values -----------------------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values: Value = LValue ⊎ AValue (paper Section 3). A value is
/// either one std_logic or a positional vector of them.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SIM_VALUE_H
#define VIF_SIM_VALUE_H

#include "ast/Type.h"
#include "stdlogic/LogicVector.h"

#include <string>
#include <variant>

namespace vif {

class Value {
public:
  /// Scalar 'U'.
  Value() : V(StdLogic::U) {}

  static Value scalar(StdLogic S) { return Value(S); }
  static Value vector(LogicVector L) { return Value(std::move(L)); }

  /// The paper's initial store contents: 'U' for scalars, "U...U" sized to
  /// the type's width for vectors.
  static Value defaultFor(const Type &Ty) {
    if (Ty.isScalar())
      return scalar(StdLogic::U);
    return vector(LogicVector(Ty.width()));
  }

  bool isScalar() const { return std::holds_alternative<StdLogic>(V); }
  bool isVector() const { return !isScalar(); }

  StdLogic asScalar() const {
    assert(isScalar() && "value is not a scalar");
    return std::get<StdLogic>(V);
  }
  const LogicVector &asVector() const {
    assert(isVector() && "value is not a vector");
    return std::get<LogicVector>(V);
  }
  LogicVector &asVector() {
    assert(isVector() && "value is not a vector");
    return std::get<LogicVector>(V);
  }

  unsigned width() const {
    return isScalar() ? 1 : static_cast<unsigned>(asVector().size());
  }

  /// IEEE 1164 resolution against another driver of the same shape.
  Value resolveWith(const Value &O) const;

  bool operator==(const Value &O) const { return V == O.V; }
  bool operator!=(const Value &O) const { return !(*this == O); }

  /// Renders as VHDL literal syntax: '1' or "0101".
  std::string str() const;

private:
  explicit Value(StdLogic S) : V(S) {}
  explicit Value(LogicVector L) : V(std::move(L)) {}

  std::variant<StdLogic, LogicVector> V;
};

} // namespace vif

#endif // VIF_SIM_VALUE_H
