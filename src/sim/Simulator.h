//===- sim/Simulator.h - SOS simulator for VHDL1 ----------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes elaborated programs under the structural operational semantics
/// of paper Section 3:
///
///  * rule [H]: each process runs locally (statement steps of Table 2) until
///    it reaches a wait statement; interleaving between processes is
///    irrelevant because processes share no mutable state between
///    synchronization points;
///  * rule [A]: when all processes are waiting and at least one signal is
///    active somewhere, a delta-cycle fires: every signal with drivers gets
///    the resolution fs of the multiset of its active values as new present
///    value, all active values are cleared, and a waiting process resumes
///    iff one of its waited-on signals changed present value and its until
///    condition evaluates to '1' on the new store.
///
/// The environment is modeled exactly like the paper's π process: callers
/// drive active values onto port signals (driveSignal) which participate in
/// the next resolution.
///
/// Departures from the letter of the paper, both documented in DESIGN.md:
///  * present-value stores are shared rather than per-process; the [A] rule
///    assigns every process the same resolved values, so the per-process
///    copies are provably identical at every observation point;
///  * a slice assignment to a signal with no pending active value starts
///    from the signal's present value (the paper's update notation leaves
///    the untouched elements unspecified).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_SIM_SIMULATOR_H
#define VIF_SIM_SIMULATOR_H

#include "sema/Elaborator.h"
#include "sim/ExprEval.h"
#include "sim/Value.h"

#include <optional>
#include <string>
#include <vector>

namespace vif {

/// Why a run() returned.
enum class SimStatus {
  Quiescent, ///< all processes waiting/finished and no signal active
  MaxDeltas, ///< the delta budget was exhausted
  Stuck,     ///< a semantic side condition failed (condition not '0'/'1',
             ///< or a process exceeded the per-phase step budget)
};

const char *simStatusName(SimStatus S);

/// One recorded present-value change.
struct TraceEvent {
  unsigned Delta;  ///< delta-cycle counter (1-based)
  unsigned SigId;
  Value Old;
  Value New;
};

class Simulator {
public:
  struct Options {
    /// Upper bound on statement steps a process may take between two
    /// synchronization points before the run is declared stuck.
    size_t MaxStepsPerPhase = 1u << 22;
    /// Record present-value changes into trace().
    bool RecordTrace = false;
  };

  explicit Simulator(const ElaboratedProgram &Program);
  Simulator(const ElaboratedProgram &Program, Options Opts);

  /// Drives \p V onto signal \p SigId as an environment active value for the
  /// next delta-cycle (the π-process model of the environment).
  void driveSignal(unsigned SigId, Value V);

  /// Runs until quiescence, a stuck state, or \p MaxDeltas delta-cycles.
  SimStatus run(unsigned MaxDeltas = 1u << 16);

  /// Present value of a signal / current value of a variable.
  const Value &presentValue(unsigned SigId) const;
  const Value &variableValue(unsigned VarId) const;

  unsigned deltasExecuted() const { return Deltas; }
  const std::vector<TraceEvent> &trace() const { return Trace; }

  /// True if process \p ProcId is parked at a wait statement.
  bool isWaiting(unsigned ProcId) const;
  /// True if process \p ProcId ran off the end of its body (only possible
  /// for non-looped statement programs).
  bool isFinished(unsigned ProcId) const;

  /// Diagnostic description of why the simulation got stuck, if it did.
  const std::string &stuckReason() const { return StuckReason; }

private:
  struct Process {
    /// Continuation stack; the top is executed next. While statements are
    /// re-pushed before their body to realize the paper's loop unrolling
    /// rule.
    std::vector<const Stmt *> Cont;
    const WaitStmt *WaitingAt = nullptr;
    std::vector<Value> Vars; ///< σ_i, indexed by global variable id
    /// ϕ_i s 1 — this process's pending active values.
    std::vector<std::optional<Value>> Active;
  };

  /// Runs one process until wait/finish; false if stuck.
  bool runProcess(unsigned ProcId);
  /// Executes one statement for a process; false if stuck.
  bool execStmt(unsigned ProcId, const Stmt &S);
  /// Applies rule [A]; false if nothing was active.
  bool synchronize();

  /// σ/ϕ view for one process.
  class ProcessContext;

  const ElaboratedProgram &Program;
  Options Opts;
  std::vector<Process> Procs;
  std::vector<Value> Present; ///< shared ϕ s 0
  std::vector<std::optional<Value>> EnvActive; ///< π-process drivers
  unsigned Deltas = 0;
  std::vector<TraceEvent> Trace;
  std::string StuckReason;
};

} // namespace vif

#endif // VIF_SIM_SIMULATOR_H
