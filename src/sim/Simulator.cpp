//===- sim/Simulator.cpp --------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/Casting.h"

using namespace vif;

const char *vif::simStatusName(SimStatus S) {
  switch (S) {
  case SimStatus::Quiescent:
    return "quiescent";
  case SimStatus::MaxDeltas:
    return "max-deltas";
  case SimStatus::Stuck:
    return "stuck";
  }
  return "?";
}

/// The ⟨σ_i, ϕ⟩ view rule [H] evaluates expressions in.
class Simulator::ProcessContext : public EvalContext {
public:
  ProcessContext(const Simulator &Sim, unsigned ProcId)
      : Sim(Sim), ProcId(ProcId) {}

  Value readVariable(unsigned VarId) const override {
    return Sim.Procs[ProcId].Vars[VarId];
  }
  Value readSignalPresent(unsigned SigId) const override {
    return Sim.Present[SigId];
  }

private:
  const Simulator &Sim;
  unsigned ProcId;
};

Simulator::Simulator(const ElaboratedProgram &Program)
    : Simulator(Program, Options()) {}

Simulator::Simulator(const ElaboratedProgram &Program, Options Opts)
    : Program(Program), Opts(Opts) {
  Present.reserve(Program.Signals.size());
  for (const ElabSignal &S : Program.Signals)
    Present.push_back(S.Init ? evalLiteral(*S.Init)
                             : Value::defaultFor(S.Ty));
  EnvActive.assign(Program.Signals.size(), std::nullopt);

  Procs.resize(Program.Processes.size());
  for (const ElabProcess &P : Program.Processes) {
    Process &Proc = Procs[P.Id];
    Proc.Cont.push_back(P.Body.get());
    Proc.Active.assign(Program.Signals.size(), std::nullopt);
    Proc.Vars.reserve(Program.Variables.size());
    for (const ElabVariable &V : Program.Variables)
      Proc.Vars.push_back(V.Init ? evalLiteral(*V.Init)
                                 : Value::defaultFor(V.Ty));
  }
}

void Simulator::driveSignal(unsigned SigId, Value V) {
  assert(SigId < Program.Signals.size() && "signal id out of range");
  assert(V.width() == Program.signal(SigId).Ty.width() &&
         "driver width mismatch");
  if (EnvActive[SigId])
    EnvActive[SigId] = EnvActive[SigId]->resolveWith(V);
  else
    EnvActive[SigId] = std::move(V);
}

const Value &Simulator::presentValue(unsigned SigId) const {
  assert(SigId < Present.size() && "signal id out of range");
  return Present[SigId];
}

const Value &Simulator::variableValue(unsigned VarId) const {
  assert(VarId < Program.Variables.size() && "variable id out of range");
  return Procs[Program.variable(VarId).ProcessId].Vars[VarId];
}

bool Simulator::isWaiting(unsigned ProcId) const {
  return Procs[ProcId].WaitingAt != nullptr;
}

bool Simulator::isFinished(unsigned ProcId) const {
  const Process &P = Procs[ProcId];
  return !P.WaitingAt && P.Cont.empty();
}

bool Simulator::execStmt(unsigned ProcId, const Stmt &S) {
  Process &Proc = Procs[ProcId];
  ProcessContext Ctx(*this, ProcId);
  switch (S.kind()) {
  case Stmt::Kind::Null:
    return true;
  case Stmt::Kind::VarAssign: {
    const auto *A = cast<VarAssignStmt>(&S);
    Value V = evalExpr(A->value(), Ctx, Program);
    unsigned VarId = A->targetRef().Id;
    if (!A->hasSlice()) {
      Proc.Vars[VarId] = std::move(V);
      return true;
    }
    const Type &Ty = Program.variable(VarId).Ty;
    const SliceSpec &Sl = A->slice();
    Proc.Vars[VarId].asVector().setSlicePos(
        Ty.slicePosition(Sl.Z1, Sl.Z2, Sl.Downto), V.asVector());
    return true;
  }
  case Stmt::Kind::SignalAssign: {
    const auto *A = cast<SignalAssignStmt>(&S);
    Value V = evalExpr(A->value(), Ctx, Program);
    unsigned SigId = A->targetRef().Id;
    if (!A->hasSlice()) {
      Proc.Active[SigId] = std::move(V);
      return true;
    }
    // Slice assignment: update positions of the pending active value,
    // starting from the present value when no assignment is pending.
    const Type &Ty = Program.signal(SigId).Ty;
    const SliceSpec &Sl = A->slice();
    if (!Proc.Active[SigId])
      Proc.Active[SigId] = Present[SigId];
    Proc.Active[SigId]->asVector().setSlicePos(
        Ty.slicePosition(Sl.Z1, Sl.Z2, Sl.Downto), V.asVector());
    return true;
  }
  case Stmt::Kind::Wait:
    Proc.WaitingAt = cast<WaitStmt>(&S);
    return true;
  case Stmt::Kind::Compound: {
    const auto &Stmts = cast<CompoundStmt>(&S)->stmts();
    for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It)
      Proc.Cont.push_back(It->get());
    return true;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    Value C = evalExpr(I->cond(), Ctx, Program);
    if (!C.isScalar() ||
        (C.asScalar() != StdLogic::One && C.asScalar() != StdLogic::Zero)) {
      StuckReason = "if condition evaluated to " + C.str() +
                    " (neither '0' nor '1')";
      return false;
    }
    Proc.Cont.push_back(C.asScalar() == StdLogic::One ? &I->thenStmt()
                                                      : &I->elseStmt());
    return true;
  }
  case Stmt::Kind::While: {
    // The paper's [Loop] rule: rewrite to if e then (ss; while e do ss)
    // else null. Realized by re-pushing the while under its body.
    const auto *W = cast<WhileStmt>(&S);
    Value C = evalExpr(W->cond(), Ctx, Program);
    if (!C.isScalar() ||
        (C.asScalar() != StdLogic::One && C.asScalar() != StdLogic::Zero)) {
      StuckReason = "while condition evaluated to " + C.str() +
                    " (neither '0' nor '1')";
      return false;
    }
    if (C.asScalar() == StdLogic::One) {
      Proc.Cont.push_back(&S);
      Proc.Cont.push_back(&W->body());
    }
    return true;
  }
  }
  assert(false && "malformed statement tree");
  return false;
}

bool Simulator::runProcess(unsigned ProcId) {
  Process &Proc = Procs[ProcId];
  size_t Steps = 0;
  while (!Proc.WaitingAt && !Proc.Cont.empty()) {
    if (++Steps > Opts.MaxStepsPerPhase) {
      StuckReason = "process '" + Program.process(ProcId).Name +
                    "' exceeded the step budget without reaching a "
                    "synchronization point";
      return false;
    }
    const Stmt *S = Proc.Cont.back();
    Proc.Cont.pop_back();
    if (!execStmt(ProcId, *S))
      return false;
  }
  return true;
}

bool Simulator::synchronize() {
  // active(ϕ): does any process or the environment hold an active value?
  bool AnyActive = false;
  for (const std::optional<Value> &V : EnvActive)
    AnyActive |= V.has_value();
  for (const Process &P : Procs)
    for (const std::optional<Value> &V : P.Active)
      AnyActive |= V.has_value();
  if (!AnyActive)
    return false;

  ++Deltas;

  // New present values: fs over the multiset of active values per signal.
  std::vector<Value> OldPresent = Present;
  for (unsigned Sig = 0; Sig < Present.size(); ++Sig) {
    std::optional<Value> Resolved = EnvActive[Sig];
    for (const Process &P : Procs) {
      if (!P.Active[Sig])
        continue;
      Resolved = Resolved ? Resolved->resolveWith(*P.Active[Sig])
                          : *P.Active[Sig];
    }
    if (!Resolved)
      continue;
    if (Opts.RecordTrace && *Resolved != Present[Sig])
      Trace.push_back(TraceEvent{Deltas, Sig, Present[Sig], *Resolved});
    Present[Sig] = std::move(*Resolved);
  }

  // ϕ' s 1 = undef for every process and the environment.
  for (Process &P : Procs)
    P.Active.assign(Program.Signals.size(), std::nullopt);
  EnvActive.assign(Program.Signals.size(), std::nullopt);

  // Wake-up: a waiting process proceeds iff one of its waited-on signals
  // changed present value and its until condition holds on the new store.
  for (unsigned ProcId = 0; ProcId < Procs.size(); ++ProcId) {
    Process &P = Procs[ProcId];
    if (!P.WaitingAt)
      continue;
    const WaitStmt *W = P.WaitingAt;
    bool Changed = false;
    for (unsigned Sig : W->onSignals())
      Changed |= Present[Sig] != OldPresent[Sig];
    if (!Changed)
      continue;
    bool CondHolds = true;
    if (W->hasUntil()) {
      ProcessContext Ctx(*this, ProcId);
      Value C = evalExpr(W->until(), Ctx, Program);
      CondHolds = C.isScalar() && C.asScalar() == StdLogic::One;
    }
    if (CondHolds)
      P.WaitingAt = nullptr;
  }
  return true;
}

SimStatus Simulator::run(unsigned MaxDeltas) {
  for (unsigned Iter = 0;; ++Iter) {
    // Rule [H]: drive every process to a synchronization point.
    for (unsigned ProcId = 0; ProcId < Procs.size(); ++ProcId)
      if (!runProcess(ProcId))
        return SimStatus::Stuck;
    if (Iter >= MaxDeltas)
      return SimStatus::MaxDeltas;
    // Rule [A].
    if (!synchronize())
      return SimStatus::Quiescent;
  }
}
