//===- gen/Minimizer.cpp --------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "gen/Minimizer.h"

#include <vector>

using namespace vif;
using namespace vif::gen;

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  size_t Begin = 0;
  while (Begin <= S.size()) {
    size_t End = S.find('\n', Begin);
    if (End == std::string::npos) {
      if (Begin < S.size())
        Lines.push_back(S.substr(Begin));
      break;
    }
    Lines.push_back(S.substr(Begin, End - Begin + 1));
    Begin = End + 1;
  }
  return Lines;
}

std::string joinAllBut(const std::vector<std::string> &Lines, size_t Skip,
                       size_t SkipLen) {
  std::string Out;
  for (size_t I = 0; I < Lines.size(); ++I)
    if (I < Skip || I >= Skip + SkipLen)
      Out += Lines[I];
  return Out;
}

} // namespace

std::string vif::gen::minimizeSource(
    const std::string &Source,
    const std::function<bool(const std::string &)> &StillFails) {
  if (!StillFails(Source))
    return Source;
  std::string Best = Source;

  // Line-chunk pass: try deleting runs of ChunkLen lines, halving the
  // chunk size whenever a full sweep makes no progress.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    std::vector<std::string> Lines = splitLines(Best);
    for (size_t ChunkLen = Lines.size(); ChunkLen >= 1; ChunkLen /= 2) {
      bool ChunkProgress = true;
      while (ChunkProgress) {
        ChunkProgress = false;
        Lines = splitLines(Best);
        if (Lines.size() <= 1)
          break;
        for (size_t I = 0; I + 1 <= Lines.size(); I += ChunkLen) {
          size_t Len = std::min(ChunkLen, Lines.size() - I);
          std::string Candidate = joinAllBut(Lines, I, Len);
          if (Candidate.size() < Best.size() && StillFails(Candidate)) {
            Best = Candidate;
            Progress = ChunkProgress = true;
            break; // line indices shifted; re-split
          }
        }
      }
      if (ChunkLen == 1)
        break;
    }
  }

  // Character trim pass: shave bytes off either end (crash inputs often
  // minimize to a short prefix no line boundary exposes).
  for (bool Trimmed = true; Trimmed;) {
    Trimmed = false;
    for (size_t Cut : {Best.size() / 2, Best.size() / 4, size_t(1)}) {
      if (Cut == 0 || Cut >= Best.size())
        continue;
      std::string Front = Best.substr(Cut);
      if (StillFails(Front)) {
        Best = Front;
        Trimmed = true;
        break;
      }
      std::string Back = Best.substr(0, Best.size() - Cut);
      if (StillFails(Back)) {
        Best = Back;
        Trimmed = true;
        break;
      }
    }
  }
  return Best;
}
