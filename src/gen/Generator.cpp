//===- gen/Generator.cpp --------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"

#include <cassert>
#include <sstream>
#include <vector>

using namespace vif;
using namespace vif::gen;

namespace {

/// SplitMix64: deterministic and independent of the standard library, so
/// generated designs are byte-identical across platforms (the same PRNG
/// the synthetic workload families use).
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  unsigned below(unsigned N) {
    assert(N > 0 && "empty range");
    return static_cast<unsigned>(next() % N);
  }
  bool chance(unsigned Percent) { return below(100) < Percent; }
};

/// A declared scalar object (signal, port or process variable).
struct ScalarObj {
  std::string Name;
  bool Readable;
  bool Writable;
  bool IsSignal;
};

/// A declared vector object with its exact range.
struct VectorObj {
  std::string Name;
  int Left;
  int Right;
  bool Downto;
  bool Readable;
  bool Writable;
  bool IsSignal;

  unsigned width() const {
    return static_cast<unsigned>(Downto ? Left - Right : Right - Left) + 1;
  }
};

/// Everything nameable at one point of the design, split by kind so the
/// expression generator can honor mode rules (never read an out port,
/// never assign an in port, no variables in concurrent statements).
struct Scope {
  std::vector<ScalarObj> Scalars;
  std::vector<VectorObj> Vectors;
};

class DesignWriter {
public:
  DesignWriter(const GenOptions &Opts, Rng &R) : Opts(Opts), R(R) {}

  std::string generate();

private:
  // Expression generation. AllowVars distinguishes process bodies from
  // concurrent statements (whose expressions may only name signals).
  std::string scalarExpr(const Scope &S, unsigned Depth, bool AllowVars);
  std::string vectorExpr(const Scope &S, unsigned Width, unsigned Depth,
                         bool AllowVars);
  std::string condition(const Scope &S, bool AllowVars) {
    return scalarExpr(S, 1, AllowVars);
  }

  const ScalarObj *pickScalar(const Scope &S, bool ForWrite, bool AllowVars,
                              bool SignalOnly);
  const VectorObj *pickVector(const Scope &S, bool ForWrite, bool AllowVars,
                              unsigned MinWidth);

  // Statement generation.
  void stmt(std::ostream &OS, const Scope &S, unsigned Depth,
            unsigned Indent);
  void stmtList(std::ostream &OS, const Scope &S, unsigned Count,
                unsigned Depth, unsigned Indent);
  void assignment(std::ostream &OS, const Scope &S, unsigned Indent);
  void waitStmt(std::ostream &OS, const Scope &S, unsigned Indent);

  // Design-unit generation.
  void entity(std::ostream &OS, const std::string &Name, Scope &Ports);
  void architecture(std::ostream &OS, const std::string &ArchName,
                    const std::string &EntityName, const Scope &Ports,
                    const std::string &Prefix, unsigned Processes);
  void process(std::ostream &OS, const Scope &ArchScope,
               const std::string &Label, unsigned Stmts);
  void concurrentAssign(std::ostream &OS, const Scope &S, unsigned Indent);
  void blockStmt(std::ostream &OS, const Scope &ArchScope,
                 const std::string &Prefix, unsigned Index);

  VectorObj declareVector(const std::string &Name, bool Readable,
                          bool Writable, bool IsSignal);
  std::string vectorLiteral(unsigned Width);
  std::string typeOf(const VectorObj &V) const;
  std::string sliceOf(const VectorObj &V, unsigned Width);

  const GenOptions &Opts;
  Rng &R;
  unsigned NextVar = 0;
};

VectorObj DesignWriter::declareVector(const std::string &Name, bool Readable,
                                      bool Writable, bool IsSignal) {
  static const unsigned Widths[] = {2, 4, 8};
  unsigned W = Widths[R.below(3)];
  VectorObj V;
  V.Name = Name;
  V.Downto = R.chance(70);
  int Base = static_cast<int>(R.below(3));
  if (V.Downto) {
    V.Right = Base;
    V.Left = Base + static_cast<int>(W) - 1;
  } else {
    V.Left = Base;
    V.Right = Base + static_cast<int>(W) - 1;
  }
  V.Readable = Readable;
  V.Writable = Writable;
  V.IsSignal = IsSignal;
  return V;
}

std::string DesignWriter::typeOf(const VectorObj &V) const {
  std::ostringstream OS;
  OS << "std_logic_vector(" << V.Left << (V.Downto ? " downto " : " to ")
     << V.Right << ")";
  return OS.str();
}

std::string DesignWriter::vectorLiteral(unsigned Width) {
  std::string Lit(Width, '0');
  for (char &C : Lit)
    C = R.chance(50) ? '1' : '0';
  return "\"" + Lit + "\"";
}

/// A width-\p Width slice of \p V, in V's declared direction and range.
std::string DesignWriter::sliceOf(const VectorObj &V, unsigned Width) {
  assert(V.width() >= Width && "slice wider than its vector");
  unsigned Slack = V.width() - Width;
  unsigned Off = Slack ? R.below(Slack + 1) : 0;
  std::ostringstream OS;
  if (V.Downto) {
    int High = V.Right + static_cast<int>(Off + Width) - 1;
    OS << V.Name << "(" << High << " downto "
       << High - static_cast<int>(Width) + 1 << ")";
  } else {
    int Low = V.Left + static_cast<int>(Off);
    OS << V.Name << "(" << Low << " to "
       << Low + static_cast<int>(Width) - 1 << ")";
  }
  return OS.str();
}

const ScalarObj *DesignWriter::pickScalar(const Scope &S, bool ForWrite,
                                          bool AllowVars, bool SignalOnly) {
  std::vector<const ScalarObj *> Pool;
  for (const ScalarObj &O : S.Scalars) {
    if (ForWrite ? !O.Writable : !O.Readable)
      continue;
    if (!O.IsSignal && (!AllowVars || SignalOnly))
      continue;
    Pool.push_back(&O);
  }
  if (Pool.empty())
    return nullptr;
  return Pool[R.below(static_cast<unsigned>(Pool.size()))];
}

const VectorObj *DesignWriter::pickVector(const Scope &S, bool ForWrite,
                                          bool AllowVars,
                                          unsigned MinWidth) {
  std::vector<const VectorObj *> Pool;
  for (const VectorObj &O : S.Vectors) {
    if (ForWrite ? !O.Writable : !O.Readable)
      continue;
    if (!O.IsSignal && !AllowVars)
      continue;
    if (O.width() < MinWidth)
      continue;
    Pool.push_back(&O);
  }
  if (Pool.empty())
    return nullptr;
  return Pool[R.below(static_cast<unsigned>(Pool.size()))];
}

std::string DesignWriter::scalarExpr(const Scope &S, unsigned Depth,
                                     bool AllowVars) {
  // Leaves: literals and readable scalar names ('clk' always exists, so a
  // name is always available).
  if (Depth == 0 || R.chance(35)) {
    if (R.chance(25))
      return R.chance(50) ? "'1'" : "'0'";
    if (const ScalarObj *O = pickScalar(S, false, AllowVars, false))
      return O->Name;
    return R.chance(50) ? "'1'" : "'0'";
  }
  switch (R.below(6)) {
  case 0:
    return "not " + scalarExpr(S, Depth - 1, AllowVars);
  case 1:
    return "(" + scalarExpr(S, Depth - 1, AllowVars) + ")";
  case 2: { // equal-width vector comparison yields std_logic
    static const char *RelOps[] = {"=", "/=", "<", "<=", ">", ">="};
    const char *Op = RelOps[R.below(6)];
    if (const VectorObj *V = pickVector(S, false, AllowVars, 2)) {
      unsigned W = V->width();
      return "(" + sliceOf(*V, W) + " " + Op + " " +
             vectorExpr(S, W, Depth - 1, AllowVars) + ")";
    }
    return "(" + scalarExpr(S, 0, AllowVars) + " " + Op + " " +
           scalarExpr(S, 0, AllowVars) + ")";
  }
  default: {
    static const char *LogicOps[] = {"and", "or", "xor", "nand", "nor",
                                     "xnor"};
    return "(" + scalarExpr(S, Depth - 1, AllowVars) + " " +
           LogicOps[R.below(6)] + " " + scalarExpr(S, Depth - 1, AllowVars) +
           ")";
  }
  }
}

std::string DesignWriter::vectorExpr(const Scope &S, unsigned Width,
                                     unsigned Depth, bool AllowVars) {
  const VectorObj *V = pickVector(S, false, AllowVars, Width);
  if (Depth == 0 || R.chance(30))
    return V ? sliceOf(*V, Width) : vectorLiteral(Width);
  switch (R.below(5)) {
  case 0:
    return "not " + vectorExpr(S, Width, Depth - 1, AllowVars);
  case 1: { // width-preserving logic op
    static const char *LogicOps[] = {"and", "or", "xor"};
    return "(" + vectorExpr(S, Width, Depth - 1, AllowVars) + " " +
           LogicOps[R.below(3)] + " " +
           vectorExpr(S, Width, Depth - 1, AllowVars) + ")";
  }
  case 2: { // equal-width arithmetic
    static const char *ArithOps[] = {"+", "-", "*"};
    return "(" + vectorExpr(S, Width, Depth - 1, AllowVars) + " " +
           ArithOps[R.below(3)] + " " +
           vectorExpr(S, Width, Depth - 1, AllowVars) + ")";
  }
  case 3: { // concatenation; scalar operands carry width 1
    if (Width < 2)
      return V ? sliceOf(*V, Width) : vectorLiteral(Width);
    unsigned W1 = 1 + R.below(Width - 1);
    unsigned W2 = Width - W1;
    std::string L = W1 == 1 ? scalarExpr(S, 0, AllowVars)
                            : vectorExpr(S, W1, Depth - 1, AllowVars);
    std::string Rhs = W2 == 1 ? scalarExpr(S, 0, AllowVars)
                              : vectorExpr(S, W2, Depth - 1, AllowVars);
    return "(" + L + " & " + Rhs + ")";
  }
  default:
    return V ? sliceOf(*V, Width) : vectorLiteral(Width);
  }
}

void DesignWriter::assignment(std::ostream &OS, const Scope &S,
                              unsigned Indent) {
  std::string Pad(Indent, ' ');
  // Vector targets (whole object or a slice) now and then; scalar targets
  // otherwise. Signal vs variable targets pick their own operator.
  if (R.chance(30)) {
    if (const VectorObj *V = pickVector(S, true, true, 1)) {
      const char *Op = V->IsSignal ? " <= " : " := ";
      if (R.chance(40) && V->width() >= 2) {
        unsigned W = 1 + R.below(V->width() - 1);
        OS << Pad << sliceOf(*V, W) << Op << vectorExpr(S, W, 1, true)
           << ";\n";
      } else {
        OS << Pad << V->Name << Op << vectorExpr(S, V->width(), 1, true)
           << ";\n";
      }
      return;
    }
  }
  bool WantSignal = R.chance(50);
  const ScalarObj *T = pickScalar(S, true, true, WantSignal);
  if (!T)
    T = pickScalar(S, true, true, false);
  if (!T) { // no writable scalar in scope at all: degrade to null
    OS << Pad << "null;\n";
    return;
  }
  OS << Pad << T->Name << (T->IsSignal ? " <= " : " := ")
     << scalarExpr(S, 1 + R.below(2), true) << ";\n";
}

void DesignWriter::waitStmt(std::ostream &OS, const Scope &S,
                            unsigned Indent) {
  std::string Pad(Indent, ' ');
  // Sensitivity lists name readable signals only; 'clk' guarantees one.
  std::vector<const ScalarObj *> Sigs;
  for (const ScalarObj &O : S.Scalars)
    if (O.IsSignal && O.Readable)
      Sigs.push_back(&O);
  OS << Pad << "wait";
  if (!Sigs.empty() && R.chance(85)) {
    unsigned N = 1 + R.below(3);
    OS << " on ";
    for (unsigned I = 0; I < N; ++I)
      OS << (I ? ", " : "")
         << Sigs[R.below(static_cast<unsigned>(Sigs.size()))]->Name;
  }
  if (R.chance(40))
    OS << " until " << condition(S, true);
  OS << ";\n";
}

void DesignWriter::stmt(std::ostream &OS, const Scope &S, unsigned Depth,
                        unsigned Indent) {
  std::string Pad(Indent, ' ');
  unsigned Kind = R.below(Depth > 0 ? 10 : 6);
  switch (Kind) {
  case 6:
  case 7: { // if / elsif / else
    OS << Pad << "if " << condition(S, true) << " then\n";
    stmtList(OS, S, 1 + R.below(2), Depth - 1, Indent + 2);
    if (R.chance(30)) {
      OS << Pad << "elsif " << condition(S, true) << " then\n";
      stmtList(OS, S, 1 + R.below(2), Depth - 1, Indent + 2);
    }
    if (R.chance(60)) {
      OS << Pad << "else\n";
      stmtList(OS, S, 1 + R.below(2), Depth - 1, Indent + 2);
    }
    OS << Pad << "end if;\n";
    return;
  }
  case 8: { // while loop
    OS << Pad << "while " << condition(S, true) << " loop\n";
    stmtList(OS, S, 1 + R.below(2), Depth - 1, Indent + 2);
    OS << Pad << "end loop;\n";
    return;
  }
  case 9: // nested wait inside control flow is covered by case 4 below
  case 4:
    waitStmt(OS, S, Indent);
    return;
  case 5:
    if (R.chance(30)) {
      OS << Pad << "null;\n";
      return;
    }
    assignment(OS, S, Indent);
    return;
  default:
    assignment(OS, S, Indent);
    return;
  }
}

void DesignWriter::stmtList(std::ostream &OS, const Scope &S, unsigned Count,
                            unsigned Depth, unsigned Indent) {
  for (unsigned I = 0; I < Count; ++I)
    stmt(OS, S, Depth, Indent);
}

void DesignWriter::process(std::ostream &OS, const Scope &ArchScope,
                           const std::string &Label, unsigned Stmts) {
  Scope S = ArchScope;
  OS << "  " << Label << " : process\n";
  unsigned NumScalarVars = 1 + R.below(3);
  for (unsigned V = 0; V < NumScalarVars; ++V) {
    std::string Name = "v_" + std::to_string(NextVar++);
    OS << "    variable " << Name << " : std_logic";
    if (R.chance(60))
      OS << " := " << (R.chance(50) ? "'1'" : "'0'");
    OS << ";\n";
    S.Scalars.push_back({Name, true, true, false});
  }
  if (R.chance(50)) {
    std::string Name = "vv_" + std::to_string(NextVar++);
    VectorObj V = declareVector(Name, true, true, false);
    OS << "    variable " << Name << " : " << typeOf(V);
    if (R.chance(50))
      OS << " := " << vectorLiteral(V.width());
    OS << ";\n";
    S.Vectors.push_back(V);
  }
  OS << "  begin\n";
  stmtList(OS, S, Stmts, Opts.MaxDepth, 4);
  // Every process parks on the clock so generated designs also simulate
  // without spinning (the analyses do not require it).
  OS << "    wait on clk;\n";
  OS << "  end process " << Label << ";\n";
}

void DesignWriter::concurrentAssign(std::ostream &OS, const Scope &S,
                                    unsigned Indent) {
  std::string Pad(Indent, ' ');
  if (R.chance(25)) {
    if (const VectorObj *V = pickVector(S, true, false, 1)) {
      OS << Pad << V->Name << " <= "
         << vectorExpr(S, V->width(), 1 + R.below(2), false) << ";\n";
      return;
    }
  }
  if (const ScalarObj *T = pickScalar(S, true, false, true))
    OS << Pad << T->Name << " <= " << scalarExpr(S, 1 + R.below(2), false)
       << ";\n";
}

void DesignWriter::blockStmt(std::ostream &OS, const Scope &ArchScope,
                             const std::string &Prefix, unsigned Index) {
  Scope S = ArchScope;
  std::string Label = Prefix + "b_" + std::to_string(Index);
  OS << "  " << Label << " : block\n";
  std::string Local = Prefix + "bs_" + std::to_string(Index);
  OS << "    signal " << Local << " : std_logic;\n";
  S.Scalars.push_back({Local, true, true, true});
  OS << "  begin\n";
  concurrentAssign(OS, S, 4);
  if (R.chance(60))
    process(OS, S, Label + "_p", 1 + Opts.StmtsPerProcess / 2);
  OS << "  end block " << Label << ";\n";
}

void DesignWriter::entity(std::ostream &OS, const std::string &Name,
                          Scope &Ports) {
  OS << "entity " << Name << " is\n  port(\n";
  std::vector<std::string> Lines;
  Lines.push_back("clk : in std_logic");
  Ports.Scalars.push_back({"clk", true, false, true});
  for (unsigned I = 0; I < Opts.InPorts; ++I) {
    std::string N = Name + "_i_" + std::to_string(I);
    Lines.push_back(N + " : in std_logic");
    Ports.Scalars.push_back({N, true, false, true});
  }
  for (unsigned I = 0; I < Opts.InoutPorts; ++I) {
    std::string N = Name + "_io_" + std::to_string(I);
    Lines.push_back(N + " : inout std_logic");
    Ports.Scalars.push_back({N, true, true, true});
  }
  for (unsigned I = 0; I < Opts.VectorPorts; ++I) {
    std::string N = Name + "_vp_" + std::to_string(I);
    VectorObj V = declareVector(N, true, true, true);
    switch (R.below(3)) {
    case 0:
      V.Writable = false;
      Lines.push_back(N + " : in " + typeOf(V));
      break;
    case 1:
      V.Readable = false;
      Lines.push_back(N + " : out " + typeOf(V));
      break;
    default:
      Lines.push_back(N + " : inout " + typeOf(V));
      break;
    }
    Ports.Vectors.push_back(V);
  }
  for (unsigned I = 0; I < Opts.OutPorts; ++I) {
    std::string N = Name + "_o_" + std::to_string(I);
    Lines.push_back(N + " : out std_logic");
    Ports.Scalars.push_back({N, false, true, true});
  }
  for (size_t I = 0; I < Lines.size(); ++I)
    OS << "    " << Lines[I] << (I + 1 < Lines.size() ? ";" : "") << "\n";
  OS << "  );\nend " << Name << ";\n\n";
}

void DesignWriter::architecture(std::ostream &OS, const std::string &ArchName,
                                const std::string &EntityName,
                                const Scope &Ports,
                                const std::string &Prefix,
                                unsigned Processes) {
  Scope S = Ports;
  OS << "architecture " << ArchName << " of " << EntityName << " is\n";
  for (unsigned I = 0; I < Opts.ScalarSignals; ++I) {
    std::string N = Prefix + "s_" + std::to_string(I);
    OS << "  signal " << N << " : std_logic";
    if (R.chance(50))
      OS << " := " << (R.chance(50) ? "'1'" : "'0'");
    OS << ";\n";
    S.Scalars.push_back({N, true, true, true});
  }
  for (unsigned I = 0; I < Opts.VectorSignals; ++I) {
    std::string N = Prefix + "sv_" + std::to_string(I);
    VectorObj V = declareVector(N, true, true, true);
    OS << "  signal " << N << " : " << typeOf(V);
    if (R.chance(40))
      OS << " := " << vectorLiteral(V.width());
    OS << ";\n";
    S.Vectors.push_back(V);
  }
  OS << "begin\n";
  for (unsigned I = 0; I < Opts.ConcAssigns; ++I)
    concurrentAssign(OS, S, 2);
  for (unsigned I = 0; I < Opts.Blocks; ++I)
    blockStmt(OS, S, Prefix, I);
  for (unsigned P = 0; P < Processes; ++P)
    process(OS, S, Prefix + "p_" + std::to_string(P),
            1 + R.below(Opts.StmtsPerProcess + 1));
  // Drive every out port so the interface has observable flows (an
  // undriven out port is legal but analytically inert).
  for (const ScalarObj &O : S.Scalars)
    if (!O.Readable && O.Writable)
      OS << "  " << O.Name << " <= " << scalarExpr(S, 1, false) << ";\n";
  for (const VectorObj &V : S.Vectors)
    if (!V.Readable && V.Writable)
      OS << "  " << V.Name << " <= " << vectorExpr(S, V.width(), 1, false)
         << ";\n";
  OS << "end " << ArchName << ";\n";
}

std::string DesignWriter::generate() {
  std::ostringstream OS;
  OS << "-- generated by vifc-fuzz, seed " << Opts.Seed << "\n";
  Scope Ports;
  entity(OS, "gen0", Ports);
  architecture(OS, "a0", "gen0", Ports, "", Opts.Processes);
  if (Opts.SecondArchitecture) {
    OS << "\n";
    // Never elaborated (the driver picks the first architecture), but
    // kept fully valid: the parser and any future multi-arch elaboration
    // see a second complete body over the same entity interface.
    architecture(OS, "a1", "gen0", Ports, "alt_",
                 1 + Opts.Processes / 2);
  }
  for (unsigned E = 0; E < Opts.ExtraEntities; ++E) {
    OS << "\n";
    std::string Name = "gen" + std::to_string(E + 1);
    Scope ExtraPorts;
    entity(OS, Name, ExtraPorts);
    architecture(OS, "a0_" + Name, Name, ExtraPorts,
                 Name + "_", 1);
  }
  return OS.str();
}

} // namespace

GenOptions vif::gen::designOptions(uint64_t Seed) {
  // A separate PRNG stream from the one generateDesign draws on, so size
  // selection never perturbs content decisions.
  Rng R(Seed ^ 0xa5a5a5a5a5a5a5a5ull);
  GenOptions O;
  O.Seed = Seed;
  bool Medium = R.below(8) == 0;
  O.Processes = Medium ? 6 + R.below(6) : 1 + R.below(4);
  O.StmtsPerProcess = Medium ? 16 + R.below(16) : 3 + R.below(10);
  O.MaxDepth = 1 + R.below(3);
  O.InPorts = 1 + R.below(3);
  O.OutPorts = 1 + R.below(2);
  O.InoutPorts = R.below(2);
  O.VectorPorts = R.below(2);
  O.ScalarSignals = Medium ? 6 + R.below(6) : 2 + R.below(4);
  O.VectorSignals = R.below(3);
  O.ConcAssigns = R.below(3);
  O.Blocks = R.below(2);
  O.SecondArchitecture = R.below(4) == 0;
  O.ExtraEntities = R.below(4) == 0 ? 1 : 0;
  return O;
}

std::string vif::gen::generateDesign(const GenOptions &Opts) {
  Rng R(Opts.Seed);
  DesignWriter W(Opts, R);
  return W.generate();
}

std::string vif::gen::generateDesign(uint64_t Seed) {
  return generateDesign(designOptions(Seed));
}
