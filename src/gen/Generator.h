//===- gen/Generator.h - Randomized VHDL1 design generator ------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of randomized-but-valid VHDL1 designs for stress and
/// differential fuzzing (DESIGN.md, "Testing strategy"). Unlike the small
/// fixed families in workloads/Synthetic.h, the output sweeps the whole
/// grammar the parser and elaborator accept: scalar and vector ports of
/// every mode, architecture and block-local signals, nested if/elsif/else
/// and while loops, wait statements with multi-signal sensitivity lists
/// and until conditions, slice reads and slice assignment targets,
/// concatenations, concurrent assignments, and multi-entity /
/// multi-architecture design files.
///
/// Designs are valid by construction: the generator tracks every declared
/// object with its type and mode and only emits reads of readable objects,
/// writes to writable ones, and width-correct expressions, so
/// parse + elaborate must succeed for every seed — the fuzz driver treats
/// any diagnostic as a generator bug. All randomness comes from a
/// SplitMix64 stream seeded explicitly; the same (seed, options) pair
/// yields byte-identical source on every platform, which is what makes
/// `vifc-fuzz --seed N` a complete reproducer.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_GEN_GENERATOR_H
#define VIF_GEN_GENERATOR_H

#include <cstdint>
#include <string>

namespace vif {
namespace gen {

/// Size knobs for one generated design. Everything is an upper-bound-ish
/// target, not an exact count: the generator may emit slightly more (the
/// clk port, out-port driver assignments) or fewer (empty statement lists
/// collapse) syntax elements.
struct GenOptions {
  uint64_t Seed = 1;

  unsigned Processes = 3;       ///< processes in the elaborated architecture
  unsigned StmtsPerProcess = 8; ///< sequential statements per process body
  unsigned MaxDepth = 2;        ///< nesting budget for if/while

  unsigned InPorts = 2;    ///< scalar in-ports besides clk
  unsigned OutPorts = 1;   ///< scalar out-ports
  unsigned InoutPorts = 1; ///< scalar inout-ports
  unsigned VectorPorts = 1;///< vector ports (random modes)

  unsigned ScalarSignals = 4; ///< architecture-level std_logic signals
  unsigned VectorSignals = 2; ///< architecture-level std_logic_vector signals
  unsigned ConcAssigns = 2;   ///< concurrent signal assignments
  unsigned Blocks = 1;        ///< block statements with local signals

  /// Emit a second, never-elaborated architecture of the main entity.
  bool SecondArchitecture = false;
  /// Extra entity/architecture pairs after the main one (parsed, not
  /// elaborated — the driver always analyzes the first architecture).
  unsigned ExtraEntities = 0;
};

/// Derives a size mix from \p Seed alone: mostly small designs with the
/// occasional medium one (every 8th seed scales up), so a plain seed sweep
/// covers the size spectrum the fuzz smoke needs.
GenOptions designOptions(uint64_t Seed);

/// Generates one valid-by-construction design file.
std::string generateDesign(const GenOptions &Opts);

/// Shorthand: generateDesign(designOptions(Seed)).
std::string generateDesign(uint64_t Seed);

} // namespace gen
} // namespace vif

#endif // VIF_GEN_GENERATOR_H
