//===- gen/Minimizer.h - Greedy failing-input reduction ---------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small delta-debugging style reducer for failing fuzz inputs. Given a
/// source and a predicate that re-runs the failing check, it greedily
/// deletes line chunks (halves, then quarters, ... down to single lines)
/// as long as the predicate still reports failure, then finishes with a
/// character-level trim pass. It is deliberately grammar-unaware: for
/// oracle disagreements the predicate includes parse+elaborate success,
/// so only still-valid reductions survive; for parser crashes any byte
/// soup that still crashes is fair game.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_GEN_MINIMIZER_H
#define VIF_GEN_MINIMIZER_H

#include <functional>
#include <string>

namespace vif {
namespace gen {

/// Returns the smallest variant of \p Source (in the greedy search space)
/// for which \p StillFails returns true. \p StillFails is assumed to be
/// deterministic and true for \p Source itself; if it is not, \p Source
/// is returned unchanged.
std::string minimizeSource(const std::string &Source,
                           const std::function<bool(const std::string &)>
                               &StillFails);

} // namespace gen
} // namespace vif

#endif // VIF_GEN_MINIMIZER_H
