//===- gen/Mutator.cpp ----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "gen/Mutator.h"

#include <algorithm>
#include <cassert>

using namespace vif;
using namespace vif::gen;

namespace {

struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  size_t below(size_t N) {
    assert(N > 0 && "empty range");
    return static_cast<size_t>(next() % N);
  }
};

/// Tokens spliced into the stream: every keyword and operator the lexer
/// knows, plus a few pathological fragments (unterminated literals, long
/// digit runs, lone quotes) that historically tickle error recovery.
const char *Lexicon[] = {
    "entity",   "architecture", "process", "begin",  "end",    "if",
    "elsif",    "else",         "then",    "while",  "loop",   "wait",
    "on",       "until",        "signal",  "variable", "port", "in",
    "out",      "inout",        "block",   "of",     "is",     "null",
    "and",      "or",           "nand",    "nor",    "xor",    "xnor",
    "not",      "downto",       "to",      "std_logic", "std_logic_vector",
    "<=",       ":=",           "=",       "/=",     "<",      ">",
    ">=",       "&",            "+",       "-",      "*",      "(",
    ")",        ";",            ":",       ",",      "'",      "\"",
    "'1'",      "'0'",          "\"0101\"", "--",    "'x",     "\"unterminated",
    "9999999999999999999999999999", "123",  "0",
};

} // namespace

std::string vif::gen::mutateSource(const std::string &Source,
                                   const MutateOptions &Opts) {
  Rng R(Opts.Seed ^ 0xfeedfacecafebeefull);
  std::string S = Source;
  for (unsigned M = 0; M < Opts.Mutations; ++M) {
    if (S.empty()) {
      S = Lexicon[R.below(std::size(Lexicon))];
      continue;
    }
    switch (R.below(6)) {
    case 0: { // truncate at a random point
      S.resize(R.below(S.size() + 1));
      break;
    }
    case 1: { // delete a range
      size_t Begin = R.below(S.size());
      size_t Len = 1 + R.below(std::min<size_t>(S.size() - Begin, 64));
      S.erase(Begin, Len);
      break;
    }
    case 2: { // duplicate a range elsewhere
      size_t Begin = R.below(S.size());
      size_t Len = 1 + R.below(std::min<size_t>(S.size() - Begin, 256));
      std::string Chunk = S.substr(Begin, Len);
      S.insert(R.below(S.size() + 1), Chunk);
      break;
    }
    case 3: { // splice lexicon tokens
      size_t N = 1 + R.below(4);
      for (size_t I = 0; I < N; ++I) {
        std::string Tok = Lexicon[R.below(std::size(Lexicon))];
        S.insert(R.below(S.size() + 1), " " + Tok + " ");
      }
      break;
    }
    case 4: { // flip random bytes (printable and not)
      size_t N = 1 + R.below(8);
      for (size_t I = 0; I < N; ++I)
        S[R.below(S.size())] = static_cast<char>(R.next() & 0xff);
      break;
    }
    default: { // swap two halves around a pivot
      size_t Pivot = R.below(S.size());
      S = S.substr(Pivot) + S.substr(0, Pivot);
      break;
    }
    }
  }
  if (S.size() > Opts.MaxSize)
    S.resize(Opts.MaxSize);
  return S;
}
