//===- gen/Mutator.h - Source corruption for robustness fuzzing -*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded destructive mutation of (usually generated) VHDL1 sources. The
/// output is almost never valid; the point is that the parser and
/// elaborator must diagnose it cleanly — exit-2 territory, never a crash,
/// hang, or sanitizer report. Mutations are byte- and token-level:
/// truncation, range deletion/duplication, token splicing from a lexicon
/// of keywords and operators, and raw byte flips.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_GEN_MUTATOR_H
#define VIF_GEN_MUTATOR_H

#include <cstdint>
#include <string>

namespace vif {
namespace gen {

struct MutateOptions {
  uint64_t Seed = 1;
  /// How many mutation operations to stack on one source.
  unsigned Mutations = 4;
  /// Hard cap on the mutated size; duplication-heavy seeds would
  /// otherwise grow sources (and parser recovery time) without bound.
  size_t MaxSize = 64 * 1024;
};

/// Applies MutateOptions::Mutations random corruptions to \p Source.
/// Deterministic in (Source, Opts); the result may even be valid by
/// accident — callers must accept both clean diagnosis and success.
std::string mutateSource(const std::string &Source, const MutateOptions &Opts);

} // namespace gen
} // namespace vif

#endif // VIF_GEN_MUTATOR_H
