//===- cfg/FlowIndex.h - CSR adjacency + RPO for one process -----*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compressed-sparse-row successor/predecessor adjacency over one process's
/// flow relation, in local label indices (positions within the ascending
/// ProcessCFG::Labels vector), built once per process and shared by the
/// dense rd solvers. Also provides a reverse postorder from init(ss), which
/// seeds the worklists so forward analyses see predecessors before
/// successors on the first sweep.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_CFG_FLOWINDEX_H
#define VIF_CFG_FLOWINDEX_H

#include "cfg/CFG.h"

#include <cstdint>
#include <vector>

namespace vif {

class FlowIndex {
public:
  explicit FlowIndex(const ProcessCFG &P);

  /// Number of labels in the process.
  size_t numLabels() const { return Labels.size(); }

  /// The global label at local index \p I.
  LabelId label(size_t I) const { return Labels[I]; }

  /// The local index of global label \p L (must belong to the process).
  uint32_t localOf(LabelId L) const;

  /// Successors / predecessors of local index \p I, as local indices.
  struct Range {
    const uint32_t *First;
    const uint32_t *Last;
    const uint32_t *begin() const { return First; }
    const uint32_t *end() const { return Last; }
    size_t size() const { return static_cast<size_t>(Last - First); }
    bool empty() const { return First == Last; }
  };
  Range succs(uint32_t I) const {
    return {SuccList.data() + SuccStart[I], SuccList.data() + SuccStart[I + 1]};
  }
  Range preds(uint32_t I) const {
    return {PredList.data() + PredStart[I], PredList.data() + PredStart[I + 1]};
  }

  /// All local indices in reverse postorder from init(ss); labels
  /// unreachable from init (possible in synthetic CFGs) follow in
  /// ascending order so every label is processed at least once.
  const std::vector<uint32_t> &rpo() const { return RPO; }

private:
  std::vector<LabelId> Labels; ///< ascending; == ProcessCFG::Labels
  std::vector<uint32_t> SuccStart, SuccList;
  std::vector<uint32_t> PredStart, PredList;
  std::vector<uint32_t> RPO;
};

} // namespace vif

#endif // VIF_CFG_FLOWINDEX_H
