//===- cfg/FlowIndex.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "cfg/FlowIndex.h"

#include <algorithm>

using namespace vif;

FlowIndex::FlowIndex(const ProcessCFG &P) : Labels(P.Labels) {
  size_t N = Labels.size();

  auto Local = [this](LabelId L) {
    auto It = std::lower_bound(Labels.begin(), Labels.end(), L);
    assert(It != Labels.end() && *It == L && "label not in process");
    return static_cast<uint32_t>(It - Labels.begin());
  };

  // Counting sort of the flow edges into CSR form, both directions.
  std::vector<uint32_t> SuccCount(N, 0), PredCount(N, 0);
  for (const auto &[From, To] : P.Flow) {
    ++SuccCount[Local(From)];
    ++PredCount[Local(To)];
  }
  SuccStart.assign(N + 1, 0);
  PredStart.assign(N + 1, 0);
  for (size_t I = 0; I < N; ++I) {
    SuccStart[I + 1] = SuccStart[I] + SuccCount[I];
    PredStart[I + 1] = PredStart[I] + PredCount[I];
  }
  SuccList.resize(P.Flow.size());
  PredList.resize(P.Flow.size());
  std::vector<uint32_t> SuccFill(SuccStart.begin(), SuccStart.end() - 1);
  std::vector<uint32_t> PredFill(PredStart.begin(), PredStart.end() - 1);
  for (const auto &[From, To] : P.Flow) {
    uint32_t F = Local(From), T = Local(To);
    SuccList[SuccFill[F]++] = T;
    PredList[PredFill[T]++] = F;
  }

  // Iterative postorder DFS from init, reversed; unreachable labels follow
  // in ascending order.
  std::vector<uint8_t> Visited(N, 0);
  std::vector<uint32_t> Post;
  Post.reserve(N);
  if (N != 0) {
    struct Frame {
      uint32_t Node;
      uint32_t NextSucc;
    };
    std::vector<Frame> Stack;
    uint32_t Init = Local(P.Init);
    Visited[Init] = 1;
    Stack.push_back({Init, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      Range S = succs(F.Node);
      if (F.NextSucc < S.size()) {
        uint32_t Next = S.First[F.NextSucc++];
        if (!Visited[Next]) {
          Visited[Next] = 1;
          Stack.push_back({Next, 0});
        }
      } else {
        Post.push_back(F.Node);
        Stack.pop_back();
      }
    }
  }
  RPO.assign(Post.rbegin(), Post.rend());
  for (uint32_t I = 0; I < N; ++I)
    if (!Visited[I])
      RPO.push_back(I);
}

uint32_t FlowIndex::localOf(LabelId L) const {
  auto It = std::lower_bound(Labels.begin(), Labels.end(), L);
  assert(It != Labels.end() && *It == L && "label not in process");
  return static_cast<uint32_t>(It - Labels.begin());
}
