//===- cfg/CFG.cpp --------------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"

#include "cfg/FlowIndex.h"
#include "support/Casting.h"

#include <algorithm>

using namespace vif;

// Out of line because the FlowIndex cache member needs the complete type.
ProgramCFG::ProgramCFG() = default;
ProgramCFG::~ProgramCFG() = default;
ProgramCFG::ProgramCFG(ProgramCFG &&) noexcept = default;
ProgramCFG &ProgramCFG::operator=(ProgramCFG &&) noexcept = default;

ProgramCFG::ProgramCFG(const ProgramCFG &O)
    : Blocks(O.Blocks), Procs(O.Procs), StmtLabels(O.StmtLabels),
      CondLabels(O.CondLabels) {
  ensureFlowIndexSlots();
}

ProgramCFG &ProgramCFG::operator=(const ProgramCFG &O) {
  Blocks = O.Blocks;
  Procs = O.Procs;
  StmtLabels = O.StmtLabels;
  CondLabels = O.CondLabels;
  ensureFlowIndexSlots();
  return *this;
}

const FlowIndex &ProgramCFG::flowIndex(unsigned ProcessId) const {
  assert(ProcessId < Procs.size() && "process id out of range");
  // The slot vector is pre-sized (ensureFlowIndexSlots is called whenever
  // Procs changes), so concurrent first accesses for *distinct* processes
  // — the parallel per-process rd solvers — each build into their own
  // slot and never reallocate the vector under one another.
  assert(FlowIndexes.size() == Procs.size() && "flow index slots not sized");
  if (!FlowIndexes[ProcessId])
    FlowIndexes[ProcessId] = std::make_unique<FlowIndex>(Procs[ProcessId]);
  return *FlowIndexes[ProcessId];
}

void ProgramCFG::ensureFlowIndexSlots() {
  FlowIndexes.clear();
  FlowIndexes.resize(Procs.size());
}

std::vector<LabelId> ProcessCFG::predecessors(LabelId L) const {
  std::vector<LabelId> Result;
  for (const auto &[From, To] : Flow)
    if (To == L)
      Result.push_back(From);
  return Result;
}

namespace {

/// Builds blocks and flow for one process, numbering labels from a shared
/// counter so labels stay program-unique.
class CFGBuilder {
public:
  CFGBuilder(std::vector<CFGBlock> &Blocks,
             std::map<const Stmt *, LabelId> &StmtLabels,
             std::map<const Stmt *, LabelId> &CondLabels, unsigned ProcessId)
      : Blocks(Blocks), StmtLabels(StmtLabels), CondLabels(CondLabels),
        ProcessId(ProcessId) {}

  struct Segment {
    LabelId Init;
    std::vector<LabelId> Finals;
  };

  Segment buildStmt(const Stmt &S, ProcessCFG &P) {
    switch (S.kind()) {
    case Stmt::Kind::Null:
      return leaf(S, CFGBlock::Kind::Null, P);
    case Stmt::Kind::VarAssign:
      return leaf(S, CFGBlock::Kind::VarAssign, P);
    case Stmt::Kind::SignalAssign:
      return leaf(S, CFGBlock::Kind::SignalAssign, P);
    case Stmt::Kind::Wait: {
      Segment Seg = leaf(S, CFGBlock::Kind::Wait, P);
      P.WaitLabels.push_back(Seg.Init);
      return Seg;
    }
    case Stmt::Kind::Compound: {
      const auto *C = cast<CompoundStmt>(&S);
      if (C->stmts().empty())
        // An empty sequence behaves like null; give it a real block so the
        // flow algebra stays total.
        return leaf(S, CFGBlock::Kind::Null, P);
      Segment Acc = buildStmt(*C->stmts().front(), P);
      for (size_t I = 1; I < C->stmts().size(); ++I) {
        Segment Next = buildStmt(*C->stmts()[I], P);
        for (LabelId F : Acc.Finals)
          P.Flow.emplace_back(F, Next.Init);
        Acc.Finals = std::move(Next.Finals);
      }
      return Acc;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      LabelId L = newBlock(CFGBlock::Kind::Cond, &S, &I->cond(), P);
      CondLabels[&S] = L;
      Segment Then = buildStmt(I->thenStmt(), P);
      Segment Else = buildStmt(I->elseStmt(), P);
      P.Flow.emplace_back(L, Then.Init);
      P.Flow.emplace_back(L, Else.Init);
      Segment Seg;
      Seg.Init = L;
      Seg.Finals = Then.Finals;
      Seg.Finals.insert(Seg.Finals.end(), Else.Finals.begin(),
                        Else.Finals.end());
      return Seg;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(&S);
      LabelId L = newBlock(CFGBlock::Kind::Cond, &S, &W->cond(), P);
      CondLabels[&S] = L;
      Segment Body = buildStmt(W->body(), P);
      P.Flow.emplace_back(L, Body.Init);
      for (LabelId F : Body.Finals)
        P.Flow.emplace_back(F, L);
      return Segment{L, {L}};
    }
    }
    // Unreachable; all kinds covered.
    return Segment{InitialLabel, {}};
  }

private:
  Segment leaf(const Stmt &S, CFGBlock::Kind K, ProcessCFG &P) {
    LabelId L = newBlock(K, &S, nullptr, P);
    StmtLabels[&S] = L;
    return Segment{L, {L}};
  }

  LabelId newBlock(CFGBlock::Kind K, const Stmt *S, const Expr *Cond,
                   ProcessCFG &P) {
    CFGBlock B;
    B.Label = static_cast<LabelId>(Blocks.size() + 1);
    B.K = K;
    B.S = S;
    B.Cond = Cond;
    B.ProcessId = ProcessId;
    Blocks.push_back(B);
    P.Labels.push_back(B.Label);
    return B.Label;
  }

  std::vector<CFGBlock> &Blocks;
  std::map<const Stmt *, LabelId> &StmtLabels;
  std::map<const Stmt *, LabelId> &CondLabels;
  unsigned ProcessId;
};

} // namespace

ProgramCFG ProgramCFG::build(const ElaboratedProgram &Program) {
  ProgramCFG CFG;
  for (const ElabProcess &Proc : Program.Processes) {
    ProcessCFG P;
    P.ProcessId = Proc.Id;
    CFGBuilder Builder(CFG.Blocks, CFG.StmtLabels, CFG.CondLabels, Proc.Id);
    CFGBuilder::Segment Seg = Builder.buildStmt(*Proc.Body, P);
    P.Init = Seg.Init;
    P.Finals = std::move(Seg.Finals);
    std::sort(P.Finals.begin(), P.Finals.end());
    std::sort(P.WaitLabels.begin(), P.WaitLabels.end());
    collectStmtObjects(*Proc.Body, P.FreeVars, P.FreeSigs);
    CFG.Procs.push_back(std::move(P));
  }
  CFG.ensureFlowIndexSlots();
  return CFG;
}

LabelId ProgramCFG::labelOf(const Stmt *S) const {
  auto It = StmtLabels.find(S);
  assert(It != StmtLabels.end() && "statement has no label");
  return It->second;
}

LabelId ProgramCFG::condLabelOf(const Stmt *S) const {
  auto It = CondLabels.find(S);
  assert(It != CondLabels.end() && "statement has no condition label");
  return It->second;
}

bool ProgramCFG::cfCompatible(LabelId A, LabelId B) const {
  if (!isWaitLabel(A) || !isWaitLabel(B))
    return false;
  // A tuple carries exactly one wait label per process, so two labels of the
  // same process co-occur only if they are the same label.
  if (processOf(A) == processOf(B))
    return A == B;
  return true;
}

std::vector<LabelId> ProgramCFG::allWaitLabels() const {
  std::vector<LabelId> Result;
  for (const ProcessCFG &P : Procs)
    Result.insert(Result.end(), P.WaitLabels.begin(), P.WaitLabels.end());
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<std::vector<LabelId>>
ProgramCFG::crossFlowTuples(size_t MaxTuples) const {
  // Processes without wait statements never participate in a
  // synchronization; cf ranges over the others.
  std::vector<const ProcessCFG *> Waiting;
  for (const ProcessCFG &P : Procs)
    if (!P.WaitLabels.empty())
      Waiting.push_back(&P);

  std::vector<std::vector<LabelId>> Tuples;
  if (Waiting.empty())
    return Tuples;

  size_t Count = 1;
  for (const ProcessCFG *P : Waiting) {
    Count *= P->WaitLabels.size();
    assert(Count <= MaxTuples && "cross-flow product too large; use the "
                                 "factored forms instead");
    (void)MaxTuples;
  }

  std::vector<size_t> Cursor(Waiting.size(), 0);
  for (;;) {
    std::vector<LabelId> Tuple;
    Tuple.reserve(Waiting.size());
    for (size_t I = 0; I < Waiting.size(); ++I)
      Tuple.push_back(Waiting[I]->WaitLabels[Cursor[I]]);
    Tuples.push_back(std::move(Tuple));
    // Odometer increment.
    size_t I = 0;
    for (; I < Waiting.size(); ++I) {
      if (++Cursor[I] < Waiting[I]->WaitLabels.size())
        break;
      Cursor[I] = 0;
    }
    if (I == Waiting.size())
      return Tuples;
  }
}
