//===- cfg/CFG.h - Labels, blocks and flow relations ------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The labeling scheme of paper Section 4 ("Common analysis domains"): every
/// elementary block — null, assignments, waits and the conditions of if and
/// while — gets a label that is unique across the whole program, so "to each
/// label there is a unique process identifier in which it occurs". Per
/// process we expose blocks(ss), flow(ss), init(ss) and the wait-label set
/// WS(ss); across processes the cross-flow relation cf, "the Cartesian
/// product of the set of labels of wait statements in each process".
///
/// cf is exponential when materialized; the analyses need only two
/// byproducts, both provided here in factored form:
///  * cfCompatible(l, l'): do l and l' occur together in some tuple? Since
///    components range independently, this holds iff both are wait labels
///    and they sit in different processes (or are the same label).
///  * quantifications of the form "⋃/⋂ over tuples through l" which the rd
///    module computes from per-process aggregates (see rd/ReachingDefs.cpp).
/// The explicit tuple enumeration is also implemented for small programs, so
/// tests can check the factored forms against the definition.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_CFG_CFG_H
#define VIF_CFG_CFG_H

#include "sema/Elaborator.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace vif {

class FlowIndex;

/// A program point label. Real blocks get labels 1..numLabels(); label 0 is
/// the paper's special "?" pseudo-label standing for "defined by the initial
/// value". Outgoing pseudo-labels l_{n•} (Table 9) are allocated above all
/// real labels by the ifa module.
using LabelId = uint32_t;

/// The paper's "?" label.
constexpr LabelId InitialLabel = 0;

/// One elementary block [B]^l.
struct CFGBlock {
  enum class Kind : uint8_t {
    Null,         ///< [null]^l
    VarAssign,    ///< [x := e]^l, possibly sliced
    SignalAssign, ///< [s <= e]^l, possibly sliced
    Wait,         ///< [wait on S until e]^l
    Cond,         ///< [e]^l — the test of an if or while
  };

  LabelId Label = InitialLabel;
  Kind K = Kind::Null;
  const Stmt *S = nullptr;  ///< owning statement (null for Cond of if/while? no: the If/While stmt)
  const Expr *Cond = nullptr; ///< the test expression for Cond blocks
  unsigned ProcessId = 0;

  bool isWait() const { return K == Kind::Wait; }
};

/// Flow facts for one process.
struct ProcessCFG {
  unsigned ProcessId = 0;
  LabelId Init = InitialLabel;           ///< init(ss)
  std::vector<LabelId> Finals;           ///< final(ss)
  std::vector<LabelId> Labels;           ///< all labels, ascending
  std::vector<std::pair<LabelId, LabelId>> Flow; ///< flow(ss)
  std::vector<LabelId> WaitLabels;       ///< WS(ss), ascending
  std::vector<unsigned> FreeVars;        ///< FV(ss), sorted ids
  std::vector<unsigned> FreeSigs;        ///< FS(ss), sorted ids

  /// Predecessors of \p L under Flow.
  std::vector<LabelId> predecessors(LabelId L) const;
};

/// Whole-program control flow facts.
class ProgramCFG {
public:
  ProgramCFG();
  ~ProgramCFG();
  ProgramCFG(ProgramCFG &&) noexcept;
  ProgramCFG &operator=(ProgramCFG &&) noexcept;
  /// Copies share no cache; the copy rebuilds its flow indices on demand.
  ProgramCFG(const ProgramCFG &O);
  ProgramCFG &operator=(const ProgramCFG &O);

  /// Builds the CFG for every process of \p Program. The program must have
  /// been elaborated without errors.
  static ProgramCFG build(const ElaboratedProgram &Program);

  const std::vector<ProcessCFG> &processes() const { return Procs; }
  const ProcessCFG &process(unsigned Id) const {
    assert(Id < Procs.size() && "process id out of range");
    return Procs[Id];
  }

  /// Total number of real labels; labels run 1..numLabels().
  size_t numLabels() const { return Blocks.size(); }

  const CFGBlock &block(LabelId L) const {
    assert(L >= 1 && L <= Blocks.size() && "label out of range");
    return Blocks[L - 1];
  }
  unsigned processOf(LabelId L) const { return block(L).ProcessId; }

  /// The label of an elementary statement block (assignment, wait, null).
  LabelId labelOf(const Stmt *S) const;
  /// The label of the condition block of an if or while statement.
  LabelId condLabelOf(const Stmt *S) const;

  /// True if wait labels \p A and \p B occur together in some cf tuple.
  bool cfCompatible(LabelId A, LabelId B) const;

  /// Whether \p L is a wait label (member of some WS(ss_i)).
  bool isWaitLabel(LabelId L) const { return block(L).isWait(); }

  /// All wait labels of the program, ascending (the paper's WS).
  std::vector<LabelId> allWaitLabels() const;

  /// Materializes cf, the Cartesian product of wait-label sets of processes
  /// that contain waits. Only for validation on small programs; asserts that
  /// the product has at most \p MaxTuples elements.
  std::vector<std::vector<LabelId>>
  crossFlowTuples(size_t MaxTuples = 1u << 20) const;

  /// The CSR successor/predecessor adjacency + reverse postorder of
  /// process \p ProcessId (cfg/FlowIndex.h), built on first use and cached
  /// so the dense rd solvers share one copy per design. The slot vector is
  /// pre-sized, so concurrent first accesses are safe as long as they name
  /// *distinct* processes — exactly the access pattern of the parallel
  /// per-process rd solvers; two threads racing on the same process id
  /// would double-build one slot.
  const FlowIndex &flowIndex(unsigned ProcessId) const;

private:
  /// Resets the per-process FlowIndex cache to one empty slot per
  /// process; must be called whenever Procs changes.
  void ensureFlowIndexSlots();

  std::vector<CFGBlock> Blocks; ///< Blocks[l-1] is the block labeled l
  std::vector<ProcessCFG> Procs;
  std::map<const Stmt *, LabelId> StmtLabels;
  std::map<const Stmt *, LabelId> CondLabels;
  mutable std::vector<std::unique_ptr<FlowIndex>> FlowIndexes;
};

} // namespace vif

#endif // VIF_CFG_CFG_H
