//===- rd/PairSet.h - Analysis domain P(Resource x Label) -------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Reaching Definitions analyses operate over complete lattices
/// P(Sig x Lab) and P((Var ∪ Sig) x Lab) (paper Section 4). Resource is a
/// tagged variable/signal id — with additional incoming (n◦) and outgoing
/// (n•) decorations used by the improved Information Flow analysis of
/// Table 9 — and PairSet is a deterministic sorted-vector set of
/// (Resource, Label) pairs with the lattice operations, including the
/// paper's ⋂˙ (intersection with ⋂˙∅ = ∅).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_RD_PAIRSET_H
#define VIF_RD_PAIRSET_H

#include "ast/Expr.h"
#include "cfg/CFG.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vif {

/// A variable or signal (possibly decorated as incoming n◦ / outgoing n•)
/// packed into one word for cheap set operations.
class Resource {
public:
  enum class Kind : uint8_t {
    Variable = 0,
    Signal = 1,
    VariableIn = 2, ///< x◦
    SignalIn = 3,   ///< s◦
    VariableOut = 4, ///< x•
    SignalOut = 5,  ///< s•
  };

  Resource() : Bits(0) {}

  static Resource variable(unsigned Id) { return Resource(Kind::Variable, Id); }
  static Resource signal(unsigned Id) { return Resource(Kind::Signal, Id); }

  /// Rebuilds a resource from its raw() encoding. The closure and graph
  /// extraction hot paths carry resources as raw ids in dense vectors and
  /// only round-trip to Resource when materializing names.
  static Resource fromRaw(uint32_t Bits) {
    Resource R;
    R.Bits = Bits;
    return R;
  }

  static Resource fromRef(ObjectRef Ref) {
    assert(Ref.isResolved() && "resource from unresolved reference");
    return Ref.isVariable() ? variable(Ref.Id) : signal(Ref.Id);
  }

  Kind kind() const { return static_cast<Kind>(Bits >> 28); }
  unsigned id() const { return Bits & 0x0fffffff; }

  bool isVariable() const {
    Kind K = kind();
    return K == Kind::Variable || K == Kind::VariableIn ||
           K == Kind::VariableOut;
  }
  bool isSignal() const { return !isVariable(); }
  bool isIncoming() const {
    return kind() == Kind::VariableIn || kind() == Kind::SignalIn;
  }
  bool isOutgoing() const {
    return kind() == Kind::VariableOut || kind() == Kind::SignalOut;
  }
  bool isPlain() const { return !isIncoming() && !isOutgoing(); }

  /// The n◦ / n• decoration of this (plain) resource.
  Resource incoming() const {
    assert(isPlain() && "decorating a decorated resource");
    return Resource(isVariable() ? Kind::VariableIn : Kind::SignalIn, id());
  }
  Resource outgoing() const {
    assert(isPlain() && "decorating a decorated resource");
    return Resource(isVariable() ? Kind::VariableOut : Kind::SignalOut, id());
  }
  /// The plain resource underneath a decoration.
  Resource plain() const {
    return Resource(isVariable() ? Kind::Variable : Kind::Signal, id());
  }

  /// The display name: unique name of the object, with the paper's ◦ / •
  /// marks for incoming/outgoing decorations.
  std::string name(const ElaboratedProgram &Program) const;

  bool operator==(const Resource &O) const { return Bits == O.Bits; }
  bool operator!=(const Resource &O) const { return Bits != O.Bits; }
  bool operator<(const Resource &O) const { return Bits < O.Bits; }

  uint32_t raw() const { return Bits; }

private:
  Resource(Kind K, unsigned Id)
      : Bits((static_cast<uint32_t>(K) << 28) | Id) {
    assert(Id < (1u << 28) && "resource id overflow");
  }

  uint32_t Bits;
};

/// True if \p Name ends in the ◦ / • interface mark that Resource::name
/// appends for incoming/outgoing decorations. Shared by every consumer
/// that filters or merges interface nodes by name (graph restriction,
/// figure presentation) so no caller re-derives the suffix lengths.
bool hasInterfaceMark(std::string_view Name);

/// \p Name with one trailing ◦ / • mark removed (unchanged when unmarked).
std::string_view stripInterfaceMark(std::string_view Name);

/// One reaching definition: resource n was (maybe) last defined at label l;
/// l == InitialLabel is the paper's (n, ?).
struct DefPair {
  Resource N;
  LabelId L = InitialLabel;

  bool operator==(const DefPair &O) const { return N == O.N && L == O.L; }
  bool operator<(const DefPair &O) const {
    return N != O.N ? N < O.N : L < O.L;
  }
};

/// A deterministic set of DefPairs (sorted vector).
class PairSet {
public:
  PairSet() = default;

  bool insert(DefPair P);
  /// Appends \p P, which must be strictly greater than every present pair;
  /// the O(1) path for building a set in ascending order (dense
  /// materialization, Table 7 specialization).
  void append(DefPair P) {
    assert((Pairs.empty() || Pairs.back() < P) && "append out of order");
    Pairs.push_back(P);
  }
  bool contains(DefPair P) const;
  bool empty() const { return Pairs.empty(); }
  size_t size() const { return Pairs.size(); }

  /// this := this ∪ O; returns true if this grew.
  bool unionWith(const PairSet &O);
  /// this := this ∩ O.
  void intersectWith(const PairSet &O);
  /// this := this \ O.
  void subtract(const PairSet &O);

  /// The paper's ⋂˙: intersection of a family of sets, with ⋂˙∅ = ∅. This
  /// guarantees RD∩ ⊆ RD∪ for the least solution.
  static PairSet dottedIntersection(const std::vector<const PairSet *> &Sets);

  /// fst(D) = {n | (n, l) ∈ D}: the resources, deduplicated and sorted.
  std::vector<Resource> firstComponents() const;

  /// All pairs whose resource equals \p N.
  std::vector<DefPair> pairsFor(Resource N) const;

  /// The contiguous range of pairs whose resource equals \p N — the
  /// allocation-free form of pairsFor.
  std::pair<std::vector<DefPair>::const_iterator,
            std::vector<DefPair>::const_iterator>
  equalRange(Resource N) const;

  bool operator==(const PairSet &O) const { return Pairs == O.Pairs; }

  /// Heap footprint in bytes (cache byte-budget accounting).
  size_t memoryBytes() const { return Pairs.capacity() * sizeof(DefPair); }

  std::vector<DefPair>::const_iterator begin() const {
    return Pairs.begin();
  }
  std::vector<DefPair>::const_iterator end() const { return Pairs.end(); }

private:
  std::vector<DefPair> Pairs;
};

} // namespace vif

#endif // VIF_RD_PAIRSET_H
