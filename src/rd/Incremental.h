//===- rd/Incremental.h - Per-process artifact reuse ------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental layer makes the *process* the unit of caching. The
/// per-process fixpoints of Tables 4 and 5 depend only on
///
///  * the process's own statement slice (its labels, flow, blocks and the
///    variables/signals it touches) for Table 4, and
///  * additionally the factored cross-flow contributions of the *other*
///    processes' wait aggregates for Table 5,
///
/// so each solved ActiveProcessArtifact / RdProcessArtifact is keyed by a
/// canonical hash of exactly those inputs and retained in a
/// ProcessArtifactTable across re-analyses. Re-analyzing an edited design
/// re-solves only processes whose keys changed and recomposes the
/// whole-program ActiveSignalsResult / ReachingDefsResult from the
/// retained rows; the downstream Table 7 / Table 8 pipeline then reruns
/// over the recomposed inputs (ifa::composeInformationFlow).
///
/// Keying is in *global coordinates*: the slice hash covers the process's
/// global labels and resource ids (never source locations), so a hash
/// match guarantees the stored matrices' coordinates are valid verbatim.
/// Edits that shift labels or ids downstream simply miss and re-solve —
/// conservative, never wrong. Edits confined to one process's expressions
/// keep every other process's labels, so only the edited process misses.
///
/// The table can be backed by an ArtifactBlobStore (implemented on disk by
/// driver/ArtifactStore.cpp): lookups fall through to the store on a
/// memory miss and solved artifacts are written back, which is what lets a
/// fresh session skip the solvers entirely for previously-analyzed code.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_RD_INCREMENTAL_H
#define VIF_RD_INCREMENTAL_H

#include "rd/ReachingDefs.h"

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace vif {

/// A key → blob persistence interface for analysis artifacts. Implemented
/// by driver::ArtifactStore over a directory of files; the rd layer only
/// sees this interface (it must not depend on the driver). \p Kind is a
/// four-character tag ("actv", "rdpr", ...) namespacing the key space.
/// load returns false on any miss — absent, corrupt, or mismatched
/// entries are indistinguishable to the caller. Implementations must be
/// safe to call from multiple threads.
class ArtifactBlobStore {
public:
  virtual ~ArtifactBlobStore();
  virtual bool load(const char (&Kind)[5], uint64_t Key,
                    std::string &Payload) = 0;
  virtual void store(const char (&Kind)[5], uint64_t Key,
                     std::string_view Payload) = 0;
};

/// The canonical per-process slice hash: process \p P's global labels,
/// flow, block statements (target/value/condition structure, resolved
/// ids, wait-on sets) and read environment (free variables/signals and
/// the signal classes of the latter). Source locations are deliberately
/// excluded — edits elsewhere in the file shift them without changing the
/// analysis inputs. Returned vector is indexed by ProcessId.
std::vector<uint64_t> hashProcessSlices(const ElaboratedProgram &Program,
                                        const ProgramCFG &CFG);

/// Binary codecs for the per-process artifacts (the payloads stored
/// through ArtifactBlobStore). Decoders are bounds-checked and validate
/// shape invariants; they return false on any anomaly, which the table
/// treats as a miss.
std::string encodeActiveArtifact(const ActiveProcessArtifact &A);
bool decodeActiveArtifact(std::string_view Blob, ActiveProcessArtifact &A);
std::string encodeRdArtifact(const RdProcessArtifact &A);
bool decodeRdArtifact(std::string_view Blob, RdProcessArtifact &A);

/// A thread-safe, LRU-bounded in-memory table of per-process artifacts,
/// optionally backed by an ArtifactBlobStore. One table is shared by all
/// sessions of a SessionCache, so artifacts survive design-level
/// evictions and are reused across designs that share process slices.
class ProcessArtifactTable {
public:
  /// \p MaxEntries bounds the in-memory map (artifact structs are small —
  /// a few KB per process — so the default comfortably covers thousands
  /// of processes before evicting least-recently-used entries).
  explicit ProcessArtifactTable(size_t MaxEntries = 1u << 16);

  /// Attaches (or detaches, with nullptr) the on-disk backing store.
  /// Not synchronized against concurrent find/insert — wire it up before
  /// the table is shared.
  void setBacking(ArtifactBlobStore *S) { Backing = S; }

  std::shared_ptr<const ActiveProcessArtifact> findActive(uint64_t Key);
  void insertActive(uint64_t Key,
                    std::shared_ptr<const ActiveProcessArtifact> A);
  std::shared_ptr<const RdProcessArtifact> findRd(uint64_t Key);
  void insertRd(uint64_t Key, std::shared_ptr<const RdProcessArtifact> A);

  /// Artifacts served (memory or backing store) resp. not found.
  size_t hits() const { return Hits.load(std::memory_order_relaxed); }
  size_t misses() const { return Misses.load(std::memory_order_relaxed); }
  size_t size() const;

private:
  std::shared_ptr<const void> find(uint64_t Key);
  void insert(uint64_t Key, std::shared_ptr<const void> V);

  struct Entry {
    std::shared_ptr<const void> Value;
    std::list<uint64_t>::iterator LruIt;
  };

  mutable std::mutex M;
  std::unordered_map<uint64_t, Entry> Map;
  std::list<uint64_t> Lru; ///< most recent first
  size_t Cap;
  ArtifactBlobStore *Backing = nullptr;
  std::atomic<size_t> Hits{0}, Misses{0};
};

/// How an incremental run was composed (surfaced through session stats
/// and asserted on by the incremental tests).
struct IncrementalStats {
  size_t ActiveReused = 0; ///< Table 4 artifacts served from the table
  size_t ActiveSolved = 0; ///< Table 4 fixpoints actually run
  size_t RdReused = 0;     ///< Table 5 artifacts served from the table
  size_t RdSolved = 0;     ///< Table 5 fixpoints actually run
};

/// Computes the Table 4 and Table 5 results for \p Program through the
/// artifact table: per process, reuse a keyed artifact when present,
/// otherwise solve and retain it. Results (including iteration totals)
/// are identical to analyzeActiveSignals + analyzeReachingDefs under the
/// same options. Returns false without touching the outputs when \p Opts
/// requests a mode the incremental layer does not cover (the reference
/// solvers or explicit cf-tuple enumeration) — the caller falls back to
/// the cold path.
bool analyzeIncremental(const ElaboratedProgram &Program,
                        const ProgramCFG &CFG,
                        const ReachingDefsOptions &Opts,
                        ProcessArtifactTable &Table,
                        ActiveSignalsResult &Active, ReachingDefsResult &RD,
                        IncrementalStats *Stats = nullptr);

} // namespace vif

#endif // VIF_RD_INCREMENTAL_H
