//===- rd/Incremental.cpp -------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "rd/Incremental.h"

#include "cfg/FlowIndex.h"
#include "support/BinaryIO.h"
#include "support/Casting.h"
#include "support/Hash.h"
#include "support/Parallel.h"

#include <map>

using namespace vif;

ArtifactBlobStore::~ArtifactBlobStore() = default;

//===----------------------------------------------------------------------===//
// Slice hashing
//===----------------------------------------------------------------------===//

namespace {

void hashExpr(HashBuilder &H, const Expr &E) {
  H.u64(static_cast<uint64_t>(E.kind()));
  switch (E.kind()) {
  case Expr::Kind::LogicLiteral:
    H.u64(static_cast<uint64_t>(cast<LogicLiteralExpr>(&E)->value()));
    break;
  case Expr::Kind::VectorLiteral: {
    const LogicVector &V = cast<VectorLiteralExpr>(&E)->value();
    H.u64(V.size());
    for (StdLogic B : V.bits())
      H.u64(static_cast<uint64_t>(B));
    break;
  }
  case Expr::Kind::Name: {
    ObjectRef R = cast<NameExpr>(&E)->ref();
    H.u64(static_cast<uint64_t>(R.K)).u64(R.Id);
    break;
  }
  case Expr::Kind::Slice: {
    const auto *S = cast<SliceExpr>(&E);
    ObjectRef R = S->ref();
    H.u64(static_cast<uint64_t>(R.K)).u64(R.Id);
    H.u64(static_cast<uint64_t>(static_cast<int64_t>(S->slice().Z1)));
    H.u64(static_cast<uint64_t>(static_cast<int64_t>(S->slice().Z2)));
    H.boolean(S->slice().Downto);
    break;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    H.u64(static_cast<uint64_t>(U->op()));
    hashExpr(H, U->sub());
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    H.u64(static_cast<uint64_t>(B->op()));
    hashExpr(H, B->lhs());
    hashExpr(H, B->rhs());
    break;
  }
  }
}

uint64_t hashProcessSlice(const ElaboratedProgram &Program,
                          const ProgramCFG &CFG, const ProcessCFG &P) {
  HashBuilder H;
  H.str("vif-slice-v1");
  H.boolean(Program.process(P.ProcessId).Looped);
  H.u64(P.Init);
  auto ids = [&H](const auto &V) {
    H.u64(V.size());
    for (auto X : V)
      H.u64(X);
  };
  ids(P.Labels);
  ids(P.Finals);
  ids(P.WaitLabels);
  ids(P.FreeVars);
  ids(P.FreeSigs);
  H.u64(P.Flow.size());
  for (const auto &[From, To] : P.Flow)
    H.u64(From).u64(To);
  // Signal classes affect the design-level Table 9 interface handling;
  // fold them in so artifacts never outlive a reclassification.
  for (unsigned Sig : P.FreeSigs)
    H.u64(static_cast<uint64_t>(Program.signal(Sig).Class));
  // The statement slice, in label order. Source ranges are deliberately
  // never hashed: edits elsewhere in the file shift them without
  // changing any analysis input.
  for (LabelId L : P.Labels) {
    const CFGBlock &B = CFG.block(L);
    H.u64(L).u64(static_cast<uint64_t>(B.K));
    switch (B.K) {
    case CFGBlock::Kind::VarAssign:
    case CFGBlock::Kind::SignalAssign: {
      const auto *A = cast<AssignStmtBase>(B.S);
      ObjectRef R = A->targetRef();
      H.u64(static_cast<uint64_t>(R.K)).u64(R.Id);
      H.boolean(A->hasSlice());
      if (A->hasSlice()) {
        H.u64(static_cast<uint64_t>(static_cast<int64_t>(A->slice().Z1)));
        H.u64(static_cast<uint64_t>(static_cast<int64_t>(A->slice().Z2)));
        H.boolean(A->slice().Downto);
      }
      hashExpr(H, A->value());
      break;
    }
    case CFGBlock::Kind::Wait: {
      const auto *W = cast<WaitStmt>(B.S);
      ids(W->onSignals());
      H.boolean(W->hasUntil());
      if (W->hasUntil())
        hashExpr(H, W->until());
      break;
    }
    case CFGBlock::Kind::Cond:
      hashExpr(H, *B.Cond);
      break;
    case CFGBlock::Kind::Null:
      break;
    }
  }
  return H.value();
}

} // namespace

std::vector<uint64_t> vif::hashProcessSlices(const ElaboratedProgram &Program,
                                             const ProgramCFG &CFG) {
  std::vector<uint64_t> Out(CFG.processes().size(), 0);
  for (const ProcessCFG &P : CFG.processes())
    Out[P.ProcessId] = hashProcessSlice(Program, CFG, P);
  return Out;
}

//===----------------------------------------------------------------------===//
// Artifact codecs
//===----------------------------------------------------------------------===//

namespace {

void encodeMatrix(ByteWriter &W, const BitMatrix &M, size_t NL, size_t WW) {
  for (size_t I = 0; I < NL; ++I) {
    const uint64_t *Row = M.row(I);
    for (size_t J = 0; J < WW; ++J)
      W.u64(Row[J]);
  }
}

/// Reads an NL x K matrix; bits beyond K in the last payload word are
/// masked off so garbage padding can never index outside the domain.
std::shared_ptr<BitMatrix> decodeMatrix(ByteReader &R, uint32_t NL,
                                        uint32_t K) {
  auto M = std::make_shared<BitMatrix>(NL, K);
  size_t WW = (K + 63) / 64;
  uint64_t LastMask =
      (K % 64) ? ((uint64_t(1) << (K % 64)) - 1) : ~uint64_t(0);
  for (uint32_t I = 0; I < NL; ++I) {
    uint64_t *Row = M->row(I);
    for (size_t J = 0; J < WW; ++J)
      Row[J] = R.u64();
    Row[WW - 1] &= LastMask;
  }
  return M;
}

/// Shared header of both artifact payloads; returns false if the sizes
/// are inconsistent with the remaining bytes (so corrupt headers are
/// rejected before any allocation is sized from them). \p NumMatrices is
/// the matrix count that must follow the domain.
bool decodeHeader(ByteReader &R, uint64_t &Iterations, uint32_t &NL,
                  uint32_t &K, std::shared_ptr<const DefPairDomain> &DomOut,
                  size_t NumMatrices) {
  Iterations = R.u64();
  NL = R.u32();
  K = R.u32();
  if (!R.ok() || K > R.remaining() / 8)
    return false;
  auto Dom = std::make_shared<DefPairDomain>();
  for (uint32_t I = 0; I < K; ++I) {
    uint32_t Raw = R.u32();
    LabelId L = R.u32();
    Dom->add(DefPair{Resource::fromRaw(Raw), L});
  }
  Dom->finalize();
  // Unsorted or duplicated pairs shrink under finalize — corrupt.
  if (!R.ok() || Dom->size() != K)
    return false;
  if (K) {
    uint64_t RowBytes = uint64_t((K + 63) / 64) * 8;
    if (uint64_t(NL) > R.remaining() / RowBytes / NumMatrices)
      return false;
  }
  DomOut = std::move(Dom);
  return true;
}

} // namespace

std::string vif::encodeActiveArtifact(const ActiveProcessArtifact &A) {
  ByteWriter W;
  W.u64(A.Iterations);
  size_t K = A.Dom ? A.Dom->size() : 0;
  size_t NL = A.MayEntry ? A.MayEntry->numRows() : 0;
  W.u32(static_cast<uint32_t>(NL));
  W.u32(static_cast<uint32_t>(K));
  for (size_t I = 0; I < K; ++I) {
    DefPair P = A.Dom->pair(I);
    W.u32(P.N.raw());
    W.u32(P.L);
  }
  if (K) {
    size_t WW = (K + 63) / 64;
    encodeMatrix(W, *A.MayEntry, NL, WW);
    encodeMatrix(W, *A.MayExit, NL, WW);
    encodeMatrix(W, *A.MustEntry, NL, WW);
    encodeMatrix(W, *A.MustExit, NL, WW);
  }
  return W.take();
}

bool vif::decodeActiveArtifact(std::string_view Blob,
                               ActiveProcessArtifact &A) {
  ByteReader R(Blob);
  ActiveProcessArtifact Out;
  uint32_t NL = 0, K = 0;
  if (!decodeHeader(R, Out.Iterations, NL, K, Out.Dom, 4))
    return false;
  if (K) {
    Out.MayEntry = decodeMatrix(R, NL, K);
    Out.MayExit = decodeMatrix(R, NL, K);
    Out.MustEntry = decodeMatrix(R, NL, K);
    Out.MustExit = decodeMatrix(R, NL, K);
  }
  if (!R.ok() || !R.atEnd())
    return false;
  A = std::move(Out);
  return true;
}

std::string vif::encodeRdArtifact(const RdProcessArtifact &A) {
  ByteWriter W;
  W.u64(A.Iterations);
  size_t K = A.Dom ? A.Dom->size() : 0;
  size_t NL = A.Entry ? A.Entry->numRows() : 0;
  W.u32(static_cast<uint32_t>(NL));
  W.u32(static_cast<uint32_t>(K));
  for (size_t I = 0; I < K; ++I) {
    DefPair P = A.Dom->pair(I);
    W.u32(P.N.raw());
    W.u32(P.L);
  }
  if (K) {
    size_t WW = (K + 63) / 64;
    encodeMatrix(W, *A.Entry, NL, WW);
    encodeMatrix(W, *A.Exit, NL, WW);
  }
  return W.take();
}

bool vif::decodeRdArtifact(std::string_view Blob, RdProcessArtifact &A) {
  ByteReader R(Blob);
  RdProcessArtifact Out;
  uint32_t NL = 0, K = 0;
  if (!decodeHeader(R, Out.Iterations, NL, K, Out.Dom, 2))
    return false;
  if (K) {
    Out.Entry = decodeMatrix(R, NL, K);
    Out.Exit = decodeMatrix(R, NL, K);
  }
  if (!R.ok() || !R.atEnd())
    return false;
  A = std::move(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// ProcessArtifactTable
//===----------------------------------------------------------------------===//

ProcessArtifactTable::ProcessArtifactTable(size_t MaxEntries)
    : Cap(MaxEntries ? MaxEntries : 1) {}

size_t ProcessArtifactTable::size() const {
  std::lock_guard<std::mutex> G(M);
  return Map.size();
}

std::shared_ptr<const void> ProcessArtifactTable::find(uint64_t Key) {
  std::lock_guard<std::mutex> G(M);
  auto It = Map.find(Key);
  if (It == Map.end())
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Value;
}

void ProcessArtifactTable::insert(uint64_t Key,
                                  std::shared_ptr<const void> V) {
  std::lock_guard<std::mutex> G(M);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    It->second.Value = std::move(V);
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return;
  }
  Lru.push_front(Key);
  Map.emplace(Key, Entry{std::move(V), Lru.begin()});
  while (Map.size() > Cap) {
    Map.erase(Lru.back());
    Lru.pop_back();
  }
}

std::shared_ptr<const ActiveProcessArtifact>
ProcessArtifactTable::findActive(uint64_t Key) {
  if (auto V = find(Key)) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    return std::static_pointer_cast<const ActiveProcessArtifact>(V);
  }
  if (Backing) {
    std::string Blob;
    if (Backing->load("actv", Key, Blob)) {
      auto A = std::make_shared<ActiveProcessArtifact>();
      if (decodeActiveArtifact(Blob, *A)) {
        insert(Key, A);
        Hits.fetch_add(1, std::memory_order_relaxed);
        return A;
      }
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ProcessArtifactTable::insertActive(
    uint64_t Key, std::shared_ptr<const ActiveProcessArtifact> A) {
  if (Backing)
    Backing->store("actv", Key, encodeActiveArtifact(*A));
  insert(Key, std::move(A));
}

std::shared_ptr<const RdProcessArtifact>
ProcessArtifactTable::findRd(uint64_t Key) {
  if (auto V = find(Key)) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    return std::static_pointer_cast<const RdProcessArtifact>(V);
  }
  if (Backing) {
    std::string Blob;
    if (Backing->load("rdpr", Key, Blob)) {
      auto A = std::make_shared<RdProcessArtifact>();
      if (decodeRdArtifact(Blob, *A)) {
        insert(Key, A);
        Hits.fetch_add(1, std::memory_order_relaxed);
        return A;
      }
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ProcessArtifactTable::insertRd(uint64_t Key,
                                    std::shared_ptr<const RdProcessArtifact> A) {
  if (Backing)
    Backing->store("rdpr", Key, encodeRdArtifact(*A));
  insert(Key, std::move(A));
}

//===----------------------------------------------------------------------===//
// Incremental analysis
//===----------------------------------------------------------------------===//

namespace {

/// Sets the signal-id bit of every definition present in row \p RowI of
/// \p Mat (a matrix over \p A's domain) into \p Out.
void signalBitsOfRow(const ActiveProcessArtifact &A, const BitMatrix &Mat,
                     uint32_t RowI, BitSet &Out) {
  const uint64_t *Row = Mat.row(RowI);
  size_t WW = (A.Dom->size() + 63) / 64;
  BitMatrix::forEachBit(Row, WW, [&](size_t I) {
    DefPair P = A.Dom->pair(I);
    if (P.N.isSignal())
      Out.set(P.N.id());
  });
}

/// Folds a BitSet into a hash as (count, ascending indices) — the
/// canonical form, independent of universe padding.
void hashBitSet(HashBuilder &H, const BitSet &S) {
  H.u64(S.count());
  S.forEach([&H](size_t I) { H.u64(I); });
}

/// Fills the Table 5 kill/gen slots of process \p P's labels into the
/// shared whole-program vectors, using the factored cross-flow
/// quantifications precomputed as bitsets (\p OthersMay / \p OthersMust
/// are the unions over the *other* processes' wait aggregates). Produces
/// exactly the sets computeReachingDefsKillGen builds for these labels.
void fillRdKillGen(const ProgramCFG &CFG, const ProcessCFG &P,
                   const ActiveProcessArtifact &Act, const BitSet &OthersMay,
                   const BitSet &OthersMust, const ReachingDefsOptions &Opts,
                   std::vector<PairSet> &Kill, std::vector<PairSet> &Gen) {
  std::map<unsigned, PairSet> DefsOfVar;
  for (LabelId L : P.Labels) {
    const CFGBlock &B = CFG.block(L);
    if (B.K != CFGBlock::Kind::VarAssign)
      continue;
    const auto *A = cast<VarAssignStmt>(B.S);
    DefsOfVar[A->targetRef().Id].insert(
        DefPair{Resource::variable(A->targetRef().Id), L});
  }

  size_t NumSignals = OthersMay.size();
  const FlowIndex *FI = Act.MayEntry ? &CFG.flowIndex(P.ProcessId) : nullptr;
  BitSet May(NumSignals), Must(NumSignals);
  for (LabelId L : P.Labels) {
    const CFGBlock &B = CFG.block(L);
    switch (B.K) {
    case CFGBlock::Kind::VarAssign: {
      const auto *A = cast<VarAssignStmt>(B.S);
      unsigned Var = A->targetRef().Id;
      Gen[L].insert(DefPair{Resource::variable(Var), L});
      if (!A->hasSlice()) {
        Kill[L] = DefsOfVar[Var];
        Kill[L].insert(DefPair{Resource::variable(Var), InitialLabel});
      }
      break;
    }
    case CFGBlock::Kind::Wait: {
      May = OthersMay;
      Must = OthersMust;
      if (FI) {
        uint32_t I = FI->localOf(L);
        signalBitsOfRow(Act, *Act.MayEntry, I, May);
        signalBitsOfRow(Act, *Act.MustEntry, I, Must);
      }
      May.forEach([&](size_t Sig) {
        Gen[L].append(DefPair{Resource::signal(static_cast<unsigned>(Sig)), L});
      });
      if (Opts.UseMustActiveKill) {
        // wS(ss_i): the initial "?" plus the (ascending) wait labels —
        // appended in DefPair order per signal.
        Must.forEach([&](size_t Sig) {
          Resource RS = Resource::signal(static_cast<unsigned>(Sig));
          Kill[L].append(DefPair{RS, InitialLabel});
          for (LabelId DefL : P.WaitLabels)
            Kill[L].append(DefPair{RS, DefL});
        });
      }
      break;
    }
    case CFGBlock::Kind::Null:
    case CFGBlock::Kind::SignalAssign:
    case CFGBlock::Kind::Cond:
      break;
    }
  }
}

} // namespace

bool vif::analyzeIncremental(const ElaboratedProgram &Program,
                             const ProgramCFG &CFG,
                             const ReachingDefsOptions &Opts,
                             ProcessArtifactTable &Table,
                             ActiveSignalsResult &Active,
                             ReachingDefsResult &RD,
                             IncrementalStats *Stats) {
  // The reference solvers and the explicit tuple enumeration are
  // validation modes; they bypass artifact reuse entirely.
  if (Opts.ReferenceSolver || Opts.EnumerateCrossFlowTuples)
    return false;

  size_t NumLabels = CFG.numLabels();
  size_t NumProcs = CFG.processes().size();
  size_t NumSignals = Program.Signals.size();

  Active = ActiveSignalsResult();
  Active.MayEntry.resize(NumLabels + 1);
  Active.MayExit.resize(NumLabels + 1);
  Active.MustEntry.resize(NumLabels + 1);
  Active.MustExit.resize(NumLabels + 1);
  RD = ReachingDefsResult();
  RD.Entry.resize(NumLabels + 1);
  RD.Exit.resize(NumLabels + 1);

  std::vector<uint64_t> Slice = hashProcessSlices(Program, CFG);

  // Phase 1: Table 4 artifacts, keyed by the slice alone (the fixpoint
  // reads nothing outside the process). Kill/gen vectors span all labels
  // but only dirty processes' slots are filled — disjoint writes, so the
  // misses solve in parallel just like the cold path.
  ActiveKillGen AKG;
  AKG.Kill.resize(NumLabels + 1);
  AKG.Gen.resize(NumLabels + 1);
  std::vector<std::shared_ptr<const ActiveProcessArtifact>> Act(NumProcs);
  std::vector<uint8_t> ActReused(NumProcs, 0);
  parallelFor(Opts.Jobs, NumProcs, [&](size_t PI) {
    const ProcessCFG &P = CFG.processes()[PI];
    unsigned Pid = P.ProcessId;
    const FlowIndex &FI = CFG.flowIndex(Pid);
    uint64_t Key = HashBuilder().str("actv").u64(Slice[Pid]).value();
    auto A = Table.findActive(Key);
    if (A && A->MayEntry && A->MayEntry->numRows() != FI.numLabels())
      A = nullptr; // shape mismatch (hash collision / stale blob): re-solve
    if (A) {
      ActReused[Pid] = 1;
    } else {
      computeActiveKillGenFor(CFG, P, AKG);
      auto Solved = std::make_shared<ActiveProcessArtifact>(
          solveProcessActive(CFG, P, AKG));
      Table.insertActive(Key, Solved);
      A = std::move(Solved);
    }
    installProcessActive(Active, CFG, P, *A);
    Act[Pid] = std::move(A);
  });
  for (size_t I = 0; I < NumProcs; ++I)
    Active.Iterations += Act[I]->Iterations;

  // Phase 2: the factored cross-flow aggregates of Table 5's wait
  // kill/gen (see rd/ReachingDefs.cpp), computed straight off the dense
  // artifact rows as signal-id bitsets, then turned into per-process
  // "others" unions with prefix/suffix sweeps — O(P * S / 64) instead of
  // the quadratic set unions of the cold path.
  std::vector<BitSet> MayUnion(NumProcs, BitSet(NumSignals));
  std::vector<BitSet> MustIntersect(NumProcs, BitSet(NumSignals));
  std::vector<BitSet> MayAtEnd(NumProcs, BitSet(NumSignals));
  std::vector<uint8_t> HasWaits(NumProcs, 0);
  for (const ProcessCFG &P : CFG.processes()) {
    unsigned Pid = P.ProcessId;
    HasWaits[Pid] = !P.WaitLabels.empty();
    const ActiveProcessArtifact &A = *Act[Pid];
    if (!A.MayEntry || P.WaitLabels.empty())
      continue; // empty domain or no waits: all aggregate sets stay ∅
    const FlowIndex &FI = CFG.flowIndex(Pid);
    bool First = true;
    BitSet Must(NumSignals);
    for (LabelId L : P.WaitLabels) {
      uint32_t I = FI.localOf(L);
      signalBitsOfRow(A, *A.MayEntry, I, MayUnion[Pid]);
      Must.clearAll();
      signalBitsOfRow(A, *A.MustEntry, I, Must);
      if (First)
        MustIntersect[Pid] = Must;
      else
        MustIntersect[Pid].intersectWith(Must);
      First = false;
    }
    signalBitsOfRow(A, *A.MayEntry, FI.localOf(P.WaitLabels.back()),
                    MayAtEnd[Pid]);
  }

  auto othersUnion = [&](const std::vector<BitSet> &Per) {
    std::vector<BitSet> Pre(NumProcs + 1, BitSet(NumSignals));
    std::vector<BitSet> Suf(NumProcs + 1, BitSet(NumSignals));
    for (size_t J = 0; J < NumProcs; ++J) {
      Pre[J + 1] = Pre[J];
      if (HasWaits[J])
        Pre[J + 1].unionWith(Per[J]);
    }
    for (size_t J = NumProcs; J-- > 0;) {
      Suf[J] = Suf[J + 1];
      if (HasWaits[J])
        Suf[J].unionWith(Per[J]);
    }
    std::vector<BitSet> Out(NumProcs, BitSet(NumSignals));
    for (size_t I = 0; I < NumProcs; ++I) {
      Out[I] = Pre[I];
      Out[I].unionWith(Suf[I + 1]);
    }
    return Out;
  };
  std::vector<BitSet> OthersMay =
      othersUnion(Opts.HsiehLevitanCrossFlow ? MayAtEnd : MayUnion);
  std::vector<BitSet> OthersMust = othersUnion(MustIntersect);

  // Phase 3: Table 5 artifacts, keyed by the slice plus everything the
  // wait kill/gen sets read from outside the process: the "others"
  // unions and the two options that shape them.
  std::vector<PairSet> RdKill(NumLabels + 1), RdGen(NumLabels + 1);
  std::vector<std::shared_ptr<const RdProcessArtifact>> Rd(NumProcs);
  std::vector<uint8_t> RdReused(NumProcs, 0);
  parallelFor(Opts.Jobs, NumProcs, [&](size_t PI) {
    const ProcessCFG &P = CFG.processes()[PI];
    unsigned Pid = P.ProcessId;
    const FlowIndex &FI = CFG.flowIndex(Pid);
    HashBuilder KH;
    KH.str("rdpr").u64(Slice[Pid]);
    hashBitSet(KH, OthersMay[Pid]);
    hashBitSet(KH, OthersMust[Pid]);
    KH.boolean(Opts.UseMustActiveKill).boolean(Opts.HsiehLevitanCrossFlow);
    uint64_t Key = KH.value();
    auto A = Table.findRd(Key);
    if (A && A->Entry && A->Entry->numRows() != FI.numLabels())
      A = nullptr; // shape mismatch (hash collision / stale blob): re-solve
    if (A) {
      RdReused[Pid] = 1;
    } else {
      fillRdKillGen(CFG, P, *Act[Pid], OthersMay[Pid], OthersMust[Pid], Opts,
                    RdKill, RdGen);
      auto Solved = std::make_shared<RdProcessArtifact>(
          solveProcessRd(CFG, P, RdKill, RdGen));
      Table.insertRd(Key, Solved);
      A = std::move(Solved);
    }
    installProcessRd(RD, CFG, P, *A);
    Rd[Pid] = std::move(A);
  });
  for (size_t I = 0; I < NumProcs; ++I)
    RD.Iterations += Rd[I]->Iterations;

  if (Stats) {
    for (size_t I = 0; I < NumProcs; ++I) {
      Stats->ActiveReused += ActReused[I];
      Stats->ActiveSolved += !ActReused[I];
      Stats->RdReused += RdReused[I];
      Stats->RdSolved += !RdReused[I];
    }
  }
  return true;
}
