//===- rd/ReachingDefs.h - RD for vars & present signals (Table 5) -*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Reaching Definitions analysis for local variables and *present*
/// signal values of paper Table 5: a forward may analysis over
/// P((Var ∪ Sig) x Lab), per-process flow, that consumes the active-signal
/// results (Table 4) at wait statements:
///
///  * gen at [wait]^l: every signal that may be active in any process that
///    could take part in the synchronization becomes defined at l (its
///    active value turns into its present value);
///  * kill at [wait]^l: every signal that must be active in *all* possible
///    synchronization tuples through l gets all of its present-value
///    definitions killed — this is where RD∩ϕ earns its keep;
///  * variable assignments kill/gen in the classic way, with the special
///    (x, ?) pair standing for the initial value;
///  * entry of init(ss_i) is {(x,?) | x ∈ FV(ss_i)} ∪ {(s,?) | s ∈ FS(ss_i)}.
///
/// The quantifications over cf tuples are computed in factored form (the
/// tuple components range independently, see cfg/CFG.h); the explicit
/// product definition is also implemented for validation on small programs.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_RD_REACHINGDEFS_H
#define VIF_RD_REACHINGDEFS_H

#include "rd/ActiveSignals.h"

namespace vif {

struct ReachingDefsOptions {
  /// Disables the RD∩ϕ-based kill at waits (the ablation ABL-RD in
  /// DESIGN.md): present-value definitions of signals then survive every
  /// synchronization, as in a naive adaptation of Reaching Definitions.
  bool UseMustActiveKill = true;
  /// Computes the wait kill/gen sets by explicit enumeration of cf tuples
  /// instead of the factored form (validation only; exponential).
  bool EnumerateCrossFlowTuples = false;
  /// Routes the whole pipeline through the retained sorted-vector
  /// reference solvers (analyzeActiveSignalsReference /
  /// analyzeReachingDefsReference) instead of the dense bit-vector ones.
  /// Used by the differential tests to compare complete IFA results, and
  /// available as an escape hatch while the dense solvers are young.
  bool ReferenceSolver = false;
  /// Worker threads for the per-process fixpoints (both the active-signal
  /// and the RDcf solvers): each process is an independent fixpoint with
  /// disjoint labels and result slots, so they fan out over a
  /// support/Parallel.h pool. 1 (the default) solves inline; results are
  /// identical for every value. Deliberately *not* part of the session
  /// cache key (driver/SessionCache.cpp) — it never changes an artifact.
  unsigned Jobs = 1;
  /// Emulates the Reaching Definitions component of Hsieh & Levitan's
  /// analysis as the paper characterizes it (Section 1): definitions from
  /// *other* processes are only sampled at their process ends, so "a
  /// definition ... present at a synchronization point within the process
  /// but overwritten before the end of the process" is lost. Kept as the
  /// ABL-HL baseline; unsound for multi-wait processes, exactly the
  /// paper's criticism.
  bool HsiehLevitanCrossFlow = false;
};

/// Per-label results of RDcf; tables indexed by label. Solved densely over
/// per-process (Resource, Label) BitSet domains; `Result.Entry[L]` /
/// `Result.Exit[L]` materialize sorted-vector PairSets on first access
/// (see rd/DenseDomain.h), and forEachPairOf serves resource-indexed
/// queries straight off the dense representation.
struct ReachingDefsResult {
  LazyPairSets Entry; ///< RDcf entry(l)
  LazyPairSets Exit;  ///< RDcf exit(l)
  size_t Iterations = 0;

  /// Definitions reaching the end of process \p P: the union of exits of
  /// its final labels (used by the program-end outgoing extension).
  PairSet atProcessEnd(const ProcessCFG &P) const;

  /// Heap footprint in bytes; Entry and Exit share their per-process
  /// domains and matrices, counted once (cache byte-budget accounting).
  size_t memoryBytes() const {
    std::unordered_set<const void *> Seen;
    return Entry.memoryBytes(Seen) + Exit.memoryBytes(Seen);
  }
};

/// Runs RDcf for the whole program, given the Table 4 results \p Active.
ReachingDefsResult analyzeReachingDefs(const ElaboratedProgram &Program,
                                       const ProgramCFG &CFG,
                                       const ActiveSignalsResult &Active,
                                       const ReachingDefsOptions &Opts = {});

/// The original sorted-vector-PairSet worklist solver, retained as the
/// oracle for the dense one (differential tests assert identical Entry and
/// Exit sets on every workload family).
ReachingDefsResult
analyzeReachingDefsReference(const ElaboratedProgram &Program,
                             const ProgramCFG &CFG,
                             const ActiveSignalsResult &Active,
                             const ReachingDefsOptions &Opts = {});

/// The Table 5 kill/gen sets per label (shared by the worklist solver and
/// the ALFP encoding of the equations; vectors indexed by label).
struct ReachingDefsKillGen {
  std::vector<PairSet> Kill;
  std::vector<PairSet> Gen;
};

ReachingDefsKillGen
computeReachingDefsKillGen(const ProgramCFG &CFG,
                           const ActiveSignalsResult &Active,
                           const ReachingDefsOptions &Opts = {});

/// One process's dense Table 5 solution — the unit the incremental layer
/// caches and recomposes whole-program results from. Rows are indexed by
/// the process's FlowIndex local label order; the matrices are null when
/// the domain is empty (every set stays ∅).
struct RdProcessArtifact {
  std::shared_ptr<const DefPairDomain> Dom;
  std::shared_ptr<const BitMatrix> Entry, Exit;
  uint64_t Iterations = 0;
};

/// Solves the RDcf fixpoint of one process given the per-label kill/gen
/// vectors (only \p P's label slots are read): exactly the per-process
/// body of analyzeReachingDefs, exposed so dirty processes can be
/// re-solved in isolation.
RdProcessArtifact solveProcessRd(const ProgramCFG &CFG, const ProcessCFG &P,
                                 const std::vector<PairSet> &Kill,
                                 const std::vector<PairSet> &Gen);

/// Installs \p A's rows into the whole-program result tables (the label
/// slots of \p P only; the shared matrices are referenced, not copied).
void installProcessRd(ReachingDefsResult &R, const ProgramCFG &CFG,
                      const ProcessCFG &P, const RdProcessArtifact &A);

} // namespace vif

#endif // VIF_RD_REACHINGDEFS_H
