//===- rd/PairSet.cpp -----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "rd/PairSet.h"

#include <algorithm>

using namespace vif;

std::string Resource::name(const ElaboratedProgram &Program) const {
  std::string Base = isVariable() ? Program.variable(id()).UniqueName
                                  : Program.signal(id()).UniqueName;
  if (isIncoming())
    return Base + "◦"; // ◦
  if (isOutgoing())
    return Base + "•"; // •
  return Base;
}

static bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

bool vif::hasInterfaceMark(std::string_view Name) {
  return endsWith(Name, "◦") || endsWith(Name, "•");
}

std::string_view vif::stripInterfaceMark(std::string_view Name) {
  for (std::string_view Mark : {std::string_view("◦"), std::string_view("•")})
    if (endsWith(Name, Mark))
      return Name.substr(0, Name.size() - Mark.size());
  return Name;
}

bool PairSet::insert(DefPair P) {
  auto It = std::lower_bound(Pairs.begin(), Pairs.end(), P);
  if (It != Pairs.end() && *It == P)
    return false;
  Pairs.insert(It, P);
  return true;
}

bool PairSet::contains(DefPair P) const {
  return std::binary_search(Pairs.begin(), Pairs.end(), P);
}

bool PairSet::unionWith(const PairSet &O) {
  if (O.Pairs.empty())
    return false;
  std::vector<DefPair> Merged;
  Merged.reserve(Pairs.size() + O.Pairs.size());
  std::set_union(Pairs.begin(), Pairs.end(), O.Pairs.begin(), O.Pairs.end(),
                 std::back_inserter(Merged));
  bool Grew = Merged.size() != Pairs.size();
  Pairs = std::move(Merged);
  return Grew;
}

void PairSet::intersectWith(const PairSet &O) {
  std::vector<DefPair> Result;
  std::set_intersection(Pairs.begin(), Pairs.end(), O.Pairs.begin(),
                        O.Pairs.end(), std::back_inserter(Result));
  Pairs = std::move(Result);
}

void PairSet::subtract(const PairSet &O) {
  if (O.Pairs.empty())
    return;
  std::vector<DefPair> Result;
  std::set_difference(Pairs.begin(), Pairs.end(), O.Pairs.begin(),
                      O.Pairs.end(), std::back_inserter(Result));
  Pairs = std::move(Result);
}

PairSet
PairSet::dottedIntersection(const std::vector<const PairSet *> &Sets) {
  PairSet Result;
  if (Sets.empty())
    return Result; // ⋂˙∅ = ∅
  Result = *Sets.front();
  for (size_t I = 1; I < Sets.size(); ++I)
    Result.intersectWith(*Sets[I]);
  return Result;
}

std::vector<Resource> PairSet::firstComponents() const {
  std::vector<Resource> Result;
  for (const DefPair &P : Pairs)
    if (Result.empty() || !(Result.back() == P.N))
      Result.push_back(P.N);
  return Result;
}

std::vector<DefPair> PairSet::pairsFor(Resource N) const {
  auto [It, End] = equalRange(N);
  return std::vector<DefPair>(It, End);
}

std::pair<std::vector<DefPair>::const_iterator,
          std::vector<DefPair>::const_iterator>
PairSet::equalRange(Resource N) const {
  auto It = std::lower_bound(Pairs.begin(), Pairs.end(),
                             DefPair{N, InitialLabel});
  auto End = It;
  while (End != Pairs.end() && End->N == N)
    ++End;
  return {It, End};
}
