//===- rd/ReachingDefs.cpp ------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "rd/ReachingDefs.h"

#include "cfg/FlowIndex.h"
#include "support/Casting.h"
#include "support/Parallel.h"

#include <deque>
#include <map>
#include <set>

using namespace vif;

PairSet ReachingDefsResult::atProcessEnd(const ProcessCFG &P) const {
  PairSet Result;
  for (LabelId L : P.Finals)
    Result.unionWith(Exit[L]);
  return Result;
}

namespace {

/// Sorted signal-id sets with the usual operations; used for the factored
/// cf quantifications.
using SigSet = std::set<unsigned>;

SigSet signalsOf(const PairSet &S) {
  SigSet Result;
  for (Resource R : S.firstComponents())
    if (R.isSignal())
      Result.insert(R.id());
  return Result;
}

SigSet unionOf(const SigSet &A, const SigSet &B) {
  SigSet R = A;
  R.insert(B.begin(), B.end());
  return R;
}

SigSet intersectOf(const SigSet &A, const SigSet &B) {
  SigSet R;
  for (unsigned X : A)
    if (B.count(X))
      R.insert(X);
  return R;
}

/// The cf quantifications at a wait label l of process i:
///
///   may(l)  = ⋃_{tuples (l_1..l_n) ∈ cf, l_i = l} ⋃_j fst(RD∪ϕentry(l_j))
///   must(l) = ⋂˙_{tuples (l_1..l_n) ∈ cf, l_i = l} ⋃_j fst(RD∩ϕentry(l_j))
///
/// Factored: tuple components range independently over the WS(ss_j), so
///   may(l)  = may_i(l) ∪ ⋃_{j≠i} ⋃_{l'∈WS_j} may_j(l')
///   must(l) = must_i(l) ∪ ⋃_{j≠i} ⋂_{l'∈WS_j} must_j(l')
/// (processes without wait statements do not contribute a component).
struct WaitAggregates {
  /// ⋃_{l'∈WS_j} fst(RD∪ϕentry(l')) per process j.
  std::vector<SigSet> MayUnion;
  /// ⋂_{l'∈WS_j} fst(RD∩ϕentry(l')) per process j.
  std::vector<SigSet> MustIntersect;
  /// fst(RD∪ϕentry(l_last)) at the textually last wait of process j — the
  /// Hsieh-Levitan emulation samples other processes only at this final
  /// synchronization, losing definitions overwritten before the process
  /// end (the paper's Section 1 criticism).
  std::vector<SigSet> MayAtEnd;
  /// Whether process j has any wait labels.
  std::vector<bool> HasWaits;
};

WaitAggregates computeAggregates(const ProgramCFG &CFG,
                                 const ActiveSignalsResult &Active) {
  WaitAggregates A;
  size_t N = CFG.processes().size();
  A.MayUnion.resize(N);
  A.MustIntersect.resize(N);
  A.MayAtEnd.resize(N);
  A.HasWaits.resize(N, false);
  for (const ProcessCFG &P : CFG.processes()) {
    bool First = true;
    for (LabelId L : P.WaitLabels) {
      A.HasWaits[P.ProcessId] = true;
      SigSet May = signalsOf(Active.MayEntry[L]);
      SigSet Must = signalsOf(Active.MustEntry[L]);
      A.MayUnion[P.ProcessId] =
          unionOf(A.MayUnion[P.ProcessId], May);
      A.MustIntersect[P.ProcessId] =
          First ? Must : intersectOf(A.MustIntersect[P.ProcessId], Must);
      First = false;
    }
    if (!P.WaitLabels.empty())
      A.MayAtEnd[P.ProcessId] =
          signalsOf(Active.MayEntry[P.WaitLabels.back()]);
  }
  return A;
}

SigSet factoredMay(const ProgramCFG &CFG, const ActiveSignalsResult &Active,
                   const WaitAggregates &Agg, LabelId L,
                   bool HsiehLevitan) {
  unsigned I = CFG.processOf(L);
  SigSet Result = signalsOf(Active.MayEntry[L]);
  for (size_t J = 0; J < Agg.MayUnion.size(); ++J)
    if (J != I && Agg.HasWaits[J])
      Result = unionOf(Result,
                       HsiehLevitan ? Agg.MayAtEnd[J] : Agg.MayUnion[J]);
  return Result;
}

SigSet factoredMust(const ProgramCFG &CFG, const ActiveSignalsResult &Active,
                    const WaitAggregates &Agg, LabelId L) {
  unsigned I = CFG.processOf(L);
  SigSet Result = signalsOf(Active.MustEntry[L]);
  for (size_t J = 0; J < Agg.MustIntersect.size(); ++J)
    if (J != I && Agg.HasWaits[J])
      Result = unionOf(Result, Agg.MustIntersect[J]);
  return Result;
}

/// Reference implementation by explicit tuple enumeration (validation).
void enumeratedMayMust(const ProgramCFG &CFG,
                       const ActiveSignalsResult &Active, LabelId L,
                       SigSet &May, SigSet &Must) {
  May.clear();
  Must.clear();
  bool FirstTuple = true;
  for (const std::vector<LabelId> &Tuple : CFG.crossFlowTuples()) {
    bool ThroughL = false;
    for (LabelId T : Tuple)
      ThroughL |= T == L;
    if (!ThroughL)
      continue;
    SigSet TupleMay, TupleMust;
    for (LabelId T : Tuple) {
      TupleMay = unionOf(TupleMay, signalsOf(Active.MayEntry[T]));
      TupleMust = unionOf(TupleMust, signalsOf(Active.MustEntry[T]));
    }
    May = unionOf(May, TupleMay);
    Must = FirstTuple ? TupleMust : intersectOf(Must, TupleMust);
    FirstTuple = false;
  }
  // ⋂˙ over an empty family is ∅ — May/Must stay empty if no tuple passes
  // through L (impossible for a genuine wait label).
}

} // namespace

ReachingDefsKillGen
vif::computeReachingDefsKillGen(const ProgramCFG &CFG,
                                const ActiveSignalsResult &Active,
                                const ReachingDefsOptions &Opts) {
  size_t NumLabels = CFG.numLabels();
  WaitAggregates Agg = computeAggregates(CFG, Active);
  ReachingDefsKillGen KG;
  std::vector<PairSet> &Kill = KG.Kill, &Gen = KG.Gen;
  Kill.resize(NumLabels + 1);
  Gen.resize(NumLabels + 1);
  for (const ProcessCFG &P : CFG.processes()) {
    // Per-variable definitions inside this process.
    std::map<unsigned, PairSet> DefsOfVar;
    for (LabelId L : P.Labels) {
      const CFGBlock &B = CFG.block(L);
      if (B.K != CFGBlock::Kind::VarAssign)
        continue;
      const auto *A = cast<VarAssignStmt>(B.S);
      DefsOfVar[A->targetRef().Id].insert(
          DefPair{Resource::variable(A->targetRef().Id), L});
    }
    // wS(ss_i): the labels where a present signal value can be defined
    // within process i — its wait labels plus the initial "?".
    std::vector<LabelId> PresentDefLabels = P.WaitLabels;
    PresentDefLabels.push_back(InitialLabel);

    for (LabelId L : P.Labels) {
      const CFGBlock &B = CFG.block(L);
      switch (B.K) {
      case CFGBlock::Kind::VarAssign: {
        const auto *A = cast<VarAssignStmt>(B.S);
        unsigned Var = A->targetRef().Id;
        Gen[L].insert(DefPair{Resource::variable(Var), L});
        if (!A->hasSlice()) {
          Kill[L] = DefsOfVar[Var];
          Kill[L].insert(DefPair{Resource::variable(Var), InitialLabel});
        }
        break;
      }
      case CFGBlock::Kind::Wait: {
        SigSet May, Must;
        if (Opts.EnumerateCrossFlowTuples) {
          enumeratedMayMust(CFG, Active, L, May, Must);
        } else {
          May = factoredMay(CFG, Active, Agg, L,
                            Opts.HsiehLevitanCrossFlow);
          Must = factoredMust(CFG, Active, Agg, L);
        }
        for (unsigned Sig : May)
          Gen[L].insert(DefPair{Resource::signal(Sig), L});
        if (Opts.UseMustActiveKill)
          for (unsigned Sig : Must)
            for (LabelId DefL : PresentDefLabels)
              Kill[L].insert(DefPair{Resource::signal(Sig), DefL});
        break;
      }
      case CFGBlock::Kind::Null:
      case CFGBlock::Kind::SignalAssign:
      case CFGBlock::Kind::Cond:
        break;
      }
    }
  }
  return KG;
}

ReachingDefsResult
vif::analyzeReachingDefs(const ElaboratedProgram &Program,
                         const ProgramCFG &CFG,
                         const ActiveSignalsResult &Active,
                         const ReachingDefsOptions &Opts) {
  size_t NumLabels = CFG.numLabels();
  ReachingDefsResult R;
  R.Entry.resize(NumLabels + 1);
  R.Exit.resize(NumLabels + 1);

  ReachingDefsKillGen KG = computeReachingDefsKillGen(CFG, Active, Opts);

  // Forward may analysis, per-process flow, run densely: every pair that
  // can ever be present comes from the initial {(n, ?)} set or some gen
  // set, so those pairs form the process's bit-vector domain. Processes
  // are independent fixpoints writing disjoint label slots, so they fan
  // out over a thread pool (Opts.Jobs); iteration counts are accumulated
  // per process and summed after the join.
  size_t NumProcs = CFG.processes().size();
  std::vector<size_t> Iterations(NumProcs, 0);
  parallelFor(Opts.Jobs, NumProcs, [&](size_t ProcIdx) {
    const ProcessCFG &P = CFG.processes()[ProcIdx];
    RdProcessArtifact A = solveProcessRd(CFG, P, KG.Kill, KG.Gen);
    Iterations[ProcIdx] = A.Iterations;
    installProcessRd(R, CFG, P, A);
  });
  for (size_t N : Iterations)
    R.Iterations += N;
  (void)Program;
  return R;
}

RdProcessArtifact vif::solveProcessRd(const ProgramCFG &CFG,
                                      const ProcessCFG &P,
                                      const std::vector<PairSet> &Kill,
                                      const std::vector<PairSet> &Gen) {
  RdProcessArtifact A;
  PairSet Initial;
  for (unsigned Var : P.FreeVars)
    Initial.insert(DefPair{Resource::variable(Var), InitialLabel});
  for (unsigned Sig : P.FreeSigs)
    Initial.insert(DefPair{Resource::signal(Sig), InitialLabel});

  auto Dom = std::make_shared<DefPairDomain>();
  Dom->addAll(Initial);
  for (LabelId L : P.Labels)
    Dom->addAll(Gen[L]);
  Dom->finalize();
  A.Dom = Dom;
  size_t K = Dom->size();
  if (K == 0)
    return A; // nothing is ever defined: every set stays ∅ (the default)

  const FlowIndex &FI = CFG.flowIndex(P.ProcessId);
  size_t NL = FI.numLabels();
  size_t W = (K + 63) / 64;

  // Whole-table BitMatrix rows instead of per-label BitSets; the two
  // result tables are shared with the label slots installed later.
  std::vector<uint64_t> InitialMask(W, 0);
  Dom->maskInto(Initial, InitialMask.data());
  BitMatrix KillM(NL, K), GenM(NL, K);
  for (uint32_t I = 0; I < NL; ++I) {
    Dom->maskInto(Kill[FI.label(I)], KillM.row(I));
    Dom->maskInto(Gen[FI.label(I)], GenM.row(I));
  }

  auto Entry = std::make_shared<BitMatrix>(NL, K);
  auto Exit = std::make_shared<BitMatrix>(NL, K);

  std::deque<uint32_t> Work(FI.rpo().begin(), FI.rpo().end());
  std::vector<uint8_t> InWork(NL, 1);
  uint32_t InitLocal = FI.localOf(P.Init);

  std::vector<uint64_t> In(W);
  while (!Work.empty()) {
    uint32_t I = Work.front();
    Work.pop_front();
    InWork[I] = 0;
    ++A.Iterations;

    // The init label carries the initial {(n, ?)} definitions; if it is
    // re-entered (possible in bare statement programs without the
    // isolated-entry wrapper) predecessor exits are merged as well.
    if (I == InitLocal)
      BitMatrix::copy(In.data(), InitialMask.data(), W);
    else
      BitMatrix::clear(In.data(), W);
    for (uint32_t Pred : FI.preds(I))
      BitMatrix::orInto(In.data(), Exit->row(Pred), W);
    BitMatrix::copy(Entry->row(I), In.data(), W);

    BitMatrix::subtract(In.data(), KillM.row(I), W);
    BitMatrix::orInto(In.data(), GenM.row(I), W);

    if (BitMatrix::equal(In.data(), Exit->row(I), W))
      continue;
    BitMatrix::copy(Exit->row(I), In.data(), W);
    for (uint32_t Succ : FI.succs(I))
      if (!InWork[Succ]) {
        Work.push_back(Succ);
        InWork[Succ] = 1;
      }
  }

  A.Entry = std::move(Entry);
  A.Exit = std::move(Exit);
  return A;
}

void vif::installProcessRd(ReachingDefsResult &R, const ProgramCFG &CFG,
                           const ProcessCFG &P, const RdProcessArtifact &A) {
  if (!A.Entry)
    return; // empty domain: the default (empty) slots are already right
  const FlowIndex &FI = CFG.flowIndex(P.ProcessId);
  size_t NL = FI.numLabels();
  for (uint32_t I = 0; I < NL; ++I) {
    LabelId L = FI.label(I);
    R.Entry.setDense(L, A.Dom, A.Entry, I);
    R.Exit.setDense(L, A.Dom, A.Exit, I);
  }
}

ReachingDefsResult
vif::analyzeReachingDefsReference(const ElaboratedProgram &Program,
                                  const ProgramCFG &CFG,
                                  const ActiveSignalsResult &Active,
                                  const ReachingDefsOptions &Opts) {
  size_t NumLabels = CFG.numLabels();
  ReachingDefsResult R;
  R.Entry.resize(NumLabels + 1);
  R.Exit.resize(NumLabels + 1);

  ReachingDefsKillGen KG = computeReachingDefsKillGen(CFG, Active, Opts);
  const std::vector<PairSet> &Kill = KG.Kill;
  const std::vector<PairSet> &Gen = KG.Gen;

  for (const ProcessCFG &P : CFG.processes()) {
    PairSet Initial;
    for (unsigned Var : P.FreeVars)
      Initial.insert(DefPair{Resource::variable(Var), InitialLabel});
    for (unsigned Sig : P.FreeSigs)
      Initial.insert(DefPair{Resource::signal(Sig), InitialLabel});

    std::vector<PairSet> Exit(NumLabels + 1);

    std::map<LabelId, std::vector<LabelId>> Preds;
    for (const auto &[From, To] : P.Flow)
      Preds[To].push_back(From);

    std::deque<LabelId> Work(P.Labels.begin(), P.Labels.end());
    std::vector<bool> InWork(NumLabels + 1, false);
    for (LabelId L : P.Labels)
      InWork[L] = true;

    while (!Work.empty()) {
      LabelId L = Work.front();
      Work.pop_front();
      InWork[L] = false;
      ++R.Iterations;

      PairSet In;
      if (L == P.Init)
        In = Initial;
      for (LabelId Pred : Preds[L])
        In.unionWith(Exit[Pred]);
      R.Entry.setEager(L, In);

      PairSet Out = std::move(In);
      Out.subtract(Kill[L]);
      Out.unionWith(Gen[L]);

      if (Out == Exit[L])
        continue;
      Exit[L] = std::move(Out);
      for (const auto &[From, To] : P.Flow)
        if (From == L && !InWork[To]) {
          Work.push_back(To);
          InWork[To] = true;
        }
    }

    for (LabelId L : P.Labels)
      R.Exit.setEager(L, std::move(Exit[L]));
  }
  (void)Program;
  return R;
}
