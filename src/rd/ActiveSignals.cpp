//===- rd/ActiveSignals.cpp -----------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "rd/ActiveSignals.h"

#include "cfg/FlowIndex.h"
#include "support/Casting.h"
#include "support/Parallel.h"

#include <deque>
#include <map>

using namespace vif;

void vif::computeActiveKillGenFor(const ProgramCFG &CFG, const ProcessCFG &P,
                                  ActiveKillGen &KG) {

  // All signal-assignment definitions of this process, and per signal.
  PairSet AllSignalDefs;
  std::map<unsigned, PairSet> DefsOfSignal;
  for (LabelId L : P.Labels) {
    const CFGBlock &B = CFG.block(L);
    if (B.K != CFGBlock::Kind::SignalAssign)
      continue;
    const auto *A = cast<SignalAssignStmt>(B.S);
    DefPair D{Resource::signal(A->targetRef().Id), L};
    AllSignalDefs.insert(D);
    DefsOfSignal[A->targetRef().Id].insert(D);
  }

  for (LabelId L : P.Labels) {
    const CFGBlock &B = CFG.block(L);
    switch (B.K) {
    case CFGBlock::Kind::SignalAssign: {
      const auto *A = cast<SignalAssignStmt>(B.S);
      unsigned Sig = A->targetRef().Id;
      // Whole assignments kill every assignment to s in this process;
      // slice assignments only generate (Table 4 lists no kill for them).
      if (!A->hasSlice())
        KG.Kill[L] = DefsOfSignal[Sig];
      KG.Gen[L].insert(DefPair{Resource::signal(Sig), L});
      break;
    }
    case CFGBlock::Kind::Wait:
      // Synchronization consumes all active values of the process.
      KG.Kill[L] = AllSignalDefs;
      break;
    case CFGBlock::Kind::Null:
    case CFGBlock::Kind::VarAssign:
    case CFGBlock::Kind::Cond:
      break;
    }
  }
}

ActiveKillGen vif::computeActiveKillGen(const ProgramCFG &CFG) {
  ActiveKillGen KG;
  KG.Kill.resize(CFG.numLabels() + 1);
  KG.Gen.resize(CFG.numLabels() + 1);
  for (const ProcessCFG &P : CFG.processes())
    computeActiveKillGenFor(CFG, P, KG);
  return KG;
}

ActiveProcessArtifact vif::solveProcessActive(const ProgramCFG &CFG,
                                              const ProcessCFG &P,
                                              const ActiveKillGen &KG) {
  ActiveProcessArtifact A;
  // The dense domain: only gen'd pairs can ever be present (⊥ = ∅ and
  // the transfer functions add nothing else).
  auto Dom = std::make_shared<DefPairDomain>();
  for (LabelId L : P.Labels)
    Dom->addAll(KG.Gen[L]);
  Dom->finalize();
  A.Dom = Dom;
  size_t K = Dom->size();
  if (K == 0)
    return A; // no signal definitions: every set stays ∅ (the default)

  const FlowIndex &FI = CFG.flowIndex(P.ProcessId);
  size_t NL = FI.numLabels();
  size_t W = (K + 63) / 64;

  // All per-label sets live as rows of whole-table matrices: two
  // scratch tables, four shared result tables (the result slots
  // reference their rows; ~six allocations per process, not 6 x NL).
  BitMatrix Kill(NL, K), Gen(NL, K);
  for (uint32_t I = 0; I < NL; ++I) {
    Dom->maskInto(KG.Kill[FI.label(I)], Kill.row(I));
    Dom->maskInto(KG.Gen[FI.label(I)], Gen.row(I));
  }

  auto MayEn = std::make_shared<BitMatrix>(NL, K);
  auto MayEx = std::make_shared<BitMatrix>(NL, K);
  auto MustEn = std::make_shared<BitMatrix>(NL, K);
  auto MustEx = std::make_shared<BitMatrix>(NL, K);

  // Chaotic iteration from ⊥ = ∅ to the least fixpoint; both transfer
  // functions are monotone (⋂˙ ranges over a fixed predecessor family).
  // The worklist starts in reverse postorder so the first sweep sees
  // predecessors first on acyclic stretches.
  std::deque<uint32_t> Work(FI.rpo().begin(), FI.rpo().end());
  std::vector<uint8_t> InWork(NL, 1);
  uint32_t InitLocal = FI.localOf(P.Init);

  std::vector<uint64_t> MayIn(W), MustIn(W);
  while (!Work.empty()) {
    uint32_t I = Work.front();
    Work.pop_front();
    InWork[I] = 0;
    ++A.Iterations;

    // Entry equations. The paper assumes isolated entries (the
    // null;while wrapper guarantees them for processes); bare statement
    // programs may re-enter their init label, so the may analysis also
    // merges predecessor exits there. The must analysis keeps ∅ at init:
    // the program-start path carries no active signals and dominates the
    // ⋂˙ — and ⋂˙ over an empty predecessor family is ∅ as well.
    FlowIndex::Range Preds = FI.preds(I);
    BitMatrix::clear(MayIn.data(), W);
    for (uint32_t Pred : Preds)
      BitMatrix::orInto(MayIn.data(), MayEx->row(Pred), W);
    BitMatrix::clear(MustIn.data(), W);
    if (I != InitLocal && !Preds.empty()) {
      BitMatrix::copy(MustIn.data(), MustEx->row(Preds.First[0]), W);
      for (const uint32_t *It = Preds.First + 1; It != Preds.Last; ++It)
        BitMatrix::andWith(MustIn.data(), MustEx->row(*It), W);
    }
    BitMatrix::copy(MayEn->row(I), MayIn.data(), W);
    BitMatrix::copy(MustEn->row(I), MustIn.data(), W);

    // Exit equations: (entry \ kill) ∪ gen.
    BitMatrix::subtract(MayIn.data(), Kill.row(I), W);
    BitMatrix::orInto(MayIn.data(), Gen.row(I), W);
    BitMatrix::subtract(MustIn.data(), Kill.row(I), W);
    BitMatrix::orInto(MustIn.data(), Gen.row(I), W);

    if (BitMatrix::equal(MayIn.data(), MayEx->row(I), W) &&
        BitMatrix::equal(MustIn.data(), MustEx->row(I), W))
      continue;
    BitMatrix::copy(MayEx->row(I), MayIn.data(), W);
    BitMatrix::copy(MustEx->row(I), MustIn.data(), W);
    for (uint32_t Succ : FI.succs(I))
      if (!InWork[Succ]) {
        Work.push_back(Succ);
        InWork[Succ] = 1;
      }
  }

  A.MayEntry = std::move(MayEn);
  A.MayExit = std::move(MayEx);
  A.MustEntry = std::move(MustEn);
  A.MustExit = std::move(MustEx);
  return A;
}

void vif::installProcessActive(ActiveSignalsResult &R, const ProgramCFG &CFG,
                               const ProcessCFG &P,
                               const ActiveProcessArtifact &A) {
  if (!A.MayEntry)
    return; // empty domain: the default (empty) slots are already right
  const FlowIndex &FI = CFG.flowIndex(P.ProcessId);
  size_t NL = FI.numLabels();
  for (uint32_t I = 0; I < NL; ++I) {
    LabelId L = FI.label(I);
    R.MayEntry.setDense(L, A.Dom, A.MayEntry, I);
    R.MayExit.setDense(L, A.Dom, A.MayExit, I);
    R.MustEntry.setDense(L, A.Dom, A.MustEntry, I);
    R.MustExit.setDense(L, A.Dom, A.MustExit, I);
  }
}

ActiveSignalsResult
vif::analyzeActiveSignals(const ElaboratedProgram &Program,
                          const ProgramCFG &CFG, unsigned Jobs) {
  (void)Program;
  size_t NumLabels = CFG.numLabels();
  ActiveSignalsResult R;
  R.MayEntry.resize(NumLabels + 1);
  R.MayExit.resize(NumLabels + 1);
  R.MustEntry.resize(NumLabels + 1);
  R.MustExit.resize(NumLabels + 1);

  ActiveKillGen KG = computeActiveKillGen(CFG);

  // Each process is an independent fixpoint over its own labels and
  // domain; the loop body writes only that process's label slots, so the
  // processes fan out over a thread pool. Iteration counts accumulate
  // per process and are summed after the join, keeping the total
  // deterministic under any Jobs value.
  size_t NumProcs = CFG.processes().size();
  std::vector<size_t> Iterations(NumProcs, 0);
  parallelFor(Jobs, NumProcs, [&](size_t ProcIdx) {
    const ProcessCFG &P = CFG.processes()[ProcIdx];
    ActiveProcessArtifact A = solveProcessActive(CFG, P, KG);
    Iterations[ProcIdx] = A.Iterations;
    installProcessActive(R, CFG, P, A);
  });
  for (size_t N : Iterations)
    R.Iterations += N;
  return R;
}

ActiveSignalsResult
vif::analyzeActiveSignalsReference(const ElaboratedProgram &Program,
                                   const ProgramCFG &CFG) {
  (void)Program;
  size_t NumLabels = CFG.numLabels();
  ActiveSignalsResult R;
  R.MayEntry.resize(NumLabels + 1);
  R.MayExit.resize(NumLabels + 1);
  R.MustEntry.resize(NumLabels + 1);
  R.MustExit.resize(NumLabels + 1);

  ActiveKillGen KG = computeActiveKillGen(CFG);

  for (const ProcessCFG &P : CFG.processes()) {
    std::vector<PairSet> MayExit(NumLabels + 1), MustExit(NumLabels + 1);

    std::map<LabelId, std::vector<LabelId>> Preds;
    for (const auto &[From, To] : P.Flow)
      Preds[To].push_back(From);

    std::deque<LabelId> Work(P.Labels.begin(), P.Labels.end());
    std::vector<bool> InWork(NumLabels + 1, false);
    for (LabelId L : P.Labels)
      InWork[L] = true;

    while (!Work.empty()) {
      LabelId L = Work.front();
      Work.pop_front();
      InWork[L] = false;
      ++R.Iterations;

      PairSet MayIn, MustIn;
      std::vector<const PairSet *> PredExitsMust;
      for (LabelId Pred : Preds[L]) {
        MayIn.unionWith(MayExit[Pred]);
        PredExitsMust.push_back(&MustExit[Pred]);
      }
      if (L != P.Init)
        MustIn = PairSet::dottedIntersection(PredExitsMust);
      R.MayEntry.setEager(L, MayIn);
      R.MustEntry.setEager(L, MustIn);

      PairSet MayOut = std::move(MayIn);
      MayOut.subtract(KG.Kill[L]);
      MayOut.unionWith(KG.Gen[L]);
      PairSet MustOut = std::move(MustIn);
      MustOut.subtract(KG.Kill[L]);
      MustOut.unionWith(KG.Gen[L]);

      bool Changed = !(MayOut == MayExit[L]) || !(MustOut == MustExit[L]);
      MayExit[L] = std::move(MayOut);
      MustExit[L] = std::move(MustOut);
      if (!Changed)
        continue;
      for (const auto &[From, To] : P.Flow)
        if (From == L && !InWork[To]) {
          Work.push_back(To);
          InWork[To] = true;
        }
    }

    for (LabelId L : P.Labels) {
      R.MayExit.setEager(L, std::move(MayExit[L]));
      R.MustExit.setEager(L, std::move(MustExit[L]));
    }
  }
  return R;
}
