//===- rd/ActiveSignals.cpp -----------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "rd/ActiveSignals.h"

#include "support/Casting.h"

#include <deque>

using namespace vif;

namespace {

/// Fills the Table 4 kill/gen sets of one process into \p KG.
void computeKillGenFor(const ProgramCFG &CFG, const ProcessCFG &P,
                       ActiveKillGen &KG) {

  // All signal-assignment definitions of this process, and per signal.
  PairSet AllSignalDefs;
  std::map<unsigned, PairSet> DefsOfSignal;
  for (LabelId L : P.Labels) {
    const CFGBlock &B = CFG.block(L);
    if (B.K != CFGBlock::Kind::SignalAssign)
      continue;
    const auto *A = cast<SignalAssignStmt>(B.S);
    DefPair D{Resource::signal(A->targetRef().Id), L};
    AllSignalDefs.insert(D);
    DefsOfSignal[A->targetRef().Id].insert(D);
  }

  for (LabelId L : P.Labels) {
    const CFGBlock &B = CFG.block(L);
    switch (B.K) {
    case CFGBlock::Kind::SignalAssign: {
      const auto *A = cast<SignalAssignStmt>(B.S);
      unsigned Sig = A->targetRef().Id;
      // Whole assignments kill every assignment to s in this process;
      // slice assignments only generate (Table 4 lists no kill for them).
      if (!A->hasSlice())
        KG.Kill[L] = DefsOfSignal[Sig];
      KG.Gen[L].insert(DefPair{Resource::signal(Sig), L});
      break;
    }
    case CFGBlock::Kind::Wait:
      // Synchronization consumes all active values of the process.
      KG.Kill[L] = AllSignalDefs;
      break;
    case CFGBlock::Kind::Null:
    case CFGBlock::Kind::VarAssign:
    case CFGBlock::Kind::Cond:
      break;
    }
  }
}

} // namespace

ActiveKillGen vif::computeActiveKillGen(const ProgramCFG &CFG) {
  ActiveKillGen KG;
  KG.Kill.resize(CFG.numLabels() + 1);
  KG.Gen.resize(CFG.numLabels() + 1);
  for (const ProcessCFG &P : CFG.processes())
    computeKillGenFor(CFG, P, KG);
  return KG;
}

ActiveSignalsResult
vif::analyzeActiveSignals(const ElaboratedProgram &Program,
                          const ProgramCFG &CFG) {
  (void)Program;
  size_t NumLabels = CFG.numLabels();
  ActiveSignalsResult R;
  R.MayEntry.resize(NumLabels + 1);
  R.MayExit.resize(NumLabels + 1);
  R.MustEntry.resize(NumLabels + 1);
  R.MustExit.resize(NumLabels + 1);

  ActiveKillGen KG = computeActiveKillGen(CFG);

  for (const ProcessCFG &P : CFG.processes()) {

    // Precompute predecessor lists once.
    std::map<LabelId, std::vector<LabelId>> Preds;
    for (const auto &[From, To] : P.Flow)
      Preds[To].push_back(From);

    // Chaotic iteration from ⊥ = ∅ to the least fixpoint; both transfer
    // functions are monotone (⋂˙ ranges over a fixed predecessor family).
    std::deque<LabelId> Work(P.Labels.begin(), P.Labels.end());
    std::vector<bool> InWork(NumLabels + 1, false);
    for (LabelId L : P.Labels)
      InWork[L] = true;

    while (!Work.empty()) {
      LabelId L = Work.front();
      Work.pop_front();
      InWork[L] = false;
      ++R.Iterations;

      // Entry equations. The paper assumes isolated entries (the
      // null;while wrapper guarantees them for processes); bare statement
      // programs may re-enter their init label, so the may analysis also
      // merges predecessor exits there. The must analysis keeps ∅ at init:
      // the program-start path carries no active signals and dominates the
      // ⋂˙.
      PairSet MayIn, MustIn;
      std::vector<const PairSet *> PredExitsMust;
      for (LabelId Pred : Preds[L]) {
        MayIn.unionWith(R.MayExit[Pred]);
        PredExitsMust.push_back(&R.MustExit[Pred]);
      }
      if (L != P.Init)
        MustIn = PairSet::dottedIntersection(PredExitsMust);
      R.MayEntry[L] = MayIn;
      R.MustEntry[L] = MustIn;

      // Exit equations: (entry \ kill) ∪ gen.
      PairSet MayOut = std::move(MayIn);
      MayOut.subtract(KG.Kill[L]);
      MayOut.unionWith(KG.Gen[L]);
      PairSet MustOut = std::move(MustIn);
      MustOut.subtract(KG.Kill[L]);
      MustOut.unionWith(KG.Gen[L]);

      bool Changed =
          !(MayOut == R.MayExit[L]) || !(MustOut == R.MustExit[L]);
      R.MayExit[L] = std::move(MayOut);
      R.MustExit[L] = std::move(MustOut);
      if (!Changed)
        continue;
      for (const auto &[From, To] : P.Flow)
        if (From == L && !InWork[To]) {
          Work.push_back(To);
          InWork[To] = true;
        }
    }
  }
  return R;
}
