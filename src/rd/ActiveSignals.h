//===- rd/ActiveSignals.h - RD for active signals (Table 4) -----*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Reaching Definitions analysis for *active* signal values of paper
/// Table 4 — a forward Monotone Framework instance over P(Sig x Lab), run
/// per process, with the paper's unusual twist of computing both
///
///  * RD∪ϕ: an over-approximation (which signals *may* be active, and from
///    which assignment) — union over predecessor exits; and
///  * RD∩ϕ: an under-approximation (which signals *must* be active) —
///    ⋂˙ over predecessor exits.
///
/// Kill/gen (Table 4):
///  * a whole signal assignment [s <= e]^l kills every assignment to s in
///    the same process and generates (s, l); slice assignments only
///    generate (no kill — they overwrite part of the active value);
///  * a wait statement kills every signal assignment of its process (the
///    synchronization consumes all active values);
///  * everything else is transparent.
///
/// The under-approximation exists solely to give the cross-process analysis
/// of Table 5 a sound, non-trivial kill component for present values; the
/// least solution satisfies RD∩ ⊆ RD∪ thanks to ⋂˙∅ = ∅.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_RD_ACTIVESIGNALS_H
#define VIF_RD_ACTIVESIGNALS_H

#include "rd/DenseDomain.h"
#include "rd/PairSet.h"

namespace vif {

/// Per-label results of the active-signal analyses; tables are indexed by
/// label (entry 0, the "?" label, is unused). The solver runs densely over
/// per-process BitSet domains; `Result.MayEntry[L]` etc. materialize the
/// classic sorted-vector PairSet on first access (see rd/DenseDomain.h).
struct ActiveSignalsResult {
  LazyPairSets MayEntry;  ///< RD∪ϕ entry(l)
  LazyPairSets MayExit;   ///< RD∪ϕ exit(l)
  LazyPairSets MustEntry; ///< RD∩ϕ entry(l)
  LazyPairSets MustExit;  ///< RD∩ϕ exit(l)

  /// Number of worklist iterations used (for the complexity experiments).
  size_t Iterations = 0;

  /// Heap footprint in bytes; the four tables share their per-process
  /// domains and matrices, counted once (cache byte-budget accounting).
  size_t memoryBytes() const {
    std::unordered_set<const void *> Seen;
    return MayEntry.memoryBytes(Seen) + MayExit.memoryBytes(Seen) +
           MustEntry.memoryBytes(Seen) + MustExit.memoryBytes(Seen);
  }
};

/// Runs both analyses for every process of \p Program, as a bit-vector
/// framework: dense (Sig, Lab) domains, CSR adjacency, RPO-seeded
/// worklist. \p Jobs > 1 fans the independent per-process fixpoints over
/// a thread pool (results identical for every value).
ActiveSignalsResult analyzeActiveSignals(const ElaboratedProgram &Program,
                                         const ProgramCFG &CFG,
                                         unsigned Jobs = 1);

/// The original sorted-vector-PairSet chaotic-iteration solver, retained as
/// the oracle for the dense one: the differential tests assert that both
/// compute identical May/Must Entry/Exit sets on every workload family.
ActiveSignalsResult
analyzeActiveSignalsReference(const ElaboratedProgram &Program,
                              const ProgramCFG &CFG);

/// The Table 4 kill/gen sets per label (shared by the worklist solver and
/// the ALFP encoding of the equations; vectors indexed by label).
struct ActiveKillGen {
  std::vector<PairSet> Kill;
  std::vector<PairSet> Gen;
};

ActiveKillGen computeActiveKillGen(const ProgramCFG &CFG);

/// Fills the Table 4 kill/gen sets of the single process \p P into \p KG,
/// whose vectors must already span all labels. computeActiveKillGen is
/// this per process; the incremental layer (rd/Incremental.h) calls it for
/// dirty processes only.
void computeActiveKillGenFor(const ProgramCFG &CFG, const ProcessCFG &P,
                             ActiveKillGen &KG);

/// One process's dense Table 4 solution — the unit the incremental layer
/// caches and recomposes whole-program results from. Rows are indexed by
/// the process's FlowIndex local label order; the matrices are null when
/// the domain is empty (every set stays ∅).
struct ActiveProcessArtifact {
  std::shared_ptr<const DefPairDomain> Dom;
  std::shared_ptr<const BitMatrix> MayEntry, MayExit, MustEntry, MustExit;
  uint64_t Iterations = 0;
};

/// Solves the Table 4 fixpoint of one process: exactly the per-process body
/// of analyzeActiveSignals, exposed so dirty processes can be re-solved in
/// isolation.
ActiveProcessArtifact solveProcessActive(const ProgramCFG &CFG,
                                         const ProcessCFG &P,
                                         const ActiveKillGen &KG);

/// Installs \p A's rows into the whole-program result tables (the label
/// slots of \p P only; the shared matrices are referenced, not copied).
void installProcessActive(ActiveSignalsResult &R, const ProgramCFG &CFG,
                          const ProcessCFG &P,
                          const ActiveProcessArtifact &A);

} // namespace vif

#endif // VIF_RD_ACTIVESIGNALS_H
