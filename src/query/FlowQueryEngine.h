//===- query/FlowQueryEngine.h - Point queries over flow graphs -*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis produces whole flow graphs; this layer answers point
/// questions about them. A FlowQueryEngine wraps one flow graph behind
/// reaches(src, sink), reachableFrom(src), whatReaches(sink) and
/// witnessPath(src, sink), backed by a reachability index built once with
/// the packed-bit-row Warshall machinery (Digraph::reachabilityClosure)
/// plus a CSR adjacency copy for witness extraction. Answers are O(1) bit
/// probes, and every positive reaches() answer can produce a concrete
/// shortest witness path with the paper's n-circ / n-bullet interface
/// marks resolved per step.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_QUERY_FLOWQUERYENGINE_H
#define VIF_QUERY_FLOWQUERYENGINE_H

#include "support/BitSet.h"
#include "support/Graph.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vif::query {

/// How a witness node relates to the process interface: plain internal
/// resource, incoming interface value (the paper's n-circ node) or outgoing
/// interface value (n-bullet).
enum class NodeMark : uint8_t { Plain, Incoming, Outgoing };

/// Stable lowercase name for a NodeMark ("plain", "incoming", "outgoing").
const char *nodeMarkName(NodeMark Mark);

/// One step on a witness path: the node name as it appears in the flow
/// graph (mark glyph included), the bare resource name with any interface
/// mark stripped, and the resolved mark.
struct WitnessStep {
  std::string Node;
  std::string Resource;
  NodeMark Mark = NodeMark::Plain;

  bool operator==(const WitnessStep &Other) const {
    return Node == Other.Node && Resource == Other.Resource &&
           Mark == Other.Mark;
  }
};

/// Splits a flow-graph node name into its bare resource name and interface
/// mark (shared with the fuzz oracle and tests).
WitnessStep makeWitnessStep(std::string_view Node);

/// Indexed point queries over one flow graph.
///
/// Construction snapshots the graph's transitive reachability into a
/// BitMatrix (one bit per ordered node pair, path length >= 1 — the same
/// semantics as Digraph::reachable) and the adjacency into a CSR array.
/// The engine borrows the graph (for the name table and id lookup), so it
/// is valid for as long as the graph object stays where it is — in
/// practice the session that owns both; all queries afterwards are const
/// and safe to run from multiple threads.
class FlowQueryEngine {
public:
  explicit FlowQueryEngine(const Digraph &G);

  /// Rebuilds an engine from a previously computed index (the on-disk
  /// "qidx" artifact): validates every shape invariant against \p G and
  /// returns nullopt on any mismatch, in which case the caller rebuilds
  /// from the graph. The successor lists themselves are trusted — the
  /// store key ties the blob to the exact (source, options) pair that
  /// produced \p G, so a shape-valid index is the one \p G would build.
  static std::optional<FlowQueryEngine>
  fromIndex(const Digraph &G, BitMatrix Closure,
            std::vector<uint32_t> RowStart,
            std::vector<Digraph::NodeId> Succ);

  /// The reachability-index internals (what the artifact store persists).
  const BitMatrix &closureMatrix() const { return Closure; }
  const std::vector<uint32_t> &rowStart() const { return RowStart; }
  const std::vector<Digraph::NodeId> &succList() const { return Succ; }

  size_t numNodes() const { return G->numNodes(); }
  size_t numEdges() const { return Succ.size(); }

  /// True if \p Name is a node of the underlying flow graph.
  bool knows(std::string_view Name) const { return G->hasNode(Name); }

  /// True if information may flow from \p Src to \p Sink over a path of
  /// length >= 1. Unknown names answer false.
  bool reaches(std::string_view Src, std::string_view Sink) const;

  /// All nodes reachable from \p Src (length >= 1), sorted
  /// lexicographically. Unknown names answer the empty set.
  std::vector<std::string> reachableFrom(std::string_view Src) const;

  /// All nodes from which \p Sink is reachable (length >= 1), sorted
  /// lexicographically. Unknown names answer the empty set.
  std::vector<std::string> whatReaches(std::string_view Sink) const;

  /// A shortest directed path Src -> ... -> Sink as witness steps, or
  /// nullopt when !reaches(Src, Sink). The path is deterministic: BFS over
  /// the CSR adjacency restricted to nodes that still reach Sink in the
  /// closure, ties broken by ascending node id. Src == Sink yields the
  /// shortest cycle through the node (first and last step equal).
  std::optional<std::vector<WitnessStep>>
  witnessPath(std::string_view Src, std::string_view Sink) const;

  /// Heap footprint of the index (closure matrix + CSR) in bytes, for the
  /// session cache's byte budget.
  size_t memoryBytes() const;

private:
  FlowQueryEngine(const Digraph &Graph, BitMatrix Closure,
                  std::vector<uint32_t> RowStart,
                  std::vector<Digraph::NodeId> Succ)
      : G(&Graph), Closure(std::move(Closure)),
        RowStart(std::move(RowStart)), Succ(std::move(Succ)) {}

  /// Borrowed, never null (a pointer so the engine stays movable).
  const Digraph *G;
  /// Bit (i, j) set iff a path of length >= 1 leads from node i to node j.
  BitMatrix Closure;
  /// CSR adjacency: successors of node i are Succ[RowStart[i]
  /// .. RowStart[i + 1]), ascending.
  std::vector<uint32_t> RowStart;
  std::vector<Digraph::NodeId> Succ;
};

} // namespace vif::query

#endif // VIF_QUERY_FLOWQUERYENGINE_H
