//===- query/FlowQueryEngine.cpp ------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "query/FlowQueryEngine.h"

#include "rd/PairSet.h"

#include <algorithm>
#include <deque>

using namespace vif;
using namespace vif::query;

const char *vif::query::nodeMarkName(NodeMark Mark) {
  switch (Mark) {
  case NodeMark::Plain:
    return "plain";
  case NodeMark::Incoming:
    return "incoming";
  case NodeMark::Outgoing:
    return "outgoing";
  }
  return "plain";
}

WitnessStep vif::query::makeWitnessStep(std::string_view Node) {
  WitnessStep Step;
  Step.Node.assign(Node);
  std::string_view Bare = stripInterfaceMark(Node);
  Step.Resource.assign(Bare);
  if (Bare.size() == Node.size())
    Step.Mark = NodeMark::Plain;
  else if (Node.substr(Bare.size()) == "◦") // the incoming mark ◦
    Step.Mark = NodeMark::Incoming;
  else // stripInterfaceMark only removes ◦ or •
    Step.Mark = NodeMark::Outgoing;
  return Step;
}

FlowQueryEngine::FlowQueryEngine(const Digraph &Graph) : G(&Graph) {
  G->reachabilityClosure(Closure);
  // CSR adjacency from the flat sorted edge vector: a counting pass sizes
  // the rows, then edges are streamed into place. forEachEdgeId visits
  // (from, to) ascending, so each row ends up sorted — the tie-break the
  // witness BFS relies on for determinism.
  size_t N = G->numNodes();
  RowStart.assign(N + 1, 0);
  G->forEachEdgeId(
      [this](Digraph::NodeId From, Digraph::NodeId) { ++RowStart[From + 1]; });
  for (size_t I = 0; I < N; ++I)
    RowStart[I + 1] += RowStart[I];
  Succ.resize(RowStart[N]);
  std::vector<uint32_t> Fill(RowStart.begin(), RowStart.end() - 1);
  G->forEachEdgeId([this, &Fill](Digraph::NodeId From, Digraph::NodeId To) {
    Succ[Fill[From]++] = To;
  });
}

std::optional<FlowQueryEngine>
FlowQueryEngine::fromIndex(const Digraph &G, BitMatrix Closure,
                           std::vector<uint32_t> RowStart,
                           std::vector<Digraph::NodeId> Succ) {
  size_t N = G.numNodes();
  if (Closure.numRows() != N || Closure.numBits() != N ||
      RowStart.size() != N + 1 || RowStart.front() != 0 ||
      RowStart.back() != Succ.size())
    return std::nullopt;
  for (size_t I = 0; I < N; ++I)
    if (RowStart[I] > RowStart[I + 1])
      return std::nullopt;
  for (Digraph::NodeId S : Succ)
    if (S >= N)
      return std::nullopt;
  return FlowQueryEngine(G, std::move(Closure), std::move(RowStart),
                         std::move(Succ));
}

bool FlowQueryEngine::reaches(std::string_view Src,
                              std::string_view Sink) const {
  if (!G->hasNode(Src) || !G->hasNode(Sink))
    return false;
  return Closure.test(G->id(Src), G->id(Sink));
}

std::vector<std::string>
FlowQueryEngine::reachableFrom(std::string_view Src) const {
  std::vector<std::string> Result;
  if (!G->hasNode(Src))
    return Result;
  BitMatrix::forEachBit(Closure.row(G->id(Src)), Closure.wordsPerRow(),
                        [this, &Result](size_t Bit) {
                          Result.emplace_back(
                              G->name(static_cast<Digraph::NodeId>(Bit)));
                        });
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<std::string>
FlowQueryEngine::whatReaches(std::string_view Sink) const {
  std::vector<std::string> Result;
  if (!G->hasNode(Sink))
    return Result;
  Digraph::NodeId SinkId = G->id(Sink);
  for (size_t I = 0, N = G->numNodes(); I < N; ++I)
    if (Closure.test(I, SinkId))
      Result.emplace_back(G->name(static_cast<Digraph::NodeId>(I)));
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::optional<std::vector<WitnessStep>>
FlowQueryEngine::witnessPath(std::string_view Src,
                             std::string_view Sink) const {
  if (!reaches(Src, Sink))
    return std::nullopt;
  Digraph::NodeId SrcId = G->id(Src), SinkId = G->id(Sink);
  // BFS over the CSR rows, expanding only successors that still reach the
  // sink in the closure. Every node on a shortest path reaches the sink,
  // so the restriction prunes dead branches without losing shortness; the
  // ascending row order makes the found path deterministic. Sink is never
  // marked seen via the closure branch (it is returned on first touch), so
  // Src == Sink correctly finds the shortest cycle through the node.
  std::vector<bool> Seen(G->numNodes(), false);
  std::vector<Digraph::NodeId> Prev(G->numNodes(), SrcId);
  Seen[SrcId] = true;
  std::deque<Digraph::NodeId> Queue = {SrcId};
  while (!Queue.empty()) {
    Digraph::NodeId Cur = Queue.front();
    Queue.pop_front();
    for (uint32_t S = RowStart[Cur]; S < RowStart[Cur + 1]; ++S) {
      Digraph::NodeId Next = Succ[S];
      if (Next == SinkId) {
        std::vector<WitnessStep> Path = {makeWitnessStep(G->name(SinkId))};
        for (Digraph::NodeId N = Cur;; N = Prev[N]) {
          Path.push_back(makeWitnessStep(G->name(N)));
          if (N == SrcId)
            break;
        }
        std::reverse(Path.begin(), Path.end());
        return Path;
      }
      if (!Seen[Next] && Closure.test(Next, SinkId)) {
        Seen[Next] = true;
        Prev[Next] = Cur;
        Queue.push_back(Next);
      }
    }
  }
  // Unreachable: reaches() was true, so the restricted BFS must hit Sink.
  return std::nullopt;
}

size_t FlowQueryEngine::memoryBytes() const {
  return Closure.memoryBytes() + RowStart.capacity() * sizeof(uint32_t) +
         Succ.capacity() * sizeof(Digraph::NodeId);
}
