//===- ifa/Report.cpp -----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/Report.h"

#include <algorithm>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>

using namespace vif;

namespace {

/// True for the interface decorations n◦ / n•.
bool isIncomingNode(std::string_view N) {
  return N.size() >= 3 && N.substr(N.size() - 3) == "◦";
}
bool isOutgoingNode(std::string_view N) {
  return N.size() >= 3 && N.substr(N.size() - 3) == "•";
}

} // namespace

void vif::writeAuditReport(std::ostream &OS,
                           const ElaboratedProgram &Program,
                           const IFAResult &Result,
                           const ReportOptions &Opts) {
  const Digraph &G = Result.Graph;
  OS << "=== Information Flow Audit Report ===\n";
  OS << "design: " << Program.Processes.size() << " process(es), "
     << Program.Signals.size() << " signal(s), "
     << Program.Variables.size() << " variable(s)\n";
  OS << "graph: " << G.numNodes() << " node(s), " << G.numEdges()
     << " flow edge(s), " << (G.isTransitive() ? "transitive"
                                               : "non-transitive")
     << "\n\n";

  // Per-node fan-in/out, counted over dense node ids in one edge scan and
  // printed in rank (lexicographic) order — no name-keyed map.
  std::vector<size_t> FanIn(G.numNodes(), 0), FanOut(G.numNodes(), 0);
  G.forEachEdgeId([&](Digraph::NodeId From, Digraph::NodeId To) {
    ++FanOut[From];
    ++FanIn[To];
  });
  // Port-role annotations, resolved through one name-indexed pass over the
  // signal table instead of one signal-table scan per node.
  std::unordered_map<std::string_view, SignalClass> PortClass;
  for (const ElabSignal &Sig : Program.Signals)
    if (Sig.Class != SignalClass::Internal)
      PortClass.emplace(Sig.UniqueName, Sig.Class);
  OS << "-- resources (fan-in / fan-out)\n";
  for (Digraph::NodeId Id : G.rankedNodes()) {
    std::string_view Name = G.name(Id);
    OS << "  " << Name;
    auto It = PortClass.find(Name);
    if (It != PortClass.end())
      OS << " [" << signalClassName(It->second) << " port]";
    OS << ": in=" << FanIn[Id] << " out=" << FanOut[Id];
    if (FanIn[Id] == 0 && FanOut[Id] == 0)
      OS << " (isolated)";
    OS << '\n';
  }

  // Interface summary: which inputs reach which outputs. Uses ports when
  // the design has them; falls back to ◦/• nodes for statement programs.
  std::vector<std::string_view> Ins, Outs;
  for (const ElabSignal &S : Program.Signals) {
    if (S.isInput())
      Ins.push_back(S.UniqueName);
    if (S.isOutput())
      Outs.push_back(S.UniqueName);
  }
  if (Ins.empty() && Outs.empty()) {
    for (Digraph::NodeId Id : G.rankedNodes()) {
      std::string_view N = G.name(Id);
      if (isIncomingNode(N))
        Ins.push_back(N);
      if (isOutgoingNode(N))
        Outs.push_back(N);
    }
  }
  if (!Ins.empty() && !Outs.empty()) {
    // Resolve each interface name to its node id once; the per-(In, Out)
    // probes below are then pure id binary searches, no string hashing.
    auto idsOf = [&G](const std::vector<std::string_view> &Names) {
      std::vector<std::optional<Digraph::NodeId>> Ids;
      Ids.reserve(Names.size());
      for (std::string_view N : Names)
        Ids.push_back(G.hasNode(N)
                          ? std::optional<Digraph::NodeId>(G.id(N))
                          : std::nullopt);
      return Ids;
    };
    std::vector<std::optional<Digraph::NodeId>> InIds = idsOf(Ins),
                                                OutIds = idsOf(Outs);
    OS << "\n-- interface flows (input -> outputs it may reach)\n";
    for (size_t I = 0; I < Ins.size(); ++I) {
      OS << "  " << Ins[I] << " ->";
      bool Any = false;
      if (InIds[I])
        for (size_t O = 0; O < Outs.size(); ++O)
          if (OutIds[O] && G.hasEdge(*InIds[I], *OutIds[O])) {
            OS << ' ' << Outs[O];
            Any = true;
          }
      if (!Any)
        OS << " (nothing)";
      OS << '\n';
    }
  }

  if (Opts.ListEdges) {
    OS << "\n-- all flows\n";
    G.forEachSortedEdge([&OS](std::string_view From, std::string_view To) {
      OS << "  " << From << " -> " << To << '\n';
    });
  }

  if (!Opts.Policy.Forbidden.empty()) {
    std::vector<PolicyViolation> Computed;
    const std::vector<PolicyViolation> *Violations = Opts.Violations;
    if (!Violations) {
      Computed = checkFlowPolicy(G, Opts.Policy);
      Violations = &Computed;
    }
    OS << "\n-- policy: " << Opts.Policy.Forbidden.size()
       << " forbidden flow(s), " << Violations->size() << " violation(s)\n";
    for (const FlowPolicy::Rule &R : Opts.Policy.Forbidden) {
      bool Violated = false;
      bool ViaPath = false;
      for (const PolicyViolation &V : *Violations)
        if (V.From == R.From && V.To == R.To) {
          Violated = true;
          ViaPath = V.ViaPath;
        }
      OS << "  " << (Violated ? "VIOLATED " : "ok       ") << R.From
         << " -> " << R.To;
      if (ViaPath)
        OS << " (via path)";
      OS << '\n';
    }
    OS << "verdict: "
       << (Violations->empty() ? "PASS — all flows permissible"
                               : "FAIL — impermissible flows present")
       << '\n';
  }
}

std::string vif::auditReport(const ElaboratedProgram &Program,
                             const IFAResult &Result,
                             const ReportOptions &Opts) {
  std::ostringstream OS;
  writeAuditReport(OS, Program, Result, Opts);
  return OS.str();
}
