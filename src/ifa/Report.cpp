//===- ifa/Report.cpp -----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/Report.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

using namespace vif;

namespace {

struct NodeStats {
  size_t FanIn = 0;
  size_t FanOut = 0;
};

/// True for the interface decorations n◦ / n•.
bool isIncomingNode(const std::string &N) {
  return N.size() >= 3 && N.compare(N.size() - 3, 3, "◦") == 0;
}
bool isOutgoingNode(const std::string &N) {
  return N.size() >= 3 && N.compare(N.size() - 3, 3, "•") == 0;
}

} // namespace

void vif::writeAuditReport(std::ostream &OS,
                           const ElaboratedProgram &Program,
                           const IFAResult &Result,
                           const ReportOptions &Opts) {
  const Digraph &G = Result.Graph;
  OS << "=== Information Flow Audit Report ===\n";
  OS << "design: " << Program.Processes.size() << " process(es), "
     << Program.Signals.size() << " signal(s), "
     << Program.Variables.size() << " variable(s)\n";
  OS << "graph: " << G.numNodes() << " node(s), " << G.numEdges()
     << " flow edge(s), " << (G.isTransitive() ? "transitive"
                                               : "non-transitive")
     << "\n\n";

  // Per-node fan-in/out.
  std::map<std::string, NodeStats> Stats;
  for (const std::string &N : G.sortedNodes())
    Stats[N];
  for (const auto &[From, To] : G.sortedEdges()) {
    ++Stats[From].FanOut;
    ++Stats[To].FanIn;
  }
  OS << "-- resources (fan-in / fan-out)\n";
  for (const auto &[Name, S] : Stats) {
    OS << "  " << Name;
    // Annotate port roles where applicable.
    for (const ElabSignal &Sig : Program.Signals)
      if (Sig.UniqueName == Name && Sig.Class != SignalClass::Internal)
        OS << " [" << signalClassName(Sig.Class) << " port]";
    OS << ": in=" << S.FanIn << " out=" << S.FanOut;
    if (S.FanIn == 0 && S.FanOut == 0)
      OS << " (isolated)";
    OS << '\n';
  }

  // Interface summary: which inputs reach which outputs. Uses ports when
  // the design has them; falls back to ◦/• nodes for statement programs.
  std::vector<std::string> Ins, Outs;
  for (const ElabSignal &S : Program.Signals) {
    if (S.isInput())
      Ins.push_back(S.UniqueName);
    if (S.isOutput())
      Outs.push_back(S.UniqueName);
  }
  if (Ins.empty() && Outs.empty()) {
    for (const std::string &N : G.sortedNodes()) {
      if (isIncomingNode(N))
        Ins.push_back(N);
      if (isOutgoingNode(N))
        Outs.push_back(N);
    }
  }
  if (!Ins.empty() && !Outs.empty()) {
    OS << "\n-- interface flows (input -> outputs it may reach)\n";
    for (const std::string &In : Ins) {
      OS << "  " << In << " ->";
      bool Any = false;
      for (const std::string &Out : Outs)
        if (G.hasEdge(In, Out)) {
          OS << ' ' << Out;
          Any = true;
        }
      if (!Any)
        OS << " (nothing)";
      OS << '\n';
    }
  }

  if (Opts.ListEdges) {
    OS << "\n-- all flows\n";
    for (const auto &[From, To] : G.sortedEdges())
      OS << "  " << From << " -> " << To << '\n';
  }

  if (!Opts.Policy.Forbidden.empty()) {
    std::vector<PolicyViolation> Computed;
    const std::vector<PolicyViolation> *Violations = Opts.Violations;
    if (!Violations) {
      Computed = checkFlowPolicy(G, Opts.Policy);
      Violations = &Computed;
    }
    OS << "\n-- policy: " << Opts.Policy.Forbidden.size()
       << " forbidden flow(s), " << Violations->size() << " violation(s)\n";
    for (const FlowPolicy::Rule &R : Opts.Policy.Forbidden) {
      bool Violated = false;
      bool ViaPath = false;
      for (const PolicyViolation &V : *Violations)
        if (V.From == R.From && V.To == R.To) {
          Violated = true;
          ViaPath = V.ViaPath;
        }
      OS << "  " << (Violated ? "VIOLATED " : "ok       ") << R.From
         << " -> " << R.To;
      if (ViaPath)
        OS << " (via path)";
      OS << '\n';
    }
    OS << "verdict: "
       << (Violations->empty() ? "PASS — all flows permissible"
                               : "FAIL — impermissible flows present")
       << '\n';
  }
}

std::string vif::auditReport(const ElaboratedProgram &Program,
                             const IFAResult &Result,
                             const ReportOptions &Opts) {
  std::ostringstream OS;
  writeAuditReport(OS, Program, Result, Opts);
  return OS.str();
}
